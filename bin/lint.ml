(* Source-lint driver: [dune exec bin/lint.exe -- [PATHS] [--allow FILE]].

   Lints every .ml under PATHS (default: lib) against the project rules in
   Lint, prints one [file:line rule message] per violation and exits 1
   when any are found (2 on usage or allow-list errors). *)

let usage = "usage: lint [--allow FILE] [--root DIR] [PATH ...]"

let () =
  let allow_file = ref "lint.allow" in
  let allow_explicit = ref false in
  let root = ref "." in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: f :: rest ->
        allow_file := f;
        allow_explicit := true;
        parse rest
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | ("--help" | "-help") :: _ ->
        print_endline usage;
        exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        prerr_endline ("lint: unknown option " ^ arg);
        prerr_endline usage;
        exit 2
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let allow_path =
    if Filename.is_relative !allow_file then
      Filename.concat !root !allow_file
    else !allow_file
  in
  let allow =
    if Sys.file_exists allow_path then
      match Lint.load_allow allow_path with
      | Ok a -> a
      | Error m ->
          prerr_endline ("lint: bad allow-list: " ^ m);
          exit 2
    else if !allow_explicit then begin
      prerr_endline ("lint: allow-list not found: " ^ allow_path);
      exit 2
    end
    else Lint.empty_allow
  in
  let violations = Lint.run ~allow ~root:!root paths in
  List.iter (fun v -> print_endline (Lint.to_string v)) violations;
  if violations <> [] then begin
    Printf.eprintf "lint: %d violation(s)\n" (List.length violations);
    exit 1
  end
