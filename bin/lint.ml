(* Source-lint driver:
   [dune exec bin/lint.exe -- [PATHS] [--allow FILE] [--json]].

   Runs the parsetree lint (Lint) and the typedtree Racecheck pass
   (Racecheck) over every .ml under PATHS (default: lib), prints one
   [file:line rule message] per violation — or a single JSON document
   with [--json] — and exits 1 when any are found (2 on usage or
   allow-list errors).

   Stale allow entries are reported (rule [stale-allow]) only when both
   passes ran over the default full scope with the default allow file:
   a partial run or [--no-racecheck] legitimately leaves entries
   unconsulted. *)

let usage =
  "usage: lint [--allow FILE] [--root DIR] [--json] [--no-racecheck] [PATH ...]"

let () =
  let allow_file = ref "lint.allow" in
  let allow_explicit = ref false in
  let root = ref "." in
  let json = ref false in
  let racecheck = ref true in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--allow" :: f :: rest ->
        allow_file := f;
        allow_explicit := true;
        parse rest
    | "--root" :: d :: rest ->
        root := d;
        parse rest
    | "--json" :: rest ->
        json := true;
        parse rest
    | "--no-racecheck" :: rest ->
        racecheck := false;
        parse rest
    | ("--help" | "-help") :: _ ->
        print_endline usage;
        exit 0
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' ->
        prerr_endline ("lint: unknown option " ^ arg);
        prerr_endline usage;
        exit 2
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let default_scope = !paths = [] in
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  let allow_path =
    if Filename.is_relative !allow_file then
      Filename.concat !root !allow_file
    else !allow_file
  in
  let allow =
    if Sys.file_exists allow_path then
      match Lint.load_allow allow_path with
      | Ok a -> a
      | Error m ->
          prerr_endline ("lint: bad allow-list: " ^ m);
          exit 2
    else if !allow_explicit then begin
      prerr_endline ("lint: allow-list not found: " ^ allow_path);
      exit 2
    end
    else Lint.empty_allow
  in
  let violations = Lint.run ~allow ~root:!root paths in
  let violations =
    if !racecheck then violations @ Racecheck.run ~allow ~root:!root paths
    else violations
  in
  let violations =
    if !racecheck && default_scope then violations @ Lint.stale allow
    else violations
  in
  let violations = Lint.sort_violations violations in
  if !json then print_endline (Lint.to_json violations)
  else List.iter (fun v -> print_endline (Lint.to_string v)) violations;
  if violations <> [] then begin
    Printf.eprintf "lint: %d violation(s)\n" (List.length violations);
    exit 1
  end
