(* hyperion_cli — interactive / scripted driver for a Hyperion store.

   Subcommands:
     demo           load the paper's example words and dump the trie stats
     load-ints N    insert N sequential integers and report density
     load-ngrams N  insert N synthetic n-grams and report density
     audit          apply mutations from stdin, then structurally validate
                    the store; with --dir, the store is first recovered
                    from (and mutations are logged to) a durability
                    directory
     chaos          seeded differential run against the red-black-tree
                    oracle with fault injection; with --dir, the workload
                    runs on a store recovered from that directory; with
                    --crash, a crash-recovery run instead (kill at a random
                    WAL offset, reopen, diff against the oracle); with
                    --diskfault, a storage-fault run (seeded I/O faults,
                    sticky degraded read-only mode, heal, and — sharded —
                    worker kills with in-place shard restarts)
     health         open a sharded durability directory and report
                    per-shard worker liveness, degraded state and backlog,
                    plus a Prometheus-style up/degraded snapshot
     save           apply put/add/del lines from stdin, then write a
                    one-shot binary snapshot to the given file
     load           load a snapshot file, report stats, optionally dump
     recover        open a durability directory (snapshot + WAL replay),
                    print what recovery found, then structurally validate
     check          apply mutations from stdin (or load a snapshot FILE,
                    or recover --dir), then run the full analyzer suite:
                    the static passes (source lint + the typedtree
                    Racecheck lock-discipline analyzer, when run inside
                    the source tree; --json for machine-readable output)
                    followed by structural validation plus the
                    mark-and-sweep heap sanitizer (leaks, double
                    references, free-list and counter integrity)
     repl           read commands from stdin:
                      put <key> <value> | add <key> | get <key>
                      del <key> | range <start> <limit> | audit
                      save <dir> | load <dir> | stats | quit
     metrics        load a snapshot file (or recover --dir), probe it with
                    an instrumented read sweep, and print the telemetry
                    registry in the Prometheus text exposition format
                    (structural gauges, op latency summaries, jump-table
                    counters, slow-op trace ring)
     bench          run a telemetry-instrumented experiment (insert):
                    two passes (telemetry off/on) report throughput,
                    latency percentiles and the measured telemetry
                    overhead; --json DIR writes BENCH_insert.json
                    (schema 2), --metrics-every K dumps the exposition
                    every K*10k ops
     serve          run the TCP serving front-end (hyperion.net): binary
                    length-prefixed pipelined protocol on --port, plus an
                    optional memcached-text listener on --memcached-port;
                    the store is in-memory, or recovered from --dir;
                    --duration 0 serves until killed
     loadgen        open-loop load generator; by default a self-contained
                    loopback acceptance matrix (binary and memcached,
                    1 and 4 shards) with coordinated-omission-safe
                    latency percentiles, --json DIR writing
                    BENCH_serve.json; --connect HOST:PORT targets an
                    already-running server instead.  Exits 1 when any
                    request errored

   --shards D (load-ints, load-ngrams, chaos, save, load, recover) routes
   the subcommand through the multi-domain sharded front-end: D worker
   domains over a byte-range partition of the keyspace.  Sharded
   persistence is a directory tree (one snapshot+WAL generation per shard)
   rather than a one-shot snapshot file.

   Exit codes (all subcommands):
     0    success
     1    divergence, structural violation, or corruption detected — the
          store (or a recovery of it) is provably wrong
     2    invalid argument values (negative op counts, bad --per-mille …)
     3    persistence failure surfaced as a typed error: corrupt snapshot,
          torn WAL header, format version mismatch, I/O error
     124  command-line parse error (cmdliner)
     125  unexpected internal error (cmdliner)                            *)

open Cmdliner

let default_config = { Hyperion.Config.strings with chunks_per_bin = 64 }
let make_store () = Hyperion.Store.create ~config:default_config ()

let report_stats ~keys ~bytes st =
  Printf.printf "keys           : %d\n" keys;
  Printf.printf "resident bytes : %d (%.1f B/key)\n" bytes
    (float_of_int bytes /. float_of_int (max 1 keys));
  Printf.printf "containers     : %d (+%d embedded, %d split)\n"
    st.Hyperion.Stats.containers st.Hyperion.Stats.embedded_containers
    st.Hyperion.Stats.split_containers;
  Printf.printf "records        : %d T, %d S, %d delta-encoded\n"
    st.Hyperion.Stats.t_nodes st.Hyperion.Stats.s_nodes
    st.Hyperion.Stats.delta_encoded;
  Printf.printf "path compr.    : %d nodes, %d suffix bytes\n"
    st.Hyperion.Stats.pc_nodes st.Hyperion.Stats.pc_suffix_bytes;
  if st.Hyperion.Stats.saturated_arenas > 0 then
    Printf.printf "SATURATED      : %d arena(s) read-only (memory exhausted)\n"
      st.Hyperion.Stats.saturated_arenas

let report store =
  report_stats
    ~keys:(Hyperion.Store.length store)
    ~bytes:(Hyperion.Store.memory_usage store)
    (Hyperion.Store.stats store)

let report_sharded t =
  Printf.printf "shards         : %d worker domain(s)%s\n"
    (Hyperion_shard.shards t)
    (if Hyperion_shard.durable t then " (durable)" else "");
  report_stats
    ~keys:(Hyperion_shard.length t)
    ~bytes:(Hyperion_shard.memory_usage t)
    (Hyperion_shard.stats t)

let check_shards shards =
  if shards < 1 || shards > 64 then begin
    prerr_endline "--shards must be in [1, 64]";
    exit 2
  end

(* exit 3 on any typed persistence error *)
let persist_fail ctx e =
  Printf.eprintf "%s: %s\n" ctx (Hyperion.Hyperion_error.to_string e);
  exit 3

(* --- key compression (hyperion.compress) ----------------------------

   [--dict FILE] supplies a trained dictionary (written by [train]) and
   selects the dict encoder; bare [--compress] selects the dict encoder
   and adopts whatever dictionary the durability directory already
   persists.  Resolution yields the config (compress id set) plus the
   explicit encoder, if any. *)

let load_dict path =
  let blob =
    try
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let b = really_input_string ic n in
      close_in ic;
      b
    with Sys_error m ->
      Printf.eprintf "cannot read dictionary %s: %s\n" path m;
      exit 2
  in
  match Compress.dict_of_string blob with
  | Ok d -> Compress.Dict d
  | Error why ->
      Printf.eprintf "bad dictionary %s: %s\n" path why;
      exit 2

let resolve_compress compress dict =
  match dict with
  | Some f -> ({ default_config with Hyperion.Config.compress = 1 }, Some (load_dict f))
  | None when compress ->
      ({ default_config with Hyperion.Config.compress = 1 }, None)
  | None -> (default_config, None)

let report_encoder enc =
  if enc <> Compress.Identity then
    Printf.printf "encoder        : %s (hash 0x%Lx)\n" (Compress.name enc)
      (Compress.hash enc)

let open_dir ?compress ?(config = default_config) dir =
  match Persist.open_or_create ~config ?compress dir with
  | Ok p -> p
  | Error e -> persist_fail ("recovering " ^ dir) e

let print_recovery p =
  let r = Persist.recovery p in
  Printf.printf
    "recovered      : generation %d, %d snapshot key(s) + %d WAL op(s)%s\n"
    r.Persist.generation r.Persist.snapshot_keys r.Persist.replayed_ops
    (if r.Persist.wal_truncated then " (torn tail truncated)" else "");
  List.iter
    (fun s -> Printf.printf "skipped        : %s\n" s)
    r.Persist.skipped

(* Sharded (multi-domain) variants: a store partitioned into worker-owned
   byte ranges, durable under a per-shard snapshot+WAL directory tree. *)

let open_sharded_dir ?compress ?(config = default_config) ~shards dir =
  match Hyperion_shard.open_durable ~config ?compress ~shards dir with
  | Ok t -> t
  | Error e -> persist_fail ("recovering " ^ dir) e

let print_shard_recoveries t =
  List.iter
    (fun { Hyperion_shard.shard; recovery = r } ->
      Printf.printf
        "shard %-3d      : generation %d, %d snapshot key(s) + %d WAL op(s)%s\n"
        shard r.Persist.generation r.Persist.snapshot_keys r.Persist.replayed_ops
        (if r.Persist.wal_truncated then " (torn tail truncated)" else "");
      List.iter (fun s -> Printf.printf "skipped        : %s\n" s) r.Persist.skipped)
    (Hyperion_shard.recoveries t)

let shard_check ctx = function
  | Ok _ -> ()
  | Error e -> persist_fail ctx e

let demo () =
  let store = make_store () in
  List.iteri
    (fun i w -> Hyperion.Store.put store w (Int64.of_int i))
    [ "a"; "and"; "be"; "by"; "that"; "the"; "to" ];
  Hyperion.Store.range store (fun k v ->
      Printf.printf "%-6s -> %s\n" k
        (match v with Some v -> Int64.to_string v | None -> "(member)");
      true);
  report store

(* Batched sharded ingest: ship mutations to the worker domains in slices
   of 256 so a load costs one mailbox round-trip per slice per shard. *)
let sharded_load ~shards ~what n each =
  let t = Hyperion_shard.create ~config:default_config ~shards () in
  let b = Hyperion_shard.Batch.create t in
  let t0 = Unix.gettimeofday () in
  each (fun k v ->
      Hyperion_shard.Batch.put b k v;
      if Hyperion_shard.Batch.length b >= 256 then
        shard_check "flush" (Hyperion_shard.Batch.flush b));
  shard_check "flush" (Hyperion_shard.Batch.flush b);
  Printf.printf "inserted %d %s in %.2fs\n" n what (Unix.gettimeofday () -. t0);
  report_sharded t;
  shard_check "close" (Hyperion_shard.close t)

let load_ints n shards =
  check_shards shards;
  if shards > 1 then
    sharded_load ~shards ~what:"sequential integers" n (fun put ->
        for i = 0 to n - 1 do
          put (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Int64.of_int i)
        done)
  else begin
    let store = make_store () in
    let t0 = Unix.gettimeofday () in
    for i = 0 to n - 1 do
      Hyperion.Store.put store (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Int64.of_int i)
    done;
    Printf.printf "inserted %d sequential integers in %.2fs\n" n
      (Unix.gettimeofday () -. t0);
    report store
  end

let load_ngrams n shards =
  check_shards shards;
  let pairs = Workload.Ngram.generate ~n () in
  if shards > 1 then
    sharded_load ~shards ~what:"n-grams" n (fun put ->
        Array.iter (fun (k, v) -> put k v) pairs)
  else begin
    let store = make_store () in
    let t0 = Unix.gettimeofday () in
    Array.iter (fun (k, v) -> Hyperion.Store.put store k v) pairs;
    Printf.printf "inserted %d n-grams in %.2fs\n" n (Unix.gettimeofday () -. t0);
    report store
  end

(* Print all structural violations; return the count. *)
let audit_store store =
  match Hyperion.Validate.check_store store with
  | [] ->
      print_endline "audit: OK, 0 violations";
      0
  | errs ->
      Printf.printf "audit: %d violation(s)\n" (List.length errs);
      List.iter
        (fun e -> Format.printf "  %a@." Hyperion.Validate.pp_error e)
        errs;
      List.length errs

(* Feed put/add/del lines from stdin into [put]/[add]/[del] callbacks. *)
let drive_stdin ~put ~add ~del =
  let rec loop lineno =
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
        (match String.split_on_char ' ' (String.trim line) with
        | [ "put"; k; v ] -> put k (Int64.of_string v)
        | [ "add"; k ] -> add k
        | [ "del"; k ] -> del k
        | [ "" ] | [ "quit" ] -> ()
        | _ -> Printf.eprintf "line %d ignored: %s\n" lineno line);
        loop (lineno + 1))
  in
  loop 1

let audit dir =
  match dir with
  | None ->
      let store = make_store () in
      drive_stdin
        ~put:(fun k v -> Hyperion.Store.put store k v)
        ~add:(fun k -> Hyperion.Store.add store k)
        ~del:(fun k -> ignore (Hyperion.Store.delete store k));
      Printf.printf "loaded %d key(s)\n" (Hyperion.Store.length store);
      exit (if audit_store store > 0 then 1 else 0)
  | Some dir ->
      let p = open_dir dir in
      print_recovery p;
      let check ctx = function
        | Ok _ -> ()
        | Error e -> persist_fail ctx e
      in
      drive_stdin
        ~put:(fun k v -> check "put" (Persist.put p k v))
        ~add:(fun k -> check "add" (Persist.add p k))
        ~del:(fun k -> check "del" (Persist.delete p k));
      Printf.printf "loaded %d key(s)\n"
        (Hyperion.Store.length (Persist.store p));
      let violations = audit_store (Persist.store p) in
      check "close" (Persist.close p);
      exit (if violations > 0 then 1 else 0)

(* --- static preflight (lint + racecheck over the source tree) -------- *)

(* [check] and the chaos preflight run the same two static passes as
   bin/lint.  They locate the source tree by walking up from the working
   directory to the directory holding dune-project + lint.allow; outside
   the tree (an installed binary) the phase is skipped rather than
   failed. *)
let find_source_root () =
  let rec up dir depth =
    if depth > 8 then None
    else if
      Sys.file_exists (Filename.concat dir "dune-project")
      && Sys.file_exists (Filename.concat dir "lint.allow")
    then Some dir
    else
      let parent = Filename.dirname dir in
      if parent = dir then None else up parent (depth + 1)
  in
  up (Sys.getcwd ()) 0

(* Returns [None] when skipped (no source tree above the cwd), [Some n]
   with the violation count otherwise; prints the report (text, or one
   JSON document with [~json:true]). *)
let static_analysis ~json () =
  match find_source_root () with
  | None -> None
  | Some root ->
      let allow =
        match Lint.load_allow (Filename.concat root "lint.allow") with
        | Ok a -> a
        | Error m ->
            Printf.eprintf "static: bad allow-list: %s\n" m;
            exit 2
      in
      let paths = [ "lib" ] in
      let vs = Lint.run ~allow ~root paths in
      let rc = Racecheck.run ~allow ~root paths in
      let unavailable =
        List.exists (fun v -> v.Lint.v_rule = "racecheck-unavailable") rc
      in
      (* stale-entry detection is only meaningful once Racecheck has
         consulted the allow list over the full scope *)
      let vs = vs @ rc @ (if unavailable then [] else Lint.stale allow) in
      let vs = Lint.sort_violations vs in
      if json then print_endline (Lint.to_json vs)
      else List.iter (fun v -> print_endline (Lint.to_string v)) vs;
      Some (List.length vs)

let chaos no_preflight seed ops per_mille crash diskfault dir shards
    metrics_every heapcheck compress dict =
  check_shards shards;
  if not no_preflight then begin
    match static_analysis ~json:false () with
    | None ->
        print_endline
          "chaos: static preflight skipped (outside the source tree)"
    | Some 0 -> print_endline "chaos: static preflight clean"
    | Some n ->
        Printf.eprintf
          "chaos: static preflight found %d violation(s) — fix them or rerun \
           with --no-preflight\n"
          n;
        exit 1
  end;
  if compress && (crash || diskfault || dir <> None || shards > 1) then begin
    prerr_endline
      "chaos: --compress runs the single-store in-memory mode only (no \
       --crash/--diskfault/--dir/--shards)";
    exit 2
  end;
  if per_mille < 0 || per_mille > 1000 then begin
    prerr_endline "chaos: --per-mille must be in [0, 1000]";
    exit 2
  end;
  if ops < 0 then begin
    prerr_endline "chaos: --ops must be non-negative";
    exit 2
  end;
  if metrics_every < 0 then begin
    prerr_endline "chaos: --metrics-every must be non-negative";
    exit 2
  end;
  if crash && diskfault then begin
    prerr_endline "chaos: --crash and --diskfault are mutually exclusive";
    exit 2
  end;
  if metrics_every > 0 then Telemetry.set_enabled true;
  (* single-store runs dump mid-run through the per-op hook; the sharded,
     crash and diskfault modes drive their workload internally and dump at
     the end *)
  let on_op =
    if metrics_every > 0 && shards = 1 && not crash && not diskfault then
      Some
        (fun op ->
          if (op + 1) mod (metrics_every * 1000) = 0 then
            print_string (Telemetry.dump ()))
    else None
  in
  let final_dump () =
    if metrics_every > 0 then begin
      print_string (Telemetry.dump ());
      print_string (Telemetry.Trace.dump ())
    end
  in
  let scratch_dir () =
    let d =
      match dir with
      | Some d -> d
      | None -> Filename.concat (Filename.get_temp_dir_name ()) "hyperion-chaos"
    in
    (try if not (Sys.file_exists d) then Unix.mkdir d 0o755
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "chaos: cannot create %s: %s\n" d (Unix.error_message e);
       exit 2);
    d
  in
  if diskfault then begin
    (* storage-fault mode: seeded I/O faults through the Persist.Io
       interposition layer — degraded read-only mode, heal, and (sharded)
       worker kills + restarts, ending in a crash-recovery check *)
    let dir = scratch_dir () in
    if shards > 1 then
      match
        Chaos.run_sharded_diskfault ~config:default_config ~shards ~heapcheck
          ~per_mille ~dir ~seed ~ops ()
      with
      | Ok o ->
          Format.printf "chaos --diskfault --shards %d: OK — %a@." shards
            Chaos.pp_sharded_diskfault_outcome o;
          final_dump ()
      | Error msg ->
          prerr_endline msg;
          exit 1
    else
      match
        Chaos.run_diskfault ~config:default_config ~heapcheck ~per_mille ~dir
          ~seed ~ops ()
      with
      | Ok o ->
          Format.printf "chaos --diskfault: OK — %a@."
            Chaos.pp_diskfault_outcome o;
          final_dump ()
      | Error msg ->
          prerr_endline msg;
          exit 1
  end
  else if shards > 1 then begin
    (* concurrent client domains against the sharded front-end; fault plans
       are not domain-safe, so this mode always runs fault-free *)
    let dir = if crash || dir <> None then Some (scratch_dir ()) else None in
    match
      Chaos.run_sharded ~config:default_config ~shards ~heapcheck ?dir ~seed
        ~ops ()
    with
    | Ok o ->
        Format.printf "chaos --shards %d: OK — %a@." shards
          Chaos.pp_sharded_outcome o;
        final_dump ()
    | Error msg ->
        prerr_endline msg;
        exit 1
  end
  else if crash then begin
    let dir = scratch_dir () in
    match
      Chaos.run_crash ~config:default_config ~heapcheck ~dir ~seed ~ops ()
    with
    | Ok o ->
        Format.printf "chaos --crash: OK — %a@." Chaos.pp_crash_outcome o;
        final_dump ()
    | Error msg ->
        prerr_endline msg;
        exit 1
  end
  else begin
    let plan =
      if per_mille = 0 then Fault.none
      else Fault.seeded ~seed ~per_mille ~sites:Fault.all_sites
    in
    let store, finish =
      match dir with
      | None -> (None, fun () -> ())
      | Some d ->
          let p = open_dir d in
          print_recovery p;
          (* the chaos workload mutates the store directly (not through the
             log), so drop the handle without writing anything back *)
          (Some (Persist.store p), fun () -> Persist.crash p)
    in
    let config, chaos_compress =
      if not compress then (Hyperion.Config.default, Compress.Identity)
      else
        (* the chaos key universe is closed (Chaos.key_for over the default
           4096-id space), so the dictionary can be trained on exactly the
           keys the run will generate — unless --dict supplied one *)
        let enc =
          match dict with
          | Some f -> load_dict f
          | None ->
              Compress.Dict
                (Compress.train (Seq.init 4096 Chaos.key_for))
        in
        report_encoder enc;
        ({ Hyperion.Config.default with compress = 1 }, enc)
    in
    match
      Chaos.run ~config ~compress:chaos_compress ?store ?on_op ~heapcheck
        ~plan ~seed ~ops ()
    with
    | Ok o ->
        finish ();
        Format.printf "chaos: OK — %a@." Chaos.pp_outcome o;
        Format.printf "plan : %s@." (Fault.describe plan);
        final_dump ()
    | Error msg ->
        finish ();
        prerr_endline msg;
        exit 1
  end

let save path shards compress dict =
  check_shards shards;
  let config, enc_opt = resolve_compress compress dict in
  if shards > 1 then begin
    (* sharded stores persist as a directory tree (one snapshot+WAL
       generation per shard), not a one-shot snapshot file; the shard
       front end encodes keys transparently *)
    let t = open_sharded_dir ?compress:enc_opt ~config ~shards path in
    report_encoder (Hyperion_shard.compress t);
    drive_stdin
      ~put:(fun k v -> shard_check "put" (Hyperion_shard.put_result t k v))
      ~add:(fun k -> shard_check "add" (Hyperion_shard.add_result t k))
      ~del:(fun k -> shard_check "del" (Hyperion_shard.delete_result t k));
    shard_check "snapshot" (Hyperion_shard.snapshot_now t);
    Printf.printf "saved %d key(s) across %d shard(s) -> %s\n"
      (Hyperion_shard.length t) shards path;
    shard_check "close" (Hyperion_shard.close t)
  end
  else begin
    let enc =
      match (enc_opt, compress) with
      | Some e, _ -> e
      | None, true ->
          (* a one-shot snapshot has no prior state to adopt a dictionary
             from *)
          prerr_endline "save: --compress needs --dict FILE (train one first)";
          exit 2
      | None, false -> Compress.Identity
    in
    let store = Hyperion.Store.create ~config () in
    drive_stdin
      ~put:(fun k v -> Hyperion.Store.put store (Compress.encode enc k) v)
      ~add:(fun k -> Hyperion.Store.add store (Compress.encode enc k))
      ~del:(fun k ->
        ignore (Hyperion.Store.delete store (Compress.encode enc k)));
    match Persist.save_snapshot ~compress:enc store path with
    | Ok bytes ->
        Printf.printf "saved %d key(s), %d bytes -> %s\n"
          (Hyperion.Store.length store) bytes path
    | Error e -> persist_fail ("saving " ^ path) e
  end

let load path dump shards compress dict =
  check_shards shards;
  let config, enc_opt = resolve_compress compress dict in
  if shards > 1 then begin
    let t = open_sharded_dir ?compress:enc_opt ~config ~shards path in
    print_shard_recoveries t;
    report_encoder (Hyperion_shard.compress t);
    if dump then
      Hyperion_shard.iter t (fun k v ->
          Printf.printf "%s %s\n" k
            (match v with Some v -> Int64.to_string v | None -> "-"));
    report_sharded t;
    shard_check "close" (Hyperion_shard.close t)
  end
  else
    match Persist.load_snapshot ?expect:enc_opt ~config path with
    | Error e -> persist_fail ("loading " ^ path) e
    | Ok (store, enc) ->
        report_encoder enc;
        if dump then
          Hyperion.Store.iter store (fun ek v ->
              let k =
                match Compress.decode enc ek with
                | Ok k -> k
                | Error why ->
                    Printf.eprintf "stored key fails to decode: %s\n" why;
                    exit 1
              in
              Printf.printf "%s %s\n" k
                (match v with Some v -> Int64.to_string v | None -> "-"));
        report store

let recover dir shards compress dict =
  check_shards shards;
  let config, enc_opt = resolve_compress compress dict in
  if shards > 1 then begin
    let t = open_sharded_dir ?compress:enc_opt ~config ~shards dir in
    print_shard_recoveries t;
    report_encoder (Hyperion_shard.compress t);
    report_sharded t;
    let violations =
      Hyperion_shard.with_quiesced t (fun stores ->
          Array.to_list stores
          |> List.mapi (fun i s ->
                 Printf.printf "shard %-3d      : " i;
                 audit_store s)
          |> List.fold_left ( + ) 0)
    in
    shard_check "close" (Hyperion_shard.close t);
    exit (if violations > 0 then 1 else 0)
  end
  else begin
    let p = open_dir ?compress:enc_opt ~config dir in
    print_recovery p;
    report_encoder (Persist.compress p);
    report (Persist.store p);
    let violations = audit_store (Persist.store p) in
    (match Persist.close p with
    | Ok () -> ()
    | Error e -> persist_fail "close" e);
    exit (if violations > 0 then 1 else 0)
  end

(* Operational health probe: open the sharded durability tree, report
   per-shard liveness / degradation / backlog, and emit a Prometheus-style
   snapshot.  Exits 1 unless every shard is up and writable. *)
let health dir shards compress dict =
  if shards <> 0 then check_shards shards;
  let config, enc_opt = resolve_compress compress dict in
  let t =
    match
      Hyperion_shard.open_durable ~config ?compress:enc_opt
        ?shards:(if shards = 0 then None else Some shards)
        dir
    with
    | Ok t -> t
    | Error e -> persist_fail ("recovering " ^ dir) e
  in
  print_shard_recoveries t;
  let hs = Hyperion_shard.health t in
  List.iter
    (fun h ->
      Printf.printf "shard %-3d      : %s%s, backlog=%d\n"
        h.Hyperion_shard.hs_shard
        (match h.Hyperion_shard.hs_down with
        | Some r -> "DOWN (" ^ r ^ ")"
        | None -> "up")
        (match h.Hyperion_shard.hs_degraded with
        | Some w -> Printf.sprintf ", DEGRADED read-only (%s)" w
        | None -> "")
        h.Hyperion_shard.hs_backlog)
    hs;
  List.iter
    (fun h ->
      Printf.printf "hyperion_shard_up{shard=\"%d\"} %d\n"
        h.Hyperion_shard.hs_shard
        (if h.Hyperion_shard.hs_alive then 1 else 0))
    hs;
  List.iter
    (fun h ->
      Printf.printf "hyperion_shard_degraded{shard=\"%d\"} %d\n"
        h.Hyperion_shard.hs_shard
        (if h.Hyperion_shard.hs_degraded <> None then 1 else 0))
    hs;
  let healthy =
    List.for_all
      (fun h -> h.Hyperion_shard.hs_alive && h.Hyperion_shard.hs_degraded = None)
      hs
  in
  shard_check "close" (Hyperion_shard.close t);
  exit (if healthy then 0 else 1)

(* Analyzer suite over one store: structural validation plus the
   mark-and-sweep heap sanitizer; returns the combined problem count. *)
let check_one store =
  let violations = audit_store store in
  let r = Analyze.Heapcheck.audit_store store in
  Format.printf "%a@." Analyze.Heapcheck.pp_report r;
  violations + List.length r.Analyze.Heapcheck.problems

let check_sharded t =
  Hyperion_shard.with_quiesced t (fun stores ->
      Array.to_list stores
      |> List.mapi (fun i s ->
             Printf.printf "shard %-3d      :\n" i;
             check_one s)
      |> List.fold_left ( + ) 0)

let check file dir shards json =
  check_shards shards;
  let static_problems =
    match static_analysis ~json () with
    | None ->
        if not json then
          print_endline "static analysis: skipped (outside the source tree)";
        0
    | Some n ->
        if n = 0 && not json then
          print_endline "static analysis: lint + racecheck clean";
        n
  in
  let problems =
    match (file, dir) with
    | Some _, Some _ ->
        prerr_endline "check: FILE and --dir are mutually exclusive";
        exit 2
    | Some path, None ->
        if shards > 1 then begin
          (* with --shards, the positional path is a sharded directory tree *)
          let t = open_sharded_dir ~shards path in
          print_shard_recoveries t;
          let n = check_sharded t in
          shard_check "close" (Hyperion_shard.close t);
          n
        end
        else (
          match Persist.load_snapshot ~config:default_config path with
          | Error e -> persist_fail ("loading " ^ path) e
          | Ok (store, _enc) ->
              Printf.printf "loaded %d key(s) from %s\n"
                (Hyperion.Store.length store) path;
              check_one store)
    | None, Some dir ->
        if shards > 1 then begin
          let t = open_sharded_dir ~shards dir in
          print_shard_recoveries t;
          let n = check_sharded t in
          shard_check "close" (Hyperion_shard.close t);
          n
        end
        else begin
          (* open_or_create heap-audits the recovery itself (exit 3 on a
             corrupt heap); this run re-checks and prints the report *)
          let p = open_dir dir in
          print_recovery p;
          let n = check_one (Persist.store p) in
          (match Persist.close p with
          | Ok () -> ()
          | Error e -> persist_fail "close" e);
          n
        end
    | None, None ->
        if shards > 1 then begin
          let t = Hyperion_shard.create ~config:default_config ~shards () in
          drive_stdin
            ~put:(fun k v -> shard_check "put" (Hyperion_shard.put_result t k v))
            ~add:(fun k -> shard_check "add" (Hyperion_shard.add_result t k))
            ~del:(fun k -> shard_check "del" (Hyperion_shard.delete_result t k));
          Printf.printf "loaded %d key(s)\n" (Hyperion_shard.length t);
          let n = check_sharded t in
          shard_check "close" (Hyperion_shard.close t);
          n
        end
        else begin
          let store = make_store () in
          drive_stdin
            ~put:(fun k v -> Hyperion.Store.put store k v)
            ~add:(fun k -> Hyperion.Store.add store k)
            ~del:(fun k -> ignore (Hyperion.Store.delete store k));
          Printf.printf "loaded %d key(s)\n" (Hyperion.Store.length store);
          check_one store
        end
  in
  exit (if problems + static_problems > 0 then 1 else 0)

let repl () =
  let store = ref (make_store ()) in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "quit" ] -> ()
        | [ "stats" ] ->
            report !store;
            loop ()
        | [ "audit" ] ->
            ignore (audit_store !store);
            loop ()
        | [ "put"; k; v ] ->
            Hyperion.Store.put !store k (Int64.of_string v);
            loop ()
        | [ "add"; k ] ->
            Hyperion.Store.add !store k;
            loop ()
        | [ "get"; k ] ->
            (match Hyperion.Store.get !store k with
            | Some v -> Printf.printf "%Ld\n" v
            | None ->
                print_endline
                  (if Hyperion.Store.mem !store k then "(member)" else "(nil)"));
            loop ()
        | [ "del"; k ] ->
            Printf.printf "%b\n" (Hyperion.Store.delete !store k);
            loop ()
        | [ "range"; start; limit ] ->
            let n = ref (int_of_string limit) in
            Hyperion.Store.range !store ~start (fun k v ->
                Printf.printf "%s %s\n" k
                  (match v with Some v -> Int64.to_string v | None -> "-");
                decr n;
                !n > 0);
            loop ()
        | [ "save"; path ] ->
            (match Persist.save_snapshot !store path with
            | Ok bytes -> Printf.printf "saved %d bytes -> %s\n" bytes path
            | Error e ->
                Printf.printf "save failed: %s\n"
                  (Hyperion.Hyperion_error.to_string e));
            loop ()
        | [ "load"; path ] ->
            (* the repl is identity-encoded only; snapshots written under a
               dictionary refuse to load here (Version_mismatch) instead of
               surfacing garbled keys *)
            (match Persist.load_snapshot ~config:default_config path with
            | Ok (s, _enc) ->
                store := s;
                Printf.printf "loaded %d key(s)\n" (Hyperion.Store.length s)
            | Error e ->
                Printf.printf "load failed: %s\n"
                  (Hyperion.Hyperion_error.to_string e));
            loop ()
        | [ "" ] -> loop ()
        | _ ->
            print_endline "put|add|get|del|range|save|load|audit|stats|quit";
            loop ())
  in
  loop ()

(* Structural gauges only the exporter knows how to fill: set once from a
   Stats sweep right before dumping, so the exposition carries the store's
   shape alongside the hot-path latency summaries. *)
let g_keys =
  Telemetry.Gauge.make "hyperion_store_keys" ~help:"Keys resident in the store"

let g_bytes =
  Telemetry.Gauge.make "hyperion_store_resident_bytes"
    ~help:"Arena bytes resident"

let g_containers =
  Telemetry.Gauge.make "hyperion_store_containers"
    ~help:"Containers in the trie"

let g_saturated =
  Telemetry.Gauge.make "hyperion_store_saturated_arenas"
    ~help:"Arenas gone read-only after memory exhaustion"

let set_structural_gauges ~keys ~bytes st =
  Telemetry.Gauge.set g_keys keys;
  Telemetry.Gauge.set g_bytes bytes;
  Telemetry.Gauge.set g_containers st.Hyperion.Stats.containers;
  Telemetry.Gauge.set g_saturated st.Hyperion.Stats.saturated_arenas

(* Ordered sweep collecting every key, then an instrumented point-get per
   key (capped at [probe]): populates the get-latency histogram and the
   jump-table hit/miss counters on a store that was only ever loaded. *)
let probe_sweep ~probe ~iter ~get =
  let keys = ref [] and n = ref 0 in
  iter (fun k _ ->
      if !n < probe then begin
        keys := k :: !keys;
        incr n
      end);
  List.iter (fun k -> ignore (get k)) !keys;
  !n

let metrics file dir shards probe =
  check_shards shards;
  if probe < 0 then begin
    prerr_endline "metrics: --probe must be non-negative";
    exit 2
  end;
  Telemetry.set_enabled true;
  let probed =
    match (file, dir) with
    | None, None ->
        prerr_endline "metrics: need a snapshot FILE or --dir DIR";
        exit 2
    | Some _, Some _ ->
        prerr_endline "metrics: FILE and --dir are mutually exclusive";
        exit 2
    | Some path, None ->
        if shards > 1 then begin
          (* with --shards, the positional path is a sharded directory tree *)
          let t = open_sharded_dir ~shards path in
          set_structural_gauges
            ~keys:(Hyperion_shard.length t)
            ~bytes:(Hyperion_shard.memory_usage t)
            (Hyperion_shard.stats t);
          let n =
            probe_sweep ~probe
              ~iter:(fun f -> Hyperion_shard.iter t f)
              ~get:(fun k -> Hyperion_shard.get t k)
          in
          shard_check "close" (Hyperion_shard.close t);
          n
        end
        else
          (match Persist.load_snapshot ~config:default_config path with
          | Error e -> persist_fail ("loading " ^ path) e
          | Ok (store, _enc) ->
              set_structural_gauges
                ~keys:(Hyperion.Store.length store)
                ~bytes:(Hyperion.Store.memory_usage store)
                (Hyperion.Store.stats store);
              probe_sweep ~probe
                ~iter:(fun f -> Hyperion.Store.iter store f)
                ~get:(fun k -> Hyperion.Store.get store k))
    | None, Some dir ->
        if shards > 1 then begin
          let t = open_sharded_dir ~shards dir in
          set_structural_gauges
            ~keys:(Hyperion_shard.length t)
            ~bytes:(Hyperion_shard.memory_usage t)
            (Hyperion_shard.stats t);
          let n =
            probe_sweep ~probe
              ~iter:(fun f -> Hyperion_shard.iter t f)
              ~get:(fun k -> Hyperion_shard.get t k)
          in
          shard_check "close" (Hyperion_shard.close t);
          n
        end
        else begin
          (* recovery through the durability layer also exercises the WAL
             replay counters, so they show up in the exposition *)
          let p = open_dir dir in
          let store = Persist.store p in
          set_structural_gauges
            ~keys:(Hyperion.Store.length store)
            ~bytes:(Hyperion.Store.memory_usage store)
            (Hyperion.Store.stats store);
          let n =
            probe_sweep ~probe
              ~iter:(fun f -> Hyperion.Store.iter store f)
              ~get:(fun k -> Hyperion.Store.get store k)
          in
          (match Persist.close p with
          | Ok () -> ()
          | Error e -> persist_fail "close" e);
          n
        end
  in
  Printf.printf "# probed %d key(s)\n" probed;
  print_string (Telemetry.dump ());
  print_string (Telemetry.Trace.dump ())

let bench_cmd experiment n json_dir metrics_every =
  if n < 1 then begin
    prerr_endline "bench: --n must be positive";
    exit 2
  end;
  if metrics_every < 0 then begin
    prerr_endline "bench: --metrics-every must be non-negative";
    exit 2
  end;
  let metrics_every = if metrics_every = 0 then None else Some metrics_every in
  match experiment with
  | "insert" ->
      ignore
        (Bench_util.Telemetry_bench.insert ~n ?json_dir ?metrics_every ())
  | "compress" ->
      ignore (Bench_util.Compress_bench.run ~n ?json_dir ())
  | other ->
      Printf.eprintf
        "bench: unknown experiment %S (try: insert, compress)\n" other;
      exit 2

(* ---- dictionary training --------------------------------------------- *)

(* [train OUT]: reservoir-sample keys (stdin lines, or the synthetic
   n-gram corpus with --ngrams), train the order-preserving dictionary,
   write the 258-byte blob to OUT for later --dict FILE use. *)
let train out ngrams sample seed =
  if sample < 1 then begin
    prerr_endline "train: --sample must be positive";
    exit 2
  end;
  if ngrams < 0 then begin
    prerr_endline "train: --ngrams must be non-negative";
    exit 2
  end;
  let keys =
    if ngrams > 0 then
      Seq.map fst (Array.to_seq (Workload.Ngram.generate ~n:ngrams ()))
    else
      Seq.of_dispenser (fun () ->
          match input_line stdin with
          | line -> Some line
          | exception End_of_file -> None)
  in
  let sampled = Workload.Keystream.reservoir ~seed ~k:sample keys in
  if Array.length sampled = 0 then begin
    prerr_endline "train: no keys to train on";
    exit 2
  end;
  let dict = Compress.train (Array.to_seq sampled) in
  let blob = Compress.dict_to_string dict in
  (try
     let oc = open_out_bin out in
     output_string oc blob;
     close_out oc
   with Sys_error m ->
     Printf.eprintf "cannot write %s: %s\n" out m;
     exit 2);
  Printf.printf "trained on %d sampled key(s) -> %s (%d bytes, hash 0x%Lx)\n"
    (Array.length sampled) out (String.length blob)
    (Compress.dict_hash dict)

(* ---- network serving ------------------------------------------------- *)

let serve port mc_port shards dir duration workers compress dict =
  check_shards shards;
  let config, enc_opt = resolve_compress compress dict in
  if duration < 0.0 then begin
    prerr_endline "serve: --duration must be non-negative";
    exit 2
  end;
  if port < 0 || port > 65535 || (match mc_port with
     | Some p -> p < 0 || p > 65535
     | None -> false)
  then begin
    prerr_endline "serve: ports must be in [0, 65535]";
    exit 2
  end;
  let t =
    match dir with
    | Some d -> open_sharded_dir ?compress:enc_opt ~config ~shards d
    | None ->
        if compress && enc_opt = None then begin
          prerr_endline
            "serve: --compress without --dir needs --dict FILE (an \
             in-memory store has no persisted dictionary to adopt)";
          exit 2
        end;
        Hyperion_shard.create ~config ?compress:enc_opt ~shards ()
  in
  report_encoder (Hyperion_shard.compress t);
  let cfg =
    {
      Hyperion_net.Server.default_config with
      port;
      memcached_port = mc_port;
      workers_per_conn = workers;
    }
  in
  match Hyperion_net.Server.start ~config:cfg t with
  | Error m ->
      Printf.eprintf "serve: %s\n" m;
      shard_check "close" (Hyperion_shard.close t);
      exit 3
  | Ok srv ->
      Printf.printf "serving        : binary on %d%s, %d shard(s)%s\n%!"
        (Hyperion_net.Server.port srv)
        (match Hyperion_net.Server.memcached_port srv with
        | Some p -> Printf.sprintf ", memcached on %d" p
        | None -> "")
        shards
        (if dir <> None then " (durable)" else "");
      if duration > 0.0 then Unix.sleepf duration
      else
        (* serve until the process is killed *)
        while true do
          Unix.sleep 3600
        done;
      Hyperion_net.Server.stop srv;
      shard_check "close" (Hyperion_shard.close t)

let loadgen_scenario_label protocol shards =
  Printf.sprintf "%s-%dshard"
    (match protocol with
    | Hyperion_net.Loadgen.Binary -> "binary"
    | Hyperion_net.Loadgen.Memcached -> "memcached")
    shards

let report_loadgen label (s : Hyperion_net.Loadgen.summary) =
  let q p = Telemetry.Hist.quantile s.s_hist p /. 1e3 in
  Printf.printf
    "%-18s: %7.0f/%7.0f qps, %d sent, %d done, %d error(s), p50 %.1fus p99 \
     %.1fus p999 %.1fus\n%!"
    label s.s_achieved_qps s.s_target_qps s.s_sent s.s_completed s.s_errors
    (q 0.5) (q 0.99) (q 0.999)

(* Run one loadgen scenario against a private loopback server: fresh
   in-memory sharded store preloaded with the key universe, ephemeral
   ports, clean shutdown. *)
let loadgen_self_scenario base_cfg ks protocol shards =
  check_shards shards;
  let t = Hyperion_shard.create ~config:default_config ~shards () in
  let b = Hyperion_shard.Batch.create t in
  let store_key =
    match protocol with
    | Hyperion_net.Loadgen.Memcached -> Hyperion_net.Loadgen.memcached_key
    | Hyperion_net.Loadgen.Binary -> fun k -> k
  in
  Array.iteri
    (fun rank k ->
      Hyperion_shard.Batch.put b (store_key k) (Int64.of_int rank);
      if Hyperion_shard.Batch.length b >= 256 then
        shard_check "flush" (Hyperion_shard.Batch.flush b))
    (Workload.Keystream.keys ks);
  shard_check "flush" (Hyperion_shard.Batch.flush b);
  let scfg =
    {
      Hyperion_net.Server.default_config with
      port = 0;
      memcached_port =
        (match protocol with
        | Hyperion_net.Loadgen.Memcached -> Some 0
        | Hyperion_net.Loadgen.Binary -> None);
    }
  in
  match Hyperion_net.Server.start ~config:scfg t with
  | Error m ->
      Printf.eprintf "loadgen: %s\n" m;
      shard_check "close" (Hyperion_shard.close t);
      exit 3
  | Ok srv ->
      let port =
        match protocol with
        | Hyperion_net.Loadgen.Binary -> Hyperion_net.Server.port srv
        | Hyperion_net.Loadgen.Memcached -> (
            match Hyperion_net.Server.memcached_port srv with
            | Some p -> p
            | None -> Hyperion_net.Server.port srv)
      in
      let cfg = { base_cfg with Hyperion_net.Loadgen.protocol; port } in
      let r = Hyperion_net.Loadgen.run ~keystream:ks cfg in
      Hyperion_net.Server.stop srv;
      shard_check "close" (Hyperion_shard.close t);
      match r with
      | Error m ->
          Printf.eprintf "loadgen: %s\n" m;
          exit 3
      | Ok s ->
          let label = loadgen_scenario_label protocol shards in
          report_loadgen label s;
          (label, shards, s)

let parse_hostport s =
  match String.rindex_opt s ':' with
  | None -> None
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p <= 65535 && host <> "" -> Some (host, p)
      | Some _ | None -> None)

let loadgen_cmd connect protocol qps duration conns depth read_fraction keys
    seed arrival json_dir =
  let protocol =
    match protocol with
    | "binary" -> Hyperion_net.Loadgen.Binary
    | "memcached" -> Hyperion_net.Loadgen.Memcached
    | other ->
        Printf.eprintf "loadgen: unknown protocol %S (binary|memcached)\n"
          other;
        exit 2
  in
  let arrival =
    match arrival with
    | "poisson" -> Hyperion_net.Loadgen.Poisson
    | "uniform" -> Hyperion_net.Loadgen.Uniform
    | other ->
        Printf.eprintf "loadgen: unknown arrival %S (poisson|uniform)\n" other;
        exit 2
  in
  let base_cfg =
    {
      Hyperion_net.Loadgen.default_config with
      protocol;
      connections = conns;
      depth;
      target_qps = qps;
      duration_s = duration;
      arrival;
      read_fraction;
      n_keys = keys;
      seed;
    }
  in
  (match Hyperion_net.Loadgen.validate base_cfg with
  | Some m ->
      Printf.eprintf "loadgen: %s\n" m;
      exit 2
  | None -> ());
  let ks = Workload.Keystream.create ~seed ~n:keys () in
  let results =
    match connect with
    | Some hostport -> (
        match parse_hostport hostport with
        | None ->
            Printf.eprintf "loadgen: --connect expects HOST:PORT, got %S\n"
              hostport;
            exit 2
        | Some (host, port) -> (
            let cfg = { base_cfg with Hyperion_net.Loadgen.host; port } in
            match Hyperion_net.Loadgen.run ~keystream:ks cfg with
            | Error m ->
                Printf.eprintf "loadgen: %s\n" m;
                exit 3
            | Ok s ->
                let label =
                  match protocol with
                  | Hyperion_net.Loadgen.Binary -> "binary-external"
                  | Hyperion_net.Loadgen.Memcached -> "memcached-external"
                in
                report_loadgen label s;
                [ (label, conns, s) ]))
    | None ->
        (* the acceptance matrix: both protocols, single- and multi-shard *)
        List.map
          (fun (protocol, shards) ->
            loadgen_self_scenario base_cfg ks protocol shards)
          [
            (Hyperion_net.Loadgen.Binary, 1);
            (Hyperion_net.Loadgen.Binary, 4);
            (Hyperion_net.Loadgen.Memcached, 1);
            (Hyperion_net.Loadgen.Memcached, 4);
          ]
  in
  (match json_dir with
  | None -> ()
  | Some dir ->
      let rows =
        List.map
          (fun (label, domains, (s : Hyperion_net.Loadgen.summary)) ->
            {
              Bench_util.Json_out.label;
              domains;
              ops_per_s = s.s_achieved_qps;
              bytes_per_key = 0.0;
            })
          results
      in
      let lats =
        List.map
          (fun (label, _, s) ->
            Hyperion_net.Loadgen.latency_of_summary ~metric:label s)
          results
      in
      let config =
        [
          ("target_qps", Printf.sprintf "%.0f" qps);
          ("duration_s", Printf.sprintf "%.2f" duration);
          ("connections", string_of_int conns);
          ("depth", string_of_int depth);
          ("arrival",
           match arrival with
           | Hyperion_net.Loadgen.Poisson -> "poisson"
           | Hyperion_net.Loadgen.Uniform -> "uniform");
          ("read_fraction", Printf.sprintf "%.2f" read_fraction);
          ("seed", Int64.to_string seed);
          ("mode", if connect = None then "loopback" else "external");
        ]
      in
      let path =
        Bench_util.Json_out.write ~dir ~experiment:"serve" ~n:keys ~config
          ~telemetry:lats ~rows ()
      in
      Printf.printf "wrote          : %s\n" path);
  let errors =
    List.fold_left
      (fun acc (_, _, (s : Hyperion_net.Loadgen.summary)) ->
        acc + s.s_errors)
      0 results
  in
  if errors > 0 then begin
    Printf.eprintf "loadgen: %d request error(s)\n" errors;
    exit 1
  end

let n_arg = Arg.(value & pos 0 int 100_000 & info [] ~docv:"N")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED"
       ~doc:"Workload and fault-plan seed (replay a failing run with it).")

let ops_arg =
  Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N"
       ~doc:"Number of random operations to execute.")

let per_mille_arg =
  Arg.(value & opt int 2 & info [ "per-mille" ] ~docv:"P"
       ~doc:"Fault probability per consultation in 1/1000 units; 0 disables \
             injection.")

let crash_arg =
  Arg.(value & flag & info [ "crash" ]
       ~doc:"Crash-recovery mode: drive the workload through the durability \
             layer, kill it at a random write-ahead-log offset, reopen and \
             diff the recovered store against the oracle.")

let dir_arg =
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR"
       ~doc:"Durability directory to recover the store from (created when \
             missing).")

let diskfault_arg =
  Arg.(value & flag & info [ "diskfault" ]
       ~doc:"Storage-fault mode: run the workload through the durability \
             layer with seeded I/O faults injected into every syscall \
             (EIO, ENOSPC, short writes, fsync failures), asserting sticky \
             degraded read-only mode, successful heal, and prefix-consistent \
             crash recovery; with $(b,--shards) > 1, also injects worker \
             crashes and restarts shards in place.")

let health_shards_arg =
  Arg.(value & opt int 0 & info [ "shards" ] ~docv:"D"
       ~doc:"Expected shard count; 0 (default) trusts the directory's \
             MANIFEST.")

let heapcheck_arg =
  Arg.(value & opt bool true & info [ "heapcheck" ] ~docv:"BOOL"
       ~doc:"Run the mark-and-sweep heap sanitizer (leaks, double \
             references, free-list and counter integrity) on every chaos \
             audit round and after crash recovery; $(b,false) keeps only \
             the structural validation.")

let dir_pos_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR")

let path_pos_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")

let dump_arg =
  Arg.(value & flag & info [ "dump" ] ~doc:"Print every binding, in order.")

let shards_arg =
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"D"
       ~doc:"Partition the store into $(docv) worker-domain shards (the \
             multi-domain front-end); 1 keeps the single-store code path.")

let metrics_every_arg =
  Arg.(value & opt int 0 & info [ "metrics-every" ] ~docv:"K"
       ~doc:"Enable telemetry and dump the Prometheus exposition \
             periodically: every $(docv)*1000 chaos ops (single-store \
             mode) or every $(docv)*10000 bench inserts; 0 disables.")

let file_opt_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE")

let probe_arg =
  Arg.(value & opt int 50_000 & info [ "probe" ] ~docv:"N"
       ~doc:"Cap on instrumented point lookups issued against the loaded \
             store to populate the latency and jump-table metrics.")

let experiment_arg =
  Arg.(value & pos 0 string "insert" & info [] ~docv:"EXPERIMENT"
       ~doc:"Experiment to run (currently: insert).")

let bench_n_arg =
  Arg.(value & opt int 300_000 & info [ "n" ] ~docv:"N"
       ~doc:"Keys per pass.")

let json_dir_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"DIR"
       ~doc:"Write BENCH_<experiment>.json (schema 2, with latency \
             percentiles) into $(docv).")

let port_arg =
  Arg.(value & opt int 7791 & info [ "port" ] ~docv:"PORT"
       ~doc:"Binary-protocol listener port; 0 picks an ephemeral port.")

let mc_port_arg =
  Arg.(value & opt (some int) None & info [ "memcached-port" ] ~docv:"PORT"
       ~doc:"Also serve the memcached-text subset \
             (get/set/delete/stats/version/quit) on $(docv); 0 picks an \
             ephemeral port.")

let duration_arg =
  Arg.(value & opt float 0.0 & info [ "duration" ] ~docv:"SECONDS"
       ~doc:"Serve for $(docv) seconds then shut down cleanly; 0 (default) \
             serves until the process is killed.")

let workers_arg =
  Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W"
       ~doc:"Op worker threads per connection (mutations, batches, stats).")

let connect_arg =
  Arg.(value & opt (some string) None & info [ "connect" ] ~docv:"HOST:PORT"
       ~doc:"Drive an already-running server instead of the self-contained \
             loopback matrix.")

let protocol_arg =
  Arg.(value & opt string "binary" & info [ "protocol" ] ~docv:"P"
       ~doc:"Protocol for $(b,--connect) mode: $(b,binary) or \
             $(b,memcached).")

let qps_arg =
  Arg.(value & opt float 20_000.0 & info [ "qps" ] ~docv:"QPS"
       ~doc:"Aggregate open-loop arrival rate, split across connections.")

let lg_duration_arg =
  Arg.(value & opt float 2.0 & info [ "duration" ] ~docv:"SECONDS"
       ~doc:"Measured run length per scenario.")

let conns_arg =
  Arg.(value & opt int 4 & info [ "conns" ] ~docv:"C"
       ~doc:"Client connections (threads), each with its own socket and \
             generator stream.")

let depth_arg =
  Arg.(value & opt int 16 & info [ "depth" ] ~docv:"D"
       ~doc:"Max outstanding pipelined requests per connection; the sender \
             blocks beyond this, but latency stays measured from the \
             scheduled send time (no coordinated omission).")

let read_fraction_arg =
  Arg.(value & opt float 0.9 & info [ "read-fraction" ] ~docv:"F"
       ~doc:"Fraction of requests that are reads, in [0, 1].")

let lg_keys_arg =
  Arg.(value & opt int 10_000 & info [ "keys" ] ~docv:"N"
       ~doc:"Zipf-ranked n-gram key universe size (preloaded in loopback \
             mode).")

let lg_seed_arg =
  Arg.(value & opt int64 20190301L & info [ "seed" ] ~docv:"SEED"
       ~doc:"Keystream and schedule seed (reproducible runs).")

let arrival_arg =
  Arg.(value & opt string "poisson" & info [ "arrival" ] ~docv:"A"
       ~doc:"Inter-arrival law: $(b,poisson) (exponential gaps) or \
             $(b,uniform) (fixed gaps).")

let compress_flag_arg =
  Arg.(value & flag & info [ "compress" ]
       ~doc:"Use the trained-dictionary order-preserving key encoder \
             (hyperion.compress).  Over a durability directory the \
             persisted dictionary is adopted; elsewhere supply one with \
             $(b,--dict).")

let dict_arg =
  Arg.(value & opt (some string) None & info [ "dict" ] ~docv:"FILE"
       ~doc:"Trained dictionary blob written by $(b,train); implies \
             $(b,--compress) and is verified against any persisted \
             dictionary.")

let train_out_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT")

let train_ngrams_arg =
  Arg.(value & opt int 0 & info [ "ngrams" ] ~docv:"N"
       ~doc:"Train on $(docv) synthetic n-gram keys instead of stdin \
             lines.")

let sample_arg =
  Arg.(value & opt int 4096 & info [ "sample" ] ~docv:"K"
       ~doc:"Reservoir-sample size the dictionary is trained on.")

let no_preflight_arg =
  Arg.(value & flag & info [ "no-preflight" ]
       ~doc:"Skip the static lint/racecheck preflight over the source tree.")

let check_json_arg =
  Arg.(value & flag & info [ "json" ]
       ~doc:"Print the static-analysis report as a single JSON document \
             (the dynamic store report stays textual).")

let train_seed_arg =
  Arg.(value & opt int64 20190301L & info [ "seed" ] ~docv:"SEED"
       ~doc:"Reservoir-sampling seed (deterministic training).")

let cmds =
  [
    Cmd.v (Cmd.info "demo" ~doc:"Paper example words") Term.(const demo $ const ());
    Cmd.v (Cmd.info "load-ints" ~doc:"Sequential integer load") Term.(const load_ints $ n_arg $ shards_arg);
    Cmd.v (Cmd.info "load-ngrams" ~doc:"Synthetic n-gram load") Term.(const load_ngrams $ n_arg $ shards_arg);
    Cmd.v
      (Cmd.info "audit"
         ~doc:"Apply put/add/del lines from stdin, then validate structure; \
               with $(b,--dir), run against (and log into) a recovered \
               store.  Exits 1 when violations are found")
      Term.(const audit $ dir_arg);
    Cmd.v
      (Cmd.info "chaos"
         ~doc:"Seeded differential run against the red-black-tree oracle \
               with fault injection; $(b,--crash) switches to the \
               crash-recovery mode; $(b,--diskfault) to the storage-fault \
               mode (I/O fault injection, degraded read-only mode, heal, \
               supervised shard restarts); $(b,--dir) recovers the store \
               first; $(b,--shards) > 1 runs concurrent client domains \
               against the sharded front-end.  $(b,--heapcheck false) \
               disables the per-audit heap sanitizer; $(b,--no-preflight) \
               skips the static lint/racecheck preflight.  Exits 1 on \
               divergence or preflight violations")
      Term.(const chaos $ no_preflight_arg $ seed_arg $ ops_arg $ per_mille_arg $ crash_arg $ diskfault_arg $ dir_arg $ shards_arg $ metrics_every_arg $ heapcheck_arg $ compress_flag_arg $ dict_arg);
    Cmd.v
      (Cmd.info "health"
         ~doc:"Open a sharded durability directory and report per-shard \
               health: worker liveness, degraded read-only state, mailbox \
               backlog — plus a Prometheus-style \
               $(b,hyperion_shard_up)/$(b,hyperion_shard_degraded) \
               snapshot.  Exits 0 only when every shard is up and writable")
      Term.(const health $ dir_pos_arg $ health_shards_arg $ compress_flag_arg $ dict_arg);
    Cmd.v
      (Cmd.info "save"
         ~doc:"Apply put/add/del lines from stdin, then write a one-shot \
               binary snapshot to $(i,FILE); with $(b,--shards) > 1, \
               $(i,FILE) is a sharded durability directory instead")
      Term.(const save $ path_pos_arg $ shards_arg $ compress_flag_arg $ dict_arg);
    Cmd.v
      (Cmd.info "train"
         ~doc:"Train the order-preserving key-compression dictionary on a \
               reservoir sample of keys (stdin lines, or $(b,--ngrams) \
               $(i,N) synthetic keys) and write the blob to $(i,OUT) for \
               later $(b,--dict) use")
      Term.(const train $ train_out_arg $ train_ngrams_arg $ sample_arg $ train_seed_arg);
    Cmd.v
      (Cmd.info "load"
         ~doc:"Load a snapshot written by $(b,save) (or the repl) and \
               report stats; $(b,--dump) prints every binding; with \
               $(b,--shards) > 1, $(i,FILE) is a sharded durability \
               directory instead")
      Term.(const load $ path_pos_arg $ dump_arg $ shards_arg $ compress_flag_arg $ dict_arg);
    Cmd.v
      (Cmd.info "recover"
         ~doc:"Open a durability directory — latest valid snapshot plus \
               write-ahead-log replay — then validate the recovered store; \
               with $(b,--shards) > 1, a sharded directory recovered in \
               parallel.  Exits 1 on violations, 3 on corruption")
      Term.(const recover $ dir_pos_arg $ shards_arg $ compress_flag_arg $ dict_arg);
    Cmd.v
      (Cmd.info "check"
         ~doc:"Run the full analyzer suite — the static passes (source \
               lint plus the typedtree Racecheck lock-discipline analyzer, \
               when run inside the source tree) and then structural \
               validation plus the mark-and-sweep heap sanitizer — over a \
               store built from stdin mutations, a snapshot $(i,FILE), or \
               a recovered $(b,--dir) (sharded tree with $(b,--shards) > \
               1).  $(b,--json) prints the static report as one JSON \
               document.  Exits 1 when any check fails")
      Term.(const check $ file_opt_arg $ dir_arg $ shards_arg $ check_json_arg);
    Cmd.v (Cmd.info "repl" ~doc:"Line-oriented REPL on stdin") Term.(const repl $ const ());
    Cmd.v
      (Cmd.info "metrics"
         ~doc:"Load a snapshot $(i,FILE) (or recover $(b,--dir), or a \
               sharded tree with $(b,--shards) > 1), probe it with an \
               instrumented read sweep, and print every registered metric \
               in the Prometheus text exposition format plus the slow-op \
               trace ring")
      Term.(const metrics $ file_opt_arg $ dir_arg $ shards_arg $ probe_arg);
    Cmd.v
      (Cmd.info "bench"
         ~doc:"Run a telemetry-instrumented experiment; $(b,insert) loads \
               the same seeded n-gram workload with telemetry off then on, \
               reporting throughput, latency percentiles and the measured \
               telemetry overhead; $(b,compress) re-measures bytes/key and \
               op latency with the trained key-compression dictionary \
               against an identity arm.  $(b,--json) $(i,DIR) writes \
               BENCH_<experiment>.json (schema 2)")
      Term.(const bench_cmd $ experiment_arg $ bench_n_arg $ json_dir_arg $ metrics_every_arg);
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Run the TCP serving front-end: the length-prefixed pipelined \
               binary protocol on $(b,--port), optionally the \
               memcached-text subset on $(b,--memcached-port); the store \
               is in-memory ($(b,--shards) worker domains) or recovered \
               from a durable $(b,--dir).  $(b,--duration) 0 serves until \
               killed.  Exits 3 when the bind or recovery fails")
      Term.(const serve $ port_arg $ mc_port_arg $ shards_arg $ dir_arg $ duration_arg $ workers_arg $ compress_flag_arg $ dict_arg);
    Cmd.v
      (Cmd.info "loadgen"
         ~doc:"Open-loop load generator with \
               coordinated-omission-safe latency (measured from scheduled \
               send times).  Default: a self-contained loopback acceptance \
               matrix — binary and memcached, 1 and 4 shards — preloading \
               the key universe and using ephemeral ports; $(b,--connect) \
               $(i,HOST:PORT) drives an external server instead.  \
               $(b,--json) $(i,DIR) writes BENCH_serve.json (schema 2).  \
               Exits 1 when any request errored, 3 when a connection \
               failed")
      Term.(const loadgen_cmd $ connect_arg $ protocol_arg $ qps_arg $ lg_duration_arg $ conns_arg $ depth_arg $ read_fraction_arg $ lg_keys_arg $ lg_seed_arg $ arrival_arg $ json_dir_arg);
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "hyperion_cli" ~version:"1.0.0"
             ~doc:"Hyperion in-memory search tree CLI")
          cmds))
