(* hyperion_cli — interactive / scripted driver for a Hyperion store.

   Subcommands:
     demo           load the paper's example words and dump the trie stats
     load-ints N    insert N sequential integers and report density
     load-ngrams N  insert N synthetic n-grams and report density
     audit          apply mutations from stdin, then structurally validate
                    the store; exit 1 when violations are found
     chaos          seeded differential run against the red-black-tree
                    oracle with fault injection; exit 1 on divergence
     repl           read commands from stdin:
                      put <key> <value> | add <key> | get <key>
                      del <key> | range <start> <limit> | audit
                      stats | quit *)

open Cmdliner

let make_store () =
  Hyperion.Store.create
    ~config:{ Hyperion.Config.strings with chunks_per_bin = 64 }
    ()

let report store =
  let st = Hyperion.Store.stats store in
  Printf.printf "keys           : %d\n" (Hyperion.Store.length store);
  Printf.printf "resident bytes : %d (%.1f B/key)\n"
    (Hyperion.Store.memory_usage store)
    (float_of_int (Hyperion.Store.memory_usage store)
    /. float_of_int (max 1 (Hyperion.Store.length store)));
  Printf.printf "containers     : %d (+%d embedded, %d split)\n"
    st.Hyperion.Stats.containers st.Hyperion.Stats.embedded_containers
    st.Hyperion.Stats.split_containers;
  Printf.printf "records        : %d T, %d S, %d delta-encoded\n"
    st.Hyperion.Stats.t_nodes st.Hyperion.Stats.s_nodes
    st.Hyperion.Stats.delta_encoded;
  Printf.printf "path compr.    : %d nodes, %d suffix bytes\n"
    st.Hyperion.Stats.pc_nodes st.Hyperion.Stats.pc_suffix_bytes;
  if st.Hyperion.Stats.saturated_arenas > 0 then
    Printf.printf "SATURATED      : %d arena(s) read-only (memory exhausted)\n"
      st.Hyperion.Stats.saturated_arenas

let demo () =
  let store = make_store () in
  List.iteri
    (fun i w -> Hyperion.Store.put store w (Int64.of_int i))
    [ "a"; "and"; "be"; "by"; "that"; "the"; "to" ];
  Hyperion.Store.range store (fun k v ->
      Printf.printf "%-6s -> %s\n" k
        (match v with Some v -> Int64.to_string v | None -> "(member)");
      true);
  report store

let load_ints n =
  let store = make_store () in
  let t0 = Unix.gettimeofday () in
  for i = 0 to n - 1 do
    Hyperion.Store.put store (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Int64.of_int i)
  done;
  Printf.printf "inserted %d sequential integers in %.2fs\n" n
    (Unix.gettimeofday () -. t0);
  report store

let load_ngrams n =
  let store = make_store () in
  let pairs = Workload.Ngram.generate ~n () in
  let t0 = Unix.gettimeofday () in
  Array.iter (fun (k, v) -> Hyperion.Store.put store k v) pairs;
  Printf.printf "inserted %d n-grams in %.2fs\n" n (Unix.gettimeofday () -. t0);
  report store

(* Print all structural violations; return the count. *)
let audit_store store =
  match Hyperion.Validate.check_store store with
  | [] ->
      print_endline "audit: OK, 0 violations";
      0
  | errs ->
      Printf.printf "audit: %d violation(s)\n" (List.length errs);
      List.iter
        (fun e -> Format.printf "  %a@." Hyperion.Validate.pp_error e)
        errs;
      List.length errs

let audit () =
  let store = make_store () in
  let rec loop lineno =
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
        (match String.split_on_char ' ' (String.trim line) with
        | [ "put"; k; v ] -> Hyperion.Store.put store k (Int64.of_string v)
        | [ "add"; k ] -> Hyperion.Store.add store k
        | [ "del"; k ] -> ignore (Hyperion.Store.delete store k)
        | [ "" ] | [ "quit" ] -> ()
        | _ -> Printf.eprintf "audit: line %d ignored: %s\n" lineno line);
        loop (lineno + 1))
  in
  loop 1;
  Printf.printf "loaded %d key(s)\n" (Hyperion.Store.length store);
  exit (if audit_store store > 0 then 1 else 0)

let chaos seed ops per_mille =
  if per_mille < 0 || per_mille > 1000 then begin
    prerr_endline "chaos: --per-mille must be in [0, 1000]";
    exit 2
  end;
  if ops < 0 then begin
    prerr_endline "chaos: --ops must be non-negative";
    exit 2
  end;
  let plan =
    if per_mille = 0 then Fault.none
    else Fault.seeded ~seed ~per_mille ~sites:Fault.all_sites
  in
  match Chaos.run ~plan ~seed ~ops () with
  | Ok o ->
      Format.printf "chaos: OK — %a@." Chaos.pp_outcome o;
      Format.printf "plan : %s@." (Fault.describe plan)
  | Error msg ->
      prerr_endline msg;
      exit 1

let repl () =
  let store = make_store () in
  let rec loop () =
    match input_line stdin with
    | exception End_of_file -> ()
    | line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "quit" ] -> ()
        | [ "stats" ] ->
            report store;
            loop ()
        | [ "audit" ] ->
            ignore (audit_store store);
            loop ()
        | [ "put"; k; v ] ->
            Hyperion.Store.put store k (Int64.of_string v);
            loop ()
        | [ "add"; k ] ->
            Hyperion.Store.add store k;
            loop ()
        | [ "get"; k ] ->
            (match Hyperion.Store.get store k with
            | Some v -> Printf.printf "%Ld\n" v
            | None ->
                print_endline
                  (if Hyperion.Store.mem store k then "(member)" else "(nil)"));
            loop ()
        | [ "del"; k ] ->
            Printf.printf "%b\n" (Hyperion.Store.delete store k);
            loop ()
        | [ "range"; start; limit ] ->
            let n = ref (int_of_string limit) in
            Hyperion.Store.range store ~start (fun k v ->
                Printf.printf "%s %s\n" k
                  (match v with Some v -> Int64.to_string v | None -> "-");
                decr n;
                !n > 0);
            loop ()
        | [ "" ] -> loop ()
        | _ ->
            print_endline "put|add|get|del|range|stats|quit";
            loop ())
  in
  loop ()

let n_arg = Arg.(value & pos 0 int 100_000 & info [] ~docv:"N")

let seed_arg =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED"
       ~doc:"Workload and fault-plan seed (replay a failing run with it).")

let ops_arg =
  Arg.(value & opt int 10_000 & info [ "ops" ] ~docv:"N"
       ~doc:"Number of random operations to execute.")

let per_mille_arg =
  Arg.(value & opt int 2 & info [ "per-mille" ] ~docv:"P"
       ~doc:"Fault probability per consultation in 1/1000 units; 0 disables \
             injection.")

let cmds =
  [
    Cmd.v (Cmd.info "demo" ~doc:"Paper example words") Term.(const demo $ const ());
    Cmd.v (Cmd.info "load-ints" ~doc:"Sequential integer load") Term.(const load_ints $ n_arg);
    Cmd.v (Cmd.info "load-ngrams" ~doc:"Synthetic n-gram load") Term.(const load_ngrams $ n_arg);
    Cmd.v
      (Cmd.info "audit"
         ~doc:"Apply put/add/del lines from stdin, then validate structure; \
               exits 1 when violations are found")
      Term.(const audit $ const ());
    Cmd.v
      (Cmd.info "chaos"
         ~doc:"Seeded differential run against the red-black-tree oracle \
               with fault injection; exits 1 on divergence")
      Term.(const chaos $ seed_arg $ ops_arg $ per_mille_arg);
    Cmd.v (Cmd.info "repl" ~doc:"Line-oriented REPL on stdin") Term.(const repl $ const ());
  ]

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "hyperion_cli" ~version:"1.0.0"
             ~doc:"Hyperion in-memory search tree CLI")
          cmds))
