(* ISSUE 5 analyzer suite.

   Prong 1 — the source lint: every rule is exercised rule-by-rule through
   [Lint.check_source] with a seeded violation (asserting the reported
   line number) and a clean counterpart, plus allow-list parsing and the
   SAFETY-comment placement contract.

   Prong 2 — the heap sanitizer: clean stores (hand-built and
   property-generated) must audit clean; chaos rounds run the sanitizer
   after every audit; and two negative tests prove the detectors actually
   fire — a chunk allocated behind the trie's back must be reported as a
   leak, and a duplicated root must be reported as a double reference. *)

module HC = Analyze.Heapcheck
module H = Hyperion

(* ---- lint: rule-by-rule ---------------------------------------------- *)

let hits vs = List.map (fun v -> (v.Lint.v_line, v.Lint.v_rule)) vs

let check_hits name expected vs =
  Alcotest.(check (list (pair int string))) name expected (hits vs)

let test_assert_false () =
  let src = "let f x =\n  match x with\n  | Some y -> y\n  | None -> assert false\n" in
  check_hits "flagged in strict modules"
    [ (4, "assert-false") ]
    (Lint.check_source ~strict:true ~file:"lib/core/x.ml" src);
  check_hits "allowed outside strict modules" []
    (Lint.check_source ~strict:false ~file:"lib/chaos/x.ml" src);
  (* [assert cond] with a real condition is not the banned form *)
  check_hits "assert with a condition passes" []
    (Lint.check_source ~strict:true ~file:"lib/core/x.ml"
       "let f x = assert (x >= 0)\n")

let test_obj_magic () =
  check_hits "flagged everywhere, strict or not"
    [ (2, "obj-magic") ]
    (Lint.check_source ~file:"lib/othertries/x.ml"
       "let coerce x =\n  Obj.magic x\n")

let allow_foo =
  { Lint.unsafe_modules = [ "lib/foo.ml" ]; mutable_fields = [] }

let test_unsafe () =
  let src = "let get a =\n  Array.unsafe_get a 0\n" in
  check_hits "flagged outside allow-listed modules"
    [ (2, "unsafe") ]
    (Lint.check_source ~file:"lib/foo.ml" src);
  check_hits "allow-listed module still needs a SAFETY comment"
    [ (2, "unsafe") ]
    (Lint.check_source ~allow:allow_foo ~file:"lib/foo.ml" src);
  check_hits "SAFETY comment inside the binding passes" []
    (Lint.check_source ~allow:allow_foo ~file:"lib/foo.ml"
       "let get a =\n  (* SAFETY: caller validated the index. *)\n  Array.unsafe_get a 0\n");
  (* the proof must sit inside the enclosing binding, not float above it *)
  check_hits "SAFETY comment above the binding does not count"
    [ (3, "unsafe") ]
    (Lint.check_source ~allow:allow_foo ~file:"lib/foo.ml"
       "(* SAFETY: detached. *)\nlet get a =\n  Array.unsafe_get a 0\n");
  check_hits "Bytes.unsafe_to_string is covered too"
    [ (1, "unsafe") ]
    (Lint.check_source ~file:"lib/foo.ml"
       "let s b = Bytes.unsafe_to_string b\n")

let test_catch_all () =
  check_hits "wildcard handler flagged"
    [ (1, "catch-all") ]
    (Lint.check_source ~file:"lib/x.ml" "let f g = try g () with _ -> 0\n");
  check_hits "bound-but-ignored exception flagged"
    [ (1, "catch-all") ]
    (Lint.check_source ~file:"lib/x.ml" "let f g = try g () with e -> 0\n");
  check_hits "handler that consults the exception passes" []
    (Lint.check_source ~file:"lib/x.ml"
       "let f g = try g () with e -> prerr_endline (Printexc.to_string e); 0\n");
  check_hits "specific exception pattern passes" []
    (Lint.check_source ~file:"lib/x.ml"
       "let f g = try g () with Not_found -> 0\n");
  check_hits "match-with-exception wildcard flagged"
    [ (1, "catch-all") ]
    (Lint.check_source ~file:"lib/x.ml"
       "let f g = match g () with x -> x | exception _ -> 0\n")

let test_mutable_field () =
  let src = "type t = {\n  mutable count : int;\n  name : string;\n}\n" in
  check_hits "mutable field flagged in shard-reachable files"
    [ (2, "mutable-field") ]
    (Lint.check_source ~reachable:true ~file:"lib/core/t.ml" src);
  check_hits "rule off outside the shard closure" []
    (Lint.check_source ~reachable:false ~file:"lib/bench_util/t.ml" src);
  check_hits "Atomic.t fields are exempt" []
    (Lint.check_source ~reachable:true ~file:"lib/core/t.ml"
       "type t = { mutable slot : int Atomic.t }\n");
  let allow =
    { Lint.unsafe_modules = []; mutable_fields = [ ("lib/core/t.ml", "t.count") ] }
  in
  check_hits "allow-listed field passes" []
    (Lint.check_source ~allow ~reachable:true ~file:"lib/core/t.ml" src);
  check_hits "inline (constructor) records are checked, keyed ty.Ctor.field"
    [ (1, "mutable-field") ]
    (Lint.check_source ~reachable:true ~file:"lib/core/t.ml"
       "type u = A of { mutable x : int }\n");
  let allow_inline =
    { Lint.unsafe_modules = []; mutable_fields = [ ("lib/core/t.ml", "u.A.x") ] }
  in
  check_hits "inline record allow-list key works" []
    (Lint.check_source ~allow:allow_inline ~reachable:true
       ~file:"lib/core/t.ml" "type u = A of { mutable x : int }\n")

let test_parse_failure () =
  match Lint.check_source ~file:"lib/x.ml" "let = = in\n" with
  | [ v ] -> Alcotest.(check string) "parse rule" "parse" v.Lint.v_rule
  | vs -> Alcotest.failf "expected one parse violation, got %d" (List.length vs)

let test_allow_parsing () =
  (match
     Lint.parse_allow ~file:"lint.allow"
       "# comment\nunsafe lib/a.ml\nmutable lib/b.ml t.x   # trailing\n\n"
   with
  | Ok a ->
      Alcotest.(check (list string)) "unsafe" [ "lib/a.ml" ] a.Lint.unsafe_modules;
      Alcotest.(check (list (pair string string)))
        "mutable"
        [ ("lib/b.ml", "t.x") ]
        a.Lint.mutable_fields
  | Error e -> Alcotest.failf "expected Ok, got %s" e);
  match Lint.parse_allow ~file:"lint.allow" "frobnicate lib/a.ml\n" with
  | Ok _ -> Alcotest.fail "bad directive accepted"
  | Error _ -> ()

let test_to_string () =
  Alcotest.(check string)
    "file:line rule message" "lib/a.ml:7 unsafe boom"
    (Lint.to_string
       { Lint.v_file = "lib/a.ml"; v_line = 7; v_rule = "unsafe"; v_msg = "boom" })

(* The repo's own tree must lint clean under its checked-in allow-list —
   the same invariant the CI job enforces via [bin/lint]. *)
let test_repo_lints_clean () =
  let root =
    (* tests run from _build/default/test; the sources live two up *)
    let candidates = [ "../.."; "../../.."; "." ] in
    match
      List.find_opt
        (fun r -> Sys.file_exists (Filename.concat r "lint.allow"))
        candidates
    with
    | Some r -> r
    | None -> Alcotest.skip ()
  in
  match Lint.load_allow (Filename.concat root "lint.allow") with
  | Error e -> Alcotest.failf "lint.allow unreadable: %s" e
  | Ok allow -> (
      match Lint.run ~allow ~root [ "lib" ] with
      | [] -> ()
      | vs ->
          Alcotest.failf "repo tree has %d lint violation(s); first: %s"
            (List.length vs)
            (Lint.to_string (List.hd vs)))

(* ---- heapcheck: soundness -------------------------------------------- *)

let cfg = { H.Config.strings with chunks_per_bin = 64 }

(* A key mix that forces embedded ejects, splits and extended-bin chains. *)
let key_for id =
  let base = Printf.sprintf "%06x" id in
  match id mod 5 with
  | 0 -> base
  | 1 -> base ^ "-tail"
  | 2 -> base ^ String.make (8 + (id mod 40)) 'x'
  | 3 -> "pfx/" ^ base
  | _ -> base ^ "!"

let build_store n =
  let s = H.Store.create ~config:cfg () in
  for i = 0 to n - 1 do
    H.Store.put s (key_for i) (Int64.of_int i)
  done;
  for i = 0 to (n / 3) - 1 do
    ignore (H.Store.delete s (key_for (3 * i)))
  done;
  s

let check_clean what s =
  let r = HC.audit_store s in
  if not (HC.ok r) then
    Alcotest.failf "%s: %s" what (Format.asprintf "%a" HC.pp_report r)

let test_clean_stores () =
  check_clean "empty store" (H.Store.create ~config:cfg ());
  check_clean "small store" (build_store 50);
  check_clean "store with deletes and splits" (build_store 3000);
  (* default config: multiple tries sharing round-robin arenas *)
  let s = H.Store.create () in
  for i = 0 to 999 do
    H.Store.put s (key_for i) (Int64.of_int i)
  done;
  check_clean "default config (shared arenas)" s

let test_report_counts () =
  let s = build_store 400 in
  let r = HC.audit_store s in
  Alcotest.(check bool) "clean" true (HC.ok r);
  Alcotest.(check bool) "chunks found" true (r.HC.chunks_allocated > 0);
  Alcotest.(check bool) "containers walked" true (r.HC.containers_walked > 0);
  Alcotest.(check int)
    "sweep count matches the allocator's own counter"
    (H.Store.allocated_chunks s) r.HC.chunks_allocated

(* ---- heapcheck: the detectors must actually fire --------------------- *)

let rules r = List.map (fun p -> p.HC.p_rule) r.HC.problems

let test_detects_leak () =
  let s = build_store 200 in
  let trie = (H.Store.internal_tries s).(0) in
  (* allocate behind the trie's back: no live HP will ever reference it *)
  let hp = H.Memman.alloc trie.H.Types.mm 40 in
  let r = HC.audit_store s in
  Alcotest.(check bool) "audit fails" false (HC.ok r);
  Alcotest.(check bool) "reported as a leak" true (List.mem "leak" (rules r));
  (* the report names the leaked chunk's coordinates *)
  let mentions =
    List.exists
      (fun p ->
        p.HC.p_rule = "leak"
        && (let coords =
              Printf.sprintf "%d.%d.%d.%d" (H.Hp.superbin hp) (H.Hp.metabin hp)
                (H.Hp.bin hp) (H.Hp.chunk hp)
            in
            let detail = p.HC.p_detail in
            let cl = String.length coords and dl = String.length detail in
            let rec scan i =
              i + cl <= dl && (String.sub detail i cl = coords || scan (i + 1))
            in
            scan 0))
      r.HC.problems
  in
  Alcotest.(check bool) "leak detail carries the chunk coordinates" true mentions;
  (* freeing the stray chunk heals the heap *)
  H.Memman.free trie.H.Types.mm hp;
  check_clean "after freeing the stray chunk" s

let test_detects_double_ref () =
  let s = build_store 200 in
  let trie = (H.Store.internal_tries s).(0) in
  (* inject the root as an extra root: two live references, one chunk *)
  let r = HC.audit_store ~extra_roots:[ trie.H.Types.root ] s in
  Alcotest.(check bool) "audit fails" false (HC.ok r);
  Alcotest.(check bool)
    "reported as a double reference" true
    (List.mem "double-ref" (rules r));
  (* without the injection the same store is clean *)
  check_clean "same store without the extra root" s

(* ---- properties ------------------------------------------------------ *)

(* Random mutation scripts leave a heap that audits clean and a structure
   that validates clean. *)
let prop_random_store_clean =
  QCheck.Test.make ~count:25 ~name:"heapcheck: random stores audit clean"
    QCheck.(pair (int_bound 0x3fff) (int_bound 600))
    (fun (salt, n) ->
      let s = H.Store.create ~config:cfg () in
      for i = 0 to n - 1 do
        let id = (i * 2654435761) + salt land 0xffff in
        match i mod 7 with
        | 0 | 1 | 2 | 3 -> H.Store.put s (key_for (id land 0xfff)) (Int64.of_int i)
        | 4 -> H.Store.add s (key_for (id land 0xfff))
        | _ -> ignore (H.Store.delete s (key_for (id land 0xfff)))
      done;
      H.Validate.check_store s = [] && HC.ok (HC.audit_store s))

(* Full chaos rounds: [Chaos.run] executes Validate + Heapcheck.audit after
   every audit round (fault firings included) — an Error here carries the
   seed as a replay recipe. *)
let prop_chaos_rounds_clean =
  QCheck.Test.make ~count:8 ~name:"chaos rounds pass validate + heapcheck"
    QCheck.(int_bound 0xffffff)
    (fun seed ->
      match
        Chaos.run ~config:cfg ~validate_every:150 ~heapcheck:true
          ~seed:(Int64.of_int seed) ~ops:600 ()
      with
      | Ok _ -> true
      | Error msg -> QCheck.Test.fail_report msg)

let () =
  Alcotest.run "analyze"
    [
      ( "lint",
        [
          Alcotest.test_case "assert-false" `Quick test_assert_false;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "unsafe + SAFETY placement" `Quick test_unsafe;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "mutable-field" `Quick test_mutable_field;
          Alcotest.test_case "parse failure" `Quick test_parse_failure;
          Alcotest.test_case "allow-list parsing" `Quick test_allow_parsing;
          Alcotest.test_case "violation format" `Quick test_to_string;
          Alcotest.test_case "repo tree lints clean" `Quick test_repo_lints_clean;
        ] );
      ( "heapcheck",
        [
          Alcotest.test_case "clean stores audit clean" `Quick test_clean_stores;
          Alcotest.test_case "report counts" `Quick test_report_counts;
          Alcotest.test_case "leak detection" `Quick test_detects_leak;
          Alcotest.test_case "double-ref detection" `Quick test_detects_double_ref;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_store_clean;
          QCheck_alcotest.to_alcotest prop_chaos_rounds_clean;
        ] );
    ]
