(* ISSUE 5 + ISSUE 10 analyzer suite.

   Prong 1 — the source lint: every parsetree rule is exercised
   rule-by-rule through [Lint.check_source] with a seeded violation
   (asserting the reported line number) and a clean counterpart, plus
   allow-list parsing, stale-entry detection, JSON output and the
   SAFETY-comment placement contract.

   Prong 2 — Racecheck: each typedtree rule family (guarded-by
   discipline, requires/wrapper annotations, cross-domain escape,
   blocking-under-lock, lock-order) is driven through
   [Racecheck.check_source] fixtures with exact line asserts, violating
   and sanctioned variants.

   Prong 3 — the heap sanitizer: clean stores (hand-built and
   property-generated) must audit clean; chaos rounds run the sanitizer
   after every audit; and two negative tests prove the detectors actually
   fire — a chunk allocated behind the trie's back must be reported as a
   leak, and a duplicated root must be reported as a double reference. *)

module HC = Analyze.Heapcheck
module H = Hyperion

(* ---- shared helpers -------------------------------------------------- *)

let hits vs = List.map (fun v -> (v.Lint.v_line, v.Lint.v_rule)) vs

let check_hits name expected vs =
  Alcotest.(check (list (pair int string))) name expected (hits vs)

let allow_of text =
  match Lint.parse_allow ~file:"lint.allow" text with
  | Ok a -> a
  | Error e -> Alcotest.failf "allow-list did not parse: %s" e

(* ---- lint: rule-by-rule ---------------------------------------------- *)

let test_assert_false () =
  let src = "let f x =\n  match x with\n  | Some y -> y\n  | None -> assert false\n" in
  check_hits "flagged in strict modules"
    [ (4, "assert-false") ]
    (Lint.check_source ~strict:true ~file:"lib/core/x.ml" src);
  check_hits "allowed outside strict modules" []
    (Lint.check_source ~strict:false ~file:"lib/chaos/x.ml" src);
  (* [assert cond] with a real condition is not the banned form *)
  check_hits "assert with a condition passes" []
    (Lint.check_source ~strict:true ~file:"lib/core/x.ml"
       "let f x = assert (x >= 0)\n")

let test_obj_magic () =
  check_hits "flagged everywhere, strict or not"
    [ (2, "obj-magic") ]
    (Lint.check_source ~file:"lib/othertries/x.ml"
       "let coerce x =\n  Obj.magic x\n")

let allow_foo = allow_of "unsafe lib/foo.ml\n"

let test_unsafe () =
  let src = "let get a =\n  Array.unsafe_get a 0\n" in
  check_hits "flagged outside allow-listed modules"
    [ (2, "unsafe") ]
    (Lint.check_source ~file:"lib/foo.ml" src);
  check_hits "allow-listed module still needs a SAFETY comment"
    [ (2, "unsafe") ]
    (Lint.check_source ~allow:allow_foo ~file:"lib/foo.ml" src);
  check_hits "SAFETY comment inside the binding passes" []
    (Lint.check_source ~allow:allow_foo ~file:"lib/foo.ml"
       "let get a =\n  (* SAFETY: caller validated the index. *)\n  Array.unsafe_get a 0\n");
  (* the proof must sit inside the enclosing binding, not float above it *)
  check_hits "SAFETY comment above the binding does not count"
    [ (3, "unsafe") ]
    (Lint.check_source ~allow:allow_foo ~file:"lib/foo.ml"
       "(* SAFETY: detached. *)\nlet get a =\n  Array.unsafe_get a 0\n");
  check_hits "Bytes.unsafe_to_string is covered too"
    [ (1, "unsafe") ]
    (Lint.check_source ~file:"lib/foo.ml"
       "let s b = Bytes.unsafe_to_string b\n")

let test_catch_all () =
  check_hits "wildcard handler flagged"
    [ (1, "catch-all") ]
    (Lint.check_source ~file:"lib/x.ml" "let f g = try g () with _ -> 0\n");
  check_hits "bound-but-ignored exception flagged"
    [ (1, "catch-all") ]
    (Lint.check_source ~file:"lib/x.ml" "let f g = try g () with e -> 0\n");
  check_hits "handler that consults the exception passes" []
    (Lint.check_source ~file:"lib/x.ml"
       "let f g = try g () with e -> prerr_endline (Printexc.to_string e); 0\n");
  check_hits "specific exception pattern passes" []
    (Lint.check_source ~file:"lib/x.ml"
       "let f g = try g () with Not_found -> 0\n");
  check_hits "match-with-exception wildcard flagged"
    [ (1, "catch-all") ]
    (Lint.check_source ~file:"lib/x.ml"
       "let f g = match g () with x -> x | exception _ -> 0\n")

let test_parse_failure () =
  match Lint.check_source ~file:"lib/x.ml" "let = = in\n" with
  | [ v ] -> Alcotest.(check string) "parse rule" "parse" v.Lint.v_rule
  | vs -> Alcotest.failf "expected one parse violation, got %d" (List.length vs)

let test_allow_parsing () =
  (match
     Lint.parse_allow ~file:"lint.allow"
       "# comment\n\
        unsafe lib/a.ml\n\
        unguarded lib/b.ml t.x   # trailing\n\
        racy-read lib/b.ml t.y\n\
        nonblocking Store.t.locks\n\
        lockorder A.t.m B.t.m\n\n"
   with
  | Ok a ->
      Alcotest.(check (list (list string)))
        "unsafe" [ [ "lib/a.ml" ] ] (Lint.directives a "unsafe");
      Alcotest.(check (list (list string)))
        "unguarded" [ [ "lib/b.ml"; "t.x" ] ] (Lint.directives a "unguarded");
      Alcotest.(check (list (list string)))
        "racy-read" [ [ "lib/b.ml"; "t.y" ] ] (Lint.directives a "racy-read");
      Alcotest.(check (list (list string)))
        "lockorder" [ [ "A.t.m"; "B.t.m" ] ] (Lint.directives a "lockorder");
      Alcotest.(check bool) "allowed marks used" true
        (Lint.allowed a [ "unsafe"; "lib/a.ml" ])
  | Error e -> Alcotest.failf "expected Ok, got %s" e);
  (match Lint.parse_allow ~file:"lint.allow" "frobnicate lib/a.ml\n" with
  | Ok _ -> Alcotest.fail "bad directive accepted"
  | Error _ -> ());
  (match Lint.parse_allow ~file:"lint.allow" "mutable lib/b.ml t.x\n" with
  | Ok _ -> Alcotest.fail "retired 'mutable' directive accepted"
  | Error _ -> ());
  match Lint.parse_allow ~file:"lint.allow" "unsafe lib/a.ml extra\n" with
  | Ok _ -> Alcotest.fail "wrong arity accepted"
  | Error _ -> ()

let test_stale_allow () =
  (* an entry no rule consults is reported at its own allow-file line *)
  let allow = allow_of "# header\nunsafe lib/zzz.ml\n" in
  ignore (Lint.check_source ~allow ~file:"lib/x.ml" "let x = 1\n");
  check_hits "unused entry reported"
    [ (2, "stale-allow") ]
    (Lint.stale allow);
  (* a consulted entry is not stale, even when it suppressed nothing *)
  let allow = allow_of "unsafe lib/x.ml\n" in
  ignore
    (Lint.check_source ~allow ~file:"lib/x.ml"
       "let get a =\n  (* SAFETY: proven. *)\n  Array.unsafe_get a 0\n");
  check_hits "consulted entry is not stale" [] (Lint.stale allow)

let test_to_string () =
  Alcotest.(check string)
    "file:line rule message" "lib/a.ml:7 unsafe boom"
    (Lint.to_string
       { Lint.v_file = "lib/a.ml"; v_line = 7; v_rule = "unsafe"; v_msg = "boom" })

let test_json () =
  Alcotest.(check string)
    "empty document"
    "{\"tool\":\"hyperion-lint\",\"version\":1,\"count\":0,\"violations\":[]}"
    (Lint.to_json []);
  Alcotest.(check string)
    "quotes and backslashes escaped"
    ("{\"tool\":\"hyperion-lint\",\"version\":1,\"count\":1,\"violations\":["
    ^ "{\"file\":\"lib/a.ml\",\"line\":3,\"rule\":\"unsafe\","
    ^ "\"message\":\"say \\\"hi\\\"\"}]}")
    (Lint.to_json
       [
         {
           Lint.v_file = "lib/a.ml";
           v_line = 3;
           v_rule = "unsafe";
           v_msg = "say \"hi\"";
         };
       ])

(* ---- racecheck: rule-by-rule fixtures -------------------------------- *)

(* Each fixture is typechecked against the installed stdlib and analyzed
   as a concurrent unit; the [lib/fix/...] paths exist only as unit names
   and allow-list keys. *)
let rc_hits ?allow ~file src =
  hits (Lint.sort_violations (Racecheck.check_source ?allow ~file src))

let check_rc name ?allow ~file expected src =
  Alcotest.(check (list (pair int string))) name expected (rc_hits ?allow ~file src)

let decl_src = "type t = { mutable n : int }\n\nlet bump t = t.n <- t.n + 1\n"

let test_rc_declaration () =
  check_rc "undeclared mutable field flagged at its declaration"
    ~file:"lib/fix/rc_decl.ml"
    [ (1, "racecheck-guarded") ]
    decl_src;
  check_rc "justified 'unguarded' entry suppresses it"
    ~allow:(allow_of "unguarded lib/fix/rc_decl.ml Rc_decl.t.n\n")
    ~file:"lib/fix/rc_decl.ml" [] decl_src;
  check_rc "Atomic.t mutable slots are exempt"
    ~file:"lib/fix/rc_decl.ml" []
    "type t = { mutable a : int Atomic.t }\n\nlet v t = Atomic.get t.a\n"

let access_src =
  "type t = {\n\
  \  lock : Mutex.t;\n\
  \  mutable n : int; [@guarded_by lock]\n\
   }\n\
   \n\
   let good t =\n\
  \  Mutex.lock t.lock;\n\
  \  t.n <- t.n + 1;\n\
  \  Mutex.unlock t.lock\n\
   \n\
   let protected t = Mutex.protect t.lock (fun () -> t.n)\n\
   \n\
   let bad_write t = t.n <- 7\n\
   \n\
   let bad_read t = t.n\n"

let test_rc_guarded_access () =
  check_rc "accesses outside the lock region flagged; guarded regions pass"
    ~file:"lib/fix/rc_access.ml"
    [ (13, "racecheck-guarded"); (15, "racecheck-guarded") ]
    access_src;
  check_rc "'racy-read' allows the read but never the write"
    ~allow:(allow_of "racy-read lib/fix/rc_access.ml Rc_access.t.n\n")
    ~file:"lib/fix/rc_access.ml"
    [ (13, "racecheck-guarded") ]
    access_src

let wrap_src =
  "type t = {\n\
  \  lock : Mutex.t;\n\
  \  mutable n : int; [@guarded_by lock]\n\
   }\n\
   \n\
   let with_lock t f =\n\
  \  Mutex.lock t.lock;\n\
  \  let r = f () in\n\
  \  Mutex.unlock t.lock;\n\
  \  r\n\
   [@@lock_wrapper \"Rc_wrap.t.lock\"]\n\
   \n\
   let bump t = t.n <- t.n + 1 [@@requires_lock \"Rc_wrap.t.lock\"]\n\
   \n\
   let ok t = with_lock t (fun () -> bump t)\n\
   \n\
   let bad t = bump t\n"

let test_rc_requires_wrapper () =
  check_rc
    "requires_lock body passes; wrapper call satisfies it; bare call flagged"
    ~file:"lib/fix/rc_wrap.ml"
    [ (17, "racecheck-guarded") ]
    wrap_src

let escape_src =
  "let leak () =\n\
  \  let results = Array.make 4 0 in\n\
  \  let d = Domain.spawn (fun () -> results.(0) <- 1) in\n\
  \  Domain.join d;\n\
  \  results.(0)\n"

let test_rc_escape () =
  check_rc "spawn-captured array write with no lock flagged"
    ~file:"lib/fix/rc_escape.ml"
    [ (3, "racecheck-escape") ]
    escape_src;
  check_rc "justified 'escape' entry suppresses it"
    ~allow:(allow_of "escape lib/fix/rc_escape.ml results\n")
    ~file:"lib/fix/rc_escape.ml" [] escape_src

let block_src =
  "type t = { m : Mutex.t }\n\
   \n\
   let slow c m2 = Condition.wait c m2\n\
   \n\
   let direct t c m2 =\n\
  \  Mutex.lock t.m;\n\
  \  Condition.wait c m2;\n\
  \  Mutex.unlock t.m\n\
   \n\
   let indirect t c m2 =\n\
  \  Mutex.lock t.m;\n\
  \  slow c m2;\n\
  \  Mutex.unlock t.m\n\
   \n\
   let ok t c =\n\
  \  Mutex.lock t.m;\n\
  \  Condition.wait c t.m;\n\
  \  Mutex.unlock t.m\n"

let test_rc_blocking () =
  (* direct wait on a foreign condvar and an indirect call through the
     blocking-effect closure are both flagged; waiting on the held lock's
     own condvar (releasing it) is the sanctioned pattern *)
  check_rc "blocking under a nonblocking-class lock"
    ~allow:(allow_of "nonblocking Rc_block.t.m\n")
    ~file:"lib/fix/rc_block.ml"
    [ (7, "racecheck-blocking"); (12, "racecheck-blocking") ]
    block_src;
  check_rc "no nonblocking declaration, no blocking rule"
    ~file:"lib/fix/rc_block.ml" [] block_src

let order_src =
  "type t = { a : Mutex.t; b : Mutex.t }\n\
   \n\
   let nested t =\n\
  \  Mutex.lock t.a;\n\
  \  Mutex.lock t.b;\n\
  \  Mutex.unlock t.b;\n\
  \  Mutex.unlock t.a\n"

let test_rc_order_edge () =
  check_rc "undeclared lock-order edge flagged at the inner acquisition"
    ~file:"lib/fix/rc_order.ml"
    [ (5, "racecheck-order") ]
    order_src;
  check_rc "sanctioned hierarchy edge passes"
    ~allow:(allow_of "lockorder Rc_order.t.a Rc_order.t.b\n")
    ~file:"lib/fix/rc_order.ml" [] order_src

let cycle_src =
  "type t = { a : Mutex.t; b : Mutex.t }\n\
   \n\
   let ab t =\n\
  \  Mutex.lock t.a;\n\
  \  Mutex.lock t.b;\n\
  \  Mutex.unlock t.b;\n\
  \  Mutex.unlock t.a\n\
   \n\
   let ba t =\n\
  \  Mutex.lock t.b;\n\
  \  Mutex.lock t.a;\n\
  \  Mutex.unlock t.a;\n\
  \  Mutex.unlock t.b\n"

let test_rc_order_cycle () =
  (* both edges of the a<->b cycle are reported, sanctioned or not *)
  check_rc "lock-order cycle reported on every participating edge"
    ~file:"lib/fix/rc_cycle.ml"
    [ (5, "racecheck-order"); (11, "racecheck-order") ]
    cycle_src;
  check_rc "a lockorder entry cannot sanction a cycle"
    ~allow:
      (allow_of
         "lockorder Rc_cycle.t.a Rc_cycle.t.b\n\
          lockorder Rc_cycle.t.b Rc_cycle.t.a\n")
    ~file:"lib/fix/rc_cycle.ml"
    (* the two runtime edges, plus one report per cyclic lockorder entry
       (anchored at the allow file, which sorts after lib/fix/...) *)
    [ (5, "racecheck-order");
      (11, "racecheck-order");
      (1, "racecheck-order");
      (1, "racecheck-order")
    ]
    cycle_src

(* ---- the repo's own tree --------------------------------------------- *)

let find_repo_root () =
  (* tests run from _build/default/test; the sources live above _build *)
  let candidates = [ "../.."; "../../.."; "." ] in
  List.find_opt
    (fun r -> Sys.file_exists (Filename.concat r "lint.allow"))
    candidates

(* The repo must lint clean under its checked-in allow-list — the same
   invariant the CI job enforces via [bin/lint]. *)
let test_repo_lints_clean () =
  let root =
    match find_repo_root () with Some r -> r | None -> Alcotest.skip ()
  in
  match Lint.load_allow (Filename.concat root "lint.allow") with
  | Error e -> Alcotest.failf "lint.allow unreadable: %s" e
  | Ok allow -> (
      match Lint.run ~allow ~root [ "lib" ] with
      | [] -> ()
      | vs ->
          Alcotest.failf "repo tree has %d lint violation(s); first: %s"
            (List.length vs)
            (Lint.to_string (List.hd vs)))

(* And it must racecheck clean, with every allow entry earning its keep
   (no stale entries).  Skipped when the cmt tree is absent or partial —
   the CI racecheck job is the authoritative gate after a full build. *)
let test_repo_racechecks_clean () =
  let root =
    match find_repo_root () with Some r -> r | None -> Alcotest.skip ()
  in
  if not (Racecheck.available ~root) then Alcotest.skip ();
  match Lint.load_allow (Filename.concat root "lint.allow") with
  | Error e -> Alcotest.failf "lint.allow unreadable: %s" e
  | Ok allow ->
      let lint_vs = Lint.run ~allow ~root [ "lib" ] in
      let rc_vs = Racecheck.run ~allow ~root [ "lib" ] in
      if
        List.exists
          (fun v -> v.Lint.v_rule = "racecheck-unavailable")
          rc_vs
      then Alcotest.skip ();
      match Lint.sort_violations (lint_vs @ rc_vs @ Lint.stale allow) with
      | [] -> ()
      | vs ->
          Alcotest.failf
            "repo tree has %d lint+racecheck violation(s); first: %s"
            (List.length vs)
            (Lint.to_string (List.hd vs))

(* ---- heapcheck: soundness -------------------------------------------- *)

let cfg = { H.Config.strings with chunks_per_bin = 64 }

(* A key mix that forces embedded ejects, splits and extended-bin chains. *)
let key_for id =
  let base = Printf.sprintf "%06x" id in
  match id mod 5 with
  | 0 -> base
  | 1 -> base ^ "-tail"
  | 2 -> base ^ String.make (8 + (id mod 40)) 'x'
  | 3 -> "pfx/" ^ base
  | _ -> base ^ "!"

let build_store n =
  let s = H.Store.create ~config:cfg () in
  for i = 0 to n - 1 do
    H.Store.put s (key_for i) (Int64.of_int i)
  done;
  for i = 0 to (n / 3) - 1 do
    ignore (H.Store.delete s (key_for (3 * i)))
  done;
  s

let check_clean what s =
  let r = HC.audit_store s in
  if not (HC.ok r) then
    Alcotest.failf "%s: %s" what (Format.asprintf "%a" HC.pp_report r)

let test_clean_stores () =
  check_clean "empty store" (H.Store.create ~config:cfg ());
  check_clean "small store" (build_store 50);
  check_clean "store with deletes and splits" (build_store 3000);
  (* default config: multiple tries sharing round-robin arenas *)
  let s = H.Store.create () in
  for i = 0 to 999 do
    H.Store.put s (key_for i) (Int64.of_int i)
  done;
  check_clean "default config (shared arenas)" s

let test_report_counts () =
  let s = build_store 400 in
  let r = HC.audit_store s in
  Alcotest.(check bool) "clean" true (HC.ok r);
  Alcotest.(check bool) "chunks found" true (r.HC.chunks_allocated > 0);
  Alcotest.(check bool) "containers walked" true (r.HC.containers_walked > 0);
  Alcotest.(check int)
    "sweep count matches the allocator's own counter"
    (H.Store.allocated_chunks s) r.HC.chunks_allocated

(* ---- heapcheck: the detectors must actually fire --------------------- *)

let rules r = List.map (fun p -> p.HC.p_rule) r.HC.problems

let test_detects_leak () =
  let s = build_store 200 in
  let trie = (H.Store.internal_tries s).(0) in
  (* allocate behind the trie's back: no live HP will ever reference it *)
  let hp = H.Memman.alloc trie.H.Types.mm 40 in
  let r = HC.audit_store s in
  Alcotest.(check bool) "audit fails" false (HC.ok r);
  Alcotest.(check bool) "reported as a leak" true (List.mem "leak" (rules r));
  (* the report names the leaked chunk's coordinates *)
  let mentions =
    List.exists
      (fun p ->
        p.HC.p_rule = "leak"
        && (let coords =
              Printf.sprintf "%d.%d.%d.%d" (H.Hp.superbin hp) (H.Hp.metabin hp)
                (H.Hp.bin hp) (H.Hp.chunk hp)
            in
            let detail = p.HC.p_detail in
            let cl = String.length coords and dl = String.length detail in
            let rec scan i =
              i + cl <= dl && (String.sub detail i cl = coords || scan (i + 1))
            in
            scan 0))
      r.HC.problems
  in
  Alcotest.(check bool) "leak detail carries the chunk coordinates" true mentions;
  (* freeing the stray chunk heals the heap *)
  H.Memman.free trie.H.Types.mm hp;
  check_clean "after freeing the stray chunk" s

let test_detects_double_ref () =
  let s = build_store 200 in
  let trie = (H.Store.internal_tries s).(0) in
  (* inject the root as an extra root: two live references, one chunk *)
  let r = HC.audit_store ~extra_roots:[ trie.H.Types.root ] s in
  Alcotest.(check bool) "audit fails" false (HC.ok r);
  Alcotest.(check bool)
    "reported as a double reference" true
    (List.mem "double-ref" (rules r));
  (* without the injection the same store is clean *)
  check_clean "same store without the extra root" s

(* ---- properties ------------------------------------------------------ *)

(* Random mutation scripts leave a heap that audits clean and a structure
   that validates clean. *)
let prop_random_store_clean =
  QCheck.Test.make ~count:25 ~name:"heapcheck: random stores audit clean"
    QCheck.(pair (int_bound 0x3fff) (int_bound 600))
    (fun (salt, n) ->
      let s = H.Store.create ~config:cfg () in
      for i = 0 to n - 1 do
        let id = (i * 2654435761) + salt land 0xffff in
        match i mod 7 with
        | 0 | 1 | 2 | 3 -> H.Store.put s (key_for (id land 0xfff)) (Int64.of_int i)
        | 4 -> H.Store.add s (key_for (id land 0xfff))
        | _ -> ignore (H.Store.delete s (key_for (id land 0xfff)))
      done;
      H.Validate.check_store s = [] && HC.ok (HC.audit_store s))

(* Full chaos rounds: [Chaos.run] executes Validate + Heapcheck.audit after
   every audit round (fault firings included) — an Error here carries the
   seed as a replay recipe. *)
let prop_chaos_rounds_clean =
  QCheck.Test.make ~count:8 ~name:"chaos rounds pass validate + heapcheck"
    QCheck.(int_bound 0xffffff)
    (fun seed ->
      match
        Chaos.run ~config:cfg ~validate_every:150 ~heapcheck:true
          ~seed:(Int64.of_int seed) ~ops:600 ()
      with
      | Ok _ -> true
      | Error msg -> QCheck.Test.fail_report msg)

let () =
  Alcotest.run "analyze"
    [
      ( "lint",
        [
          Alcotest.test_case "assert-false" `Quick test_assert_false;
          Alcotest.test_case "obj-magic" `Quick test_obj_magic;
          Alcotest.test_case "unsafe + SAFETY placement" `Quick test_unsafe;
          Alcotest.test_case "catch-all" `Quick test_catch_all;
          Alcotest.test_case "parse failure" `Quick test_parse_failure;
          Alcotest.test_case "allow-list parsing" `Quick test_allow_parsing;
          Alcotest.test_case "stale allow entries" `Quick test_stale_allow;
          Alcotest.test_case "violation format" `Quick test_to_string;
          Alcotest.test_case "json output" `Quick test_json;
        ] );
      ( "racecheck",
        [
          Alcotest.test_case "guarded: declaration completeness" `Quick
            test_rc_declaration;
          Alcotest.test_case "guarded: lock regions + racy-read" `Quick
            test_rc_guarded_access;
          Alcotest.test_case "guarded: requires_lock + lock_wrapper" `Quick
            test_rc_requires_wrapper;
          Alcotest.test_case "escape: spawn-captured state" `Quick
            test_rc_escape;
          Alcotest.test_case "blocking: under nonblocking locks" `Quick
            test_rc_blocking;
          Alcotest.test_case "order: undeclared edge" `Quick test_rc_order_edge;
          Alcotest.test_case "order: cycle detection" `Quick
            test_rc_order_cycle;
        ] );
      ( "repo",
        [
          Alcotest.test_case "tree lints clean" `Quick test_repo_lints_clean;
          Alcotest.test_case "tree racechecks clean (no stale allows)" `Quick
            test_repo_racechecks_clean;
        ] );
      ( "heapcheck",
        [
          Alcotest.test_case "clean stores audit clean" `Quick test_clean_stores;
          Alcotest.test_case "report counts" `Quick test_report_counts;
          Alcotest.test_case "leak detection" `Quick test_detects_leak;
          Alcotest.test_case "double-ref detection" `Quick test_detects_double_ref;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_store_clean;
          QCheck_alcotest.to_alcotest prop_chaos_rounds_clean;
        ] );
    ]
