(* Tests of the multi-domain sharded front-end: routing, blocking and
   batched mutation paths, durable open/close/reopen, and the qcheck
   property behind the quiescence barrier — iter/length observe a single
   consistent point-in-time cut while client domains keep mutating. *)

module Sh = Hyperion_shard
module E = Hyperion.Hyperion_error

let cfg = { Hyperion.Config.default with chunks_per_bin = 64 }

let with_store ?(shards = 4) f =
  let t = Sh.create ~config:cfg ~shards () in
  Fun.protect ~finally:(fun () -> ignore (Sh.close t)) (fun () -> f t)

(* --- routing --------------------------------------------------------- *)

let test_routing () =
  with_store (fun t ->
      Alcotest.(check int) "shards" 4 (Sh.shards t);
      Alcotest.(check bool) "in-memory" false (Sh.durable t);
      Alcotest.(check int) "byte 0" 0 (Sh.shard_of_key t "\x00");
      Alcotest.(check int) "byte 63" 0 (Sh.shard_of_key t "\x3fabc");
      Alcotest.(check int) "byte 64" 1 (Sh.shard_of_key t "\x40");
      Alcotest.(check int) "byte 255" 3 (Sh.shard_of_key t "\xff");
      (* contiguous ranges: routing is monotone in the first byte and every
         shard owns at least one byte *)
      let seen = Array.make 4 false in
      let prev = ref 0 in
      for b = 0 to 255 do
        let s = Sh.shard_of_key t (String.make 1 (Char.chr b)) in
        Alcotest.(check bool) "monotone" true (s >= !prev);
        prev := s;
        seen.(s) <- true
      done;
      Array.iteri
        (fun i hit ->
          Alcotest.(check bool) (Printf.sprintf "shard %d reachable" i) true hit)
        seen);
  with_store ~shards:1 (fun t ->
      Alcotest.(check int) "single shard" 0 (Sh.shard_of_key t "\xff"))

(* --- blocking operations --------------------------------------------- *)

let key_b b = Printf.sprintf "%ckey%03d" (Char.chr b) b

let test_blocking_ops () =
  with_store (fun t ->
      for b = 0 to 255 do
        Sh.put t (key_b b) (Int64.of_int b)
      done;
      Alcotest.(check int) "length" 256 (Sh.length t);
      for b = 0 to 255 do
        Alcotest.(check (option int64)) "get" (Some (Int64.of_int b))
          (Sh.get t (key_b b));
        Alcotest.(check bool) "mem" true (Sh.mem t (key_b b))
      done;
      Alcotest.(check (option int64)) "absent" None (Sh.get t "nope");
      (* valueless keys *)
      Sh.add t "\x10set-member";
      Alcotest.(check bool) "added" true (Sh.mem t "\x10set-member");
      Alcotest.(check (option int64)) "no value" None (Sh.get t "\x10set-member");
      (* overwrite through the result API *)
      Alcotest.(check (result unit string)) "put_result" (Ok ())
        (Result.map_error E.to_string (Sh.put_result t (key_b 7) 777L));
      Alcotest.(check (option int64)) "overwritten" (Some 777L)
        (Sh.get t (key_b 7));
      (* deletes across all shards *)
      for b = 0 to 255 do
        if b mod 2 = 0 then
          Alcotest.(check bool) "deleted" true (Sh.delete t (key_b b))
      done;
      Alcotest.(check bool) "gone" false (Sh.mem t (key_b 0));
      Alcotest.(check int) "length after deletes" 129 (Sh.length t);
      Alcotest.(check (result bool string)) "delete absent" (Ok false)
        (Result.map_error E.to_string (Sh.delete_result t (key_b 0))))

let test_empty_key () =
  with_store (fun t ->
      Alcotest.check_raises "put raises" (Invalid_argument
        "Hyperion_shard: empty key") (fun () -> Sh.put t "" 1L);
      match Sh.put_result t "" 1L with
      | Error E.Empty_key -> ()
      | Error e -> Alcotest.fail ("wrong error: " ^ E.to_string e)
      | Ok () -> Alcotest.fail "empty key accepted")

let test_iter_global_order () =
  with_store (fun t ->
      for b = 255 downto 0 do
        Sh.put t (key_b b) (Int64.of_int b)
      done;
      let keys = ref [] in
      Sh.iter t (fun k _ -> keys := k :: !keys);
      let keys = List.rev !keys in
      Alcotest.(check int) "all visited" 256 (List.length keys);
      let rec sorted = function
        | a :: (b :: _ as rest) -> a < b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "globally ascending" true (sorted keys);
      let total =
        Sh.fold t ~init:0L ~f:(fun acc _ v ->
            Int64.add acc (Option.value v ~default:0L))
      in
      Alcotest.(check int64) "fold sum" (Int64.of_int (255 * 256 / 2)) total)

(* --- batch path ------------------------------------------------------ *)

let test_batch () =
  with_store (fun t ->
      let b = Sh.Batch.create t in
      Alcotest.(check (result int string)) "empty flush" (Ok 0)
        (Result.map_error E.to_string (Sh.Batch.flush b));
      for i = 0 to 999 do
        Sh.Batch.put b (key_b (i mod 256) ^ string_of_int i) (Int64.of_int i)
      done;
      Sh.Batch.add b "\x80tag";
      Alcotest.(check int) "buffered" 1001 (Sh.Batch.length b);
      Alcotest.(check (result int string)) "flush" (Ok 1001)
        (Result.map_error E.to_string (Sh.Batch.flush b));
      Alcotest.(check int) "batch emptied" 0 (Sh.Batch.length b);
      Alcotest.(check int) "applied" 1001 (Sh.length t);
      Alcotest.(check (option int64)) "readable" (Some 0L)
        (Sh.get t (key_b 0 ^ "0"));
      (* batches are reusable, and per-shard slices preserve buffer order *)
      Sh.Batch.put b "\x01k" 1L;
      Sh.Batch.put b "\x01k" 2L;
      Sh.Batch.delete b "\x80tag";
      Alcotest.(check (result int string)) "reflush" (Ok 3)
        (Result.map_error E.to_string (Sh.Batch.flush b));
      Alcotest.(check (option int64)) "last write wins" (Some 2L)
        (Sh.get t "\x01k");
      Alcotest.(check bool) "batched delete" false (Sh.mem t "\x80tag"))

(* --- close semantics ------------------------------------------------- *)

let test_close () =
  let t = Sh.create ~config:cfg ~shards:4 () in
  Sh.put t "\x05alive" 5L;
  Alcotest.(check (result unit string)) "close" (Ok ())
    (Result.map_error E.to_string (Sh.close t));
  Alcotest.(check (result unit string)) "close idempotent" (Ok ())
    (Result.map_error E.to_string (Sh.close t));
  (match Sh.put_result t "\x05dead" 1L with
  | Error (E.Io_error _) -> ()
  | Error e -> Alcotest.fail ("wrong rejection: " ^ E.to_string e)
  | Ok () -> Alcotest.fail "mutation accepted after close");
  (* reads keep working on the final state *)
  Alcotest.(check (option int64)) "read after close" (Some 5L)
    (Sh.get t "\x05alive");
  Alcotest.(check int) "length after close" 1 (Sh.length t)

(* --- durability ------------------------------------------------------ *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%s/hyperion_shard_test.%d.%d"
      (Filename.get_temp_dir_name ()) (Unix.getpid ()) !n

let rec wipe path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> wipe (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let open_ok ?shards dir =
  match Sh.open_durable ~config:cfg ?shards ~sync_every_ops:4 dir with
  | Ok t -> t
  | Error e -> Alcotest.fail ("open_durable: " ^ E.to_string e)

let test_durable_roundtrip () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> wipe dir) @@ fun () ->
  let t = open_ok ~shards:4 dir in
  Alcotest.(check bool) "durable" true (Sh.durable t);
  Alcotest.(check (list pass)) "fresh: no recoveries to speak of" []
    (List.filter (fun r -> r.Sh.recovery.Persist.replayed_ops > 0)
       (Sh.recoveries t));
  for b = 0 to 255 do
    Sh.put t (key_b b) (Int64.of_int (b * 3))
  done;
  Sh.add t "\xf0marker";
  Alcotest.(check (result unit string)) "sync" (Ok ())
    (Result.map_error E.to_string (Sh.sync t));
  Alcotest.(check (result unit string)) "snapshot_now" (Ok ())
    (Result.map_error E.to_string (Sh.snapshot_now t));
  Alcotest.(check (result unit string)) "close" (Ok ())
    (Result.map_error E.to_string (Sh.close t));
  Alcotest.(check bool) "manifest written" true
    (Sys.file_exists (Sh.manifest_file ~dir));
  Alcotest.(check bool) "shard dirs exist" true
    (Sys.file_exists (Sh.shard_dir ~dir 3));
  (* reopen without ?shards: the manifest remembers the count *)
  let t2 = open_ok dir in
  Alcotest.(check int) "shard count from manifest" 4 (Sh.shards t2);
  Alcotest.(check int) "recoveries reported" 4 (List.length (Sh.recoveries t2));
  Alcotest.(check int) "all keys back" 257 (Sh.length t2);
  for b = 0 to 255 do
    Alcotest.(check (option int64)) "value back" (Some (Int64.of_int (b * 3)))
      (Sh.get t2 (key_b b))
  done;
  Alcotest.(check bool) "type-10 key back" true (Sh.mem t2 "\xf0marker");
  Alcotest.(check (result unit string)) "close 2" (Ok ())
    (Result.map_error E.to_string (Sh.close t2))

let test_manifest_mismatch () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> wipe dir) @@ fun () ->
  let t = open_ok ~shards:4 dir in
  Sh.put t "\x01x" 1L;
  ignore (Sh.close t);
  match Sh.open_durable ~config:cfg ~shards:2 dir with
  | Error (E.Io_error _) -> ()
  | Error e -> Alcotest.fail ("wrong error: " ^ E.to_string e)
  | Ok t ->
      ignore (Sh.close t);
      Alcotest.fail "contradicting shard count accepted"

let test_crash_recovery () =
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> wipe dir) @@ fun () ->
  let t = open_ok ~shards:4 dir in
  for b = 0 to 127 do
    Sh.put t (key_b b) (Int64.of_int b)
  done;
  Alcotest.(check (result unit string)) "sync before kill" (Ok ())
    (Result.map_error E.to_string (Sh.sync t));
  Sh.crash t;
  (match Sh.put_result t "\x01late" 1L with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mutation accepted after crash");
  let t2 = open_ok dir in
  Alcotest.(check int) "synced mutations survive" 128 (Sh.length t2);
  for b = 0 to 127 do
    Alcotest.(check (option int64)) "recovered" (Some (Int64.of_int b))
      (Sh.get t2 (key_b b))
  done;
  let replayed =
    List.fold_left
      (fun acc r -> acc + r.Sh.recovery.Persist.replayed_ops)
      0 (Sh.recoveries t2)
  in
  Alcotest.(check bool) "recovery replayed the WALs" true (replayed > 0);
  ignore (Sh.close t2)

(* --- the quiescence property ----------------------------------------- *)

(* Client [c]'s deterministic op stream over its private key set (slot
   space 16, keys tagged with the owning client).  Because clients never
   share keys, the store's cut for client [c] at any instant is exactly
   the replay of some prefix of this stream. *)

type model_op = M_put of string * int64 | M_add of string | M_del of string

let prop_key c slot =
  let b = ((slot * 53) + (c * 17) + 1) land 0xff in
  Printf.sprintf "%c%03d/%03d" (Char.chr b) c slot

let prop_owner key = int_of_string (String.sub key 1 3)

let prop_op c j =
  let slot = j mod 16 in
  let key = prop_key c slot in
  match (j + (c * 3)) mod 4 with
  | 0 | 1 -> M_put (key, Int64.of_int ((c * 1_000_000) + j))
  | 2 -> M_add key
  | _ -> M_del key

let apply_model state = function
  | M_put (k, v) -> Hashtbl.replace state k (Some v)
  | M_add k ->
      (* add is "insert if absent", matching the store *)
      if not (Hashtbl.mem state k) then Hashtbl.replace state k None
  | M_del k -> Hashtbl.remove state k

let apply_store t = function
  | M_put (k, v) -> Sh.put t k v
  | M_add k -> Sh.add t k
  | M_del k -> ignore (Sh.delete t k)

let sorted_bindings state =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) state []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Does some replay prefix p in [low, high] of client [c] produce exactly
   [snap_c] (this client's slice of the quiesced snapshot)? *)
let prefix_explains c ~low ~high snap_c =
  let state = Hashtbl.create 64 in
  for j = 0 to low - 1 do
    apply_model state (prop_op c j)
  done;
  let matches () = sorted_bindings state = snap_c in
  let p = ref low in
  let ok = ref (matches ()) in
  while (not !ok) && !p < high do
    apply_model state (prop_op c !p);
    incr p;
    ok := matches ()
  done;
  !ok

let quiesced_cut_consistent (clients, ops_per_client) =
  let t = Sh.create ~config:cfg ~shards:4 () in
  Fun.protect ~finally:(fun () -> ignore (Sh.close t)) @@ fun () ->
  let issued = Array.init clients (fun _ -> Atomic.make 0) in
  let acked = Array.init clients (fun _ -> Atomic.make 0) in
  let doms =
    Array.init clients (fun c ->
        Domain.spawn (fun () ->
            for j = 0 to ops_per_client - 1 do
              Atomic.set issued.(c) (j + 1);
              apply_store t (prop_op c j);
              Atomic.set acked.(c) (j + 1)
            done))
  in
  let check_cut () =
    (* acked before the quiesce is a lower bound on each client's applied
       prefix; issued observed *while quiescent* is an upper bound *)
    let lows = Array.map Atomic.get acked in
    let snapshot, highs, iter_n, len =
      Sh.with_quiesced t (fun stores ->
          let highs = Array.map Atomic.get issued in
          let acc = ref [] and n = ref 0 in
          Array.iter
            (fun s ->
              Hyperion.Store.iter s (fun k v ->
                  acc := (k, v) :: !acc;
                  incr n))
            stores;
          let len =
            Array.fold_left (fun a s -> a + Hyperion.Store.length s) 0 stores
          in
          (List.rev !acc, highs, !n, len))
    in
    if iter_n <> len then
      QCheck.Test.fail_reportf "iter saw %d bindings but length says %d"
        iter_n len;
    let rec sorted = function
      | (a, _) :: ((b, _) :: _ as rest) -> a < b && sorted rest
      | _ -> true
    in
    if not (sorted snapshot) then
      QCheck.Test.fail_report "quiesced iteration not strictly ascending";
    for c = 0 to clients - 1 do
      let snap_c = List.filter (fun (k, _) -> prop_owner k = c) snapshot in
      if not (prefix_explains c ~low:lows.(c) ~high:highs.(c) snap_c) then
        QCheck.Test.fail_reportf
          "client %d: no prefix in [%d, %d] explains its %d quiesced bindings"
          c lows.(c) highs.(c) (List.length snap_c)
    done
  in
  (* interleave quiesced cuts with the running mutators *)
  for _ = 1 to 4 do
    Unix.sleepf 0.002;
    check_cut ()
  done;
  Array.iter Domain.join doms;
  (* after the join, exactly the full replay must be visible *)
  check_cut ();
  let full = Hashtbl.create 256 in
  for c = 0 to clients - 1 do
    for j = 0 to ops_per_client - 1 do
      apply_model full (prop_op c j)
    done
  done;
  let got = ref [] in
  Sh.iter t (fun k v -> got := (k, v) :: !got);
  let got = List.rev !got in
  if got <> sorted_bindings full then
    QCheck.Test.fail_report "final state diverges from the model";
  if Sh.length t <> List.length got then
    QCheck.Test.fail_report "final length diverges from iteration";
  true

let prop_quiesced =
  QCheck.Test.make ~count:5 ~name:"quiesced cut is a consistent prefix"
    QCheck.(pair (int_range 1 4) (int_range 40 160))
    quiesced_cut_consistent

let () =
  Alcotest.run "shard"
    [
      ( "routing",
        [ Alcotest.test_case "byte ranges" `Quick test_routing ] );
      ( "ops",
        [
          Alcotest.test_case "blocking round-trips" `Quick test_blocking_ops;
          Alcotest.test_case "empty key" `Quick test_empty_key;
          Alcotest.test_case "iter global order" `Quick test_iter_global_order;
          Alcotest.test_case "batch" `Quick test_batch;
          Alcotest.test_case "close" `Quick test_close;
        ] );
      ( "durability",
        [
          Alcotest.test_case "roundtrip" `Quick test_durable_roundtrip;
          Alcotest.test_case "manifest mismatch" `Quick test_manifest_mismatch;
          Alcotest.test_case "crash recovery" `Quick test_crash_recovery;
        ] );
      ( "quiescence",
        [ QCheck_alcotest.to_alcotest ~long:false prop_quiesced ] );
    ]
