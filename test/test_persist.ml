(* Durability layer: snapshot round-trips (bindings, length, type-10 keys,
   ordered-iteration determinism as a property), typed error surfacing
   (Corrupt_snapshot / Version_mismatch / Torn_log — never exceptions),
   WAL group commit and torn-tail truncation, snapshot rotation, and the
   crash-recovery chaos acceptance sweep. *)

module H = Hyperion
module S = H.Store
module E = H.Hyperion_error

let cfg = { H.Config.strings with chunks_per_bin = 64 }
let cfg_pre = { cfg with preprocess = true }

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "hyperion_persist_test_%d_%d" (Unix.getpid ()) !counter)
    in
    if Sys.file_exists d then
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    d

let fresh_file () = Filename.temp_file "hyperion_snapshot" ".hyp"

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (E.to_string e)

let dump store =
  let acc = ref [] in
  S.iter store (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

(* --- snapshot round-trip -------------------------------------------- *)

let test_snapshot_roundtrip () =
  let s = S.create ~config:cfg () in
  for i = 0 to 4999 do
    S.put s (Printf.sprintf "key/%05d" i) (Int64.of_int (i * 7))
  done;
  (* value-less (type-10) keys must survive exactly *)
  S.add s "member/alpha";
  S.add s "member/beta";
  ignore (S.delete s "key/00042");
  let path = fresh_file () in
  let bytes = ok "save" (Persist.save_snapshot s path) in
  Alcotest.(check bool) "snapshot non-trivial" true (bytes > 32);
  let s2, _enc = ok "load" (Persist.Snapshot.load ~config:cfg path) in
  Alcotest.(check int) "length preserved" (S.length s) (S.length s2);
  Alcotest.(check bool) "bindings preserved" true (dump s = dump s2);
  Alcotest.(check (option int64)) "valueless stays valueless" None
    (S.get s2 "member/alpha");
  Alcotest.(check bool) "valueless stays member" true (S.mem s2 "member/alpha");
  Alcotest.(check (option int64)) "deleted stays deleted" None
    (S.get s2 "key/00042");
  Sys.remove path

let test_snapshot_empty_store () =
  let s = S.create ~config:cfg () in
  let path = fresh_file () in
  ignore (ok "save" (Persist.save_snapshot s path));
  let s2, _enc = ok "load" (Persist.Snapshot.load ~config:cfg path) in
  Alcotest.(check int) "empty round-trip" 0 (S.length s2);
  Sys.remove path

(* --- typed error surfacing ------------------------------------------ *)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let expect_error what result pred =
  match result with
  | Ok _ -> Alcotest.failf "%s: expected a typed error, got Ok" what
  | Error e ->
      if not (pred e) then
        Alcotest.failf "%s: unexpected error %s" what (E.to_string e)

let make_snapshot () =
  let s = S.create ~config:cfg () in
  for i = 0 to 99 do
    S.put s (Printf.sprintf "k%03d" i) (Int64.of_int i)
  done;
  let path = fresh_file () in
  ignore (ok "save" (Persist.save_snapshot s path));
  path

let test_corrupt_snapshot_typed () =
  let path = make_snapshot () in
  let body = read_file path in
  (* flip one byte inside the record region *)
  let b = Bytes.of_string body in
  let off = Persist.Frame.header_size + 10 in
  Bytes.set b off (Char.chr (Char.code (Bytes.get b off) lxor 0xff));
  write_file path (Bytes.to_string b);
  expect_error "bit flip" (Persist.Snapshot.load ~config:cfg path) (function
    | E.Corrupt_snapshot _ -> true
    | _ -> false);
  (* truncation mid-record *)
  write_file path (String.sub body 0 (String.length body - 3));
  expect_error "truncated" (Persist.Snapshot.load ~config:cfg path) (function
    | E.Corrupt_snapshot _ -> true
    | _ -> false);
  (* garbage magic *)
  write_file path ("XXXXXXXX" ^ String.sub body 8 (String.length body - 8));
  expect_error "bad magic" (Persist.Snapshot.load ~config:cfg path) (function
    | E.Corrupt_snapshot _ -> true
    | _ -> false);
  Sys.remove path

let test_version_mismatch_typed () =
  let path = make_snapshot () in
  let b = Bytes.of_string (read_file path) in
  (* a future format version, with the header CRC recomputed so only the
     version check can fail *)
  Bytes.set_uint16_le b 8 99;
  Bytes.set_int32_le b 28 (Persist.Crc32.bytes b ~pos:0 ~len:28);
  write_file path (Bytes.to_string b);
  expect_error "future version" (Persist.Snapshot.load ~config:cfg path)
    (function
      | E.Version_mismatch { found = 99; expected = 2 } -> true
      | _ -> false);
  Sys.remove path

let test_fingerprint_mismatch_typed () =
  let path = make_snapshot () in
  expect_error "other config"
    (Persist.Snapshot.load ~config:{ cfg with split_a = 8192 } path)
    (function
      | E.Corrupt_snapshot msg ->
          Alcotest.(check bool) "names the fingerprint" true
            (String.length msg > 0);
          true
      | _ -> false);
  Sys.remove path

let test_open_or_create_never_raises_on_garbage () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  write_file (Persist.snapshot_file ~dir ~gen:3) "total garbage, not a snapshot";
  expect_error "garbage-only dir" (Persist.open_or_create ~config:cfg dir)
    (function E.Corrupt_snapshot _ -> true | _ -> false)

(* --- WAL: group commit, replay, torn tail --------------------------- *)

let test_wal_replay_and_counters () =
  let dir = fresh_dir () in
  let p = ok "open" (Persist.open_or_create ~config:cfg ~sync_every_ops:8 dir) in
  for i = 0 to 99 do
    ok "put" (Persist.put p (Printf.sprintf "w%03d" i) (Int64.of_int i))
  done;
  ok "add" (Persist.add p "wal/member");
  Alcotest.(check bool) "delete logged" true (ok "del" (Persist.delete p "w050"));
  Alcotest.(check bool) "no-op delete not logged" false
    (ok "del2" (Persist.delete p "nonexistent"));
  Alcotest.(check int) "applied counts logged ops" 102 (Persist.applied_ops p);
  Alcotest.(check bool) "group commit lags" true
    (Persist.durable_ops p <= Persist.applied_ops p);
  ok "sync" (Persist.sync p);
  Alcotest.(check int) "sync catches up" 102 (Persist.durable_ops p);
  ok "close" (Persist.close p);
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg dir) in
  let r = Persist.recovery p2 in
  Alcotest.(check int) "all ops replayed" 102 r.Persist.replayed_ops;
  Alcotest.(check bool) "clean tail" false r.Persist.wal_truncated;
  let s = Persist.store p2 in
  Alcotest.(check int) "length" 100 (S.length s);
  Alcotest.(check (option int64)) "value survives" (Some 7L) (S.get s "w007");
  Alcotest.(check bool) "member survives" true (S.mem s "wal/member");
  Alcotest.(check bool) "delete survives" false (S.mem s "w050");
  ok "close2" (Persist.close p2)

let test_wal_torn_tail_truncated () =
  let dir = fresh_dir () in
  (* 20 ops at a group size of 7: the last commit lands at op 14, leaving a
     6-op unsynced tail to tear *)
  let p = ok "open" (Persist.open_or_create ~config:cfg ~sync_every_ops:7 dir) in
  for i = 0 to 19 do
    ok "put" (Persist.put p (Printf.sprintf "t%02d" i) (Int64.of_int i))
  done;
  let durable = Persist.durable_ops p in
  let watermark = Persist.wal_synced_bytes p in
  let size = Persist.wal_size p in
  let gen = Persist.generation p in
  Persist.crash p;
  (* tear mid-record, strictly past the durable watermark *)
  Alcotest.(check bool) "something unsynced to tear" true (size > watermark);
  Unix.truncate (Persist.wal_file ~dir ~gen) (watermark + 3);
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg dir) in
  let r = Persist.recovery p2 in
  Alcotest.(check bool) "tear detected" true r.Persist.wal_truncated;
  Alcotest.(check int) "exactly the durable prefix survives" durable
    r.Persist.replayed_ops;
  Alcotest.(check int) "store matches prefix" durable
    (S.length (Persist.store p2));
  (* the truncated log must accept appends again *)
  ok "put after recovery" (Persist.put p2 "post" 1L);
  ok "close" (Persist.close p2);
  let p3 = ok "reopen2" (Persist.open_or_create ~config:cfg dir) in
  Alcotest.(check (option int64)) "append after tear survives" (Some 1L)
    (S.get (Persist.store p3) "post");
  ok "close3" (Persist.close p3)

let test_rotation () =
  let dir = fresh_dir () in
  let p =
    ok "open"
      (Persist.open_or_create ~config:cfg ~sync_every_ops:16 ~rotate_bytes:2048
         dir)
  in
  for i = 0 to 499 do
    ok "put" (Persist.put p (Printf.sprintf "r%04d" i) (Int64.of_int i))
  done;
  Alcotest.(check bool) "rotations happened" true (Persist.rotations p > 0);
  let gen = Persist.generation p in
  Alcotest.(check bool) "generation advanced" true (gen > 0);
  (* old generations are gone *)
  Alcotest.(check bool) "old snapshot removed" false
    (Sys.file_exists (Persist.snapshot_file ~dir ~gen:(gen - 1)));
  Alcotest.(check bool) "old wal removed" false
    (Sys.file_exists (Persist.wal_file ~dir ~gen:(gen - 1)));
  ok "close" (Persist.close p);
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg dir) in
  Alcotest.(check int) "all keys recovered across rotations" 500
    (S.length (Persist.store p2));
  Alcotest.(check int) "recovered from latest generation" gen
    (Persist.recovery p2).Persist.generation;
  ok "close2" (Persist.close p2)

let test_snapshot_now () =
  let dir = fresh_dir () in
  let p = ok "open" (Persist.open_or_create ~config:cfg dir) in
  ok "put" (Persist.put p "a" 1L);
  ok "rotate" (Persist.snapshot_now p);
  Alcotest.(check int) "wal empty after rotation" (Persist.wal_synced_bytes p)
    Persist.Frame.header_size;
  ok "put2" (Persist.put p "b" 2L);
  ok "close" (Persist.close p);
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg dir) in
  let r = Persist.recovery p2 in
  Alcotest.(check int) "snapshot carries pre-rotation ops" 1
    r.Persist.snapshot_keys;
  Alcotest.(check int) "wal carries post-rotation ops" 1 r.Persist.replayed_ops;
  ok "close2" (Persist.close p2)

(* --- ordered-iteration determinism across a round-trip -------------- *)

let sequences store =
  let via_iter = ref [] in
  S.iter store (fun k v -> via_iter := (k, v) :: !via_iter);
  let via_fold =
    S.fold store ~init:[] ~f:(fun acc k v -> (k, v) :: acc)
  in
  let via_prefix = ref [] in
  S.prefix_iter store ~prefix:"" (fun k v ->
      via_prefix := (k, v) :: !via_prefix;
      true);
  (List.rev !via_iter, List.rev via_fold, List.rev !via_prefix)

let roundtrip_prop config keys =
  (* bounded, deduplicated by the store itself; values keyed off the index *)
  let store = S.create ~config () in
  List.iteri
    (fun i k ->
      if i mod 7 = 3 then S.add store k else S.put store k (Int64.of_int i))
    keys;
  let before = sequences store in
  let path = fresh_file () in
  let reloaded =
    match Persist.save_snapshot store path with
    | Error e -> Alcotest.failf "save: %s" (E.to_string e)
    | Ok _ -> (
        match Persist.Snapshot.load ~config path with
        | Error e -> Alcotest.failf "load: %s" (E.to_string e)
        | Ok (s, _enc) -> s)
  in
  Sys.remove path;
  let after = sequences reloaded in
  let b1, b2, b3 = before and a1, a2, a3 = after in
  b1 = b2 && b2 = b3 && a1 = a2 && a2 = a3 && b1 = a1
  && S.length store = S.length reloaded

let key_gen =
  (* 4..20 printable bytes: valid for both plain and preprocess configs *)
  QCheck.Gen.(
    string_size (int_range 4 20)
      ~gen:(map Char.chr (int_range 33 126)))

let prop_roundtrip_strings =
  QCheck.Test.make ~name:"iter/fold/prefix_iter identical across round-trip"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 0 400) (make key_gen))
    (fun keys -> roundtrip_prop cfg keys)

let prop_roundtrip_preprocess =
  QCheck.Test.make
    ~name:"iter/fold/prefix_iter identical across round-trip (preprocess)"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 0 400) (make key_gen))
    (fun keys -> roundtrip_prop cfg_pre keys)

(* --- disk faults: degraded read-only mode and heal ------------------- *)

module Io = Persist.Io

let fast_io () = Persist.Io.make ~max_retries:2 ~backoff_s:1e-6 ()

let test_write_failure_degrades_sticky () =
  let dir = fresh_dir () in
  let io = fast_io () in
  let p = ok "open" (Persist.open_or_create ~config:cfg ~io dir) in
  ok "put" (Persist.put p "alive" 1L);
  Io.set_plan io (Fault.always [ Fault.Io_write_eio ]);
  (* the append fails after exhausting retries: typed Degraded, store
     untouched *)
  expect_error "put under EIO" (Persist.put p "casualty" 2L) (function
    | E.Degraded _ -> true
    | _ -> false);
  Alcotest.(check bool) "handle reports degraded" true
    (Persist.degraded p <> None);
  Alcotest.(check bool) "failed mutation not applied" false
    (S.mem (Persist.store p) "casualty");
  (* sticky: the device recovering by itself is not enough *)
  Io.disarm io;
  expect_error "still degraded after disarm" (Persist.put p "casualty" 2L)
    (function E.Degraded _ -> true | _ -> false);
  (* reads keep serving *)
  Alcotest.(check (option int64)) "reads serve while degraded" (Some 1L)
    (S.get (Persist.store p) "alive");
  (* heal re-arms writes in a fresh generation *)
  let gen = Persist.generation p in
  ok "heal" (Persist.heal p);
  Alcotest.(check (option string)) "healed" None (Persist.degraded p);
  Alcotest.(check bool) "heal bumps the generation" true
    (Persist.generation p > gen);
  ok "put after heal" (Persist.put p "recovered" 3L);
  ok "close" (Persist.close p);
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg dir) in
  let s = Persist.store p2 in
  Alcotest.(check (option int64)) "pre-fault op survives" (Some 1L)
    (S.get s "alive");
  Alcotest.(check (option int64)) "post-heal op survives" (Some 3L)
    (S.get s "recovered");
  Alcotest.(check bool) "failed op never persisted" false (S.mem s "casualty");
  ok "close2" (Persist.close p2)

let test_fsync_failure_acks_but_degrades () =
  let dir = fresh_dir () in
  let io = fast_io () in
  let p =
    ok "open" (Persist.open_or_create ~config:cfg ~io ~sync_every_ops:1 dir)
  in
  Io.set_plan io (Fault.always [ Fault.Io_fsync ]);
  (* the record is in the log before the group commit fails, so the
     mutation is acknowledged; what is lost is the durability promise *)
  ok "put acked despite failed fsync" (Persist.put p "acked" 1L);
  Alcotest.(check bool) "fsync failure degrades" true
    (Persist.degraded p <> None);
  Alcotest.(check (option int64)) "acked op applied" (Some 1L)
    (S.get (Persist.store p) "acked");
  Io.disarm io;
  ok "heal" (Persist.heal p);
  ok "put after heal" (Persist.put p "later" 2L);
  ok "close" (Persist.close p);
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg dir) in
  Alcotest.(check (option int64)) "acked op survives via heal snapshot"
    (Some 1L)
    (S.get (Persist.store p2) "acked");
  Alcotest.(check (option int64)) "post-heal op survives" (Some 2L)
    (S.get (Persist.store p2) "later");
  ok "close2" (Persist.close p2)

let test_store_reject_compensates_wal () =
  let dir = fresh_dir () in
  let p = ok "open" (Persist.open_or_create ~config:cfg dir) in
  ok "put" (Persist.put p "good" 1L);
  (* a store-side failure (allocation) after the append must truncate the
     record back off the log — and must NOT degrade the handle, the
     storage is fine *)
  S.set_fault_plan (Persist.store p) (Fault.always [ Fault.Alloc_fail ]);
  expect_error "store rejects" (Persist.put p "rejected" 2L) (function
    | E.Degraded _ -> false
    | _ -> true);
  Alcotest.(check (option string)) "store failure does not degrade" None
    (Persist.degraded p);
  S.set_fault_plan (Persist.store p) Fault.none;
  ok "put after clear" (Persist.put p "alsogood" 3L);
  Alcotest.(check int) "only applied mutations logged" 2
    (Persist.applied_ops p);
  ok "close" (Persist.close p);
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg dir) in
  let s = Persist.store p2 in
  Alcotest.(check int) "exactly the acked ops replayed" 2
    (Persist.recovery p2).Persist.replayed_ops;
  Alcotest.(check bool) "rejected op not replayed" false (S.mem s "rejected");
  Alcotest.(check (option int64)) "acked ops replayed" (Some 3L)
    (S.get s "alsogood");
  ok "close2" (Persist.close p2)

(* --- crash-recovery chaos sweep (acceptance: CI runs 100 seeds) ------ *)

let test_crash_chaos_sweep () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  for seed = 1 to 25 do
    match
      Chaos.run_crash ~config:cfg ~dir ~seed:(Int64.of_int seed) ~ops:1200 ()
    with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg
  done

let test_diskfault_chaos_sweep () =
  let dir = fresh_dir () in
  Unix.mkdir dir 0o755;
  for seed = 1 to 10 do
    match
      Chaos.run_diskfault ~config:cfg ~per_mille:20 ~dir
        ~seed:(Int64.of_int seed) ~ops:800 ()
    with
    | Ok _ -> ()
    | Error msg -> Alcotest.fail msg
  done

let () =
  Alcotest.run "persist"
    [
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "empty store" `Quick test_snapshot_empty_store;
          Alcotest.test_case "corrupt -> typed error" `Quick
            test_corrupt_snapshot_typed;
          Alcotest.test_case "version mismatch -> typed error" `Quick
            test_version_mismatch_typed;
          Alcotest.test_case "fingerprint mismatch -> typed error" `Quick
            test_fingerprint_mismatch_typed;
          Alcotest.test_case "garbage dir -> typed error" `Quick
            test_open_or_create_never_raises_on_garbage;
        ] );
      ( "wal",
        [
          Alcotest.test_case "replay + group-commit counters" `Quick
            test_wal_replay_and_counters;
          Alcotest.test_case "torn tail truncated" `Quick
            test_wal_torn_tail_truncated;
          Alcotest.test_case "rotation" `Quick test_rotation;
          Alcotest.test_case "snapshot_now" `Quick test_snapshot_now;
        ] );
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_strings;
          QCheck_alcotest.to_alcotest prop_roundtrip_preprocess;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "write failure -> sticky degraded + heal" `Quick
            test_write_failure_degrades_sticky;
          Alcotest.test_case "fsync failure acks but degrades" `Quick
            test_fsync_failure_acks_but_degrades;
          Alcotest.test_case "store reject compensates the WAL" `Quick
            test_store_reject_compensates_wal;
        ] );
      ( "crash-chaos",
        [
          Alcotest.test_case "25-seed sweep" `Slow test_crash_chaos_sweep;
          Alcotest.test_case "10-seed diskfault sweep" `Slow
            test_diskfault_chaos_sweep;
        ] );
    ]
