(* Store-level range-query properties against a sorted assoc-list oracle.

   A random mutation script (puts, adds, deletes — last write wins, add is
   insert-if-absent) is applied to a Store under a tiny configuration that
   forces embedded ejects, container splits and path compression, and to a
   Hashtbl-backed oracle.  Three properties are then checked per script:

     1. the full [Range.range] sweep yields exactly the oracle's bindings
        in ascending key order;
     2. [?start] yields exactly the oracle bindings with key >= start;
     3. stopping the callback after k yields equals the first k oracle
        bindings, with the callback invoked exactly min(k, total) times.

   The whole suite runs twice: with [preprocess = false] and with
   [preprocess = true] (keys restricted to >= 4 bytes, the codec's domain),
   since preprocessing re-encodes both stored keys and the start bound. *)

let tiny preprocess =
  {
    Hyperion.Config.default with
    chunks_per_bin = 64;
    embedded_eject_parent_limit = 256;
    embedded_max = 64;
    pc_max = 8;
    tnode_jt_threshold = 4;
    js_threshold = 2;
    container_jt_threshold = 2;
    split_a = 512;
    split_b = 256;
    split_min_piece = 64;
    preprocess;
  }

type op = Put of string * int64 | Add of string | Del of string

(* Apply the script to a fresh store and the oracle; return the store and
   the oracle as a key-sorted assoc list. *)
let run_script ~preprocess ops =
  let store = Hyperion.Store.create ~config:(tiny preprocess) () in
  let oracle = Hashtbl.create 64 in
  List.iter
    (fun op ->
      match op with
      | Put (k, v) ->
          Hyperion.Store.put store k v;
          Hashtbl.replace oracle k (Some v)
      | Add k ->
          Hyperion.Store.add store k;
          (* insert-if-absent: an existing binding keeps its value *)
          if not (Hashtbl.mem oracle k) then Hashtbl.replace oracle k None
      | Del k ->
          ignore (Hyperion.Store.delete store k);
          Hashtbl.remove oracle k)
    ops;
  let sorted =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) oracle []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  (store, sorted)

let collect store ?start () =
  let acc = ref [] in
  Hyperion.Store.range store ?start (fun k v ->
      acc := (k, v) :: !acc;
      true);
  List.rev !acc

(* Key generator: a small alphabet so scripts revisit keys (exercising
   overwrite/delete), lengths [min_len..10] so containers actually split. *)
let key_g ~min_len =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'f') (int_range min_len 10))

let op_g ~min_len =
  let keyg = key_g ~min_len in
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Put (k, Int64.of_int v)) keyg (int_bound 10_000));
        (2, map (fun k -> Add k) keyg);
        (2, map (fun k -> Del k) keyg);
      ])

let pp_op = function
  | Put (k, v) -> Printf.sprintf "put %S %Ld" k v
  | Add k -> Printf.sprintf "add %S" k
  | Del k -> Printf.sprintf "del %S" k

let script_arb ~min_len =
  let ops =
    QCheck.make
      ~print:(fun l -> String.concat "; " (List.map pp_op l))
      QCheck.Gen.(list_size (int_range 0 200) (op_g ~min_len))
  in
  QCheck.pair ops (QCheck.make ~print:(Printf.sprintf "%S") (key_g ~min_len))

let prop_full_and_bounded ~name ~preprocess ~min_len =
  QCheck.Test.make ~name ~count:100 (script_arb ~min_len)
    (fun (ops, start) ->
      let store, want = run_script ~preprocess ops in
      let got = collect store () in
      let got_bounded = collect store ~start () in
      let want_bounded =
        List.filter (fun (k, _) -> String.compare k start >= 0) want
      in
      got = want && got_bounded = want_bounded)

let prop_early_stop ~name ~preprocess ~min_len =
  QCheck.Test.make ~name ~count:100
    QCheck.(pair (script_arb ~min_len) small_nat)
    (fun ((ops, _), k) ->
      let store, want = run_script ~preprocess ops in
      let calls = ref 0 and acc = ref [] in
      Hyperion.Store.range store (fun key v ->
          incr calls;
          acc := (key, v) :: !acc;
          !calls < k);
      let got = List.rev !acc in
      (* the callback stops the sweep by returning false on its k-th
         invocation; with k = 0 the very first yield already stops it *)
      let expect_n = min (max k 1) (List.length want) in
      !calls = expect_n && got = List.filteri (fun i _ -> i < expect_n) want)

let () =
  Alcotest.run "range-prop"
    [
      ( "plain-keys",
        [
          QCheck_alcotest.to_alcotest
            (prop_full_and_bounded ~name:"full+bounded = oracle (raw keys)"
               ~preprocess:false ~min_len:1);
          QCheck_alcotest.to_alcotest
            (prop_early_stop ~name:"early stop after k (raw keys)"
               ~preprocess:false ~min_len:1);
        ] );
      ( "preprocessed-keys",
        [
          QCheck_alcotest.to_alcotest
            (prop_full_and_bounded
               ~name:"full+bounded = oracle (preprocessed keys)"
               ~preprocess:true ~min_len:4);
          QCheck_alcotest.to_alcotest
            (prop_early_stop ~name:"early stop after k (preprocessed keys)"
               ~preprocess:true ~min_len:4);
        ] );
    ]
