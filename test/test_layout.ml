(* Container header, container jump table, embedded header and record
   parsing (paper Figures 3, 5, 6, 7, 10). *)

module L = Hyperion.Layout
module N = Hyperion.Node
module R = Hyperion.Records

let test_header_roundtrip () =
  let buf = Bytes.make 8 '\000' in
  L.write_header buf 0 ~size:123456 ~free:200 ~jump_levels:5 ~split_delay:2;
  Alcotest.(check int) "size" 123456 (L.read_size buf 0);
  Alcotest.(check int) "free" 200 (L.read_free buf 0);
  Alcotest.(check int) "J" 5 (L.read_jump_levels buf 0);
  Alcotest.(check int) "S" 2 (L.read_split_delay buf 0);
  L.set_free buf 0 31;
  Alcotest.(check int) "free updated" 31 (L.read_free buf 0);
  Alcotest.(check int) "size untouched" 123456 (L.read_size buf 0);
  L.set_split_delay buf 0 3;
  Alcotest.(check int) "S updated" 3 (L.read_split_delay buf 0);
  Alcotest.(check int) "J untouched" 5 (L.read_jump_levels buf 0)

let test_header_limits () =
  let buf = Bytes.make 8 '\000' in
  L.write_header buf 0 ~size:L.max_container_size ~free:255 ~jump_levels:7
    ~split_delay:3;
  Alcotest.(check int) "max size" L.max_container_size (L.read_size buf 0);
  Alcotest.check_raises "size overflow"
    (Invalid_argument "Layout: container size out of 19-bit range") (fun () ->
      L.write_header buf 0 ~size:(L.max_container_size + 1) ~free:0
        ~jump_levels:0 ~split_delay:0)

let test_cjt () =
  let buf = Bytes.make 64 '\000' in
  L.write_header buf 0 ~size:64 ~free:0 ~jump_levels:2 ~split_delay:0;
  Alcotest.(check int) "entries" 14 (L.jt_count buf 0);
  Alcotest.(check int) "area" 56 (L.jt_area_size buf 0);
  Alcotest.(check int) "payload start" 61 (L.payload_start buf 0);
  L.jt_write buf 0 3 ~key:128 ~off:99999;
  Alcotest.(check (pair int int)) "entry" (128, 99999) (L.jt_read buf 0 3)

let test_qcheck_flags =
  QCheck.Test.make ~name:"node flag roundtrip" ~count:500
    QCheck.(
      quad (int_range 1 3) (int_bound 7) bool bool)
    (fun (tcode, delta, js, jt) ->
      let typ = N.typ_of_code tcode in
      let tf = N.t_flag ~typ ~delta ~js ~jt in
      let sf = N.s_flag ~typ ~delta ~child:N.Child_pc in
      N.typ_of_flag tf = typ
      && N.delta_of_flag tf = delta
      && N.has_js tf = js
      && N.has_jt tf = jt
      && (not (N.is_snode tf))
      && N.is_snode sf
      && N.child_of_flag sf = N.Child_pc)

(* The paper's Figure 6: container C3 stores partial keys "at" and "e";
   C3* stores "at" and "ae".  Build the byte arrays with our encoders and
   re-parse them. *)
let test_paper_figure6 () =
  let t_a =
    Hyperion.Encode.t_record ~prev_key:(-1) ~key:(Char.code 'a') ~typ:N.Inner
      ~value:None
  in
  let s_t =
    Hyperion.Encode.s_record ~prev_key:(-1) ~key:(Char.code 't')
      ~typ:N.Leaf_no_value ~value:None ~child:N.No_child
  in
  let t_e =
    Hyperion.Encode.t_record ~prev_key:(Char.code 'a') ~key:(Char.code 'e')
      ~typ:N.Leaf_no_value ~value:None
  in
  let c3 = t_a ^ s_t ^ t_e in
  let buf = Bytes.of_string c3 in
  let t1 = R.parse_t buf 0 ~prev_key:(-1) in
  Alcotest.(check int) "T key a" (Char.code 'a') t1.R.t_key;
  Alcotest.(check bool) "inner" true (N.typ_of_flag t1.R.t_flag = N.Inner);
  let s1 = R.parse_s buf t1.R.t_head_end ~prev_key:(-1) in
  Alcotest.(check int) "S key t" (Char.code 't') s1.R.s_key;
  Alcotest.(check bool) "leaf w/o value" true
    (N.typ_of_flag s1.R.s_flag = N.Leaf_no_value);
  (* 'e' delta-encodes against 'a' (delta 4, paper Fig. 10) *)
  let t2 = R.parse_t buf s1.R.s_end ~prev_key:t1.R.t_key in
  Alcotest.(check int) "T key e via delta" (Char.code 'e') t2.R.t_key;
  Alcotest.(check int) "delta is 4" 4 (N.delta_of_flag t2.R.t_flag);
  (* the delta-encoded record saves its key byte *)
  Alcotest.(check int) "delta record is 1 byte" 1 (String.length t_e)

let test_pc_codec () =
  let body = Hyperion.Encode.pc_body "suffix" (Some 42L) in
  let buf = Bytes.of_string body in
  let pc = R.parse_pc buf 0 in
  Alcotest.(check int) "len" 6 pc.R.pc_suffix_len;
  Alcotest.(check bool) "has value" true (pc.R.pc_value_pos >= 0);
  Alcotest.(check string) "suffix" "suffix"
    (Bytes.sub_string buf pc.R.pc_suffix_pos pc.R.pc_suffix_len);
  Alcotest.(check int64) "value" 42L (R.read_value buf pc.R.pc_value_pos);
  Alcotest.(check int) "end" (String.length body) pc.R.pc_end;
  let no_val = Hyperion.Encode.pc_body "xy" None in
  let pc2 = R.parse_pc (Bytes.of_string no_val) 0 in
  Alcotest.(check bool) "no value" true (pc2.R.pc_value_pos < 0);
  Alcotest.(check int) "size" 3 (String.length no_val)

let test_emb_header () =
  let buf = Bytes.make 4 '\000' in
  L.set_emb_total_size buf 1 200;
  Alcotest.(check int) "emb size" 200 (L.emb_total_size buf 1);
  Alcotest.check_raises "embedded size > 255"
    (Invalid_argument "Layout: embedded container size out of [1,255]")
    (fun () -> L.set_emb_total_size buf 1 256)

let () =
  Alcotest.run "layout"
    [
      ( "header",
        [
          Alcotest.test_case "roundtrip" `Quick test_header_roundtrip;
          Alcotest.test_case "limits" `Quick test_header_limits;
          Alcotest.test_case "container jump table" `Quick test_cjt;
          Alcotest.test_case "embedded header" `Quick test_emb_header;
        ] );
      ( "records",
        [
          QCheck_alcotest.to_alcotest test_qcheck_flags;
          Alcotest.test_case "paper figure 6" `Quick test_paper_figure6;
          Alcotest.test_case "pc codec" `Quick test_pc_codec;
        ] );
    ]
