(* Telemetry layer tests.

   Three families:
     - histogram oracle: quantiles of 10k random durations against exact
       nearest-rank quantiles of the sorted array, within the documented
       1/32 relative-error bound; merge-then-quantile must equal the
       quantile of the concatenated stream exactly (bucket counts are
       additive);
     - disabled invariance: with [Telemetry.enabled () = false] a full
       instrumented workload must leave every metric cell untouched;
     - instrumentation transparency: an instrumented store must return
       byte-identical results to an uninstrumented one on the same seeded
       workload. *)

module T = Telemetry

let tiny =
  {
    Hyperion.Config.default with
    chunks_per_bin = 64;
    embedded_eject_parent_limit = 256;
    embedded_max = 64;
    pc_max = 8;
    split_a = 512;
    split_b = 256;
    split_min_piece = 64;
  }

(* Deterministic splitmix-style generator so runs are reproducible. *)
let make_rng seed =
  let state = ref seed in
  fun bound ->
    state := Int64.add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    Int64.to_int (Int64.rem (Int64.logand z Int64.max_int) (Int64.of_int bound))

(* Exact nearest-rank quantile of a sorted array, the definition the
   histogram's [quantile] mirrors over bucket counts. *)
let exact_quantile sorted q =
  let n = Array.length sorted in
  let rank = max 1 (int_of_float (ceil (q *. float_of_int n))) in
  sorted.(rank - 1)

(* Log-uniform durations: exercises buckets across 6 decades, like real
   latency distributions do. *)
let random_durations rng n =
  Array.init n (fun _ ->
      let decade = rng 6 in
      let base = int_of_float (10. ** float_of_int decade) in
      base + rng (9 * base))

let test_quantile_oracle () =
  let rng = make_rng 42L in
  let samples = random_durations rng 10_000 in
  let h = T.Hist.create () in
  Array.iter (T.Hist.observe h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  Alcotest.(check int) "count" (Array.length samples) (T.Hist.count h);
  Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 samples) (T.Hist.sum h);
  List.iter
    (fun q ->
      let exact = float_of_int (exact_quantile sorted q) in
      let approx = T.Hist.quantile h q in
      let rel = abs_float (approx -. exact) /. exact in
      if rel > T.Hist.max_rel_error then
        Alcotest.failf "q=%.3f: histogram %.1f vs exact %.1f (rel %.4f > %.4f)"
          q approx exact rel T.Hist.max_rel_error)
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_small_values_exact () =
  (* values 0..15 occupy singleton buckets: quantiles are exact *)
  let h = T.Hist.create () in
  for v = 0 to 15 do
    T.Hist.observe h v
  done;
  Alcotest.(check (float 0.0)) "p50 of 0..15" 7.0 (T.Hist.quantile h 0.5);
  Alcotest.(check (float 0.0)) "p100 of 0..15" 15.0 (T.Hist.quantile h 1.0)

let test_merge_equals_concat () =
  let rng = make_rng 7L in
  let parts =
    Array.init 3 (fun _ -> random_durations rng 3_000)
  in
  (* merge of the three per-part histograms *)
  let merged = T.Hist.create () in
  Array.iter
    (fun part ->
      let h = T.Hist.create () in
      Array.iter (T.Hist.observe h) part;
      T.Hist.merge_into ~dst:merged h)
    parts;
  (* histogram of the concatenated stream *)
  let concat = T.Hist.create () in
  Array.iter (fun part -> Array.iter (T.Hist.observe concat) part) parts;
  Alcotest.(check int) "merged count" (T.Hist.count concat) (T.Hist.count merged);
  Alcotest.(check int) "merged sum" (T.Hist.sum concat) (T.Hist.sum merged);
  Alcotest.(check (array int)) "merged buckets identical"
    (T.Hist.buckets concat) (T.Hist.buckets merged);
  List.iter
    (fun q ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "q=%.3f merge == concat, exactly" q)
        (T.Hist.quantile concat q) (T.Hist.quantile merged q))
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_bucket_order_and_error () =
  (* bucket_of is monotone and representatives stay within the bound *)
  let prev = ref (-1) in
  for v = 0 to 200_000 do
    let b = T.Hist.bucket_of v in
    if b < !prev then Alcotest.failf "bucket_of not monotone at %d" v;
    prev := max !prev b;
    if v >= 1 then begin
      let rep = T.Hist.representative b in
      let rel = abs_float (rep -. float_of_int v) /. float_of_int v in
      if rel > T.Hist.max_rel_error +. 1e-9 then
        Alcotest.failf "value %d: representative %.1f off by %.4f" v rep rel
    end
  done

(* A seeded mixed workload driven against a store: returns every per-op
   observable result, so two runs can be diffed exactly. *)
let drive_workload store seed ops =
  let rng = make_rng seed in
  let results = Buffer.create 4096 in
  for _ = 1 to ops do
    let key = Printf.sprintf "k%04d" (rng 500) in
    (match rng 10 with
    | 0 | 1 | 2 | 3 ->
        Hyperion.Store.put store key (Int64.of_int (rng 100_000));
        Buffer.add_string results "p"
    | 4 ->
        Hyperion.Store.add store key;
        Buffer.add_string results "a"
    | 5 | 6 ->
        Buffer.add_string results
          (match Hyperion.Store.get store key with
          | Some v -> Int64.to_string v
          | None -> if Hyperion.Store.mem store key then "m" else "-")
    | 7 ->
        Buffer.add_string results
          (if Hyperion.Store.delete store key then "D" else "d")
    | _ ->
        Buffer.add_string results (string_of_int (Hyperion.Store.length store)));
    Buffer.add_char results ';'
  done;
  (* final contents, in order *)
  Hyperion.Store.range store (fun k v ->
      Buffer.add_string results
        (Printf.sprintf "%s=%s," k
           (match v with Some v -> Int64.to_string v | None -> "_"));
      true);
  Buffer.contents results

let test_disabled_leaves_metrics_untouched () =
  T.reset ();
  T.set_enabled false;
  let store = Hyperion.Store.create ~config:tiny () in
  ignore (drive_workload store 11L 5_000);
  (* every registered histogram must still be empty *)
  List.iter
    (fun (op, _) ->
      match T.Histogram.find "hyperion_op_latency_ns" ~labels:[ ("op", op) ] with
      | None -> Alcotest.failf "histogram for op=%s not registered" op
      | Some h ->
          Alcotest.(check int)
            (Printf.sprintf "op=%s count stays 0" op)
            0 (T.Histogram.count h);
          Alcotest.(check int)
            (Printf.sprintf "op=%s sum stays 0" op)
            0 (T.Histogram.sum_ns h))
    [ ("put", ()); ("add", ()); ("get", ()); ("delete", ()) ];
  Alcotest.(check int) "trace ring stays empty" 0 (T.Trace.total ());
  Alcotest.(check (list string)) "no path bits marked" []
    (T.Path.names (T.current_paths ()))

let test_enabled_is_transparent () =
  (* same seeded workload, telemetry off vs on: byte-identical results *)
  T.reset ();
  T.set_enabled false;
  let plain = Hyperion.Store.create ~config:tiny () in
  let baseline = drive_workload plain 97L 5_000 in
  T.set_enabled true;
  let instrumented = Hyperion.Store.create ~config:tiny () in
  let observed = drive_workload instrumented 97L 5_000 in
  T.set_enabled false;
  Alcotest.(check string) "identical op results and final contents" baseline
    observed;
  (* and the instrumentation did fire *)
  match T.Histogram.find "hyperion_op_latency_ns" ~labels:[ ("op", "put") ] with
  | None -> Alcotest.fail "put histogram not registered"
  | Some h ->
      Alcotest.(check bool) "puts were observed" true (T.Histogram.count h > 0)

let test_counters_and_gauges () =
  T.reset ();
  T.set_enabled true;
  let c = T.Counter.make "test_counter_total" ~help:"test" in
  T.Counter.incr c;
  T.Counter.add c 41;
  Alcotest.(check int) "counter sums" 42 (T.Counter.value c);
  let g = T.Gauge.make "test_gauge" in
  T.Gauge.set g 7;
  T.Gauge.set g 3;
  Alcotest.(check int) "gauge keeps last value" 3 (T.Gauge.value g);
  let gm = T.Gauge.make "test_gauge_max" ~merge:`Max in
  T.Gauge.set gm 5;
  T.Gauge.set gm 9;
  T.Gauge.set gm 2;
  Alcotest.(check int) "max gauge keeps high watermark" 9 (T.Gauge.value gm);
  let dump = T.dump () in
  List.iter
    (fun needle ->
      if
        not
          (String.length dump >= String.length needle
          && (let found = ref false in
              for i = 0 to String.length dump - String.length needle do
                if String.sub dump i (String.length needle) = needle then
                  found := true
              done;
              !found))
      then Alcotest.failf "exposition is missing %S" needle)
    [ "test_counter_total 42"; "test_gauge 3"; "test_gauge_max 9" ];
  T.set_enabled false;
  T.reset ()

let test_trace_ring () =
  T.reset ();
  T.set_enabled true;
  T.Trace.set_capacity 4;
  for i = 1 to 10 do
    T.Trace.record ~kind:"op" ~key_len:i ~dur_ns:(i * 1000)
  done;
  let spans = T.Trace.spans () in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length spans);
  Alcotest.(check int) "total counts drops too" 10 (T.Trace.total ());
  Alcotest.(check (list int)) "oldest-first, newest retained"
    [ 7; 8; 9; 10 ]
    (List.map (fun s -> s.T.Trace.key_len) spans);
  T.Trace.set_capacity 256;
  T.set_enabled false;
  T.reset ()

let () =
  Alcotest.run "telemetry"
    [
      ( "histogram",
        [
          Alcotest.test_case "quantiles within 1/32 of exact" `Quick
            test_quantile_oracle;
          Alcotest.test_case "small values exact" `Quick test_small_values_exact;
          Alcotest.test_case "merge == concatenation" `Quick
            test_merge_equals_concat;
          Alcotest.test_case "bucket order + error bound" `Quick
            test_bucket_order_and_error;
        ] );
      ( "toggle",
        [
          Alcotest.test_case "disabled leaves metrics untouched" `Quick
            test_disabled_leaves_metrics_untouched;
          Alcotest.test_case "enabled is observationally transparent" `Quick
            test_enabled_is_transparent;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "trace ring" `Quick test_trace_ring;
        ] );
    ]
