(* Differential qcheck suite for the batched memory-level-parallel read
   path: [Store.get_many]/[Store.mem_many] (and the sharded/compressed
   front-end's variants) must be observably the map of their sequential
   counterparts over arbitrary key multisets — duplicates, absent keys,
   every pipeline width — plus the negative-lookup-tag soundness
   property: a present key is never rejected by a container tag.

   The oracle is a balanced-tree map (Stdlib [Map], the RB-tree stand-in)
   built from the same mutation script, under a tiny configuration that
   forces embedded ejects, container splits and path compression, so the
   batched probes cross real multi-container descents. *)

module SMap = Map.Make (String)

let tiny preprocess =
  {
    Hyperion.Config.default with
    chunks_per_bin = 64;
    embedded_eject_parent_limit = 256;
    embedded_max = 64;
    pc_max = 8;
    tnode_jt_threshold = 4;
    js_threshold = 2;
    container_jt_threshold = 2;
    split_a = 512;
    split_b = 256;
    split_min_piece = 64;
    preprocess;
  }

type op = Put of string * int64 | Add of string | Del of string

let run_script ~preprocess ops =
  let store = Hyperion.Store.create ~config:(tiny preprocess) () in
  let oracle = ref SMap.empty in
  List.iter
    (fun op ->
      match op with
      | Put (k, v) ->
          Hyperion.Store.put store k v;
          oracle := SMap.add k (Some v) !oracle
      | Add k ->
          Hyperion.Store.add store k;
          if not (SMap.mem k !oracle) then oracle := SMap.add k None !oracle
      | Del k ->
          ignore (Hyperion.Store.delete store k);
          oracle := SMap.remove k !oracle)
    ops;
  (store, !oracle)

(* Small alphabet: scripts revisit keys and probe batches hit a healthy
   present/absent/duplicate blend without any steering. *)
let key_g ~min_len =
  QCheck.Gen.(string_size ~gen:(char_range 'a' 'f') (int_range min_len 10))

let op_g ~min_len =
  let keyg = key_g ~min_len in
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun k v -> Put (k, Int64.of_int v)) keyg (int_bound 10_000));
        (2, map (fun k -> Add k) keyg);
        (2, map (fun k -> Del k) keyg);
      ])

let pp_op = function
  | Put (k, v) -> Printf.sprintf "put %S %Ld" k v
  | Add k -> Printf.sprintf "add %S" k
  | Del k -> Printf.sprintf "del %S" k

let pp_case (ops, probes) =
  Printf.sprintf "script: %s\nprobes: %s"
    (String.concat "; " (List.map pp_op ops))
    (String.concat "; " (List.map (Printf.sprintf "%S") probes))

(* A script plus a probe multiset over the same alphabet. *)
let case_arb ~min_len =
  QCheck.make ~print:pp_case
    QCheck.Gen.(
      pair
        (list_size (int_range 0 200) (op_g ~min_len))
        (list_size (int_range 0 120) (key_g ~min_len)))

let widths = [ 1; 5; 32 ]

let oracle_get oracle k =
  match SMap.find_opt k oracle with Some (Some v) -> Some v | _ -> None

let prop_store_eq ~name ~preprocess ~min_len ~count =
  QCheck.Test.make ~name ~count (case_arb ~min_len) (fun (ops, probes) ->
      let store, oracle = run_script ~preprocess ops in
      let probes = Array.of_list probes in
      let want_get = Array.map (Hyperion.Store.get store) probes in
      let want_mem = Array.map (Hyperion.Store.mem store) probes in
      let oracle_ok =
        want_get = Array.map (oracle_get oracle) probes
        && want_mem = Array.map (fun k -> SMap.mem k oracle) probes
      in
      oracle_ok
      && List.for_all
           (fun width ->
             Hyperion.Store.get_many ~width store probes = want_get
             && Hyperion.Store.mem_many ~width store probes = want_mem)
           widths
      (* default width too *)
      && Hyperion.Store.get_many store probes = want_get
      && Hyperion.Store.mem_many store probes = want_mem)

(* A batch containing an empty key must raise exactly like the sequential
   loop would — and, like it, before any result is produced. *)
let prop_empty_key =
  QCheck.Test.make ~name:"empty key in a batch raises like get" ~count:100
    (case_arb ~min_len:1) (fun (ops, probes) ->
      let store, _ = run_script ~preprocess:false ops in
      let probes = Array.of_list (("" :: probes) |> List.sort (fun _ _ -> Random.int 3 - 1)) in
      let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
      raises (fun () -> Array.map (Hyperion.Store.get store) probes)
      && raises (fun () -> Hyperion.Store.get_many store probes)
      && raises (fun () -> Hyperion.Store.mem_many store probes))

(* Tag soundness vs the oracle: looking up a key the oracle holds must
   never trip the negative-lookup tag (a rejection would make a present
   key unfindable).  Observed through the engine's own counter, over both
   the sequential and the batched path. *)
let c_tag_rejected =
  Telemetry.Counter.make "hyperion_tag_rejected_total"
    ~help:"Lookups short-circuited by a container's negative-lookup tag"

let prop_tag_soundness =
  QCheck.Test.make ~name:"tag rejection never fires for a present key"
    ~count:300 (case_arb ~min_len:1) (fun (ops, _) ->
      let store, oracle = run_script ~preprocess:false ops in
      let present = Array.of_list (List.map fst (SMap.bindings oracle)) in
      let was = Telemetry.enabled () in
      Telemetry.reset ();
      Telemetry.set_enabled true;
      let seq_ok =
        Array.for_all (fun k -> Hyperion.Store.mem store k) present
      in
      let batched =
        if Array.length present = 0 then [||]
        else Hyperion.Store.mem_many ~width:32 store present
      in
      let rejected = Telemetry.Counter.value c_tag_rejected in
      Telemetry.set_enabled was;
      seq_ok && Array.for_all (fun b -> b) batched && rejected = 0)

(* Compressed front-end: the sharded store with a trained dictionary
   encodes every key on the way in; batched reads group by encoded route
   byte and must still be the map of sequential [get]/[mem]. *)
let trained_enc =
  let ks = Workload.Keystream.create ~n:500 () in
  Compress.Dict (Compress.train (Array.to_seq (Workload.Keystream.keys ks)))

let cfg_dict =
  { (tiny false) with Hyperion.Config.compress = 1 }

let prop_compressed_eq =
  QCheck.Test.make ~name:"sharded+compressed get_many/mem_many = map of get/mem"
    ~count:60 (case_arb ~min_len:1) (fun (ops, probes) ->
      let t =
        Hyperion_shard.create ~config:cfg_dict ~compress:trained_enc ~shards:2
          ()
      in
      Fun.protect
        ~finally:(fun () -> ignore (Hyperion_shard.close t))
        (fun () ->
          List.iter
            (fun op ->
              match op with
              | Put (k, v) -> Hyperion_shard.put t k v
              | Add k -> Hyperion_shard.add t k
              | Del k -> ignore (Hyperion_shard.delete t k))
            ops;
          let probes = Array.of_list probes in
          Hyperion_shard.get_many t probes
          = Array.map (Hyperion_shard.get t) probes
          && Hyperion_shard.mem_many ~width:8 t probes
             = Array.map (Hyperion_shard.mem t) probes))

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "getmany"
    [
      ( "differential",
        [
          qcheck
            (prop_store_eq ~name:"get_many/mem_many = map of get/mem (raw)"
               ~preprocess:false ~min_len:1 ~count:400);
          qcheck
            (prop_store_eq
               ~name:"get_many/mem_many = map of get/mem (preprocessed)"
               ~preprocess:true ~min_len:4 ~count:300);
          qcheck prop_empty_key;
          qcheck prop_compressed_eq;
        ] );
      ("tags", [ qcheck prop_tag_soundness ]);
    ]
