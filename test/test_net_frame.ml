(* hyperion.net wire protocol: qcheck round-trips over every opcode and
   response shape, torn/short frame resilience, oversized-length
   rejection, and pipelined multi-frame buffers split at arbitrary
   chunk boundaries. *)

module F = Hyperion_net.Frame

(* ---- generators ------------------------------------------------------- *)

let key_gen = QCheck.Gen.(string_size ~gen:(char_range '\000' '\255') (int_range 0 48))
let value_gen = QCheck.Gen.(map Int64.of_int (int_range (-1_000_000) 1_000_000))

let batch_op_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun k v -> F.Bput (k, v)) key_gen value_gen;
        map (fun k -> F.Badd k) key_gen;
        map (fun k -> F.Bdel k) key_gen;
      ])

let request_gen =
  QCheck.Gen.(
    oneof
      [
        map2 (fun k v -> F.Put (k, v)) key_gen value_gen;
        map (fun k -> F.Add k) key_gen;
        map (fun k -> F.Get k) key_gen;
        map (fun k -> F.Mem k) key_gen;
        map (fun k -> F.Delete k) key_gen;
        map
          (fun ops -> F.Batch (Array.of_list ops))
          (list_size (int_range 0 24) batch_op_gen);
        return F.Stats;
        return F.Health;
      ])

let err_code_gen =
  QCheck.Gen.oneofl
    [
      F.E_arena_saturated; F.E_alloc_failed; F.E_container_overflow;
      F.E_restart_budget; F.E_chunk_corrupt; F.E_empty_key; F.E_key_too_long;
      F.E_corrupt_snapshot; F.E_torn_log; F.E_version_mismatch; F.E_io;
      F.E_degraded; F.E_overloaded; F.E_shard_down; F.E_bad_request;
      F.E_too_large; F.E_internal;
    ]

let health_gen =
  QCheck.Gen.(
    map
      (fun (shard, (alive, degraded, backlog)) ->
        { F.sh_shard = shard; sh_alive = alive; sh_degraded = degraded;
          sh_backlog = backlog })
      (pair (int_range 0 63) (triple bool bool (int_range 0 4096))))

let response_gen =
  QCheck.Gen.(
    oneof
      [
        return F.Ack;
        map (fun v -> F.Value (Some v)) value_gen;
        return (F.Value None);
        map (fun b -> F.Found b) bool;
        map (fun n -> F.Applied n) (int_range 0 100_000);
        map2
          (fun (keys, bytes) (shards, sat) ->
            F.Stats_r
              {
                st_keys = Int64.of_int keys;
                st_resident_bytes = Int64.of_int bytes;
                st_shards = shards;
                st_saturated_arenas = sat;
              })
          (pair (int_range 0 1_000_000) (int_range 0 1_000_000_000))
          (pair (int_range 1 64) (int_range 0 64));
        map
          (fun hs -> F.Health_r (Array.of_list hs))
          (list_size (int_range 0 16) health_gen);
        map2 (fun c m -> F.Err (c, m)) err_code_gen
          (string_size ~gen:printable (int_range 0 64));
      ])

let id_gen = QCheck.Gen.(int_range 0 0x3FFFFFFF)

(* ---- single-frame round trips ---------------------------------------- *)

let decode_one buf =
  let dec = F.Decoder.create () in
  F.Decoder.feed_string dec (Buffer.contents buf);
  match F.Decoder.next dec with
  | F.Frame (id, tag, payload) ->
      (match F.Decoder.next dec with
      | F.Need_more -> ()
      | F.Frame _ -> Alcotest.fail "trailing frame after a single encode"
      | F.Corrupt m -> Alcotest.failf "corrupt after a single encode: %s" m);
      (id, tag, payload)
  | F.Need_more -> Alcotest.fail "decoder wants more after a full encode"
  | F.Corrupt m -> Alcotest.failf "corrupt single frame: %s" m

let prop_request_roundtrip =
  QCheck.Test.make ~name:"request encode/decode/parse round-trip" ~count:500
    (QCheck.make QCheck.Gen.(pair id_gen request_gen))
    (fun (id, req) ->
      let buf = Buffer.create 64 in
      F.encode_request buf ~id req;
      let did, tag, payload = decode_one buf in
      did = id
      &&
      match F.parse_request ~tag payload with
      | Ok req' -> req' = req
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s" m)

let prop_response_roundtrip =
  QCheck.Test.make ~name:"response encode/decode/parse round-trip" ~count:500
    (QCheck.make QCheck.Gen.(pair id_gen response_gen))
    (fun (id, resp) ->
      let buf = Buffer.create 64 in
      F.encode_response buf ~id resp;
      let did, tag, payload = decode_one buf in
      did = id
      &&
      match F.parse_response ~tag payload with
      | Ok resp' -> resp' = resp
      | Error m -> QCheck.Test.fail_reportf "parse failed: %s" m)

(* ---- pipelined buffers split at arbitrary boundaries ------------------ *)

let prop_arbitrary_splits =
  QCheck.Test.make
    ~name:"pipelined frames survive arbitrary chunk boundaries" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 12) (pair id_gen request_gen))
           (int_range 1 13)))
    (fun (reqs, chunk) ->
      let buf = Buffer.create 256 in
      List.iter (fun (id, req) -> F.encode_request buf ~id req) reqs;
      let all = Buffer.contents buf in
      let dec = F.Decoder.create () in
      let got = ref [] in
      let pos = ref 0 in
      let drain () =
        let continue = ref true in
        while !continue do
          match F.Decoder.next dec with
          | F.Frame (id, tag, payload) -> (
              match F.parse_request ~tag payload with
              | Ok req -> got := (id, req) :: !got
              | Error m -> Alcotest.failf "parse under splits: %s" m)
          | F.Need_more -> continue := false
          | F.Corrupt m -> Alcotest.failf "corrupt under splits: %s" m
        done
      in
      while !pos < String.length all do
        let len = min chunk (String.length all - !pos) in
        F.Decoder.feed_string dec (String.sub all !pos len);
        drain ();
        pos := !pos + len
      done;
      List.rev !got = reqs)

(* ---- torn / short / oversized frames ---------------------------------- *)

let test_torn_frame () =
  let buf = Buffer.create 64 in
  F.encode_request buf ~id:7 (F.Put ("torn key", 99L));
  let all = Buffer.contents buf in
  let dec = F.Decoder.create () in
  (* every strict prefix must yield Need_more, never Corrupt *)
  for cut = 0 to String.length all - 1 do
    let d = F.Decoder.create () in
    F.Decoder.feed_string d (String.sub all 0 cut);
    match F.Decoder.next d with
    | F.Need_more -> ()
    | F.Frame _ -> Alcotest.failf "frame from a %d-byte prefix" cut
    | F.Corrupt m -> Alcotest.failf "corrupt from a %d-byte prefix: %s" cut m
  done;
  (* and completing the tail yields exactly the frame *)
  F.Decoder.feed_string dec (String.sub all 0 9);
  (match F.Decoder.next dec with
  | F.Need_more -> ()
  | _ -> Alcotest.fail "expected Need_more on the torn prefix");
  F.Decoder.feed_string dec (String.sub all 9 (String.length all - 9));
  match F.Decoder.next dec with
  | F.Frame (id, tag, payload) -> (
      Alcotest.(check int) "id" 7 id;
      match F.parse_request ~tag payload with
      | Ok (F.Put (k, v)) ->
          Alcotest.(check string) "key" "torn key" k;
          Alcotest.(check int64) "value" 99L v
      | Ok _ -> Alcotest.fail "wrong request decoded"
      | Error m -> Alcotest.failf "parse: %s" m)
  | _ -> Alcotest.fail "expected the completed frame"

let le32 n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int n);
  Bytes.to_string b

let test_oversized_rejected () =
  let dec = F.Decoder.create () in
  F.Decoder.feed_string dec (le32 (F.max_frame_len + 1));
  (match F.Decoder.next dec with
  | F.Corrupt _ -> ()
  | _ -> Alcotest.fail "oversized length prefix must poison the decoder");
  (* poisoned decoders stay poisoned, even across feeds *)
  F.Decoder.feed_string dec "more bytes";
  match F.Decoder.next dec with
  | F.Corrupt _ -> ()
  | _ -> Alcotest.fail "decoder recovered from poison"

let test_short_length_rejected () =
  (* len < 5 cannot hold id + tag *)
  let dec = F.Decoder.create () in
  F.Decoder.feed_string dec (le32 4);
  F.Decoder.feed_string dec "xxxx";
  match F.Decoder.next dec with
  | F.Corrupt _ -> ()
  | _ -> Alcotest.fail "undersized length prefix must poison the decoder"

let test_truncated_payload_parse () =
  (* a syntactically complete frame whose payload is cut short parses to
     Error, not an exception *)
  let buf = Buffer.create 64 in
  F.encode_request buf ~id:1 (F.Put ("some key", 5L));
  let all = Buffer.contents buf in
  let dec = F.Decoder.create () in
  F.Decoder.feed_string dec all;
  match F.Decoder.next dec with
  | F.Frame (_, tag, payload) -> (
      let cut = String.sub payload 0 (String.length payload - 3) in
      match F.parse_request ~tag cut with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "truncated payload parsed")
  | _ -> Alcotest.fail "frame expected"

let test_unknown_tag_parse () =
  (match F.parse_request ~tag:0x63 "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown request tag parsed");
  match F.parse_response ~tag:0x63 "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown response tag parsed"

let test_err_code_ints () =
  (* the wire codes are a stable protocol surface *)
  List.iter
    (fun (c, n) ->
      Alcotest.(check int) "code" n (F.err_code_int c);
      match F.err_code_of_int n with
      | Some c' when c' = c -> ()
      | Some _ | None -> Alcotest.failf "code %d does not round-trip" n)
    [
      (F.E_arena_saturated, 1); (F.E_empty_key, 6); (F.E_degraded, 12);
      (F.E_overloaded, 13); (F.E_shard_down, 14); (F.E_bad_request, 100);
      (F.E_too_large, 101); (F.E_internal, 102);
    ]

let () =
  Alcotest.run "net-frame"
    [
      ( "round-trip",
        [
          QCheck_alcotest.to_alcotest prop_request_roundtrip;
          QCheck_alcotest.to_alcotest prop_response_roundtrip;
          QCheck_alcotest.to_alcotest prop_arbitrary_splits;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "torn frame" `Quick test_torn_frame;
          Alcotest.test_case "oversized rejected" `Quick test_oversized_rejected;
          Alcotest.test_case "short length rejected" `Quick
            test_short_length_rejected;
          Alcotest.test_case "truncated payload" `Quick
            test_truncated_payload_parse;
          Alcotest.test_case "unknown tags" `Quick test_unknown_tag_parse;
          Alcotest.test_case "error codes" `Quick test_err_code_ints;
        ] );
    ]
