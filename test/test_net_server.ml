(* hyperion.net server semantics over a loopback socket: pipelined
   put/get/batch round trips with out-of-order correlation, stats and
   health, typed Degraded errors over the wire when a shard's storage
   fails, malformed frames answered without dropping the connection,
   oversized frames closing it, the memcached-text listener, and clean
   server shutdown. *)

module H = Hyperion
module E = H.Hyperion_error
module Sh = Hyperion_shard
module F = Hyperion_net.Frame
module Server = Hyperion_net.Server
module Client = Hyperion_net.Client
module Io = Persist.Io

let cfg = { H.Config.strings with chunks_per_bin = 64 }

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyperion_net_test_%d_%d" (Unix.getpid ()) !counter)

let wipe_tree dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun entry ->
        let p = Filename.concat dir entry in
        if Sys.is_directory p then begin
          Array.iter (fun f -> Sys.remove (Filename.concat p f)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let ok what = function
  | Ok v -> v
  | Error m -> Alcotest.failf "%s: %s" what m

let start_server ?(shards = 2) ?memcached () =
  let t = Sh.create ~config:cfg ~shards () in
  let config =
    {
      Server.default_config with
      port = 0;
      memcached_port = (if memcached = Some true then Some 0 else None);
    }
  in
  let srv = ok "server start" (Server.start ~config t) in
  (t, srv)

let stop_server (t, srv) =
  Server.stop srv;
  match Sh.close t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "close: %s" (E.to_string e)

let connect srv = ok "connect" (Client.connect ~port:(Server.port srv) ())

let expect what want got =
  if got <> want then Alcotest.failf "%s: unexpected response" what

(* --- basic round trips ------------------------------------------------- *)

let test_basic_ops () =
  let (t, srv) = start_server () in
  let cl = connect srv in
  expect "put" F.Ack (ok "put" (Client.request cl (F.Put ("alpha key", 1L))));
  expect "add" F.Ack (ok "add" (Client.request cl (F.Add "beta key")));
  expect "get hit" (F.Value (Some 1L))
    (ok "get" (Client.request cl (F.Get "alpha key")));
  expect "get valueless" (F.Value None)
    (ok "get" (Client.request cl (F.Get "beta key")));
  expect "get miss" (F.Value None)
    (ok "get" (Client.request cl (F.Get "nope")));
  expect "mem hit" (F.Found true)
    (ok "mem" (Client.request cl (F.Mem "beta key")));
  expect "mem miss" (F.Found false) (ok "mem" (Client.request cl (F.Mem "zzz")));
  expect "delete hit" (F.Found true)
    (ok "delete" (Client.request cl (F.Delete "beta key")));
  expect "delete miss" (F.Found false)
    (ok "delete" (Client.request cl (F.Delete "beta key")));
  (* empty key: typed protocol error, not a dropped connection *)
  (match ok "empty key" (Client.request cl (F.Get "")) with
  | F.Err (F.E_empty_key, _) -> ()
  | _ -> Alcotest.fail "empty key must answer E_empty_key");
  Client.close cl;
  stop_server (t, srv)

let test_batch_and_stats () =
  let (t, srv) = start_server () in
  let cl = connect srv in
  let ops =
    Array.init 100 (fun i ->
        F.Bput (Printf.sprintf "batch key %03d" i, Int64.of_int i))
  in
  expect "batch" (F.Applied 100) (ok "batch" (Client.request cl (F.Batch ops)));
  expect "batched key" (F.Value (Some 42L))
    (ok "get" (Client.request cl (F.Get "batch key 042")));
  (match ok "stats" (Client.request cl F.Stats) with
  | F.Stats_r st ->
      Alcotest.(check int64) "keys" 100L st.F.st_keys;
      Alcotest.(check int) "shards" 2 st.F.st_shards;
      Alcotest.(check bool) "bytes > 0" true (st.F.st_resident_bytes > 0L)
  | _ -> Alcotest.fail "stats response expected");
  (match ok "health" (Client.request cl F.Health) with
  | F.Health_r hs ->
      Alcotest.(check int) "health entries" 2 (Array.length hs);
      Array.iter
        (fun h ->
          Alcotest.(check bool) "alive" true h.F.sh_alive;
          Alcotest.(check bool) "not degraded" false h.F.sh_degraded)
        hs
  | _ -> Alcotest.fail "health response expected");
  Client.close cl;
  stop_server (t, srv)

(* --- pipelining: many in flight, correlate by id ----------------------- *)

let test_pipelined_out_of_order () =
  let (t, srv) = start_server () in
  let cl = connect srv in
  let n = 64 in
  for i = 0 to n - 1 do
    let req =
      if i mod 2 = 0 then F.Put (Printf.sprintf "pipe key %d" i, Int64.of_int i)
      else F.Get (Printf.sprintf "pipe key %d" (i - 1))
    in
    match Client.send cl ~id:(1000 + i) req with
    | Ok () -> ()
    | Error m -> Alcotest.failf "send %d: %s" i m
  done;
  let seen = Hashtbl.create n in
  for _ = 1 to n do
    match Client.recv cl with
    | Error m -> Alcotest.failf "recv: %s" m
    | Ok (id, resp) ->
        if id < 1000 || id >= 1000 + n then Alcotest.failf "alien id %d" id;
        if Hashtbl.mem seen id then Alcotest.failf "duplicate id %d" id;
        Hashtbl.add seen id resp
  done;
  Alcotest.(check int) "all answered" n (Hashtbl.length seen);
  (* every put acked; gets answered (Some when the put was already
     applied, None when the lock-free read overtook it — both legal) *)
  Hashtbl.iter
    (fun id resp ->
      if (id - 1000) mod 2 = 0 then expect "pipelined put" F.Ack resp
      else
        match resp with
        | F.Value _ -> ()
        | _ -> Alcotest.failf "pipelined get %d: wrong shape" id)
    seen;
  Client.close cl;
  stop_server (t, srv)

(* --- protocol errors --------------------------------------------------- *)

let test_bad_frame_keeps_connection () =
  let (t, srv) = start_server () in
  let cl = connect srv in
  (* unknown opcode: answered with E_bad_request *)
  (match Client.send cl ~id:5 (F.Get "probe") with
  | Ok () -> ()
  | Error m -> Alcotest.failf "send: %s" m);
  (match Client.recv cl with
  | Ok (5, F.Value None) -> ()
  | Ok _ -> Alcotest.fail "probe get answered wrong"
  | Error m -> Alcotest.failf "recv: %s" m);
  (* hand-craft a frame with an unknown tag *)
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port srv));
  let raw = Bytes.create 10 in
  Bytes.set_int32_le raw 0 6l;
  (* len *)
  Bytes.set_int32_le raw 4 9l;
  (* id *)
  Bytes.set raw 8 '\x63';
  (* unknown tag *)
  Bytes.set raw 9 'x';
  let _ = Unix.write sock raw 0 10 in
  let dec = F.Decoder.create () in
  let rbuf = Bytes.create 4096 in
  let rec read_frame () =
    match F.Decoder.next dec with
    | F.Frame (id, tag, payload) -> (id, tag, payload)
    | F.Corrupt m -> Alcotest.failf "client-side corrupt: %s" m
    | F.Need_more -> (
        match Unix.read sock rbuf 0 (Bytes.length rbuf) with
        | 0 -> Alcotest.fail "server closed on a recoverable bad frame"
        | n ->
            F.Decoder.feed dec rbuf 0 n;
            read_frame ())
  in
  let id, tag, payload = read_frame () in
  Alcotest.(check int) "id echoed" 9 id;
  (match F.parse_response ~tag payload with
  | Ok (F.Err (F.E_bad_request, _)) -> ()
  | Ok _ -> Alcotest.fail "expected E_bad_request"
  | Error m -> Alcotest.failf "parse: %s" m);
  (* the same connection still serves valid requests *)
  let buf = Buffer.create 32 in
  F.encode_request buf ~id:10 (F.Mem "probe");
  let s = Buffer.contents buf in
  let _ = Unix.write_substring sock s 0 (String.length s) in
  let id2, tag2, payload2 = read_frame () in
  Alcotest.(check int) "second id" 10 id2;
  (match F.parse_response ~tag:tag2 payload2 with
  | Ok (F.Found false) -> ()
  | Ok _ -> Alcotest.fail "mem after bad frame answered wrong"
  | Error m -> Alcotest.failf "parse: %s" m);
  Unix.close sock;
  Client.close cl;
  stop_server (t, srv)

let test_oversized_frame_closes_connection () =
  let (t, srv) = start_server () in
  let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect sock
    (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port srv));
  let raw = Bytes.create 4 in
  Bytes.set_int32_le raw 0 (Int32.of_int (F.max_frame_len + 1));
  let _ = Unix.write sock raw 0 4 in
  (* the server answers E_too_large (id 0) and then closes: read until EOF *)
  let rbuf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec drain () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "server kept an oversized-frame connection open"
    else
      match Unix.read sock rbuf 0 (Bytes.length rbuf) with
      | 0 -> ()
      | _ -> drain ()
  in
  drain ();
  Unix.close sock;
  stop_server (t, srv)

(* --- degraded shard: typed error over the wire ------------------------- *)

let test_degraded_over_wire () =
  let dir = fresh_dir () in
  let shards = 2 in
  let ios = Array.init shards (fun _ -> Io.make ~max_retries:0 ()) in
  let t =
    match
      Sh.open_durable ~config:cfg ~shards ~sync_every_ops:2
        ~io_for_shard:(fun i -> ios.(i)) dir
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "open_durable: %s" (E.to_string e)
  in
  let srv =
    ok "server start"
      (Server.start ~config:{ Server.default_config with port = 0 } t)
  in
  let cl = connect srv in
  expect "durable put" F.Ack
    (ok "put" (Client.request cl (F.Put ("durable key", 1L))));
  (* arm a one-shot write fault on every shard's next I/O, then mutate
     until one trips into sticky degraded mode *)
  Array.iter
    (fun io -> Io.set_plan io (Fault.fire_at [ (Fault.Io_write_eio, 1) ]))
    ios;
  let saw_degraded = ref false in
  (try
     for i = 0 to 199 do
       match
         ok "put-under-fault"
           (Client.request cl (F.Put (Printf.sprintf "fault key %d" i, 7L)))
       with
       | F.Err (F.E_degraded, _) ->
           saw_degraded := true;
           raise Exit
       | F.Err (F.E_io, _) | F.Ack -> ()
       | _ -> Alcotest.fail "unexpected response under fault"
     done
   with Exit -> ());
  Alcotest.(check bool) "Degraded surfaced over the wire" true !saw_degraded;
  (* reads still served while degraded *)
  expect "degraded read" (F.Value (Some 1L))
    (ok "get" (Client.request cl (F.Get "durable key")));
  (match ok "health" (Client.request cl F.Health) with
  | F.Health_r hs ->
      Alcotest.(check bool) "one shard reports degraded" true
        (Array.exists (fun h -> h.F.sh_degraded) hs)
  | _ -> Alcotest.fail "health response expected");
  (* disarm and heal: mutations come back *)
  Array.iter Io.disarm ios;
  (match Sh.heal t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "heal: %s" (E.to_string e));
  expect "healed put" F.Ack
    (ok "put" (Client.request cl (F.Put ("healed key", 2L))));
  Client.close cl;
  Server.stop srv;
  (match Sh.close t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "close: %s" (E.to_string e));
  wipe_tree dir

(* --- shard down: typed error over the wire ----------------------------- *)

let test_shard_down_over_wire () =
  let (t, srv) = start_server ~shards:2 () in
  let cl = connect srv in
  (* find a key owned by shard 0, then poison that worker *)
  let rec key_for i b =
    if b > 255 then Alcotest.failf "no key for shard %d" i
    else
      let k = Printf.sprintf "%c down probe" (Char.chr b) in
      if Sh.shard_of_key t k = i then k else key_for i (b + 1)
  in
  let k0 = key_for 0 1 in
  ignore (Sh.poison t ~shard:0 ~reason:"net-server test kill");
  (* the poison trips on the next op the worker dequeues *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec until_down () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "shard death never surfaced over the wire"
    else
      match ok "put at dead shard" (Client.request cl (F.Put (k0, 3L))) with
      | F.Err (F.E_shard_down, _) -> ()
      | F.Ack | F.Err _ -> until_down ()
      | _ -> Alcotest.fail "unexpected response shape"
  in
  until_down ();
  (* health reflects the dead worker *)
  (match ok "health" (Client.request cl F.Health) with
  | F.Health_r hs ->
      Alcotest.(check bool) "a shard reports dead" true
        (Array.exists (fun h -> not h.F.sh_alive) hs)
  | _ -> Alcotest.fail "health response expected");
  Client.close cl;
  Server.stop srv;
  (match Sh.close t with
  | Ok () -> ()
  | Error (E.Shard_down _) -> ()
  | Error e -> Alcotest.failf "close: %s" (E.to_string e))

(* --- memcached-text listener ------------------------------------------- *)

let mc_connect srv =
  match Server.memcached_port srv with
  | None -> Alcotest.fail "memcached listener missing"
  | Some port ->
      let sock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect sock
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      sock

let mc_send sock s = ignore (Unix.write_substring sock s 0 (String.length s))

(* read until the accumulated reply contains [stop] *)
let mc_read_until sock stop =
  let buf = Buffer.create 256 in
  let rbuf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let contains () =
    let hay = Buffer.contents buf in
    let n = String.length hay and m = String.length stop in
    let rec at i = i + m <= n && (String.sub hay i m = stop || at (i + 1)) in
    at 0
  in
  let rec go () =
    if contains () then Buffer.contents buf
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %S; got %S" stop
        (Buffer.contents buf)
    else
      match Unix.read sock rbuf 0 (Bytes.length rbuf) with
      | 0 -> Alcotest.failf "EOF waiting for %S" stop
      | n ->
          Buffer.add_subbytes buf rbuf 0 n;
          go ()
  in
  go ()

let test_memcached_text () =
  let (t, srv) = start_server ~memcached:true () in
  let sock = mc_connect srv in
  mc_send sock "set mckey 0 0 2\r\n42\r\n";
  let r = mc_read_until sock "\r\n" in
  Alcotest.(check string) "set" "STORED\r\n" r;
  mc_send sock "get mckey\r\n";
  let r = mc_read_until sock "END\r\n" in
  Alcotest.(check string) "get" "VALUE mckey 0 2\r\n42\r\nEND\r\n" r;
  mc_send sock "get missing\r\n";
  let r = mc_read_until sock "END\r\n" in
  Alcotest.(check string) "miss" "END\r\n" r;
  mc_send sock "delete mckey\r\n";
  let r = mc_read_until sock "\r\n" in
  Alcotest.(check string) "delete" "DELETED\r\n" r;
  mc_send sock "delete mckey\r\n";
  let r = mc_read_until sock "\r\n" in
  Alcotest.(check string) "delete miss" "NOT_FOUND\r\n" r;
  (* valueless member via an empty data block *)
  mc_send sock "set member 0 0 0\r\n\r\n";
  let r = mc_read_until sock "\r\n" in
  Alcotest.(check string) "empty set" "STORED\r\n" r;
  mc_send sock "get member\r\n";
  let r = mc_read_until sock "END\r\n" in
  Alcotest.(check string) "valueless get" "VALUE member 0 0\r\n\r\nEND\r\n" r;
  (* stats mentions the store *)
  mc_send sock "stats\r\n";
  let r = mc_read_until sock "END\r\n" in
  Alcotest.(check bool) "stats has curr_items" true
    (String.length r > 0
    && String.sub r 0 (min 5 (String.length r)) = "STAT ");
  mc_send sock "quit\r\n";
  Unix.close sock;
  stop_server (t, srv)

(* --- pipelined read bursts through the batched path -------------------- *)

(* Same registered metric as lib/core — registration is idempotent, so
   this reads the engine's own counter. *)
let c_prefetch =
  Telemetry.Counter.make "hyperion_prefetch_issued_total"
    ~help:"Software prefetches issued by the batched read path"

(* A connection's queued Get/Mem frames drain into one [Sh.get_many]/
   [Sh.mem_many] call: every response must still correlate by id with the
   exact sequential answer, and the engine's prefetch counter moving
   proves the burst really went through the pipelined path. *)
let test_pipelined_get_burst () =
  let (t, srv) = start_server () in
  let n = 4000 in
  for i = 0 to n - 1 do
    Sh.put t (Printf.sprintf "burst key %05d" i) (Int64.of_int i)
  done;
  let cl = connect srv in
  let was = Telemetry.enabled () in
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let m = 256 in
  let expect_tbl = Hashtbl.create m in
  for j = 0 to m - 1 do
    let id = 9000 + j in
    let i = j * 97 mod n in
    let base = Printf.sprintf "burst key %05d" i in
    let req, want =
      match j mod 4 with
      | 0 -> (F.Get base, F.Value (Some (Int64.of_int i)))
      | 1 -> (F.Get (base ^ "\x01"), F.Value None)
      | 2 -> (F.Mem base, F.Found true)
      | _ -> (F.Mem (base ^ "\x01"), F.Found false)
    in
    Hashtbl.replace expect_tbl id want;
    match Client.send cl ~id req with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "send %d: %s" j msg
  done;
  for _ = 1 to m do
    match Client.recv cl with
    | Error msg -> Alcotest.failf "recv: %s" msg
    | Ok (id, resp) -> (
        match Hashtbl.find_opt expect_tbl id with
        | None -> Alcotest.failf "alien or duplicate id %d" id
        | Some want ->
            if resp <> want then Alcotest.failf "id %d: wrong response" id;
            Hashtbl.remove expect_tbl id)
  done;
  Alcotest.(check int) "all answered" 0 (Hashtbl.length expect_tbl);
  let prefetches = Telemetry.Counter.value c_prefetch in
  Telemetry.set_enabled was;
  Alcotest.(check bool) "burst served via the batched path" true
    (prefetches > 0);
  Client.close cl;
  stop_server (t, srv)

(* The burst survives sick shards: with shard 0 dead and shard 1 sticky-
   degraded, a pipelined burst of reads is still answered exactly (the
   direct read door serves down and degraded shards alike), while the
   mutation frames wedged mid-burst come back as their typed errors. *)
let test_burst_with_down_and_degraded_shards () =
  let dir = fresh_dir () in
  let shards = 2 in
  let ios = Array.init shards (fun _ -> Io.make ~max_retries:0 ()) in
  let t =
    match
      Sh.open_durable ~config:cfg ~shards ~sync_every_ops:2
        ~io_for_shard:(fun i -> ios.(i)) dir
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "open_durable: %s" (E.to_string e)
  in
  let srv =
    ok "server start"
      (Server.start ~config:{ Server.default_config with port = 0 } t)
  in
  (* sacrificial keys with a known owner, for degrading/killing workers
     and for the mid-burst mutation frames *)
  let key_owned i =
    let rec go b =
      if b > 255 then Alcotest.failf "no key for shard %d" i
      else
        let k = Printf.sprintf "%c sick shard probe" (Char.chr b) in
        if Sh.shard_of_key t k = i then k else go (b + 1)
    in
    go 1
  in
  let k0 = key_owned 0 and k1 = key_owned 1 in
  (* spread the read set over both shards: the leading byte routes *)
  let sick_key i = Printf.sprintf "%csick key %03d" (Char.chr (1 + (i mod 128))) i in
  let n = 200 in
  for i = 0 to n - 1 do
    Sh.put t (sick_key i) (Int64.of_int i)
  done;
  (* degrade shard 1: one-shot WAL write fault, mutate until sticky *)
  Io.set_plan ios.(1) (Fault.fire_at [ (Fault.Io_write_eio, 1) ]);
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec degrade () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "shard 1 never degraded"
    else
      match Sh.put_result t k1 7L with
      | Error (E.Degraded _) -> ()
      | Ok () | Error _ -> degrade ()
  in
  degrade ();
  Io.disarm ios.(1);
  (* kill shard 0: poison trips on the next op its worker dequeues *)
  ignore (Sh.poison t ~shard:0 ~reason:"burst test kill");
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec until_down () =
    if Unix.gettimeofday () > deadline then
      Alcotest.fail "shard 0 never died"
    else
      match Sh.put_result t k0 7L with
      | Error (E.Shard_down _) -> ()
      | Ok () | Error _ -> until_down ()
  in
  until_down ();
  let cl = connect srv in
  (* pipelined burst: reads across both shards (hits and misses) with a
     shard-down Put and a degraded Put wedged mid-burst *)
  let m = 80 in
  let expect_tbl = Hashtbl.create m in
  for j = 0 to m - 1 do
    let id = 7000 + j in
    let req, check =
      if j = 25 then
        (F.Put (k0, 9L), fun r ->
          match r with F.Err (F.E_shard_down, _) -> true | _ -> false)
      else if j = 55 then
        (F.Put (k1, 9L), fun r ->
          match r with F.Err (F.E_degraded, _) -> true | _ -> false)
      else
        let i = j * 13 mod n in
        let base = sick_key i in
        match j mod 3 with
        | 0 -> (F.Get base, fun r -> r = F.Value (Some (Int64.of_int i)))
        | 1 -> (F.Mem base, fun r -> r = F.Found true)
        | _ -> (F.Get (base ^ "\x01"), fun r -> r = F.Value None)
    in
    Hashtbl.replace expect_tbl id check;
    match Client.send cl ~id req with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "send %d: %s" j msg
  done;
  for _ = 1 to m do
    match Client.recv cl with
    | Error msg -> Alcotest.failf "recv: %s" msg
    | Ok (id, resp) -> (
        match Hashtbl.find_opt expect_tbl id with
        | None -> Alcotest.failf "alien or duplicate id %d" id
        | Some check ->
            if not (check resp) then
              Alcotest.failf "id %d: wrong response shape" id;
            Hashtbl.remove expect_tbl id)
  done;
  Alcotest.(check int) "all answered" 0 (Hashtbl.length expect_tbl);
  Client.close cl;
  Server.stop srv;
  Array.iter Io.disarm ios;
  (match Sh.close t with
  | Ok () | Error (E.Shard_down _) -> ()
  | Error e -> Alcotest.failf "close: %s" (E.to_string e));
  wipe_tree dir

(* --- clean shutdown under load ----------------------------------------- *)

let test_stop_with_live_connections () =
  let (t, srv) = start_server () in
  let cl = connect srv in
  expect "put" F.Ack (ok "put" (Client.request cl (F.Put ("live key", 1L))));
  (* stop with the connection still open: must not hang, and is idempotent *)
  Server.stop srv;
  Server.stop srv;
  Alcotest.(check int) "no connections after stop" 0 (Server.connections srv);
  Client.close cl;
  match Sh.close t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "close: %s" (E.to_string e)

let () =
  Alcotest.run "net-server"
    [
      ( "round-trip",
        [
          Alcotest.test_case "basic ops" `Quick test_basic_ops;
          Alcotest.test_case "batch + stats + health" `Quick
            test_batch_and_stats;
          Alcotest.test_case "pipelined out-of-order" `Quick
            test_pipelined_out_of_order;
        ] );
      ( "errors",
        [
          Alcotest.test_case "bad frame keeps connection" `Quick
            test_bad_frame_keeps_connection;
          Alcotest.test_case "oversized frame closes" `Quick
            test_oversized_frame_closes_connection;
          Alcotest.test_case "degraded over the wire" `Quick
            test_degraded_over_wire;
          Alcotest.test_case "shard down over the wire" `Quick
            test_shard_down_over_wire;
        ] );
      ( "burst",
        [
          Alcotest.test_case "pipelined get burst via get_many" `Quick
            test_pipelined_get_burst;
          Alcotest.test_case "burst with down + degraded shards" `Quick
            test_burst_with_down_and_degraded_shards;
        ] );
      ("memcached", [ Alcotest.test_case "text subset" `Quick test_memcached_text ]);
      ( "lifecycle",
        [
          Alcotest.test_case "stop with live connections" `Quick
            test_stop_with_live_connections;
        ] );
    ]
