(* BENCH_*.json shape: the bench smoke test for satellite "schema": 2.

   Writes a file through [Bench_util.Json_out.write] with and without a
   telemetry block and asserts the schema marker, the percentile fields and
   the explicit [enabled: false] of the no-telemetry case — the contract CI
   and EXPERIMENTS.md consumers parse. *)

module J = Bench_util.Json_out

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let found = ref false in
  for i = 0 to nh - nn do
    if String.sub hay i nn = needle then found := true
  done;
  !found

let assert_contains json needle =
  if not (contains json needle) then
    Alcotest.failf "json is missing %S in:\n%s" needle json

let tmp_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyperion-bench-json-%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists d) then Unix.mkdir d 0o755;
  d

let rows =
  [
    { J.label = "insert"; domains = 1; ops_per_s = 123456.0; bytes_per_key = 48.5 };
  ]

let test_schema_and_telemetry_block () =
  let lat =
    {
      J.metric = "put";
      count = 10_000;
      p50_ns = 812.0;
      p90_ns = 1344.0;
      p99_ns = 9472.0;
      p999_ns = 53248.0;
      mean_ns = 1031.2;
    }
  in
  let path =
    J.write ~dir:(tmp_dir ()) ~experiment:"smoke" ~n:10_000
      ~config:[ ("chunks_per_bin", "64") ]
      ~telemetry:[ lat ] ~rows ()
  in
  let json = read_file path in
  Alcotest.(check int) "schema constant" 2 J.schema_version;
  assert_contains json "\"schema\": 2";
  assert_contains json "\"enabled\": true";
  assert_contains json "\"metric\": \"put\"";
  List.iter (assert_contains json)
    [ "\"p50\": 812"; "\"p90\": 1344"; "\"p99\": 9472"; "\"p999\": 53248" ];
  assert_contains json "\"count\": 10000";
  assert_contains json "\"label\": \"insert\"";
  Sys.remove path

let test_no_telemetry_is_explicit () =
  let path =
    J.write ~dir:(tmp_dir ()) ~experiment:"smoke2" ~n:7
      ~config:[] ~rows ()
  in
  let json = read_file path in
  assert_contains json "\"schema\": 2";
  assert_contains json "\"enabled\": false";
  Sys.remove path

let test_histogram_snapshot_roundtrip () =
  (* a real registered histogram snapshots into a latency record whose
     percentiles obey the bucket error bound *)
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let h = Telemetry.Histogram.make "test_bench_json_hist_ns" in
  for v = 1 to 1000 do
    Telemetry.Histogram.observe_ns h v
  done;
  let lat = J.latency_of_histogram ~metric:"probe" h in
  Alcotest.(check int) "count" 1000 lat.J.count;
  let rel = abs_float (lat.J.p50_ns -. 500.0) /. 500.0 in
  Alcotest.(check bool) "p50 within bucket error" true
    (rel <= Telemetry.Hist.max_rel_error);
  Telemetry.set_enabled false;
  Telemetry.reset ()

let () =
  Alcotest.run "bench-json"
    [
      ( "schema",
        [
          Alcotest.test_case "schema 2 + telemetry block" `Quick
            test_schema_and_telemetry_block;
          Alcotest.test_case "no telemetry is explicit" `Quick
            test_no_telemetry_is_explicit;
          Alcotest.test_case "histogram snapshot roundtrip" `Quick
            test_histogram_snapshot_roundtrip;
        ] );
    ]
