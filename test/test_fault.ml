(* Fault-injection plans and the differential chaos harness: plan
   determinism, typed-error surfacing for every injected site, rollback
   precision under persistent allocation failure, and the acceptance
   criterion — 10k-op oracle-equivalent runs with an Alloc_fail injected at
   each scheduled consultation index in turn, Validate-clean after every
   fault. *)

module H = Hyperion
module S = H.Store
module E = H.Hyperion_error

let cfg = { H.Config.default with chunks_per_bin = 64 }

let run_ok ?plan ?ops:(n = 10_000) seed =
  match Chaos.run ~config:cfg ?plan ~seed ~ops:n () with
  | Ok o -> o
  | Error msg -> Alcotest.failf "chaos run failed: %s" msg

(* --- Fault plan unit behaviour ------------------------------------- *)

let test_plan_none () =
  Alcotest.(check bool) "never fires" false (Fault.check Fault.none Fault.Alloc_fail);
  Alcotest.(check int) "never counts" 0
    (Fault.consultations Fault.none Fault.Alloc_fail)

let test_plan_fire_at () =
  let p = Fault.fire_at [ (Fault.Alloc_fail, 3); (Fault.Alloc_fail, 5) ] in
  let hits =
    List.init 6 (fun _ -> Fault.check p Fault.Alloc_fail)
  in
  Alcotest.(check (list bool)) "fires exactly at 3 and 5"
    [ false; false; true; false; true; false ] hits;
  Alcotest.(check int) "consultations counted" 6
    (Fault.consultations p Fault.Alloc_fail);
  Alcotest.(check int) "other sites untouched" 0
    (Fault.consultations p Fault.Restart_storm);
  Alcotest.(check (list (pair string int))) "history"
    [ ("alloc-fail", 3); ("alloc-fail", 5) ]
    (List.map (fun (s, i) -> (Fault.site_name s, i)) (Fault.fired p))

let test_plan_seeded_deterministic () =
  let mk () =
    Fault.seeded ~seed:99L ~per_mille:100 ~sites:[ Fault.Alloc_fail ]
  in
  let a = mk () and b = mk () in
  let da = List.init 500 (fun _ -> Fault.check a Fault.Alloc_fail) in
  let db = List.init 500 (fun _ -> Fault.check b Fault.Alloc_fail) in
  Alcotest.(check (list bool)) "identical decision streams" da db;
  Alcotest.(check bool) "roughly 10% fire rate" true
    (let n = Fault.fired_count a in
     n > 20 && n < 100);
  (* an unlisted site never fires *)
  Alcotest.(check bool) "unlisted site silent" false
    (Fault.check a Fault.Chunk_corrupt)

let test_plan_pause () =
  let p = Fault.always [ Fault.Alloc_fail ] in
  Alcotest.(check bool) "fires outside pause" true (Fault.check p Fault.Alloc_fail);
  let inside =
    Fault.with_pause p (fun () -> Fault.check p Fault.Alloc_fail)
  in
  Alcotest.(check bool) "suppressed inside pause" false inside;
  Alcotest.(check int) "paused consults not counted" 1
    (Fault.consultations p Fault.Alloc_fail);
  (* pause unwinds on exceptions *)
  (try Fault.with_pause p (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check bool) "fires again after pause" true
    (Fault.check p Fault.Alloc_fail)

(* --- Typed errors per injected site -------------------------------- *)

let test_alloc_fail_surfaces () =
  let s = S.create ~config:cfg () in
  S.set_fault_plan s (Fault.always [ Fault.Alloc_fail ]);
  (match S.put_result s "alpha" 1L with
  | Error (E.Alloc_failed _) -> ()
  | Ok () -> Alcotest.fail "put must fail when every allocation fails"
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e));
  Alcotest.(check int) "nothing stored" 0 (S.length s);
  Alcotest.(check (option int64)) "reads fine" None (S.get s "alpha");
  S.set_fault_plan s Fault.none;
  Alcotest.(check bool) "recovers once plan removed" true
    (S.put_result s "alpha" 1L = Ok ());
  Alcotest.(check (option int64)) "stored now" (Some 1L) (S.get s "alpha")

let test_superbin_exhausted_not_sticky () =
  let s = S.create ~config:cfg () in
  S.set_fault_plan s (Fault.fire_at [ (Fault.Superbin_exhausted, 1) ]);
  (match S.put_result s "alpha" 1L with
  | Error E.Arena_saturated -> ()
  | r ->
      Alcotest.failf "expected Arena_saturated, got %s"
        (match r with Ok () -> "Ok" | Error e -> E.to_string e));
  (* injected exhaustion is transient: the arena is not actually full *)
  Alcotest.(check int) "not sticky" 0 (S.saturated_arenas s);
  Alcotest.(check bool) "next put fine" true (S.put_result s "alpha" 1L = Ok ())

let test_restart_budget () =
  let s = S.create ~config:cfg () in
  S.put s "seed" 0L;
  S.set_fault_plan s (Fault.always [ Fault.Restart_storm ]);
  (match S.put_result s "other" 1L with
  | Error (E.Restart_budget_exceeded n) ->
      Alcotest.(check bool) "budget positive" true (n > 0)
  | r ->
      Alcotest.failf "expected Restart_budget_exceeded, got %s"
        (match r with Ok () -> "Ok" | Error e -> E.to_string e));
  S.set_fault_plan s Fault.none;
  Alcotest.(check bool) "put lands after storm" true
    (S.put_result s "other" 1L = Ok ());
  Alcotest.(check int) "both keys present" 2 (S.length s)

let test_chunk_corrupt () =
  let s = S.create ~config:cfg () in
  S.put s "seed" 0L;
  S.set_fault_plan s (Fault.fire_at [ (Fault.Chunk_corrupt, 1) ]);
  (match S.put_result s "other" 1L with
  | Error (E.Chunk_corrupt _) -> ()
  | r ->
      Alcotest.failf "expected Chunk_corrupt, got %s"
        (match r with Ok () -> "Ok" | Error e -> E.to_string e));
  Alcotest.(check (option int64)) "old binding intact" (Some 0L) (S.get s "seed");
  Alcotest.(check int) "store still sound" 0
    (List.length (H.Validate.check_store s))

(* --- Differential chaos runs --------------------------------------- *)

(* Acceptance criterion: inject a single allocation failure at each
   scheduled consultation index in turn; every 10k-op run must stay
   oracle-equivalent with a clean audit after the injected fault. *)
let test_alloc_fail_schedule () =
  List.iter
    (fun at ->
      let plan = Fault.fire_at [ (Fault.Alloc_fail, at) ] in
      let o = run_ok ~plan 7L in
      if Fault.consultations plan Fault.Alloc_fail >= at then
        Alcotest.(check int)
          (Printf.sprintf "fault injected at consultation %d" at)
          1 o.Chaos.injected_faults)
    [ 1; 2; 3; 5; 8; 13; 21; 34; 55; 100; 250; 500; 1000 ]

let test_seeded_all_sites () =
  let plan =
    Fault.seeded ~seed:0xC0FFEEL ~per_mille:3 ~sites:Fault.all_sites
  in
  let o = run_ok ~plan 11L in
  Alcotest.(check bool) "faults actually injected" true
    (o.Chaos.injected_faults > 0);
  Alcotest.(check bool) "audited after each firing" true
    (o.Chaos.audits >= o.Chaos.injected_faults)

let test_rollback_under_permanent_alloc_fail () =
  (* With EVERY allocation failing, most mutations are rejected; each
     rejection must leave the store byte-identical in observable terms
     (the oracle comparison) and structurally sound (the audits). *)
  let plan = Fault.always [ Fault.Alloc_fail ] in
  let o =
    match
      Chaos.run ~config:cfg ~plan ~seed:23L ~ops:300 ~validate_every:50 ()
    with
    | Ok o -> o
    | Error msg -> Alcotest.failf "rollback violated: %s" msg
  in
  Alcotest.(check bool) "rejections observed" true
    (o.Chaos.mutations_failed > 0)

let test_clean_run_without_faults () =
  let o = run_ok 3L in
  Alcotest.(check int) "no injections" 0 o.Chaos.injected_faults;
  Alcotest.(check int) "no rejections" 0 o.Chaos.mutations_failed;
  Alcotest.(check bool) "keys stored" true (o.Chaos.final_keys > 0)

let () =
  Alcotest.run "fault"
    [
      ( "plans",
        [
          Alcotest.test_case "disabled plan" `Quick test_plan_none;
          Alcotest.test_case "fire_at schedule" `Quick test_plan_fire_at;
          Alcotest.test_case "seeded determinism" `Quick
            test_plan_seeded_deterministic;
          Alcotest.test_case "pause suppression" `Quick test_plan_pause;
        ] );
      ( "typed errors",
        [
          Alcotest.test_case "alloc failure" `Quick test_alloc_fail_surfaces;
          Alcotest.test_case "injected exhaustion transient" `Quick
            test_superbin_exhausted_not_sticky;
          Alcotest.test_case "restart budget" `Quick test_restart_budget;
          Alcotest.test_case "chunk corruption" `Quick test_chunk_corrupt;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "clean differential run" `Quick
            test_clean_run_without_faults;
          Alcotest.test_case "alloc-fail schedule" `Quick
            test_alloc_fail_schedule;
          Alcotest.test_case "seeded all sites" `Quick test_seeded_all_sites;
          Alcotest.test_case "rollback precision" `Quick
            test_rollback_under_permanent_alloc_fail;
        ] );
    ]
