(* Public Store API: arenas, key pre-processing, range lower bounds,
   counters and memory/stats accessors. *)

module S = Hyperion.Store

let cfg = { Hyperion.Config.default with chunks_per_bin = 64 }

let test_basic_api () =
  let s = S.create ~config:cfg () in
  S.put s "alpha" 1L;
  S.put s "beta" 2L;
  S.add s "gamma";
  Alcotest.(check (option int64)) "get alpha" (Some 1L) (S.get s "alpha");
  Alcotest.(check (option int64)) "gamma valueless" None (S.get s "gamma");
  Alcotest.(check bool) "gamma member" true (S.mem s "gamma");
  Alcotest.(check bool) "delta not member" false (S.mem s "delta");
  Alcotest.(check int) "length" 3 (S.length s);
  Alcotest.(check bool) "delete beta" true (S.delete s "beta");
  Alcotest.(check bool) "delete beta again" false (S.delete s "beta");
  Alcotest.(check int) "length after delete" 2 (S.length s)

let test_range_start () =
  let s = S.create ~config:cfg () in
  let keys = [ "apple"; "apricot"; "banana"; "cherry"; "date" ] in
  List.iteri (fun i k -> S.put s k (Int64.of_int i)) keys;
  let from start =
    let acc = ref [] in
    S.range s ~start (fun k _ ->
        acc := k :: !acc;
        true);
    List.rev !acc
  in
  Alcotest.(check (list string)) "from banana" [ "banana"; "cherry"; "date" ]
    (from "banana");
  Alcotest.(check (list string)) "from b (prefix)" [ "banana"; "cherry"; "date" ]
    (from "b");
  Alcotest.(check (list string)) "between keys" [ "banana"; "cherry"; "date" ]
    (from "azz");
  Alcotest.(check (list string)) "past the end" [] (from "zebra");
  Alcotest.(check (list string)) "everything" keys (from "");
  (* early termination via callback *)
  let count = ref 0 in
  S.range s (fun _ _ ->
      incr count;
      !count < 2);
  Alcotest.(check int) "callback stop" 2 !count

let test_arenas () =
  let s = S.create ~config:{ cfg with arenas = 4 } () in
  let rng = Workload.Mt19937_64.create 5L in
  let model = Hashtbl.create 64 in
  for _ = 1 to 5000 do
    let k =
      String.init
        (1 + Workload.Mt19937_64.next_below rng 10)
        (fun _ -> Char.chr (Workload.Mt19937_64.next_below rng 256))
    in
    if String.length k > 0 then begin
      let v = Workload.Mt19937_64.next_u64 rng in
      S.put s k v;
      Hashtbl.replace model k v
    end
  done;
  Alcotest.(check int) "length across arenas" (Hashtbl.length model) (S.length s);
  Hashtbl.iter
    (fun k v ->
      if S.get s k <> Some v then Alcotest.failf "arena-routed key %S lost" k)
    model;
  (* global order across the 256 per-byte tries *)
  let prev = ref "" and ok = ref true and n = ref 0 in
  S.range s (fun k _ ->
      if String.compare !prev k >= 0 && !n > 0 then ok := false;
      prev := k;
      incr n;
      true);
  Alcotest.(check bool) "range ordered across tries" true !ok;
  Alcotest.(check int) "range covers all" (Hashtbl.length model) !n;
  Alcotest.(check int) "structurally valid" 0
    (List.length (Hyperion.Validate.check_store s))

let test_arena_threads () =
  (* concurrent puts into distinct key spaces, one domain... the paper uses
     threads over arenas; OCaml threads interleave but must stay safe *)
  let s = S.create ~config:{ cfg with arenas = 8 } () in
  let worker prefix () =
    for i = 0 to 999 do
      S.put s (Printf.sprintf "%c-%05d" prefix i) (Int64.of_int i)
    done
  in
  let threads =
    List.map (fun c -> Thread.create (worker c) ()) [ 'a'; 'h'; 'q'; 'z' ]
  in
  List.iter Thread.join threads;
  Alcotest.(check int) "all inserted" 4000 (S.length s);
  Alcotest.(check (option int64)) "spot check" (Some 123L) (S.get s "q-00123")

let test_max_arenas () =
  (* the paper's full 256-arena configuration *)
  let s = S.create ~config:{ cfg with arenas = 256 } () in
  for i = 0 to 2999 do
    S.put s (Printf.sprintf "%c%05d" (Char.chr (i mod 256)) i) (Int64.of_int i)
  done;
  Alcotest.(check int) "length" 3000 (S.length s);
  let n = ref 0 and prev = ref "" and ok = ref true in
  S.range s (fun k _ ->
      if !n > 0 && String.compare !prev k >= 0 then ok := false;
      prev := k;
      incr n;
      true);
  Alcotest.(check int) "range covers" 3000 !n;
  Alcotest.(check bool) "ordered" true !ok;
  for i = 0 to 2999 do
    let k = Printf.sprintf "%c%05d" (Char.chr (i mod 256)) i in
    if S.get s k <> Some (Int64.of_int i) then Alcotest.failf "lost %S" k
  done

let test_preprocess_store () =
  let s = S.create ~config:{ cfg with preprocess = true } () in
  let rng = Workload.Mt19937_64.create 6L in
  let keys =
    List.init 2000 (fun _ ->
        Kvcommon.Key_codec.of_u64 (Workload.Mt19937_64.next_u64 rng))
  in
  List.iteri (fun i k -> S.put s k (Int64.of_int i)) keys;
  List.iteri
    (fun i k ->
      if S.get s k <> Some (Int64.of_int i) then
        Alcotest.failf "pre-processed key %d lost" i)
    keys;
  (* range must yield ORIGINAL keys, in original binary order *)
  let sorted = List.sort String.compare keys in
  let got = ref [] in
  S.range s (fun k _ ->
      got := k :: !got;
      true);
  Alcotest.(check bool) "decoded range keys" true (List.rev !got = sorted);
  (* range with a start bound in original key space *)
  let mid = List.nth sorted 1000 in
  let got = ref [] in
  S.range s ~start:mid (fun k _ ->
      got := k :: !got;
      true);
  Alcotest.(check int) "bounded range size" 1000 (List.length !got)

let prop_range_bound =
  (* for random contents and a random start bound, range must return
     exactly the model keys >= start, in order *)
  QCheck.Test.make ~name:"range ?start equals model filter" ~count:60
    QCheck.(
      pair
        (list_of_size (Gen.int_range 0 120)
           (string_gen_of_size (Gen.int_range 1 8) Gen.printable))
        (string_gen_of_size (Gen.int_range 0 8) Gen.printable))
    (fun (keys, start) ->
      let keys = List.filter (fun k -> k <> "") keys in
      let s = S.create ~config:cfg () in
      List.iteri (fun i k -> S.put s k (Int64.of_int i)) keys;
      let got = ref [] in
      S.range s ~start (fun k _ ->
          got := k :: !got;
          true);
      let want =
        List.sort_uniq String.compare keys
        |> List.filter (fun k -> String.compare k start >= 0)
      in
      List.rev !got = want)

let test_iteration_helpers () =
  let s = S.create ~config:cfg () in
  List.iter (fun k -> S.put s k 1L) [ "car"; "cart"; "cat"; "dog"; "carp" ];
  let n = ref 0 in
  S.iter s (fun _ _ -> incr n);
  Alcotest.(check int) "iter visits all" 5 !n;
  let cat = S.fold s ~init:[] ~f:(fun acc k _ -> k :: acc) in
  Alcotest.(check (list string)) "fold order" [ "dog"; "cat"; "cart"; "carp"; "car" ] cat;
  let hits = ref [] in
  S.prefix_iter s ~prefix:"car" (fun k _ ->
      hits := k :: !hits;
      true);
  Alcotest.(check (list string)) "prefix" [ "cart"; "carp"; "car" ] !hits;
  let none = ref 0 in
  S.prefix_iter s ~prefix:"zz" (fun _ _ -> incr none; true);
  Alcotest.(check int) "no prefix matches" 0 !none

module E = Hyperion.Hyperion_error

let test_result_api_edges () =
  let s = S.create ~config:cfg () in
  (* empty key: typed error through the result API, exception via put *)
  (match S.put_result s "" 1L with
  | Error E.Empty_key -> ()
  | _ -> Alcotest.fail "empty key must yield Error Empty_key");
  (match S.delete_result s "" with
  | Error E.Empty_key -> ()
  | _ -> Alcotest.fail "empty-key delete must yield Error Empty_key");
  Alcotest.check_raises "exception API preserved"
    (Invalid_argument "Hyperion: empty key") (fun () -> S.put s "" 1L);
  (* over-long key *)
  let huge = String.make ((1 lsl 20) + 1) 'k' in
  (match S.add_result s huge with
  | Error (E.Key_too_long n) ->
      Alcotest.(check int) "reported length" ((1 lsl 20) + 1) n
  | _ -> Alcotest.fail "over-long key must yield Error Key_too_long");
  (* happy paths mirror the exception API *)
  Alcotest.(check bool) "put ok" true (S.put_result s "alpha" 7L = Ok ());
  Alcotest.(check bool) "add ok" true (S.add_result s "beta" = Ok ());
  Alcotest.(check bool) "delete hit" true (S.delete_result s "alpha" = Ok true);
  Alcotest.(check bool) "delete miss" true (S.delete_result s "alpha" = Ok false);
  Alcotest.(check int) "length tracks result API" 1 (S.length s)

let test_container_size_limit () =
  (* With splits disabled, the root container of 2-byte keys must grow to
     the 19-bit size ceiling and then reject further growth with a typed
     Container_overflow — never a crash, never a corrupt container. *)
  let nosplit = { cfg with split_a = 1 lsl 22; split_b = 1 lsl 22 } in
  let s = S.create ~config:nosplit () in
  let key i = Printf.sprintf "%c%c" (Char.chr (i / 256)) (Char.chr (i mod 256)) in
  let stored = ref 0 and overflow = ref None in
  (try
     for i = 0 to 65_535 do
       match S.put_result s (key i) (Int64.of_int i) with
       | Ok () -> incr stored
       | Error e ->
           overflow := Some e;
           raise Exit
     done
   with Exit -> ());
  (match !overflow with
  | Some E.Container_overflow -> ()
  | Some e -> Alcotest.failf "expected Container_overflow, got %s" (E.to_string e)
  | None -> Alcotest.fail "19-bit limit never hit");
  Alcotest.(check bool) "limit needed many keys" true (!stored > 10_000);
  Alcotest.(check int) "length consistent" !stored (S.length s);
  (* everything inserted before the overflow is still there *)
  for i = 0 to !stored - 1 do
    if S.get s (key i) <> Some (Int64.of_int i) then
      Alcotest.failf "key %d lost after overflow" i
  done;
  Alcotest.(check int) "structurally valid at the ceiling" 0
    (List.length (Hyperion.Validate.check_store s))

let test_arena_exhaustion_and_recovery () =
  (* One metabin only: the pool is exhausted after a few thousand real
     containers.  The arena must saturate gracefully — typed error, reads
     intact — and deletes must lift the saturation. *)
  let tiny = { cfg with max_metabins = 1; chunks_per_bin = 64 } in
  let s = S.create ~config:tiny () in
  (* long unique suffixes force a real child container per key *)
  let key i = Printf.sprintf "%06d-%s" i (String.make 200 (Char.chr (65 + (i mod 26)))) in
  let stored = ref 0 and saturated = ref false in
  (try
     for i = 0 to 99_999 do
       match S.put_result s (key i) (Int64.of_int i) with
       | Ok () -> incr stored
       | Error E.Arena_saturated ->
           saturated := true;
           raise Exit
       | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)
     done
   with Exit -> ());
  Alcotest.(check bool) "pool exhaustion reached" true !saturated;
  Alcotest.(check int) "arena reported saturated" 1 (S.saturated_arenas s);
  Alcotest.(check int) "stats agree" 1 (S.stats s).Hyperion.Stats.saturated_arenas;
  (* reads keep working on a saturated arena *)
  Alcotest.(check (option int64)) "read first" (Some 0L) (S.get s (key 0));
  Alcotest.(check (option int64)) "read last stored"
    (Some (Int64.of_int (!stored - 1)))
    (S.get s (key (!stored - 1)));
  Alcotest.(check int) "no structural damage" 0
    (List.length (Hyperion.Validate.check_store s));
  (* deletes still work and lift the saturation *)
  for i = 0 to (!stored / 2) - 1 do
    if S.delete_result s (key i) <> Ok true then
      Alcotest.failf "delete %d failed on saturated arena" i
  done;
  Alcotest.(check int) "saturation lifted" 0 (S.saturated_arenas s);
  Alcotest.(check bool) "puts resume after recovery" true
    (S.put_result s "recovered" 1L = Ok ());
  Alcotest.(check (option int64)) "new binding readable" (Some 1L)
    (S.get s "recovered")

let test_mem_model () =
  Alcotest.(check int) "min chunk" 32 (Kvcommon.Mem_model.malloc 0);
  Alcotest.(check int) "16-byte aligned" 48 (Kvcommon.Mem_model.malloc 33);
  Alcotest.(check int) "header included" 48 (Kvcommon.Mem_model.malloc 40);
  Alcotest.check_raises "negative"
    (Invalid_argument "Mem_model.malloc: negative size") (fun () ->
      ignore (Kvcommon.Mem_model.malloc (-1)))

let test_memory_and_stats () =
  let s = S.create ~config:cfg () in
  let empty_mem = S.memory_usage s in
  for i = 0 to 9999 do
    S.put s (Printf.sprintf "key-%06d" i) (Int64.of_int i)
  done;
  Alcotest.(check bool) "memory grows" true (S.memory_usage s > empty_mem);
  let st = S.stats s in
  Alcotest.(check int) "values counted" 10000 st.Hyperion.Stats.values;
  Alcotest.(check bool) "delta encoding used" true
    (st.Hyperion.Stats.delta_encoded > 0);
  Alcotest.(check bool) "t nodes exist" true (st.Hyperion.Stats.t_nodes > 0);
  let profile = S.superbin_profile s in
  Alcotest.(check int) "profile has 64 superbins" 64 (Array.length profile);
  Alcotest.(check bool) "chunks allocated" true (S.allocated_chunks s > 0)

let test_sequential_int_memory () =
  (* headline property: sequential integers are indexed with only ~1-2
     extra bytes per 8-byte key beyond the 8-byte value (paper: 9.31 B/key) *)
  let s = S.create ~config:cfg () in
  let n = 200_000 in
  for i = 0 to n - 1 do
    S.put s (Kvcommon.Key_codec.of_u64 (Int64.of_int i)) (Int64.of_int i)
  done;
  let content =
    (* subtract the allocator's fixed empty-chunk overhead to isolate the
       per-key payload cost *)
    Array.fold_left
      (fun a p -> a + p.Hyperion.Memman.allocated_bytes)
      0 (S.superbin_profile s)
  in
  let per_key = float_of_int content /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "allocated bytes/key %.2f in [8.5, 14]" per_key)
    true
    (per_key >= 8.5 && per_key <= 14.0)

let () =
  Alcotest.run "store"
    [
      ( "api",
        [
          Alcotest.test_case "basic" `Quick test_basic_api;
          Alcotest.test_case "range start bounds" `Quick test_range_start;
          Alcotest.test_case "arenas" `Quick test_arenas;
          Alcotest.test_case "arena threads" `Quick test_arena_threads;
          Alcotest.test_case "256 arenas" `Quick test_max_arenas;
          Alcotest.test_case "pre-processing" `Quick test_preprocess_store;
          Alcotest.test_case "memory & stats" `Quick test_memory_and_stats;
          Alcotest.test_case "mem model" `Quick test_mem_model;
          Alcotest.test_case "iteration helpers" `Quick test_iteration_helpers;
          QCheck_alcotest.to_alcotest prop_range_bound;
          Alcotest.test_case "sequential int density" `Slow test_sequential_int_memory;
        ] );
      ( "limits",
        [
          Alcotest.test_case "result API edge cases" `Quick test_result_api_edges;
          Alcotest.test_case "19-bit container ceiling" `Quick
            test_container_size_limit;
          Alcotest.test_case "arena exhaustion & recovery" `Quick
            test_arena_exhaustion_and_recovery;
        ] );
    ]
