(* Shard supervision: a poisoned worker dies without stranding anyone
   (typed [Shard_down] errors, siblings unaffected), [restart_shard]
   rebuilds the shard from its persist directory in place, a disk fault
   mid-batch yields an exact applied-prefix report plus a degraded shard
   that [heal] re-arms, a full mailbox past the enqueue deadline yields
   [Overloaded] — and a qcheck liveness property: every blocking shard
   operation completes (never hangs) under random worker kills and
   injected disk faults. *)

module H = Hyperion
module E = H.Hyperion_error
module Sh = Hyperion_shard
module Io = Persist.Io

let cfg = { H.Config.strings with chunks_per_bin = 64 }

let fresh_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyperion_supervision_test_%d_%d" (Unix.getpid ())
         !counter)

(* the shard layouts are two levels deep: dir/shard-NNN/files + MANIFEST *)
let wipe_tree dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun entry ->
        let p = Filename.concat dir entry in
        if Sys.is_directory p then begin
          Array.iter (fun f -> Sys.remove (Filename.concat p f)) (Sys.readdir p);
          Unix.rmdir p
        end
        else Sys.remove p)
      (Sys.readdir dir);
    Unix.rmdir dir
  end

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (E.to_string e)

(* a key owned by shard [i], distinguished by [j] *)
let key_for t i j =
  let rec scan b =
    if b > 255 then Alcotest.failf "no key found for shard %d" i
    else
      let k = Printf.sprintf "%c-key-%d" (Char.chr b) j in
      if Sh.shard_of_key t k = i then k else scan (b + 1)
  in
  scan 1

let shard_health t i = List.nth (Sh.health t) i

let wait_for ?(timeout_s = 5.0) what pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.yield ();
      Unix.sleepf 0.002;
      go ()
    end
  in
  go ()

(* --- worker death: typed errors, healthy siblings, in-place restart --- *)

let test_poison_and_restart () =
  let dir = fresh_dir () in
  let t = ok "open" (Sh.open_durable ~config:cfg ~shards:4 ~sync_every_ops:4 dir) in
  for i = 0 to 3 do
    ok "seed put" (Sh.put_result t (key_for t i 0) (Int64.of_int i))
  done;
  Alcotest.(check bool) "poison accepted" true
    (Sh.poison t ~shard:2 ~reason:"injected test crash");
  wait_for "shard 2 to die" (fun () -> not (shard_health t 2).Sh.hs_alive);
  (* the dead shard fails fast with a typed error *)
  (match Sh.put_result t (key_for t 2 1) 9L with
  | Error (E.Shard_down _) -> ()
  | Ok () -> Alcotest.fail "put on dead shard succeeded"
  | Error e -> Alcotest.failf "expected Shard_down, got %s" (E.to_string e));
  let h2 = shard_health t 2 in
  Alcotest.(check bool) "health names the exception" true
    (match h2.Sh.hs_down with
    | Some why ->
        let contains s sub =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          m = 0 || go 0
        in
        contains why "injected test crash"
    | None -> false);
  (* siblings keep serving *)
  ok "sibling put" (Sh.put_result t (key_for t 0 1) 10L);
  Alcotest.(check (option int64)) "sibling read" (Some 10L)
    (Sh.get t (key_for t 0 1));
  (* quiesced reads still work with a dead shard (its store is frozen) *)
  Alcotest.(check bool) "length with a dead shard" true (Sh.length t >= 4);
  (* restart recovers the shard's own durable data in place *)
  (match ok "restart" (Sh.restart_shard t 2) with
  | Some r ->
      Alcotest.(check bool) "restart replayed the shard's log" true
        (r.Persist.snapshot_keys + r.Persist.replayed_ops >= 1)
  | None -> Alcotest.fail "durable restart reported no recovery");
  Alcotest.(check bool) "restarted shard is alive" true
    (shard_health t 2).Sh.hs_alive;
  Alcotest.(check (option int64)) "pre-crash binding recovered" (Some 2L)
    (Sh.get t (key_for t 2 0));
  ok "write after restart" (Sh.put_result t (key_for t 2 1) 11L);
  (* restarting a healthy shard is refused *)
  (match Sh.restart_shard t 2 with
  | Error (E.Io_error _) -> ()
  | Ok _ -> Alcotest.fail "restarting a healthy shard succeeded"
  | Error e -> Alcotest.failf "unexpected error %s" (E.to_string e));
  ok "close" (Sh.close t);
  wipe_tree dir

(* --- disk fault mid-batch: exact applied prefix, heal ----------------- *)

let test_partial_batch_and_heal () =
  let dir = fresh_dir () in
  let ios = Array.init 4 (fun _ -> Io.make ~max_retries:0 ()) in
  let t =
    ok "open"
      (Sh.open_durable ~config:cfg ~shards:4
         ~io_for_shard:(fun i -> ios.(i))
         dir)
  in
  (* the 3rd WAL append on shard 1 after arming fails; retries are off, so
     the slice stops right there and the shard degrades *)
  Io.set_plan ios.(1) (Fault.fire_at [ (Fault.Io_write_eio, 3) ]);
  let b = Sh.Batch.create t in
  for j = 0 to 1 do
    Sh.Batch.put b (key_for t 0 j) (Int64.of_int j)
  done;
  for j = 0 to 5 do
    Sh.Batch.put b (key_for t 1 j) (Int64.of_int (100 + j))
  done;
  (match Sh.Batch.flush_report b with
  | [ r0; r1 ] ->
      Alcotest.(check int) "shard 0 row" 0 r0.Sh.Batch.fr_shard;
      Alcotest.(check int) "shard 0 slice applied in full" 2
        r0.Sh.Batch.fr_applied;
      Alcotest.(check bool) "shard 0 clean" true (r0.Sh.Batch.fr_error = None);
      Alcotest.(check int) "shard 1 row" 1 r1.Sh.Batch.fr_shard;
      Alcotest.(check int) "shard 1 slice size" 6 r1.Sh.Batch.fr_ops;
      Alcotest.(check int) "exactly the pre-fault prefix applied" 2
        r1.Sh.Batch.fr_applied;
      (match r1.Sh.Batch.fr_error with
      | Some (E.Degraded _) -> ()
      | Some e -> Alcotest.failf "expected Degraded, got %s" (E.to_string e)
      | None -> Alcotest.fail "shard 1 reported no error")
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  (* the applied prefix is visible, the rejected tail is not *)
  Alcotest.(check (option int64)) "applied prefix visible" (Some 101L)
    (Sh.get t (key_for t 1 1));
  Alcotest.(check bool) "rejected tail not applied" false
    (Sh.mem t (key_for t 1 4));
  (* worker is alive but its durability layer is degraded, and it stays
     degraded until healed *)
  let h1 = shard_health t 1 in
  Alcotest.(check bool) "worker alive" true h1.Sh.hs_alive;
  Alcotest.(check bool) "shard degraded" true (h1.Sh.hs_degraded <> None);
  (match Sh.put_result t (key_for t 1 9) 1L with
  | Error (E.Degraded _) -> ()
  | Ok () -> Alcotest.fail "degraded shard accepted a write"
  | Error e -> Alcotest.failf "expected Degraded, got %s" (E.to_string e));
  Io.disarm ios.(1);
  ok "heal" (Sh.heal t);
  Alcotest.(check bool) "healed" true
    ((shard_health t 1).Sh.hs_degraded = None);
  ok "write after heal" (Sh.put_result t (key_for t 1 9) 9L);
  ok "close" (Sh.close t);
  wipe_tree dir

(* --- full mailbox past the deadline: Overloaded ----------------------- *)

let test_overloaded () =
  let t = Sh.create ~config:cfg ~shards:1 ~mailbox:1 ~enqueue_timeout_ms:100 () in
  ok "warm-up put" (Sh.put_result t (key_for t 0 0) 1L);
  (* park the worker at a quiesce barrier, fill the 1-slot mailbox from a
     second thread, then watch a third enqueue bounce off the deadline *)
  let release = Atomic.make false in
  let parker =
    Thread.create
      (fun () ->
        Sh.with_quiesced t (fun _ ->
            while not (Atomic.get release) do
              Thread.yield ();
              Unix.sleepf 0.002
            done))
      ()
  in
  Unix.sleepf 0.15;
  let filler_result = ref (Error E.Empty_key) in
  let filler =
    Thread.create (fun () -> filler_result := Sh.put_result t (key_for t 0 1) 2L) ()
  in
  Unix.sleepf 0.15;
  (match Sh.put_result t (key_for t 0 2) 3L with
  | Error (E.Overloaded _) -> ()
  | Ok () -> Alcotest.fail "enqueue past the deadline succeeded"
  | Error e -> Alcotest.failf "expected Overloaded, got %s" (E.to_string e));
  Atomic.set release true;
  Thread.join parker;
  Thread.join filler;
  (match !filler_result with
  | Ok () -> ()
  | Error e -> Alcotest.failf "queued put failed: %s" (E.to_string e));
  ok "put after release" (Sh.put_result t (key_for t 0 2) 3L);
  ok "close" (Sh.close t)

(* --- liveness: every blocking op completes under kills + disk faults -- *)

let tolerable = function
  | E.Degraded _ | E.Shard_down _ | E.Overloaded _ -> true
  | _ -> false

let liveness_prop seed =
  let dir = fresh_dir () in
  let shards = 2 in
  let ios =
    Array.init shards (fun _ -> Io.make ~max_retries:1 ~backoff_s:1e-6 ())
  in
  let plan_for i =
    Fault.seeded
      ~seed:(Int64.of_int ((seed * 31) + i))
      ~per_mille:30
      ~sites:[ Fault.Io_write_eio; Fault.Io_fsync ]
  in
  let t =
    match
      Sh.open_durable ~config:cfg ~shards ~sync_every_ops:4 ~mailbox:8
        ~enqueue_timeout_ms:2000
        ~io_for_shard:(fun i -> ios.(i))
        dir
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "open: %s" (E.to_string e)
  in
  Array.iteri (fun i io -> Io.set_plan io (plan_for i)) ios;
  let n_clients = 2 and ops_per_client = 120 in
  let finished = Array.init n_clients (fun _ -> Atomic.make false) in
  let problems = ref [] in
  let pmutex = Mutex.create () in
  let problem fmt =
    Printf.ksprintf
      (fun msg ->
        Mutex.lock pmutex;
        problems := msg :: !problems;
        Mutex.unlock pmutex)
      fmt
  in
  let note_result what = function
    | Ok _ -> ()
    | Error e when tolerable e -> ()
    | Error e -> problem "%s: intolerable error %s" what (E.to_string e)
  in
  let client c =
    let rng = Random.State.make [| seed; c; 0xbeef |] in
    let any_key () =
      Printf.sprintf "%c-%d" (Char.chr (1 + Random.State.int rng 255))
        (Random.State.int rng 64)
    in
    let batch = Sh.Batch.create t in
    (try
       for _ = 1 to ops_per_client do
         match Random.State.int rng 100 with
         | d when d < 35 ->
             note_result "put" (Sh.put_result t (any_key ()) 1L)
         | d when d < 45 -> note_result "add" (Sh.add_result t (any_key ()))
         | d when d < 55 ->
             note_result "delete" (Sh.delete_result t (any_key ()))
         | d when d < 75 -> ignore (Sh.get t (any_key ()))
         | d when d < 85 -> ignore (Sh.mem t (any_key ()))
         | _ ->
             for _ = 1 to 4 do
               Sh.Batch.put batch (any_key ()) 2L
             done;
             List.iter
               (fun r ->
                 if r.Sh.Batch.fr_applied > r.Sh.Batch.fr_ops then
                   problem "flush: applied %d > ops %d" r.Sh.Batch.fr_applied
                     r.Sh.Batch.fr_ops;
                 match r.Sh.Batch.fr_error with
                 | None ->
                     if r.Sh.Batch.fr_applied <> r.Sh.Batch.fr_ops then
                       problem "flush: clean row applied %d of %d"
                         r.Sh.Batch.fr_applied r.Sh.Batch.fr_ops
                 | Some e when tolerable e -> ()
                 | Some e ->
                     problem "flush: intolerable error %s" (E.to_string e))
               (Sh.Batch.flush_report batch)
       done
     with exn -> problem "client %d raised %s" c (Printexc.to_string exn));
    Atomic.set finished.(c) true
  in
  let threads = List.init n_clients (fun c -> Thread.create client c) in
  let crng = Random.State.make [| seed; 0xdead |] in
  let all_done () =
    Array.for_all (fun f -> Atomic.get f) finished
  in
  let deadline = Unix.gettimeofday () +. 60.0 in
  let live = ref true in
  while (not (all_done ())) && !live do
    if Unix.gettimeofday () > deadline then begin
      problem "liveness violated: clients still blocked after 60s";
      live := false
    end
    else begin
      Unix.sleepf 0.01;
      (* random worker kills *)
      if Random.State.int crng 4 = 0 then
        ignore
          (Sh.poison t
             ~shard:(Random.State.int crng shards)
             ~reason:"liveness chaos kill");
      (* restart the dead, heal the degraded — faults disarmed around
         both so recovery itself cannot be re-wounded mid-repair *)
      List.iter
        (fun h ->
          if not h.Sh.hs_alive then begin
            Io.disarm ios.(h.Sh.hs_shard);
            (match Sh.restart_shard t h.Sh.hs_shard with
            | Ok _ -> ()
            | Error _ -> () (* racing another repair; retried next tick *));
            Io.set_plan ios.(h.Sh.hs_shard) (plan_for h.Sh.hs_shard)
          end)
        (Sh.health t);
      if List.exists (fun h -> h.Sh.hs_degraded <> None) (Sh.health t) then begin
        Array.iter Io.disarm ios;
        (match Sh.heal t with Ok () -> () | Error _ -> ());
        Array.iteri (fun i io -> Io.set_plan io (plan_for i)) ios
      end
    end
  done;
  if !live then List.iter Thread.join threads;
  Array.iter Io.disarm ios;
  ignore (Sh.close t);
  if !live then wipe_tree dir;
  match !problems with
  | [] -> true
  | ps ->
      Printf.eprintf "seed %d problems:\n%s\n%!" seed (String.concat "\n" ps);
      false

let prop_liveness =
  QCheck.Test.make
    ~name:"blocking ops always complete under kills and disk faults"
    ~count:6
    QCheck.(int_range 1 10_000)
    liveness_prop

let () =
  Alcotest.run "supervision"
    [
      ( "workers",
        [
          Alcotest.test_case "poison -> typed errors, restart in place" `Quick
            test_poison_and_restart;
          Alcotest.test_case "disk fault mid-batch: exact prefix + heal"
            `Quick test_partial_batch_and_heal;
          Alcotest.test_case "mailbox deadline -> Overloaded" `Quick
            test_overloaded;
        ] );
      ("liveness", [ QCheck_alcotest.to_alcotest ~long:true prop_liveness ]);
    ]
