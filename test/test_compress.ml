(* Order-preserving key compression: encoder properties, dictionary
   serialization, snapshot/persist round trips, shard transparency. *)

let qcheck = QCheck_alcotest.to_alcotest

(* A trained dictionary over n-gram-shaped keys (the corpus the encoder
   is meant for) plus arbitrary binary junk so every byte value has been
   exercised at least via smoothing. *)
let trained =
  let ks = Workload.Keystream.create ~n:2000 () in
  Compress.train (Array.to_seq (Workload.Keystream.keys ks))

let enc = Compress.Dict trained

let arb_key =
  QCheck.(string_gen_of_size (Gen.int_bound 64) Gen.char)

let prop_round_trip =
  QCheck.Test.make ~count:1000 ~name:"encode/decode round trip (arbitrary bytes)"
    arb_key (fun k ->
      match Compress.decode enc (Compress.encode enc k) with
      | Ok k' -> k' = k
      | Error _ -> false)

let prop_order =
  QCheck.Test.make ~count:1000 ~name:"order preservation vs String.compare"
    QCheck.(pair arb_key arb_key)
    (fun (a, b) ->
      let sign n = compare n 0 in
      sign (String.compare (Compress.encode enc a) (Compress.encode enc b))
      = sign (String.compare a b))

let prop_first_byte =
  QCheck.Test.make ~count:1000 ~name:"first_byte agrees with encode"
    arb_key (fun k ->
      Compress.first_byte enc k = Char.code (Compress.encode enc k).[0])

let prop_encoded_length =
  QCheck.Test.make ~count:500 ~name:"encoded_length agrees with encode"
    arb_key (fun k ->
      Compress.encoded_length enc k = String.length (Compress.encode enc k))

let test_dict_serialization () =
  let blob = Compress.dict_to_string trained in
  Alcotest.(check int) "blob size" 258 (String.length blob);
  match Compress.dict_of_string blob with
  | Error why -> Alcotest.failf "dict_of_string: %s" why
  | Ok d ->
      Alcotest.(check bool) "same encoder" true
        (Compress.equal enc (Compress.Dict d));
      Alcotest.(check string) "stable blob" blob (Compress.dict_to_string d);
      let k = "some key\tbytes \x00\xff" in
      Alcotest.(check string) "same encoding"
        (Compress.encode enc k)
        (Compress.encode (Compress.Dict d) k)

let test_dict_rejects_garbage () =
  let reject what s =
    match Compress.dict_of_string s with
    | Ok _ -> Alcotest.failf "accepted %s" what
    | Error _ -> ()
  in
  reject "empty" "";
  reject "short" (String.make 10 '\x05');
  reject "bad scheme" ("\x02" ^ String.make 257 '\x08');
  reject "zero length" ("\x01" ^ String.make 257 '\x00');
  reject "non-Kraft lengths" ("\x01" ^ String.make 257 '\x01')

let test_compresses_corpus () =
  let ks = Workload.Keystream.create ~n:1000 () in
  let raw = ref 0 and encd = ref 0 in
  Array.iter
    (fun k ->
      raw := !raw + String.length k;
      encd := !encd + String.length (Compress.encode enc k))
    (Workload.Keystream.keys ks);
  Alcotest.(check bool)
    (Printf.sprintf "n-gram keys shrink (raw %d, encoded %d)" !raw !encd)
    true
    (float_of_int !encd < 0.8 *. float_of_int !raw)

let test_empty_and_prefix () =
  (* "" encodes to the bare terminator and still sorts below everything *)
  let e = Compress.encode enc "" in
  Alcotest.(check bool) "nonempty" true (String.length e >= 1);
  Alcotest.(check (result string string)) "round trip" (Ok "")
    (Compress.decode enc e);
  let a = Compress.encode enc "abc" and ab = Compress.encode enc "abcd" in
  Alcotest.(check bool) "prefix sorts first" true (String.compare a ab < 0)

let test_decode_rejects () =
  let e = Compress.encode enc "hello world" in
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  (match Compress.decode enc (e ^ String.make 4 '\x00') with
  | Ok _ -> Alcotest.fail "accepted trailing bytes"
  | Error _ -> ());
  (* flipping a bit either still decodes (to a different key) or errors,
     but must never return the original *)
  match Compress.decode enc (flip e 0) with
  | Ok k -> Alcotest.(check bool) "different key" true (k <> "hello world")
  | Error _ -> ()

let test_of_id () =
  (match Compress.of_id 0 with
  | Ok Compress.Identity -> ()
  | _ -> Alcotest.fail "of_id 0");
  (match Compress.of_id ~dict:trained 1 with
  | Ok (Compress.Dict _) -> ()
  | _ -> Alcotest.fail "of_id 1");
  (match Compress.of_id 1 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_id 1 without dict must fail");
  match Compress.of_id 7 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "of_id 7 must fail"

let test_reservoir () =
  let seq = Seq.init 10_000 (fun i -> Printf.sprintf "key-%05d" i) in
  let a = Workload.Keystream.reservoir ~k:256 seq in
  let b = Workload.Keystream.reservoir ~k:256 seq in
  Alcotest.(check int) "size" 256 (Array.length a);
  Alcotest.(check bool) "deterministic" true (a = b);
  let c = Workload.Keystream.reservoir ~seed:7L ~k:256 seq in
  Alcotest.(check bool) "seed-dependent" true (a <> c);
  let small = Workload.Keystream.reservoir ~k:64 (Seq.init 10 string_of_int) in
  Alcotest.(check int) "short stream keeps everything" 10 (Array.length small)

(* ---- persistence integration ---------------------------------------- *)

module E = Hyperion.Hyperion_error

let cfg_dict =
  { Hyperion.Config.strings with chunks_per_bin = 64; compress = 1 }

let cfg_id = { cfg_dict with compress = 0 }

let fresh_file () = Filename.temp_file "hyperion_compress_test" ".hyp"

let fresh_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hyperion-compress-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir d 0o755;
  d

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let sample_keys n =
  Array.init n (fun i -> Printf.sprintf "compress/key-%04d" i)

let ok what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what (E.to_string e)

(* A dict-encoded store round-trips through a v2 snapshot: the dictionary
   travels inside the file, and the reopened pair decodes every key. *)
let test_snapshot_dict_roundtrip () =
  let store = Hyperion.Store.create ~config:cfg_dict () in
  let keys = sample_keys 500 in
  Array.iteri
    (fun i k ->
      Hyperion.Store.put store (Compress.encode enc k) (Int64.of_int i))
    keys;
  let path = fresh_file () in
  ignore (ok "save" (Persist.save_snapshot ~compress:enc store path));
  let store2, enc2 = ok "load" (Persist.load_snapshot ~config:cfg_dict path) in
  Alcotest.(check bool) "encoder travels in the file" true
    (Compress.equal enc enc2);
  Alcotest.(check int) "length" (Array.length keys)
    (Hyperion.Store.length store2);
  Array.iteri
    (fun i k ->
      Alcotest.(check (option int64))
        k
        (Some (Int64.of_int i))
        (Hyperion.Store.get store2 (Compress.encode enc2 k)))
    keys;
  (* stored keys decode back to the raw ones, in order *)
  let decoded = ref [] in
  Hyperion.Store.iter store2 (fun ek _ ->
      match Compress.decode enc2 ek with
      | Ok k -> decoded := k :: !decoded
      | Error why -> Alcotest.failf "decode: %s" why);
  Alcotest.(check (list string)) "raw keys in order"
    (Array.to_list keys)
    (List.rev !decoded);
  Sys.remove path

(* A hand-built format-v1 file (no dictionary record, plain config
   fingerprint) still loads, as the identity encoder. *)
let test_snapshot_v1_backcompat () =
  let buf = Buffer.create 256 in
  let header =
    Persist.Frame.make_header ~magic:Persist.Snapshot.magic ~version:1 ~flags:0
      ~fingerprint:(Hyperion.Config.fingerprint cfg_id)
      ~aux:2L
  in
  Buffer.add_bytes buf header;
  List.iter
    (fun (k, v) ->
      let klen = String.length k in
      let p = Bytes.create (1 + klen + 8) in
      Bytes.set_uint8 p 0 1;
      Bytes.blit_string k 0 p 1 klen;
      Bytes.set_int64_le p (1 + klen) v;
      Buffer.add_bytes buf (Persist.Frame.frame (Bytes.to_string p)))
    [ ("alpha", 1L); ("beta", 2L) ];
  let path = fresh_file () in
  let oc = open_out_bin path in
  Buffer.output_buffer oc buf;
  close_out oc;
  let store, enc1 = ok "load v1" (Persist.load_snapshot ~config:cfg_id path) in
  Alcotest.(check bool) "v1 is identity" true
    (Compress.equal Compress.Identity enc1);
  Alcotest.(check (option int64)) "alpha" (Some 1L)
    (Hyperion.Store.get store "alpha");
  Alcotest.(check (option int64)) "beta" (Some 2L)
    (Hyperion.Store.get store "beta");
  Sys.remove path

(* Opening under the wrong encoder is a typed refusal, never garbled
   keys: scheme mismatch and dictionary mismatch both map to
   Version_mismatch. *)
let test_encoder_mismatch () =
  let store = Hyperion.Store.create ~config:cfg_dict () in
  Hyperion.Store.put store (Compress.encode enc "k") 1L;
  let path = fresh_file () in
  ignore (ok "save" (Persist.save_snapshot ~compress:enc store path));
  (* identity config against a dict snapshot *)
  (match Persist.load_snapshot ~config:cfg_id path with
  | Error (E.Version_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "identity config must not open a dict snapshot");
  (* same scheme, different dictionary bytes *)
  let other =
    Compress.Dict
      (Compress.train (Seq.init 400 (Printf.sprintf "ZZ-%d-unrelated")))
  in
  Alcotest.(check bool) "dictionaries differ" false (Compress.equal enc other);
  (match Persist.load_snapshot ~expect:other ~config:cfg_dict path with
  | Error (E.Version_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "mismatched dictionary must not load");
  (* and an identity store refuses a dict expectation the other way *)
  let id_store = Hyperion.Store.create ~config:cfg_id () in
  Hyperion.Store.put id_store "k" 1L;
  let path2 = fresh_file () in
  ignore (ok "save id" (Persist.save_snapshot id_store path2));
  (match Persist.load_snapshot ~config:cfg_dict path2 with
  | Error (E.Version_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "dict config must not open an identity snapshot");
  Sys.remove path;
  Sys.remove path2

(* The durability layer persists the dictionary and adopts it on reopen —
   including keys that only live in the WAL (logged post-encoding, so
   replay needs no retraining). *)
let test_persist_adopts_dict () =
  let dir = fresh_dir () in
  let p =
    ok "open fresh"
      (Persist.open_or_create ~config:cfg_dict ~compress:enc dir)
  in
  let keys = sample_keys 64 in
  Array.iteri
    (fun i k ->
      ok "put" (Persist.put p (Compress.encode enc k) (Int64.of_int i)))
    keys;
  ok "snapshot" (Persist.snapshot_now p);
  (* a few more keys that exist only in the WAL of the new generation *)
  ok "wal put" (Persist.put p (Compress.encode enc "wal/only-1") 1001L);
  ok "wal put" (Persist.put p (Compress.encode enc "wal/only-2") 1002L);
  ok "close" (Persist.close p);
  (* reopen with no explicit dictionary: the persisted one is adopted *)
  let p2 = ok "reopen" (Persist.open_or_create ~config:cfg_dict dir) in
  Alcotest.(check bool) "adopted the persisted dictionary" true
    (Compress.equal enc (Persist.compress p2));
  let store = Persist.store p2 in
  Array.iteri
    (fun i k ->
      Alcotest.(check (option int64))
        k
        (Some (Int64.of_int i))
        (Hyperion.Store.get store (Compress.encode enc k)))
    keys;
  Alcotest.(check (option int64)) "wal key replayed" (Some 1001L)
    (Hyperion.Store.get store (Compress.encode enc "wal/only-1"));
  Alcotest.(check (option int64)) "wal key replayed" (Some 1002L)
    (Hyperion.Store.get store (Compress.encode enc "wal/only-2"));
  (* a contradicting explicit dictionary is refused *)
  let other =
    Compress.Dict (Compress.train (Seq.init 300 (Printf.sprintf "no-%d")))
  in
  ok "close" (Persist.close p2);
  (match Persist.open_or_create ~config:cfg_dict ~compress:other dir with
  | Error (E.Version_mismatch _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok p3 ->
      ignore (Persist.close p3);
      Alcotest.fail "contradicting dictionary must not open");
  rm_rf dir

(* The sharded front door is transparent: raw keys in, raw keys out, with
   encoded bytes underneath and the dictionary adopted on reopen. *)
let test_shard_transparency () =
  let dir = fresh_dir () in
  let keys = sample_keys 300 in
  let t =
    ok "open"
      (Hyperion_shard.open_durable ~config:cfg_dict ~compress:enc ~shards:4
         dir)
  in
  Array.iteri
    (fun i k -> Hyperion_shard.put t k (Int64.of_int i))
    keys;
  Alcotest.(check (option int64)) "get raw key" (Some 7L)
    (Hyperion_shard.get t (keys.(7)));
  Alcotest.(check bool) "mem raw key" true (Hyperion_shard.mem t keys.(0));
  Alcotest.(check bool) "delete raw key" true (Hyperion_shard.delete t keys.(299));
  (* iter yields decoded keys, in global raw order *)
  let got = ref [] in
  Hyperion_shard.iter t (fun k _ -> got := k :: !got);
  Alcotest.(check (list string)) "iter decodes"
    (Array.to_list (Array.sub keys 0 299))
    (List.rev !got);
  (* below the boundary the stores hold encoded bytes *)
  Hyperion_shard.with_quiesced t (fun stores ->
      let raw_hits = ref 0 in
      Array.iter
        (fun s ->
          Array.iter
            (fun k -> if Hyperion.Store.mem s k then incr raw_hits)
            keys)
        stores;
      Alcotest.(check int) "raw keys are not stored verbatim" 0 !raw_hits);
  ok "close" (Hyperion_shard.close t);
  (* reopen with nothing: every shard adopts the same persisted dict *)
  let t2 = ok "reopen" (Hyperion_shard.open_durable ~config:cfg_dict ~shards:4 dir) in
  Alcotest.(check bool) "adopted" true
    (Compress.equal enc (Hyperion_shard.compress t2));
  Alcotest.(check (option int64)) "survives reopen" (Some 7L)
    (Hyperion_shard.get t2 (keys.(7)));
  ok "close" (Hyperion_shard.close t2);
  rm_rf dir

(* Differential chaos smoke with the encoder armed: store sees encoded
   keys, oracle raw ones, final sweep decodes — any asymmetry diverges. *)
let test_chaos_compress () =
  let chaos_enc =
    Compress.Dict (Compress.train (Seq.init 4096 Chaos.key_for))
  in
  match
    Chaos.run
      ~config:{ Hyperion.Config.default with compress = 1 }
      ~compress:chaos_enc ~seed:42L ~ops:5000 ()
  with
  | Ok o -> Alcotest.(check bool) "keys stored" true (o.Chaos.final_keys > 0)
  | Error msg -> Alcotest.fail msg

let () =
  Alcotest.run "compress"
    [
      ( "encoder",
        [
          qcheck prop_round_trip;
          qcheck prop_order;
          qcheck prop_first_byte;
          qcheck prop_encoded_length;
          Alcotest.test_case "corpus compression" `Quick test_compresses_corpus;
          Alcotest.test_case "empty + prefix keys" `Quick test_empty_and_prefix;
          Alcotest.test_case "decode rejects junk" `Quick test_decode_rejects;
          Alcotest.test_case "of_id" `Quick test_of_id;
        ] );
      ( "dictionary",
        [
          Alcotest.test_case "serialization round trip" `Quick
            test_dict_serialization;
          Alcotest.test_case "rejects garbage" `Quick test_dict_rejects_garbage;
        ] );
      ( "sampling",
        [ Alcotest.test_case "reservoir" `Quick test_reservoir ] );
      ( "persistence",
        [
          Alcotest.test_case "dict snapshot round trip" `Quick
            test_snapshot_dict_roundtrip;
          Alcotest.test_case "v1 back compat" `Quick test_snapshot_v1_backcompat;
          Alcotest.test_case "encoder mismatch is typed" `Quick
            test_encoder_mismatch;
          Alcotest.test_case "persist adopts the dictionary" `Quick
            test_persist_adopts_dict;
        ] );
      ( "integration",
        [
          Alcotest.test_case "shard transparency" `Quick test_shard_transparency;
          Alcotest.test_case "chaos with encoder" `Quick test_chaos_compress;
        ] );
    ]
