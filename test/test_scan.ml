(* Direct unit tests of the container scanner (Scan.find_t / find_s):
   jump-accelerated vs. plain linear agreement, the documented predecessor
   semantics after a jump (prev = -1, why deletions pass ~use_jumps:false),
   and the traversed/scanned counters that drive jump-table growth. *)

module T = Hyperion.Types
module L = Hyperion.Layout
module R = Hyperion.Records
module S = Hyperion.Scan

let cfg = { Hyperion.Config.default with chunks_per_bin = 64 }

let t_rec key =
  Hyperion.Encode.t_record ~prev_key:(-1) ~key:(Char.code key)
    ~typ:Hyperion.Node.Leaf_no_value ~value:None

(* A fresh container holding the given record content, opened as a cbox. *)
let open_fresh content =
  let trie = Hyperion.Ops.create cfg in
  let hp = Hyperion.Splice.new_container trie content in
  trie.T.root <- hp;
  Hyperion.Splice.open_container trie hp ~tkey:0 ~where:T.W_root

(* A container with records A, M, Z and a hand-written one-level container
   jump table whose single entry targets M.  The 28 zero bytes reserved in
   the content become the jump-table area once J is bumped to 1. *)
let open_with_jump_table () =
  let pad = String.make (7 * L.jt_entry_size) '\000' in
  let cbox = open_fresh (pad ^ t_rec 'A' ^ t_rec 'M' ^ t_rec 'Z') in
  L.set_jump_levels cbox.T.buf cbox.T.base 1;
  let m_off = L.header_size + (7 * L.jt_entry_size) + 2 in
  L.jt_write cbox.T.buf cbox.T.base 0 ~key:(Char.code 'M') ~off:m_off;
  Alcotest.(check int) "one jump level" 7 (L.jt_count cbox.T.buf cbox.T.base);
  (cbox, T.top_region cbox.T.buf cbox.T.base)

let find_key cbox region ~use_jumps k =
  S.find_t ~use_jumps cbox region (Char.code k) ~traversed:(ref 0)

let test_jump_hit_prev_unknown () =
  let cbox, region = open_with_jump_table () in
  (match find_key cbox region ~use_jumps:true 'M' with
  | S.T_found (t, prev) ->
      Alcotest.(check int) "key" (Char.code 'M') t.R.t_key;
      (* the jump target's own predecessor is unknown: reported as -1 *)
      Alcotest.(check int) "prev unknown after jump" (-1) prev
  | S.T_insert _ -> Alcotest.fail "M not found via jump");
  (* the delete path passes ~use_jumps:false precisely to get the real
     predecessor back *)
  match find_key cbox region ~use_jumps:false 'M' with
  | S.T_found (t, prev) ->
      Alcotest.(check int) "key" (Char.code 'M') t.R.t_key;
      Alcotest.(check int) "exact predecessor" (Char.code 'A') prev
  | S.T_insert _ -> Alcotest.fail "M not found linearly"

let test_jump_then_walk_prev_known () =
  let cbox, region = open_with_jump_table () in
  match find_key cbox region ~use_jumps:true 'Z' with
  | S.T_found (t, prev) ->
      Alcotest.(check int) "key" (Char.code 'Z') t.R.t_key;
      (* records walked past after the jump have a known predecessor *)
      Alcotest.(check int) "prev is the jump target" (Char.code 'M') prev
  | S.T_insert _ -> Alcotest.fail "Z not found"

let test_traversed_growth () =
  let cbox, region = open_with_jump_table () in
  let linear = ref 0 and jumped = ref 0 in
  ignore (S.find_t ~use_jumps:false cbox region (Char.code 'Z') ~traversed:linear);
  ignore (S.find_t ~use_jumps:true cbox region (Char.code 'Z') ~traversed:jumped);
  Alcotest.(check int) "linear scan parses A, M, Z" 3 !linear;
  Alcotest.(check int) "jump scan parses M, Z" 2 !jumped;
  (* the counter accumulates across calls — Ops feeds the same ref through
     a whole operation to decide when the container jump table must grow *)
  ignore (S.find_t ~use_jumps:false cbox region (Char.code 'A') ~traversed:linear);
  Alcotest.(check int) "accumulates" 4 !linear

let test_insert_positions_agree () =
  let cbox, region = open_with_jump_table () in
  (* 'Q' is between M and Z: with jumps the scan starts at M, without it at
     A; the insertion point must come out identical *)
  let at_of = function
    | S.T_insert { t_at; _ } -> t_at
    | S.T_found _ -> Alcotest.fail "Q unexpectedly present"
  in
  let a1 = at_of (find_key cbox region ~use_jumps:true 'Q') in
  let a2 = at_of (find_key cbox region ~use_jumps:false 'Q') in
  Alcotest.(check int) "same insertion position" a2 a1;
  (* past the end *)
  let e1 = at_of (find_key cbox region ~use_jumps:true '~') in
  Alcotest.(check int) "append position is the region end" region.T.re e1

(* --- find_s over hand-built S-children ------------------------------- *)

let s_rec prev key =
  Hyperion.Encode.s_record ~prev_key:prev ~key:(Char.code key)
    ~typ:Hyperion.Node.Leaf_no_value ~value:None ~child:Hyperion.Node.No_child

let open_with_children () =
  (* T 'a' (inner) with S children p, q, v; then terminal T 'b' *)
  let t_a =
    Hyperion.Encode.t_record ~prev_key:(-1) ~key:(Char.code 'a')
      ~typ:Hyperion.Node.Inner ~value:None
  in
  let cbox =
    open_fresh (t_a ^ s_rec (-1) 'p' ^ s_rec (-1) 'q' ^ s_rec (-1) 'v' ^ t_rec 'b')
  in
  let region = T.top_region cbox.T.buf cbox.T.base in
  match S.find_t ~use_jumps:false cbox region (Char.code 'a') ~traversed:(ref 0) with
  | S.T_found (t, _) -> (cbox, region, t)
  | S.T_insert _ -> Alcotest.fail "T 'a' missing"

let test_find_s_found_and_prev () =
  let cbox, region, t = open_with_children () in
  (match S.find_s cbox region t (Char.code 'q') with
  | S.S_found (s, prev) ->
      Alcotest.(check int) "key" (Char.code 'q') s.R.s_key;
      Alcotest.(check int) "prev sibling" (Char.code 'p') prev
  | S.S_insert _ -> Alcotest.fail "q not found");
  match S.find_s cbox region t (Char.code 'p') with
  | S.S_found (_, prev) -> Alcotest.(check int) "first child has no prev" (-1) prev
  | S.S_insert _ -> Alcotest.fail "p not found"

let test_find_s_insert_and_scanned () =
  let cbox, region, t = open_with_children () in
  (* 's' falls between children q and v *)
  (match S.find_s cbox region t (Char.code 's') with
  | S.S_insert { s_at; s_prev_key; s_succ } ->
      Alcotest.(check int) "prev" (Char.code 'q') s_prev_key;
      (match s_succ with
      | Some s -> Alcotest.(check int) "succ is v" (Char.code 'v') s.R.s_key
      | None -> Alcotest.fail "expected a successor");
      Alcotest.(check int) "insert before v"
        (S.t_children_end cbox region t - 2)
        s_at
  | S.S_found _ -> Alcotest.fail "phantom child");
  (* scanned counts examined S-records: p, q, r then the region end *)
  let scanned = ref 0 in
  ignore (S.find_s ~scanned cbox region t (Char.code 'z'));
  Alcotest.(check bool) "scanned all three children" true (!scanned >= 3)

(* --- jump vs. linear agreement on a real, organically grown trie ----- *)

let grown_cfg =
  {
    Hyperion.Config.default with
    chunks_per_bin = 64;
    container_jt_threshold = 2;
    tnode_jt_threshold = 4;
    js_threshold = 2;
  }

let test_agreement_on_grown_trie () =
  let trie = Hyperion.Ops.create grown_cfg in
  let keys = ref [] in
  for a = 0 to 29 do
    for b = 0 to 5 do
      let key =
        Printf.sprintf "%c%c" (Char.chr (40 + (a * 7))) (Char.chr (50 + (b * 9)))
      in
      keys := key :: !keys;
      ignore (Hyperion.Ops.put trie key (Some (Int64.of_int ((a * 8) + b))))
    done
  done;
  (* scans grow the container and T-node jump tables *)
  for _pass = 0 to 3 do
    List.iter (fun k -> ignore (Hyperion.Ops.find trie k)) !keys
  done;
  Alcotest.(check bool) "single unsplit container" false
    (Hyperion.Memman.is_chained trie.T.mm trie.T.root);
  let cbox =
    Hyperion.Splice.open_container trie trie.T.root ~tkey:0 ~where:T.W_root
  in
  let region = T.top_region cbox.T.buf cbox.T.base in
  Alcotest.(check bool) "container jump table grew" true
    (L.jt_count cbox.T.buf cbox.T.base > 0);
  let jt_tnodes = ref 0 in
  for k0 = 0 to 255 do
    let r1 = S.find_t ~use_jumps:true cbox region k0 ~traversed:(ref 0) in
    let r2 = S.find_t ~use_jumps:false cbox region k0 ~traversed:(ref 0) in
    match (r1, r2) with
    | S.T_found (t1, _), S.T_found (t2, _) ->
        Alcotest.(check int)
          (Printf.sprintf "t=%d found at same position" k0)
          t2.R.t_pos t1.R.t_pos;
        if t1.R.t_jt_pos >= 0 then incr jt_tnodes;
        for k1 = 0 to 255 do
          let s1 = S.find_s ~use_jumps:true cbox region t1 k1 in
          let s2 = S.find_s ~use_jumps:false cbox region t2 k1 in
          match (s1, s2) with
          | S.S_found (a, _), S.S_found (b, _) ->
              Alcotest.(check int)
                (Printf.sprintf "s=%d/%d same position" k0 k1)
                b.R.s_pos a.R.s_pos
          | S.S_insert { s_at = a; _ }, S.S_insert { s_at = b; _ } ->
              Alcotest.(check int)
                (Printf.sprintf "s=%d/%d same insert point" k0 k1)
                b a
          | _ ->
              Alcotest.fail
                (Printf.sprintf "s=%d/%d found/insert disagreement" k0 k1)
        done
    | S.T_insert { t_at = a; _ }, S.T_insert { t_at = b; _ } ->
        Alcotest.(check int) (Printf.sprintf "t=%d same insert point" k0) b a
    | _ -> Alcotest.fail (Printf.sprintf "t=%d found/insert disagreement" k0)
  done;
  Alcotest.(check bool) "some T-node jump tables exercised" true (!jt_tnodes > 0)

let () =
  Alcotest.run "scan"
    [
      ( "find_t",
        [
          Alcotest.test_case "jump hit reports prev -1" `Quick
            test_jump_hit_prev_unknown;
          Alcotest.test_case "post-jump walk knows prev" `Quick
            test_jump_then_walk_prev_known;
          Alcotest.test_case "traversed counter" `Quick test_traversed_growth;
          Alcotest.test_case "insert positions agree" `Quick
            test_insert_positions_agree;
        ] );
      ( "find_s",
        [
          Alcotest.test_case "found + predecessor" `Quick
            test_find_s_found_and_prev;
          Alcotest.test_case "insert point + scanned" `Quick
            test_find_s_insert_and_scanned;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "jump vs linear on grown trie" `Quick
            test_agreement_on_grown_trie;
        ] );
    ]
