external now_ns : unit -> int = "hyperion_clock_monotonic_ns" [@@noalloc]
external prefetch : Bytes.t -> int -> unit = "hyperion_prefetch" [@@noalloc]

(* --- toggle ----------------------------------------------------------- *)

let enabled_flag =
  ref
    (match Sys.getenv_opt "HYPERION_TELEMETRY" with
    | Some ("1" | "true") -> true
    | _ -> false)

let enabled () = !enabled_flag
let set_enabled b = enabled_flag := b

(* --- bucket scheme ---------------------------------------------------- *)

module Hist = struct
  (* Values 0..15 are exact buckets; above that, each power of two [2^m,
     2^m+1) is cut into [sub = 16] equal sub-buckets (4 mantissa bits).
     For bucket [(16+s) * 2^k .. (16+s+1) * 2^k) the midpoint is within
     [width/2 / lower <= 2^k / (2 * 16 * 2^k) = 1/32] of any member. *)
  let sub_bits = 4
  let sub = 1 lsl sub_bits
  let n_buckets = sub + ((63 - sub_bits) * sub)
  let max_rel_error = 1.0 /. 32.0

  (* cells [0 .. n_buckets-1] are counts; [n_buckets] total count;
     [n_buckets+1] sum of raw values *)
  let cells = n_buckets + 2

  type t = int array

  let bucket_of v =
    if v <= 0 then 0
    else if v < sub then v
    else begin
      (* branch-free-ish MSB position, no allocation *)
      let s5 = if v >= 1 lsl 32 then 32 else 0 in
      let v1 = v lsr s5 in
      let s4 = if v1 >= 1 lsl 16 then 16 else 0 in
      let v2 = v1 lsr s4 in
      let s3 = if v2 >= 1 lsl 8 then 8 else 0 in
      let v3 = v2 lsr s3 in
      let s2 = if v3 >= 1 lsl 4 then 4 else 0 in
      let v4 = v3 lsr s2 in
      let s1 = if v4 >= 4 then 2 else 0 in
      let v5 = v4 lsr s1 in
      let s0 = if v5 >= 2 then 1 else 0 in
      let msb = s5 + s4 + s3 + s2 + s1 + s0 in
      let shift = msb - sub_bits in
      let sub_idx = (v lsr shift) land (sub - 1) in
      (((msb - sub_bits) + 1) * sub) + sub_idx
    end

  let representative idx =
    if idx < sub then float_of_int idx
    else begin
      let k = (idx / sub) - 1 in
      let lower = (sub + (idx mod sub)) lsl k in
      if k = 0 then float_of_int lower
      else float_of_int lower +. float_of_int (1 lsl (k - 1))
    end

  let create () = Array.make cells 0

  let observe (t : t) v =
    let v = if v < 0 then 0 else v in
    let b = bucket_of v in
    (* SAFETY: indices are in range by construction.  [bucket_of] returns
       either [v <= 15] or [((msb - 4) + 1) * 16 + sub_idx] with
       [msb <= 61] (OCaml ints) and [sub_idx <= 15], so [b <= 943 <
       n_buckets = 960]; and every histogram is allocated by [create] with
       [cells = n_buckets + 2], covering the two summary cells below. *)
    Array.unsafe_set t b (Array.unsafe_get t b + 1);
    Array.unsafe_set t n_buckets (Array.unsafe_get t n_buckets + 1);
    Array.unsafe_set t (n_buckets + 1) (Array.unsafe_get t (n_buckets + 1) + v)

  let count (t : t) = t.(n_buckets)
  let sum (t : t) = t.(n_buckets + 1)

  let quantile (t : t) q =
    let total = count t in
    if total = 0 then 0.0
    else begin
      let q = if q <= 0.0 then epsilon_float else if q > 1.0 then 1.0 else q in
      let rank = max 1 (int_of_float (ceil (q *. float_of_int total))) in
      let rank = min rank total in
      let rec go i acc =
        let acc = acc + t.(i) in
        if acc >= rank then representative i else go (i + 1) acc
      in
      go 0 0
    end

  let mean (t : t) =
    let n = count t in
    if n = 0 then 0.0 else float_of_int (sum t) /. float_of_int n

  let merge_into ~dst (src : t) =
    for i = 0 to cells - 1 do
      dst.(i) <- dst.(i) + src.(i)
    done

  let buckets (t : t) = Array.sub t 0 n_buckets
end

(* --- registry and per-domain cores ------------------------------------ *)

type kind = Kcounter | Kgauge_sum | Kgauge_max | Khist

type def = {
  kind : kind;
  family : string;
  labels : (string * string) list;
  help : string;
  slot : int;  (* scalar slot for counters/gauges, hist slot for Khist *)
}

type core = {
  mutable scalars : int array;
  mutable hists : Hist.t array;  (* [||] per slot until first observation *)
  mutable path_flags : int;
}

let registry_lock = Mutex.create ()
let defs : def list ref = ref []  (* newest first *)
let scalar_slots = ref 0
let hist_slots = ref 0
let cores : core list ref = ref []

let with_registry f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f
[@@lock_wrapper "Telemetry.registry_lock"]

let new_core () =
  let c =
    {
      scalars = Array.make (max 8 !scalar_slots) 0;
      hists = Array.make (max 8 !hist_slots) [||];
      path_flags = 0;
    }
  in
  with_registry (fun () -> cores := c :: !cores);
  c

let core_key = Domain.DLS.new_key new_core
let core () = Domain.DLS.get core_key

let register kind ?(help = "") ?(labels = []) family =
  with_registry (fun () ->
      let same d = d.kind = kind && d.family = family && d.labels = labels in
      match List.find_opt same !defs with
      | Some d -> d
      | None ->
          let slot =
            match kind with
            | Khist ->
                let s = !hist_slots in
                incr hist_slots;
                s
            | Kcounter | Kgauge_sum | Kgauge_max ->
                let s = !scalar_slots in
                incr scalar_slots;
                s
          in
          let d = { kind; family; labels; help; slot } in
          defs := d :: !defs;
          d)

(* Hot-path accessors: only the owning domain ever writes its core, so
   growth (replacing the array) is single-writer; a concurrent snapshot
   reader at worst misses the newest slots for one scrape. *)

let scalar_cell c slot =
  if slot >= Array.length c.scalars then begin
    let n = Array.make (max (slot + 8) (2 * Array.length c.scalars)) 0 in
    Array.blit c.scalars 0 n 0 (Array.length c.scalars);
    c.scalars <- n
  end;
  c.scalars

let hist_cell c slot =
  if slot >= Array.length c.hists then begin
    let n = Array.make (max (slot + 8) (2 * Array.length c.hists)) [||] in
    Array.blit c.hists 0 n 0 (Array.length c.hists);
    c.hists <- n
  end;
  if Array.length c.hists.(slot) = 0 then c.hists.(slot) <- Hist.create ();
  c.hists.(slot)

let merged_scalar kind slot =
  with_registry (fun () ->
      List.fold_left
        (fun acc c ->
          if slot >= Array.length c.scalars then acc
          else
            match kind with
            | Kgauge_max -> max acc c.scalars.(slot)
            | _ -> acc + c.scalars.(slot))
        0 !cores)

let merged_hist slot =
  let out = Hist.create () in
  with_registry (fun () ->
      List.iter
        (fun c ->
          if slot < Array.length c.hists && Array.length c.hists.(slot) > 0
          then Hist.merge_into ~dst:out c.hists.(slot))
        !cores);
  out

let reset () =
  with_registry (fun () ->
      List.iter
        (fun c ->
          Array.fill c.scalars 0 (Array.length c.scalars) 0;
          Array.iter
            (fun h -> if Array.length h > 0 then Array.fill h 0 (Array.length h) 0)
            c.hists;
          c.path_flags <- 0)
        !cores)

(* --- metric front-ends ------------------------------------------------ *)

module Counter = struct
  type t = def

  let make ?help ?labels family = register Kcounter ?help ?labels family

  let add t n =
    let c = core () in
    let a = scalar_cell c t.slot in
    a.(t.slot) <- a.(t.slot) + n

  let incr t = add t 1
  let value t = merged_scalar Kcounter t.slot
end

module Gauge = struct
  type t = def

  let make ?help ?labels ?(merge = `Sum) family =
    let kind = match merge with `Sum -> Kgauge_sum | `Max -> Kgauge_max in
    register kind ?help ?labels family

  let set t v =
    let c = core () in
    let a = scalar_cell c t.slot in
    a.(t.slot) <- (if t.kind = Kgauge_max then max a.(t.slot) v else v)

  let value t = merged_scalar t.kind t.slot
end

module Histogram = struct
  type t = def

  let make ?help ?labels family = register Khist ?help ?labels family

  let observe_ns t v =
    let c = core () in
    let h = hist_cell c t.slot in
    Hist.observe h v

  let snapshot t = merged_hist t.slot
  let count t = Hist.count (snapshot t)
  let sum_ns t = Hist.sum (snapshot t)
  let quantile_ns t q = Hist.quantile (snapshot t) q

  let find ?(labels = []) family =
    with_registry (fun () ->
        List.find_opt
          (fun d -> d.kind = Khist && d.family = family && d.labels = labels)
          !defs)
end

(* --- operation path flags --------------------------------------------- *)

module Path = struct
  let embedded_eject = 1
  let container_split = 2
  let jt_hit = 4
  let jt_miss = 8
  let wal_rotation = 16
  let wal_fsync = 32

  let all =
    [
      (embedded_eject, "embedded_eject");
      (container_split, "container_split");
      (jt_hit, "jt_hit");
      (jt_miss, "jt_miss");
      (wal_rotation, "wal_rotation");
      (wal_fsync, "wal_fsync");
    ]

  let names flags =
    List.filter_map
      (fun (bit, name) -> if flags land bit <> 0 then Some name else None)
      all
end

let mark bit =
  if !enabled_flag then begin
    let c = core () in
    c.path_flags <- c.path_flags lor bit
  end

(* [mark bit] fused with [Counter.incr]: one enabled check and one
   per-domain core lookup for both writes.  For instrumentation inside the
   store's innermost scan loops, where the two separate calls' DLS lookups
   are measurable (each fires ~14x per put on a 300k-key store). *)
let mark_incr bit (t : Counter.t) =
  if !enabled_flag then begin
    let c = core () in
    c.path_flags <- c.path_flags lor bit;
    let a = c.scalars in
    if t.slot < Array.length a then
      (* SAFETY: in range — guarded by [t.slot < Array.length a] just
         above, and slots are non-negative registry indices; skipping the
         growth branch and the double bounds check is the point. *)
      Array.unsafe_set a t.slot (Array.unsafe_get a t.slot + 1)
    else begin
      let a = scalar_cell c t.slot in
      a.(t.slot) <- a.(t.slot) + 1
    end
  end

let clear_paths () =
  let c = core () in
  c.path_flags <- 0

let current_paths () = (core ()).path_flags

(* --- slow-op trace ring ----------------------------------------------- *)

module Trace = struct
  type span = {
    seq : int;
    kind : string;
    key_len : int;
    dur_ns : int;
    paths : int;
  }

  let lock = Mutex.create ()
  let ring = ref (Array.make 256 None)
  let next = ref 0  (* ring slot for the next span *)
  let total_ = ref 0
  let slow = ref 1_000_000

  let with_lock f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let set_capacity n =
    if n < 1 then invalid_arg "Telemetry.Trace.set_capacity";
    with_lock (fun () ->
        ring := Array.make n None;
        next := 0)

  let set_slow_ns n = slow := n
  let slow_ns () = !slow

  let clear () =
    with_lock (fun () ->
        Array.fill !ring 0 (Array.length !ring) None;
        next := 0;
        total_ := 0)

  let record ~kind ~key_len ~dur_ns =
    let paths = (core ()).path_flags in
    with_lock (fun () ->
        let r = !ring in
        r.(!next) <- Some { seq = !total_; kind; key_len; dur_ns; paths };
        next := (!next + 1) mod Array.length r;
        incr total_)

  let maybe_record ~kind ~key_len ~dur_ns =
    if !enabled_flag && dur_ns >= !slow then record ~kind ~key_len ~dur_ns

  let spans () =
    with_lock (fun () ->
        let r = !ring in
        let n = Array.length r in
        let acc = ref [] in
        (* walk backwards from the newest slot, collecting oldest-first *)
        for i = 0 to n - 1 do
          match r.((!next + i) mod n) with
          | Some s -> acc := s :: !acc
          | None -> ()
        done;
        List.sort (fun a b -> compare a.seq b.seq) !acc)

  let total () = with_lock (fun () -> !total_)

  let dump () =
    let b = Buffer.create 256 in
    let ss = spans () in
    Buffer.add_string b
      (Printf.sprintf "# trace ring: %d span(s) retained, %d recorded, slow >= %d ns\n"
         (List.length ss) (total ()) !slow);
    List.iter
      (fun s ->
        Buffer.add_string b
          (Printf.sprintf "# span seq=%d kind=%s key_len=%d dur_ns=%d paths=%s\n"
             s.seq s.kind s.key_len s.dur_ns
             (match Path.names s.paths with
             | [] -> "-"
             | ps -> String.concat "," ps)))
      ss;
    Buffer.contents b
end

(* --- fused per-op instrumentation shell ------------------------------- *)

(* The hot-path shell around every instrumented store operation, fused so
   each end costs one per-domain core lookup.  Callers guard on [enabled]
   themselves:

     if Telemetry.enabled () then begin
       let t0 = Telemetry.op_start () in
       ... the operation ...
       Telemetry.op_end m ~kind:"put" ~key_len t0
     end else ...                                                        *)

let op_start () =
  (core ()).path_flags <- 0;
  now_ns ()

let op_end (h : Histogram.t) ~kind ~key_len t0 =
  let d = now_ns () - t0 in
  let c = core () in
  Hist.observe (hist_cell c h.slot) d;
  if d >= !Trace.slow then Trace.record ~kind ~key_len ~dur_ns:d

(* --- Prometheus text exposition --------------------------------------- *)

let format_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
      ^ "}"

let dump () =
  let ds = with_registry (fun () -> List.rev !defs) in
  let b = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  let header d ty =
    if not (Hashtbl.mem typed d.family) then begin
      Hashtbl.add typed d.family ();
      if d.help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" d.family d.help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" d.family ty)
    end
  in
  List.iter
    (fun d ->
      match d.kind with
      | Kcounter ->
          header d "counter";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" d.family (format_labels d.labels)
               (merged_scalar d.kind d.slot))
      | Kgauge_sum | Kgauge_max ->
          header d "gauge";
          Buffer.add_string b
            (Printf.sprintf "%s%s %d\n" d.family (format_labels d.labels)
               (merged_scalar d.kind d.slot))
      | Khist ->
          header d "summary";
          let h = merged_hist d.slot in
          List.iter
            (fun (q, qs) ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %.0f\n" d.family
                   (format_labels (d.labels @ [ ("quantile", qs) ]))
                   (Hist.quantile h q)))
            [ (0.5, "0.5"); (0.9, "0.9"); (0.99, "0.99"); (0.999, "0.999") ];
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" d.family (format_labels d.labels)
               (Hist.count h));
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %d\n" d.family (format_labels d.labels)
               (Hist.sum h)))
    ds;
  Buffer.contents b

let reset () =
  reset ();
  Trace.clear ()
