/* Software-prefetch stub for the memory-level-parallel read path.
 *
 * hyperion_prefetch(buf, off) issues a read prefetch for the cache line
 * holding byte [off] of the Bytes buffer [buf].  It never reads or
 * writes the byte, allocates nothing, and cannot fault (prefetch of an
 * unmapped line is architecturally a no-op), so it is declared
 * [@@noalloc] on the OCaml side.
 *
 * The batched get path calls this for each in-flight operation's *next*
 * container header right after reading its HP, then advances the other
 * cursors; by the time the round-robin returns, the line is (ideally)
 * in L1 — the Cuckoo Trie's software-pipelining trick applied to
 * Hyperion's HP-addressed heap.
 *
 * The offset is bounds-trusted: callers pass offsets derived from HPs
 * the memory manager resolved.  A stale offset would merely prefetch a
 * wrong (still-mapped) line.
 */
#include <caml/mlvalues.h>

CAMLprim value hyperion_prefetch(value buf, value off)
{
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch((const char *)Bytes_val(buf) + Long_val(off), 0, 3);
#else
  (void)buf;
  (void)off;
#endif
  return Val_unit;
}
