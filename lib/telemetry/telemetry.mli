(** hyperion.telemetry — per-domain, allocation-free metric cores.

    Observability primitives for the store's hot paths: monotonic counters,
    gauges, log-bucketed latency histograms with a bounded relative error,
    and a ring buffer of slow-operation spans for forensics.

    {b Cost model.}  Every domain owns a private metric core reached
    through {!Domain.DLS}; recording is a handful of int stores into arrays
    the owning domain never shares for writing — no locks, no allocation,
    no atomics on the hot path.  Readers ({!Counter.value},
    {!Histogram.quantile_ns}, {!dump}) merge the per-domain cores under a
    registry mutex; they may observe a slightly stale view of other
    domains' plain-int cells (never a torn one — cells are word-sized),
    which is the usual monitoring trade-off.

    {b Toggle.}  All instrumentation in the store is guarded by
    {!enabled}, a single mutable flag read; with telemetry disabled the
    per-operation overhead is one load and one branch, and no metric cell
    is ever written (see the invariance tests in [test/test_telemetry.ml]).
    The flag starts [false] unless the [HYPERION_TELEMETRY] environment
    variable is ["1"] or ["true"]. *)

external now_ns : unit -> int = "hyperion_clock_monotonic_ns" [@@noalloc]
(** Monotonic clock reading in nanoseconds, as an unboxed int. *)

external prefetch : Bytes.t -> int -> unit = "hyperion_prefetch" [@@noalloc]
(** [prefetch buf off] issues a read software-prefetch
    ([__builtin_prefetch], locality 3) for the cache line holding byte
    [off] of [buf].  Never reads the byte, never faults, never
    allocates; a no-op on non-GNU toolchains.  Used by the batched
    memory-level-parallel get path to overlap container fetches. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val reset : unit -> unit
(** Zero every metric cell in every domain core and clear the trace ring.
    Metric registrations survive.  Intended for tests and for isolating
    benchmark phases; concurrent recording during a reset may survive it. *)

(** {1 Standalone histogram}

    The bucket scheme shared by metric histograms, exposed standalone so
    oracle tests (and offline tooling) can exercise it directly.

    Buckets: values [0..15] are exact; above that each power of two is cut
    into 16 sub-buckets (HdrHistogram-style: 4 mantissa bits), so a
    bucket's representative value — its midpoint — is within
    [1/32 = 3.125%] of any value it absorbs.  Quantiles are nearest-rank
    over bucket counts and inherit that bound.  Buckets cover the whole
    non-negative int range; negative observations clamp to 0. *)
module Hist : sig
  type t

  val n_buckets : int
  val max_rel_error : float
  (** [1/32]: bound on [|representative - value| / value] for any value
      with [value >= 1] (values [< 16] are represented exactly). *)

  val bucket_of : int -> int
  (** Bucket index of a value; total order preserving. *)

  val representative : int -> float
  (** Midpoint value of a bucket index. *)

  val create : unit -> t
  val observe : t -> int -> unit
  val count : t -> int
  val sum : t -> int
  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [(0, 1]]: the representative value of the
      bucket holding the nearest-rank [q]-quantile; [0.] when empty. *)

  val mean : t -> float
  (** Exact mean of the raw observed values ([sum/count], not
      bucket-quantized); [0.] when empty. *)

  val merge_into : dst:t -> t -> unit
  (** Add every cell of the source into [dst]; merging then extracting a
      quantile is exactly the quantile of the concatenated observations
      (bucket counts are additive). *)

  val buckets : t -> int array
  (** Copy of the raw bucket counts (testing / export). *)
end

(** {1 Registered metrics}

    Metrics are registered once by name (+ static label set) and record
    into the calling domain's core.  Registering the same name, labels and
    kind twice returns the same metric. *)

module Counter : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val incr : t -> unit
  val add : t -> int -> unit

  val value : t -> int
  (** Sum over all domain cores. *)
end

module Gauge : sig
  type t

  val make :
    ?help:string ->
    ?labels:(string * string) list ->
    ?merge:[ `Sum | `Max ] ->
    string ->
    t
  (** [merge] (default [`Sum]) says how per-domain cells combine in
      {!value} and {!dump}: sum for additive quantities (queue depths),
      max for high-watermarks. *)

  val set : t -> int -> unit
  val value : t -> int
end

module Histogram : sig
  type t

  val make : ?help:string -> ?labels:(string * string) list -> string -> t
  val observe_ns : t -> int -> unit
  val count : t -> int
  val sum_ns : t -> int
  val quantile_ns : t -> float -> float
  val snapshot : t -> Hist.t
  (** Merge of all domain cores, as a standalone histogram. *)

  val find : ?labels:(string * string) list -> string -> t option
  (** Look a histogram up by registered name + labels (exporters). *)
end

(** {1 Operation paths}

    Rare structural events mark a per-domain bit while an instrumented
    operation runs; the store clears the bits when an operation starts and
    the trace ring records whatever fired when the operation turns out to
    be slow. *)

module Path : sig
  val embedded_eject : int
  val container_split : int
  val jt_hit : int
  val jt_miss : int
  val wal_rotation : int
  val wal_fsync : int

  val names : int -> string list
  (** Decode a flag set to path names, registration order. *)
end

val mark : int -> unit
(** OR a {!Path} bit into the current domain's flag set; no-op when
    telemetry is disabled. *)

val mark_incr : int -> Counter.t -> unit
(** [mark bit] and [Counter.incr c] fused into a single enabled check and
    per-domain core lookup — for call sites inside the store's innermost
    scan loops, where the separate calls' lookups are measurable. *)

val clear_paths : unit -> unit
val current_paths : unit -> int

(** {1 Slow-op trace ring} *)

module Trace : sig
  type span = {
    seq : int;  (** monotonically increasing record number *)
    kind : string;  (** "put", "get", "fsync", ... *)
    key_len : int;  (** -1 when not applicable *)
    dur_ns : int;
    paths : int;  (** {!Path} bits that fired during the op *)
  }

  val set_capacity : int -> unit
  (** Ring size (default 256); resizing clears the ring. *)

  val set_slow_ns : int -> unit
  (** Threshold for {!maybe_record} (default 1ms). *)

  val slow_ns : unit -> int

  val record : kind:string -> key_len:int -> dur_ns:int -> unit
  (** Unconditionally push a span (with the current domain's path flags)
      into the ring.  Takes a lock: callers keep it off fast paths. *)

  val maybe_record : kind:string -> key_len:int -> dur_ns:int -> unit
  (** {!record}, but only when [dur_ns >= slow_ns ()] and telemetry is
      enabled — the hot-path form. *)

  val spans : unit -> span list
  (** Retained spans, oldest first. *)

  val total : unit -> int
  (** Spans ever recorded (including ones the ring has dropped). *)

  val clear : unit -> unit

  val dump : unit -> string
  (** Spans as ['#']-prefixed comment lines, legal to append to a
      Prometheus exposition. *)
end

(** {1 Fused per-op shell}

    The instrumentation wrapper around each store operation, fused so each
    end costs one per-domain core lookup.  Callers guard on {!enabled}
    themselves; these assume telemetry is on. *)

val op_start : unit -> int
(** Clear the current domain's path flags and return {!now_ns}. *)

val op_end : Histogram.t -> kind:string -> key_len:int -> int -> unit
(** [op_end h ~kind ~key_len t0]: observe [now_ns () - t0] into [h] and,
    when the duration reaches {!Trace.slow_ns}, record a trace span with
    whatever path bits fired since [op_start]. *)

val dump : unit -> string
(** All registered metrics in the Prometheus text exposition format:
    counters and gauges as single samples, histograms as summaries with
    [quantile] labels 0.5 / 0.9 / 0.99 / 0.999 plus [_count] and [_sum]
    samples. *)
