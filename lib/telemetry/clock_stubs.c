/* Monotonic nanosecond clock for the telemetry hot path.
 *
 * Returns the reading as an unboxed OCaml int (Val_long), so the stub is
 * allocation-free and can be declared [@@noalloc].  A 63-bit int holds
 * CLOCK_MONOTONIC nanoseconds for ~146 years of uptime; 32-bit platforms
 * would wrap in seconds and are not supported by this library.
 *
 * On x86-64 the reading comes from an *unfenced* rdtsc scaled to
 * nanoseconds.  The vDSO clock_gettime(CLOCK_MONOTONIC) path executes
 * lfence+rdtsc; the lfence waits for every in-flight load to retire, and
 * in a memory-bound workload (a trie descent is little else) that
 * pipeline drain costs several times the instruction itself — measured as
 * a few hundred ns per instrumented op, where unfenced rdtsc costs tens.
 * The trade-off is boundary blur of order tens of ns from out-of-order
 * execution, irrelevant at the microsecond op scale this measures.
 *
 * The tick->ns scale is calibrated once, in a constructor at load time,
 * by spinning ~1 ms against CLOCK_MONOTONIC (relative calibration error
 * ~1e-4).  This presumes an invariant TSC (constant_tsc + nonstop_tsc,
 * universal on anything made this decade); other architectures keep the
 * plain clock_gettime path.
 */
#include <caml/mlvalues.h>
#include <time.h>

static intnat raw_monotonic_ns(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))

#include <x86intrin.h>

static unsigned long long calib_tsc0;
static intnat calib_ns0;
static double ns_per_tick;

__attribute__((constructor)) static void hyperion_clock_calibrate(void)
{
  intnat n0 = raw_monotonic_ns();
  unsigned long long t0 = __rdtsc();
  intnat n1;
  unsigned long long t1;
  do {
    n1 = raw_monotonic_ns();
    t1 = __rdtsc();
  } while (n1 - n0 < 1000000); /* 1 ms window */
  ns_per_tick = (double)(n1 - n0) / (double)(t1 - t0);
  calib_tsc0 = t1;
  calib_ns0 = n1;
}

CAMLprim value hyperion_clock_monotonic_ns(value unit)
{
  (void)unit;
  unsigned long long t = __rdtsc();
  return Val_long(calib_ns0 +
                  (intnat)((double)(t - calib_tsc0) * ns_per_tick));
}

#else

CAMLprim value hyperion_clock_monotonic_ns(value unit)
{
  (void)unit;
  return Val_long(raw_monotonic_ns());
}

#endif
