(** Uniform drivers over every key-value store in the repository, so the
    benchmark harness can sweep the paper's full comparison set.

    Hyperion appears in up to three rows, as in the paper: plain
    ("Hyperion"), with key pre-processing ("Hyperion_p", integer keys
    only), and with the string-tuned 16 KiB ejection limit used
    transparently for string data sets. *)

module Hyperion_kv : Kvcommon.Kv_intf.S
(** Hyperion with integer-key defaults (8 KiB ejection limit). *)

module Hyperion_strings : Kvcommon.Kv_intf.S
(** Hyperion with the paper's string-key configuration. *)

module Hyperion_p : Kvcommon.Kv_intf.S
(** Hyperion with key pre-processing enabled (keys must be >= 4 bytes). *)

type instance =
  | Instance : {
      impl : (module Kvcommon.Kv_intf.S with type t = 'a);
      store : 'a;
      alt : unit -> (string * int) list;
      batched : (?width:int -> string array -> int64 option array) option;
          (** native batched point-read hook; [None] for structures
              without one (they fall back to a sequential loop) *)
    }
      -> instance

type driver = { dname : string; make : unit -> instance }

val open_instance : driver -> instance
val name : instance -> string
val put : instance -> string -> int64 -> unit
val get : instance -> string -> int64 option
val delete : instance -> string -> bool

val get_many : ?width:int -> instance -> string array -> int64 option array
(** Batched point reads.  Hyperion instances route through the store's
    native memory-level-parallel {!Hyperion.Store.get_many}; every other
    driver runs the default sequential loop over [get] — the fair
    baseline a probe bench compares the batched path against.  Results
    are positionally [Array.map (get i) keys] either way. *)

(** [has_batched i] is whether {!get_many} uses a native batched path
    (rather than the sequential fallback) on this instance. *)
val has_batched : instance -> bool
val range : instance -> ?start:string -> (string -> int64 option -> bool) -> unit
val length : instance -> int
val memory_usage : instance -> int

val alt_memories : instance -> (string * int) list
(** Additional memory models for the same index: ARTC/ARTopt for ART and
    HOTopt for HOT (paper Section 4.1); empty for other structures. *)

val for_integers : unit -> driver list
(** The paper's integer-key line-up: Hyperion, Hyperion_p, Judy, HAT,
    ART, HOT, RB-Tree, Hash. *)

val for_strings : unit -> driver list
(** The string-key line-up (no pre-processing; Hyperion uses the 16 KiB
    ejection limit). *)

val ordered_only : driver list -> driver list
(** Drop structures without meaningful ordered iteration (the hash table),
    as the paper does for range queries. *)
