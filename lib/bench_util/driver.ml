module Make_hyperion (C : sig
  val name : string
  val config : Hyperion.Config.t
end) : Kvcommon.Kv_intf.S with type t = Hyperion.Store.t = struct
  type t = Hyperion.Store.t

  let name = C.name
  let create () = Hyperion.Store.create ~config:C.config ()
  let put = Hyperion.Store.put
  let get = Hyperion.Store.get
  let mem = Hyperion.Store.mem
  let delete = Hyperion.Store.delete
  let range = Hyperion.Store.range
  let length = Hyperion.Store.length
  let memory_usage = Hyperion.Store.memory_usage
end

(* Benchmarks run at laptop scale, so the memory manager's bins are scaled
   down with them (64 chunks per bin instead of 4096) — the same shape of
   external fragmentation at 1/64 of the granularity; see DESIGN.md. *)
let bench_cpb = 64

module Hyperion_kv = Make_hyperion (struct
  let name = "Hyperion"
  let config = { Hyperion.Config.default with chunks_per_bin = bench_cpb }
end)

module Hyperion_strings = Make_hyperion (struct
  let name = "Hyperion"
  let config = { Hyperion.Config.strings with chunks_per_bin = bench_cpb }
end)

module Hyperion_p = Make_hyperion (struct
  let name = "Hyperion_p"
  let config =
    { Hyperion.Config.default with preprocess = true; chunks_per_bin = bench_cpb }
end)

type instance =
  | Instance : {
      impl : (module Kvcommon.Kv_intf.S with type t = 'a);
      store : 'a;
      alt : unit -> (string * int) list;
      batched : (?width:int -> string array -> int64 option array) option;
    }
      -> instance

type driver = { dname : string; make : unit -> instance }

let open_instance d = d.make ()
let name (Instance { impl = (module S); _ }) = S.name
let put (Instance { impl = (module S); store; _ }) k v = S.put store k v
let get (Instance { impl = (module S); store; _ }) k = S.get store k
let delete (Instance { impl = (module S); store; _ }) k = S.delete store k

let range (Instance { impl = (module S); store; _ }) ?start f =
  S.range store ?start f

let length (Instance { impl = (module S); store; _ }) = S.length store

let memory_usage (Instance { impl = (module S); store; _ }) =
  S.memory_usage store

let alt_memories (Instance { alt; _ }) = alt ()
let has_batched (Instance { batched; _ }) = batched <> None

let get_many ?width (Instance { impl = (module S); store; batched; _ }) keys =
  match batched with
  | Some f -> f ?width keys
  | None -> Array.map (S.get store) keys

let driver (type a) dname (module S : Kvcommon.Kv_intf.S with type t = a) =
  {
    dname;
    make =
      (fun () ->
        Instance
          {
            impl = (module S);
            store = S.create ();
            alt = (fun () -> []);
            batched = None;
          });
  }

(* Hyperion rows get the store's native memory-level-parallel batch path;
   every other structure keeps the sequential-loop default, which is the
   fair baseline a probe bench compares against. *)
let hyperion_driver dname
    (module S : Kvcommon.Kv_intf.S with type t = Hyperion.Store.t) =
  {
    dname;
    make =
      (fun () ->
        let store = S.create () in
        Instance
          {
            impl = (module S);
            store;
            alt = (fun () -> []);
            batched =
              Some (fun ?width keys -> Hyperion.Store.get_many ?width store keys);
          });
  }

(* ART and HOT additionally report the paper's ARTC / ARTopt / HOTopt
   memory models for the same index. *)
let art_driver =
  {
    dname = "ART";
    make =
      (fun () ->
        let s = Art.create () in
        Instance
          {
            impl = (module Art);
            store = s;
            alt =
              (fun () ->
                [
                  ("ARTC", Art.memory_usage_model s Art.Leafalloc);
                  ("ARTopt", Art.memory_usage_model s Art.Opt);
                ]);
            batched = None;
          });
  }

let hot_driver =
  {
    dname = "HOT";
    make =
      (fun () ->
        let s = Hot.create () in
        Instance
          {
            impl = (module Hot);
            store = s;
            alt = (fun () -> [ ("HOTopt", Hot.memory_usage_opt s) ]);
            batched = None;
          });
  }

let for_integers () =
  [
    hyperion_driver "Hyperion" (module Hyperion_kv);
    hyperion_driver "Hyperion_p" (module Hyperion_p);
    driver "Judy" (module Judy);
    driver "HAT" (module Hat);
    art_driver;
    hot_driver;
    driver "RB-Tree" (module Rbtree);
    driver "Hash" (module Hashkv);
  ]

let for_strings () =
  [
    hyperion_driver "Hyperion" (module Hyperion_strings);
    driver "Judy" (module Judy);
    driver "HAT" (module Hat);
    art_driver;
    hot_driver;
    driver "RB-Tree" (module Rbtree);
    driver "Hash" (module Hashkv);
  ]

let ordered_only = List.filter (fun d -> d.dname <> "Hash")
