(* Key-compression experiment, shared by [bench/main.exe] and
   [hyperion_cli bench compress].

   Re-measures the Table-1 shape (bytes/key, insert and lookup cost) with
   the trained order-preserving dictionary encoder ({!Compress}) in front
   of the trie, against an identity arm over the same seeded n-gram
   corpus.  The dictionary is trained on a {!Workload.Keystream.reservoir}
   sample of the corpus — the same helper the CLI [train] subcommand uses
   — and every dict-arm timing {e includes} the encode cost, because that
   is what a front-door operation costs in production. *)

let default_config = { Hyperion.Config.strings with chunks_per_bin = 64 }

(* Per-op duration percentiles, computed directly from the sample
   population (no histogram bucketing error): the two arms are compared at
   p50, where a bucket boundary could otherwise eat the whole effect. *)
let percentiles durs =
  let a = Array.copy durs in
  Array.sort compare a;
  let n = Array.length a in
  let q p = float_of_int a.(min (n - 1) (int_of_float (p *. float_of_int n))) in
  let mean =
    float_of_int (Array.fold_left ( + ) 0 a) /. float_of_int (max 1 n)
  in
  (q 0.5, q 0.9, q 0.99, q 0.999, mean)

let latency ~metric durs =
  let p50_ns, p90_ns, p99_ns, p999_ns, mean_ns = percentiles durs in
  {
    Json_out.metric;
    count = Array.length durs;
    p50_ns;
    p90_ns;
    p99_ns;
    p999_ns;
    mean_ns;
  }

type result = {
  rows : Json_out.row list;
  lats : Json_out.latency list;
  key_bytes_reduction_pct : float;
      (** mean encoded-key bytes vs raw, in percent saved *)
  resident_reduction_pct : float;
      (** store-resident bytes/key, dict arm vs identity arm *)
  get_p50_ratio : float;  (** dict get p50 / identity get p50 *)
  json_path : string option;
}

let run ?(n = 300_000) ?(sample = 4096) ?(config = default_config) ?json_dir
    () =
  let ds = Workload.Dataset.ngrams_random n in
  let pairs = ds.Workload.Dataset.pairs in
  Printf.printf "## Key-compression experiment (n = %d n-gram keys)\n\n" n;
  (* train on a deterministic reservoir sample of the raw key stream *)
  let sampled =
    Workload.Keystream.reservoir ~k:sample
      (Seq.map fst (Array.to_seq pairs))
  in
  let t_train = ref 0.0 in
  let dict =
    let t0 = Unix.gettimeofday () in
    let d = Compress.train (Array.to_seq sampled) in
    t_train := Unix.gettimeofday () -. t0;
    d
  in
  let enc = Compress.Dict dict in
  (* mean key length, raw vs encoded, over the whole corpus *)
  let raw_bytes = ref 0 and enc_bytes = ref 0 in
  Array.iter
    (fun (k, _) ->
      raw_bytes := !raw_bytes + String.length k;
      enc_bytes := !enc_bytes + ((Compress.encoded_length enc k + 7) / 8))
    pairs;
  let key_bytes_reduction_pct =
    (1.0 -. (float_of_int !enc_bytes /. float_of_int (max 1 !raw_bytes)))
    *. 100.0
  in
  Gc.compact ();
  let store_id = Hyperion.Store.create ~config () in
  let store_dict =
    Hyperion.Store.create ~config:{ config with compress = 1 } ()
  in
  let durs_id = Array.make n 0 and durs_dict = Array.make n 0 in
  (* the arms interleave op by op, order alternating every pair, so GC
     pauses and frequency drift land on both populations alike (same
     methodology as the telemetry insert experiment) *)
  let one_id i =
    let k, v = pairs.(i) in
    let t0 = Telemetry.now_ns () in
    Hyperion.Store.put store_id k v;
    durs_id.(i) <- Telemetry.now_ns () - t0
  in
  let one_dict i =
    let k, v = pairs.(i) in
    let t0 = Telemetry.now_ns () in
    Hyperion.Store.put store_dict (Compress.encode enc k) v;
    durs_dict.(i) <- Telemetry.now_ns () - t0
  in
  for i = 0 to n - 1 do
    if i land 1 = 0 then begin
      one_id i;
      one_dict i
    end
    else begin
      one_dict i;
      one_id i
    end
  done;
  (* point-lookup sweep, same interleaving; the dict arm encodes inside
     the timed region *)
  let gdurs_id = Array.make n 0 and gdurs_dict = Array.make n 0 in
  let get_id i =
    let k, _ = pairs.(i) in
    let t0 = Telemetry.now_ns () in
    ignore (Hyperion.Store.get store_id k);
    gdurs_id.(i) <- Telemetry.now_ns () - t0
  in
  let get_dict i =
    let k, _ = pairs.(i) in
    let t0 = Telemetry.now_ns () in
    ignore (Hyperion.Store.get store_dict (Compress.encode enc k));
    gdurs_dict.(i) <- Telemetry.now_ns () - t0
  in
  for i = 0 to n - 1 do
    if i land 1 = 0 then begin
      get_id i;
      get_dict i
    end
    else begin
      get_dict i;
      get_id i
    end
  done;
  (* the encoded store must still hold every binding, decodably *)
  Array.iter
    (fun k ->
      match
        Compress.decode enc (Compress.encode enc k)
      with
      | Ok k' when k' = k -> ()
      | Ok k' ->
          failwith
            (Printf.sprintf "compress bench: %S decoded as %S" k k')
      | Error why ->
          failwith ("compress bench: round trip failed on " ^ k ^ ": " ^ why))
    sampled;
  assert (Hyperion.Store.length store_dict = Hyperion.Store.length store_id);
  let sum_ns a = Array.fold_left ( + ) 0 a in
  let t_id = float_of_int (sum_ns durs_id) *. 1e-9 in
  let t_dict = float_of_int (sum_ns durs_dict) *. 1e-9 in
  let tg_id = float_of_int (sum_ns gdurs_id) *. 1e-9 in
  let tg_dict = float_of_int (sum_ns gdurs_dict) *. 1e-9 in
  let bpk s =
    Measure.bytes_per_key
      (Hyperion.Store.memory_usage s)
      (Hyperion.Store.length s)
  in
  let bpk_id = bpk store_id and bpk_dict = bpk store_dict in
  let resident_reduction_pct = (1.0 -. (bpk_dict /. bpk_id)) *. 100.0 in
  let lats =
    [
      latency ~metric:"put-identity" durs_id;
      latency ~metric:"put-dict" durs_dict;
      latency ~metric:"get-identity" gdurs_id;
      latency ~metric:"get-dict" gdurs_dict;
    ]
  in
  let p50 metric =
    (List.find (fun l -> l.Json_out.metric = metric) lats).Json_out.p50_ns
  in
  let get_p50_ratio = p50 "get-dict" /. p50 "get-identity" in
  let fn = float_of_int n in
  let rows =
    [
      {
        Json_out.label = "insert-identity";
        domains = 1;
        ops_per_s = fn /. t_id;
        bytes_per_key = bpk_id;
      };
      {
        Json_out.label = "insert-dict";
        domains = 1;
        ops_per_s = fn /. t_dict;
        bytes_per_key = bpk_dict;
      };
      {
        Json_out.label = "lookup-identity";
        domains = 1;
        ops_per_s = fn /. tg_id;
        bytes_per_key = 0.0;
      };
      {
        Json_out.label = "lookup-dict";
        domains = 1;
        ops_per_s = fn /. tg_dict;
        bytes_per_key = 0.0;
      };
    ]
  in
  Printf.printf "%-22s %10s %12s\n" "phase" "Mops" "B/key";
  print_endline (String.make 46 '-');
  Printf.printf "%-22s %10.3f %12.1f\n" "insert (identity)"
    (Measure.mops n t_id) bpk_id;
  Printf.printf "%-22s %10.3f %12.1f\n" "insert (dict)"
    (Measure.mops n t_dict) bpk_dict;
  Printf.printf "%-22s %10.3f %12s\n" "lookup (identity)"
    (Measure.mops n tg_id) "-";
  Printf.printf "%-22s %10.3f %12s\n" "lookup (dict)"
    (Measure.mops n tg_dict) "-";
  print_newline ();
  List.iter
    (fun l ->
      Printf.printf
        "%-13s latency: count %d, p50 %.0f ns, p90 %.0f ns, p99 %.0f ns, \
         mean %.0f ns\n"
        l.Json_out.metric l.Json_out.count l.Json_out.p50_ns l.Json_out.p90_ns
        l.Json_out.p99_ns l.Json_out.mean_ns)
    lats;
  Printf.printf
    "dictionary: %d-key sample, trained in %.1f ms, hash 0x%Lx\n" sample
    (!t_train *. 1e3) (Compress.dict_hash dict);
  Printf.printf "encoded key bytes : %.1f%% smaller than raw\n"
    key_bytes_reduction_pct;
  Printf.printf "resident bytes/key: %.1f -> %.1f (%.1f%% reduction)\n" bpk_id
    bpk_dict resident_reduction_pct;
  Printf.printf "get p50           : %.2fx identity\n" get_p50_ratio;
  let json_path =
    match json_dir with
    | None -> None
    | Some dir ->
        let path =
          Json_out.write ~dir ~experiment:"compress" ~n
            ~config:
              [
                ( "chunks_per_bin",
                  string_of_int config.Hyperion.Config.chunks_per_bin );
                ("keys", "ngrams_random");
                ("sample", string_of_int sample);
                ("dict_hash", Printf.sprintf "0x%Lx" (Compress.dict_hash dict));
                ( "key_bytes_reduction_pct",
                  Printf.sprintf "%.2f" key_bytes_reduction_pct );
                ( "resident_reduction_pct",
                  Printf.sprintf "%.2f" resident_reduction_pct );
                ("get_p50_ratio", Printf.sprintf "%.3f" get_p50_ratio);
              ]
            ~telemetry:lats ~rows ()
        in
        Printf.printf "json -> %s\n" path;
        Some path
  in
  print_newline ();
  {
    rows;
    lats;
    key_bytes_reduction_pct;
    resident_reduction_pct;
    get_p50_ratio;
    json_path;
  }
