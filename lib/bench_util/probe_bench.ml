(* The [probe] experiment: sequential vs batched (memory-level-parallel)
   point reads under a miss-rate / batch-width sweep.

   Hyperion's batched path wins on two mechanisms this bench isolates:
   software-pipelined prefetching descents (pays off when probes miss
   cache, i.e. at every miss rate) and per-container negative-lookup tags
   (pay off on probe misses, i.e. at high miss rates).  The sweep runs
   miss rates 0/50/95% against batch widths 1/8/32, with the two arms
   interleaved chunk by chunk — the same matched-pairs discipline as the
   telemetry insert bench, so run-long drift cancels out.  Both arms are
   timed per chunk of [width] probes (identical clock overhead), and
   per-op percentiles divide the chunk durations by the width.

   The timed sweep runs with telemetry off (pure path cost); a short
   follow-up pass with telemetry on harvests the tag-rejected and
   prefetch-issued counters for BENCH_probe.json, which CI gates on. *)

let default_config = { Hyperion.Config.strings with chunks_per_bin = 64 }
let miss_rates = [ 0; 50; 95 ]
let widths = [ 1; 8; 32 ]

(* Same registered metrics as lib/core — registration is idempotent, so
   this is how an exporter reads the engine's counters. *)
let c_tag_rejected =
  Telemetry.Counter.make "hyperion_tag_rejected_total"
    ~help:"Lookups short-circuited by a container's negative-lookup tag"

let c_prefetch =
  Telemetry.Counter.make "hyperion_prefetch_issued_total"
    ~help:"Software prefetches issued by the batched read path"

type result = {
  rows : Json_out.row list;
  lats : Json_out.latency list;
  tag_rejected : int;
  prefetch_issued : int;
  json_path : string option;
}

(* Percentiles of per-op cost from per-chunk durations. *)
let lat_of ~metric durs ~width =
  let a = Array.copy durs in
  Array.sort compare a;
  let n = Array.length a in
  let q f =
    float_of_int a.(min (n - 1) (int_of_float (f *. float_of_int n)))
    /. float_of_int width
  in
  let total_ops = n * width in
  {
    Json_out.metric;
    count = total_ops;
    p50_ns = q 0.5;
    p90_ns = q 0.9;
    p99_ns = q 0.99;
    p999_ns = q 0.999;
    mean_ns =
      float_of_int (Array.fold_left ( + ) 0 durs) /. float_of_int total_ops;
  }

(* A pool of keys guaranteed absent, in two interleaved shapes:
   - a present key with one byte overwritten by '\x01' at a cycling
     position: the descent diverges mid-key, and when the position
     coincides with a container boundary the negative-lookup tag can
     reject the child container without scanning it;
   - a present key with a '\x01' suffix appended: the descent runs the
     full present path before missing.
   Absence is verified either way (n-gram keys can be prefixes and
   substrings of each other, so construction alone is not proof). *)
let absent_pool store pairs count =
  Array.init count (fun i ->
      let base = fst pairs.(i mod Array.length pairs) in
      let len = String.length base in
      let candidate =
        if len > 1 && i land 1 = 0 then begin
          let b = Bytes.of_string base in
          Bytes.set b (1 + (i / 2 mod (len - 1))) '\x01';
          Bytes.to_string b
        end
        else base ^ "\x01"
      in
      let k = ref candidate in
      while Hyperion.Store.mem store !k do
        k := !k ^ "\x01"
      done;
      !k)

(* Probe stream for one miss rate: deterministic interleave of present
   and absent keys (seeded, so every width cell replays the same probes). *)
let probe_stream ~seed ~miss_pct ~count pairs absents =
  let rng = Random.State.make [| seed; miss_pct |] in
  Array.init count (fun _ ->
      if Random.State.int rng 100 < miss_pct then
        absents.(Random.State.int rng (Array.length absents))
      else fst pairs.(Random.State.int rng (Array.length pairs)))

let probe ?(n = 200_000) ?(probes = 64_000) ?(config = default_config)
    ?json_dir () =
  let ds = Workload.Dataset.ngrams_random n in
  let pairs = ds.Workload.Dataset.pairs in
  Printf.printf "## Probe experiment: sequential vs batched gets (n = %d)\n\n"
    n;
  let was_enabled = Telemetry.enabled () in
  Telemetry.reset ();
  Telemetry.set_enabled false;
  let store = Hyperion.Store.create ~config () in
  Array.iter (fun (k, v) -> Hyperion.Store.put store k v) pairs;
  let absents = absent_pool store pairs (min n 20_000) in
  Gc.compact ();
  let rows = ref [] and lats = ref [] in
  Printf.printf "%-8s %-6s %12s %12s %10s\n" "miss%" "width" "seq Mops"
    "batched Mops" "p50 ratio";
  print_endline (String.make 52 '-');
  List.iter
    (fun miss_pct ->
      let stream = probe_stream ~seed:0x9e0b ~miss_pct ~count:probes pairs absents in
      List.iter
        (fun width ->
          let chunks = probes / width in
          let durs_seq = Array.make chunks 0 in
          let durs_bat = Array.make chunks 0 in
          let sub = Array.make width "" in
          for c = 0 to chunks - 1 do
            Array.blit stream (c * width) sub 0 width;
            let seq () =
              let t0 = Telemetry.now_ns () in
              for j = 0 to width - 1 do
                ignore (Hyperion.Store.get store sub.(j) : int64 option)
              done;
              durs_seq.(c) <- Telemetry.now_ns () - t0
            in
            let bat () =
              let t0 = Telemetry.now_ns () in
              ignore
                (Hyperion.Store.get_many ~width store sub : int64 option array);
              durs_bat.(c) <- Telemetry.now_ns () - t0
            in
            if c land 1 = 0 then begin seq (); bat () end
            else begin bat (); seq () end
          done;
          let cell = Printf.sprintf "m%d-w%d" miss_pct width in
          let sum a = Array.fold_left ( + ) 0 a in
          let ops = float_of_int (chunks * width) in
          let t_seq = float_of_int (sum durs_seq) *. 1e-9 in
          let t_bat = float_of_int (sum durs_bat) *. 1e-9 in
          let l_seq = lat_of ~metric:("seq-" ^ cell) durs_seq ~width in
          let l_bat = lat_of ~metric:("batched-" ^ cell) durs_bat ~width in
          rows :=
            !rows
            @ [
                {
                  Json_out.label = "seq-" ^ cell;
                  domains = 1;
                  ops_per_s = ops /. t_seq;
                  bytes_per_key = 0.0;
                };
                {
                  Json_out.label = "batched-" ^ cell;
                  domains = 1;
                  ops_per_s = ops /. t_bat;
                  bytes_per_key = 0.0;
                };
              ];
          lats := !lats @ [ l_seq; l_bat ];
          Printf.printf "%-8d %-6d %12.3f %12.3f %9.2fx\n" miss_pct width
            (ops /. t_seq /. 1e6) (ops /. t_bat /. 1e6)
            (l_bat.Json_out.p50_ns /. l_seq.Json_out.p50_ns))
        widths)
    miss_rates;
  (* Counter pass: one batched sweep of the high-miss stream with
     telemetry on, so the JSON carries nonzero engine counters proving
     both mechanisms actually fired. *)
  Telemetry.reset ();
  Telemetry.set_enabled true;
  let stream95 = probe_stream ~seed:0x9e0b ~miss_pct:95 ~count:probes pairs absents in
  ignore (Hyperion.Store.get_many ~width:32 store stream95 : int64 option array);
  let tag_rejected = Telemetry.Counter.value c_tag_rejected in
  let prefetch_issued = Telemetry.Counter.value c_prefetch in
  Telemetry.set_enabled was_enabled;
  Printf.printf
    "\ncounters (95%% miss, width 32, %d probes): tag_rejected %d, \
     prefetch_issued %d\n"
    probes tag_rejected prefetch_issued;
  let json_path =
    match json_dir with
    | None -> None
    | Some dir ->
        let path =
          Json_out.write ~dir ~experiment:"probe" ~n
            ~config:
              [
                ( "chunks_per_bin",
                  string_of_int config.Hyperion.Config.chunks_per_bin );
                ("keys", "ngrams_random");
                ("probes", string_of_int probes);
                ("tag_rejected_total", string_of_int tag_rejected);
                ("prefetch_issued_total", string_of_int prefetch_issued);
              ]
            ~telemetry:!lats ~rows:!rows ()
        in
        Printf.printf "json -> %s\n" path;
        Some path
  in
  print_newline ();
  {
    rows = !rows;
    lats = !lats;
    tag_rejected;
    prefetch_issued;
    json_path;
  }

(* Cross-structure sanity row: the same probe mix through every driver's
   [Driver.get_many] — native batched path for Hyperion, the sequential
   fallback loop for ART/HAT/Judy/... — so the batched numbers above can
   be read against the comparison set without methodology skew. *)
let comparison ?(n = 50_000) ?(probes = 32_000) () =
  let ds = Workload.Dataset.ngrams_random n in
  let pairs = ds.Workload.Dataset.pairs in
  Printf.printf "## Probe comparison (50%% miss, width 32, n = %d)\n\n" n;
  Printf.printf "%-12s %12s %10s\n" "structure" "Mops" "batched";
  print_endline (String.make 36 '-');
  let rng = Random.State.make [| 0x51de |] in
  let stream =
    Array.init probes (fun _ ->
        let k = fst pairs.(Random.State.int rng n) in
        if Random.State.int rng 100 < 50 then k ^ "\x01\x01" else k)
  in
  List.iter
    (fun d ->
      let inst = Driver.open_instance d in
      Array.iter (fun (k, v) -> Driver.put inst k v) pairs;
      let chunks = probes / 32 in
      let sub = Array.make 32 "" in
      let t0 = Telemetry.now_ns () in
      for c = 0 to chunks - 1 do
        Array.blit stream (c * 32) sub 0 32;
        ignore (Driver.get_many ~width:32 inst sub : int64 option array)
      done;
      let dt = float_of_int (Telemetry.now_ns () - t0) *. 1e-9 in
      Printf.printf "%-12s %12.3f %10s\n" d.Driver.dname
        (float_of_int (chunks * 32) /. dt /. 1e6)
        (if Driver.has_batched inst then "native" else "fallback"))
    (Driver.for_strings ());
  print_newline ()
