let schema_version = 2

type row = {
  label : string;
  domains : int;
  ops_per_s : float;
  bytes_per_key : float;
}

type latency = {
  metric : string;
  count : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
  mean_ns : float;
}

let latency_of_histogram ~metric h =
  let count = Telemetry.Histogram.count h in
  let q = Telemetry.Histogram.quantile_ns h in
  {
    metric;
    count;
    p50_ns = q 0.5;
    p90_ns = q 0.9;
    p99_ns = q 0.99;
    p999_ns = q 0.999;
    mean_ns =
      (if count = 0 then 0.0
       else float_of_int (Telemetry.Histogram.sum_ns h) /. float_of_int count);
  }

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

(* %.17g keeps full float precision but stays JSON-parseable (no nan/inf
   is ever produced by the throughput math; guard anyway). *)
let num f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "0"

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception (Unix.Unix_error _ | Sys_error _) -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown")

let row_json r =
  Printf.sprintf
    "    { \"label\": %s, \"domains\": %d, \"ops_per_s\": %s, \
     \"bytes_per_key\": %s }"
    (str r.label) r.domains (num r.ops_per_s) (num r.bytes_per_key)

let latency_json l =
  Printf.sprintf
    "      { \"metric\": %s, \"count\": %d, \"p50\": %s, \"p90\": %s, \
     \"p99\": %s, \"p999\": %s, \"mean\": %s }"
    (str l.metric) l.count (num l.p50_ns) (num l.p90_ns) (num l.p99_ns)
    (num l.p999_ns) (num l.mean_ns)

let telemetry_json = function
  | None -> "  \"telemetry\": { \"enabled\": false, \"latency_ns\": [] },"
  | Some lats ->
      Printf.sprintf
        "  \"telemetry\": {\n\
        \    \"enabled\": true,\n\
        \    \"latency_ns\": [\n%s\n    ]\n\
        \  },"
        (lats |> List.map latency_json |> String.concat ",\n")

let write ~dir ~experiment ~n ~config ?telemetry ~rows () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir ("BENCH_" ^ experiment ^ ".json") in
  let config_json =
    config
    |> List.map (fun (k, v) -> Printf.sprintf "    %s: %s" (str k) (str v))
    |> String.concat ",\n"
  in
  let rows_json = rows |> List.map row_json |> String.concat ",\n" in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc
        "{\n\
        \  \"schema\": %d,\n\
        \  \"experiment\": %s,\n\
        \  \"n\": %d,\n\
        \  \"git_rev\": %s,\n\
        \  \"config\": {\n%s\n  },\n\
         %s\n\
        \  \"rows\": [\n%s\n  ]\n\
         }\n"
        schema_version (str experiment) n
        (str (git_rev ()))
        config_json
        (telemetry_json telemetry)
        rows_json);
  path
