type row = {
  label : string;
  domains : int;
  ops_per_s : float;
  bytes_per_key : float;
}

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str s = "\"" ^ escape s ^ "\""

(* %.17g keeps full float precision but stays JSON-parseable (no nan/inf
   is ever produced by the throughput math; guard anyway). *)
let num f =
  if Float.is_finite f then Printf.sprintf "%.17g" f else "0"

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic -> (
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown")

let row_json r =
  Printf.sprintf
    "    { \"label\": %s, \"domains\": %d, \"ops_per_s\": %s, \
     \"bytes_per_key\": %s }"
    (str r.label) r.domains (num r.ops_per_s) (num r.bytes_per_key)

let write ~dir ~experiment ~n ~config ~rows =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let path = Filename.concat dir ("BENCH_" ^ experiment ^ ".json") in
  let config_json =
    config
    |> List.map (fun (k, v) -> Printf.sprintf "    %s: %s" (str k) (str v))
    |> String.concat ",\n"
  in
  let rows_json = rows |> List.map row_json |> String.concat ",\n" in
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc
        "{\n\
        \  \"experiment\": %s,\n\
        \  \"n\": %d,\n\
        \  \"git_rev\": %s,\n\
        \  \"config\": {\n%s\n  },\n\
        \  \"rows\": [\n%s\n  ]\n\
         }\n"
        (str experiment) n
        (str (git_rev ()))
        config_json rows_json);
  path
