(** Machine-readable benchmark output.

    One file per experiment, [BENCH_<experiment>.json], so CI and the
    EXPERIMENTS.md tables can be regenerated from bench runs instead of
    copy-pasted console output.  The format is flat on purpose:

    {v
    { "schema": 2,
      "experiment": "shards", "n": 100000, "git_rev": "c2739ad",
      "config": { "chunks_per_bin": "64" },
      "telemetry": { "enabled": true, "latency_ns": [
        { "metric": "put", "count": 100000, "p50": 812, "p90": 1344,
          "p99": 9472, "p999": 53248, "mean": 1031.2 } ] },
      "rows": [ { "label": "insert", "domains": 4,
                  "ops_per_s": 1.2e6, "bytes_per_key": 52.1 } ] }
    v}

    ["schema"] is bumped whenever a field changes meaning; consumers must
    check it.  Schema history: 1 = rows only (implicit, no schema field);
    2 = explicit schema + telemetry block with histogram percentiles. *)

val schema_version : int
(** Current value of the ["schema"] field (2). *)

type row = {
  label : string;  (** workload phase, e.g. ["insert"], ["mixed"] *)
  domains : int;  (** worker/client domains driving the phase *)
  ops_per_s : float;
  bytes_per_key : float;  (** 0.0 when not measured for this phase *)
}

type latency = {
  metric : string;  (** short op name, e.g. ["put"] *)
  count : int;
  p50_ns : float;
  p90_ns : float;
  p99_ns : float;
  p999_ns : float;
  mean_ns : float;
}

val latency_of_histogram : metric:string -> Telemetry.Histogram.t -> latency
(** Snapshot a registered telemetry histogram into a [latency] record
    (percentiles carry the histogram's documented bucket error bound). *)

val git_rev : unit -> string
(** Short head revision of the working tree, or ["unknown"] outside a
    checkout. *)

val write :
  dir:string ->
  experiment:string ->
  n:int ->
  config:(string * string) list ->
  ?telemetry:latency list ->
  rows:row list ->
  unit ->
  string
(** Write [dir/BENCH_<experiment>.json] (creating [dir] when missing) and
    return the path written.  Omitting [?telemetry] records
    [{"enabled": false}] — absence of percentiles is explicit, not
    ambiguous. *)
