(** Machine-readable benchmark output.

    One file per experiment, [BENCH_<experiment>.json], so CI and the
    EXPERIMENTS.md tables can be regenerated from bench runs instead of
    copy-pasted console output.  The format is flat on purpose:

    {v
    { "experiment": "shards", "n": 100000, "git_rev": "c2739ad",
      "config": { "chunks_per_bin": "64" },
      "rows": [ { "label": "insert", "domains": 4,
                  "ops_per_s": 1.2e6, "bytes_per_key": 52.1 } ] }
    v} *)

type row = {
  label : string;  (** workload phase, e.g. ["insert"], ["mixed"] *)
  domains : int;  (** worker/client domains driving the phase *)
  ops_per_s : float;
  bytes_per_key : float;  (** 0.0 when not measured for this phase *)
}

val git_rev : unit -> string
(** Short head revision of the working tree, or ["unknown"] outside a
    checkout. *)

val write :
  dir:string ->
  experiment:string ->
  n:int ->
  config:(string * string) list ->
  rows:row list ->
  string
(** Write [dir/BENCH_<experiment>.json] (creating [dir] when missing) and
    return the path written. *)
