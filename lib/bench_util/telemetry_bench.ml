(* Telemetry-instrumented experiments, shared by [bench/main.exe] and
   [hyperion_cli bench].

   The [insert] experiment is the telemetry layer's own yardstick: the same
   seeded n-gram load runs twice — telemetry disabled, then enabled — so
   one run yields both the enabled-path latency percentiles (put and a
   follow-up get sweep) and the measured overhead of having them on.  The
   overhead figure is what EXPERIMENTS.md tracks against its < 5% budget. *)

let default_config = { Hyperion.Config.strings with chunks_per_bin = 64 }

let put_hist () =
  Telemetry.Histogram.find "hyperion_op_latency_ns" ~labels:[ ("op", "put") ]

let get_hist () =
  Telemetry.Histogram.find "hyperion_op_latency_ns" ~labels:[ ("op", "get") ]

let latencies () =
  List.filter_map
    (fun (metric, h) ->
      match h with
      | Some h when Telemetry.Histogram.count h > 0 ->
          Some (Json_out.latency_of_histogram ~metric h)
      | _ -> None)
    [ ("put", put_hist ()); ("get", get_hist ()) ]

type result = {
  rows : Json_out.row list;
  lats : Json_out.latency list;
  overhead_pct : float;
  io_overhead_pct : float;
  json_path : string option;
}

(* 10-90% trimmed mean of an array of per-op durations (ns).  The trim
   absorbs the asymmetric tail: GC pauses, CPU steal and container splits
   land on whichever arm happened to be running, and at ~5 us/op a single
   10 ms pause outweighs the ~200 ns effect being measured. *)
let trimmed_mean durs =
  let a = Array.copy durs in
  Array.sort compare a;
  let n = Array.length a in
  let lo = n / 10 and hi = n - (n / 10) in
  let s = ref 0 in
  for i = lo to hi - 1 do
    s := !s + a.(i)
  done;
  float_of_int !s /. float_of_int (hi - lo)

(* Mean of the 40-60% inter-quantile band.  As robust to the syscall
   tail as the median, but smooth (a single median sample is quantized
   to the clock step). *)
let mid_band_mean durs =
  let a = Array.copy durs in
  Array.sort compare a;
  let n = Array.length a in
  let lo = n * 2 / 5 and hi = n * 3 / 5 in
  let s = ref 0 in
  for i = lo to hi - 1 do
    s := !s + a.(i)
  done;
  float_of_int !s /. float_of_int (hi - lo)

(* Interposed-I/O overhead arm.  The durability layer routes every
   syscall through [Persist.Io] (fault sites, transient-errno retry,
   typed errors); this measures what that wrapper costs when no plan is
   armed.  Each timed operation is a faithful WAL append — encode the
   mutation, CRC-frame it ({!Persist.Frame.frame}, exactly what
   [Wal.append] writes), append it, group-commit fsync every 64 records —
   performed twice per record, once through bare [Unix.write]/[Unix.fsync]
   and once through [Io.write_all]/[Io.fsync] on a disarmed handle, the
   arm order alternating every pair.  EXPERIMENTS.md tracks the result
   against a < 1% budget. *)
let io_interposition ~pairs ~n_io =
  let module Io = Persist.Io in
  let io = Io.make () in
  let n_keys = Array.length pairs in
  let tmp tag = Filename.temp_file ("hyperion-io-bench-" ^ tag) ".wal" in
  let raw_path = tmp "raw" and ipd_path = tmp "interposed" in
  let raw_fd =
    Unix.openfile raw_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600
  in
  let ipd_fd =
    match Io.openfile io ipd_path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 with
    | Ok fd -> fd
    | Error _ -> Unix.close raw_fd; failwith "io bench: openfile failed"
  in
  (* bare-syscall arm, absorbing short writes exactly like [Io.write_all] *)
  let raw_write_all fd b =
    let len = Bytes.length b in
    let off = ref 0 in
    while !off < len do
      off := !off + Unix.write fd b !off (len - !off)
    done
  in
  (* the WAL put record: tag byte, key, LE value — framed like Wal.append *)
  let record i =
    let k, v = pairs.(i mod n_keys) in
    let klen = String.length k in
    let p = Bytes.create (1 + klen + 8) in
    Bytes.set p 0 '\x01';
    Bytes.blit_string k 0 p 1 klen;
    Bytes.set_int64_le p (1 + klen) v;
    Persist.Frame.frame (Bytes.to_string p)
  in
  let durs_raw = Array.make n_io 0 and durs_ipd = Array.make n_io 0 in
  let fail_ipd msg =
    Unix.close raw_fd;
    Io.quiet_close ipd_fd;
    Sys.remove raw_path;
    Sys.remove ipd_path;
    failwith ("io bench: " ^ msg)
  in
  (* A WAL append is encode-then-write, so the record build sits inside
     the timed region of both arms (identically). *)
  let one_raw i =
    let t0 = Telemetry.now_ns () in
    raw_write_all raw_fd (record i);
    if (i + 1) mod 64 = 0 then Unix.fsync raw_fd;
    durs_raw.(i) <- Telemetry.now_ns () - t0
  in
  let one_ipd i =
    let t0 = Telemetry.now_ns () in
    (match Io.write_all io ipd_fd (record i) ~path:ipd_path with
    | Ok () -> ()
    | Error _ -> fail_ipd "write failed");
    if (i + 1) mod 64 = 0 then
      (match Io.fsync io ipd_fd ~path:ipd_path with
      | Ok () -> ()
      | Error _ -> fail_ipd "fsync failed");
    durs_ipd.(i) <- Telemetry.now_ns () - t0
  in
  for i = 0 to n_io - 1 do
    if i land 1 = 0 then begin one_raw i; one_ipd i end
    else begin one_ipd i; one_raw i end
  done;
  Unix.close raw_fd;
  (match Io.close io ipd_fd ~path:ipd_path with
  | Ok () -> ()
  | Error _ -> failwith "io bench: close failed");
  Sys.remove raw_path;
  Sys.remove ipd_path;
  let sum_ns a = Array.fold_left ( + ) 0 a in
  let t_raw = float_of_int (sum_ns durs_raw) *. 1e-9 in
  let t_ipd = float_of_int (sum_ns durs_ipd) *. 1e-9 in
  (* Matched-pairs statistic: the effect being measured is a handful of
     nanoseconds on a microsecond-scale operation, far below the run-long
     drift (frequency scaling, page-cache growth, GC) that any
     two-independent-estimates comparison soaks up.  Each record was
     appended by both arms back to back, so the per-op difference cancels
     the common mode; the overhead is its mid-band mean over the full
     mean cost of a raw append — group-commit fsyncs included, since
     that is what a durable append costs in production. *)
  let diffs = Array.init n_io (fun i -> durs_ipd.(i) - durs_raw.(i)) in
  let append_cost_ns = float_of_int (sum_ns durs_raw) /. float_of_int n_io in
  let pct = mid_band_mean diffs /. append_cost_ns *. 100.0 in
  let fn = float_of_int n_io in
  let rows =
    [
      {
        Json_out.label = "wal-append-raw";
        domains = 1;
        ops_per_s = fn /. t_raw;
        bytes_per_key = 0.0;
      };
      {
        Json_out.label = "wal-append-interposed";
        domains = 1;
        ops_per_s = fn /. t_ipd;
        bytes_per_key = 0.0;
      };
    ]
  in
  (rows, pct, t_raw, t_ipd)

(* [metrics_every = Some k]: print the full Prometheus exposition after
   every [k * 10_000] instrumented inserts (and once at the end of the
   instrumented pass).

   The off and on arms are {e interleaved op by op}, not run back to back:
   a naive off-then-on comparison is dominated by noise — GC pauses, page
   faults, scheduler interference — which at this op cost (~5 us/put vs
   ~200 ns of instrumentation) swings the measured delta by tens of
   percent, run to run.  Coarser slice-level interleaving still leaves
   multi-millisecond bursts inside one arm's slice.  So: two stores are
   built side by side from the same key stream, each op timed
   individually, the arm order alternating every pair, and the reported
   overhead compares the 10-90% {e trimmed means} of the two per-op
   duration populations — run-to-run spread well under a percentage
   point.  Throughput rows use the per-arm duration sums (which include
   the two extra clock reads per op the methodology adds, identically in
   both arms). *)
let insert ?(n = 300_000) ?(config = default_config) ?json_dir ?metrics_every
    () =
  let ds = Workload.Dataset.ngrams_random n in
  let pairs = ds.Workload.Dataset.pairs in
  Printf.printf "## Telemetry insert experiment (n = %d n-gram keys)\n\n" n;
  let was_enabled = Telemetry.enabled () in
  Telemetry.reset ();
  Gc.compact ();
  (* the I/O arm runs first, on the compacted pre-store heap: its effect
     is tens of nanoseconds per op, which the GC/cache churn of two
     300k-key stores would drown *)
  let n_io = min n 150_000 in
  let io_rows, io_overhead_pct, t_raw, t_ipd =
    io_interposition ~pairs ~n_io
  in
  let store_off = Hyperion.Store.create ~config () in
  let store_on = Hyperion.Store.create ~config () in
  let durs_off = Array.make n 0 and durs_on = Array.make n 0 in
  let one ~on store durs i =
    Telemetry.set_enabled on;
    let k, v = pairs.(i) in
    let t0 = Telemetry.now_ns () in
    Hyperion.Store.put store k v;
    durs.(i) <- Telemetry.now_ns () - t0
  in
  for i = 0 to n - 1 do
    if i land 1 = 0 then begin
      one ~on:false store_off durs_off i;
      one ~on:true store_on durs_on i
    end
    else begin
      one ~on:true store_on durs_on i;
      one ~on:false store_off durs_off i
    end;
    match metrics_every with
    | Some k when (i + 1) mod (k * 10_000) = 0 ->
        Telemetry.set_enabled true;
        print_string (Telemetry.dump ())
    | _ -> ()
  done;
  Telemetry.set_enabled true;
  let sum_ns a = Array.fold_left ( + ) 0 a in
  let t_off = float_of_int (sum_ns durs_off) *. 1e-9 in
  let t_on = float_of_int (sum_ns durs_on) *. 1e-9 in
  let tm_off = trimmed_mean durs_off and tm_on = trimmed_mean durs_on in
  (* read-back sweep to populate the get histogram *)
  let t_get =
    let t0 = Unix.gettimeofday () in
    Array.iter (fun (k, _) -> ignore (Hyperion.Store.get store_on k)) pairs;
    Unix.gettimeofday () -. t0
  in
  (match metrics_every with
  | Some _ -> print_string (Telemetry.dump ())
  | None -> ());
  Telemetry.set_enabled was_enabled;
  let overhead_pct = ((tm_on /. tm_off) -. 1.0) *. 100.0 in
  let bpk =
    Measure.bytes_per_key
      (Hyperion.Store.memory_usage store_on)
      (Hyperion.Store.length store_on)
  in
  let fn = float_of_int n in
  let rows =
    [
      {
        Json_out.label = "insert-telemetry-off";
        domains = 1;
        ops_per_s = fn /. t_off;
        bytes_per_key = 0.0;
      };
      {
        Json_out.label = "insert-telemetry-on";
        domains = 1;
        ops_per_s = fn /. t_on;
        bytes_per_key = bpk;
      };
      {
        Json_out.label = "lookup-telemetry-on";
        domains = 1;
        ops_per_s = fn /. t_get;
        bytes_per_key = 0.0;
      };
    ]
  in
  let rows = rows @ io_rows in
  let lats = latencies () in
  Printf.printf "%-22s %10s %12s\n" "phase" "Mops" "note";
  print_endline (String.make 46 '-');
  Printf.printf "%-22s %10.3f %12s\n" "insert (telemetry off)"
    (Measure.mops n t_off) "baseline";
  Printf.printf "%-22s %10.3f %+11.2f%%\n" "insert (telemetry on)"
    (Measure.mops n t_on) overhead_pct;
  Printf.printf "%-22s %10.3f %12s\n" "lookup (telemetry on)"
    (Measure.mops n t_get) "-";
  Printf.printf "%-22s %10.3f %12s\n" "wal append (raw)"
    (Measure.mops n_io t_raw) "baseline";
  Printf.printf "%-22s %10.3f %+11.2f%%\n" "wal append (interposed)"
    (Measure.mops n_io t_ipd) io_overhead_pct;
  print_newline ();
  List.iter
    (fun l ->
      Printf.printf
        "%-6s latency: count %d, p50 %.0f ns, p90 %.0f ns, p99 %.0f ns, \
         p999 %.0f ns, mean %.0f ns\n"
        l.Json_out.metric l.Json_out.count l.Json_out.p50_ns l.Json_out.p90_ns
        l.Json_out.p99_ns l.Json_out.p999_ns l.Json_out.mean_ns)
    lats;
  Printf.printf "telemetry overhead on insert: %.2f%% (budget < 5%%)\n"
    overhead_pct;
  Printf.printf "I/O interposition overhead on WAL append: %.2f%% (budget < 1%%)\n"
    io_overhead_pct;
  let json_path =
    match json_dir with
    | None -> None
    | Some dir ->
        let path =
          Json_out.write ~dir ~experiment:"insert" ~n
            ~config:
              [
                ("chunks_per_bin", string_of_int config.Hyperion.Config.chunks_per_bin);
                ("keys", "ngrams_random");
                ("telemetry_overhead_pct", Printf.sprintf "%.2f" overhead_pct);
                ( "io_interposition_overhead_pct",
                  Printf.sprintf "%.2f" io_overhead_pct );
              ]
            ~telemetry:lats ~rows ()
        in
        Printf.printf "json -> %s\n" path;
        Some path
  in
  print_newline ();
  { rows; lats; overhead_pct; io_overhead_pct; json_path }
