(** Multi-domain sharded front-end over {!Hyperion.Store}.

    The keyspace is partitioned by the first key byte into [D] contiguous
    ranges (shard [i] owns bytes [[i*256/D, (i+1)*256/D)]), one private
    {!Hyperion.Store.t} per range.  Each store is {e single-writer}: all
    mutations are executed by one worker domain that drains a bounded
    mutex+condvar ring mailbox in batches, so the stores themselves never
    see concurrent mutators.  Point reads bypass the mailbox and run on the
    caller's domain — the store's arena locks make a read racing the worker
    safe, and a read issued after a mutation was acknowledged observes it.

    Because the partition is an order-preserving byte-range split, visiting
    the shards in index order yields the global ascending key order; {!iter}
    and friends do exactly that under a {e quiescence barrier} (every worker
    parked between requests), so cross-shard reads are a consistent
    point-in-time cut of the whole keyspace.

    With {!open_durable}, each shard owns a private snapshot+WAL generation
    directory ([<dir>/shard-NNN], see {!Persist}) recovered in parallel at
    open; mutations are logged through the shard's {!Persist.t} handle by
    its worker domain, so the WAL order equals the apply order.

    {b Key compression.}  When the store's {!Hyperion.Config.t.compress}
    selects the trained-dictionary encoder ({!Compress}), every front-door
    key is encoded before it reaches a store (and before WAL logging), and
    decoded on the way back out of {!iter}/{!fold}.  Routing happens over
    encoded bytes — the encoder is order-preserving, so the contiguous
    byte-range partition and global iteration order are unchanged.
    {!with_quiesced} deliberately stays below the boundary: it exposes the
    raw stores, whose keys are {e encoded}.

    {b Supervision.}  Worker domains are supervised: an unexpected
    exception in a worker never strands a client.  The dying worker fails
    every pending request with a typed
    {!Hyperion.Hyperion_error.t.Shard_down}, honours quiesce barriers it
    already joined, seals its mailbox, and exits; sibling shards keep
    serving.  {!health} reports per-shard liveness, {!restart_shard}
    rebuilds a dead shard from its persist directory in place.  Blocking
    enqueues carry a deadline: a mailbox that stays full past it yields
    [Overloaded] instead of blocking forever. *)

type t

val create :
  ?config:Hyperion.Config.t ->
  ?compress:Compress.t ->
  ?shards:int ->
  ?mailbox:int ->
  ?enqueue_timeout_ms:int ->
  unit ->
  t
(** [create ()] starts [shards] worker domains (default 4, clamped to
    [1, 64]) over fresh in-memory stores.  [mailbox] bounds each shard's
    request ring (default 1024 requests; senders block when full, for at
    most [enqueue_timeout_ms] — default 30_000; [0] waits forever).
    [compress] supplies the trained key encoder and must agree with
    [config.compress]; when [config.compress = 1] it is mandatory (an
    in-memory store has no snapshot to adopt a dictionary from).
    @raise Invalid_argument on out-of-range [shards], [mailbox], a
    negative [enqueue_timeout_ms], or an encoder/config disagreement. *)

type shard_recovery = {
  shard : int;
  recovery : Persist.recovery;
}

val open_durable :
  ?config:Hyperion.Config.t ->
  ?compress:Compress.t ->
  ?shards:int ->
  ?sync_every_ops:int ->
  ?sync_every_bytes:int ->
  ?rotate_bytes:int ->
  ?mailbox:int ->
  ?enqueue_timeout_ms:int ->
  ?io_for_shard:(int -> Persist.Io.t) ->
  string ->
  (t, Hyperion.Hyperion_error.t) result
(** [open_durable dir] opens (creating when absent) one {!Persist}
    durability directory per shard under [dir] and recovers all of them in
    parallel (bounded waves of recovery domains).  The shard count is
    recorded in [dir/MANIFEST] on first creation; reopening uses the
    recorded count, and passing [?shards] that contradicts it is an
    [Io_error].  The per-shard knobs ([sync_every_ops], [sync_every_bytes],
    [rotate_bytes]) are forwarded to {!Persist.open_or_create}.

    [io_for_shard i] supplies the syscall-interposition handle shard [i]'s
    durability layer runs through (default {!Persist.Io.none}); the chaos
    harness uses it to arm per-shard disk-fault plans.  The same function
    is consulted again by {!restart_shard}.

    [compress] forwards to each shard's {!Persist.open_or_create}: on a
    fresh directory it seeds the persisted dictionary; on reopen it is
    verified against the persisted one ([Version_mismatch] on
    disagreement).  When omitted over an existing directory, the persisted
    encoder is adopted — shard 0's, with every other shard required to
    agree ([Corrupt_snapshot] otherwise). *)

val shards : t -> int
val durable : t -> bool
val config : t -> Hyperion.Config.t

val compress : t -> Compress.t
(** The key encoder every front-door key passes through (adopted from the
    persisted dictionary when {!open_durable} was given none). *)

val recoveries : t -> shard_recovery list
(** What each shard's recovery found, ascending by shard; [[]] for
    in-memory stores. *)

val shard_of_key : t -> string -> int
(** The shard owning a (non-empty) raw key:
    [first_encoded_byte * shards / 256] (see {!Compress.first_byte}). *)

(** {1 Blocking operations}

    Mirror {!Hyperion.Store}: the call returns once the owning worker has
    applied (and, when durable, logged) the mutation.  The exception-based
    variants raise {!Hyperion.Hyperion_error.Error} exactly as the store
    does; the [_result] variants return the same failures as values.
    [get]/[mem] run immediately on the calling domain.

    Three failure modes are specific to the sharded front-end: [Shard_down]
    when the owning worker died (see {!restart_shard}), [Overloaded] when
    its mailbox stayed full past the enqueue deadline, and [Degraded] when
    the shard's durability layer entered read-only mode (see {!heal}). *)

val put : t -> string -> int64 -> unit
val add : t -> string -> unit
val delete : t -> string -> bool
val get : t -> string -> int64 option
val mem : t -> string -> bool

val get_many : ?width:int -> t -> string array -> int64 option array
(** [get_many t keys] is observably [Array.map (get t) keys]: like [get]
    it runs immediately on the calling domain through the lock-free
    direct door (it serves down and degraded shards), but the keys are
    grouped per owning shard and each group descends through the store's
    memory-level-parallel batch path ({!Hyperion.Store.get_many}) with
    software-pipelined, prefetching descents of [width] (default 32). *)

val mem_many : ?width:int -> t -> string array -> bool array
(** [mem_many t keys] is observably [Array.map (mem t) keys]. *)

val put_result : t -> string -> int64 -> (unit, Hyperion.Hyperion_error.t) result
val add_result : t -> string -> (unit, Hyperion.Hyperion_error.t) result
val delete_result : t -> string -> (bool, Hyperion.Hyperion_error.t) result

(** {1 Batched mutations}

    The amortized path: accumulate mutations locally, then {!Batch.flush}
    ships each shard's slice as one mailbox message and blocks until every
    involved worker has applied its slice.  One flush costs one mailbox
    round-trip per {e involved shard} instead of one per operation — this
    is what makes sharded ingest scale (see bench [shards]). *)

module Batch : sig
  type b

  val create : t -> b
  (** An empty reusable batch bound to the store. *)

  val put : b -> string -> int64 -> unit
  val add : b -> string -> unit
  val delete : b -> string -> unit
  val length : b -> int  (** Operations buffered and not yet flushed. *)

  type shard_flush = {
    fr_shard : int;  (** shard index *)
    fr_ops : int;  (** mutations in this shard's slice *)
    fr_applied : int;  (** prefix of the slice actually applied *)
    fr_error : Hyperion.Hyperion_error.t option;
        (** what stopped the slice, if anything *)
  }

  val flush_report : b -> shard_flush list
  (** Apply all buffered operations, per shard in buffer order, empty the
      batch, and report per-shard outcomes (ascending by shard).  A shard
      stops applying its slice at the first error — including a worker
      death mid-slice, where [fr_applied] still counts exactly the applied
      prefix — but {e other} shards still apply theirs (shards are
      independent). *)

  val flush : b -> (int, Hyperion.Hyperion_error.t) result
  (** {!flush_report} reduced to the historical shape: [Ok n] is the total
      number of mutations applied; on failure the first error (lowest
      shard index) is returned, and [n] applied mutations in other shards
      are not rolled back. *)
end

(** {1 Quiesced cross-shard reads}

    All of these pause every worker at a barrier between two requests, so
    they observe a single consistent point in time of the whole keyspace:
    every acknowledged mutation is visible, no mutation is half-visible,
    and concurrent quiesced readers serialize.  Dead shards (see
    {!health}) don't take the barrier — their stores are frozen, which is
    as quiescent as it gets. *)

val with_quiesced : t -> (Hyperion.Store.t array -> 'a) -> 'a
(** [with_quiesced t f] runs [f] over the quiescent per-shard stores
    (index = shard id).  [f] must only read; the workers resume when it
    returns (or raises).  The stores hold {e encoded} keys — decode with
    {!compress} (as {!iter}/{!fold} do) before showing them to anyone. *)

val iter : t -> (string -> int64 option -> unit) -> unit
(** Every binding in global ascending key order (shard ranges are
    contiguous, so shard order is key order).  Keys are decoded back to
    their raw form; a stored key that fails to decode raises
    [Error (Chunk_corrupt _)]. *)

val fold : t -> init:'a -> f:('a -> string -> int64 option -> 'a) -> 'a
val length : t -> int
val stats : t -> Hyperion.Stats.t
val memory_usage : t -> int
val saturated_arenas : t -> int

(** {1 Supervision}

    A worker that dies on an unexpected exception marks its shard
    unhealthy and fails all of its pending and future requests with
    [Shard_down]; everything else keeps working.  Recovery is explicit:
    {!restart_shard} reopens the shard's persist directory (replaying its
    WAL, exactly like a process restart scoped to one shard) and spawns a
    fresh worker, while sibling shards keep serving throughout. *)

type shard_health = {
  hs_shard : int;  (** shard index *)
  hs_alive : bool;  (** worker domain is serving *)
  hs_down : string option;  (** the exception that killed the worker *)
  hs_degraded : string option;
      (** the shard's durability layer is in degraded read-only mode
          (see {!Persist.degraded}) *)
  hs_backlog : int;  (** messages waiting in the shard's mailbox *)
}

val health : t -> shard_health list
(** Per-shard liveness, ascending by shard.  Cheap: no quiescence. *)

val restart_shard :
  t -> int -> (Persist.recovery option, Hyperion.Hyperion_error.t) result
(** [restart_shard t i] rebuilds dead shard [i]: reaps the dead worker
    domain, drops the old durability handle ({!Persist.crash} — its
    unsynced WAL tail is recovered like a crash), reopens the shard's
    persist directory, and spawns a fresh worker.  Returns what recovery
    found ([None] for in-memory stores, which restart {e empty}: their
    data died with the worker's store being orphaned).  Restarting a
    healthy shard is an error.  Siblings serve throughout; requests racing
    the restart are failed or retried onto the new mailbox, never hung.
    @raise Invalid_argument on an out-of-range index. *)

val heal : t -> (unit, Hyperion.Hyperion_error.t) result
(** {!Persist.heal} every shard's durability handle: re-arm degraded
    shards (fresh snapshot generation + WAL).  [Ok] for shards that are
    not degraded.  No-op on in-memory stores. *)

(** {1 Durability control}

    No-ops ([Ok ()]) on in-memory stores. *)

val sync : t -> (unit, Hyperion.Hyperion_error.t) result
(** Group-commit every shard's WAL now (worker-ordered: issued through the
    mailboxes, so everything acknowledged before [sync] is durable when it
    returns [Ok]). *)

val snapshot_now : t -> (unit, Hyperion.Hyperion_error.t) result
(** Rotate every shard into a fresh snapshot generation. *)

val close : t -> (unit, Hyperion.Hyperion_error.t) result
(** Drain and stop all workers, then close the per-shard durability
    handles.  Further mutations are rejected ([Io_error]); quiesced reads
    keep working on the final state.  Idempotent. *)

val crash : t -> unit
(** Simulate a process kill for crash tests: stop workers without the
    final sync and poison the durability handles ({!Persist.crash}). *)

(**/**)

val shard_dir : dir:string -> int -> string
val manifest_file : dir:string -> string
(** On-disk layout of {!open_durable}, for tests and tooling. *)

val poison : t -> shard:int -> reason:string -> bool
(** Test hook: enqueue a message whose handling raises in the worker,
    simulating an unexpected worker exception.  [true] when the message
    was accepted (the worker will die when it drains it). *)
