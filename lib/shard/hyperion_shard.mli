(** Multi-domain sharded front-end over {!Hyperion.Store}.

    The keyspace is partitioned by the first key byte into [D] contiguous
    ranges (shard [i] owns bytes [[i*256/D, (i+1)*256/D)]), one private
    {!Hyperion.Store.t} per range.  Each store is {e single-writer}: all
    mutations are executed by one worker domain that drains a bounded
    mutex+condvar ring mailbox in batches, so the stores themselves never
    see concurrent mutators.  Point reads bypass the mailbox and run on the
    caller's domain — the store's arena locks make a read racing the worker
    safe, and a read issued after a mutation was acknowledged observes it.

    Because the partition is an order-preserving byte-range split, visiting
    the shards in index order yields the global ascending key order; {!iter}
    and friends do exactly that under a {e quiescence barrier} (every worker
    parked between requests), so cross-shard reads are a consistent
    point-in-time cut of the whole keyspace.

    With {!open_durable}, each shard owns a private snapshot+WAL generation
    directory ([<dir>/shard-NNN], see {!Persist}) recovered in parallel at
    open; mutations are logged through the shard's {!Persist.t} handle by
    its worker domain, so the WAL order equals the apply order. *)

type t

val create :
  ?config:Hyperion.Config.t -> ?shards:int -> ?mailbox:int -> unit -> t
(** [create ()] starts [shards] worker domains (default 4, clamped to
    [1, 64]) over fresh in-memory stores.  [mailbox] bounds each shard's
    request ring (default 1024 requests; senders block when full).
    @raise Invalid_argument on out-of-range [shards] or [mailbox]. *)

type shard_recovery = {
  shard : int;
  recovery : Persist.recovery;
}

val open_durable :
  ?config:Hyperion.Config.t ->
  ?shards:int ->
  ?sync_every_ops:int ->
  ?sync_every_bytes:int ->
  ?rotate_bytes:int ->
  ?mailbox:int ->
  string ->
  (t, Hyperion.Hyperion_error.t) result
(** [open_durable dir] opens (creating when absent) one {!Persist}
    durability directory per shard under [dir] and recovers all of them in
    parallel (bounded waves of recovery domains).  The shard count is
    recorded in [dir/MANIFEST] on first creation; reopening uses the
    recorded count, and passing [?shards] that contradicts it is an
    [Io_error].  The per-shard knobs ([sync_every_ops], [sync_every_bytes],
    [rotate_bytes]) are forwarded to {!Persist.open_or_create}. *)

val shards : t -> int
val durable : t -> bool
val config : t -> Hyperion.Config.t

val recoveries : t -> shard_recovery list
(** What each shard's recovery found, ascending by shard; [[]] for
    in-memory stores. *)

val shard_of_key : t -> string -> int
(** The shard owning a (non-empty) key: [first_byte * shards / 256]. *)

(** {1 Blocking operations}

    Mirror {!Hyperion.Store}: the call returns once the owning worker has
    applied (and, when durable, logged) the mutation.  The exception-based
    variants raise {!Hyperion.Hyperion_error.Error} exactly as the store
    does; the [_result] variants return the same failures as values.
    [get]/[mem] run immediately on the calling domain. *)

val put : t -> string -> int64 -> unit
val add : t -> string -> unit
val delete : t -> string -> bool
val get : t -> string -> int64 option
val mem : t -> string -> bool

val put_result : t -> string -> int64 -> (unit, Hyperion.Hyperion_error.t) result
val add_result : t -> string -> (unit, Hyperion.Hyperion_error.t) result
val delete_result : t -> string -> (bool, Hyperion.Hyperion_error.t) result

(** {1 Batched mutations}

    The amortized path: accumulate mutations locally, then {!Batch.flush}
    ships each shard's slice as one mailbox message and blocks until every
    involved worker has applied its slice.  One flush costs one mailbox
    round-trip per {e involved shard} instead of one per operation — this
    is what makes sharded ingest scale (see bench [shards]). *)

module Batch : sig
  type b

  val create : t -> b
  (** An empty reusable batch bound to the store. *)

  val put : b -> string -> int64 -> unit
  val add : b -> string -> unit
  val delete : b -> string -> unit
  val length : b -> int  (** Operations buffered and not yet flushed. *)

  val flush : b -> (int, Hyperion.Hyperion_error.t) result
  (** Apply all buffered operations, per shard in buffer order, and empty
      the batch.  [Ok n] is the number of mutations applied.  On the first
      error inside a shard that shard stops applying its slice, but {e
      other} shards still apply theirs (shards are independent); the first
      error (lowest shard index) is returned. *)
end

(** {1 Quiesced cross-shard reads}

    All of these pause every worker at a barrier between two requests, so
    they observe a single consistent point in time of the whole keyspace:
    every acknowledged mutation is visible, no mutation is half-visible,
    and concurrent quiesced readers serialize. *)

val with_quiesced : t -> (Hyperion.Store.t array -> 'a) -> 'a
(** [with_quiesced t f] runs [f] over the quiescent per-shard stores
    (index = shard id).  [f] must only read; the workers resume when it
    returns (or raises). *)

val iter : t -> (string -> int64 option -> unit) -> unit
(** Every binding in global ascending key order (shard ranges are
    contiguous, so shard order is key order). *)

val fold : t -> init:'a -> f:('a -> string -> int64 option -> 'a) -> 'a
val length : t -> int
val stats : t -> Hyperion.Stats.t
val memory_usage : t -> int
val saturated_arenas : t -> int

(** {1 Durability control}

    No-ops ([Ok ()]) on in-memory stores. *)

val sync : t -> (unit, Hyperion.Hyperion_error.t) result
(** Group-commit every shard's WAL now (worker-ordered: issued through the
    mailboxes, so everything acknowledged before [sync] is durable when it
    returns [Ok]). *)

val snapshot_now : t -> (unit, Hyperion.Hyperion_error.t) result
(** Rotate every shard into a fresh snapshot generation. *)

val close : t -> (unit, Hyperion.Hyperion_error.t) result
(** Drain and stop all workers, then close the per-shard durability
    handles.  Further mutations are rejected ([Io_error]); quiesced reads
    keep working on the final state.  Idempotent. *)

val crash : t -> unit
(** Simulate a process kill for crash tests: stop workers without the
    final sync and poison the durability handles ({!Persist.crash}). *)

(**/**)

val shard_dir : dir:string -> int -> string
val manifest_file : dir:string -> string
(** On-disk layout of {!open_durable}, for tests and tooling. *)
