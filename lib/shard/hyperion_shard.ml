module H = Hyperion
module E = Hyperion.Hyperion_error
module T = Telemetry

(* Shard-layer telemetry.  The mailbox depth gauge is owned by the worker
   domains (single writer per shard): each drain records the backlog it
   found, so the summed gauge is the backlog observed at the most recent
   drains, and the high-watermark gauge keeps the worst backlog any worker
   ever saw.  Batch sizes and quiesce stalls get histograms — both shape
   tail latency directly. *)
let g_mailbox_depth =
  T.Gauge.make "hyperion_shard_mailbox_depth"
    ~help:"Messages found in shard mailboxes at the latest drain (summed)"

let g_mailbox_hwm =
  T.Gauge.make "hyperion_shard_mailbox_depth_hwm" ~merge:`Max
    ~help:"Highest backlog any shard worker has drained at once"

let m_drain =
  T.Histogram.make "hyperion_shard_drain_msgs"
    ~help:"Messages handled per mailbox drain"

let m_batch =
  T.Histogram.make "hyperion_shard_batch_ops"
    ~help:"Mutations per batched shard slice"

let m_quiesce =
  T.Histogram.make "hyperion_shard_quiesce_duration_ns"
    ~help:"Drain-and-pause barrier duration for quiesced reads"

let c_worker_crashes =
  T.Counter.make "hyperion_shard_worker_crashes_total"
    ~help:"Shard worker domains that died on an unexpected exception"

let c_restarts =
  T.Counter.make "hyperion_shard_restarts_total"
    ~help:"Dead shard workers restarted from their persist directories"

let c_overloads =
  T.Counter.make "hyperion_shard_overload_rejections_total"
    ~help:"Mutations rejected because a shard mailbox stayed full past the \
           enqueue deadline"

(* --- one-shot synchronisation cell (per-request promise) -------------- *)

module Ivar = struct
  type 'a t = {
    m : Mutex.t;
    c : Condition.t;
    mutable v : 'a option; [@guarded_by m]
  }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  (* Idempotent: the first fill wins.  Worker cleanup may fail a message
     whose handler already filled its ivar before raising. *)
  let fill t v =
    Mutex.lock t.m;
    if t.v = None then begin
      t.v <- Some v;
      Condition.broadcast t.c
    end;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    let rec wait () =
      match t.v with
      | Some v ->
          Mutex.unlock t.m;
          v
      | None ->
          Condition.wait t.c t.m;
          wait ()
    in
    wait ()
end

(* --- requests --------------------------------------------------------- *)

type op = Put of string * int64 | Add of string | Delete of string

(* Workers parked between two requests; the coordinator reads all stores
   while every [arrived] worker waits for [released]. *)
type barrier = {
  bm : Mutex.t;
  bc : Condition.t;
  mutable arrived : int; [@guarded_by bm]
  mutable released : bool; [@guarded_by bm]
}

(* Raised by a [Poison] message: the supervision test hook's stand-in for
   any unexpected worker exception. *)
exception Injected_worker_crash of string

type msg =
  | Mut of op * (bool, E.t) result Ivar.t
      (** one mutation; the bool is [Delete]'s "was present" *)
  | Batched of op array * (int * E.t option) Ivar.t
      (** a per-shard batch slice; the int counts the applied prefix, the
          error (if any) is what stopped it *)
  | Quiesce of barrier
  | Poison of string  (** test hook: handling raises {!Injected_worker_crash} *)

(* --- MPSC mailbox: bounded ring, mutex + condvar ---------------------- *)

type mailbox = {
  mm : Mutex.t;
  not_empty : Condition.t;
  ring : msg option array;
  mutable head : int; [@guarded_by mm]  (* next slot to dequeue *)
  mutable len : int; [@guarded_by mm]
  mutable accepting : bool; [@guarded_by mm]
      (* senders rejected once the store closes *)
  mutable stopping : bool; [@guarded_by mm]
      (* worker exits after draining the backlog *)
}

let mailbox_create cap =
  {
    mm = Mutex.create ();
    not_empty = Condition.create ();
    ring = Array.make cap None;
    head = 0;
    len = 0;
    accepting = true;
    stopping = false;
  }

type send_result = Sent | Mailbox_closed | Enqueue_timeout

(* [timeout_ns <= 0] waits forever.  The stdlib has no timed condvar wait,
   so a full mailbox is waited out by unlock/sleep/relock polling with a
   doubling backoff — overload is the rare path, and a healthy worker
   drains whole backlogs at once, so the poll cost is invisible next to
   the full ring it is waiting on. *)
let send mb msg ~timeout_ns =
  let deadline = if timeout_ns <= 0 then max_int else T.now_ns () + timeout_ns in
  let cap = Array.length mb.ring in
  let backoff = ref 5e-5 in
  (* the lock is taken before [wait] is even defined so the whole retry
     loop is lexically a critical section (racecheck's guarded-by rule);
     the full-ring path drops it across the backoff sleep *)
  Mutex.lock mb.mm;
  let rec wait () =
    if not mb.accepting then begin
      Mutex.unlock mb.mm;
      Mailbox_closed
    end
    else if mb.len < cap then begin
      mb.ring.((mb.head + mb.len) mod cap) <- Some msg;
      mb.len <- mb.len + 1;
      Condition.signal mb.not_empty;
      Mutex.unlock mb.mm;
      Sent
    end
    else if T.now_ns () >= deadline then begin
      Mutex.unlock mb.mm;
      Enqueue_timeout
    end
    else begin
      Mutex.unlock mb.mm;
      Unix.sleepf !backoff;
      backoff := Float.min 1e-3 (!backoff *. 2.);
      Mutex.lock mb.mm;
      wait ()
    end
  in
  wait ()

(* Drain the whole backlog in one lock acquisition; [None] = shut down. *)
let drain mb =
  Mutex.lock mb.mm;
  while mb.len = 0 && not mb.stopping do
    Condition.wait mb.not_empty mb.mm
  done;
  if mb.len = 0 then begin
    Mutex.unlock mb.mm;
    None
  end
  else begin
    let cap = Array.length mb.ring in
    let n = mb.len in
    let out =
      Array.init n (fun i ->
          let slot = (mb.head + i) mod cap in
          let m = Option.get mb.ring.(slot) in
          mb.ring.(slot) <- None;
          m)
    in
    mb.head <- (mb.head + n) mod cap;
    mb.len <- 0;
    Mutex.unlock mb.mm;
    Some out
  end

let backlog mb =
  Mutex.lock mb.mm;
  let n = mb.len in
  Mutex.unlock mb.mm;
  n

let shut_down mb =
  Mutex.lock mb.mm;
  mb.accepting <- false;
  mb.stopping <- true;
  Condition.broadcast mb.not_empty;
  Mutex.unlock mb.mm

(* --- the sharded store ------------------------------------------------ *)

(* [store]/[persist]/[mb] are swapped only by {!restart_shard}, under
   [t.qlock] and only while the shard's worker is dead (its domain joined),
   so the single-writer discipline is preserved; concurrent readers of the
   swapped pointers see either the old frozen shard or the new one, both
   safe. *)
type shard = {
  id : int;
  mutable store : H.Store.t;
  mutable persist : Persist.t option;
  mutable mb : mailbox;
  health : string option Atomic.t;  (* [Some reason] = worker dead *)
  mutable domain : unit Domain.t option;
}

type shard_recovery = {
  shard : int;
  recovery : Persist.recovery;
}

(* Everything needed to rebuild a single shard after its worker died. *)
type knobs = {
  k_dir : string option;
  k_sync_every_ops : int option;
  k_sync_every_bytes : int option;
  k_rotate_bytes : int option;
  k_mailbox : int;
  k_io_for_shard : (int -> Persist.Io.t) option;
}

type t = {
  cfg : H.Config.t;
  enc : Compress.t;  (* every key is encoded through this at the front door *)
  tab : shard array;
  recs : shard_recovery list;
  knobs : knobs;
  enqueue_timeout_ns : int;
  qlock : Mutex.t;  (* serializes quiesce barriers, restart, close/crash *)
  mutable closed : bool;
}

let shards t = Array.length t.tab
let durable t = Array.length t.tab > 0 && t.tab.(0).persist <> None
let config t = t.cfg
let compress t = t.enc
let recoveries t = t.recs

let shard_dir ~dir i = Filename.concat dir (Printf.sprintf "shard-%03d" i)
let manifest_file ~dir = Filename.concat dir "MANIFEST"

let route_byte d b = b * d / 256

(* Routing happens over *encoded* bytes; the encoder is order-preserving,
   so the boundary math (first byte, fixed split) is unchanged. *)
let shard_of_encoded t ekey = route_byte (Array.length t.tab) (Char.code ekey.[0])
let shard_of_key t key = route_byte (Array.length t.tab) (Compress.first_byte t.enc key)

(* Front-door key validation + encoding: the raw key must satisfy the
   store's key rules (rejecting e.g. the empty key before it gains bytes
   from the terminator code), and so must its encoding (worst-case
   expansion can push a near-limit key over the length cap). *)
let front_key enc key =
  match H.Ops.key_error key with
  | Some e -> Error e
  | None -> (
      match enc with
      | Compress.Identity -> Ok key
      | Compress.Dict _ -> (
          let ek = Compress.encode enc key in
          match H.Ops.key_error ek with Some e -> Error e | None -> Ok ek))

let decoded enc ekey =
  match Compress.decode enc ekey with
  | Ok k -> k
  | Error why -> E.fail (E.Chunk_corrupt ("stored key fails to decode: " ^ why))

(* --- worker ----------------------------------------------------------- *)

let apply_op sh op : (bool, E.t) result =
  match sh.persist with
  | Some p -> (
      match op with
      | Put (k, v) -> (
          match Persist.put p k v with Ok () -> Ok true | Error _ as e -> e)
      | Add k -> (
          match Persist.add p k with Ok () -> Ok true | Error _ as e -> e)
      | Delete k -> Persist.delete p k)
  | None -> (
      match op with
      | Put (k, v) -> (
          match H.Store.put_result sh.store k v with
          | Ok () -> Ok true
          | Error _ as e -> e)
      | Add k -> (
          match H.Store.add_result sh.store k with
          | Ok () -> Ok true
          | Error _ as e -> e)
      | Delete k -> H.Store.delete_result sh.store k)

let participate b =
  Mutex.lock b.bm;
  b.arrived <- b.arrived + 1;
  Condition.broadcast b.bc;
  while not b.released do
    Condition.wait b.bc b.bm
  done;
  Mutex.unlock b.bm

let worker sh () =
  let handle = function
    | Mut (op, iv) -> Ivar.fill iv (apply_op sh op)
    | Batched (ops, iv) ->
        if T.enabled () then T.Histogram.observe_ns m_batch (Array.length ops);
        let n = Array.length ops in
        let rec go i applied =
          if i >= n then Ivar.fill iv (applied, None)
          else
            match apply_op sh ops.(i) with
            | Ok _ -> go (i + 1) (applied + 1)
            | Error e -> Ivar.fill iv (applied, Some e)
        in
        go 0 0
    | Quiesce b -> participate b
    | Poison reason -> raise (Injected_worker_crash reason)
  in
  (* Supervision: an unexpected exception must never strand a client.
     The dying worker marks itself unhealthy, fails every pending promise
     with a typed [Shard_down], still takes quiesce barriers it already
     received (a quiesced reader must not hang on a shard it posted to),
     seals its mailbox, and exits.  Siblings keep serving; the shard can
     be rebuilt with [restart_shard]. *)
  let cleanup exn msgs from =
    let reason = Printexc.to_string exn in
    Atomic.set sh.health (Some reason);
    if T.enabled () then T.Counter.incr c_worker_crashes;
    let fail_one = function
      | Mut (_, iv) -> Ivar.fill iv (Error (E.Shard_down reason))
      | Batched (_, iv) -> Ivar.fill iv (0, Some (E.Shard_down reason))
      | Quiesce b -> participate b
      | Poison _ -> ()
    in
    (* the message that raised first: its promise may be unfilled (fill is
       idempotent, so a message that half-completed is safe to fail) *)
    for j = from to Array.length msgs - 1 do
      fail_one msgs.(j)
    done;
    shut_down sh.mb;
    let rec flush () =
      match drain sh.mb with
      | Some more ->
          Array.iter fail_one more;
          flush ()
      | None -> ()
    in
    flush ()
  in
  let rec loop () =
    match drain sh.mb with
    | None -> ()
    | Some msgs ->
        if T.enabled () then begin
          let n = Array.length msgs in
          T.Gauge.set g_mailbox_depth n;
          T.Gauge.set g_mailbox_hwm n;
          T.Histogram.observe_ns m_drain n
        end;
        let i = ref 0 in
        (try
           while !i < Array.length msgs do
             handle msgs.(!i);
             incr i
           done
         with exn -> cleanup exn msgs !i);
        if Atomic.get sh.health = None then begin
          if T.enabled () then T.Gauge.set g_mailbox_depth 0;
          loop ()
        end
  in
  loop ()

let start_workers tab =
  Array.iter (fun sh -> sh.domain <- Some (Domain.spawn (worker sh))) tab

(* --- construction ----------------------------------------------------- *)

let max_shards = 64  (* worker domains live for the store's lifetime *)

let check_geometry ~shards ~mailbox =
  if shards < 1 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "Hyperion_shard: shards must be in [1, %d]" max_shards);
  if mailbox < 1 then invalid_arg "Hyperion_shard: mailbox must be >= 1"

let default_enqueue_timeout_ms = 30_000

let timeout_ns_of_ms ms =
  if ms < 0 then invalid_arg "Hyperion_shard: enqueue_timeout_ms must be >= 0";
  ms * 1_000_000

(* The encoder is part of the config contract: [config.compress] names
   the scheme, [?compress] supplies the trained state.  A disagreement is
   a wiring bug (invalid_arg); a missing dictionary for scheme 1 is too,
   for the in-memory constructor (the durable path can adopt one from its
   snapshots instead). *)
let check_encoder ~config compress =
  match compress with
  | Some e ->
      if Compress.id e <> config.H.Config.compress then
        invalid_arg
          (Printf.sprintf
             "Hyperion_shard: config.compress = %d but the %s encoder was \
              passed"
             config.H.Config.compress (Compress.name e));
      Some e
  | None ->
      if config.H.Config.compress = 0 then Some Compress.Identity else None

let create ?(config = H.Config.default) ?compress ?(shards = 4)
    ?(mailbox = 1024) ?(enqueue_timeout_ms = default_enqueue_timeout_ms) () =
  check_geometry ~shards ~mailbox;
  let enc =
    match check_encoder ~config compress with
    | Some e -> e
    | None ->
        invalid_arg
          "Hyperion_shard.create: config.compress selects the dict encoder; \
           pass ?compress with the trained dictionary"
  in
  let enqueue_timeout_ns = timeout_ns_of_ms enqueue_timeout_ms in
  let tab =
    Array.init shards (fun i ->
        {
          id = i;
          store = H.Store.create ~config ();
          persist = None;
          mb = mailbox_create mailbox;
          health = Atomic.make None;
          domain = None;
        })
  in
  start_workers tab;
  {
    cfg = config;
    enc;
    tab;
    recs = [];
    knobs =
      {
        k_dir = None;
        k_sync_every_ops = None;
        k_sync_every_bytes = None;
        k_rotate_bytes = None;
        k_mailbox = mailbox;
        k_io_for_shard = None;
      };
    enqueue_timeout_ns;
    qlock = Mutex.create ();
    closed = false;
  }

(* The manifest pins the shard count: reopening with a different partition
   would route keys to shards whose stores do not hold them. *)
let read_manifest dir =
  let path = manifest_file ~dir in
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error (E.Io_error msg)
    | text -> (
        match int_of_string_opt (String.trim text) with
        | Some d when d >= 1 && d <= max_shards -> Ok (Some d)
        | _ ->
            Error
              (E.Io_error
                 (Printf.sprintf "%s: unreadable shard manifest %S" path text)))

let write_manifest dir d =
  try
    Out_channel.with_open_text (manifest_file ~dir) (fun oc ->
        Printf.fprintf oc "%d\n" d);
    Ok ()
  with Sys_error msg -> Error (E.Io_error msg)

let recovery_wave = 8  (* parallel recovery domains per wave *)

let open_durable ?(config = H.Config.default) ?compress ?shards ?sync_every_ops
    ?sync_every_bytes ?rotate_bytes ?(mailbox = 1024)
    ?(enqueue_timeout_ms = default_enqueue_timeout_ms) ?io_for_shard dir =
  let ( let* ) = Result.bind in
  let expect = check_encoder ~config compress in
  let enqueue_timeout_ns = timeout_ns_of_ms enqueue_timeout_ms in
  let* () =
    match
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise (Sys_error (dir ^ ": not a directory"))
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, fn, _) ->
        Error (E.Io_error (Printf.sprintf "%s: %s: %s" dir fn (Unix.error_message e)))
    | exception Sys_error msg -> Error (E.Io_error msg)
  in
  let* recorded = read_manifest dir in
  let* d =
    match (recorded, shards) with
    | Some d, None -> Ok d
    | Some d, Some requested when d = requested -> Ok d
    | Some d, Some requested ->
        Error
          (E.Io_error
             (Printf.sprintf
                "%s: directory is partitioned into %d shard(s), not %d"
                dir d requested))
    | None, requested ->
        let d = Option.value requested ~default:4 in
        check_geometry ~shards:d ~mailbox;
        let* () = write_manifest dir d in
        Ok d
  in
  check_geometry ~shards:d ~mailbox;
  (* Parallel recovery: one domain per shard, in bounded waves. *)
  let results = Array.make d (Error (E.Io_error "recovery never ran")) in
  let rec waves i =
    if i < d then begin
      let n = min recovery_wave (d - i) in
      let doms =
        Array.init n (fun j ->
            let io = Option.map (fun f -> f (i + j)) io_for_shard in
            Domain.spawn (fun () ->
                Persist.open_or_create ~config ?compress:expect ?io
                  ?sync_every_ops ?sync_every_bytes ?rotate_bytes
                  (shard_dir ~dir (i + j))))
      in
      Array.iteri (fun j dom -> results.(i + j) <- Domain.join dom) doms;
      waves (i + n)
    end
  in
  waves 0;
  let first_error =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with None, Error e -> Some e | _ -> acc)
      None results
  in
  match first_error with
  | Some e ->
      Array.iter
        (function Ok p -> ignore (Persist.close p) | Error _ -> ())
        results;
      Error e
  | None ->
      let handles =
        Array.map
          (function
            | Ok p -> p
            | Error e ->
                (* unreachable: [first_error = None] covers every slot *)
                E.fail e)
          results
      in
      (* adopt the persisted encoder (shard 0's) and insist every shard
         agrees: divergent dictionaries would route and compare
         incoherently across the partition *)
      let enc =
        match expect with Some e -> e | None -> Persist.compress handles.(0)
      in
      let* () =
        if
          Array.for_all
            (fun p -> Compress.equal (Persist.compress p) enc)
            handles
        then Ok ()
        else begin
          Array.iter (fun p -> ignore (Persist.close p)) handles;
          Error
            (E.Corrupt_snapshot
               (dir ^ ": shards disagree about the key-compression dictionary"))
        end
      in
      let tab =
        Array.mapi
          (fun i p ->
            {
              id = i;
              store = Persist.store p;
              persist = Some p;
              mb = mailbox_create mailbox;
              health = Atomic.make None;
              domain = None;
            })
          handles
      in
      let recs =
        Array.to_list
          (Array.mapi
             (fun i p -> { shard = i; recovery = Persist.recovery p })
             handles)
      in
      start_workers tab;
      Ok
        {
          cfg = config;
          enc;
          tab;
          recs;
          knobs =
            {
              k_dir = Some dir;
              k_sync_every_ops = sync_every_ops;
              k_sync_every_bytes = sync_every_bytes;
              k_rotate_bytes = rotate_bytes;
              k_mailbox = mailbox;
              k_io_for_shard = io_for_shard;
            };
          enqueue_timeout_ns;
          qlock = Mutex.create ();
          closed = false;
        }

(* --- blocking operations ---------------------------------------------- *)

let closed_error t = E.Io_error ((if durable t then "durable " else "") ^ "sharded store closed")

(* Enqueue with supervision semantics: a dead worker yields [Shard_down],
   a full mailbox past the deadline yields [Overloaded], and a mailbox
   sealed by a concurrent restart is retried against the replacement. *)
let rec submit_msg t sh msg =
  match Atomic.get sh.health with
  | Some reason -> Error (E.Shard_down reason)
  | None -> (
      let mb = sh.mb in
      match send mb msg ~timeout_ns:t.enqueue_timeout_ns with
      | Sent -> Ok ()
      | Enqueue_timeout ->
          if T.enabled () then T.Counter.incr c_overloads;
          Error
            (E.Overloaded
               (Printf.sprintf "shard %d mailbox stayed full past the deadline"
                  sh.id))
      | Mailbox_closed -> (
          match Atomic.get sh.health with
          | Some reason -> Error (E.Shard_down reason)
          | None ->
              if t.closed then Error (closed_error t)
              else if sh.mb != mb then submit_msg t sh msg
              else Error (closed_error t)))

let submit t ekey op =
  let sh = t.tab.(shard_of_encoded t ekey) in
  let iv = Ivar.create () in
  match submit_msg t sh (Mut (op, iv)) with
  | Ok () -> Ivar.read iv
  | Error _ as e -> e

let put_result t key v =
  match front_key t.enc key with
  | Error e -> Error e
  | Ok ek -> (
      match submit t ek (Put (ek, v)) with
      | Ok _ -> Ok ()
      | Error _ as e -> e)

let add_result t key =
  match front_key t.enc key with
  | Error e -> Error e
  | Ok ek -> (
      match submit t ek (Add ek) with Ok _ -> Ok () | Error _ as e -> e)

let delete_result t key =
  match front_key t.enc key with
  | Error e -> Error e
  | Ok ek -> submit t ek (Delete ek)

let ok_or_raise = function Ok v -> v | Error e -> E.fail e

let put t key v =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  ok_or_raise (put_result t key v)

let add t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  ok_or_raise (add_result t key)

let delete t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  ok_or_raise (delete_result t key)

let get t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  let ek = Compress.encode t.enc key in
  H.Store.get t.tab.(shard_of_encoded t ek).store ek

let mem t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  let ek = Compress.encode t.enc key in
  H.Store.mem t.tab.(shard_of_encoded t ek).store ek

(* --- batched reads ---------------------------------------------------- *)

(* Like [get]/[mem], batched reads use the lock-free direct door: they
   run on the calling domain against each shard's store (which takes its
   own arena locks), never the mailbox — so they serve down shards too.
   Keys are encoded, grouped by owning shard, pushed through the store's
   memory-level-parallel batch path, and scattered back in input order. *)
let encode_batch t keys =
  Array.map
    (fun k ->
      if String.length k = 0 then invalid_arg "Hyperion_shard: empty key";
      Compress.encode t.enc k)
    keys

let read_many t ekeys ~run ~default =
  let n = Array.length ekeys in
  let out = Array.make n default in
  let groups = Array.make (Array.length t.tab) [] in
  for i = n - 1 downto 0 do
    let s = shard_of_encoded t ekeys.(i) in
    groups.(s) <- i :: groups.(s)
  done;
  Array.iteri
    (fun s idxs ->
      if idxs <> [] then begin
        let idxa = Array.of_list idxs in
        let sub = Array.map (fun i -> ekeys.(i)) idxa in
        let r = run t.tab.(s).store sub in
        Array.iteri (fun j i -> out.(i) <- r.(j)) idxa
      end)
    groups;
  out

let get_many ?width t keys =
  read_many t (encode_batch t keys) ~default:None ~run:(fun store sub ->
      H.Store.get_many ?width store sub)

let mem_many ?width t keys =
  read_many t (encode_batch t keys) ~default:false ~run:(fun store sub ->
      H.Store.mem_many ?width store sub)

(* --- batched mutations ------------------------------------------------ *)

module Batch = struct
  type b = {
    owner : t;
    pending : op list array;  (* per shard, newest first *)
    mutable count : int;
  }

  type shard_flush = {
    fr_shard : int;
    fr_ops : int;
    fr_applied : int;
    fr_error : E.t option;
  }

  let create owner =
    {
      owner;
      pending = Array.make (Array.length owner.tab) [];
      count = 0;
    }

  (* keys are encoded at push time so flush routes and applies encoded
     bytes, same as the blocking front door *)
  let push b ekey op =
    let i = shard_of_encoded b.owner ekey in
    b.pending.(i) <- op :: b.pending.(i);
    b.count <- b.count + 1

  let enc_key b key =
    if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
    Compress.encode b.owner.enc key

  let put b key v =
    let ek = enc_key b key in
    push b ek (Put (ek, v))

  let add b key =
    let ek = enc_key b key in
    push b ek (Add ek)

  let delete b key =
    let ek = enc_key b key in
    push b ek (Delete ek)
  let length b = b.count

  let flush_report b =
    if b.count = 0 then []
    else begin
      let waits = ref [] in
      Array.iteri
        (fun i ops ->
          if ops <> [] then begin
            let slice = Array.of_list (List.rev ops) in
            b.pending.(i) <- [];
            let iv = Ivar.create () in
            let cell =
              match submit_msg b.owner b.owner.tab.(i) (Batched (slice, iv)) with
              | Ok () -> (i, Array.length slice, Ok iv)
              | Error e -> (i, Array.length slice, Error e)
            in
            waits := cell :: !waits
          end)
        b.pending;
      b.count <- 0;
      (* waits is in reverse shard order; rev_map restores ascending *)
      List.rev_map
        (fun (i, ops, cell) ->
          match cell with
          | Ok iv ->
              let applied, err = Ivar.read iv in
              { fr_shard = i; fr_ops = ops; fr_applied = applied; fr_error = err }
          | Error e ->
              { fr_shard = i; fr_ops = ops; fr_applied = 0; fr_error = Some e })
        !waits
    end

  let flush b =
    let report = flush_report b in
    let applied = List.fold_left (fun acc r -> acc + r.fr_applied) 0 report in
    match List.find_map (fun r -> r.fr_error) report with
    | Some e -> Error e
    | None -> Ok applied
end

(* --- quiescence barrier ----------------------------------------------- *)

let with_quiesced t f =
  Mutex.lock t.qlock;
  let stores = Array.map (fun sh -> sh.store) t.tab in
  if t.closed then
    (* workers are gone; the stores are frozen already *)
    Fun.protect ~finally:(fun () -> Mutex.unlock t.qlock) (fun () -> f stores)
  else begin
    let b =
      { bm = Mutex.create (); bc = Condition.create (); arrived = 0; released = false }
    in
    let t0 = if T.enabled () then T.now_ns () else 0 in
    (* dead shards return [Mailbox_closed] and are simply not counted:
       their stores are frozen, which is as quiescent as it gets.  The
       send never times out (timeout 0 = infinite) — skipping a live
       shard's barrier would break the consistent cut. *)
    let posted =
      Array.fold_left
        (fun n sh ->
          match send sh.mb (Quiesce b) ~timeout_ns:0 with
          | Sent -> n + 1
          | Mailbox_closed | Enqueue_timeout -> n)
        0 t.tab
    in
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.qlock)
      (fun () ->
        Mutex.lock b.bm;
        while b.arrived < posted do
          Condition.wait b.bc b.bm
        done;
        if T.enabled () then begin
          let d = T.now_ns () - t0 in
          T.Histogram.observe_ns m_quiesce d;
          T.Trace.maybe_record ~kind:"quiesce" ~key_len:(-1) ~dur_ns:d
        end;
        Fun.protect
          ~finally:(fun () ->
            b.released <- true;
            Condition.broadcast b.bc;
            Mutex.unlock b.bm)
          (fun () -> f stores))
  end
[@@lock_wrapper "Hyperion_shard.t.qlock"]

let iter t f =
  with_quiesced t (fun stores ->
      Array.iter
        (fun s -> H.Store.iter s (fun ekey v -> f (decoded t.enc ekey) v))
        stores)

let fold t ~init ~f =
  with_quiesced t (fun stores ->
      Array.fold_left
        (fun acc s ->
          H.Store.fold s ~init:acc ~f:(fun acc ekey v ->
              f acc (decoded t.enc ekey) v))
        init stores)

let length t =
  with_quiesced t (fun stores ->
      Array.fold_left (fun acc s -> acc + H.Store.length s) 0 stores)

let stats t =
  with_quiesced t (fun stores ->
      Array.fold_left
        (fun acc s -> H.Stats.add acc (H.Store.stats s))
        H.Stats.empty stores)

let memory_usage t =
  with_quiesced t (fun stores ->
      Array.fold_left (fun acc s -> acc + H.Store.memory_usage s) 0 stores)

let saturated_arenas t =
  with_quiesced t (fun stores ->
      Array.fold_left (fun acc s -> acc + H.Store.saturated_arenas s) 0 stores)

(* --- supervision ------------------------------------------------------ *)

type shard_health = {
  hs_shard : int;
  hs_alive : bool;
  hs_down : string option;
  hs_degraded : string option;
  hs_backlog : int;
}

let health t =
  Array.to_list
    (Array.map
       (fun sh ->
         let down = Atomic.get sh.health in
         {
           hs_shard = sh.id;
           hs_alive = down = None && not t.closed;
           hs_down = down;
           hs_degraded =
             (match sh.persist with
             | Some p -> Persist.degraded p
             | None -> None);
           hs_backlog = backlog sh.mb;
         })
       t.tab)

let restart_shard t i =
  if i < 0 || i >= Array.length t.tab then
    invalid_arg "Hyperion_shard.restart_shard: shard index out of range";
  Mutex.lock t.qlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.qlock)
    (fun () ->
      if t.closed then Error (closed_error t)
      else
        let sh = t.tab.(i) in
        match Atomic.get sh.health with
        | None ->
            Error
              (E.Io_error
                 (Printf.sprintf "shard %d is healthy; nothing to restart" i))
        | Some _ -> (
            (* the dying worker sealed its mailbox and is exiting (or has
               exited): reap its domain before rebuilding *)
            (match sh.domain with
            | Some d ->
                Domain.join d;
                sh.domain <- None
            | None -> ());
            let respawn () =
              Atomic.set sh.health None;
              sh.domain <- Some (Domain.spawn (worker sh));
              if T.enabled () then T.Counter.incr c_restarts
            in
            match sh.persist with
            | None ->
                (* in-memory shard: nothing to recover from — restart
                   empty (the data died with the worker's store being
                   orphaned; durable stores recover below) *)
                sh.store <- H.Store.create ~config:t.cfg ();
                sh.mb <- mailbox_create t.knobs.k_mailbox;
                respawn ();
                Ok None
            | Some old -> (
                (* drop the old handle's descriptors (its WAL tail may be
                   unsynced — recovery treats it like a crash), then
                   rebuild the shard from its persist dir while siblings
                   keep serving *)
                Persist.crash old;
                let dir =
                  match t.knobs.k_dir with
                  | Some d -> shard_dir ~dir:d i
                  | None -> Persist.dir old
                in
                let io = Option.map (fun f -> f i) t.knobs.k_io_for_shard in
                match
                  Persist.open_or_create ~config:t.cfg ~compress:t.enc ?io
                    ?sync_every_ops:t.knobs.k_sync_every_ops
                    ?sync_every_bytes:t.knobs.k_sync_every_bytes
                    ?rotate_bytes:t.knobs.k_rotate_bytes dir
                with
                | Error _ as e -> e
                | Ok p ->
                    sh.store <- Persist.store p;
                    sh.persist <- Some p;
                    sh.mb <- mailbox_create t.knobs.k_mailbox;
                    respawn ();
                    Ok (Some (Persist.recovery p)))))

(* Test hook: enqueue a message whose handling raises, simulating an
   unexpected worker exception at a drain boundary. *)
let poison t ~shard ~reason =
  if shard < 0 || shard >= Array.length t.tab then
    invalid_arg "Hyperion_shard.poison: shard index out of range";
  match submit_msg t t.tab.(shard) (Poison reason) with
  | Ok () -> true
  | Error _ -> false

(* --- durability control ----------------------------------------------- *)

let first_error results =
  Array.fold_left
    (fun acc r -> match (acc, r) with None, Error e -> Some e | _ -> acc)
    None results

(* [sync]/[snapshot_now] go straight to the per-shard Persist handles: the
   handle serialises against its worker internally, and a quiescence
   barrier here would only narrow (not close) the race with in-flight
   mutations the caller has not been acknowledged for. *)
let on_handles t f =
  if t.closed then Error (closed_error t)
  else
    let results =
      Array.map
        (fun sh -> match sh.persist with Some p -> f p | None -> Ok ())
        t.tab
    in
    match first_error results with Some e -> Error e | None -> Ok ()

let sync t = on_handles t Persist.sync
let snapshot_now t = on_handles t Persist.snapshot_now
let heal t = on_handles t Persist.heal

let stop_workers t =
  Mutex.lock t.qlock;
  if t.closed then begin
    Mutex.unlock t.qlock;
    false
  end
  else begin
    t.closed <- true;
    Array.iter (fun sh -> shut_down sh.mb) t.tab;
    Array.iter
      (fun sh ->
        match sh.domain with
        | Some d ->
            Domain.join d;
            sh.domain <- None
        | None -> ())
      t.tab;
    Mutex.unlock t.qlock;
    true
  end

let close t =
  if not (stop_workers t) then Ok ()
  else begin
    let results =
      Array.map
        (fun sh ->
          match sh.persist with Some p -> Persist.close p | None -> Ok ())
        t.tab
    in
    match first_error results with Some e -> Error e | None -> Ok ()
  end

let crash t =
  if stop_workers t then
    Array.iter
      (fun sh -> match sh.persist with Some p -> Persist.crash p | None -> ())
      t.tab
