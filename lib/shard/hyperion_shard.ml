module H = Hyperion
module E = Hyperion.Hyperion_error
module T = Telemetry

(* Shard-layer telemetry.  The mailbox depth gauge is owned by the worker
   domains (single writer per shard): each drain records the backlog it
   found, so the summed gauge is the backlog observed at the most recent
   drains, and the high-watermark gauge keeps the worst backlog any worker
   ever saw.  Batch sizes and quiesce stalls get histograms — both shape
   tail latency directly. *)
let g_mailbox_depth =
  T.Gauge.make "hyperion_shard_mailbox_depth"
    ~help:"Messages found in shard mailboxes at the latest drain (summed)"

let g_mailbox_hwm =
  T.Gauge.make "hyperion_shard_mailbox_depth_hwm" ~merge:`Max
    ~help:"Highest backlog any shard worker has drained at once"

let m_drain =
  T.Histogram.make "hyperion_shard_drain_msgs"
    ~help:"Messages handled per mailbox drain"

let m_batch =
  T.Histogram.make "hyperion_shard_batch_ops"
    ~help:"Mutations per batched shard slice"

let m_quiesce =
  T.Histogram.make "hyperion_shard_quiesce_duration_ns"
    ~help:"Drain-and-pause barrier duration for quiesced reads"

(* --- one-shot synchronisation cell (per-request promise) -------------- *)

module Ivar = struct
  type 'a t = {
    m : Mutex.t;
    c : Condition.t;
    mutable v : 'a option;
  }

  let create () = { m = Mutex.create (); c = Condition.create (); v = None }

  let fill t v =
    Mutex.lock t.m;
    t.v <- Some v;
    Condition.broadcast t.c;
    Mutex.unlock t.m

  let read t =
    Mutex.lock t.m;
    let rec wait () =
      match t.v with
      | Some v ->
          Mutex.unlock t.m;
          v
      | None ->
          Condition.wait t.c t.m;
          wait ()
    in
    wait ()
end

(* --- requests --------------------------------------------------------- *)

type op = Put of string * int64 | Add of string | Delete of string

(* Workers parked between two requests; the coordinator reads all stores
   while every [arrived] worker waits for [released]. *)
type barrier = {
  bm : Mutex.t;
  bc : Condition.t;
  mutable arrived : int;
  mutable released : bool;
}

type msg =
  | Mut of op * (bool, E.t) result Ivar.t
      (** one mutation; the bool is [Delete]'s "was present" *)
  | Batched of op array * (int, E.t) result Ivar.t
      (** a per-shard batch slice; the int counts applied mutations *)
  | Quiesce of barrier

(* --- MPSC mailbox: bounded ring, mutex + condvars --------------------- *)

type mailbox = {
  mm : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  ring : msg option array;
  mutable head : int;  (* next slot to dequeue *)
  mutable len : int;
  mutable accepting : bool;  (* senders rejected once the store closes *)
  mutable stopping : bool;  (* worker exits after draining the backlog *)
}

let mailbox_create cap =
  {
    mm = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    ring = Array.make cap None;
    head = 0;
    len = 0;
    accepting = true;
    stopping = false;
  }

let send mb msg =
  Mutex.lock mb.mm;
  let cap = Array.length mb.ring in
  while mb.len = cap && mb.accepting do
    Condition.wait mb.not_full mb.mm
  done;
  if not mb.accepting then begin
    Mutex.unlock mb.mm;
    false
  end
  else begin
    mb.ring.((mb.head + mb.len) mod cap) <- Some msg;
    mb.len <- mb.len + 1;
    Condition.signal mb.not_empty;
    Mutex.unlock mb.mm;
    true
  end

(* Drain the whole backlog in one lock acquisition; [None] = shut down. *)
let drain mb =
  Mutex.lock mb.mm;
  while mb.len = 0 && not mb.stopping do
    Condition.wait mb.not_empty mb.mm
  done;
  if mb.len = 0 then begin
    Mutex.unlock mb.mm;
    None
  end
  else begin
    let cap = Array.length mb.ring in
    let n = mb.len in
    let out =
      Array.init n (fun i ->
          let slot = (mb.head + i) mod cap in
          let m = Option.get mb.ring.(slot) in
          mb.ring.(slot) <- None;
          m)
    in
    mb.head <- (mb.head + n) mod cap;
    mb.len <- 0;
    Condition.broadcast mb.not_full;
    Mutex.unlock mb.mm;
    Some out
  end

let shut_down mb =
  Mutex.lock mb.mm;
  mb.accepting <- false;
  mb.stopping <- true;
  Condition.broadcast mb.not_empty;
  Condition.broadcast mb.not_full;
  Mutex.unlock mb.mm

(* --- the sharded store ------------------------------------------------ *)

type shard = {
  store : H.Store.t;
  persist : Persist.t option;
  mb : mailbox;
  mutable domain : unit Domain.t option;
}

type shard_recovery = {
  shard : int;
  recovery : Persist.recovery;
}

type t = {
  cfg : H.Config.t;
  tab : shard array;
  recs : shard_recovery list;
  qlock : Mutex.t;  (* serializes quiesce barriers and close/crash *)
  mutable closed : bool;
}

let shards t = Array.length t.tab
let durable t = Array.length t.tab > 0 && t.tab.(0).persist <> None
let config t = t.cfg
let recoveries t = t.recs

let shard_dir ~dir i = Filename.concat dir (Printf.sprintf "shard-%03d" i)
let manifest_file ~dir = Filename.concat dir "MANIFEST"

let route_byte d b = b * d / 256
let shard_of_key t key = route_byte (Array.length t.tab) (Char.code key.[0])

(* --- worker ----------------------------------------------------------- *)

let apply_op sh op : (bool, E.t) result =
  match sh.persist with
  | Some p -> (
      match op with
      | Put (k, v) -> (
          match Persist.put p k v with Ok () -> Ok true | Error _ as e -> e)
      | Add k -> (
          match Persist.add p k with Ok () -> Ok true | Error _ as e -> e)
      | Delete k -> Persist.delete p k)
  | None -> (
      match op with
      | Put (k, v) -> (
          match H.Store.put_result sh.store k v with
          | Ok () -> Ok true
          | Error _ as e -> e)
      | Add k -> (
          match H.Store.add_result sh.store k with
          | Ok () -> Ok true
          | Error _ as e -> e)
      | Delete k -> H.Store.delete_result sh.store k)

let worker sh () =
  let handle = function
    | Mut (op, iv) -> Ivar.fill iv (apply_op sh op)
    | Batched (ops, iv) ->
        if T.enabled () then T.Histogram.observe_ns m_batch (Array.length ops);
        let n = Array.length ops in
        let rec go i applied =
          if i >= n then Ivar.fill iv (Ok applied)
          else
            match apply_op sh ops.(i) with
            | Ok _ -> go (i + 1) (applied + 1)
            | Error e -> Ivar.fill iv (Error e)
        in
        go 0 0
    | Quiesce b ->
        Mutex.lock b.bm;
        b.arrived <- b.arrived + 1;
        Condition.broadcast b.bc;
        while not b.released do
          Condition.wait b.bc b.bm
        done;
        Mutex.unlock b.bm
  in
  let rec loop () =
    match drain sh.mb with
    | None -> ()
    | Some msgs ->
        if T.enabled () then begin
          let n = Array.length msgs in
          T.Gauge.set g_mailbox_depth n;
          T.Gauge.set g_mailbox_hwm n;
          T.Histogram.observe_ns m_drain n
        end;
        Array.iter handle msgs;
        if T.enabled () then T.Gauge.set g_mailbox_depth 0;
        loop ()
  in
  loop ()

let start_workers tab =
  Array.iter (fun sh -> sh.domain <- Some (Domain.spawn (worker sh))) tab

(* --- construction ----------------------------------------------------- *)

let max_shards = 64  (* worker domains live for the store's lifetime *)

let check_geometry ~shards ~mailbox =
  if shards < 1 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "Hyperion_shard: shards must be in [1, %d]" max_shards);
  if mailbox < 1 then invalid_arg "Hyperion_shard: mailbox must be >= 1"

let create ?(config = H.Config.default) ?(shards = 4) ?(mailbox = 1024) () =
  check_geometry ~shards ~mailbox;
  let tab =
    Array.init shards (fun _ ->
        {
          store = H.Store.create ~config ();
          persist = None;
          mb = mailbox_create mailbox;
          domain = None;
        })
  in
  start_workers tab;
  { cfg = config; tab; recs = []; qlock = Mutex.create (); closed = false }

(* The manifest pins the shard count: reopening with a different partition
   would route keys to shards whose stores do not hold them. *)
let read_manifest dir =
  let path = manifest_file ~dir in
  if not (Sys.file_exists path) then Ok None
  else
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error msg -> Error (E.Io_error msg)
    | text -> (
        match int_of_string_opt (String.trim text) with
        | Some d when d >= 1 && d <= max_shards -> Ok (Some d)
        | _ ->
            Error
              (E.Io_error
                 (Printf.sprintf "%s: unreadable shard manifest %S" path text)))

let write_manifest dir d =
  try
    Out_channel.with_open_text (manifest_file ~dir) (fun oc ->
        Printf.fprintf oc "%d\n" d);
    Ok ()
  with Sys_error msg -> Error (E.Io_error msg)

let recovery_wave = 8  (* parallel recovery domains per wave *)

let open_durable ?(config = H.Config.default) ?shards ?sync_every_ops
    ?sync_every_bytes ?rotate_bytes ?(mailbox = 1024) dir =
  let ( let* ) = Result.bind in
  let* () =
    match
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise (Sys_error (dir ^ ": not a directory"))
    with
    | () -> Ok ()
    | exception Unix.Unix_error (e, fn, _) ->
        Error (E.Io_error (Printf.sprintf "%s: %s: %s" dir fn (Unix.error_message e)))
    | exception Sys_error msg -> Error (E.Io_error msg)
  in
  let* recorded = read_manifest dir in
  let* d =
    match (recorded, shards) with
    | Some d, None -> Ok d
    | Some d, Some requested when d = requested -> Ok d
    | Some d, Some requested ->
        Error
          (E.Io_error
             (Printf.sprintf
                "%s: directory is partitioned into %d shard(s), not %d"
                dir d requested))
    | None, requested ->
        let d = Option.value requested ~default:4 in
        check_geometry ~shards:d ~mailbox;
        let* () = write_manifest dir d in
        Ok d
  in
  check_geometry ~shards:d ~mailbox;
  (* Parallel recovery: one domain per shard, in bounded waves. *)
  let results = Array.make d (Error (E.Io_error "recovery never ran")) in
  let rec waves i =
    if i < d then begin
      let n = min recovery_wave (d - i) in
      let doms =
        Array.init n (fun j ->
            Domain.spawn (fun () ->
                Persist.open_or_create ~config ?sync_every_ops
                  ?sync_every_bytes ?rotate_bytes
                  (shard_dir ~dir (i + j))))
      in
      Array.iteri (fun j dom -> results.(i + j) <- Domain.join dom) doms;
      waves (i + n)
    end
  in
  waves 0;
  let first_error =
    Array.fold_left
      (fun acc r ->
        match (acc, r) with None, Error e -> Some e | _ -> acc)
      None results
  in
  match first_error with
  | Some e ->
      Array.iter
        (function Ok p -> ignore (Persist.close p) | Error _ -> ())
        results;
      Error e
  | None ->
      let handles =
        Array.map
          (function
            | Ok p -> p
            | Error e ->
                (* unreachable: [first_error = None] covers every slot *)
                E.fail e)
          results
      in
      let tab =
        Array.map
          (fun p ->
            {
              store = Persist.store p;
              persist = Some p;
              mb = mailbox_create mailbox;
              domain = None;
            })
          handles
      in
      let recs =
        Array.to_list
          (Array.mapi
             (fun i p -> { shard = i; recovery = Persist.recovery p })
             handles)
      in
      start_workers tab;
      Ok { cfg = config; tab; recs; qlock = Mutex.create (); closed = false }

(* --- blocking operations ---------------------------------------------- *)

let closed_error t = E.Io_error ((if durable t then "durable " else "") ^ "sharded store closed")

let submit t key op =
  let sh = t.tab.(shard_of_key t key) in
  let iv = Ivar.create () in
  if send sh.mb (Mut (op, iv)) then Ivar.read iv else Error (closed_error t)

let key_check key = H.Ops.key_error key

let put_result t key v =
  match key_check key with
  | Some e -> Error e
  | None -> (
      match submit t key (Put (key, v)) with
      | Ok _ -> Ok ()
      | Error _ as e -> e)

let add_result t key =
  match key_check key with
  | Some e -> Error e
  | None -> (
      match submit t key (Add key) with Ok _ -> Ok () | Error _ as e -> e)

let delete_result t key =
  match key_check key with
  | Some e -> Error e
  | None -> submit t key (Delete key)

let ok_or_raise = function Ok v -> v | Error e -> E.fail e

let put t key v =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  ok_or_raise (put_result t key v)

let add t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  ok_or_raise (add_result t key)

let delete t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  ok_or_raise (delete_result t key)

let get t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  H.Store.get t.tab.(shard_of_key t key).store key

let mem t key =
  if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
  H.Store.mem t.tab.(shard_of_key t key).store key

(* --- batched mutations ------------------------------------------------ *)

module Batch = struct
  type b = {
    owner : t;
    pending : op list array;  (* per shard, newest first *)
    mutable count : int;
  }

  let create owner =
    {
      owner;
      pending = Array.make (Array.length owner.tab) [];
      count = 0;
    }

  let push b key op =
    if String.length key = 0 then invalid_arg "Hyperion_shard: empty key";
    let i = shard_of_key b.owner key in
    b.pending.(i) <- op :: b.pending.(i);
    b.count <- b.count + 1

  let put b key v = push b key (Put (key, v))
  let add b key = push b key (Add key)
  let delete b key = push b key (Delete key)
  let length b = b.count

  let flush b =
    if b.count = 0 then Ok 0
    else begin
      let waits = ref [] and rejected = ref false in
      Array.iteri
        (fun i ops ->
          if ops <> [] then begin
            let slice = Array.of_list (List.rev ops) in
            b.pending.(i) <- [];
            let iv = Ivar.create () in
            if send b.owner.tab.(i).mb (Batched (slice, iv)) then
              waits := iv :: !waits
            else rejected := true
          end)
        b.pending;
      b.count <- 0;
      let rec collect applied err = function
        | [] -> (
            match err with
            | Some e -> Error e
            | None -> if !rejected then Error (closed_error b.owner) else Ok applied)
        | iv :: rest -> (
            match Ivar.read iv with
            | Ok n -> collect (applied + n) err rest
            | Error e ->
                (* waits is in reverse shard order, so the last error seen
                   (lowest shard) overwrites earlier ones *)
                collect applied (Some e) rest)
      in
      collect 0 None !waits
    end
end

(* --- quiescence barrier ----------------------------------------------- *)

let with_quiesced t f =
  let stores = Array.map (fun sh -> sh.store) t.tab in
  Mutex.lock t.qlock;
  if t.closed then
    (* workers are gone; the stores are frozen already *)
    Fun.protect ~finally:(fun () -> Mutex.unlock t.qlock) (fun () -> f stores)
  else begin
    let b =
      { bm = Mutex.create (); bc = Condition.create (); arrived = 0; released = false }
    in
    let t0 = if T.enabled () then T.now_ns () else 0 in
    let posted =
      Array.fold_left
        (fun n sh -> if send sh.mb (Quiesce b) then n + 1 else n)
        0 t.tab
    in
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.qlock)
      (fun () ->
        Mutex.lock b.bm;
        while b.arrived < posted do
          Condition.wait b.bc b.bm
        done;
        if T.enabled () then begin
          let d = T.now_ns () - t0 in
          T.Histogram.observe_ns m_quiesce d;
          T.Trace.maybe_record ~kind:"quiesce" ~key_len:(-1) ~dur_ns:d
        end;
        Fun.protect
          ~finally:(fun () ->
            b.released <- true;
            Condition.broadcast b.bc;
            Mutex.unlock b.bm)
          (fun () -> f stores))
  end

let iter t f =
  with_quiesced t (fun stores ->
      Array.iter (fun s -> H.Store.iter s f) stores)

let fold t ~init ~f =
  with_quiesced t (fun stores ->
      Array.fold_left (fun acc s -> H.Store.fold s ~init:acc ~f) init stores)

let length t =
  with_quiesced t (fun stores ->
      Array.fold_left (fun acc s -> acc + H.Store.length s) 0 stores)

let stats t =
  with_quiesced t (fun stores ->
      Array.fold_left
        (fun acc s -> H.Stats.add acc (H.Store.stats s))
        H.Stats.empty stores)

let memory_usage t =
  with_quiesced t (fun stores ->
      Array.fold_left (fun acc s -> acc + H.Store.memory_usage s) 0 stores)

let saturated_arenas t =
  with_quiesced t (fun stores ->
      Array.fold_left (fun acc s -> acc + H.Store.saturated_arenas s) 0 stores)

(* --- durability control ----------------------------------------------- *)

let first_error results =
  Array.fold_left
    (fun acc r -> match (acc, r) with None, Error e -> Some e | _ -> acc)
    None results

(* [sync]/[snapshot_now] go straight to the per-shard Persist handles: the
   handle serialises against its worker internally, and a quiescence
   barrier here would only narrow (not close) the race with in-flight
   mutations the caller has not been acknowledged for. *)
let on_handles t f =
  if t.closed then Error (closed_error t)
  else
    let results =
      Array.map
        (fun sh -> match sh.persist with Some p -> f p | None -> Ok ())
        t.tab
    in
    match first_error results with Some e -> Error e | None -> Ok ()

let sync t = on_handles t Persist.sync
let snapshot_now t = on_handles t Persist.snapshot_now

let stop_workers t =
  Mutex.lock t.qlock;
  if t.closed then begin
    Mutex.unlock t.qlock;
    false
  end
  else begin
    t.closed <- true;
    Array.iter (fun sh -> shut_down sh.mb) t.tab;
    Array.iter
      (fun sh ->
        match sh.domain with
        | Some d ->
            Domain.join d;
            sh.domain <- None
        | None -> ())
      t.tab;
    Mutex.unlock t.qlock;
    true
  end

let close t =
  if not (stop_workers t) then Ok ()
  else begin
    let results =
      Array.map
        (fun sh ->
          match sh.persist with Some p -> Persist.close p | None -> Ok ())
        t.tab
    in
    match first_error results with Some e -> Error e | None -> Ok ()
  end

let crash t =
  if stop_workers t then
    Array.iter
      (fun sh -> match sh.persist with Some p -> Persist.crash p | None -> ())
      t.tab
