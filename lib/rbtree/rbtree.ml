(* CLRS-style red-black tree with a shared nil sentinel. *)

type color = Red | Black

type node = {
  mutable key : string;
  mutable value : int64 option;
  mutable color : color;
  mutable left : node;
  mutable right : node;
  mutable parent : node;
}

type t = {
  mutable nil : node;
  mutable root : node;
  mutable count : int;
  mutable key_bytes : int;
}

let name = "RB-Tree"

let make_nil () =
  let rec nil =
    { key = ""; value = None; color = Black; left = nil; right = nil; parent = nil }
  in
  nil

let create () =
  let nil = make_nil () in
  { nil; root = nil; count = 0; key_bytes = 0 }

let left_rotate t x =
  let y = x.right in
  x.right <- y.left;
  if y.left != t.nil then y.left.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.left then x.parent.left <- y
  else x.parent.right <- y;
  y.left <- x;
  x.parent <- y

let right_rotate t x =
  let y = x.left in
  x.left <- y.right;
  if y.right != t.nil then y.right.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.right then x.parent.right <- y
  else x.parent.left <- y;
  y.right <- x;
  x.parent <- y

let rec insert_fixup t z =
  if z.parent.color = Red then begin
    if z.parent == z.parent.parent.left then begin
      let y = z.parent.parent.right in
      if y.color = Red then begin
        z.parent.color <- Black;
        y.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup t z.parent.parent
      end
      else begin
        (* CLRS case 2: rotate the old parent down, it becomes the new z *)
        let z =
          if z == z.parent.right then begin
            let p = z.parent in
            left_rotate t p;
            p
          end
          else z
        in
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        right_rotate t z.parent.parent;
        insert_fixup t z
      end
    end
    else begin
      let y = z.parent.parent.left in
      if y.color = Red then begin
        z.parent.color <- Black;
        y.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup t z.parent.parent
      end
      else begin
        let z =
          if z == z.parent.left then begin
            let p = z.parent in
            right_rotate t p;
            p
          end
          else z
        in
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        left_rotate t z.parent.parent;
        insert_fixup t z
      end
    end
  end

let put_opt t key value =
  let y = ref t.nil and x = ref t.root in
  let existing = ref None in
  while !x != t.nil && !existing = None do
    y := !x;
    let c = String.compare key !x.key in
    if c = 0 then existing := Some !x
    else if c < 0 then x := !x.left
    else x := !x.right
  done;
  match !existing with
  | Some n -> n.value <- value
  | None ->
      let z =
        {
          key;
          value;
          color = Red;
          left = t.nil;
          right = t.nil;
          parent = !y;
        }
      in
      if !y == t.nil then t.root <- z
      else if String.compare key !y.key < 0 then !y.left <- z
      else !y.right <- z;
      insert_fixup t z;
      t.root.color <- Black;
      t.count <- t.count + 1;
      t.key_bytes <- t.key_bytes + String.length key

let find_node t key =
  let rec go x =
    if x == t.nil then None
    else
      let c = String.compare key x.key in
      if c = 0 then Some x else if c < 0 then go x.left else go x.right
  in
  go t.root

let put t key value = put_opt t key (Some value)

let get t key = match find_node t key with Some n -> n.value | None -> None

let mem t key = find_node t key <> None

(* Like Hyperion's [Store.add]: ensure membership, but never disturb an
   existing binding's value. *)
let add t key = if not (mem t key) then put_opt t key None

let rec minimum t x = if x.left == t.nil then x else minimum t x.left

let transplant t u v =
  if u.parent == t.nil then t.root <- v
  else if u == u.parent.left then u.parent.left <- v
  else u.parent.right <- v;
  v.parent <- u.parent

let rec delete_fixup t x =
  if x != t.root && x.color = Black then begin
    if x == x.parent.left then begin
      let w = ref x.parent.right in
      if !w.color = Red then begin
        !w.color <- Black;
        x.parent.color <- Red;
        left_rotate t x.parent;
        w := x.parent.right
      end;
      if !w.left.color = Black && !w.right.color = Black then begin
        !w.color <- Red;
        delete_fixup t x.parent
      end
      else begin
        if !w.right.color = Black then begin
          !w.left.color <- Black;
          !w.color <- Red;
          right_rotate t !w;
          w := x.parent.right
        end;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        !w.right.color <- Black;
        left_rotate t x.parent
      end
    end
    else begin
      let w = ref x.parent.left in
      if !w.color = Red then begin
        !w.color <- Black;
        x.parent.color <- Red;
        right_rotate t x.parent;
        w := x.parent.left
      end;
      if !w.right.color = Black && !w.left.color = Black then begin
        !w.color <- Red;
        delete_fixup t x.parent
      end
      else begin
        if !w.left.color = Black then begin
          !w.right.color <- Black;
          !w.color <- Red;
          left_rotate t !w;
          w := x.parent.left
        end;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        !w.left.color <- Black;
        right_rotate t x.parent
      end
    end
  end
  else x.color <- Black

let delete t key =
  match find_node t key with
  | None -> false
  | Some z ->
      let y = ref z and y_orig_color = ref z.color in
      let x =
        if z.left == t.nil then begin
          let x = z.right in
          transplant t z z.right;
          x
        end
        else if z.right == t.nil then begin
          let x = z.left in
          transplant t z z.left;
          x
        end
        else begin
          y := minimum t z.right;
          y_orig_color := !y.color;
          let x = !y.right in
          if !y.parent == z then x.parent <- !y
          else begin
            transplant t !y !y.right;
            !y.right <- z.right;
            !y.right.parent <- !y
          end;
          transplant t z !y;
          !y.left <- z.left;
          !y.left.parent <- !y;
          !y.color <- z.color;
          x
        end
      in
      if !y_orig_color = Black then delete_fixup t x;
      if t.root != t.nil then t.root.color <- Black;
      t.nil.parent <- t.nil;
      t.count <- t.count - 1;
      t.key_bytes <- t.key_bytes - String.length key;
      true

let range t ?(start = "") f =
  let continue = ref true in
  let rec go x =
    if x != t.nil && !continue then begin
      if String.compare x.key start >= 0 then begin
        go x.left;
        if !continue && not (f x.key x.value) then continue := false;
        if !continue then go x.right
      end
      else go x.right
    end
  in
  go t.root

let length t = t.count

(* libstdc++ _Rb_tree_node: color + 3 pointers + payload (std::string key of
   32 bytes header with SSO, heap buffer when longer than 15 bytes, plus the
   8-byte value), each node a heap allocation. *)
let memory_usage t =
  let node_fixed = 8 (* color, padded *) + (3 * Kvcommon.Mem_model.pointer) in
  let string_header = 32 in
  let per_node = Kvcommon.Mem_model.malloc (node_fixed + string_header + 8) in
  let heap_strings =
    (* keys longer than the 15-byte SSO buffer spill to the heap; we charge
       the average via total key bytes *)
    t.key_bytes
  in
  (t.count * per_node) + Kvcommon.Mem_model.malloc heap_strings
