(** Red-black tree key-value store — the paper's [std::map] baseline.

    A classic top-down-balanced binary search tree implemented imperatively
    with parent pointers, as libstdc++'s [_Rb_tree] is.  Memory accounting
    follows the C++ layout: per node three pointers, one color word, the
    [std::string] key header plus its heap buffer, and the 8-byte value
    (see {!Kvcommon.Mem_model}). *)

include Kvcommon.Kv_intf.SET
(** [SET]: besides the valued API, keys can be stored without a value
    ({!add}), mirroring Hyperion's type-10 terminals — required of the
    chaos oracle now that recovered stores (which may hold value-less
    keys) seed it. *)
