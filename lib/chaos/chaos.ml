module H = Hyperion

type outcome = {
  ops : int;
  mutations_ok : int;
  mutations_failed : int;
  injected_faults : int;
  audits : int;
  saturation_errors : int;
  final_keys : int;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d ops: %d mutations ok, %d rejected (%d saturation), %d faults \
     injected, %d audits, %d keys stored"
    o.ops o.mutations_ok o.mutations_failed o.saturation_errors
    o.injected_faults o.audits o.final_keys

exception Divergence of string

(* Deterministic key shapes: a mix of short, suffixed and prefixed keys so
   the workload exercises path compression, embedded containers and multi-
   container paths, while the same id always denotes the same key. *)
let key_for id =
  let base = Printf.sprintf "%06x" id in
  match id mod 5 with
  | 0 -> base
  | 1 -> base ^ "-tail"
  | 2 -> base ^ String.make (8 + (id mod 40)) 'x'
  | 3 -> "pfx/" ^ base
  | _ -> base ^ "!"

let run ?(config = H.Config.default) ?(compress = Compress.Identity)
    ?(plan = Fault.none) ?(validate_every = 1000) ?(key_space = 4096)
    ?(heapcheck = true) ?on_op ?store ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run: negative ops";
  if key_space <= 0 then invalid_arg "Chaos.run: key_space must be positive";
  if validate_every <= 0 then
    invalid_arg "Chaos.run: validate_every must be positive";
  let rng = Workload.Mt19937_64.create seed in
  let store =
    match store with Some s -> s | None -> H.Store.create ~config ()
  in
  H.Store.set_fault_plan store plan;
  (* The encoder sits where the shard/CLI front doors put it: the store
     only ever sees encoded keys, the oracle only raw ones, and the final
     sweep decodes on the way out — so the run also differentially tests
     the encode/decode round trip under every fault the plan fires. *)
  let enc_key = Compress.encode compress in
  let dec_key op ek =
    match Compress.decode compress ek with
    | Ok k -> k
    | Error why -> raise (Divergence (Printf.sprintf
        "chaos seed=%Ld op=%d: stored key %S fails to decode: %s"
        seed op ek why))
  in
  let oracle = Rbtree.create () in
  (* A pre-existing (e.g. just-recovered) store seeds the oracle, so the
     differential run starts from agreement instead of a false divergence. *)
  H.Store.iter store (fun ek v ->
      let k = dec_key (-1) ek in
      match v with Some v -> Rbtree.put oracle k v | None -> Rbtree.add oracle k);
  let mutations_ok = ref 0
  and mutations_failed = ref 0
  and audits = ref 0
  and saturation_errors = ref 0 in
  let diverge op fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Divergence
             (Printf.sprintf "chaos seed=%Ld op=%d: %s; plan: %s" seed op msg
                (Fault.describe plan))))
      fmt
  in
  (* Every audit round also fires a mixed hit/miss batch through the
     pipelined cursor engine: get_many/mem_many must agree with the
     oracle key-for-key under whatever container churn (splices, ejects,
     splits, rolled-back faults) the run has produced so far — the
     negative-lookup tags in particular must still admit every present
     key.  The "\x01#" suffix never occurs in [key_for] output, so those
     probes are guaranteed misses. *)
  let batch_audit op =
    let w = 8 + Workload.Mt19937_64.next_below rng 41 in
    let keys =
      Array.init w (fun _ ->
          let key = key_for (Workload.Mt19937_64.next_below rng key_space) in
          if Workload.Mt19937_64.next_below rng 4 = 0 then key ^ "\x01#"
          else key)
    in
    let width = 1 + Workload.Mt19937_64.next_below rng 32 in
    let ekeys = Array.map enc_key keys in
    let got = H.Store.get_many ~width store ekeys in
    let mems = H.Store.mem_many ~width store ekeys in
    Array.iteri
      (fun i key ->
        let ov = Rbtree.get oracle key in
        if got.(i) <> ov then
          diverge op "batched lookup mismatch on %S (width %d): hyperion=%s \
                      oracle=%s"
            key width
            (match got.(i) with Some v -> Int64.to_string v | None -> "absent")
            (match ov with Some v -> Int64.to_string v | None -> "absent");
        if mems.(i) <> Rbtree.mem oracle key then
          diverge op "batched mem mismatch on %S (width %d): hyperion=%b \
                      oracle=%b"
            key width mems.(i)
            (Rbtree.mem oracle key))
      keys
  in
  let audit op =
    incr audits;
    (match H.Validate.check_store store with
    | [] -> ()
    | errs ->
        diverge op "audit found %d structural violation(s); first: %s"
          (List.length errs)
          (Format.asprintf "%a" H.Validate.pp_error (List.hd errs)));
    (* Heap sanitizer: the record structure can be sound while the
       allocator underneath leaks or double-references chunks, so every
       audit round also mark-and-sweeps the arenas (DESIGN.md section 11). *)
    if heapcheck then
      (match
         Analyze.Heapcheck.first_problem (Analyze.Heapcheck.audit_store store)
       with
      | None -> ()
      | Some p -> diverge op "heap audit: %s" p);
    batch_audit op
  in
  let check_key op key =
    let hv = H.Store.get store (enc_key key) and ov = Rbtree.get oracle key in
    if hv <> ov then
      diverge op "lookup mismatch on %S: hyperion=%s oracle=%s" key
        (match hv with Some v -> Int64.to_string v | None -> "absent")
        (match ov with Some v -> Int64.to_string v | None -> "absent")
  in
  let note_error e =
    incr mutations_failed;
    if e = H.Hyperion_error.Arena_saturated then incr saturation_errors
  in
  try
    for op = 0 to ops - 1 do
      let fired_before = Fault.fired_count plan in
      let id = Workload.Mt19937_64.next_below rng key_space in
      let key = key_for id in
      let dice = Workload.Mt19937_64.next_below rng 100 in
      (if dice < 55 then begin
         let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
         match H.Store.put_result store (enc_key key) v with
         | Ok () ->
             incr mutations_ok;
             Rbtree.put oracle key v
         | Error e ->
             note_error e;
             (* a rejected put must leave the old binding intact *)
             check_key op key
       end
       else if dice < 75 then begin
         match H.Store.delete_result store (enc_key key) with
         | Ok removed ->
             incr mutations_ok;
             let oracle_removed = Rbtree.delete oracle key in
             if removed <> oracle_removed then
               diverge op "delete %S: hyperion=%b oracle=%b" key removed
                 oracle_removed
         | Error e ->
             note_error e;
             check_key op key
       end
       else if dice < 95 then check_key op key
       else if H.Store.length store <> Rbtree.length oracle then
         diverge op "length mismatch: hyperion=%d oracle=%d"
           (H.Store.length store) (Rbtree.length oracle));
      if Fault.fired_count plan > fired_before then audit op
      else if (op + 1) mod validate_every = 0 then audit op;
      match on_op with Some f -> f op | None -> ()
    done;
    audit ops;
    (* Final full sweep: same bindings, same order. *)
    let expected = ref [] in
    Rbtree.range oracle (fun k v ->
        expected := (k, v) :: !expected;
        true);
    let expected = ref (List.rev !expected) in
    let sweep_pos = ref 0 in
    H.Store.range store (fun ek v ->
        let k = dec_key ops ek in
        (match !expected with
        | [] -> diverge ops "sweep: extra key %S in hyperion" k
        | (ek, ev) :: rest ->
            if k <> ek || v <> ev then
              diverge ops "sweep at #%d: hyperion has %S, oracle has %S"
                !sweep_pos k ek;
            expected := rest);
        incr sweep_pos;
        true);
    (match !expected with
    | [] -> ()
    | (ek, _) :: _ -> diverge ops "sweep: key %S missing from hyperion" ek);
    Ok
      {
        ops;
        mutations_ok = !mutations_ok;
        mutations_failed = !mutations_failed;
        injected_faults = Fault.fired_count plan;
        audits = !audits;
        saturation_errors = !saturation_errors;
        final_keys = H.Store.length store;
      }
  with Divergence msg -> Error msg

(* --- sharded chaos: concurrent clients over the multi-domain front-end *)

type sharded_outcome = {
  sh_shards : int;
  sh_clients : int;
  sh_ops : int;
  sh_mutations : int;
  sh_batched : int;
  sh_audits : int;
  sh_final_keys : int;
  sh_recovered_shards : int;
  sh_replayed : int;
}

let pp_sharded_outcome fmt o =
  Format.fprintf fmt
    "%d ops over %d client(s) x %d shard(s): %d mutations (%d batched), %d \
     quiesced audits, %d keys stored%s"
    o.sh_ops o.sh_clients o.sh_shards o.sh_mutations o.sh_batched o.sh_audits
    o.sh_final_keys
    (if o.sh_recovered_shards > 0 then
       Printf.sprintf "; crash-recovered %d shard(s), %d WAL op(s) replayed"
         o.sh_recovered_shards o.sh_replayed
     else "")

(* One client's acknowledged mutations, in acknowledgement order.  Clients
   own disjoint key sets (ids congruent to the client index), so the final
   store state is deterministic in the seed: replaying every client's log
   sequentially — in any client order — yields the same bindings. *)
type client_report = {
  cr_log : logged_op list;  (* reversed: newest first *)
  cr_mutations : int;
  cr_batched : int;
  cr_error : string option;
}

and logged_op = L_put of string * int64 | L_add of string | L_del of string

let wipe_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

(* Remove a two-level durability tree: <dir>/shard-NNN/* then <dir>. *)
let wipe_tree dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f ->
        let p = Filename.concat dir f in
        if Sys.is_directory p then wipe_dir p
        else try Sys.remove p with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let client_seed ~seed c = Int64.add seed (Int64.mul (Int64.of_int (c + 1)) 1_000_003L)

let run_sharded_client store ~seed ~clients ~c ~ops ~key_space =
  let rng = Workload.Mt19937_64.create (client_seed ~seed c) in
  let slots = max 1 (key_space / clients) in
  let expected : (string, int64 option) Hashtbl.t = Hashtbl.create 64 in
  let log = ref [] and mutations = ref 0 and batched = ref 0 in
  let batch = Hyperion_shard.Batch.create store in
  (* mutations buffered in [batch] and not yet visible; applied to
     [expected] (and the log) only when the flush is acknowledged *)
  let pending = ref [] in
  let pending_has key =
    List.exists
      (function
        | L_put (k, _) | L_add k | L_del k -> k = key)
      !pending
  in
  let err = ref None in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        if !err = None then
          err := Some (Printf.sprintf "client %d seed=%Ld: %s" c seed msg))
      fmt
  in
  let apply_expected = function
    | L_put (k, v) -> Hashtbl.replace expected k (Some v)
    | L_add k ->
        (* add is "insert if absent": an existing binding keeps its value *)
        if not (Hashtbl.mem expected k) then Hashtbl.replace expected k None
    | L_del k -> Hashtbl.remove expected k
  in
  let flush () =
    match !pending with
    | [] -> ()
    | ps -> (
        let n = List.length ps in
        match Hyperion_shard.Batch.flush batch with
        | Ok applied when applied = n ->
            List.iter
              (fun op ->
                apply_expected op;
                log := op :: !log;
                incr mutations;
                incr batched)
              (List.rev ps);
            pending := []
        | Ok applied ->
            fail "batch flush applied %d of %d buffered mutations" applied n
        | Error e ->
            fail "batch flush rejected: %s" (H.Hyperion_error.to_string e))
  in
  let direct op =
    let r =
      match op with
      | L_put (k, v) -> Hyperion_shard.put_result store k v
      | L_add k -> Hyperion_shard.add_result store k
      | L_del k -> (
          let present = Hashtbl.mem expected k in
          match Hyperion_shard.delete_result store k with
          | Ok removed ->
              if removed <> present then
                fail "delete %S: store=%b expected=%b" k removed present;
              Ok ()
          | Error e -> Error e)
    in
    match r with
    | Ok () ->
        apply_expected op;
        log := op :: !log;
        incr mutations
    | Error e -> fail "mutation rejected: %s" (H.Hyperion_error.to_string e)
  in
  let n_ops = ops in
  (try
     for _op = 0 to n_ops - 1 do
       if !err = None then begin
         let id = c + (clients * Workload.Mt19937_64.next_below rng slots) in
         let key = key_for id in
         let dice = Workload.Mt19937_64.next_below rng 100 in
         if dice < 30 then begin
           (* direct blocking put *)
           let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
           direct (L_put (key, v))
         end
         else if dice < 45 then begin
           (* batched put/add, flushed every 8 buffered mutations *)
           let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
           let op =
             if dice < 42 then L_put (key, v) else L_add key
           in
           (match op with
           | L_put (k, v) -> Hyperion_shard.Batch.put batch k v
           | L_add k -> Hyperion_shard.Batch.add batch k
           | L_del _ -> assert false);
           pending := op :: !pending;
           if Hyperion_shard.Batch.length batch >= 8 then flush ()
         end
         else if dice < 55 then direct (L_add key)
         else if dice < 70 then begin
           if pending_has key then flush ();
           direct (L_del key)
         end
         else if dice < 90 then begin
           if pending_has key then flush ();
           let got = Hyperion_shard.get store key in
           let want = Option.join (Hashtbl.find_opt expected key) in
           if got <> want then
             fail "get %S: store=%s expected=%s" key
               (match got with Some v -> Int64.to_string v | None -> "absent")
               (match want with Some v -> Int64.to_string v | None -> "absent")
         end
         else if dice < 96 then begin
           if pending_has key then flush ();
           let got = Hyperion_shard.mem store key in
           let want = Hashtbl.mem expected key in
           if got <> want then fail "mem %S: store=%b expected=%b" key got want
         end
         else begin
           (* Mixed hit/miss batch through the direct-door pipelined read
              path.  Clients own disjoint id slices and the "\x01#"
              suffix never occurs in [key_for] output, so every probe is
              either this client's key or a guaranteed miss — the model
              answer is exact even with other clients mutating. *)
           flush ();
           let w = 4 + Workload.Mt19937_64.next_below rng 13 in
           let ks =
             Array.init w (fun _ ->
                 let id =
                   c + (clients * Workload.Mt19937_64.next_below rng slots)
                 in
                 let k = key_for id in
                 if Workload.Mt19937_64.next_below rng 4 = 0 then k ^ "\x01#"
                 else k)
           in
           let width = 1 + Workload.Mt19937_64.next_below rng 8 in
           let got = Hyperion_shard.get_many ~width store ks in
           let mems = Hyperion_shard.mem_many ~width store ks in
           Array.iteri
             (fun i k ->
               let want = Option.join (Hashtbl.find_opt expected k) in
               if got.(i) <> want then
                 fail "batched get %S (width %d): store=%s expected=%s" k width
                   (match got.(i) with
                   | Some v -> Int64.to_string v
                   | None -> "absent")
                   (match want with
                   | Some v -> Int64.to_string v
                   | None -> "absent");
               if mems.(i) <> Hashtbl.mem expected k then
                 fail "batched mem %S (width %d): store=%b expected=%b" k width
                   mems.(i) (Hashtbl.mem expected k))
             ks
         end
       end
     done;
     flush ()
   with e ->
     fail "client raised %s" (Printexc.to_string e));
  { cr_log = !log; cr_mutations = !mutations; cr_batched = !batched; cr_error = !err }

(* Quiesced audit: structural validation of every shard store plus the
   iter/length point-in-time consistency check and (unless disabled) the
   per-shard heap sanitizer — with the workers parked at the barrier no
   mutator can race the mark-and-sweep. *)
let sharded_audit ~heapcheck store =
  Hyperion_shard.with_quiesced store (fun stores ->
      let problem = ref None in
      Array.iteri
        (fun i s ->
          if !problem = None then begin
            (match H.Validate.check_store s with
            | [] -> ()
            | e :: _ ->
                problem :=
                  Some
                    (Printf.sprintf "shard %d: %s" i
                       (Format.asprintf "%a" H.Validate.pp_error e)));
            let swept = ref 0 in
            H.Store.iter s (fun _ _ -> incr swept);
            if !problem = None && !swept <> H.Store.length s then
              problem :=
                Some
                  (Printf.sprintf "shard %d: iter visited %d keys, length says %d"
                     i !swept (H.Store.length s));
            if !problem = None && heapcheck then
              match
                Analyze.Heapcheck.first_problem (Analyze.Heapcheck.audit_store s)
              with
              | None -> ()
              | Some p ->
                  problem := Some (Printf.sprintf "shard %d: heap audit: %s" i p)
          end)
        stores;
      !problem)

let sweep_against_oracle ~what store oracle =
  let expected = ref [] in
  Rbtree.range oracle (fun k v ->
      expected := (k, v) :: !expected;
      true);
  let expected = ref (List.rev !expected) in
  let problem = ref None in
  Hyperion_shard.iter store (fun k v ->
      if !problem = None then
        match !expected with
        | [] -> problem := Some (Printf.sprintf "%s: extra key %S" what k)
        | (ek, ev) :: rest ->
            if k <> ek || v <> ev then
              problem :=
                Some
                  (Printf.sprintf "%s: store has %S/%s, oracle has %S/%s" what k
                     (match v with Some v -> Int64.to_string v | None -> "-")
                     ek
                     (match ev with Some v -> Int64.to_string v | None -> "-"))
            else expected := rest);
  (match (!problem, !expected) with
  | None, (ek, _) :: _ ->
      problem := Some (Printf.sprintf "%s: key %S missing from store" what ek)
  | _ -> ());
  !problem

(* Mixed hit/miss batch of the sharded front-end against the merged
   oracle: a sample of present keys plus guaranteed-absent variants, read
   back via [get_many]/[mem_many].  Run after the ordered sweep — and
   again after crash recovery, where the replay rebuilds every container
   (negative-lookup tags included) from the WAL. *)
let batched_vs_oracle ~what store oracle =
  let present = ref [] and n = ref 0 in
  Rbtree.range oracle (fun k _ ->
      present := k :: !present;
      incr n;
      !n < 96);
  let present = Array.of_list !present in
  let misses =
    Array.map
      (fun k -> k ^ "\x01#")
      (Array.sub present 0 (min 32 (Array.length present)))
  in
  let keys = Array.append present misses in
  if Array.length keys = 0 then None
  else begin
    let got = Hyperion_shard.get_many ~width:16 store keys in
    let mems = Hyperion_shard.mem_many ~width:16 store keys in
    let problem = ref None in
    Array.iteri
      (fun i k ->
        if !problem = None then
          if got.(i) <> Rbtree.get oracle k then
            problem :=
              Some
                (Printf.sprintf "%s: batched get %S: store=%s oracle=%s" what k
                   (match got.(i) with
                   | Some v -> Int64.to_string v
                   | None -> "absent")
                   (match Rbtree.get oracle k with
                   | Some v -> Int64.to_string v
                   | None -> "absent"))
          else if mems.(i) <> Rbtree.mem oracle k then
            problem :=
              Some
                (Printf.sprintf "%s: batched mem %S: store=%b oracle=%b" what k
                   mems.(i) (Rbtree.mem oracle k)))
      keys;
    !problem
  end

let run_sharded ?(config = H.Config.default) ?(shards = 4) ?clients
    ?(key_space = 4096) ?(heapcheck = true) ?dir ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run_sharded: negative ops";
  if shards < 1 then invalid_arg "Chaos.run_sharded: shards must be positive";
  if key_space <= 0 then
    invalid_arg "Chaos.run_sharded: key_space must be positive";
  let clients = match clients with Some c -> max 1 c | None -> min shards 4 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Error (Printf.sprintf "sharded chaos seed=%Ld shards=%d: %s" seed shards msg))
      fmt
  in
  let err_to_string = H.Hyperion_error.to_string in
  let crash_dir =
    Option.map
      (fun d -> Filename.concat d (Printf.sprintf "shard-chaos-%Ld" seed))
      dir
  in
  Option.iter wipe_tree crash_dir;
  let opened =
    match crash_dir with
    | None -> Ok (Hyperion_shard.create ~config ~shards ())
    | Some d ->
        Hyperion_shard.open_durable ~config ~shards ~sync_every_ops:16
          ~rotate_bytes:8192 d
  in
  match opened with
  | Error e -> fail "open: %s" (err_to_string e)
  | Ok store -> (
      let per_client = ops / clients in
      let finished = Atomic.make 0 in
      let doms =
        List.init clients (fun c ->
            let ops =
              if c = 0 then per_client + (ops mod clients) else per_client
            in
            Domain.spawn (fun () ->
                let r =
                  run_sharded_client store ~seed ~clients ~c ~ops ~key_space
                in
                Atomic.incr finished;
                r))
      in
      (* Coordinator: quiesced audits while the clients hammer the store. *)
      let audits = ref 0 and audit_problem = ref None in
      while Atomic.get finished < clients && !audit_problem = None do
        (match sharded_audit ~heapcheck store with
        | Some p -> audit_problem := Some p
        | None -> ());
        incr audits;
        Unix.sleepf 0.002
      done;
      let reports = List.map Domain.join doms in
      match
        ( !audit_problem,
          List.find_map (fun r -> r.cr_error) reports )
      with
      | Some p, _ -> fail "concurrent audit: %s" p
      | None, Some e -> fail "%s" e
      | None, None -> (
          (* Final audit + full sweep against the merged oracle. *)
          (match sharded_audit ~heapcheck store with
          | Some p -> incr audits; audit_problem := Some p
          | None -> incr audits);
          match !audit_problem with
          | Some p -> fail "final audit: %s" p
          | None -> (
              let oracle = Rbtree.create () in
              List.iter
                (fun r ->
                  List.iter
                    (function
                      | L_put (k, v) -> Rbtree.put oracle k v
                      | L_add k -> Rbtree.add oracle k
                      | L_del k -> ignore (Rbtree.delete oracle k))
                    (List.rev r.cr_log))
                reports;
              match
                (match
                   sweep_against_oracle ~what:"post-workload sweep" store oracle
                 with
                | Some _ as p -> p
                | None ->
                    batched_vs_oracle ~what:"post-workload batch" store oracle)
              with
              | Some p -> fail "%s" p
              | None -> (
                  let mutations =
                    List.fold_left (fun a r -> a + r.cr_mutations) 0 reports
                  in
                  let batched =
                    List.fold_left (fun a r -> a + r.cr_batched) 0 reports
                  in
                  let final_keys = Hyperion_shard.length store in
                  if final_keys <> Rbtree.length oracle then
                    fail "length: store=%d oracle=%d" final_keys
                      (Rbtree.length oracle)
                  else
                    let finish_in_memory () =
                      (match Hyperion_shard.close store with
                      | Ok () -> ()
                      | Error _ -> ());
                      Ok
                        {
                          sh_shards = shards;
                          sh_clients = clients;
                          sh_ops = ops;
                          sh_mutations = mutations;
                          sh_batched = batched;
                          sh_audits = !audits;
                          sh_final_keys = final_keys;
                          sh_recovered_shards = 0;
                          sh_replayed = 0;
                        }
                    in
                    let crash_and_recover d =
                      (* Crash-recovery phase: group-commit everything, kill
                         the process image, reopen per-shard (parallel
                         recovery) and demand the byte-identical state. *)
                      let ( let* ) = Result.bind in
                      let closing store2 r =
                        match r with
                        | Ok _ as ok -> ok
                        | Error _ as e ->
                            ignore (Hyperion_shard.close store2);
                            e
                      in
                      let* () =
                        match Hyperion_shard.sync store with
                        | Ok () -> Ok ()
                        | Error e -> fail "pre-crash sync: %s" (err_to_string e)
                      in
                      Hyperion_shard.crash store;
                      let* store2 =
                        match
                          Hyperion_shard.open_durable ~config ~shards
                            ~sync_every_ops:16 ~rotate_bytes:8192 d
                        with
                        | Ok s -> Ok s
                        | Error e -> fail "reopen: %s" (err_to_string e)
                      in
                      let recs = Hyperion_shard.recoveries store2 in
                      let replayed =
                        List.fold_left
                          (fun a r ->
                            a + r.Hyperion_shard.recovery.Persist.replayed_ops)
                          0 recs
                      in
                      let* () =
                        closing store2
                          (match
                             (match
                                sweep_against_oracle
                                  ~what:"post-recovery sweep" store2 oracle
                              with
                             | Some _ as p -> p
                             | None ->
                                 batched_vs_oracle ~what:"post-recovery batch"
                                   store2 oracle)
                           with
                          | Some p -> fail "%s" p
                          | None -> Ok ())
                      in
                      let* () =
                        closing store2
                          (match sharded_audit ~heapcheck store2 with
                          | Some p -> fail "post-recovery audit: %s" p
                          | None -> Ok ())
                      in
                      (* liveness: the recovered front-end still accepts
                         mutations *)
                      let* () =
                        closing store2
                          (match
                             Hyperion_shard.put_result store2
                               "post/recovery/probe" 1L
                           with
                          | Ok () -> Ok ()
                          | Error e ->
                              fail "post-recovery put: %s" (err_to_string e))
                      in
                      let* () =
                        match Hyperion_shard.close store2 with
                        | Ok () -> Ok ()
                        | Error e ->
                            fail "post-recovery close: %s" (err_to_string e)
                      in
                      wipe_tree d;
                      Ok
                        {
                          sh_shards = shards;
                          sh_clients = clients;
                          sh_ops = ops;
                          sh_mutations = mutations;
                          sh_batched = batched;
                          sh_audits = !audits;
                          sh_final_keys = final_keys;
                          sh_recovered_shards = List.length recs;
                          sh_replayed = replayed;
                        }
                    in
                    match crash_dir with
                    | None -> finish_in_memory ()
                    | Some d -> crash_and_recover d))))

(* --- crash-recovery chaos (DESIGN.md section 8 crash matrix) --------- *)

type crash_outcome = {
  ops_logged : int;
  acked : int;
  recovered : int;
  cut_bytes : int;
  rotations : int;
  scenario : string;
}

let pp_crash_outcome fmt o =
  Format.fprintf fmt
    "%d ops logged (%d acked), killed via %s cutting %d byte(s), %d \
     rotation(s), recovered %d ops"
    o.ops_logged o.acked o.scenario o.cut_bytes o.rotations o.recovered

let run_crash ?(config = H.Config.default) ?(key_space = 2048)
    ?(sync_every_ops = 16) ?(rotate_bytes = 8192) ?(heapcheck = true) ~dir
    ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run_crash: negative ops";
  if key_space <= 0 then
    invalid_arg "Chaos.run_crash: key_space must be positive";
  let dir = Filename.concat dir (Printf.sprintf "crash-%Ld" seed) in
  wipe_dir dir;
  let rng = Workload.Mt19937_64.create seed in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> Error (Printf.sprintf "crash chaos seed=%Ld: %s" seed msg))
      fmt
  in
  let err_to_string = H.Hyperion_error.to_string in
  match
    Persist.open_or_create ~config ~sync_every_ops ~rotate_bytes dir
  with
  | Error e -> fail "initial open: %s" (err_to_string e)
  | Ok p -> (
      (* Seeded workload through the logged handle; [log] keeps exactly the
         mutations that reached the WAL, in order. *)
      let log = ref [] and logged = ref 0 in
      let record op =
        log := op :: !log;
        incr logged
      in
      let rec drive op_i =
        if op_i >= ops then Ok ()
        else
          let id = Workload.Mt19937_64.next_below rng key_space in
          let key = key_for id in
          let dice = Workload.Mt19937_64.next_below rng 100 in
          let step =
            if dice < 50 then
              let v =
                Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000)
              in
              match Persist.put p key v with
              | Ok () ->
                  record (L_put (key, v));
                  Ok ()
              | Error e -> Error e
            else if dice < 65 then
              match Persist.add p key with
              | Ok () ->
                  record (L_add key);
                  Ok ()
              | Error e -> Error e
            else
              match Persist.delete p key with
              | Ok true ->
                  record (L_del key);
                  Ok ()
              | Ok false -> Ok ()
              | Error e -> Error e
          in
          match step with Ok () -> drive (op_i + 1) | Error _ as e -> e
      in
      match drive 0 with
      | Error e -> fail "workload: %s" (err_to_string e)
      | Ok () -> (
          let ops_log = Array.of_list (List.rev !log) in
          let gen = Persist.generation p in
          let base = Persist.snapshot_base p in
          let durable = Persist.durable_ops p in
          let watermark = Persist.wal_synced_bytes p in
          let size = Persist.wal_size p in
          let rotations = Persist.rotations p in
          Persist.crash p;
          (* Kill at a uniformly random WAL offset at or past the durable
             watermark (the crash model: fsynced bytes survive, anything
             later may tear — including mid-record). *)
          let cut = watermark + Workload.Mt19937_64.next_below rng (size - watermark + 1) in
          let wal_path = Persist.wal_file ~dir ~gen in
          Unix.truncate wal_path cut;
          let snap_path = Persist.snapshot_file ~dir ~gen in
          let scenario_dice = Workload.Mt19937_64.next_below rng 100 in
          let scenario =
            if scenario_dice < 30 then begin
              (* crash mid-rotation, while the next snapshot was still being
                 streamed to its .tmp file *)
              let tmp = Persist.snapshot_file ~dir ~gen:(gen + 1) ^ ".tmp" in
              let oc = open_out_bin tmp in
              output_string oc (String.init (Workload.Mt19937_64.next_below rng 512) (fun i -> Char.chr ((i * 37) land 0xff)));
              close_out oc;
              "wal-cut+partial-tmp-snapshot"
            end
            else if scenario_dice < 50 then begin
              (* a newer snapshot that never became fully durable: recovery
                 must skip it and fall back to generation [gen] *)
              let snap = In_channel.with_open_bin snap_path In_channel.input_all in
              let cut_snap =
                Workload.Mt19937_64.next_below rng (String.length snap)
              in
              let oc = open_out_bin (Persist.snapshot_file ~dir ~gen:(gen + 1)) in
              output_string oc (String.sub snap 0 cut_snap);
              close_out oc;
              "wal-cut+torn-next-snapshot"
            end
            else "wal-cut"
          in
          match
            Persist.open_or_create ~config ~sync_every_ops ~rotate_bytes dir
          with
          | Error e -> fail "reopen after %s: %s" scenario (err_to_string e)
          | Ok p2 -> (
              let r = Persist.recovery p2 in
              let recovered = base + r.Persist.replayed_ops in
              if r.Persist.generation <> gen then
                fail "recovered from generation %d, expected %d"
                  r.Persist.generation gen
              else if recovered < durable then
                fail
                  "acknowledged ops lost: %d durable at crash, only %d \
                   recovered (%s, cut=%d)"
                  durable recovered scenario cut
              else if recovered > !logged then
                fail "recovered %d ops but only %d were ever logged" recovered
                  !logged
              else begin
                (* The recovered store must equal the oracle's replay of
                   exactly the first [recovered] logged mutations. *)
                let oracle = Rbtree.create () in
                Array.iteri
                  (fun i op ->
                    if i < recovered then
                      match op with
                      | L_put (k, v) -> Rbtree.put oracle k v
                      | L_add k -> Rbtree.add oracle k
                      | L_del k -> ignore (Rbtree.delete oracle k))
                  ops_log;
                let store = Persist.store p2 in
                let divergence = ref None in
                let expected = ref [] in
                Rbtree.range oracle (fun k v ->
                    expected := (k, v) :: !expected;
                    true);
                let expected = ref (List.rev !expected) in
                H.Store.range store (fun k v ->
                    (match !expected with
                    | [] ->
                        divergence := Some (Printf.sprintf "extra key %S" k)
                    | (ek, ev) :: rest ->
                        if k <> ek || v <> ev then
                          divergence :=
                            Some
                              (Printf.sprintf "store has %S, oracle has %S" k ek)
                        else expected := rest);
                    !divergence = None);
                (match (!divergence, !expected) with
                | None, (ek, _) :: _ ->
                    divergence := Some (Printf.sprintf "missing key %S" ek)
                | _ -> ());
                match !divergence with
                | Some d ->
                    fail "post-recovery dump diverges (%s, cut=%d): %s"
                      scenario cut d
                | None -> (
                    let audit_problem =
                      match H.Validate.check_store store with
                      | e :: _ ->
                          Some (Format.asprintf "%a" H.Validate.pp_error e)
                      | [] ->
                          (* [Persist.open_or_create] already heap-audits
                             the recovered store; this second pass covers
                             the replayed-WAL + oracle-diffed state under
                             the same reporting as the other chaos modes. *)
                          if heapcheck then
                            Option.map (( ^ ) "heap audit: ")
                              (Analyze.Heapcheck.first_problem
                                 (Analyze.Heapcheck.audit_store store))
                          else None
                    in
                    match audit_problem with
                    | Some why -> fail "post-recovery audit: %s" why
                    | None -> (
                        (* liveness: the recovered handle must still accept
                           and persist new mutations *)
                        match Persist.put p2 "post/recovery/probe" 1L with
                        | Error e -> fail "post-recovery put: %s" (err_to_string e)
                        | Ok () -> (
                            match Persist.close p2 with
                            | Error e ->
                                fail "post-recovery close: %s" (err_to_string e)
                            | Ok () ->
                                wipe_dir dir;
                                Ok
                                  {
                                    ops_logged = !logged;
                                    acked = durable;
                                    recovered;
                                    cut_bytes = size - cut;
                                    rotations;
                                    scenario;
                                  })))
              end)))

(* --- disk-fault chaos: seeded I/O faults, degraded mode, supervision -- *)

module Io = Persist.Io

type diskfault_outcome = {
  df_ops : int;
  df_acked : int;
  df_rejected : int;
  df_injected : int;
  df_heals : int;
  df_audits : int;
  df_recovered : int;
  df_final_keys : int;
}

let pp_diskfault_outcome fmt o =
  Format.fprintf fmt
    "%d ops: %d acked, %d rejected, %d I/O fault(s) injected, %d degraded \
     cycle(s) healed, %d audits, recovered %d ops after the final crash, %d \
     keys stored"
    o.df_ops o.df_acked o.df_rejected o.df_injected o.df_heals o.df_audits
    o.df_recovered o.df_final_keys

(* Exact sweep of a plain store against the oracle (the sharded modes have
   [sweep_against_oracle] for the front-end). *)
let store_matches_oracle store oracle =
  let expected = ref [] in
  Rbtree.range oracle (fun k v ->
      expected := (k, v) :: !expected;
      true);
  let expected = ref (List.rev !expected) in
  let problem = ref None in
  H.Store.range store (fun k v ->
      (match !expected with
      | [] -> problem := Some (Printf.sprintf "extra key %S in store" k)
      | (ek, ev) :: rest ->
          if k <> ek || v <> ev then
            problem :=
              Some
                (Printf.sprintf "store has %S/%s, oracle has %S/%s" k
                   (match v with Some v -> Int64.to_string v | None -> "-")
                   ek
                   (match ev with Some v -> Int64.to_string v | None -> "-"))
          else expected := rest);
      !problem = None);
  (match (!problem, !expected) with
  | None, (ek, _) :: _ ->
      problem := Some (Printf.sprintf "key %S missing from store" ek)
  | _ -> ());
  !problem

let run_diskfault ?(config = H.Config.default) ?(key_space = 2048)
    ?(sync_every_ops = 16) ?(rotate_bytes = 8192) ?(heapcheck = true)
    ?(per_mille = 3) ~dir ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run_diskfault: negative ops";
  if key_space <= 0 then
    invalid_arg "Chaos.run_diskfault: key_space must be positive";
  let dir = Filename.concat dir (Printf.sprintf "diskfault-%Ld" seed) in
  wipe_dir dir;
  let rng = Workload.Mt19937_64.create seed in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> Error (Printf.sprintf "diskfault chaos seed=%Ld: %s" seed msg))
      fmt
  in
  let err_to_string = H.Hyperion_error.to_string in
  let io = Io.make () in
  let injected = ref 0
  and heals = ref 0
  and audits = ref 0
  and rejected = ref 0
  and cycle = ref 0 in
  let arm () =
    incr cycle;
    Io.set_plan io
      (Fault.seeded
         ~seed:(Int64.add seed (Int64.of_int (7919 * !cycle)))
         ~per_mille ~sites:Fault.io_sites)
  in
  let retire () =
    injected := !injected + Fault.fired_count (Io.plan io);
    Io.disarm io
  in
  match Persist.open_or_create ~config ~io ~sync_every_ops ~rotate_bytes dir with
  | Error e -> fail "initial open: %s" (err_to_string e)
  | Ok p -> (
      arm ();
      let store = Persist.store p in
      let oracle = Rbtree.create () in
      let log = ref [] and logged = ref 0 in
      let record op =
        log := op :: !log;
        incr logged;
        match op with
        | L_put (k, v) -> Rbtree.put oracle k v
        | L_add k -> Rbtree.add oracle k
        | L_del k -> ignore (Rbtree.delete oracle k)
      in
      (* Reads must keep serving at all times — degraded or not — so every
         audit includes the exact store-vs-oracle sweep. *)
      let audit what =
        incr audits;
        match H.Validate.check_store store with
        | e :: _ ->
            fail "%s: %s" what (Format.asprintf "%a" H.Validate.pp_error e)
        | [] -> (
            match store_matches_oracle store oracle with
            | Some d -> fail "%s: %s" what d
            | None ->
                if heapcheck then
                  match
                    Analyze.Heapcheck.first_problem
                      (Analyze.Heapcheck.audit_store store)
                  with
                  | Some pr -> fail "%s: heap audit: %s" what pr
                  | None -> Ok ()
                else Ok ())
      in
      (* A mutation failed (or an acked one degraded the handle during its
         group commit / rotation): verify degradation is sticky and
         read-only, heal, and prove writes are re-armed. *)
      let heal_cycle ~rearm op_i why =
        let ( let* ) = Result.bind in
        let probe = key_for (op_i mod key_space) in
        let* () =
          match Persist.put p probe 0xDEADL with
          | Error (H.Hyperion_error.Degraded _) ->
              incr rejected;
              Ok ()
          | Ok () -> fail "degraded handle accepted a mutation (%s)" why
          | Error e ->
              fail "degraded handle returned %s, wanted Degraded (%s)"
                (err_to_string e) why
        in
        let* () = audit "degraded-mode audit" in
        retire ();
        let* () =
          match Persist.heal p with
          | Ok () -> Ok ()
          | Error e -> fail "heal (%s): %s" why (err_to_string e)
        in
        let* () =
          match Persist.degraded p with
          | None -> Ok ()
          | Some w -> fail "heal returned Ok but the handle is degraded: %s" w
        in
        let* () =
          match Persist.put p probe 1L with
          | Ok () ->
              record (L_put (probe, 1L));
              Ok ()
          | Error e -> fail "post-heal put: %s" (err_to_string e)
        in
        incr heals;
        if rearm then arm ();
        Ok ()
      in
      let rec drive op_i =
        if op_i >= ops then Ok ()
        else
          let id = Workload.Mt19937_64.next_below rng key_space in
          let key = key_for id in
          let dice = Workload.Mt19937_64.next_below rng 100 in
          let step =
            if dice < 50 then
              let v =
                Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000)
              in
              match Persist.put p key v with
              | Ok () ->
                  record (L_put (key, v));
                  Ok ()
              | Error e -> Error e
            else if dice < 65 then
              match Persist.add p key with
              | Ok () ->
                  record (L_add key);
                  Ok ()
              | Error e -> Error e
            else
              match Persist.delete p key with
              | Ok true ->
                  record (L_del key);
                  Ok ()
              | Ok false -> Ok ()
              | Error e -> Error e
          in
          let next =
            match step with
            | Ok () -> (
                (* append-first: a group-commit or rotation failure degrades
                   the handle even though the op itself was acked *)
                match Persist.degraded p with
                | None -> Ok ()
                | Some why -> heal_cycle ~rearm:true op_i why)
            | Error (H.Hyperion_error.Degraded why) ->
                incr rejected;
                heal_cycle ~rearm:true op_i why
            | Error e ->
                fail "op %d: unexpected error %s (all storage failures must \
                      surface as Degraded)"
                  op_i (err_to_string e)
          in
          match next with
          | Error _ as e -> e
          | Ok () ->
              if (op_i + 1) mod 500 = 0 then
                match audit "periodic audit" with
                | Error _ as e -> e
                | Ok () -> drive (op_i + 1)
              else drive (op_i + 1)
      in
      let ( let* ) = Result.bind in
      let pre_crash =
        let* () = drive 0 in
        retire ();
        let* () =
          match Persist.degraded p with
          | Some why -> heal_cycle ~rearm:false ops why
          | None -> Ok ()
        in
        let* () = audit "post-workload audit" in
        (* Crash phase, injection off: group-commit, append a small unsynced
           tail, kill the process image at a random WAL offset at or past the
           durable watermark, and demand prefix-consistent recovery. *)
        let* () =
          match Persist.sync p with
          | Ok () -> Ok ()
          | Error e -> fail "pre-crash sync: %s" (err_to_string e)
        in
        let rec tail n =
          if n = 0 then Ok ()
          else
            let key = key_for (Workload.Mt19937_64.next_below rng key_space) in
            let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
            match Persist.put p key v with
            | Ok () ->
                record (L_put (key, v));
                tail (n - 1)
            | Error e -> fail "unsynced tail put: %s" (err_to_string e)
        in
        tail 5
      in
      let* () =
        match pre_crash with
        | Ok () -> Ok ()
        | Error _ as e ->
            Persist.crash p;
            e
      in
      let ops_log = Array.of_list (List.rev !log) in
      let gen = Persist.generation p in
      let base = Persist.snapshot_base p in
      let durable = Persist.durable_ops p in
      let watermark = Persist.wal_synced_bytes p in
      let size = Persist.wal_size p in
      Persist.crash p;
      let cut =
        watermark + Workload.Mt19937_64.next_below rng (size - watermark + 1)
      in
      Unix.truncate (Persist.wal_file ~dir ~gen) cut;
      let* p2 =
        match
          Persist.open_or_create ~config ~sync_every_ops ~rotate_bytes dir
        with
        | Ok p2 -> Ok p2
        | Error e -> fail "reopen after crash: %s" (err_to_string e)
      in
      let r = Persist.recovery p2 in
      let recovered = base + r.Persist.replayed_ops in
      let closing r =
        match r with
        | Ok _ as ok -> ok
        | Error _ as e ->
            ignore (Persist.close p2);
            e
      in
      let* () =
        closing
          (if r.Persist.generation <> gen then
             fail "recovered from generation %d, expected %d"
               r.Persist.generation gen
           else if recovered < durable then
             fail
               "acknowledged ops lost: %d durable at crash, only %d recovered \
                (cut=%d)"
               durable recovered cut
           else if recovered > !logged then
             fail "recovered %d ops but only %d were ever acked" recovered
               !logged
           else Ok ())
      in
      let* () =
        closing
          (let prefix_oracle = Rbtree.create () in
           Array.iteri
             (fun i op ->
               if i < recovered then
                 match op with
                 | L_put (k, v) -> Rbtree.put prefix_oracle k v
                 | L_add k -> Rbtree.add prefix_oracle k
                 | L_del k -> ignore (Rbtree.delete prefix_oracle k))
             ops_log;
           match store_matches_oracle (Persist.store p2) prefix_oracle with
           | Some d -> fail "post-recovery sweep (cut=%d): %s" cut d
           | None -> Ok ())
      in
      let* () =
        closing
          (if heapcheck then
             match
               Analyze.Heapcheck.first_problem
                 (Analyze.Heapcheck.audit_store (Persist.store p2))
             with
             | Some pr -> fail "post-recovery heap audit: %s" pr
             | None -> Ok ()
           else Ok ())
      in
      let* () =
        closing
          (match Persist.put p2 "post/recovery/probe" 1L with
          | Ok () -> Ok ()
          | Error e -> fail "post-recovery put: %s" (err_to_string e))
      in
      let final_keys = H.Store.length (Persist.store p2) in
      let* () =
        match Persist.close p2 with
        | Ok () -> Ok ()
        | Error e -> fail "post-recovery close: %s" (err_to_string e)
      in
      wipe_dir dir;
      Ok
        {
          df_ops = ops;
          df_acked = !logged;
          df_rejected = !rejected;
          df_injected = !injected;
          df_heals = !heals;
          df_audits = !audits;
          df_recovered = recovered;
          df_final_keys = final_keys;
        })

(* --- sharded disk-fault chaos: faults + worker kills under load ------- *)

type sharded_diskfault_outcome = {
  sdf_shards : int;
  sdf_clients : int;
  sdf_ops : int;
  sdf_acked : int;
  sdf_rejected : int;
  sdf_injected : int;
  sdf_heals : int;
  sdf_kills : int;
  sdf_restarts : int;
  sdf_audits : int;
  sdf_final_keys : int;
}

let pp_sharded_diskfault_outcome fmt o =
  Format.fprintf fmt
    "%d ops over %d client(s) x %d shard(s): %d acked, %d rejected, %d I/O \
     fault(s) injected, %d heal(s), %d worker kill(s) / %d restart(s), %d \
     quiesced audits, %d keys stored"
    o.sdf_ops o.sdf_clients o.sdf_shards o.sdf_acked o.sdf_rejected
    o.sdf_injected o.sdf_heals o.sdf_kills o.sdf_restarts o.sdf_audits
    o.sdf_final_keys

(* A fault-tolerant client: typed rejections ([Degraded], [Shard_down],
   [Overloaded]) are counted, not fatal, and the client's model is only
   advanced for acknowledged mutations — including the exact applied
   prefix of a partially applied batch slice ([Batch.flush_report]).
   Every blocking call must still complete with SOME result: a hang here
   hangs the run, which is precisely what the harness is hunting. *)
type df_client_report = {
  dfc_log : logged_op list;  (* reversed: newest first *)
  dfc_acked : int;
  dfc_rejected : int;
  dfc_error : string option;
}

let tolerable = function
  | H.Hyperion_error.Degraded _ | H.Hyperion_error.Shard_down _
  | H.Hyperion_error.Overloaded _ ->
      true
  | _ -> false

let run_diskfault_client store ~seed ~clients ~c ~ops ~key_space =
  let rng = Workload.Mt19937_64.create (client_seed ~seed c) in
  let slots = max 1 (key_space / clients) in
  let expected : (string, int64 option) Hashtbl.t = Hashtbl.create 64 in
  let log = ref [] and acked = ref 0 and rejected = ref 0 in
  let batch = Hyperion_shard.Batch.create store in
  let nshards = Hyperion_shard.shards store in
  let pending = Array.make nshards [] in
  (* per-shard mirror of [batch], newest first *)
  let pending_count = ref 0 in
  let err = ref None in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        if !err = None then
          err := Some (Printf.sprintf "diskfault client %d seed=%Ld: %s" c seed msg))
      fmt
  in
  let apply_expected = function
    | L_put (k, v) -> Hashtbl.replace expected k (Some v)
    | L_add k ->
        if not (Hashtbl.mem expected k) then Hashtbl.replace expected k None
    | L_del k -> Hashtbl.remove expected k
  in
  let note op =
    apply_expected op;
    log := op :: !log;
    incr acked
  in
  let flush () =
    if !pending_count > 0 then begin
      let report = Hyperion_shard.Batch.flush_report batch in
      List.iter
        (fun r ->
          let i = r.Hyperion_shard.Batch.fr_shard in
          let slice = Array.of_list (List.rev pending.(i)) in
          pending.(i) <- [];
          let n = Array.length slice in
          if r.Hyperion_shard.Batch.fr_ops <> n then
            fail "flush report covers %d op(s) for shard %d, client buffered %d"
              r.Hyperion_shard.Batch.fr_ops i n
          else begin
            let applied = r.Hyperion_shard.Batch.fr_applied in
            for j = 0 to applied - 1 do
              note slice.(j)
            done;
            rejected := !rejected + (n - applied);
            match r.Hyperion_shard.Batch.fr_error with
            | Some e when not (tolerable e) ->
                fail "batch slice for shard %d failed: %s" i
                  (H.Hyperion_error.to_string e)
            | Some _ -> ()
            | None ->
                if applied <> n then
                  fail "shard %d applied %d of %d with no error" i applied n
          end)
        report;
      Array.iteri
        (fun i ops ->
          if ops <> [] then begin
            fail "flush report omitted shard %d (%d op(s))" i (List.length ops);
            pending.(i) <- []
          end)
        pending;
      pending_count := 0
    end
  in
  let pending_has key =
    let i = Hyperion_shard.shard_of_key store key in
    List.exists
      (function L_put (k, _) | L_add k | L_del k -> k = key)
      pending.(i)
  in
  let direct op =
    let r =
      match op with
      | L_put (k, v) -> Hyperion_shard.put_result store k v
      | L_add k -> Hyperion_shard.add_result store k
      | L_del k -> (
          let present = Hashtbl.mem expected k in
          match Hyperion_shard.delete_result store k with
          | Ok removed ->
              if removed <> present then
                fail "delete %S: store=%b expected=%b" k removed present;
              Ok ()
          | Error e -> Error e)
    in
    match r with
    | Ok () -> note op
    | Error e when tolerable e -> incr rejected
    | Error e -> fail "mutation rejected with %s" (H.Hyperion_error.to_string e)
  in
  (try
     for _op = 0 to ops - 1 do
       if !err = None then begin
         let id = c + (clients * Workload.Mt19937_64.next_below rng slots) in
         let key = key_for id in
         let dice = Workload.Mt19937_64.next_below rng 100 in
         if dice < 30 then
           let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
           direct (L_put (key, v))
         else if dice < 45 then begin
           let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
           let op = if dice < 42 then L_put (key, v) else L_add key in
           (match op with
           | L_put (k, v) -> Hyperion_shard.Batch.put batch k v
           | L_add k -> Hyperion_shard.Batch.add batch k
           | L_del _ -> ());
           let i = Hyperion_shard.shard_of_key store key in
           pending.(i) <- op :: pending.(i);
           incr pending_count;
           if Hyperion_shard.Batch.length batch >= 8 then flush ()
         end
         else if dice < 55 then direct (L_add key)
         else if dice < 70 then begin
           if pending_has key then flush ();
           direct (L_del key)
         end
         else if dice < 90 then begin
           if pending_has key then flush ();
           let got = Hyperion_shard.get store key in
           let want = Option.join (Hashtbl.find_opt expected key) in
           if got <> want then
             fail "get %S: store=%s expected=%s" key
               (match got with Some v -> Int64.to_string v | None -> "absent")
               (match want with Some v -> Int64.to_string v | None -> "absent")
         end
         else begin
           if pending_has key then flush ();
           let got = Hyperion_shard.mem store key in
           let want = Hashtbl.mem expected key in
           if got <> want then fail "mem %S: store=%b expected=%b" key got want
         end
       end
     done;
     flush ()
   with e -> fail "client raised %s" (Printexc.to_string e));
  { dfc_log = !log; dfc_acked = !acked; dfc_rejected = !rejected; dfc_error = !err }

let run_sharded_diskfault ?(config = H.Config.default) ?(shards = 4) ?clients
    ?(key_space = 4096) ?(heapcheck = true) ?(per_mille = 2) ~dir ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run_sharded_diskfault: negative ops";
  if shards < 1 then
    invalid_arg "Chaos.run_sharded_diskfault: shards must be positive";
  if key_space <= 0 then
    invalid_arg "Chaos.run_sharded_diskfault: key_space must be positive";
  let clients = match clients with Some c -> max 1 c | None -> min shards 4 in
  let dir = Filename.concat dir (Printf.sprintf "sharded-diskfault-%Ld" seed) in
  wipe_tree dir;
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Error
          (Printf.sprintf "sharded diskfault chaos seed=%Ld shards=%d: %s" seed
             shards msg))
      fmt
  in
  let err_to_string = H.Hyperion_error.to_string in
  let ios = Array.init shards (fun _ -> Io.make ()) in
  let injected = ref 0 and cycle = ref 0 in
  let plan_for i =
    Fault.seeded
      ~seed:
        (Int64.add seed (Int64.of_int ((7919 * !cycle) + (104729 * (i + 1)))))
      ~per_mille ~sites:Fault.io_sites
  in
  let retire i =
    injected := !injected + Fault.fired_count (Io.plan ios.(i));
    Io.disarm ios.(i)
  in
  let arm_all () =
    incr cycle;
    Array.iteri (fun i io -> Io.set_plan io (plan_for i)) ios
  in
  let retire_all () = Array.iteri (fun i _ -> retire i) ios in
  match
    Hyperion_shard.open_durable ~config ~shards ~sync_every_ops:16
      ~rotate_bytes:8192 ~io_for_shard:(fun i -> ios.(i)) dir
  with
  | Error e -> fail "open: %s" (err_to_string e)
  | Ok store -> (
      arm_all ();
      let per_client = ops / clients in
      let finished = Atomic.make 0 in
      let doms =
        List.init clients (fun c ->
            let ops =
              if c = 0 then per_client + (ops mod clients) else per_client
            in
            Domain.spawn (fun () ->
                let r =
                  run_diskfault_client store ~seed ~clients ~c ~ops ~key_space
                in
                Atomic.incr finished;
                r))
      in
      (* Coordinator: quiesced audits, seeded worker kills + restarts, and
         heals — all while the clients hammer the store. *)
      let crng = Workload.Mt19937_64.create (Int64.lognot seed) in
      let audits = ref 0
      and heals = ref 0
      and kills = ref 0
      and restarts = ref 0 in
      let problem = ref None in
      let note_problem fmt =
        Printf.ksprintf (fun m -> if !problem = None then problem := Some m) fmt
      in
      let restart_dead ~rearm =
        List.iter
          (fun h ->
            if h.Hyperion_shard.hs_down <> None then begin
              let i = h.Hyperion_shard.hs_shard in
              retire i;
              (match Hyperion_shard.restart_shard store i with
              | Ok _ -> incr restarts
              | Error e ->
                  note_problem "restart shard %d: %s" i (err_to_string e));
              if rearm then Io.set_plan ios.(i) (plan_for i)
            end)
          (Hyperion_shard.health store)
      in
      let heal_degraded ~rearm =
        if
          List.exists
            (fun h -> h.Hyperion_shard.hs_degraded <> None)
            (Hyperion_shard.health store)
        then begin
          retire_all ();
          (match Hyperion_shard.heal store with
          | Ok () -> incr heals
          | Error e -> note_problem "heal: %s" (err_to_string e));
          if rearm then arm_all ()
        end
      in
      while Atomic.get finished < clients && !problem = None do
        if shards > 1 && Workload.Mt19937_64.next_below crng 10 = 0 then begin
          let victim = Workload.Mt19937_64.next_below crng shards in
          if
            Hyperion_shard.poison store ~shard:victim
              ~reason:"chaos: injected worker crash"
          then begin
            incr kills;
            (* the poison is behind the shard's backlog; bounded wait for
               the worker to reach it and die *)
            let budget = ref 5000 in
            let rec wait () =
              let h = List.nth (Hyperion_shard.health store) victim in
              if h.Hyperion_shard.hs_down <> None then true
              else if !budget = 0 then false
              else begin
                decr budget;
                Unix.sleepf 0.001;
                wait ()
              end
            in
            if not (wait ()) then
              note_problem "poisoned shard %d never died" victim
          end
        end;
        restart_dead ~rearm:true;
        heal_degraded ~rearm:true;
        (match sharded_audit ~heapcheck store with
        | Some p -> note_problem "concurrent audit: %s" p
        | None -> ());
        incr audits;
        Unix.sleepf 0.002
      done;
      (* No-hang guarantee: every client joins even on a coordinator
         problem — typed errors, never stuck promises. *)
      let reports = List.map Domain.join doms in
      retire_all ();
      restart_dead ~rearm:false;
      heal_degraded ~rearm:false;
      let bail fmt =
        Printf.ksprintf
          (fun msg ->
            ignore (Hyperion_shard.close store);
            fail "%s" msg)
          fmt
      in
      match (!problem, List.find_map (fun r -> r.dfc_error) reports) with
      | Some p, _ -> bail "%s" p
      | None, Some e -> bail "%s" e
      | None, None -> (
          let oracle = Rbtree.create () in
          List.iter
            (fun r ->
              List.iter
                (function
                  | L_put (k, v) -> Rbtree.put oracle k v
                  | L_add k -> Rbtree.add oracle k
                  | L_del k -> ignore (Rbtree.delete oracle k))
                (List.rev r.dfc_log))
            reports;
          let acked = List.fold_left (fun a r -> a + r.dfc_acked) 0 reports in
          let rejected =
            List.fold_left (fun a r -> a + r.dfc_rejected) 0 reports
          in
          let ( let* ) = Result.bind in
          let* () =
            match sharded_audit ~heapcheck store with
            | Some p -> bail "final audit: %s" p
            | None ->
                incr audits;
                Ok ()
          in
          let* () =
            match
              (match
                 sweep_against_oracle ~what:"post-workload sweep" store oracle
               with
              | Some _ as p -> p
              | None ->
                  batched_vs_oracle ~what:"post-workload batch" store oracle)
            with
            | Some p -> bail "%s" p
            | None -> Ok ()
          in
          (* Crash phase, injection off: everything acked must survive a
             group commit + kill + parallel per-shard recovery. *)
          let* () =
            match Hyperion_shard.sync store with
            | Ok () -> Ok ()
            | Error e -> bail "pre-crash sync: %s" (err_to_string e)
          in
          Hyperion_shard.crash store;
          let* store2 =
            match
              Hyperion_shard.open_durable ~config ~shards ~sync_every_ops:16
                ~rotate_bytes:8192 dir
            with
            | Ok s -> Ok s
            | Error e -> fail "reopen: %s" (err_to_string e)
          in
          let closing r =
            match r with
            | Ok _ as ok -> ok
            | Error _ as e ->
                ignore (Hyperion_shard.close store2);
                e
          in
          let* () =
            closing
              (match
                 (match
                    sweep_against_oracle ~what:"post-recovery sweep" store2
                      oracle
                  with
                 | Some _ as p -> p
                 | None ->
                     batched_vs_oracle ~what:"post-recovery batch" store2 oracle)
               with
              | Some p -> fail "%s" p
              | None -> Ok ())
          in
          let* () =
            closing
              (match sharded_audit ~heapcheck store2 with
              | Some p -> fail "post-recovery audit: %s" p
              | None -> Ok ())
          in
          let* () =
            closing
              (match Hyperion_shard.put_result store2 "post/recovery/probe" 1L with
              | Ok () -> Ok ()
              | Error e -> fail "post-recovery put: %s" (err_to_string e))
          in
          let final_keys = Hyperion_shard.length store2 in
          let* () =
            match Hyperion_shard.close store2 with
            | Ok () -> Ok ()
            | Error e -> fail "post-recovery close: %s" (err_to_string e)
          in
          wipe_tree dir;
          Ok
            {
              sdf_shards = shards;
              sdf_clients = clients;
              sdf_ops = ops;
              sdf_acked = acked;
              sdf_rejected = rejected;
              sdf_injected = !injected;
              sdf_heals = !heals;
              sdf_kills = !kills;
              sdf_restarts = !restarts;
              sdf_audits = !audits;
              sdf_final_keys = final_keys;
            }))
