module H = Hyperion

type outcome = {
  ops : int;
  mutations_ok : int;
  mutations_failed : int;
  injected_faults : int;
  audits : int;
  saturation_errors : int;
  final_keys : int;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d ops: %d mutations ok, %d rejected (%d saturation), %d faults \
     injected, %d audits, %d keys stored"
    o.ops o.mutations_ok o.mutations_failed o.saturation_errors
    o.injected_faults o.audits o.final_keys

exception Divergence of string

(* Deterministic key shapes: a mix of short, suffixed and prefixed keys so
   the workload exercises path compression, embedded containers and multi-
   container paths, while the same id always denotes the same key. *)
let key_for id =
  let base = Printf.sprintf "%06x" id in
  match id mod 5 with
  | 0 -> base
  | 1 -> base ^ "-tail"
  | 2 -> base ^ String.make (8 + (id mod 40)) 'x'
  | 3 -> "pfx/" ^ base
  | _ -> base ^ "!"

let run ?(config = H.Config.default) ?(plan = Fault.none)
    ?(validate_every = 1000) ?(key_space = 4096) ?(heapcheck = true) ?on_op
    ?store ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run: negative ops";
  if key_space <= 0 then invalid_arg "Chaos.run: key_space must be positive";
  if validate_every <= 0 then
    invalid_arg "Chaos.run: validate_every must be positive";
  let rng = Workload.Mt19937_64.create seed in
  let store =
    match store with Some s -> s | None -> H.Store.create ~config ()
  in
  H.Store.set_fault_plan store plan;
  let oracle = Rbtree.create () in
  (* A pre-existing (e.g. just-recovered) store seeds the oracle, so the
     differential run starts from agreement instead of a false divergence. *)
  H.Store.iter store (fun k v ->
      match v with Some v -> Rbtree.put oracle k v | None -> Rbtree.add oracle k);
  let mutations_ok = ref 0
  and mutations_failed = ref 0
  and audits = ref 0
  and saturation_errors = ref 0 in
  let diverge op fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Divergence
             (Printf.sprintf "chaos seed=%Ld op=%d: %s; plan: %s" seed op msg
                (Fault.describe plan))))
      fmt
  in
  let audit op =
    incr audits;
    (match H.Validate.check_store store with
    | [] -> ()
    | errs ->
        diverge op "audit found %d structural violation(s); first: %s"
          (List.length errs)
          (Format.asprintf "%a" H.Validate.pp_error (List.hd errs)));
    (* Heap sanitizer: the record structure can be sound while the
       allocator underneath leaks or double-references chunks, so every
       audit round also mark-and-sweeps the arenas (DESIGN.md section 11). *)
    if heapcheck then
      match Analyze.Heapcheck.first_problem (Analyze.Heapcheck.audit_store store) with
      | None -> ()
      | Some p -> diverge op "heap audit: %s" p
  in
  let check_key op key =
    let hv = H.Store.get store key and ov = Rbtree.get oracle key in
    if hv <> ov then
      diverge op "lookup mismatch on %S: hyperion=%s oracle=%s" key
        (match hv with Some v -> Int64.to_string v | None -> "absent")
        (match ov with Some v -> Int64.to_string v | None -> "absent")
  in
  let note_error e =
    incr mutations_failed;
    if e = H.Hyperion_error.Arena_saturated then incr saturation_errors
  in
  try
    for op = 0 to ops - 1 do
      let fired_before = Fault.fired_count plan in
      let id = Workload.Mt19937_64.next_below rng key_space in
      let key = key_for id in
      let dice = Workload.Mt19937_64.next_below rng 100 in
      (if dice < 55 then begin
         let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
         match H.Store.put_result store key v with
         | Ok () ->
             incr mutations_ok;
             Rbtree.put oracle key v
         | Error e ->
             note_error e;
             (* a rejected put must leave the old binding intact *)
             check_key op key
       end
       else if dice < 75 then begin
         match H.Store.delete_result store key with
         | Ok removed ->
             incr mutations_ok;
             let oracle_removed = Rbtree.delete oracle key in
             if removed <> oracle_removed then
               diverge op "delete %S: hyperion=%b oracle=%b" key removed
                 oracle_removed
         | Error e ->
             note_error e;
             check_key op key
       end
       else if dice < 95 then check_key op key
       else if H.Store.length store <> Rbtree.length oracle then
         diverge op "length mismatch: hyperion=%d oracle=%d"
           (H.Store.length store) (Rbtree.length oracle));
      if Fault.fired_count plan > fired_before then audit op
      else if (op + 1) mod validate_every = 0 then audit op;
      match on_op with Some f -> f op | None -> ()
    done;
    audit ops;
    (* Final full sweep: same bindings, same order. *)
    let expected = ref [] in
    Rbtree.range oracle (fun k v ->
        expected := (k, v) :: !expected;
        true);
    let expected = ref (List.rev !expected) in
    let sweep_pos = ref 0 in
    H.Store.range store (fun k v ->
        (match !expected with
        | [] -> diverge ops "sweep: extra key %S in hyperion" k
        | (ek, ev) :: rest ->
            if k <> ek || v <> ev then
              diverge ops "sweep at #%d: hyperion has %S, oracle has %S"
                !sweep_pos k ek;
            expected := rest);
        incr sweep_pos;
        true);
    (match !expected with
    | [] -> ()
    | (ek, _) :: _ -> diverge ops "sweep: key %S missing from hyperion" ek);
    Ok
      {
        ops;
        mutations_ok = !mutations_ok;
        mutations_failed = !mutations_failed;
        injected_faults = Fault.fired_count plan;
        audits = !audits;
        saturation_errors = !saturation_errors;
        final_keys = H.Store.length store;
      }
  with Divergence msg -> Error msg

(* --- sharded chaos: concurrent clients over the multi-domain front-end *)

type sharded_outcome = {
  sh_shards : int;
  sh_clients : int;
  sh_ops : int;
  sh_mutations : int;
  sh_batched : int;
  sh_audits : int;
  sh_final_keys : int;
  sh_recovered_shards : int;
  sh_replayed : int;
}

let pp_sharded_outcome fmt o =
  Format.fprintf fmt
    "%d ops over %d client(s) x %d shard(s): %d mutations (%d batched), %d \
     quiesced audits, %d keys stored%s"
    o.sh_ops o.sh_clients o.sh_shards o.sh_mutations o.sh_batched o.sh_audits
    o.sh_final_keys
    (if o.sh_recovered_shards > 0 then
       Printf.sprintf "; crash-recovered %d shard(s), %d WAL op(s) replayed"
         o.sh_recovered_shards o.sh_replayed
     else "")

(* One client's acknowledged mutations, in acknowledgement order.  Clients
   own disjoint key sets (ids congruent to the client index), so the final
   store state is deterministic in the seed: replaying every client's log
   sequentially — in any client order — yields the same bindings. *)
type client_report = {
  cr_log : logged_op list;  (* reversed: newest first *)
  cr_mutations : int;
  cr_batched : int;
  cr_error : string option;
}

and logged_op = L_put of string * int64 | L_add of string | L_del of string

let wipe_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let client_seed ~seed c = Int64.add seed (Int64.mul (Int64.of_int (c + 1)) 1_000_003L)

let run_sharded_client store ~seed ~clients ~c ~ops ~key_space =
  let rng = Workload.Mt19937_64.create (client_seed ~seed c) in
  let slots = max 1 (key_space / clients) in
  let expected : (string, int64 option) Hashtbl.t = Hashtbl.create 64 in
  let log = ref [] and mutations = ref 0 and batched = ref 0 in
  let batch = Hyperion_shard.Batch.create store in
  (* mutations buffered in [batch] and not yet visible; applied to
     [expected] (and the log) only when the flush is acknowledged *)
  let pending = ref [] in
  let pending_has key =
    List.exists
      (function
        | L_put (k, _) | L_add k | L_del k -> k = key)
      !pending
  in
  let err = ref None in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        if !err = None then
          err := Some (Printf.sprintf "client %d seed=%Ld: %s" c seed msg))
      fmt
  in
  let apply_expected = function
    | L_put (k, v) -> Hashtbl.replace expected k (Some v)
    | L_add k ->
        (* add is "insert if absent": an existing binding keeps its value *)
        if not (Hashtbl.mem expected k) then Hashtbl.replace expected k None
    | L_del k -> Hashtbl.remove expected k
  in
  let flush () =
    match !pending with
    | [] -> ()
    | ps -> (
        let n = List.length ps in
        match Hyperion_shard.Batch.flush batch with
        | Ok applied when applied = n ->
            List.iter
              (fun op ->
                apply_expected op;
                log := op :: !log;
                incr mutations;
                incr batched)
              (List.rev ps);
            pending := []
        | Ok applied ->
            fail "batch flush applied %d of %d buffered mutations" applied n
        | Error e ->
            fail "batch flush rejected: %s" (H.Hyperion_error.to_string e))
  in
  let direct op =
    let r =
      match op with
      | L_put (k, v) -> Hyperion_shard.put_result store k v
      | L_add k -> Hyperion_shard.add_result store k
      | L_del k -> (
          let present = Hashtbl.mem expected k in
          match Hyperion_shard.delete_result store k with
          | Ok removed ->
              if removed <> present then
                fail "delete %S: store=%b expected=%b" k removed present;
              Ok ()
          | Error e -> Error e)
    in
    match r with
    | Ok () ->
        apply_expected op;
        log := op :: !log;
        incr mutations
    | Error e -> fail "mutation rejected: %s" (H.Hyperion_error.to_string e)
  in
  let n_ops = ops in
  (try
     for _op = 0 to n_ops - 1 do
       if !err = None then begin
         let id = c + (clients * Workload.Mt19937_64.next_below rng slots) in
         let key = key_for id in
         let dice = Workload.Mt19937_64.next_below rng 100 in
         if dice < 30 then begin
           (* direct blocking put *)
           let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
           direct (L_put (key, v))
         end
         else if dice < 45 then begin
           (* batched put/add, flushed every 8 buffered mutations *)
           let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
           let op =
             if dice < 42 then L_put (key, v) else L_add key
           in
           (match op with
           | L_put (k, v) -> Hyperion_shard.Batch.put batch k v
           | L_add k -> Hyperion_shard.Batch.add batch k
           | L_del _ -> assert false);
           pending := op :: !pending;
           if Hyperion_shard.Batch.length batch >= 8 then flush ()
         end
         else if dice < 55 then direct (L_add key)
         else if dice < 70 then begin
           if pending_has key then flush ();
           direct (L_del key)
         end
         else if dice < 90 then begin
           if pending_has key then flush ();
           let got = Hyperion_shard.get store key in
           let want = Option.join (Hashtbl.find_opt expected key) in
           if got <> want then
             fail "get %S: store=%s expected=%s" key
               (match got with Some v -> Int64.to_string v | None -> "absent")
               (match want with Some v -> Int64.to_string v | None -> "absent")
         end
         else begin
           if pending_has key then flush ();
           let got = Hyperion_shard.mem store key in
           let want = Hashtbl.mem expected key in
           if got <> want then fail "mem %S: store=%b expected=%b" key got want
         end
       end
     done;
     flush ()
   with e ->
     fail "client raised %s" (Printexc.to_string e));
  { cr_log = !log; cr_mutations = !mutations; cr_batched = !batched; cr_error = !err }

(* Quiesced audit: structural validation of every shard store plus the
   iter/length point-in-time consistency check and (unless disabled) the
   per-shard heap sanitizer — with the workers parked at the barrier no
   mutator can race the mark-and-sweep. *)
let sharded_audit ~heapcheck store =
  Hyperion_shard.with_quiesced store (fun stores ->
      let problem = ref None in
      Array.iteri
        (fun i s ->
          if !problem = None then begin
            (match H.Validate.check_store s with
            | [] -> ()
            | e :: _ ->
                problem :=
                  Some
                    (Printf.sprintf "shard %d: %s" i
                       (Format.asprintf "%a" H.Validate.pp_error e)));
            let swept = ref 0 in
            H.Store.iter s (fun _ _ -> incr swept);
            if !problem = None && !swept <> H.Store.length s then
              problem :=
                Some
                  (Printf.sprintf "shard %d: iter visited %d keys, length says %d"
                     i !swept (H.Store.length s));
            if !problem = None && heapcheck then
              match
                Analyze.Heapcheck.first_problem (Analyze.Heapcheck.audit_store s)
              with
              | None -> ()
              | Some p ->
                  problem := Some (Printf.sprintf "shard %d: heap audit: %s" i p)
          end)
        stores;
      !problem)

let sweep_against_oracle ~what store oracle =
  let expected = ref [] in
  Rbtree.range oracle (fun k v ->
      expected := (k, v) :: !expected;
      true);
  let expected = ref (List.rev !expected) in
  let problem = ref None in
  Hyperion_shard.iter store (fun k v ->
      if !problem = None then
        match !expected with
        | [] -> problem := Some (Printf.sprintf "%s: extra key %S" what k)
        | (ek, ev) :: rest ->
            if k <> ek || v <> ev then
              problem :=
                Some
                  (Printf.sprintf "%s: store has %S/%s, oracle has %S/%s" what k
                     (match v with Some v -> Int64.to_string v | None -> "-")
                     ek
                     (match ev with Some v -> Int64.to_string v | None -> "-"))
            else expected := rest);
  (match (!problem, !expected) with
  | None, (ek, _) :: _ ->
      problem := Some (Printf.sprintf "%s: key %S missing from store" what ek)
  | _ -> ());
  !problem

let run_sharded ?(config = H.Config.default) ?(shards = 4) ?clients
    ?(key_space = 4096) ?(heapcheck = true) ?dir ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run_sharded: negative ops";
  if shards < 1 then invalid_arg "Chaos.run_sharded: shards must be positive";
  if key_space <= 0 then
    invalid_arg "Chaos.run_sharded: key_space must be positive";
  let clients = match clients with Some c -> max 1 c | None -> min shards 4 in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Error (Printf.sprintf "sharded chaos seed=%Ld shards=%d: %s" seed shards msg))
      fmt
  in
  let err_to_string = H.Hyperion_error.to_string in
  let crash_dir =
    Option.map
      (fun d -> Filename.concat d (Printf.sprintf "shard-chaos-%Ld" seed))
      dir
  in
  let wipe_tree dir =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f ->
          let p = Filename.concat dir f in
          if Sys.is_directory p then wipe_dir p
          else try Sys.remove p with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    end
  in
  Option.iter wipe_tree crash_dir;
  let opened =
    match crash_dir with
    | None -> Ok (Hyperion_shard.create ~config ~shards ())
    | Some d ->
        Hyperion_shard.open_durable ~config ~shards ~sync_every_ops:16
          ~rotate_bytes:8192 d
  in
  match opened with
  | Error e -> fail "open: %s" (err_to_string e)
  | Ok store -> (
      let per_client = ops / clients in
      let finished = Atomic.make 0 in
      let doms =
        List.init clients (fun c ->
            let ops =
              if c = 0 then per_client + (ops mod clients) else per_client
            in
            Domain.spawn (fun () ->
                let r =
                  run_sharded_client store ~seed ~clients ~c ~ops ~key_space
                in
                Atomic.incr finished;
                r))
      in
      (* Coordinator: quiesced audits while the clients hammer the store. *)
      let audits = ref 0 and audit_problem = ref None in
      while Atomic.get finished < clients && !audit_problem = None do
        (match sharded_audit ~heapcheck store with
        | Some p -> audit_problem := Some p
        | None -> ());
        incr audits;
        Unix.sleepf 0.002
      done;
      let reports = List.map Domain.join doms in
      match
        ( !audit_problem,
          List.find_map (fun r -> r.cr_error) reports )
      with
      | Some p, _ -> fail "concurrent audit: %s" p
      | None, Some e -> fail "%s" e
      | None, None -> (
          (* Final audit + full sweep against the merged oracle. *)
          (match sharded_audit ~heapcheck store with
          | Some p -> incr audits; audit_problem := Some p
          | None -> incr audits);
          match !audit_problem with
          | Some p -> fail "final audit: %s" p
          | None -> (
              let oracle = Rbtree.create () in
              List.iter
                (fun r ->
                  List.iter
                    (function
                      | L_put (k, v) -> Rbtree.put oracle k v
                      | L_add k -> Rbtree.add oracle k
                      | L_del k -> ignore (Rbtree.delete oracle k))
                    (List.rev r.cr_log))
                reports;
              match sweep_against_oracle ~what:"post-workload sweep" store oracle with
              | Some p -> fail "%s" p
              | None -> (
                  let mutations =
                    List.fold_left (fun a r -> a + r.cr_mutations) 0 reports
                  in
                  let batched =
                    List.fold_left (fun a r -> a + r.cr_batched) 0 reports
                  in
                  let final_keys = Hyperion_shard.length store in
                  if final_keys <> Rbtree.length oracle then
                    fail "length: store=%d oracle=%d" final_keys
                      (Rbtree.length oracle)
                  else
                    let finish_in_memory () =
                      (match Hyperion_shard.close store with
                      | Ok () -> ()
                      | Error _ -> ());
                      Ok
                        {
                          sh_shards = shards;
                          sh_clients = clients;
                          sh_ops = ops;
                          sh_mutations = mutations;
                          sh_batched = batched;
                          sh_audits = !audits;
                          sh_final_keys = final_keys;
                          sh_recovered_shards = 0;
                          sh_replayed = 0;
                        }
                    in
                    let crash_and_recover d =
                      (* Crash-recovery phase: group-commit everything, kill
                         the process image, reopen per-shard (parallel
                         recovery) and demand the byte-identical state. *)
                      let ( let* ) = Result.bind in
                      let closing store2 r =
                        match r with
                        | Ok _ as ok -> ok
                        | Error _ as e ->
                            ignore (Hyperion_shard.close store2);
                            e
                      in
                      let* () =
                        match Hyperion_shard.sync store with
                        | Ok () -> Ok ()
                        | Error e -> fail "pre-crash sync: %s" (err_to_string e)
                      in
                      Hyperion_shard.crash store;
                      let* store2 =
                        match
                          Hyperion_shard.open_durable ~config ~shards
                            ~sync_every_ops:16 ~rotate_bytes:8192 d
                        with
                        | Ok s -> Ok s
                        | Error e -> fail "reopen: %s" (err_to_string e)
                      in
                      let recs = Hyperion_shard.recoveries store2 in
                      let replayed =
                        List.fold_left
                          (fun a r ->
                            a + r.Hyperion_shard.recovery.Persist.replayed_ops)
                          0 recs
                      in
                      let* () =
                        closing store2
                          (match
                             sweep_against_oracle ~what:"post-recovery sweep"
                               store2 oracle
                           with
                          | Some p -> fail "%s" p
                          | None -> Ok ())
                      in
                      let* () =
                        closing store2
                          (match sharded_audit ~heapcheck store2 with
                          | Some p -> fail "post-recovery audit: %s" p
                          | None -> Ok ())
                      in
                      (* liveness: the recovered front-end still accepts
                         mutations *)
                      let* () =
                        closing store2
                          (match
                             Hyperion_shard.put_result store2
                               "post/recovery/probe" 1L
                           with
                          | Ok () -> Ok ()
                          | Error e ->
                              fail "post-recovery put: %s" (err_to_string e))
                      in
                      let* () =
                        match Hyperion_shard.close store2 with
                        | Ok () -> Ok ()
                        | Error e ->
                            fail "post-recovery close: %s" (err_to_string e)
                      in
                      wipe_tree d;
                      Ok
                        {
                          sh_shards = shards;
                          sh_clients = clients;
                          sh_ops = ops;
                          sh_mutations = mutations;
                          sh_batched = batched;
                          sh_audits = !audits;
                          sh_final_keys = final_keys;
                          sh_recovered_shards = List.length recs;
                          sh_replayed = replayed;
                        }
                    in
                    match crash_dir with
                    | None -> finish_in_memory ()
                    | Some d -> crash_and_recover d))))

(* --- crash-recovery chaos (DESIGN.md section 8 crash matrix) --------- *)

type crash_outcome = {
  ops_logged : int;
  acked : int;
  recovered : int;
  cut_bytes : int;
  rotations : int;
  scenario : string;
}

let pp_crash_outcome fmt o =
  Format.fprintf fmt
    "%d ops logged (%d acked), killed via %s cutting %d byte(s), %d \
     rotation(s), recovered %d ops"
    o.ops_logged o.acked o.scenario o.cut_bytes o.rotations o.recovered

let run_crash ?(config = H.Config.default) ?(key_space = 2048)
    ?(sync_every_ops = 16) ?(rotate_bytes = 8192) ?(heapcheck = true) ~dir
    ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run_crash: negative ops";
  if key_space <= 0 then
    invalid_arg "Chaos.run_crash: key_space must be positive";
  let dir = Filename.concat dir (Printf.sprintf "crash-%Ld" seed) in
  wipe_dir dir;
  let rng = Workload.Mt19937_64.create seed in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> Error (Printf.sprintf "crash chaos seed=%Ld: %s" seed msg))
      fmt
  in
  let err_to_string = H.Hyperion_error.to_string in
  match
    Persist.open_or_create ~config ~sync_every_ops ~rotate_bytes dir
  with
  | Error e -> fail "initial open: %s" (err_to_string e)
  | Ok p -> (
      (* Seeded workload through the logged handle; [log] keeps exactly the
         mutations that reached the WAL, in order. *)
      let log = ref [] and logged = ref 0 in
      let record op =
        log := op :: !log;
        incr logged
      in
      let rec drive op_i =
        if op_i >= ops then Ok ()
        else
          let id = Workload.Mt19937_64.next_below rng key_space in
          let key = key_for id in
          let dice = Workload.Mt19937_64.next_below rng 100 in
          let step =
            if dice < 50 then
              let v =
                Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000)
              in
              match Persist.put p key v with
              | Ok () ->
                  record (L_put (key, v));
                  Ok ()
              | Error e -> Error e
            else if dice < 65 then
              match Persist.add p key with
              | Ok () ->
                  record (L_add key);
                  Ok ()
              | Error e -> Error e
            else
              match Persist.delete p key with
              | Ok true ->
                  record (L_del key);
                  Ok ()
              | Ok false -> Ok ()
              | Error e -> Error e
          in
          match step with Ok () -> drive (op_i + 1) | Error _ as e -> e
      in
      match drive 0 with
      | Error e -> fail "workload: %s" (err_to_string e)
      | Ok () -> (
          let ops_log = Array.of_list (List.rev !log) in
          let gen = Persist.generation p in
          let base = Persist.snapshot_base p in
          let durable = Persist.durable_ops p in
          let watermark = Persist.wal_synced_bytes p in
          let size = Persist.wal_size p in
          let rotations = Persist.rotations p in
          Persist.crash p;
          (* Kill at a uniformly random WAL offset at or past the durable
             watermark (the crash model: fsynced bytes survive, anything
             later may tear — including mid-record). *)
          let cut = watermark + Workload.Mt19937_64.next_below rng (size - watermark + 1) in
          let wal_path = Persist.wal_file ~dir ~gen in
          Unix.truncate wal_path cut;
          let snap_path = Persist.snapshot_file ~dir ~gen in
          let scenario_dice = Workload.Mt19937_64.next_below rng 100 in
          let scenario =
            if scenario_dice < 30 then begin
              (* crash mid-rotation, while the next snapshot was still being
                 streamed to its .tmp file *)
              let tmp = Persist.snapshot_file ~dir ~gen:(gen + 1) ^ ".tmp" in
              let oc = open_out_bin tmp in
              output_string oc (String.init (Workload.Mt19937_64.next_below rng 512) (fun i -> Char.chr ((i * 37) land 0xff)));
              close_out oc;
              "wal-cut+partial-tmp-snapshot"
            end
            else if scenario_dice < 50 then begin
              (* a newer snapshot that never became fully durable: recovery
                 must skip it and fall back to generation [gen] *)
              let snap = In_channel.with_open_bin snap_path In_channel.input_all in
              let cut_snap =
                Workload.Mt19937_64.next_below rng (String.length snap)
              in
              let oc = open_out_bin (Persist.snapshot_file ~dir ~gen:(gen + 1)) in
              output_string oc (String.sub snap 0 cut_snap);
              close_out oc;
              "wal-cut+torn-next-snapshot"
            end
            else "wal-cut"
          in
          match
            Persist.open_or_create ~config ~sync_every_ops ~rotate_bytes dir
          with
          | Error e -> fail "reopen after %s: %s" scenario (err_to_string e)
          | Ok p2 -> (
              let r = Persist.recovery p2 in
              let recovered = base + r.Persist.replayed_ops in
              if r.Persist.generation <> gen then
                fail "recovered from generation %d, expected %d"
                  r.Persist.generation gen
              else if recovered < durable then
                fail
                  "acknowledged ops lost: %d durable at crash, only %d \
                   recovered (%s, cut=%d)"
                  durable recovered scenario cut
              else if recovered > !logged then
                fail "recovered %d ops but only %d were ever logged" recovered
                  !logged
              else begin
                (* The recovered store must equal the oracle's replay of
                   exactly the first [recovered] logged mutations. *)
                let oracle = Rbtree.create () in
                Array.iteri
                  (fun i op ->
                    if i < recovered then
                      match op with
                      | L_put (k, v) -> Rbtree.put oracle k v
                      | L_add k -> Rbtree.add oracle k
                      | L_del k -> ignore (Rbtree.delete oracle k))
                  ops_log;
                let store = Persist.store p2 in
                let divergence = ref None in
                let expected = ref [] in
                Rbtree.range oracle (fun k v ->
                    expected := (k, v) :: !expected;
                    true);
                let expected = ref (List.rev !expected) in
                H.Store.range store (fun k v ->
                    (match !expected with
                    | [] ->
                        divergence := Some (Printf.sprintf "extra key %S" k)
                    | (ek, ev) :: rest ->
                        if k <> ek || v <> ev then
                          divergence :=
                            Some
                              (Printf.sprintf "store has %S, oracle has %S" k ek)
                        else expected := rest);
                    !divergence = None);
                (match (!divergence, !expected) with
                | None, (ek, _) :: _ ->
                    divergence := Some (Printf.sprintf "missing key %S" ek)
                | _ -> ());
                match !divergence with
                | Some d ->
                    fail "post-recovery dump diverges (%s, cut=%d): %s"
                      scenario cut d
                | None -> (
                    let audit_problem =
                      match H.Validate.check_store store with
                      | e :: _ ->
                          Some (Format.asprintf "%a" H.Validate.pp_error e)
                      | [] ->
                          (* [Persist.open_or_create] already heap-audits
                             the recovered store; this second pass covers
                             the replayed-WAL + oracle-diffed state under
                             the same reporting as the other chaos modes. *)
                          if heapcheck then
                            Option.map (( ^ ) "heap audit: ")
                              (Analyze.Heapcheck.first_problem
                                 (Analyze.Heapcheck.audit_store store))
                          else None
                    in
                    match audit_problem with
                    | Some why -> fail "post-recovery audit: %s" why
                    | None -> (
                        (* liveness: the recovered handle must still accept
                           and persist new mutations *)
                        match Persist.put p2 "post/recovery/probe" 1L with
                        | Error e -> fail "post-recovery put: %s" (err_to_string e)
                        | Ok () -> (
                            match Persist.close p2 with
                            | Error e ->
                                fail "post-recovery close: %s" (err_to_string e)
                            | Ok () ->
                                wipe_dir dir;
                                Ok
                                  {
                                    ops_logged = !logged;
                                    acked = durable;
                                    recovered;
                                    cut_bytes = size - cut;
                                    rotations;
                                    scenario;
                                  })))
              end)))
