module H = Hyperion

type outcome = {
  ops : int;
  mutations_ok : int;
  mutations_failed : int;
  injected_faults : int;
  audits : int;
  saturation_errors : int;
  final_keys : int;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d ops: %d mutations ok, %d rejected (%d saturation), %d faults \
     injected, %d audits, %d keys stored"
    o.ops o.mutations_ok o.mutations_failed o.saturation_errors
    o.injected_faults o.audits o.final_keys

exception Divergence of string

(* Deterministic key shapes: a mix of short, suffixed and prefixed keys so
   the workload exercises path compression, embedded containers and multi-
   container paths, while the same id always denotes the same key. *)
let key_for id =
  let base = Printf.sprintf "%06x" id in
  match id mod 5 with
  | 0 -> base
  | 1 -> base ^ "-tail"
  | 2 -> base ^ String.make (8 + (id mod 40)) 'x'
  | 3 -> "pfx/" ^ base
  | _ -> base ^ "!"

let run ?(config = H.Config.default) ?(plan = Fault.none)
    ?(validate_every = 1000) ?(key_space = 4096) ?store ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run: negative ops";
  if key_space <= 0 then invalid_arg "Chaos.run: key_space must be positive";
  if validate_every <= 0 then
    invalid_arg "Chaos.run: validate_every must be positive";
  let rng = Workload.Mt19937_64.create seed in
  let store =
    match store with Some s -> s | None -> H.Store.create ~config ()
  in
  H.Store.set_fault_plan store plan;
  let oracle = Rbtree.create () in
  (* A pre-existing (e.g. just-recovered) store seeds the oracle, so the
     differential run starts from agreement instead of a false divergence. *)
  H.Store.iter store (fun k v ->
      match v with Some v -> Rbtree.put oracle k v | None -> Rbtree.add oracle k);
  let mutations_ok = ref 0
  and mutations_failed = ref 0
  and audits = ref 0
  and saturation_errors = ref 0 in
  let diverge op fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Divergence
             (Printf.sprintf "chaos seed=%Ld op=%d: %s; plan: %s" seed op msg
                (Fault.describe plan))))
      fmt
  in
  let audit op =
    incr audits;
    match H.Validate.check_store store with
    | [] -> ()
    | errs ->
        diverge op "audit found %d structural violation(s); first: %s"
          (List.length errs)
          (Format.asprintf "%a" H.Validate.pp_error (List.hd errs))
  in
  let check_key op key =
    let hv = H.Store.get store key and ov = Rbtree.get oracle key in
    if hv <> ov then
      diverge op "lookup mismatch on %S: hyperion=%s oracle=%s" key
        (match hv with Some v -> Int64.to_string v | None -> "absent")
        (match ov with Some v -> Int64.to_string v | None -> "absent")
  in
  let note_error e =
    incr mutations_failed;
    if e = H.Hyperion_error.Arena_saturated then incr saturation_errors
  in
  try
    for op = 0 to ops - 1 do
      let fired_before = Fault.fired_count plan in
      let id = Workload.Mt19937_64.next_below rng key_space in
      let key = key_for id in
      let dice = Workload.Mt19937_64.next_below rng 100 in
      (if dice < 55 then begin
         let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
         match H.Store.put_result store key v with
         | Ok () ->
             incr mutations_ok;
             Rbtree.put oracle key v
         | Error e ->
             note_error e;
             (* a rejected put must leave the old binding intact *)
             check_key op key
       end
       else if dice < 75 then begin
         match H.Store.delete_result store key with
         | Ok removed ->
             incr mutations_ok;
             let oracle_removed = Rbtree.delete oracle key in
             if removed <> oracle_removed then
               diverge op "delete %S: hyperion=%b oracle=%b" key removed
                 oracle_removed
         | Error e ->
             note_error e;
             check_key op key
       end
       else if dice < 95 then check_key op key
       else if H.Store.length store <> Rbtree.length oracle then
         diverge op "length mismatch: hyperion=%d oracle=%d"
           (H.Store.length store) (Rbtree.length oracle));
      if Fault.fired_count plan > fired_before then audit op
      else if (op + 1) mod validate_every = 0 then audit op
    done;
    audit ops;
    (* Final full sweep: same bindings, same order. *)
    let expected = ref [] in
    Rbtree.range oracle (fun k v ->
        expected := (k, v) :: !expected;
        true);
    let expected = ref (List.rev !expected) in
    let sweep_pos = ref 0 in
    H.Store.range store (fun k v ->
        (match !expected with
        | [] -> diverge ops "sweep: extra key %S in hyperion" k
        | (ek, ev) :: rest ->
            if k <> ek || v <> ev then
              diverge ops "sweep at #%d: hyperion has %S, oracle has %S"
                !sweep_pos k ek;
            expected := rest);
        incr sweep_pos;
        true);
    (match !expected with
    | [] -> ()
    | (ek, _) :: _ -> diverge ops "sweep: key %S missing from hyperion" ek);
    Ok
      {
        ops;
        mutations_ok = !mutations_ok;
        mutations_failed = !mutations_failed;
        injected_faults = Fault.fired_count plan;
        audits = !audits;
        saturation_errors = !saturation_errors;
        final_keys = H.Store.length store;
      }
  with Divergence msg -> Error msg

(* --- crash-recovery chaos (DESIGN.md section 8 crash matrix) --------- *)

type crash_outcome = {
  ops_logged : int;
  acked : int;
  recovered : int;
  cut_bytes : int;
  rotations : int;
  scenario : string;
}

let pp_crash_outcome fmt o =
  Format.fprintf fmt
    "%d ops logged (%d acked), killed via %s cutting %d byte(s), %d \
     rotation(s), recovered %d ops"
    o.ops_logged o.acked o.scenario o.cut_bytes o.rotations o.recovered

type logged_op = L_put of string * int64 | L_add of string | L_del of string

let wipe_dir dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let run_crash ?(config = H.Config.default) ?(key_space = 2048)
    ?(sync_every_ops = 16) ?(rotate_bytes = 8192) ~dir ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run_crash: negative ops";
  if key_space <= 0 then
    invalid_arg "Chaos.run_crash: key_space must be positive";
  let dir = Filename.concat dir (Printf.sprintf "crash-%Ld" seed) in
  wipe_dir dir;
  let rng = Workload.Mt19937_64.create seed in
  let fail fmt =
    Printf.ksprintf
      (fun msg -> Error (Printf.sprintf "crash chaos seed=%Ld: %s" seed msg))
      fmt
  in
  let err_to_string = H.Hyperion_error.to_string in
  match
    Persist.open_or_create ~config ~sync_every_ops ~rotate_bytes dir
  with
  | Error e -> fail "initial open: %s" (err_to_string e)
  | Ok p -> (
      (* Seeded workload through the logged handle; [log] keeps exactly the
         mutations that reached the WAL, in order. *)
      let log = ref [] and logged = ref 0 in
      let record op =
        log := op :: !log;
        incr logged
      in
      let rec drive op_i =
        if op_i >= ops then Ok ()
        else
          let id = Workload.Mt19937_64.next_below rng key_space in
          let key = key_for id in
          let dice = Workload.Mt19937_64.next_below rng 100 in
          let step =
            if dice < 50 then
              let v =
                Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000)
              in
              match Persist.put p key v with
              | Ok () ->
                  record (L_put (key, v));
                  Ok ()
              | Error e -> Error e
            else if dice < 65 then
              match Persist.add p key with
              | Ok () ->
                  record (L_add key);
                  Ok ()
              | Error e -> Error e
            else
              match Persist.delete p key with
              | Ok true ->
                  record (L_del key);
                  Ok ()
              | Ok false -> Ok ()
              | Error e -> Error e
          in
          match step with Ok () -> drive (op_i + 1) | Error _ as e -> e
      in
      match drive 0 with
      | Error e -> fail "workload: %s" (err_to_string e)
      | Ok () -> (
          let ops_log = Array.of_list (List.rev !log) in
          let gen = Persist.generation p in
          let base = Persist.snapshot_base p in
          let durable = Persist.durable_ops p in
          let watermark = Persist.wal_synced_bytes p in
          let size = Persist.wal_size p in
          let rotations = Persist.rotations p in
          Persist.crash p;
          (* Kill at a uniformly random WAL offset at or past the durable
             watermark (the crash model: fsynced bytes survive, anything
             later may tear — including mid-record). *)
          let cut = watermark + Workload.Mt19937_64.next_below rng (size - watermark + 1) in
          let wal_path = Persist.wal_file ~dir ~gen in
          Unix.truncate wal_path cut;
          let snap_path = Persist.snapshot_file ~dir ~gen in
          let scenario_dice = Workload.Mt19937_64.next_below rng 100 in
          let scenario =
            if scenario_dice < 30 then begin
              (* crash mid-rotation, while the next snapshot was still being
                 streamed to its .tmp file *)
              let tmp = Persist.snapshot_file ~dir ~gen:(gen + 1) ^ ".tmp" in
              let oc = open_out_bin tmp in
              output_string oc (String.init (Workload.Mt19937_64.next_below rng 512) (fun i -> Char.chr ((i * 37) land 0xff)));
              close_out oc;
              "wal-cut+partial-tmp-snapshot"
            end
            else if scenario_dice < 50 then begin
              (* a newer snapshot that never became fully durable: recovery
                 must skip it and fall back to generation [gen] *)
              let snap = In_channel.with_open_bin snap_path In_channel.input_all in
              let cut_snap =
                Workload.Mt19937_64.next_below rng (String.length snap)
              in
              let oc = open_out_bin (Persist.snapshot_file ~dir ~gen:(gen + 1)) in
              output_string oc (String.sub snap 0 cut_snap);
              close_out oc;
              "wal-cut+torn-next-snapshot"
            end
            else "wal-cut"
          in
          match
            Persist.open_or_create ~config ~sync_every_ops ~rotate_bytes dir
          with
          | Error e -> fail "reopen after %s: %s" scenario (err_to_string e)
          | Ok p2 -> (
              let r = Persist.recovery p2 in
              let recovered = base + r.Persist.replayed_ops in
              if r.Persist.generation <> gen then
                fail "recovered from generation %d, expected %d"
                  r.Persist.generation gen
              else if recovered < durable then
                fail
                  "acknowledged ops lost: %d durable at crash, only %d \
                   recovered (%s, cut=%d)"
                  durable recovered scenario cut
              else if recovered > !logged then
                fail "recovered %d ops but only %d were ever logged" recovered
                  !logged
              else begin
                (* The recovered store must equal the oracle's replay of
                   exactly the first [recovered] logged mutations. *)
                let oracle = Rbtree.create () in
                Array.iteri
                  (fun i op ->
                    if i < recovered then
                      match op with
                      | L_put (k, v) -> Rbtree.put oracle k v
                      | L_add k -> Rbtree.add oracle k
                      | L_del k -> ignore (Rbtree.delete oracle k))
                  ops_log;
                let store = Persist.store p2 in
                let divergence = ref None in
                let expected = ref [] in
                Rbtree.range oracle (fun k v ->
                    expected := (k, v) :: !expected;
                    true);
                let expected = ref (List.rev !expected) in
                H.Store.range store (fun k v ->
                    (match !expected with
                    | [] ->
                        divergence := Some (Printf.sprintf "extra key %S" k)
                    | (ek, ev) :: rest ->
                        if k <> ek || v <> ev then
                          divergence :=
                            Some
                              (Printf.sprintf "store has %S, oracle has %S" k ek)
                        else expected := rest);
                    !divergence = None);
                (match (!divergence, !expected) with
                | None, (ek, _) :: _ ->
                    divergence := Some (Printf.sprintf "missing key %S" ek)
                | _ -> ());
                match !divergence with
                | Some d ->
                    fail "post-recovery dump diverges (%s, cut=%d): %s"
                      scenario cut d
                | None -> (
                    match H.Validate.check_store store with
                    | e :: _ ->
                        fail "post-recovery audit: %s"
                          (Format.asprintf "%a" H.Validate.pp_error e)
                    | [] -> (
                        (* liveness: the recovered handle must still accept
                           and persist new mutations *)
                        match Persist.put p2 "post/recovery/probe" 1L with
                        | Error e -> fail "post-recovery put: %s" (err_to_string e)
                        | Ok () -> (
                            match Persist.close p2 with
                            | Error e ->
                                fail "post-recovery close: %s" (err_to_string e)
                            | Ok () ->
                                wipe_dir dir;
                                Ok
                                  {
                                    ops_logged = !logged;
                                    acked = durable;
                                    recovered;
                                    cut_bytes = size - cut;
                                    rotations;
                                    scenario;
                                  })))
              end)))
