module H = Hyperion

type outcome = {
  ops : int;
  mutations_ok : int;
  mutations_failed : int;
  injected_faults : int;
  audits : int;
  saturation_errors : int;
  final_keys : int;
}

let pp_outcome fmt o =
  Format.fprintf fmt
    "%d ops: %d mutations ok, %d rejected (%d saturation), %d faults \
     injected, %d audits, %d keys stored"
    o.ops o.mutations_ok o.mutations_failed o.saturation_errors
    o.injected_faults o.audits o.final_keys

exception Divergence of string

(* Deterministic key shapes: a mix of short, suffixed and prefixed keys so
   the workload exercises path compression, embedded containers and multi-
   container paths, while the same id always denotes the same key. *)
let key_for id =
  let base = Printf.sprintf "%06x" id in
  match id mod 5 with
  | 0 -> base
  | 1 -> base ^ "-tail"
  | 2 -> base ^ String.make (8 + (id mod 40)) 'x'
  | 3 -> "pfx/" ^ base
  | _ -> base ^ "!"

let run ?(config = H.Config.default) ?(plan = Fault.none)
    ?(validate_every = 1000) ?(key_space = 4096) ~seed ~ops () =
  if ops < 0 then invalid_arg "Chaos.run: negative ops";
  if key_space <= 0 then invalid_arg "Chaos.run: key_space must be positive";
  if validate_every <= 0 then
    invalid_arg "Chaos.run: validate_every must be positive";
  let rng = Workload.Mt19937_64.create seed in
  let store = H.Store.create ~config () in
  H.Store.set_fault_plan store plan;
  let oracle = Rbtree.create () in
  let mutations_ok = ref 0
  and mutations_failed = ref 0
  and audits = ref 0
  and saturation_errors = ref 0 in
  let diverge op fmt =
    Printf.ksprintf
      (fun msg ->
        raise
          (Divergence
             (Printf.sprintf "chaos seed=%Ld op=%d: %s; plan: %s" seed op msg
                (Fault.describe plan))))
      fmt
  in
  let audit op =
    incr audits;
    match H.Validate.check_store store with
    | [] -> ()
    | errs ->
        diverge op "audit found %d structural violation(s); first: %s"
          (List.length errs)
          (Format.asprintf "%a" H.Validate.pp_error (List.hd errs))
  in
  let check_key op key =
    let hv = H.Store.get store key and ov = Rbtree.get oracle key in
    if hv <> ov then
      diverge op "lookup mismatch on %S: hyperion=%s oracle=%s" key
        (match hv with Some v -> Int64.to_string v | None -> "absent")
        (match ov with Some v -> Int64.to_string v | None -> "absent")
  in
  let note_error e =
    incr mutations_failed;
    if e = H.Hyperion_error.Arena_saturated then incr saturation_errors
  in
  try
    for op = 0 to ops - 1 do
      let fired_before = Fault.fired_count plan in
      let id = Workload.Mt19937_64.next_below rng key_space in
      let key = key_for id in
      let dice = Workload.Mt19937_64.next_below rng 100 in
      (if dice < 55 then begin
         let v = Int64.of_int (Workload.Mt19937_64.next_below rng 1_000_000) in
         match H.Store.put_result store key v with
         | Ok () ->
             incr mutations_ok;
             Rbtree.put oracle key v
         | Error e ->
             note_error e;
             (* a rejected put must leave the old binding intact *)
             check_key op key
       end
       else if dice < 75 then begin
         match H.Store.delete_result store key with
         | Ok removed ->
             incr mutations_ok;
             let oracle_removed = Rbtree.delete oracle key in
             if removed <> oracle_removed then
               diverge op "delete %S: hyperion=%b oracle=%b" key removed
                 oracle_removed
         | Error e ->
             note_error e;
             check_key op key
       end
       else if dice < 95 then check_key op key
       else if H.Store.length store <> Rbtree.length oracle then
         diverge op "length mismatch: hyperion=%d oracle=%d"
           (H.Store.length store) (Rbtree.length oracle));
      if Fault.fired_count plan > fired_before then audit op
      else if (op + 1) mod validate_every = 0 then audit op
    done;
    audit ops;
    (* Final full sweep: same bindings, same order. *)
    let expected = ref [] in
    Rbtree.range oracle (fun k v ->
        expected := (k, v) :: !expected;
        true);
    let expected = ref (List.rev !expected) in
    let sweep_pos = ref 0 in
    H.Store.range store (fun k v ->
        (match !expected with
        | [] -> diverge ops "sweep: extra key %S in hyperion" k
        | (ek, ev) :: rest ->
            if k <> ek || v <> ev then
              diverge ops "sweep at #%d: hyperion has %S, oracle has %S"
                !sweep_pos k ek;
            expected := rest);
        incr sweep_pos;
        true);
    (match !expected with
    | [] -> ()
    | (ek, _) :: _ -> diverge ops "sweep: key %S missing from hyperion" ek);
    Ok
      {
        ops;
        mutations_ok = !mutations_ok;
        mutations_failed = !mutations_failed;
        injected_faults = Fault.fired_count plan;
        audits = !audits;
        saturation_errors = !saturation_errors;
        final_keys = H.Store.length store;
      }
  with Divergence msg -> Error msg
