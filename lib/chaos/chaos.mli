(** Differential chaos harness: a seeded random workload executed against
    Hyperion and a red-black-tree oracle simultaneously, with faults
    injected from a {!Fault.t} plan.

    Every mutation is applied to both stores; a mutation that Hyperion
    rejects with a typed error must leave Hyperion observably unchanged
    (the oracle is not updated either, and the two are compared).  After
    every injected fault — and periodically — the whole store is audited
    with {!Hyperion.Validate}; any structural violation fails the run.

    Runs are deterministic in [(seed, ops, config, plan)], so a failure
    message, which embeds the seed and the plan's firing history, is a
    complete replay recipe. *)

type outcome = {
  ops : int;  (** operations executed *)
  mutations_ok : int;
  mutations_failed : int;  (** typed-error rejections (expected under faults) *)
  injected_faults : int;  (** plan firings over the whole run *)
  audits : int;  (** full Validate sweeps performed *)
  saturation_errors : int;  (** [Arena_saturated] rejections observed *)
  final_keys : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

val run :
  ?config:Hyperion.Config.t ->
  ?plan:Fault.t ->
  ?validate_every:int ->
  ?key_space:int ->
  seed:int64 ->
  ops:int ->
  unit ->
  (outcome, string) result
(** [run ~seed ~ops ()] executes [ops] random operations (puts, deletes,
    point lookups, length checks) over a bounded key space (default 4096
    distinct keys, so updates and deletes hit existing keys), then performs
    a final audit and a full ordered sweep comparing Hyperion against the
    oracle.  [validate_every] (default 1000) bounds the distance between
    audits even when no fault fires; every fault firing triggers an
    immediate audit.  [Error msg] carries the divergence or violation plus
    the seed and plan history needed to replay it. *)
