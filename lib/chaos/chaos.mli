(** Differential chaos harness: a seeded random workload executed against
    Hyperion and a red-black-tree oracle simultaneously, with faults
    injected from a {!Fault.t} plan.

    Every mutation is applied to both stores; a mutation that Hyperion
    rejects with a typed error must leave Hyperion observably unchanged
    (the oracle is not updated either, and the two are compared).  After
    every injected fault — and periodically — the whole store is audited
    with {!Hyperion.Validate}; any structural violation fails the run.

    Runs are deterministic in [(seed, ops, config, plan)], so a failure
    message, which embeds the seed and the plan's firing history, is a
    complete replay recipe. *)

type outcome = {
  ops : int;  (** operations executed *)
  mutations_ok : int;
  mutations_failed : int;  (** typed-error rejections (expected under faults) *)
  injected_faults : int;  (** plan firings over the whole run *)
  audits : int;  (** full Validate sweeps performed *)
  saturation_errors : int;  (** [Arena_saturated] rejections observed *)
  final_keys : int;
}

val pp_outcome : Format.formatter -> outcome -> unit

val key_for : int -> string
(** The deterministic key the workload derives from id [i] — a mix of
    short, suffixed and prefixed shapes.  Exposed so a key-compression
    dictionary can be trained on exactly the closed key universe a run
    will generate ([hyperion_cli chaos --compress]). *)

val run :
  ?config:Hyperion.Config.t ->
  ?compress:Compress.t ->
  ?plan:Fault.t ->
  ?validate_every:int ->
  ?key_space:int ->
  ?heapcheck:bool ->
  ?on_op:(int -> unit) ->
  ?store:Hyperion.Store.t ->
  seed:int64 ->
  ops:int ->
  unit ->
  (outcome, string) result
(** [run ~seed ~ops ()] executes [ops] random operations (puts, deletes,
    point lookups, length checks) over a bounded key space (default 4096
    distinct keys, so updates and deletes hit existing keys), then performs
    a final audit and a full ordered sweep comparing Hyperion against the
    oracle.  [validate_every] (default 1000) bounds the distance between
    audits even when no fault fires; every fault firing triggers an
    immediate audit.  [Error msg] carries the divergence or violation plus
    the seed and plan history needed to replay it.

    [?store] runs the workload against an existing store — e.g. one just
    recovered by {!Persist.open_or_create} — instead of a fresh one; its
    current bindings seed the oracle.

    [?heapcheck] (default [true]) additionally runs the
    {!Analyze.Heapcheck} mark-and-sweep heap sanitizer on every audit
    round, so an allocator leak or double-referenced chunk fails the run
    with the same replay recipe as a structural violation.

    [?on_op] is invoked after every completed operation with its index —
    a progress hook, e.g. for periodic telemetry dumps ([hyperion_cli
    chaos --metrics-every]).

    [?compress] (default identity) threads an order-preserving key encoder
    between the workload and the store, exactly where the shard and CLI
    front doors put it: every store operation sees encoded keys, the
    oracle keeps raw ones, and the final ordered sweep decodes each stored
    key on the way out — a decode failure or order divergence fails the
    run like any other mismatch.  The caller is responsible for [config]
    agreeing ([config.compress = Compress.id compress]). *)

(** {1 Sharded chaos}

    The multi-domain counterpart: several client domains hammer one
    {!Hyperion_shard} front-end concurrently — blocking mutations, batched
    flushes, direct reads — while the coordinator runs quiesced audits
    (per-shard {!Hyperion.Validate} sweep plus the iter/length
    point-in-time consistency check).  Clients own {e disjoint} key sets
    (ids congruent to the client index), so although the interleaving is
    nondeterministic, the final store state is deterministic in the seed
    and must match a red-black-tree oracle byte for byte.

    With [?dir], the store runs through the per-shard durability layer;
    after the workload the run group-commits, simulates a process kill,
    reopens the directory (parallel per-shard recovery) and demands the
    recovered store again be byte-identical to the oracle. *)

type sharded_outcome = {
  sh_shards : int;
  sh_clients : int;
  sh_ops : int;
  sh_mutations : int;  (** acknowledged mutations across all clients *)
  sh_batched : int;  (** of those, shipped through the batch/flush path *)
  sh_audits : int;  (** quiesced audits (concurrent + final) *)
  sh_final_keys : int;
  sh_recovered_shards : int;  (** shards reopened after the kill; 0 in-memory *)
  sh_replayed : int;  (** WAL records replayed across shards at reopen *)
}

val pp_sharded_outcome : Format.formatter -> sharded_outcome -> unit

val run_sharded :
  ?config:Hyperion.Config.t ->
  ?shards:int ->
  ?clients:int ->
  ?key_space:int ->
  ?heapcheck:bool ->
  ?dir:string ->
  seed:int64 ->
  ops:int ->
  unit ->
  (sharded_outcome, string) result
(** [run_sharded ~seed ~ops ()] splits [ops] across the clients (default
    [min shards 4]).  Fault injection is not supported here — plans are
    not domain-safe; the single-store chaos modes cover it.  [?dir] works
    in [dir/shard-chaos-<seed>] (wiped before and after).  [?heapcheck]
    (default [true]) runs the heap sanitizer on every shard store inside
    each quiesced audit.  [Error msg] embeds the seed and the failing
    check. *)

(** {1 Crash-recovery chaos}

    The durability counterpart: a seeded workload is driven through a
    {!Persist} logged handle, the process "dies" at a random write-ahead-log
    byte offset (at or past the group-commit watermark — fsynced bytes
    survive a crash, later ones may tear mid-record), optionally alongside a
    rotation caught mid-snapshot, and the directory is reopened.  The
    recovered store must reproduce {e exactly} a prefix of the logged
    mutations: at least every acknowledged (fsynced) one, never a torn or
    reordered state.  See DESIGN.md section 8 for the crash matrix. *)

type crash_outcome = {
  ops_logged : int;  (** mutations that reached the WAL before the kill *)
  acked : int;  (** of those, durable (group-committed) at the kill *)
  recovered : int;  (** prefix length the reopened store reproduced *)
  cut_bytes : int;  (** WAL bytes torn off by the simulated crash *)
  rotations : int;  (** snapshot rotations during the workload *)
  scenario : string;  (** which crash-matrix row was exercised *)
}

val pp_crash_outcome : Format.formatter -> crash_outcome -> unit

val run_crash :
  ?config:Hyperion.Config.t ->
  ?key_space:int ->
  ?sync_every_ops:int ->
  ?rotate_bytes:int ->
  ?heapcheck:bool ->
  dir:string ->
  seed:int64 ->
  ops:int ->
  unit ->
  (crash_outcome, string) result
(** [run_crash ~dir ~seed ~ops ()] is deterministic in [(seed, ops, config,
    sync_every_ops, rotate_bytes)].  It works in [dir/crash-<seed>] (wiped
    before and after).  Defaults force frequent group commits
    ([sync_every_ops = 16]) and rotations ([rotate_bytes = 8192]) so short
    runs still cross every crash window.  [?heapcheck] (default [true])
    heap-audits the recovered store after the post-crash reopen (on top of
    the audit {!Persist.open_or_create} performs itself).  [Error msg]
    embeds the seed, the scenario and the cut offset — a complete replay
    recipe. *)

(** {1 Disk-fault chaos}

    The storage-fault counterpart (DESIGN.md section 12): the workload runs
    through a {!Persist} handle whose syscalls are interposed by
    {!Persist.Io} with a seeded {!Fault} plan over {!Fault.io_sites}
    ([EIO], [ENOSPC], short writes, fsync failures, failed opens/reads/
    renames).  The run asserts the full degraded-mode contract: a storage
    failure surfaces as a typed [Degraded] rejection (or flips the handle
    after an acked group-commit failure), degradation is {e sticky} and
    strictly read-only, reads keep matching the oracle throughout,
    {!Persist.heal} (with injection disarmed) re-arms writes, and the run
    ends with the same kill-at-a-random-WAL-offset prefix-consistency check
    as {!run_crash}. *)

type diskfault_outcome = {
  df_ops : int;
  df_acked : int;  (** mutations acknowledged (and therefore logged) *)
  df_rejected : int;  (** typed [Degraded] rejections *)
  df_injected : int;  (** I/O faults injected across all plan cycles *)
  df_heals : int;  (** degraded → healed cycles *)
  df_audits : int;
  df_recovered : int;  (** prefix reproduced after the final crash *)
  df_final_keys : int;
}

val pp_diskfault_outcome : Format.formatter -> diskfault_outcome -> unit

val run_diskfault :
  ?config:Hyperion.Config.t ->
  ?key_space:int ->
  ?sync_every_ops:int ->
  ?rotate_bytes:int ->
  ?heapcheck:bool ->
  ?per_mille:int ->
  dir:string ->
  seed:int64 ->
  ops:int ->
  unit ->
  (diskfault_outcome, string) result
(** [run_diskfault ~dir ~seed ~ops ()] works in [dir/diskfault-<seed>]
    (wiped before and after).  [per_mille] (default 3) is the per-syscall
    injection probability; each heal cycle re-arms a fresh plan derived
    from [seed].  Deterministic in its parameters; [Error msg] embeds the
    seed. *)

type sharded_diskfault_outcome = {
  sdf_shards : int;
  sdf_clients : int;
  sdf_ops : int;
  sdf_acked : int;  (** acknowledged mutations across all clients *)
  sdf_rejected : int;  (** typed rejections clients absorbed *)
  sdf_injected : int;  (** I/O faults injected across shards and cycles *)
  sdf_heals : int;  (** degraded → healed cycles *)
  sdf_kills : int;  (** worker crashes injected via the poison hook *)
  sdf_restarts : int;  (** dead shards rebuilt with [restart_shard] *)
  sdf_audits : int;
  sdf_final_keys : int;
}

val pp_sharded_diskfault_outcome :
  Format.formatter -> sharded_diskfault_outcome -> unit

val run_sharded_diskfault :
  ?config:Hyperion.Config.t ->
  ?shards:int ->
  ?clients:int ->
  ?key_space:int ->
  ?heapcheck:bool ->
  ?per_mille:int ->
  dir:string ->
  seed:int64 ->
  ops:int ->
  unit ->
  (sharded_diskfault_outcome, string) result
(** [run_sharded_diskfault ~dir ~seed ~ops ()] drives fault-tolerant
    client domains over a durable {!Hyperion_shard} front-end whose
    per-shard durability syscalls carry seeded fault plans, while the
    coordinator interleaves quiesced audits, seeded worker kills (the
    supervision path: every pending request must complete with a typed
    error, never hang), single-shard restarts from their persist dirs, and
    cluster-wide heals.  Clients model exactly the acknowledged mutations —
    including partially applied batch slices via
    {!Hyperion_shard.Batch.flush_report} — and the final store, both before
    and after a group-commit + kill + parallel recovery, must equal the
    merged oracle of every client's acked log.  [per_mille] defaults to 2.
    Works in [dir/sharded-diskfault-<seed>] (wiped before and after). *)
