(** Versioned, CRC-framed binary snapshots of a whole store.

    A snapshot (format v2) is the {!Frame} header (magic ["HYPSNAP\x01"],
    aux = key count; flags bit 0 = preprocess, bits 1-2 = key-encoder
    scheme id), then one CRC-framed {e dictionary record} (empty payload
    for the identity encoder, the 258-byte {!Compress.dict_to_string}
    blob for the dict scheme), then one CRC-framed record per binding,
    written by streaming {!Hyperion.Store.iter}'s ordered enumeration.
    Record payloads are [tag · key · value?]: tag [0] is a value-less
    (type-10) key, tag [1] appends the 8-byte LE value.  Keys are stored
    exactly as the trie holds them — {e post}-encoding when a key
    compressor is active — so recovery needs no retraining and no
    re-encoding pass.

    The header fingerprint is {!Compress.mix_fingerprint} of the config
    fingerprint and the encoder, so a dictionary swap changes the
    fingerprint even though the config is equal.  Format v1 files (no
    dictionary record, identity encoder, plain config fingerprint) are
    still read: identity mixes as a no-op, so their fingerprints verify
    unchanged.

    [save] is atomic: it writes [path ^ ".tmp"], fsyncs, renames over
    [path], then fsyncs the directory — a crash mid-snapshot leaves at
    worst a stale [.tmp] and the previous generation intact.

    Load reinserts records by sorted bulk insertion (ascending key order is
    the trie's cheapest insertion order: every put descends a warm
    right-edge path). *)

val format_version : int
(** 2.  Files at version 1 are accepted by {!load}; anything else is
    [Version_mismatch]. *)

val magic : string

type header = {
  version : int;
  preprocess : bool;
  encoder : int;  (** key-encoder scheme id (0 identity, 1 dict) *)
  fingerprint : int64;  (** already encoder-mixed *)
  count : int;
}

val read_header : ?io:Io.t -> string -> (header, Hyperion.Hyperion_error.t) result
(** Header of the snapshot at [path], without loading records. *)

val probe :
  ?io:Io.t -> string -> (header * Compress.t, Hyperion.Hyperion_error.t) result
(** Header {e and} the persisted encoder (dictionary parsed and
    validated), without loading records — what config inference needs. *)

val save :
  ?io:Io.t -> ?compress:Compress.t -> Hyperion.Store.t -> string ->
  (int, Hyperion.Hyperion_error.t) result
(** [save ~compress store path] writes atomically and returns the
    snapshot's size in bytes.  [compress] (default [Identity]) is the
    encoder the store's keys were encoded with; it is persisted alongside
    them.  All syscalls go through [io] (default {!Io.none}); errors are
    [Io_error].  A refused directory fsync is tolerated and counted (see
    {!Io.fsync_dir}).
    @raise Invalid_argument when the store config's [compress] id
    disagrees with [compress] — that is a wiring bug, not a disk state. *)

val load :
  ?io:Io.t -> ?expect:Compress.t -> config:Hyperion.Config.t -> string ->
  (Hyperion.Store.t * Compress.t, Hyperion.Hyperion_error.t) result
(** Rebuild a store from [path], returning it with the encoder its keys
    are encoded under.  [Version_mismatch] when the format version is
    neither 1 nor 2, when the file's encoder scheme differs from
    [config.compress], or when [expect] is given and the file's encoder
    is not {!Compress.equal} to it (the [found]/[expected] ints carry
    {!Compress.tag}s); [Corrupt_snapshot] on bad magic, any CRC mismatch,
    a malformed dictionary, truncation, trailing bytes, a record count
    that disagrees with the header, or a mixed fingerprint differing from
    [config]'s; [Io_error] on OS failures.  Never raises on file
    contents. *)
