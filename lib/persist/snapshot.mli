(** Versioned, CRC-framed binary snapshots of a whole store.

    A snapshot is the {!Frame} header (magic ["HYPSNAP\x01"], aux = key
    count) followed by one CRC-framed record per binding, written by
    streaming {!Hyperion.Store.iter}'s ordered enumeration.  Record
    payloads are [tag · key · value?]: tag [0] is a value-less (type-10)
    key, tag [1] appends the 8-byte LE value.  Keys are stored in logical
    (pre-processing-decoded) form, so a snapshot round-trips bindings
    bit-exactly under any config whose fingerprint matches.

    [save] is atomic: it writes [path ^ ".tmp"], fsyncs, renames over
    [path], then fsyncs the directory — a crash mid-snapshot leaves at
    worst a stale [.tmp] and the previous generation intact.

    Load reinserts records by sorted bulk insertion (ascending key order is
    the trie's cheapest insertion order: every put descends a warm
    right-edge path). *)

val format_version : int
val magic : string

type header = {
  version : int;
  preprocess : bool;
  fingerprint : int64;
  count : int;
}

val read_header : ?io:Io.t -> string -> (header, Hyperion.Hyperion_error.t) result
(** Header of the snapshot at [path], without loading records. *)

val save :
  ?io:Io.t -> Hyperion.Store.t -> string ->
  (int, Hyperion.Hyperion_error.t) result
(** [save store path] writes atomically and returns the snapshot's size in
    bytes.  All syscalls go through [io] (default {!Io.none}); errors are
    [Io_error].  A refused directory fsync is tolerated and counted (see
    {!Io.fsync_dir}). *)

val load :
  ?io:Io.t -> config:Hyperion.Config.t -> string ->
  (Hyperion.Store.t, Hyperion.Hyperion_error.t) result
(** Rebuild a store from [path].  [Version_mismatch] when the format
    version differs, [Corrupt_snapshot] on bad magic, any CRC mismatch,
    truncation, trailing bytes, a record count that disagrees with the
    header, or a config fingerprint differing from [config]'s;
    [Io_error] on OS failures.  Never raises. *)
