module E = Hyperion.Hyperion_error
module T = Telemetry

(* I/O-interposition telemetry: every syscall the durability layer issues
   funnels through this module, so retries, injected faults and the
   once-silent directory-fsync refusals all become visible counters. *)
let c_retries =
  T.Counter.make "hyperion_io_retries_total"
    ~help:"Durability-layer syscalls retried after a transient failure"

let c_injected =
  T.Counter.make "hyperion_io_injected_faults_total"
    ~help:"Faults injected into durability-layer syscalls by the active plan"

let c_errors =
  T.Counter.make "hyperion_io_errors_total"
    ~help:"Durability-layer syscalls that failed after exhausting retries"

let c_short_writes =
  T.Counter.make "hyperion_io_short_writes_total"
    ~help:"Partial write transfers observed (completed by the write loop)"

let c_dir_fsync_refused =
  T.Counter.make "hyperion_io_dir_fsync_refused_total"
    ~help:"Directory fsyncs the filesystem refused (durability weakened, \
           consistency intact)"

(* The one Unix-exception -> typed-error formatter for the whole persist
   layer (frame/wal/snapshot/persist previously each had a copy). *)
let error ~path exn =
  let detail =
    match exn with
    | Unix.Unix_error (e, fn, _) ->
        Printf.sprintf "%s: %s" fn (Unix.error_message e)
    | Sys_error msg -> msg
    | End_of_file -> "unexpected end of file"
    | e -> Printexc.to_string e
  in
  Error (E.Io_error (Printf.sprintf "%s: %s" path detail))

type t = {
  plan : Fault.t Atomic.t;
  max_retries : int;
  backoff_s : float;  (* first retry delay; doubles per retry *)
}

let make ?(max_retries = 4) ?(backoff_s = 2e-4) ?(plan = Fault.none) () =
  if max_retries < 0 then invalid_arg "Io.make: max_retries must be >= 0";
  { plan = Atomic.make plan; max_retries; backoff_s }

(* Shared pass-through handle.  Its plan cell must stay [Fault.none]:
   arming it would arm every default caller at once. *)
let none = make ~backoff_s:0. ()

let set_plan t p = Atomic.set t.plan p
let disarm t = Atomic.set t.plan Fault.none
let plan t = Atomic.get t.plan

let injected code what path =
  Unix.Unix_error (code, what ^ " [injected fault]", path)

let consult t site =
  let plan = Atomic.get t.plan in
  if Fault.check plan site then begin
    if T.enabled () then T.Counter.incr c_injected;
    true
  end
  else false

let retryable_errno = function
  | Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EIO | Unix.ENOSPC ->
      true
  | _ -> false

(* fsync failures are special: after a failed fsync the kernel may already
   have dropped the dirty pages, so a later fsync returning success proves
   nothing about the lost writes (the PostgreSQL fsync-gate lesson).  Only
   the interruption case is safe to retry. *)
let fsync_retryable_errno = function Unix.EINTR -> true | _ -> false

let with_retries t ~path ?(retry = retryable_errno) f =
  let rec go attempt =
    match f () with
    | v -> Ok v
    | exception (Unix.Unix_error (code, _, _) as exn) ->
        if retry code && attempt < t.max_retries then begin
          if T.enabled () then T.Counter.incr c_retries;
          if t.backoff_s > 0. then
            Unix.sleepf (t.backoff_s *. float_of_int (1 lsl attempt));
          go (attempt + 1)
        end
        else begin
          if T.enabled () then T.Counter.incr c_errors;
          error ~path exn
        end
    | exception exn ->
        if T.enabled () then T.Counter.incr c_errors;
        error ~path exn
  in
  go 0

let quiet_close fd = try Unix.close fd with Unix.Unix_error _ -> ()

let openfile t path flags perm =
  with_retries t ~path (fun () ->
      if consult t Fault.Io_open then raise (injected Unix.EIO "open" path);
      Unix.openfile path flags perm)

(* [write_all] and [fsync] sit on the WAL append path — once per logged
   mutation — so the unarmed configuration (plan physically [Fault.none],
   i.e. production and any disarmed handle) takes a fast lane that issues
   the bare syscall with no per-site consults and no retry closure.  A
   failure on the fast lane falls back to the retrying slow lane, which
   resumes from the bytes already transferred; the failed fast attempt is
   not counted against [max_retries], so the fallback allows at most one
   attempt more than a permanently-armed handle would. *)

let write_all_guarded t fd b ~path ~pos =
  let len = Bytes.length b in
  (* [pos] survives retries: bytes already transferred are never resent. *)
  with_retries t ~path (fun () ->
      while !pos < len do
        if consult t Fault.Io_write_eio then
          raise (injected Unix.EIO "write" path);
        if consult t Fault.Io_write_enospc then
          raise (injected Unix.ENOSPC "write" path);
        let want = len - !pos in
        let want =
          if want > 1 && consult t Fault.Io_short_write then begin
            if T.enabled () then T.Counter.incr c_short_writes;
            (want + 1) / 2
          end
          else want
        in
        let n = Unix.write fd b !pos want in
        if n < want && T.enabled () then T.Counter.incr c_short_writes;
        pos := !pos + n
      done)

let rec write_fast t fd b ~path pos len =
  if pos >= len then Ok ()
  else
    let want = len - pos in
    match Unix.write fd b pos want with
    | n ->
        if n < want && T.enabled () then T.Counter.incr c_short_writes;
        write_fast t fd b ~path (pos + n) len
    | exception Unix.Unix_error _ ->
        write_all_guarded t fd b ~path ~pos:(ref pos)
    | exception exn ->
        if T.enabled () then T.Counter.incr c_errors;
        error ~path exn

let write_all t fd b ~path =
  if Atomic.get t.plan != Fault.none then
    write_all_guarded t fd b ~path ~pos:(ref 0)
  else
    (* common case first: the whole buffer goes out in one syscall *)
    let len = Bytes.length b in
    match Unix.write fd b 0 len with
    | n when n = len -> Ok ()
    | n ->
        if T.enabled () then T.Counter.incr c_short_writes;
        write_fast t fd b ~path n len
    | exception Unix.Unix_error _ ->
        write_all_guarded t fd b ~path ~pos:(ref 0)
    | exception exn ->
        if T.enabled () then T.Counter.incr c_errors;
        error ~path exn

let fsync_guarded t fd ~path =
  with_retries t ~path ~retry:fsync_retryable_errno (fun () ->
      if consult t Fault.Io_fsync then raise (injected Unix.EIO "fsync" path);
      Unix.fsync fd)

let fsync t fd ~path =
  if Atomic.get t.plan == Fault.none then
    match Unix.fsync fd with
    | () -> Ok ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        (* the one retryable fsync errno; see [fsync_retryable_errno] *)
        fsync_guarded t fd ~path
    | exception exn ->
        if T.enabled () then T.Counter.incr c_errors;
        error ~path exn
  else fsync_guarded t fd ~path

(* fsync of a directory makes a completed rename durable.  Some filesystems
   reject the operation outright; that only weakens durability, never
   consistency, so a refusal is counted (no longer silently swallowed) and
   tolerated, while a real write-back failure (EIO/ENOSPC) surfaces. *)
let fsync_dir t dir =
  let attempt () =
    if consult t Fault.Io_fsync then raise (injected Unix.EIO "fsync" dir);
    let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
    Fun.protect ~finally:(fun () -> quiet_close fd) (fun () -> Unix.fsync fd)
  in
  match attempt () with
  | () -> Ok ()
  | exception (Unix.Unix_error ((Unix.EIO | Unix.ENOSPC), _, _) as exn) ->
      if T.enabled () then T.Counter.incr c_errors;
      error ~path:dir exn
  | exception Unix.Unix_error (_, _, _) ->
      if T.enabled () then T.Counter.incr c_dir_fsync_refused;
      Ok ()

let rename t src dst =
  with_retries t ~path:dst (fun () ->
      if consult t Fault.Io_rename then raise (injected Unix.EIO "rename" dst);
      Unix.rename src dst)

let ftruncate t fd len ~path =
  (* [ftruncate] shrinks the file but leaves the descriptor offset where
     it was; a subsequent append would then leave a zero-filled hole that
     replay reads as a torn tail.  Reposition to the new end — both
     callers (WAL compensation, recovery tail cut) append next. *)
  with_retries t ~path (fun () ->
      Unix.ftruncate fd len;
      ignore (Unix.lseek fd len Unix.SEEK_SET))

let close t fd ~path =
  ignore t;
  match Unix.close fd with
  | () -> Ok ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* POSIX leaves the descriptor state unspecified after EINTR; Linux
         closes it, so retrying could close a descriptor reused by another
         thread.  Treat it as closed. *)
      Ok ()
  | exception exn ->
      if T.enabled () then T.Counter.incr c_errors;
      error ~path exn

let read_file t path =
  match openfile t path [ Unix.O_RDONLY ] 0 with
  | Error _ as e -> e
  | Ok fd ->
      let res =
        with_retries t ~path (fun () ->
            (* a retry restarts the whole read: the buffer is rebuilt, so a
               half-filled attempt never leaks into the result *)
            let size = (Unix.fstat fd).Unix.st_size in
            ignore (Unix.lseek fd 0 Unix.SEEK_SET);
            let b = Bytes.create size in
            let pos = ref 0 in
            while !pos < size do
              if consult t Fault.Io_read then
                raise (injected Unix.EIO "read" path);
              let n = Unix.read fd b !pos (size - !pos) in
              if n = 0 then raise End_of_file;
              pos := !pos + n
            done;
            b)
      in
      quiet_close fd;
      res

(* --- buffered writer (snapshot streaming) ---------------------------- *)

module Out = struct
  type w = {
    io : t;
    fd : Unix.file_descr;
    path : string;
    buf : Buffer.t;
    mutable closed : bool;
  }

  let flush_threshold = 1 lsl 16

  let create io path =
    match
      openfile io path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    with
    | Error _ as e -> e
    | Ok fd ->
        Ok { io; fd; path; buf = Buffer.create flush_threshold; closed = false }

  let flush w =
    if Buffer.length w.buf = 0 then Ok ()
    else begin
      let b = Buffer.to_bytes w.buf in
      Buffer.clear w.buf;
      write_all w.io w.fd b ~path:w.path
    end

  let write w bytes =
    Buffer.add_bytes w.buf bytes;
    if Buffer.length w.buf >= flush_threshold then flush w else Ok ()

  let sync w =
    match flush w with
    | Error _ as e -> e
    | Ok () -> fsync w.io w.fd ~path:w.path

  let close w =
    if w.closed then Ok ()
    else begin
      w.closed <- true;
      match flush w with
      | Error e ->
          quiet_close w.fd;
          Error e
      | Ok () -> close w.io w.fd ~path:w.path
    end

  let abort w =
    if not w.closed then begin
      w.closed <- true;
      quiet_close w.fd
    end
end
