module Crc32 = Crc32
module Frame = Frame
module Io = Io
module Snapshot = Snapshot
module Wal = Wal
module E = Hyperion.Hyperion_error
module T = Telemetry

(* Durability telemetry: group-commit fsync stalls are the dominant tail
   contributor under WAL-logged load, so they get a histogram, not just a
   counter; rotations (snapshot + new WAL + fsyncs) likewise. *)
let m_fsync =
  T.Histogram.make "hyperion_wal_fsync_duration_ns"
    ~help:"WAL fsync (group commit) duration in nanoseconds"

let c_fsync =
  T.Counter.make "hyperion_wal_fsync_total" ~help:"WAL fsyncs issued"

let m_rotate =
  T.Histogram.make "hyperion_wal_rotation_duration_ns"
    ~help:"Generation rotation (snapshot + WAL restart) duration"

let c_rotate =
  T.Counter.make "hyperion_wal_rotation_total" ~help:"Generation rotations"

let c_replayed =
  T.Counter.make "hyperion_wal_replayed_ops_total"
    ~help:"WAL records replayed into stores during recovery"

let c_appended =
  T.Counter.make "hyperion_wal_appended_bytes_total"
    ~help:"Bytes appended to write-ahead logs"

let c_degraded =
  T.Counter.make "hyperion_persist_degraded_transitions_total"
    ~help:"Handles flipped into sticky degraded read-only mode"

let c_healed =
  T.Counter.make "hyperion_persist_healed_total"
    ~help:"Degraded handles re-armed by a successful heal"

let c_rejected =
  T.Counter.make "hyperion_persist_degraded_rejected_ops_total"
    ~help:"Mutations rejected because the handle was degraded"

let snapshot_file ~dir ~gen = Filename.concat dir (Printf.sprintf "snapshot-%08d.hyp" gen)
let wal_file ~dir ~gen = Filename.concat dir (Printf.sprintf "wal-%08d.log" gen)

type recovery = {
  generation : int;
  snapshot_keys : int;
  replayed_ops : int;
  wal_truncated : bool;
  skipped : string list;
}

type t = {
  dir : string;
  cfg : Hyperion.Config.t;
  enc : Compress.t;  (* the encoder this directory's keys are encoded with *)
  store : Hyperion.Store.t;
  io : Io.t;
  sync_every_ops : int;
  sync_every_bytes : int;
  rotate_bytes : int;
  recovery : recovery;
  lock : Mutex.t;
  mutable gen : int; [@guarded_by lock]
  mutable wal : Wal.writer; [@guarded_by lock]
  mutable applied : int; [@guarded_by lock]  (* mutations logged since open *)
  mutable base : int; [@guarded_by lock]
      (* of those, captured by the current snapshot *)
  mutable synced_ops : int; [@guarded_by lock]  (* of (applied - base), fsynced *)
  mutable unsynced_ops : int; [@guarded_by lock]
  mutable unsynced_bytes : int; [@guarded_by lock]
  mutable rotations : int; [@guarded_by lock]
  mutable degraded_why : string option; [@guarded_by lock]
  mutable closed : bool; [@guarded_by lock]
}

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
[@@lock_wrapper "Persist.t.lock"]

let store t = t.store
let config t = t.cfg
let compress t = t.enc
let dir t = t.dir
let io t = t.io
let recovery t = t.recovery

(* Stat accessors: single-field reads of lock-protected counters.  Health
   probes and progress reports tolerate staleness, so these read without
   the lock (racy-read entries in lint.allow); anything touching WAL
   writer state still takes it. *)
let generation t = t.gen
let applied_ops t = t.applied
let snapshot_base t = t.base
let durable_ops t = with_lock t (fun () -> t.base + t.synced_ops)
let rotations t = t.rotations
let wal_size t = with_lock t (fun () -> Wal.size t.wal)
let wal_synced_bytes t = with_lock t (fun () -> Wal.synced_bytes t.wal)
let degraded t = t.degraded_why

let ( let* ) = Result.bind

(* --- open / recover ------------------------------------------------- *)

let scan_generations dir =
  (* generations that have a snapshot file, descending; plus stale tmps *)
  let snaps = ref [] and tmps = ref [] in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        tmps := Filename.concat dir name :: !tmps
      else
        try Scanf.sscanf name "snapshot-%08d.hyp%!" (fun g -> snaps := g :: !snaps)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
    (Sys.readdir dir);
  (List.sort (fun a b -> compare b a) !snaps, !tmps)

let fresh_generation ~io ~config ~compress ~dir ~gen =
  let store = Hyperion.Store.create ~config () in
  let* _bytes = Snapshot.save ~io ~compress store (snapshot_file ~dir ~gen) in
  let* wal = Wal.create ~io ~compress ~config ~gen (wal_file ~dir ~gen) in
  Ok (store, wal)

let recover_generation ~io ~config ?expect ~dir ~gen () =
  let* store, enc = Snapshot.load ~io ?expect ~config (snapshot_file ~dir ~gen) in
  let keys = Hyperion.Store.length store in
  let wpath = wal_file ~dir ~gen in
  if not (Sys.file_exists wpath) then
    (* crash between snapshot rename and WAL creation: the snapshot alone
       is the complete durable state *)
    let* wal = Wal.create ~io ~compress:enc ~config ~gen wpath in
    Ok (store, enc, wal, keys, 0, false)
  else
    let apply op =
      let r =
        match op with
        | Wal.Put (k, v) -> Hyperion.Store.put_result store k v
        | Wal.Add k -> Hyperion.Store.add_result store k
        | Wal.Delete k -> (
            match Hyperion.Store.delete_result store k with
            | Ok _ -> Ok ()
            | Error _ as e -> e)
      in
      if T.enabled () && r = Ok () then T.Counter.incr c_replayed;
      r
    in
    match Wal.replay ~io ~compress:enc ~config ~gen wpath ~f:apply with
    | Ok r ->
        let* wal = Wal.open_append ~io ~config ~gen wpath in
        Ok (store, enc, wal, keys, r.Wal.records, r.Wal.truncated)
    | Error (E.Torn_log _) ->
        (* the header never became durable, so no record in this file was
           ever acknowledged: restart it empty *)
        let* wal = Wal.create ~io ~compress:enc ~config ~gen wpath in
        Ok (store, enc, wal, keys, 0, true)
    | Error _ as e -> e

let open_or_create ?(config = Hyperion.Config.default) ?compress
    ?(io = Io.none) ?(sync_every_ops = 64) ?(sync_every_bytes = 1 lsl 20)
    ?(rotate_bytes = 64 lsl 20) dir =
  if sync_every_ops < 1 then invalid_arg "Persist: sync_every_ops must be >= 1";
  if sync_every_bytes < 1 then
    invalid_arg "Persist: sync_every_bytes must be >= 1";
  if rotate_bytes < Frame.header_size then
    invalid_arg "Persist: rotate_bytes too small";
  (match compress with
  | Some e when Compress.id e <> config.Hyperion.Config.compress ->
      invalid_arg
        (Printf.sprintf
           "Persist: config.compress = %d but the %s encoder was passed"
           config.Hyperion.Config.compress (Compress.name e))
  | _ -> ());
  let make ~gen ~enc ~wal ~store recovery =
    {
      dir;
      cfg = config;
      enc;
      store;
      io;
      sync_every_ops;
      sync_every_bytes;
      rotate_bytes;
      recovery;
      lock = Mutex.create ();
      gen;
      wal;
      applied = 0;
      base = 0;
      synced_ops = 0;
      unsynced_ops = 0;
      unsynced_bytes = 0;
      rotations = 0;
      degraded_why = None;
      closed = false;
    }
  in
  let opened =
    match
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise (Sys_error (dir ^ ": not a directory"))
    with
    | exception e -> Io.error ~path:dir e
    | () -> (
      match scan_generations dir with
      | exception e -> Io.error ~path:dir e
      | [], tmps ->
          List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) tmps;
          let* enc =
            match compress with
            | Some e -> Ok e
            | None ->
                if config.Hyperion.Config.compress = 0 then Ok Compress.Identity
                else
                  (* a dict-encoded tree cannot be conjured from a scheme
                     id alone: the dictionary must come from the caller
                     (fresh) or from the snapshot (existing) *)
                  Error
                    (E.Io_error
                       (dir
                      ^ ": config.compress selects the dict encoder but the \
                         directory is fresh and no dictionary was passed"))
          in
          let* store, wal = fresh_generation ~io ~config ~compress:enc ~dir ~gen:0 in
          Ok
            (make ~gen:0 ~enc ~wal ~store
               {
                 generation = 0;
                 snapshot_keys = 0;
                 replayed_ops = 0;
                 wal_truncated = false;
                 skipped = tmps;
               })
      | gens, tmps ->
          List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) tmps;
          (* latest valid snapshot: fall back across corrupt ones, but a
             version or config mismatch is a real error, not corruption *)
          let rec attempt skipped = function
            | [] -> (
                match skipped with
                | last :: _ ->
                    Error
                      (E.Corrupt_snapshot
                         (Printf.sprintf "no valid snapshot in %s (last: %s)"
                            dir last))
                | [] ->
                    (* unreachable: [attempt] is only entered with at least
                       one generation, so an empty todo list implies a
                       non-empty skipped list *)
                    Error
                      (E.Corrupt_snapshot
                         (Printf.sprintf
                            "no snapshot generations to recover in %s" dir)))
            | gen :: rest -> (
                match recover_generation ~io ~config ?expect:compress ~dir ~gen () with
                | Ok (store, enc, wal, keys, replayed, truncated) ->
                    Ok
                      (make ~gen ~enc ~wal ~store
                         {
                           generation = gen;
                           snapshot_keys = keys;
                           replayed_ops = replayed;
                           wal_truncated = truncated;
                           skipped = List.rev_append skipped tmps;
                         })
                | Error (E.Corrupt_snapshot why) when rest <> [] ->
                    attempt (why :: skipped) rest
                | Error _ as e -> e)
          in
          attempt [] gens)
  in
  (* Post-recovery heap audit: snapshot load and WAL replay rebuild the
     arenas from scratch, so a bug anywhere in that path shows up here as
     a leaked or double-referenced chunk before the handle is ever used
     (DESIGN.md section 11).  On a fresh directory the store is empty and
     the sweep is effectively free. *)
  Result.bind opened (fun t ->
      match Analyze.Heapcheck.first_problem (Analyze.Heapcheck.audit_store t.store) with
      | None -> Ok t
      | Some p ->
          Error
            (E.Chunk_corrupt
               (Printf.sprintf "heap audit after recovering %s: %s" dir p)))

(* --- logged mutations ----------------------------------------------- *)

(* Flip into sticky degraded read-only mode.  Reads keep serving from the
   in-memory store; every subsequent mutation is rejected with [Degraded]
   until [heal] starts a fresh generation. *)
let note_degraded t why =
  if t.degraded_why = None then begin
    t.degraded_why <- Some why;
    if T.enabled () then T.Counter.incr c_degraded
  end
[@@requires_lock "Persist.t.lock"]

let reject_if_degraded t =
  match t.degraded_why with
  | Some why ->
      if T.enabled () then T.Counter.incr c_rejected;
      Some (E.Degraded why)
  | None -> None
[@@requires_lock "Persist.t.lock"]

let do_sync t =
  let* () =
    if T.enabled () then begin
      T.mark T.Path.wal_fsync;
      let t0 = T.now_ns () in
      let r = Wal.sync t.wal in
      let d = T.now_ns () - t0 in
      T.Histogram.observe_ns m_fsync d;
      T.Counter.incr c_fsync;
      T.Trace.maybe_record ~kind:"fsync" ~key_len:(-1) ~dur_ns:d;
      r
    end
    else Wal.sync t.wal
  in
  t.synced_ops <- t.applied - t.base;
  t.unsynced_ops <- 0;
  t.unsynced_bytes <- 0;
  Ok ()
[@@requires_lock "Persist.t.lock"]

(* Rotate into generation [gen + 1]:
     1. make the old log durable (nothing acknowledged may regress);
     2. write the new snapshot (tmp + rename + dir fsync — atomic);
     3. start the new WAL (header fsynced);
     4. only then drop the old generation's files.
   A crash anywhere leaves either the old or the new generation whole, and
   so does a {e failure} anywhere: step 1 or 2 failing keeps the old
   generation intact; step 3 failing leaves a valid next-generation
   snapshot that recovery accepts via its missing-WAL path. *)
let do_rotate_u t =
  let* () = do_sync t in
  let next = t.gen + 1 in
  let* _bytes =
    Snapshot.save ~io:t.io ~compress:t.enc t.store
      (snapshot_file ~dir:t.dir ~gen:next)
  in
  let* wal =
    Wal.create ~io:t.io ~compress:t.enc ~config:t.cfg ~gen:next
      (wal_file ~dir:t.dir ~gen:next)
  in
  let old_wal = t.wal and old_gen = t.gen in
  t.wal <- wal;
  t.gen <- next;
  t.base <- t.applied;
  t.synced_ops <- 0;
  t.unsynced_ops <- 0;
  t.unsynced_bytes <- 0;
  t.rotations <- t.rotations + 1;
  Wal.abort old_wal;
  (try Sys.remove (wal_file ~dir:t.dir ~gen:old_gen) with Sys_error _ -> ());
  (try Sys.remove (snapshot_file ~dir:t.dir ~gen:old_gen) with Sys_error _ -> ());
  Ok ()
[@@requires_lock "Persist.t.lock"]

let do_rotate t =
  if T.enabled () then begin
    T.mark T.Path.wal_rotation;
    let t0 = T.now_ns () in
    let r = do_rotate_u t in
    let d = T.now_ns () - t0 in
    T.Histogram.observe_ns m_rotate d;
    T.Counter.incr c_rotate;
    T.Trace.maybe_record ~kind:"rotate" ~key_len:(-1) ~dur_ns:d;
    r
  end
  else do_rotate_u t
[@@requires_lock "Persist.t.lock"]

(* The append-first logged-mutation protocol:
     1. the caller validated the key — nothing invalid may enter the log;
     2. append the record.  Failure degrades the handle: the tail may hold
        a torn partial record (replay truncates it on recovery) and the
        store was never touched, so log and store still agree;
     3. apply to the in-memory store;
     4. if the store rejects the mutation, truncate the record back off
        (compensation) — log and store stay identical and the handle stays
        healthy, because the disk did nothing wrong;
     5. group commit / rotate per policy.  Their failure degrades the
        handle but the op itself is acknowledged: the record is in the
        log, exactly the same ack-before-fsync window every group-commit
        scheme has.
   No prior-state capture, no undo of the store, and — crucially — never
   an applied mutation whose record is missing from the log, nor a logged
   record whose mutation was rolled back (either would let recovery
   diverge from the acknowledged history). *)
let log_then_apply t op ~apply =
  let pre = Wal.size t.wal in
  match Wal.append t.wal op with
  | Error e ->
      note_degraded t (E.to_string e);
      Error (E.Degraded (E.to_string e))
  | Ok bytes -> (
      match apply () with
      | Error e -> (
          match Wal.truncate_writer t.wal ~len:pre with
          | Ok () -> Error e
          | Error te ->
              note_degraded t
                (Printf.sprintf "%s (while compensating for: %s)"
                   (E.to_string te) (E.to_string e));
              Error e)
      | Ok result ->
          if T.enabled () then T.Counter.add c_appended bytes;
          t.applied <- t.applied + 1;
          t.unsynced_ops <- t.unsynced_ops + 1;
          t.unsynced_bytes <- t.unsynced_bytes + bytes;
          let after =
            let* () =
              if
                t.unsynced_ops >= t.sync_every_ops
                || t.unsynced_bytes >= t.sync_every_bytes
              then do_sync t
              else Ok ()
            in
            if Wal.size t.wal >= t.rotate_bytes then do_rotate t else Ok ()
          in
          (match after with
          | Ok () -> ()
          | Error e -> note_degraded t (E.to_string e));
          Ok result)
[@@requires_lock "Persist.t.lock"]

let guard t f =
  with_lock t (fun () ->
      if t.closed then Error (E.Io_error (t.dir ^ ": persist handle closed"))
      else f ())
[@@lock_wrapper "Persist.t.lock"]

let guard_mut t f =
  guard t (fun () ->
      match reject_if_degraded t with Some e -> Error e | None -> f ())
[@@lock_wrapper "Persist.t.lock"]

let put t key v =
  guard_mut t (fun () ->
      match Hyperion.Ops.key_error key with
      | Some e -> Error e
      | None ->
          log_then_apply t (Wal.Put (key, v)) ~apply:(fun () ->
              Hyperion.Store.put_result t.store key v))

let add t key =
  guard_mut t (fun () ->
      match Hyperion.Ops.key_error key with
      | Some e -> Error e
      | None ->
          log_then_apply t (Wal.Add key) ~apply:(fun () ->
              Hyperion.Store.add_result t.store key))

let delete t key =
  guard_mut t (fun () ->
      match Hyperion.Ops.key_error key with
      | Some e -> Error e
      | None ->
          (* append-first needs to know up front whether the delete will
             remove anything: absent keys are neither logged nor applied,
             keeping the one-record-per-acknowledged-mutation invariant *)
          if not (Hyperion.Store.mem t.store key) then Ok false
          else
            log_then_apply t (Wal.Delete key) ~apply:(fun () ->
                Hyperion.Store.delete_result t.store key))

let sync t =
  guard_mut t (fun () ->
      match do_sync t with
      | Ok () -> Ok ()
      | Error e ->
          note_degraded t (E.to_string e);
          Error (E.Degraded (E.to_string e)))

let snapshot_now t =
  guard_mut t (fun () ->
      match do_rotate t with
      | Ok () -> Ok ()
      | Error e ->
          note_degraded t (E.to_string e);
          Error (E.Degraded (E.to_string e)))

(* Re-arm a degraded handle: snapshot the live store — it is the
   authoritative state; the old WAL may be torn or incomplete — into a
   fresh generation, open a new WAL, and only then drop the old files.
   Failure (the disk is still bad) leaves the handle degraded; [heal] can
   simply be retried. *)
let heal t =
  with_lock t (fun () ->
      if t.closed then Error (E.Io_error (t.dir ^ ": persist handle closed"))
      else
        match t.degraded_why with
        | None -> Ok ()
        | Some _ ->
            let next = t.gen + 1 in
            let* _bytes =
              Snapshot.save ~io:t.io ~compress:t.enc t.store
                (snapshot_file ~dir:t.dir ~gen:next)
            in
            let* wal =
              Wal.create ~io:t.io ~compress:t.enc ~config:t.cfg ~gen:next
                (wal_file ~dir:t.dir ~gen:next)
            in
            let old_wal = t.wal and old_gen = t.gen in
            t.wal <- wal;
            t.gen <- next;
            t.base <- t.applied;
            t.synced_ops <- 0;
            t.unsynced_ops <- 0;
            t.unsynced_bytes <- 0;
            t.rotations <- t.rotations + 1;
            t.degraded_why <- None;
            Wal.abort old_wal;
            (try Sys.remove (wal_file ~dir:t.dir ~gen:old_gen)
             with Sys_error _ -> ());
            (try Sys.remove (snapshot_file ~dir:t.dir ~gen:old_gen)
             with Sys_error _ -> ());
            if T.enabled () then T.Counter.incr c_healed;
            Ok ())

let close t =
  with_lock t (fun () ->
      if t.closed then Ok ()
      else begin
        t.closed <- true;
        match t.degraded_why with
        | Some _ ->
            (* durability is already known-compromised; a final sync could
               only block on the failing device — just release *)
            Wal.abort t.wal;
            Ok ()
        | None -> Wal.close t.wal
      end)

let crash t =
  with_lock t (fun () ->
      t.closed <- true;
      Wal.abort t.wal)

(* --- one-shot snapshot I/O ------------------------------------------ *)

let save_snapshot ?io ?compress store path = Snapshot.save ?io ?compress store path

let load_snapshot ?config ?expect path =
  match config with
  | Some config -> Snapshot.load ?expect ~config path
  | None -> (
      (* infer the config family from the recorded preprocess flag and
         encoder; the (encoder-mixed) fingerprint still has to match, so
         only snapshots written with stock configs load without an
         explicit one *)
      match Snapshot.probe path with
      | Error _ as e -> e
      | Ok (h, enc) ->
          let stock =
            [
              Hyperion.Config.default;
              Hyperion.Config.strings;
              { Hyperion.Config.default with preprocess = true };
              { Hyperion.Config.strings with preprocess = true };
              { Hyperion.Config.strings with chunks_per_bin = 64 };
            ]
          in
          let candidates =
            List.map
              (fun c -> { c with Hyperion.Config.compress = h.Snapshot.encoder })
              stock
          in
          let matching =
            List.find_opt
              (fun c ->
                Compress.mix_fingerprint (Hyperion.Config.fingerprint c) enc
                = h.Snapshot.fingerprint)
              candidates
          in
          let config =
            Option.value matching
              ~default:
                {
                  (if h.Snapshot.preprocess then
                     { Hyperion.Config.default with preprocess = true }
                   else Hyperion.Config.default)
                  with
                  compress = h.Snapshot.encoder;
                }
          in
          Snapshot.load ?expect ~config path)
