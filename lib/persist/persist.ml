module Crc32 = Crc32
module Frame = Frame
module Snapshot = Snapshot
module Wal = Wal
module E = Hyperion.Hyperion_error
module T = Telemetry

(* Durability telemetry: group-commit fsync stalls are the dominant tail
   contributor under WAL-logged load, so they get a histogram, not just a
   counter; rotations (snapshot + new WAL + fsyncs) likewise. *)
let m_fsync =
  T.Histogram.make "hyperion_wal_fsync_duration_ns"
    ~help:"WAL fsync (group commit) duration in nanoseconds"

let c_fsync =
  T.Counter.make "hyperion_wal_fsync_total" ~help:"WAL fsyncs issued"

let m_rotate =
  T.Histogram.make "hyperion_wal_rotation_duration_ns"
    ~help:"Generation rotation (snapshot + WAL restart) duration"

let c_rotate =
  T.Counter.make "hyperion_wal_rotation_total" ~help:"Generation rotations"

let c_replayed =
  T.Counter.make "hyperion_wal_replayed_ops_total"
    ~help:"WAL records replayed into stores during recovery"

let c_appended =
  T.Counter.make "hyperion_wal_appended_bytes_total"
    ~help:"Bytes appended to write-ahead logs"

let snapshot_file ~dir ~gen = Filename.concat dir (Printf.sprintf "snapshot-%08d.hyp" gen)
let wal_file ~dir ~gen = Filename.concat dir (Printf.sprintf "wal-%08d.log" gen)

type recovery = {
  generation : int;
  snapshot_keys : int;
  replayed_ops : int;
  wal_truncated : bool;
  skipped : string list;
}

type t = {
  dir : string;
  cfg : Hyperion.Config.t;
  store : Hyperion.Store.t;
  sync_every_ops : int;
  sync_every_bytes : int;
  rotate_bytes : int;
  recovery : recovery;
  lock : Mutex.t;
  mutable gen : int;
  mutable wal : Wal.writer;
  mutable applied : int;  (* mutations logged since open *)
  mutable base : int;  (* of those, captured by the current snapshot *)
  mutable synced_ops : int;  (* of (applied - base), fsynced *)
  mutable unsynced_ops : int;
  mutable unsynced_bytes : int;
  mutable rotations : int;
  mutable closed : bool;
}

let store t = t.store
let config t = t.cfg
let dir t = t.dir
let recovery t = t.recovery
let generation t = t.gen
let applied_ops t = t.applied
let snapshot_base t = t.base
let durable_ops t = t.base + t.synced_ops
let rotations t = t.rotations
let wal_size t = Wal.size t.wal
let wal_synced_bytes t = Wal.synced_bytes t.wal

let io_error path exn =
  let detail =
    match exn with
    | Unix.Unix_error (e, fn, _) -> Printf.sprintf "%s: %s" fn (Unix.error_message e)
    | Sys_error msg -> msg
    | e -> Printexc.to_string e
  in
  Error (E.Io_error (Printf.sprintf "%s: %s" path detail))

let ( let* ) = Result.bind

(* --- open / recover ------------------------------------------------- *)

let scan_generations dir =
  (* generations that have a snapshot file, descending; plus stale tmps *)
  let snaps = ref [] and tmps = ref [] in
  Array.iter
    (fun name ->
      if Filename.check_suffix name ".tmp" then
        tmps := Filename.concat dir name :: !tmps
      else
        try Scanf.sscanf name "snapshot-%08d.hyp%!" (fun g -> snaps := g :: !snaps)
        with Scanf.Scan_failure _ | Failure _ | End_of_file -> ())
    (Sys.readdir dir);
  (List.sort (fun a b -> compare b a) !snaps, !tmps)

let fresh_generation ~config ~dir ~gen =
  let store = Hyperion.Store.create ~config () in
  let* _bytes = Snapshot.save store (snapshot_file ~dir ~gen) in
  let* wal = Wal.create ~config ~gen (wal_file ~dir ~gen) in
  Ok (store, wal)

let recover_generation ~config ~dir ~gen =
  let* store = Snapshot.load ~config (snapshot_file ~dir ~gen) in
  let keys = Hyperion.Store.length store in
  let wpath = wal_file ~dir ~gen in
  if not (Sys.file_exists wpath) then
    (* crash between snapshot rename and WAL creation: the snapshot alone
       is the complete durable state *)
    let* wal = Wal.create ~config ~gen wpath in
    Ok (store, wal, keys, 0, false)
  else
    let apply op =
      let r =
        match op with
        | Wal.Put (k, v) -> Hyperion.Store.put_result store k v
        | Wal.Add k -> Hyperion.Store.add_result store k
        | Wal.Delete k -> (
            match Hyperion.Store.delete_result store k with
            | Ok _ -> Ok ()
            | Error _ as e -> e)
      in
      if T.enabled () && r = Ok () then T.Counter.incr c_replayed;
      r
    in
    match Wal.replay ~config ~gen wpath ~f:apply with
    | Ok r ->
        let* wal = Wal.open_append ~config ~gen wpath in
        Ok (store, wal, keys, r.Wal.records, r.Wal.truncated)
    | Error (E.Torn_log _) ->
        (* the header never became durable, so no record in this file was
           ever acknowledged: restart it empty *)
        let* wal = Wal.create ~config ~gen wpath in
        Ok (store, wal, keys, 0, true)
    | Error _ as e -> e

let open_or_create ?(config = Hyperion.Config.default)
    ?(sync_every_ops = 64) ?(sync_every_bytes = 1 lsl 20)
    ?(rotate_bytes = 64 lsl 20) dir =
  if sync_every_ops < 1 then invalid_arg "Persist: sync_every_ops must be >= 1";
  if sync_every_bytes < 1 then
    invalid_arg "Persist: sync_every_bytes must be >= 1";
  if rotate_bytes < Frame.header_size then
    invalid_arg "Persist: rotate_bytes too small";
  let make ~gen ~wal ~store recovery =
    {
      dir;
      cfg = config;
      store;
      sync_every_ops;
      sync_every_bytes;
      rotate_bytes;
      recovery;
      lock = Mutex.create ();
      gen;
      wal;
      applied = 0;
      base = 0;
      synced_ops = 0;
      unsynced_ops = 0;
      unsynced_bytes = 0;
      rotations = 0;
      closed = false;
    }
  in
  let opened =
    match
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
      else if not (Sys.is_directory dir) then
        raise (Sys_error (dir ^ ": not a directory"))
    with
    | exception e -> io_error dir e
    | () -> (
      match scan_generations dir with
      | exception e -> io_error dir e
      | [], tmps ->
          List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) tmps;
          let* store, wal = fresh_generation ~config ~dir ~gen:0 in
          Ok
            (make ~gen:0 ~wal ~store
               {
                 generation = 0;
                 snapshot_keys = 0;
                 replayed_ops = 0;
                 wal_truncated = false;
                 skipped = tmps;
               })
      | gens, tmps ->
          List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) tmps;
          (* latest valid snapshot: fall back across corrupt ones, but a
             version or config mismatch is a real error, not corruption *)
          let rec attempt skipped = function
            | [] -> (
                match skipped with
                | last :: _ ->
                    Error
                      (E.Corrupt_snapshot
                         (Printf.sprintf "no valid snapshot in %s (last: %s)"
                            dir last))
                | [] ->
                    (* unreachable: [attempt] is only entered with at least
                       one generation, so an empty todo list implies a
                       non-empty skipped list *)
                    Error
                      (E.Corrupt_snapshot
                         (Printf.sprintf
                            "no snapshot generations to recover in %s" dir)))
            | gen :: rest -> (
                match recover_generation ~config ~dir ~gen with
                | Ok (store, wal, keys, replayed, truncated) ->
                    Ok
                      (make ~gen ~wal ~store
                         {
                           generation = gen;
                           snapshot_keys = keys;
                           replayed_ops = replayed;
                           wal_truncated = truncated;
                           skipped = List.rev_append skipped tmps;
                         })
                | Error (E.Corrupt_snapshot why) when rest <> [] ->
                    attempt (why :: skipped) rest
                | Error _ as e -> e)
          in
          attempt [] gens)
  in
  (* Post-recovery heap audit: snapshot load and WAL replay rebuild the
     arenas from scratch, so a bug anywhere in that path shows up here as
     a leaked or double-referenced chunk before the handle is ever used
     (DESIGN.md section 11).  On a fresh directory the store is empty and
     the sweep is effectively free. *)
  Result.bind opened (fun t ->
      match Analyze.Heapcheck.first_problem (Analyze.Heapcheck.audit_store t.store) with
      | None -> Ok t
      | Some p ->
          Error
            (E.Chunk_corrupt
               (Printf.sprintf "heap audit after recovering %s: %s" dir p)))

(* --- logged mutations ----------------------------------------------- *)

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let do_sync t =
  let* () =
    if T.enabled () then begin
      T.mark T.Path.wal_fsync;
      let t0 = T.now_ns () in
      let r = Wal.sync t.wal in
      let d = T.now_ns () - t0 in
      T.Histogram.observe_ns m_fsync d;
      T.Counter.incr c_fsync;
      T.Trace.maybe_record ~kind:"fsync" ~key_len:(-1) ~dur_ns:d;
      r
    end
    else Wal.sync t.wal
  in
  t.synced_ops <- t.applied - t.base;
  t.unsynced_ops <- 0;
  t.unsynced_bytes <- 0;
  Ok ()

(* Rotate into generation [gen + 1]:
     1. make the old log durable (nothing acknowledged may regress);
     2. write the new snapshot (tmp + rename + dir fsync — atomic);
     3. start the new WAL (header fsynced);
     4. only then drop the old generation's files.
   A crash anywhere leaves either the old or the new generation whole. *)
let do_rotate_u t =
  let* () = do_sync t in
  let next = t.gen + 1 in
  let* _bytes = Snapshot.save t.store (snapshot_file ~dir:t.dir ~gen:next) in
  let* wal = Wal.create ~config:t.cfg ~gen:next (wal_file ~dir:t.dir ~gen:next) in
  let old_wal = t.wal and old_gen = t.gen in
  t.wal <- wal;
  t.gen <- next;
  t.base <- t.applied;
  t.synced_ops <- 0;
  t.unsynced_ops <- 0;
  t.unsynced_bytes <- 0;
  t.rotations <- t.rotations + 1;
  Wal.abort old_wal;
  (try Sys.remove (wal_file ~dir:t.dir ~gen:old_gen) with Sys_error _ -> ());
  (try Sys.remove (snapshot_file ~dir:t.dir ~gen:old_gen) with Sys_error _ -> ());
  Ok ()

let do_rotate t =
  if T.enabled () then begin
    T.mark T.Path.wal_rotation;
    let t0 = T.now_ns () in
    let r = do_rotate_u t in
    let d = T.now_ns () - t0 in
    T.Histogram.observe_ns m_rotate d;
    T.Counter.incr c_rotate;
    T.Trace.maybe_record ~kind:"rotate" ~key_len:(-1) ~dur_ns:d;
    r
  end
  else do_rotate_u t

let log_op t op =
  let* bytes = Wal.append t.wal op in
  if T.enabled () then T.Counter.add c_appended bytes;
  t.applied <- t.applied + 1;
  t.unsynced_ops <- t.unsynced_ops + 1;
  t.unsynced_bytes <- t.unsynced_bytes + bytes;
  let* () =
    if t.unsynced_ops >= t.sync_every_ops || t.unsynced_bytes >= t.sync_every_bytes
    then do_sync t
    else Ok ()
  in
  if Wal.size t.wal >= t.rotate_bytes then do_rotate t else Ok ()

let guard t f =
  with_lock t (fun () ->
      if t.closed then Error (E.Io_error (t.dir ^ ": persist handle closed"))
      else f ())

let put t key v =
  guard t (fun () ->
      let* () = Hyperion.Store.put_result t.store key v in
      log_op t (Wal.Put (key, v)))

let add t key =
  guard t (fun () ->
      let* () = Hyperion.Store.add_result t.store key in
      log_op t (Wal.Add key))

let delete t key =
  guard t (fun () ->
      let* removed = Hyperion.Store.delete_result t.store key in
      if not removed then Ok false
      else
        let* () = log_op t (Wal.Delete key) in
        Ok true)

let sync t = guard t (fun () -> do_sync t)
let snapshot_now t = guard t (fun () -> do_rotate t)

let close t =
  with_lock t (fun () ->
      if t.closed then Ok ()
      else begin
        t.closed <- true;
        Wal.close t.wal
      end)

let crash t =
  with_lock t (fun () ->
      t.closed <- true;
      Wal.abort t.wal)

(* --- one-shot snapshot I/O ------------------------------------------ *)

let save_snapshot = Snapshot.save

let load_snapshot ?config path =
  match config with
  | Some config -> Snapshot.load ~config path
  | None -> (
      (* infer the config family from the recorded preprocess flag; the
         fingerprint still has to match, so only snapshots written with
         stock configs load without an explicit one *)
      match Snapshot.read_header path with
      | Error _ as e -> e
      | Ok h ->
          let candidates =
            [
              Hyperion.Config.default;
              Hyperion.Config.strings;
              { Hyperion.Config.default with preprocess = true };
              { Hyperion.Config.strings with preprocess = true };
              { Hyperion.Config.strings with chunks_per_bin = 64 };
            ]
          in
          let matching =
            List.find_opt
              (fun c -> Hyperion.Config.fingerprint c = h.Snapshot.fingerprint)
              candidates
          in
          let config =
            Option.value matching
              ~default:
                (if h.Snapshot.preprocess then
                   { Hyperion.Config.default with preprocess = true }
                 else Hyperion.Config.default)
          in
          Snapshot.load ~config path)
