(** Shared on-disk framing of the durability formats.

    Both persisted files open with the same 32-byte header shape —

    {v
      0  magic            8 bytes   ("HYPSNAP\x01" / "HYPWAL\x00\x01")
      8  format version   u16 LE
      10 flags            u16 LE    (bit 0: preprocess)
      12 config fingerprint u64 LE  ({!Hyperion.Config.fingerprint})
      20 aux              u64 LE    (snapshot: key count; WAL: generation)
      28 CRC-32 of bytes [0, 28)    u32 LE
    v}

    — followed by CRC-framed records: [u32 LE payload length · payload ·
    u32 LE CRC-32(payload)].  All integers little-endian. *)

val header_size : int
val frame_overhead : int
(** Bytes a record adds around its payload: 8 (length + CRC words). *)

val max_payload : int
(** Upper bound accepted for one record payload (a touch over the 2^20-byte
    key limit); anything larger read back is treated as corruption. *)

val make_header :
  magic:string -> version:int -> flags:int -> fingerprint:int64 -> aux:int64 ->
  Bytes.t

type header = { version : int; flags : int; fingerprint : int64; aux : int64 }

type header_error = Short | Bad_magic | Bad_crc

val parse_header : magic:string -> Bytes.t -> (header, header_error) result
(** Validates magic and header CRC only — version and fingerprint checks
    are the caller's (they map to different {!Hyperion.Hyperion_error.t}
    variants per format). *)

val frame : string -> Bytes.t
(** [frame payload] is the full record: length word, payload, CRC word. *)

type record_error = Rec_short | Rec_bad_crc | Rec_bad_len

val read_record : Bytes.t -> pos:int -> (string * int, record_error) result
(** [read_record buf ~pos] decodes the record starting at [pos] and returns
    [(payload, next_pos)].  Any of the three errors at the physical end of
    a WAL is a torn tail.  Whole-file reads live in {!Io.read_file}: this
    module is pure. *)
