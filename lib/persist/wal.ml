module E = Hyperion.Hyperion_error

let format_version = 1
let magic = "HYPWAL\x00\x01"

type op = Put of string * int64 | Add of string | Delete of string

(* --- writer --------------------------------------------------------- *)

(* A writer is owned by exactly one [Persist.t] handle; its mutable
   watermarks are part of that handle's lock-protected state (racecheck
   enforces the string-token guard cross-module). *)
type writer = {
  path : string;
  fd : Unix.file_descr;
  io : Io.t;
  mutable written : int; [@guarded_by "Persist.t.lock"]
  mutable synced : int; [@guarded_by "Persist.t.lock"]
  mutable open_ : bool; [@guarded_by "Persist.t.lock"]
}

(* Like snapshot headers: flags bit 0 = preprocess, bits 1-2 = encoder
   scheme id; the fingerprint is encoder-mixed.  With the identity
   encoder both reduce to the historical v1 values, so pre-compression
   logs keep replaying byte-for-byte. *)
let header_bytes ~config ~compress ~gen =
  Frame.make_header ~magic ~version:format_version
    ~flags:
      ((if config.Hyperion.Config.preprocess then 1 else 0)
      lor (Compress.id compress lsl 1))
    ~fingerprint:
      (Compress.mix_fingerprint (Hyperion.Config.fingerprint config) compress)
    ~aux:(Int64.of_int gen)

let create ?(io = Io.none) ?(compress = Compress.Identity) ~config ~gen path =
  match Io.openfile io path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 with
  | Error _ as e -> e
  | Ok fd -> (
      let setup =
        match Io.write_all io fd (header_bytes ~config ~compress ~gen) ~path with
        | Error _ as e -> e
        | Ok () -> Io.fsync io fd ~path
      in
      match setup with
      | Ok () ->
          Ok
            {
              path;
              fd;
              io;
              written = Frame.header_size;
              synced = Frame.header_size;
              open_ = true;
            }
      | Error _ as e ->
          Io.quiet_close fd;
          e)

let open_append ?(io = Io.none) ~config ~gen path =
  ignore config;
  ignore gen;
  match Io.openfile io path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 with
  | Error _ as e -> e
  | Ok fd -> (
      match (Unix.fstat fd).Unix.st_size with
      | size -> Ok { path; fd; io; written = size; synced = size; open_ = true }
      | exception e ->
          Io.quiet_close fd;
          Io.error ~path e)

let encode op =
  (* SAFETY: every [tagged] buffer is freshly allocated, fully written, and
     uniquely owned; the conversions below transfer ownership with no
     mutable alias remaining. *)
  let tagged tag key extra =
    let klen = String.length key in
    let b = Bytes.create (1 + klen + extra) in
    Bytes.set_uint8 b 0 tag;
    Bytes.blit_string key 0 b 1 klen;
    b
  in
  match op with
  | Put (key, v) ->
      let b = tagged 1 key 8 in
      Bytes.set_int64_le b (1 + String.length key) v;
      Bytes.unsafe_to_string b
  | Add key -> Bytes.unsafe_to_string (tagged 2 key 0)
  | Delete key -> Bytes.unsafe_to_string (tagged 3 key 0)

let decode payload =
  let len = String.length payload in
  if len < 2 then None
  else
    let key ?(drop = 0) () = String.sub payload 1 (len - 1 - drop) in
    match payload.[0] with
    | '\x01' when len >= 2 + 8 ->
        (* SAFETY: the alias is read-only — one [get_int64_le] inside the
           length-checked payload — so the string is never mutated. *)
        let v = Bytes.get_int64_le (Bytes.unsafe_of_string payload) (len - 8) in
        Some (Put (key ~drop:8 (), v))
    | '\x02' -> Some (Add (key ()))
    | '\x03' -> Some (Delete (key ()))
    | _ -> None

let append w op =
  if not w.open_ then Error (E.Io_error (w.path ^ ": WAL writer closed"))
  else
    let b = Frame.frame (encode op) in
    match Io.write_all w.io w.fd b ~path:w.path with
    | Ok () ->
        w.written <- w.written + Bytes.length b;
        Ok (Bytes.length b)
    | Error _ as e -> e
[@@requires_lock "Persist.t.lock"]

let sync w =
  if not w.open_ then Error (E.Io_error (w.path ^ ": WAL writer closed"))
  else
    match Io.fsync w.io w.fd ~path:w.path with
    | Ok () ->
        w.synced <- w.written;
        Ok ()
    | Error _ as e -> e
[@@requires_lock "Persist.t.lock"]

let size w = w.written [@@requires_lock "Persist.t.lock"]
let synced_bytes w = w.synced [@@requires_lock "Persist.t.lock"]

(* Compensation: cut an appended-but-unwanted record back off the tail.
   Legal on an O_WRONLY/O_APPEND descriptor; the durable watermark can
   never exceed [len] here because no sync happens between the append and
   the truncation (both run under the owning handle's lock). *)
let truncate_writer w ~len =
  if not w.open_ then Error (E.Io_error (w.path ^ ": WAL writer closed"))
  else if len < Frame.header_size || len > w.written then
    Error (E.Io_error (w.path ^ ": truncate_writer: offset out of range"))
  else
    match Io.ftruncate w.io w.fd len ~path:w.path with
    | Ok () ->
        w.written <- len;
        if w.synced > len then w.synced <- len;
        Ok ()
    | Error _ as e -> e
[@@requires_lock "Persist.t.lock"]

let close w =
  match sync w with
  | Error _ as e ->
      w.open_ <- false;
      Io.quiet_close w.fd;
      e
  | Ok () ->
      w.open_ <- false;
      Io.quiet_close w.fd;
      Ok ()
[@@requires_lock "Persist.t.lock"]

let abort w =
  if w.open_ then begin
    w.open_ <- false;
    Io.quiet_close w.fd
  end
[@@requires_lock "Persist.t.lock"]

(* --- replay --------------------------------------------------------- *)

type replay = { records : int; valid_bytes : int; truncated : bool }

let torn path what = Error (E.Torn_log (path ^ ": " ^ what))

let truncate_to io path valid =
  match Io.openfile io path [ Unix.O_WRONLY ] 0 with
  | Error _ as e -> e
  | Ok fd -> (
      let res =
        match Io.ftruncate io fd valid ~path with
        | Error _ as e -> e
        | Ok () -> Io.fsync io fd ~path
      in
      Io.quiet_close fd;
      res)

let replay ?(io = Io.none) ?(compress = Compress.Identity) ~config ~gen path ~f =
  match Io.read_file io path with
  | Error _ as e -> e
  | Ok buf -> (
      match Frame.parse_header ~magic buf with
      | Error Frame.Short -> torn path "file shorter than the header"
      | Error Frame.Bad_magic -> torn path "bad magic"
      | Error Frame.Bad_crc -> torn path "header CRC mismatch"
      | Ok h ->
          if h.Frame.version <> format_version then
            Error
              (E.Version_mismatch
                 { found = h.Frame.version; expected = format_version })
          else if
            h.Frame.fingerprint
            <> Compress.mix_fingerprint (Hyperion.Config.fingerprint config)
                 compress
          then
            torn path
              (Printf.sprintf
                 "config fingerprint mismatch (file 0x%Lx, config 0x%Lx)"
                 h.Frame.fingerprint
                 (Compress.mix_fingerprint
                    (Hyperion.Config.fingerprint config)
                    compress))
          else if Int64.to_int h.Frame.aux <> gen then
            torn path
              (Printf.sprintf "generation mismatch (file %Ld, expected %d)"
                 h.Frame.aux gen)
          else begin
            let total = Bytes.length buf in
            let rec loop pos records =
              if pos = total then Ok { records; valid_bytes = pos; truncated = false }
              else
                match Frame.read_record buf ~pos with
                | Error (Frame.Rec_short | Frame.Rec_bad_crc | Frame.Rec_bad_len)
                  -> (
                    (* torn tail: drop it *)
                    match truncate_to io path pos with
                    | Ok () -> Ok { records; valid_bytes = pos; truncated = true }
                    | Error _ as e -> e)
                | Ok (payload, next) -> (
                    match decode payload with
                    | None -> (
                        (* CRC-valid but undecodable: treat as tear, too *)
                        match truncate_to io path pos with
                        | Ok () ->
                            Ok { records; valid_bytes = pos; truncated = true }
                        | Error _ as e -> e)
                    | Some op -> (
                        match f op with
                        | Ok () -> loop next (records + 1)
                        | Error _ as e -> e))
            in
            loop Frame.header_size 0
          end)
