module E = Hyperion.Hyperion_error

let format_version = 1
let magic = "HYPWAL\x00\x01"

type op = Put of string * int64 | Add of string | Delete of string

let io_error path exn =
  let detail =
    match exn with
    | Unix.Unix_error (e, fn, _) -> Printf.sprintf "%s: %s" fn (Unix.error_message e)
    | Sys_error msg -> msg
    | e -> Printexc.to_string e
  in
  Error (E.Io_error (Printf.sprintf "%s: %s" path detail))

(* --- writer --------------------------------------------------------- *)

type writer = {
  path : string;
  fd : Unix.file_descr;
  mutable written : int;
  mutable synced : int;
  mutable open_ : bool;
}

let write_all fd b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    pos := !pos + Unix.write fd b !pos (len - !pos)
  done

let header_bytes ~config ~gen =
  Frame.make_header ~magic ~version:format_version
    ~flags:(if config.Hyperion.Config.preprocess then 1 else 0)
    ~fingerprint:(Hyperion.Config.fingerprint config)
    ~aux:(Int64.of_int gen)

let create ~config ~gen path =
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  with
  | exception e -> io_error path e
  | fd -> (
      try
        write_all fd (header_bytes ~config ~gen);
        Unix.fsync fd;
        Ok
          {
            path;
            fd;
            written = Frame.header_size;
            synced = Frame.header_size;
            open_ = true;
          }
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        io_error path e)

let open_append ~config ~gen path =
  ignore config;
  ignore gen;
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 with
  | exception e -> io_error path e
  | fd -> (
      try
        let size = (Unix.fstat fd).Unix.st_size in
        Ok { path; fd; written = size; synced = size; open_ = true }
      with e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        io_error path e)

let encode op =
  (* SAFETY: every [tagged] buffer is freshly allocated, fully written, and
     uniquely owned; the conversions below transfer ownership with no
     mutable alias remaining. *)
  let tagged tag key extra =
    let klen = String.length key in
    let b = Bytes.create (1 + klen + extra) in
    Bytes.set_uint8 b 0 tag;
    Bytes.blit_string key 0 b 1 klen;
    b
  in
  match op with
  | Put (key, v) ->
      let b = tagged 1 key 8 in
      Bytes.set_int64_le b (1 + String.length key) v;
      Bytes.unsafe_to_string b
  | Add key -> Bytes.unsafe_to_string (tagged 2 key 0)
  | Delete key -> Bytes.unsafe_to_string (tagged 3 key 0)

let decode payload =
  let len = String.length payload in
  if len < 2 then None
  else
    let key ?(drop = 0) () = String.sub payload 1 (len - 1 - drop) in
    match payload.[0] with
    | '\x01' when len >= 2 + 8 ->
        (* SAFETY: the alias is read-only — one [get_int64_le] inside the
           length-checked payload — so the string is never mutated. *)
        let v = Bytes.get_int64_le (Bytes.unsafe_of_string payload) (len - 8) in
        Some (Put (key ~drop:8 (), v))
    | '\x02' -> Some (Add (key ()))
    | '\x03' -> Some (Delete (key ()))
    | _ -> None

let append w op =
  if not w.open_ then Error (E.Io_error (w.path ^ ": WAL writer closed"))
  else
    let b = Frame.frame (encode op) in
    match write_all w.fd b with
    | () ->
        w.written <- w.written + Bytes.length b;
        Ok (Bytes.length b)
    | exception e -> io_error w.path e

let sync w =
  if not w.open_ then Error (E.Io_error (w.path ^ ": WAL writer closed"))
  else
    match Unix.fsync w.fd with
    | () ->
        w.synced <- w.written;
        Ok ()
    | exception e -> io_error w.path e

let size w = w.written
let synced_bytes w = w.synced

let close w =
  match sync w with
  | Error _ as e ->
      w.open_ <- false;
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      e
  | Ok () ->
      w.open_ <- false;
      (try Unix.close w.fd with Unix.Unix_error _ -> ());
      Ok ()

let abort w =
  if w.open_ then begin
    w.open_ <- false;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
  end

(* --- replay --------------------------------------------------------- *)

type replay = { records : int; valid_bytes : int; truncated : bool }

let torn path what = Error (E.Torn_log (path ^ ": " ^ what))

let truncate_to path valid =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd valid;
      Unix.fsync fd)

let replay ~config ~gen path ~f =
  match Frame.read_file path with
  | exception e -> io_error path e
  | buf -> (
      match Frame.parse_header ~magic buf with
      | Error Frame.Short -> torn path "file shorter than the header"
      | Error Frame.Bad_magic -> torn path "bad magic"
      | Error Frame.Bad_crc -> torn path "header CRC mismatch"
      | Ok h ->
          if h.Frame.version <> format_version then
            Error
              (E.Version_mismatch
                 { found = h.Frame.version; expected = format_version })
          else if h.Frame.fingerprint <> Hyperion.Config.fingerprint config
          then
            torn path
              (Printf.sprintf
                 "config fingerprint mismatch (file 0x%Lx, config 0x%Lx)"
                 h.Frame.fingerprint
                 (Hyperion.Config.fingerprint config))
          else if Int64.to_int h.Frame.aux <> gen then
            torn path
              (Printf.sprintf "generation mismatch (file %Ld, expected %d)"
                 h.Frame.aux gen)
          else begin
            let total = Bytes.length buf in
            let rec loop pos records =
              if pos = total then Ok { records; valid_bytes = pos; truncated = false }
              else
                match Frame.read_record buf ~pos with
                | Error (Frame.Rec_short | Frame.Rec_bad_crc | Frame.Rec_bad_len)
                  -> (
                    (* torn tail: drop it *)
                    match truncate_to path pos with
                    | () -> Ok { records; valid_bytes = pos; truncated = true }
                    | exception e -> io_error path e)
                | Ok (payload, next) -> (
                    match decode payload with
                    | None -> (
                        (* CRC-valid but undecodable: treat as tear, too *)
                        match truncate_to path pos with
                        | () ->
                            Ok { records; valid_bytes = pos; truncated = true }
                        | exception e -> io_error path e)
                    | Some op -> (
                        match f op with
                        | Ok () -> loop next (records + 1)
                        | Error _ as e -> e))
            in
            loop Frame.header_size 0
          end)
