let header_size = 32
let frame_overhead = 8

(* 1 tag byte + max key (2^20) + 8 value bytes, rounded up generously. *)
let max_payload = (1 lsl 20) + 64

let make_header ~magic ~version ~flags ~fingerprint ~aux =
  if String.length magic <> 8 then invalid_arg "Frame.make_header: magic";
  let b = Bytes.create header_size in
  Bytes.blit_string magic 0 b 0 8;
  Bytes.set_uint16_le b 8 version;
  Bytes.set_uint16_le b 10 flags;
  Bytes.set_int64_le b 12 fingerprint;
  Bytes.set_int64_le b 20 aux;
  Bytes.set_int32_le b 28 (Crc32.bytes b ~pos:0 ~len:28);
  b

type header = { version : int; flags : int; fingerprint : int64; aux : int64 }
type header_error = Short | Bad_magic | Bad_crc

let parse_header ~magic b =
  if Bytes.length b < header_size then Error Short
  else if Bytes.sub_string b 0 8 <> magic then Error Bad_magic
  else if Bytes.get_int32_le b 28 <> Crc32.bytes b ~pos:0 ~len:28 then
    Error Bad_crc
  else
    Ok
      {
        version = Bytes.get_uint16_le b 8;
        flags = Bytes.get_uint16_le b 10;
        fingerprint = Bytes.get_int64_le b 12;
        aux = Bytes.get_int64_le b 20;
      }

let frame payload =
  let len = String.length payload in
  let b = Bytes.create (len + frame_overhead) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.set_int32_le b (4 + len) (Crc32.string payload ~pos:0 ~len);
  b

type record_error = Rec_short | Rec_bad_crc | Rec_bad_len

let read_record buf ~pos =
  let total = Bytes.length buf in
  if pos + 4 > total then Error Rec_short
  else
    let len = Int32.to_int (Bytes.get_int32_le buf pos) in
    if len < 0 || len > max_payload then Error Rec_bad_len
    else if pos + 4 + len + 4 > total then Error Rec_short
    else
      let crc = Bytes.get_int32_le buf (pos + 4 + len) in
      if crc <> Crc32.bytes buf ~pos:(pos + 4) ~len then Error Rec_bad_crc
      else Ok (Bytes.sub_string buf (pos + 4) len, pos + 4 + len + 4)
