(** Fault-aware I/O interposition for the durability layer.

    Every syscall the persist layer issues — [write], [fsync], [openfile],
    [read], [rename], directory fsync — goes through this module.  Each
    wrapper consults an installable {!Fault} plan first (injected failures
    surface as ordinary [Unix_error]s, so they exercise the production
    error paths), then retries transient errnos with bounded exponential
    backoff, and finally converts any remaining failure into the store's
    typed {!Hyperion.Hyperion_error.Io_error}.

    Two failure classes are deliberately not retried:
    - a failed [fsync] (beyond [EINTR]): the kernel may already have
      dropped the dirty pages, so a subsequent success proves nothing —
      callers must treat it as loss of the durability promise;
    - directory-fsync refusals ([EINVAL] & co.): tolerated and counted,
      since they weaken durability but never consistency.

    A handle's plan lives in an [Atomic.t], so a coordinator domain can
    arm or disarm injection for a worker-owned handle.  The {!Fault.t}
    plan itself is single-consumer: only one domain may drive syscalls
    through a given armed handle. *)

type t

val none : t
(** Shared pass-through handle: no plan, no backoff delay.  Never install
    a plan on it — it is the default for every caller that passes no
    explicit handle. *)

val make : ?max_retries:int -> ?backoff_s:float -> ?plan:Fault.t -> unit -> t
(** [make ()] builds a handle retrying transients ([EINTR], [EAGAIN],
    [EWOULDBLOCK], [EIO], [ENOSPC]) up to [max_retries] times (default 4)
    with exponential backoff starting at [backoff_s] (default 200µs). *)

val set_plan : t -> Fault.t -> unit
(** Install a fault plan (atomically; visible to the consuming domain). *)

val disarm : t -> unit
(** Replace the current plan with {!Fault.none}. *)

val plan : t -> Fault.t
(** The currently installed plan. *)

val error : path:string -> exn -> ('a, Hyperion.Hyperion_error.t) result
(** The persist layer's one exception-to-[Io_error] formatter (handles
    [Unix_error], [Sys_error], [End_of_file], anything else). *)

val quiet_close : Unix.file_descr -> unit
(** Close ignoring errors — for error-path cleanup only. *)

val openfile :
  t ->
  string ->
  Unix.open_flag list ->
  int ->
  (Unix.file_descr, Hyperion.Hyperion_error.t) result

val write_all :
  t ->
  Unix.file_descr ->
  bytes ->
  path:string ->
  (unit, Hyperion.Hyperion_error.t) result
(** Write the whole buffer, absorbing short writes; bytes transferred
    before a retry are never resent. *)

val fsync :
  t -> Unix.file_descr -> path:string -> (unit, Hyperion.Hyperion_error.t) result

val fsync_dir : t -> string -> (unit, Hyperion.Hyperion_error.t) result
(** Fsync a directory to make a completed rename durable.  Filesystem
    refusals are counted and tolerated; real write-back failures ([EIO],
    [ENOSPC]) are errors. *)

val rename : t -> string -> string -> (unit, Hyperion.Hyperion_error.t) result

val ftruncate :
  t ->
  Unix.file_descr ->
  int ->
  path:string ->
  (unit, Hyperion.Hyperion_error.t) result
(** Truncate to [len] {e and} reposition the descriptor offset to the new
    end, so a subsequent append continues from there instead of leaving a
    zero-filled hole past the cut. *)

val close :
  t -> Unix.file_descr -> path:string -> (unit, Hyperion.Hyperion_error.t) result

val read_file : t -> string -> (bytes, Hyperion.Hyperion_error.t) result
(** Read a whole file into memory ([Io_read] fault site; retries restart
    the read from the beginning). *)

(** Buffered writer used to stream snapshots: buffers ~64KiB, then writes
    through {!write_all}. *)
module Out : sig
  type w

  val create : t -> string -> (w, Hyperion.Hyperion_error.t) result
  val write : w -> bytes -> (unit, Hyperion.Hyperion_error.t) result
  val sync : w -> (unit, Hyperion.Hyperion_error.t) result
  (** Flush the buffer and fsync the descriptor. *)

  val close : w -> (unit, Hyperion.Hyperion_error.t) result
  (** Flush and close; idempotent. *)

  val abort : w -> unit
  (** Drop the descriptor without flushing (error-path cleanup). *)
end
