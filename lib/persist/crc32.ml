(* Reflected CRC-32 with polynomial 0xEDB88320 (IEEE 802.3). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let bytes ?(crc = 0l) b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Crc32.bytes";
  let table = Lazy.force table in
  let c = ref (Int32.logxor crc 0xFFFFFFFFl) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code (Bytes.get b i)))) 0xFFl)
    in
    c := Int32.logxor table.(idx) (Int32.shift_right_logical !c 8)
  done;
  Int32.logxor !c 0xFFFFFFFFl

let string ?crc s ~pos ~len =
  (* SAFETY: the aliased bytes are only ever read — [bytes] performs
     [Bytes.get] within the validated [pos, pos+len) window and never
     writes — so the immutable string is not mutated through the alias. *)
  bytes ?crc (Bytes.unsafe_of_string s) ~pos ~len
