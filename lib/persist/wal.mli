(** Append-only write-ahead log of acknowledged mutations.

    File layout: the {!Frame} header (magic ["HYPWAL\x00\x01"], aux = the
    generation number tying the log to its base snapshot) followed by one
    CRC-framed record per logged mutation.  Record payloads are
    [op · key · value?]: op [1] = put (8-byte LE value appended), op [2] =
    add (value-less key), op [3] = delete.

    Appends are single unbuffered [write]s; durability is explicit via
    {!sync} (the group-commit policy lives in {!Persist}).  On open for
    replay, a torn tail — a record cut short, an impossible length word, or
    a CRC mismatch at the physical end — is truncated away silently; only
    an unreadable {e header} is an error ([Torn_log]), and by construction
    (the header is fsynced before the first append is acknowledged) that
    can only happen to a log holding zero durable records. *)

val format_version : int
val magic : string

type op = Put of string * int64 | Add of string | Delete of string

(** {1 Writing} *)

type writer

val create :
  ?io:Io.t -> ?compress:Compress.t -> config:Hyperion.Config.t -> gen:int ->
  string -> (writer, Hyperion.Hyperion_error.t) result
(** Create (truncating any existing file) and make the header durable.
    All syscalls go through [io] (default {!Io.none}).  [compress]
    (default [Identity]) is the key encoder this log's records are
    written under: keys are logged {e post}-encoding, the header
    fingerprint is {!Compress.mix_fingerprint}ed, and flags bits 1-2
    carry the scheme id — so recovery needs no retraining and a log can
    never replay under the wrong dictionary. *)

val open_append :
  ?io:Io.t -> config:Hyperion.Config.t -> gen:int -> string ->
  (writer, Hyperion.Hyperion_error.t) result
(** Reopen an existing (already replayed, hence already truncated-to-valid)
    log for further appends.  Everything on disk at open counts as synced. *)

val append : writer -> op -> (int, Hyperion.Hyperion_error.t) result
(** Append one record (no fsync); returns the record's size in bytes. *)

val sync : writer -> (unit, Hyperion.Hyperion_error.t) result
val size : writer -> int  (** Bytes written so far, header included. *)

val truncate_writer : writer -> len:int -> (unit, Hyperion.Hyperion_error.t) result
(** Cut the log back to [len] bytes — the compensation step of the
    append-first mutation protocol: when the in-memory store rejects a
    mutation whose record was already appended, the record is truncated
    off so log and store stay identical.  [len] must lie between the
    header and the current write offset. *)

val synced_bytes : writer -> int
(** Durable watermark: file offset up to which records survive any crash. *)

val close : writer -> (unit, Hyperion.Hyperion_error.t) result
(** [sync] then close the descriptor. *)

val abort : writer -> unit
(** Drop the descriptor {e without} syncing — the crash-simulation exit
    used by the chaos harness. *)

(** {1 Replay} *)

type replay = {
  records : int;  (** complete records applied *)
  valid_bytes : int;  (** offset of the last complete record's end *)
  truncated : bool;  (** a torn tail was cut off *)
}

val replay :
  ?io:Io.t -> ?compress:Compress.t -> config:Hyperion.Config.t -> gen:int ->
  string -> f:(op -> (unit, Hyperion.Hyperion_error.t) result) ->
  (replay, Hyperion.Hyperion_error.t) result
(** Apply every complete record to [f] in append order, then truncate the
    file to [valid_bytes] if a torn tail was found.  [Torn_log] when the
    header is unreadable or names a different generation/config;
    [Version_mismatch] on a foreign format version; [f]'s first error
    aborts the replay. *)
