(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.

    Every frame of the snapshot and write-ahead-log formats carries a CRC
    of its payload so corruption — torn writes, bit rot, truncation mid
    record — is detected on read instead of silently decoded.  Implemented
    here because the container ships no zlib binding. *)

val bytes : ?crc:int32 -> Bytes.t -> pos:int -> len:int -> int32
(** [bytes b ~pos ~len] is the CRC-32 of the slice; [?crc] continues a
    running checksum (as [crc32()] in zlib does). *)

val string : ?crc:int32 -> string -> pos:int -> len:int -> int32
