(** Durability for a Hyperion store: snapshot + write-ahead log.

    A durability directory holds one {e generation} — a base snapshot
    ([snapshot-<gen>.hyp], see {!Snapshot}) plus an append-only log of the
    mutations acknowledged since it was taken ([wal-<gen>.log], see
    {!Wal}).  {!open_or_create} recovers the store as {e latest valid
    snapshot + WAL replay}; the logged mutation API appends each record to
    the WAL before applying it to the in-memory store (append-first, with
    truncation as compensation when the store rejects), makes records
    durable in groups (fsync every [sync_every_ops] records or
    [sync_every_bytes] bytes, whichever comes first), and rotates the log
    into a fresh snapshot generation once it outgrows [rotate_bytes].

    Recovery invariants (chaos-tested, DESIGN.md section 8):
    - a mutation whose record was fsynced before a crash is always
      recovered;
    - an unacknowledged tail of mutations may be lost, but only as a
      clean prefix cut — never a corrupt or reordered store;
    - a crash at any point of a rotation leaves either the old or the new
      generation fully recoverable.

    The handle serialises mutations internally and is safe to share
    across threads; reads go straight to {!store}. *)

module Crc32 = Crc32
module Frame = Frame
module Io = Io
module Snapshot = Snapshot
module Wal = Wal
(** The building blocks, re-exported for tests and tooling (the library is
    wrapped, so they are not reachable under their bare names).  {!Io} is
    the fault-aware syscall layer every durability syscall goes through. *)

type t

type recovery = {
  generation : int;  (** generation the store was recovered from *)
  snapshot_keys : int;  (** bindings loaded from the base snapshot *)
  replayed_ops : int;  (** WAL records applied on top *)
  wal_truncated : bool;  (** a torn WAL tail was cut off *)
  skipped : string list;
      (** newer snapshot files that failed validation and were passed over,
          plus stale [.tmp] leftovers removed *)
}

val open_or_create :
  ?config:Hyperion.Config.t ->
  ?compress:Compress.t ->
  ?io:Io.t ->
  ?sync_every_ops:int ->
  ?sync_every_bytes:int ->
  ?rotate_bytes:int ->
  string ->
  (t, Hyperion.Hyperion_error.t) result
(** [open_or_create dir] creates [dir] (and an empty generation 0) when
    absent, otherwise recovers from the latest valid snapshot plus its WAL.
    Defaults: [sync_every_ops = 64], [sync_every_bytes = 1 MiB],
    [rotate_bytes = 64 MiB].  Every syscall the handle ever issues goes
    through [io] (default {!Io.none}), the fault-injection and retry
    layer.  All failures — corrupt snapshot, foreign format version, torn
    WAL header, OS errors — come back as typed errors; this function never
    raises (except on a [compress]/[config.compress] id disagreement,
    which is a wiring bug).

    {b Key compression.}  This layer stores and logs keys {e exactly as
    given} — when [config.compress] is non-zero the caller (shard layer,
    CLI) encodes keys before every mutation.  [compress] declares the
    encoder those keys are under: on a fresh directory it is persisted
    into every snapshot and WAL header; on an existing directory the
    persisted dictionary is adopted (retraining-free recovery) and
    [compress], when given, is verified against it
    ([Version_mismatch] on a different dictionary).  Opening a fresh
    directory with [config.compress = 1] and no [compress] fails with
    [Io_error] — a dictionary cannot be conjured from the scheme id.
    {!compress} exposes the adopted encoder.

    Before the handle is returned, the recovered store's arenas pass the
    {!Analyze.Heapcheck} mark-and-sweep heap audit; a leaked or
    double-referenced chunk surfaces as [Error (Chunk_corrupt _)] rather
    than a handle over a silently corrupt heap. *)

val store : t -> Hyperion.Store.t
(** The live in-memory store.  Read through it freely; mutations applied
    to it directly bypass the log and will not survive a restart — use the
    logged API below. *)

val config : t -> Hyperion.Config.t

val compress : t -> Compress.t
(** The encoder this directory's keys are encoded with (persisted in the
    snapshot; adopted on recovery). *)

val dir : t -> string
val recovery : t -> recovery  (** What {!open_or_create} found. *)

(** {1 Logged mutations}

    Same contracts as the [Store] result API; [Ok] additionally means the
    mutation is in the log (durable after the next group commit).

    Mutations follow the {e append-first} protocol: validate the key,
    append the WAL record, apply to the store, and truncate the record
    back off if the store rejects the mutation — so the log and the store
    never disagree about the acknowledged history.

    A persistent storage failure (append, group-commit fsync, or rotation
    failing after bounded retries) flips the handle into {e sticky
    degraded read-only mode}: mutations return [Degraded] and leave the
    store unchanged, reads keep serving, and {!heal} re-arms writes.  A
    group-commit or rotation failure degrades the handle but the mutation
    that triggered it is still acknowledged — its record is in the log;
    what is lost is the durability promise for the not-yet-synced tail,
    the same window every group-commit scheme has. *)

val put : t -> string -> int64 -> (unit, Hyperion.Hyperion_error.t) result
val add : t -> string -> (unit, Hyperion.Hyperion_error.t) result
val delete : t -> string -> (bool, Hyperion.Hyperion_error.t) result

val sync : t -> (unit, Hyperion.Hyperion_error.t) result
(** Force the group commit: fsync all appended records now.  Failure
    degrades the handle (a failed fsync is never retried — the kernel may
    have dropped the dirty pages). *)

val snapshot_now : t -> (unit, Hyperion.Hyperion_error.t) result
(** Force a rotation: write a fresh snapshot generation and start an empty
    WAL, regardless of [rotate_bytes]. *)

val degraded : t -> string option
(** [Some why] when the handle is in degraded read-only mode. *)

val heal : t -> (unit, Hyperion.Hyperion_error.t) result
(** Re-arm a degraded handle: snapshot the live in-memory store (the
    authoritative state — the old WAL may be torn) into generation
    [gen + 1], open a fresh WAL, drop the old generation's files, and
    clear the degraded flag.  [Ok] immediately on a healthy handle.  On
    failure the handle stays degraded and [heal] can be retried — disarm
    any injected fault plan on {!io} first. *)

val io : t -> Io.t
(** The syscall-interposition handle this store was opened with. *)

val close : t -> (unit, Hyperion.Hyperion_error.t) result
(** [sync] and release the WAL descriptor (degraded handles skip the
    final sync — the device is already failing).  The handle rejects
    further mutations. *)

(** {1 Observability}

    Counters over the mutations logged {e through this handle} since
    [open_or_create]; the chaos harness uses them to know exactly which
    prefix of its workload a post-crash recovery must reproduce. *)

val generation : t -> int
val applied_ops : t -> int  (** mutations logged since open *)

val snapshot_base : t -> int
(** Of {!applied_ops}, how many are captured by the current generation's
    base snapshot (reset point of the last rotation). *)

val durable_ops : t -> int
(** Mutations guaranteed to survive a crash right now:
    [snapshot_base + fsynced WAL records]. *)

val rotations : t -> int
val wal_size : t -> int
val wal_synced_bytes : t -> int

val crash : t -> unit
(** Simulate a process kill: drop the WAL descriptor without syncing and
    poison the handle.  Unsynced appends may or may not reach disk — the
    chaos harness then tears the file at a chosen offset before reopening. *)

(** {1 One-shot snapshot I/O}

    Directory-less convenience wrappers around {!Snapshot} for the CLI
    [save]/[load] verbs. *)

val save_snapshot :
  ?io:Io.t -> ?compress:Compress.t -> Hyperion.Store.t -> string ->
  (int, Hyperion.Hyperion_error.t) result

val load_snapshot :
  ?config:Hyperion.Config.t -> ?expect:Compress.t -> string ->
  (Hyperion.Store.t * Compress.t, Hyperion.Hyperion_error.t) result
(** Like {!Snapshot.load}, but when [config] is omitted it is inferred
    from the header (stock config families, the preprocess flag and the
    persisted encoder).  Returns the store together with the encoder its
    keys are encoded under. *)

val snapshot_file : dir:string -> gen:int -> string
val wal_file : dir:string -> gen:int -> string
(** The naming scheme, for tests and tooling. *)
