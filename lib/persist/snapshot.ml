module E = Hyperion.Hyperion_error

let format_version = 1
let magic = "HYPSNAP\x01"

type header = {
  version : int;
  preprocess : bool;
  fingerprint : int64;
  count : int;
}

let io_error path exn =
  let detail =
    match exn with
    | Unix.Unix_error (e, fn, _) -> Printf.sprintf "%s: %s" fn (Unix.error_message e)
    | Sys_error msg -> msg
    | End_of_file -> "unexpected end of file"
    | e -> Printexc.to_string e
  in
  Error (E.Io_error (Printf.sprintf "%s: %s" path detail))

let corrupt path what = Error (E.Corrupt_snapshot (path ^ ": " ^ what))

let parse_header path buf =
  match Frame.parse_header ~magic buf with
  | Error Frame.Short -> corrupt path "file shorter than the header"
  | Error Frame.Bad_magic -> corrupt path "bad magic"
  | Error Frame.Bad_crc -> corrupt path "header CRC mismatch"
  | Ok h ->
      if h.Frame.version <> format_version then
        Error (E.Version_mismatch { found = h.Frame.version; expected = format_version })
      else
        Ok
          {
            version = h.Frame.version;
            preprocess = h.Frame.flags land 1 <> 0;
            fingerprint = h.Frame.fingerprint;
            count = Int64.to_int h.Frame.aux;
          }

let read_header path =
  match Frame.read_file path with
  | exception e -> io_error path e
  | buf -> parse_header path buf

(* fsync of a directory makes a completed rename durable; some filesystems
   reject it, which only weakens durability, never consistency. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let record_payload key value =
  (* SAFETY: both buffers below are freshly allocated, fully written, and
     never mutated or aliased after the conversion. *)
  let klen = String.length key in
  match value with
  | None ->
      let b = Bytes.create (1 + klen) in
      Bytes.set_uint8 b 0 0;
      Bytes.blit_string key 0 b 1 klen;
      Bytes.unsafe_to_string b
  | Some v ->
      let b = Bytes.create (1 + klen + 8) in
      Bytes.set_uint8 b 0 1;
      Bytes.blit_string key 0 b 1 klen;
      Bytes.set_int64_le b (1 + klen) v;
      Bytes.unsafe_to_string b

let save store path =
  let tmp = path ^ ".tmp" in
  let store_cfg = Hyperion.Store.config store in
  try
    let oc = open_out_bin tmp in
    let written = ref 0 in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        let header =
          Frame.make_header ~magic ~version:format_version
            ~flags:(if store_cfg.Hyperion.Config.preprocess then 1 else 0)
            ~fingerprint:(Hyperion.Config.fingerprint store_cfg)
            ~aux:(Int64.of_int (Hyperion.Store.length store))
        in
        output_bytes oc header;
        written := Bytes.length header;
        Hyperion.Store.iter store (fun key value ->
            let rec_bytes = Frame.frame (record_payload key value) in
            output_bytes oc rec_bytes;
            written := !written + Bytes.length rec_bytes);
        flush oc;
        Unix.fsync (Unix.descr_of_out_channel oc));
    Unix.rename tmp path;
    fsync_dir (Filename.dirname path);
    Ok !written
  with e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    io_error path e

let apply_record store key value =
  Hyperion.Store.put_opt_result store key value

let decode_record path payload =
  let len = String.length payload in
  if len < 1 then corrupt path "empty record payload"
  else
    match payload.[0] with
    | '\x00' when len >= 2 -> Ok (String.sub payload 1 (len - 1), None)
    | '\x01' when len >= 2 + 8 ->
        let key = String.sub payload 1 (len - 9) in
        (* SAFETY: the alias is read-only — one [get_int64_le] inside the
           length-checked payload — so the string is never mutated. *)
        let v = Bytes.get_int64_le (Bytes.unsafe_of_string payload) (len - 8) in
        Ok (key, Some v)
    | _ -> corrupt path "malformed record payload"

let load ~config path =
  match Frame.read_file path with
  | exception e -> io_error path e
  | buf -> (
      match parse_header path buf with
      | Error _ as e -> e
      | Ok h ->
          if h.fingerprint <> Hyperion.Config.fingerprint config then
            corrupt path
              (Printf.sprintf
                 "config fingerprint mismatch (file 0x%Lx, config 0x%Lx)"
                 h.fingerprint
                 (Hyperion.Config.fingerprint config))
          else begin
            let store = Hyperion.Store.create ~config () in
            let total = Bytes.length buf in
            let rec loop pos seen =
              if pos = total then
                if seen = h.count then Ok store
                else
                  corrupt path
                    (Printf.sprintf "header promises %d records, file has %d"
                       h.count seen)
              else if seen = h.count then corrupt path "trailing bytes"
              else
                match Frame.read_record buf ~pos with
                | Error Frame.Rec_short -> corrupt path "truncated record"
                | Error Frame.Rec_bad_len -> corrupt path "absurd record length"
                | Error Frame.Rec_bad_crc ->
                    corrupt path
                      (Printf.sprintf "record #%d CRC mismatch" seen)
                | Ok (payload, next) -> (
                    match decode_record path payload with
                    | Error _ as e -> e
                    | Ok (key, value) -> (
                        match apply_record store key value with
                        | Ok () -> loop next (seen + 1)
                        | Error _ as e -> e))
            in
            loop Frame.header_size 0
          end)
