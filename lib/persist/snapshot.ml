module E = Hyperion.Hyperion_error

let format_version = 2
let magic = "HYPSNAP\x01"

type header = {
  version : int;
  preprocess : bool;
  encoder : int;
  fingerprint : int64;
  count : int;
}

let corrupt path what = Error (E.Corrupt_snapshot (path ^ ": " ^ what))

(* Header flags: bit 0 = preprocess, bits 1-2 = key-encoder scheme id.
   v1 files predate the encoder field; their flags only ever held the
   preprocess bit, so decoding them with this layout reads encoder 0
   (identity) — exactly what they were written with. *)
let flags_of ~preprocess ~encoder = (if preprocess then 1 else 0) lor (encoder lsl 1)

let parse_header path buf =
  match Frame.parse_header ~magic buf with
  | Error Frame.Short -> corrupt path "file shorter than the header"
  | Error Frame.Bad_magic -> corrupt path "bad magic"
  | Error Frame.Bad_crc -> corrupt path "header CRC mismatch"
  | Ok h ->
      if h.Frame.version <> format_version && h.Frame.version <> 1 then
        Error (E.Version_mismatch { found = h.Frame.version; expected = format_version })
      else
        Ok
          {
            version = h.Frame.version;
            preprocess = h.Frame.flags land 1 <> 0;
            encoder = (h.Frame.flags lsr 1) land 3;
            fingerprint = h.Frame.fingerprint;
            count = Int64.to_int h.Frame.aux;
          }

let read_header ?(io = Io.none) path =
  match Io.read_file io path with
  | Error _ as e -> e
  | Ok buf -> parse_header path buf

(* The encoder persisted in a v2 file: the framed record right after the
   header — empty payload for identity, the 258-byte dictionary blob for
   the dict scheme.  v1 files have no such record and are identity. *)
let parse_encoder path h buf =
  if h.version = 1 then
    if h.encoder <> 0 then corrupt path "v1 snapshot with nonzero encoder bits"
    else Ok (Compress.Identity, Frame.header_size)
  else
    match Frame.read_record buf ~pos:Frame.header_size with
    | Error _ -> corrupt path "missing or torn dictionary record"
    | Ok (blob, next) -> (
        match h.encoder with
        | 0 ->
            if blob = "" then Ok (Compress.Identity, next)
            else corrupt path "identity snapshot carries a dictionary"
        | 1 -> (
            match Compress.dict_of_string blob with
            | Ok d -> Ok (Compress.Dict d, next)
            | Error why -> corrupt path ("bad dictionary: " ^ why))
        | n -> Error (E.Version_mismatch { found = n; expected = 1 }))

let record_payload key value =
  (* SAFETY: both buffers below are freshly allocated, fully written, and
     never mutated or aliased after the conversion. *)
  let klen = String.length key in
  match value with
  | None ->
      let b = Bytes.create (1 + klen) in
      Bytes.set_uint8 b 0 0;
      Bytes.blit_string key 0 b 1 klen;
      Bytes.unsafe_to_string b
  | Some v ->
      let b = Bytes.create (1 + klen + 8) in
      Bytes.set_uint8 b 0 1;
      Bytes.blit_string key 0 b 1 klen;
      Bytes.set_int64_le b (1 + klen) v;
      Bytes.unsafe_to_string b

let save ?(io = Io.none) ?(compress = Compress.Identity) store path =
  let tmp = path ^ ".tmp" in
  let store_cfg = Hyperion.Store.config store in
  if store_cfg.Hyperion.Config.compress <> Compress.id compress then
    invalid_arg
      (Printf.sprintf
         "Snapshot.save: store config selects encoder %d but %s was passed"
         store_cfg.Hyperion.Config.compress (Compress.name compress));
  let ( let* ) = Result.bind in
  let result =
    match Io.Out.create io tmp with
    | Error _ as e -> e
    | Ok w -> (
        let written = ref 0 in
        let body =
          let header =
            Frame.make_header ~magic ~version:format_version
              ~flags:
                (flags_of ~preprocess:store_cfg.Hyperion.Config.preprocess
                   ~encoder:(Compress.id compress))
              ~fingerprint:
                (Compress.mix_fingerprint
                   (Hyperion.Config.fingerprint store_cfg)
                   compress)
              ~aux:(Int64.of_int (Hyperion.Store.length store))
          in
          let* () = Io.Out.write w header in
          written := Bytes.length header;
          let dict_rec =
            Frame.frame
              (match compress with
              | Compress.Identity -> ""
              | Compress.Dict d -> Compress.dict_to_string d)
          in
          let* () = Io.Out.write w dict_rec in
          written := !written + Bytes.length dict_rec;
          (* [iter] has no early exit: after the first failure the
             remaining callbacks are no-ops *)
          let err = ref None in
          Hyperion.Store.iter store (fun key value ->
              if !err = None then begin
                let rec_bytes = Frame.frame (record_payload key value) in
                match Io.Out.write w rec_bytes with
                | Ok () -> written := !written + Bytes.length rec_bytes
                | Error e -> err := Some e
              end);
          match !err with
          | Some e -> Error e
          | None ->
              let* () = Io.Out.sync w in
              Io.Out.close w
        in
        match body with
        | Error e ->
            Io.Out.abort w;
            Error e
        | Ok () ->
            let* () = Io.rename io tmp path in
            let* () = Io.fsync_dir io (Filename.dirname path) in
            Ok !written)
  in
  match result with
  | Ok _ as ok -> ok
  | Error _ as e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      e

let apply_record store key value =
  Hyperion.Store.put_opt_result store key value

let decode_record path payload =
  let len = String.length payload in
  if len < 1 then corrupt path "empty record payload"
  else
    match payload.[0] with
    | '\x00' when len >= 2 -> Ok (String.sub payload 1 (len - 1), None)
    | '\x01' when len >= 2 + 8 ->
        let key = String.sub payload 1 (len - 9) in
        (* SAFETY: the alias is read-only — one [get_int64_le] inside the
           length-checked payload — so the string is never mutated. *)
        let v = Bytes.get_int64_le (Bytes.unsafe_of_string payload) (len - 8) in
        Ok (key, Some v)
    | _ -> corrupt path "malformed record payload"

let probe ?(io = Io.none) path =
  match Io.read_file io path with
  | Error _ as e -> e
  | Ok buf -> (
      match parse_header path buf with
      | Error _ as e -> e
      | Ok h -> (
          match parse_encoder path h buf with
          | Error _ as e -> e
          | Ok (enc, _) -> Ok (h, enc)))

let load ?(io = Io.none) ?expect ~config path =
  match Io.read_file io path with
  | Error _ as e -> e
  | Ok buf -> (
      match parse_header path buf with
      | Error _ as e -> e
      | Ok h -> (
          match parse_encoder path h buf with
          | Error _ as e -> e
          | Ok (enc, records_pos) ->
              if config.Hyperion.Config.compress <> Compress.id enc then
                (* the config demands a different encoder scheme: refusing
                   here is what keeps a dict-encoded store from being
                   silently served through an identity front door *)
                Error
                  (E.Version_mismatch
                     {
                       found = Compress.tag enc;
                       expected = config.Hyperion.Config.compress;
                     })
              else if
                match expect with
                | None -> false
                | Some e -> not (Compress.equal e enc)
              then
                (* same scheme, different dictionary bytes *)
                Error
                  (E.Version_mismatch
                     {
                       found = Compress.tag enc;
                       expected = Compress.tag (Option.get expect);
                     })
              else if
                h.fingerprint
                <> Compress.mix_fingerprint
                     (Hyperion.Config.fingerprint config)
                     enc
              then
                corrupt path
                  (Printf.sprintf
                     "config fingerprint mismatch (file 0x%Lx, config 0x%Lx)"
                     h.fingerprint
                     (Compress.mix_fingerprint
                        (Hyperion.Config.fingerprint config)
                        enc))
              else begin
                let store = Hyperion.Store.create ~config () in
                let total = Bytes.length buf in
                let rec loop pos seen =
                  if pos = total then
                    if seen = h.count then Ok (store, enc)
                    else
                      corrupt path
                        (Printf.sprintf
                           "header promises %d records, file has %d" h.count
                           seen)
                  else if seen = h.count then corrupt path "trailing bytes"
                  else
                    match Frame.read_record buf ~pos with
                    | Error Frame.Rec_short -> corrupt path "truncated record"
                    | Error Frame.Rec_bad_len ->
                        corrupt path "absurd record length"
                    | Error Frame.Rec_bad_crc ->
                        corrupt path
                          (Printf.sprintf "record #%d CRC mismatch" seen)
                    | Ok (payload, next) -> (
                        match decode_record path payload with
                        | Error _ as e -> e
                        | Ok (key, value) -> (
                            match apply_record store key value with
                            | Ok () -> loop next (seen + 1)
                            | Error _ as e -> e))
                in
                loop records_pos 0
              end))
