type t = {
  cfg : Config.t;
  mms : Memman.t array;  (** one per arena *)
  locks : Mutex.t array;  (** one per arena *)
  tries : Types.trie array;  (** 1, or 256 routed by first key byte *)
  counts : int Atomic.t array;
      (** keys per trie; written under the arena lock, read lock-free by
          {!length} (atomic, so concurrent readers never see torn values) *)
}

let name = "Hyperion"

(* --- telemetry -------------------------------------------------------- *)

module T = Telemetry

(* One latency histogram family, labelled per operation.  All recording is
   guarded by [T.enabled ()], so with telemetry off every public op pays
   exactly one flag load and one branch, and no metric cell is written
   (test_telemetry.ml asserts both the zero-counter and the
   semantics-invariance halves of that contract). *)
let m_put =
  T.Histogram.make "hyperion_op_latency_ns"
    ~labels:[ ("op", "put") ]
    ~help:"Store operation latency in nanoseconds"

let m_add = T.Histogram.make "hyperion_op_latency_ns" ~labels:[ ("op", "add") ]
let m_get = T.Histogram.make "hyperion_op_latency_ns" ~labels:[ ("op", "get") ]

let m_delete =
  T.Histogram.make "hyperion_op_latency_ns" ~labels:[ ("op", "delete") ]

let m_get_many =
  T.Histogram.make "hyperion_op_latency_ns" ~labels:[ ("op", "get_many") ]

let m_mem_many =
  T.Histogram.make "hyperion_op_latency_ns" ~labels:[ ("op", "mem_many") ]

let create ?(config = Config.default) () =
  Config.validate config;
  let mms =
    Array.init config.arenas (fun _ ->
        Memman.create ~chunks_per_bin:config.chunks_per_bin
          ~max_metabins:config.max_metabins ())
  in
  let locks = Array.init config.arenas (fun _ -> Mutex.create ()) in
  let n_tries = if config.arenas = 1 then 1 else 256 in
  let tries =
    Array.init n_tries (fun i ->
        {
          Types.cfg = config;
          mm = mms.(i mod config.arenas);
          root = Hp.null;
        })
  in
  { cfg = config; mms; locks; tries;
    counts = Array.init n_tries (fun _ -> Atomic.make 0) }

let create_default () = create ()
let config t = t.cfg

let xform t key = if t.cfg.preprocess then Preprocess.encode key else key

let route t key =
  if Array.length t.tries = 1 then 0 else Char.code key.[0]

let with_arena t idx f =
  let lock = t.locks.(idx mod Array.length t.locks) in
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f
[@@lock_wrapper "Store.t.locks"]

let put_opt t key value =
  let key = xform t key in
  if String.length key = 0 then invalid_arg "Hyperion: empty key";
  let i = route t key in
  with_arena t i (fun () ->
      if Ops.put t.tries.(i) key value then Atomic.incr t.counts.(i))

(* Instrumented entry: run [op]'s body between two clock reads, feed the
   elapsed time into [metric], and hand slow ops (with whatever path flags
   the engine marked) to the trace ring.  Written as a per-call-site [if]
   rather than a closure-taking combinator to keep the enabled path
   allocation-free. *)

let put t key value =
  if T.enabled () then begin
    let t0 = T.op_start () in
    put_opt t key (Some value);
    T.op_end m_put ~kind:"put" ~key_len:(String.length key) t0
  end
  else put_opt t key (Some value)

let add t key =
  if T.enabled () then begin
    let t0 = T.op_start () in
    put_opt t key None;
    T.op_end m_add ~kind:"add" ~key_len:(String.length key) t0
  end
  else put_opt t key None

let get_u t key =
  let key = xform t key in
  if String.length key = 0 then invalid_arg "Hyperion: empty key";
  let i = route t key in
  with_arena t i (fun () ->
      match Ops.find t.tries.(i) key with
      | Some (Some v) -> Some v
      | Some None | None -> None)

let get t key =
  if T.enabled () then begin
    let t0 = T.op_start () in
    let r = get_u t key in
    T.op_end m_get ~kind:"get" ~key_len:(String.length key) t0;
    r
  end
  else get_u t key

let mem t key =
  let key = xform t key in
  if String.length key = 0 then invalid_arg "Hyperion: empty key";
  let i = route t key in
  with_arena t i (fun () -> Ops.find t.tries.(i) key <> None)

(* --- batched reads -------------------------------------------------- *)

(* Validate before touching any trie so a batch either runs whole or
   raises without partial effects — reads have none anyway, but this
   keeps [get_many keys = Array.map (get t) keys] exact even on the
   raising cases: the empty check mirrors [get_u]'s, the length check
   mirrors [Ops.find]'s (both on the post-[xform] key). *)
let validate_batch ekeys =
  Array.iter
    (fun k ->
      if String.length k = 0 then invalid_arg "Hyperion: empty key";
      if Ops.key_error k <> None then
        invalid_arg "Hyperion: key longer than 2^20 bytes")
    ekeys

let find_many_u ?width t keys =
  let n = Array.length keys in
  (* the identity xform needs no per-batch copy *)
  let ekeys =
    if t.cfg.preprocess then Array.map (xform t) keys else keys
  in
  validate_batch ekeys;
  if Array.length t.tries = 1 then
    with_arena t 0 (fun () -> Getmany.find_many ?width t.tries.(0) ekeys)
  else begin
    (* Group per routed trie, pipeline each group under its arena lock,
       then scatter results back to input positions. *)
    let out = Array.make n None in
    let groups = Array.make 256 [] in
    for i = n - 1 downto 0 do
      let r = Char.code ekeys.(i).[0] in
      groups.(r) <- i :: groups.(r)
    done;
    Array.iteri
      (fun tri idxs ->
        if idxs <> [] then begin
          let idxa = Array.of_list idxs in
          let sub = Array.map (fun i -> ekeys.(i)) idxa in
          let r =
            with_arena t tri (fun () ->
                Getmany.find_many ?width t.tries.(tri) sub)
          in
          Array.iteri (fun j i -> out.(i) <- r.(j)) idxa
        end)
      groups;
    out
  end

let get_many ?width t keys =
  let body () =
    Array.map
      (function Some (Some v) -> Some v | Some None | None -> None)
      (find_many_u ?width t keys)
  in
  if T.enabled () then begin
    let t0 = T.op_start () in
    let r = body () in
    T.op_end m_get_many ~kind:"get_many" ~key_len:(Array.length keys) t0;
    r
  end
  else body ()

let mem_many ?width t keys =
  let body () =
    Array.map (fun r -> r <> None) (find_many_u ?width t keys)
  in
  if T.enabled () then begin
    let t0 = T.op_start () in
    let r = body () in
    T.op_end m_mem_many ~kind:"mem_many" ~key_len:(Array.length keys) t0;
    r
  end
  else body ()

let delete_u t key =
  let key = xform t key in
  if String.length key = 0 then invalid_arg "Hyperion: empty key";
  let i = route t key in
  with_arena t i (fun () ->
      let removed = Ops.delete t.tries.(i) key in
      if removed then Atomic.decr t.counts.(i);
      removed)

let delete t key =
  if T.enabled () then begin
    let t0 = T.op_start () in
    let r = delete_u t key in
    T.op_end m_delete ~kind:"delete" ~key_len:(String.length key) t0;
    r
  end
  else delete_u t key

let range t ?start f =
  let start = Option.map (xform t) start in
  let wrap key value =
    let key = if t.cfg.preprocess then Preprocess.decode key else key in
    f key value
  in
  let n = Array.length t.tries in
  if n = 1 then
    with_arena t 0 (fun () -> Range.range t.tries.(0) ?start wrap)
  else begin
    (* Tries are routed by first key byte, so visiting them in index order
       preserves the global key order. *)
    let stop = ref false in
    let wrap' key value =
      let continue = wrap key value in
      if not continue then stop := true;
      continue
    in
    let first = match start with Some s when s <> "" -> Char.code s.[0] | _ -> 0 in
    let i = ref first in
    while (not !stop) && !i < n do
      let idx = !i in
      let bound = if idx = first then start else None in
      with_arena t idx (fun () -> Range.range t.tries.(idx) ?start:bound wrap');
      incr i
    done
  end

let length t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts

(* --- typed-result mutation API ------------------------------------- *)

let put_result_opt_u t key value =
  match Ops.key_error key with
  | Some e -> Error e
  | None ->
      let key = xform t key in
      let i = route t key in
      with_arena t i (fun () ->
          match Ops.put_checked t.tries.(i) key value with
          | Ok added ->
              if added then Atomic.incr t.counts.(i);
              Ok ()
          | Error _ as e -> e)

(* The typed-result paths feed the same histograms as the raising ones:
   these are what the WAL-logged and sharded front-ends call, so sharded
   benches and chaos runs surface their latencies under the same names. *)
let put_result_opt t key value =
  if T.enabled () then begin
    let t0 = T.op_start () in
    let r = put_result_opt_u t key value in
    let m, kind =
      match value with Some _ -> (m_put, "put") | None -> (m_add, "add")
    in
    T.op_end m ~kind ~key_len:(String.length key) t0;
    r
  end
  else put_result_opt_u t key value

let put_opt_result = put_result_opt
let put_result t key value = put_result_opt t key (Some value)
let add_result t key = put_result_opt t key None

let delete_result_u t key =
  match Ops.key_error key with
  | Some e -> Error e
  | None ->
      let key = xform t key in
      let i = route t key in
      with_arena t i (fun () ->
          match Ops.delete t.tries.(i) key with
          | removed ->
              if removed then Atomic.decr t.counts.(i);
              Ok removed
          | exception Hyperion_error.Error e -> Error e)

let delete_result t key =
  if T.enabled () then begin
    let t0 = T.op_start () in
    let r = delete_result_u t key in
    T.op_end m_delete ~kind:"delete" ~key_len:(String.length key) t0;
    r
  end
  else delete_result_u t key

(* --- fault injection and saturation -------------------------------- *)

let set_fault_plan t plan =
  Array.iter (fun mm -> Memman.set_fault mm plan) t.mms

let fault_plan t = Memman.fault t.mms.(0)

let saturated_arenas t =
  Array.fold_left
    (fun acc mm -> acc + if Memman.is_saturated mm then 1 else 0)
    0 t.mms

(* Readers of memory-manager state take the owning arena's lock so a
   concurrent mutator (another thread, or a shard worker domain) can never
   expose them to a half-updated manager. *)
let with_arena_of_mm t mm_idx f = with_arena t mm_idx f

let memory_usage t =
  let total = ref 0 in
  Array.iteri
    (fun i mm ->
      total := !total + with_arena_of_mm t i (fun () -> Memman.total_bytes mm))
    t.mms;
  !total

let stats t =
  (* Tries share memory managers when arenas < 256, so the per-trie
     saturation bit from [Stats.collect] would overcount; recompute it from
     the managers themselves.  Each trie is walked under its arena lock:
     the walk parses live container bytes, so racing a mutator would read
     mid-splice garbage. *)
  let s = ref Stats.empty in
  Array.iteri
    (fun i trie ->
      s := with_arena t i (fun () -> Stats.add !s (Stats.collect trie)))
    t.tries;
  { !s with Stats.saturated_arenas = saturated_arenas t }

let superbin_profile t =
  let merged =
    Array.init 64 (fun _ ->
        {
          Memman.chunk_size = 0;
          allocated_chunks = 0;
          empty_chunks = 0;
          allocated_bytes = 0;
          empty_bytes = 0;
        })
  in
  Array.iteri
    (fun mm_i mm ->
      let p = with_arena_of_mm t mm_i (fun () -> Memman.superbin_profile mm) in
      Array.iteri
        (fun i s ->
          merged.(i) <-
            {
              Memman.chunk_size = s.Memman.chunk_size;
              allocated_chunks =
                merged.(i).Memman.allocated_chunks + s.Memman.allocated_chunks;
              empty_chunks =
                merged.(i).Memman.empty_chunks + s.Memman.empty_chunks;
              allocated_bytes =
                merged.(i).Memman.allocated_bytes + s.Memman.allocated_bytes;
              empty_bytes =
                merged.(i).Memman.empty_bytes + s.Memman.empty_bytes;
            })
        p)
    t.mms;
  merged

let allocated_chunks t =
  let total = ref 0 in
  Array.iteri
    (fun i mm ->
      total :=
        !total + with_arena_of_mm t i (fun () -> Memman.allocated_chunk_count mm))
    t.mms;
  !total

let internal_tries t = t.tries

let iter t f =
  range t (fun k v ->
      f k v;
      true)

let fold t ~init ~f =
  let acc = ref init in
  range t (fun k v ->
      acc := f !acc k v;
      true);
  !acc

let starts_with ~prefix k =
  String.length k >= String.length prefix
  && String.sub k 0 (String.length prefix) = prefix

let prefix_iter t ~prefix f =
  if prefix = "" then range t f
  else
    range t ~start:prefix (fun k v ->
        if starts_with ~prefix k then f k v else false)
