(** The typed error channel of the store.

    Every recoverable failure of a mutating operation is a value of {!t},
    surfaced through the [( _, t) result] API of {!Store} and {!Ops}.  The
    historical exception API is a thin wrapper: it raises {!Error} carrying
    the same value.  A mutation that returns an error leaves the container
    chain exactly as it was (put-side rollback); see DESIGN.md section 7. *)

type t =
  | Arena_saturated
      (** The arena's memory-manager pools are exhausted.  The arena
          degrades to read-only until chunks are freed. *)
  | Alloc_failed of string
      (** A single allocation request failed (today: only via injected
          faults; the payload names the requesting site). *)
  | Container_overflow
      (** A container would exceed the 19-bit size limit (paper §3.1). *)
  | Restart_budget_exceeded of int
      (** An operation restarted more than the given budget of times
          (ejections, bursts, splits, or an injected restart storm). *)
  | Chunk_corrupt of string
      (** A container chunk read back corrupt (today: only via injected
          faults). *)
  | Empty_key  (** Hyperion does not store the empty key. *)
  | Key_too_long of int  (** Key length exceeds 2^20 bytes. *)
  | Corrupt_snapshot of string
      (** A persisted snapshot failed structural validation (bad magic,
          CRC mismatch, short read, count mismatch, or a config
          fingerprint that does not match the opening configuration).
          The payload names the file and the failing check. *)
  | Torn_log of string
      (** A write-ahead log's header is unreadable — the file exists but
          was torn before its header was made durable.  Torn {e record}
          tails are not errors: they are truncated silently on open (see
          DESIGN.md section 8). *)
  | Version_mismatch of { found : int; expected : int }
      (** A persisted file carries a format version this build does not
          speak. *)
  | Io_error of string
      (** An operating-system I/O failure while reading or writing the
          durability directory (payload: the [Unix] error and path). *)
  | Degraded of string
      (** The durability handle is in sticky degraded read-only mode after
          a persistent storage failure: mutations are rejected (and leave
          the store unchanged), reads keep serving, and {!Persist.heal}
          re-arms writes.  The payload is the root-cause failure. *)
  | Overloaded of string
      (** A shard mailbox stayed full past the enqueue deadline — back
          off and retry; nothing was applied or logged. *)
  | Shard_down of string
      (** The owning shard's worker domain died on an unexpected
          exception (payload: that exception).  The mutation was not
          applied; the shard can be restarted from its persist
          directory ({!Hyperion_shard.restart_shard}). *)

exception Error of t
(** The exception-API wrapper around {!t}. *)

val fail : t -> 'a
(** [fail e] raises [Error e]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
