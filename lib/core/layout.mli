(** Container header and container jump-table codec (paper Figures 3
    and 11, Section 3.3).

    A top-level container is laid out as:
    {v
    [5-byte header][container jump table: J*7 entries x 4 bytes][records...][zeroed free tail]
    v}
    The first 4 header bytes pack (little-endian 32-bit word): size (19
    bits, total allocated bytes), free (8 bits, zeroed bytes at the end),
    J (3 bits, jump-table size in 7-entry steps), S (2 bits, split
    delay).  The fifth byte is the container's {e negative-lookup tag}:
    an 8-bit Bloom filter over the top-region T-node keys (bit
    [t_key mod 8] set for every present T-node), consulted by lookups
    before any scan so probe misses terminate early.  Header-word
    rewrites never touch the tag byte.

    A container jump-table entry is 4 bytes: the target T-node's key (u8)
    and its offset from the container base (u24 little-endian); offset 0
    marks an unused/invalidated entry.

    An embedded container has a 1-byte header holding its total size
    including the header itself. *)

val header_size : int
(** 5: the 4-byte packed word plus the tag byte. *)

val tag_pos : int
(** Offset of the tag byte within the header (4). *)

val read_tag : Bytes.t -> int -> int
(** The container's negative-lookup tag byte. *)

val write_tag : Bytes.t -> int -> int -> unit
(** Overwrite the tag byte (low 8 bits of the argument). *)

val max_container_size : int
(** 2^19 - 1, the largest encodable container size. *)

val read_size : Bytes.t -> int -> int
val read_free : Bytes.t -> int -> int
val read_jump_levels : Bytes.t -> int -> int
(** The J field (0..7); the jump table holds [7 * J] entries. *)

val read_split_delay : Bytes.t -> int -> int

val write_header :
  Bytes.t -> int -> size:int -> free:int -> jump_levels:int -> split_delay:int -> unit

val set_size : Bytes.t -> int -> int -> unit
val set_free : Bytes.t -> int -> int -> unit
val set_jump_levels : Bytes.t -> int -> int -> unit
val set_split_delay : Bytes.t -> int -> int -> unit

val jt_entry_size : int
(** 4. *)

val jt_count : Bytes.t -> int -> int
(** Number of jump-table entries ([7 * J]). *)

val jt_area_size : Bytes.t -> int -> int
(** Bytes occupied by the jump table. *)

val payload_start : Bytes.t -> int -> int
(** Offset (relative to the container base) of the first record: header
    plus jump-table area. *)

val content_end : Bytes.t -> int -> int
(** Offset (relative to the container base) one past the last record byte:
    [size - free]. *)

val jt_read : Bytes.t -> int -> int -> int * int
(** [jt_read buf base i] is entry [i] as [(key, offset)]; [offset] is
    relative to the container base, 0 when unused. *)

val jt_write : Bytes.t -> int -> int -> key:int -> off:int -> unit

val emb_header_size : int
(** 1. *)

val emb_total_size : Bytes.t -> int -> int
(** Total size of an embedded container whose header byte is at the given
    position (includes the header byte). *)

val set_emb_total_size : Bytes.t -> int -> int -> unit
