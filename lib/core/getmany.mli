(** Batched, memory-level-parallel point reads.

    [find_many] software-pipelines up to [width] concurrent descents:
    every in-flight operation advances one container per round-robin
    pass ({!Ops.probe_container}), and each operation's {i next}
    container is prefetched ({!Telemetry.prefetch}) as soon as its HP is
    known, so the descents overlap their cache misses instead of paying
    them back to back.  Per-container negative-lookup tags make probe
    misses terminate without scanning.

    Results are bit-identical to a sequential loop of {!Ops.find}: both
    paths share the per-container probe code and the batch runs on the
    calling domain (callers hold the same arena lock a sequential loop
    would). *)

val default_width : int
(** 32: enough in-flight descents to cover a memory stall without
    spilling cursor state out of cache. *)

val find_many :
  ?width:int -> Types.trie -> string array -> int64 option option array
(** [find_many t keys] is observably [Array.map (find t) keys] for the
    trie behind one arena: [None] absent, [Some None] key stored without
    a value, [Some (Some v)] key mapped to [v], positionally.

    Keys must already be validated (non-empty, within the length bound) —
    {!Store} front-ends do this; unlike {!Ops.find} no check is repeated
    here.  [width] below 1 is clamped to 1. *)
