(* Batched, memory-level-parallel point reads (tentpole of the probe
   path).  Each operation in a batch is a little state machine whose only
   state is "which container am I about to scan"; a round-robin loop
   advances every live operation by exactly one {!Ops.probe_container}
   step per pass.  When an operation exits a container through an HP
   child, the child's chunk is software-prefetched *before* the loop
   moves on to the other operations, so by the time the round-robin
   returns the line is (ideally) already in cache — the descents overlap
   their memory stalls instead of serializing them.

   Correctness: a probe step is the same code the sequential [Ops.find]
   runs, and the whole batch executes on the calling domain under the
   same arena lock a sequential loop would take, so results are
   bit-identical to [Array.map (Ops.find trie) keys] by construction. *)

open Types

let c_prefetch =
  Telemetry.Counter.make "hyperion_prefetch_issued_total"
    ~help:"Software prefetches issued by the batched read path"

let default_width = 32

(* Prefetch the chunk behind [hp]: the first header bytes of the
   container the probe will open next.  For a chained extended bin the
   relevant line is the slot [Ops.probe_container] will resolve for this
   key's T-key; resolution failures are swallowed — the probe itself
   will surface them, a prefetch must never change behaviour. *)
let prefetch trie hp ~tkey =
  Memman.prefetch trie.mm hp ~tkey;
  if Telemetry.enabled () then Telemetry.Counter.incr c_prefetch

let find_many ?(width = default_width) trie keys =
  let n = Array.length keys in
  let results = Array.make n None in
  if not (Hp.is_null trie.root) then begin
    let width = max 1 width in
    (* Cursor state lives in two unboxed int arrays hoisted out of the
       chunk loop: [hps.(i)] is the container operation [i] scans next
       ([Hp.t] is an int) and [levels.(i)] the level to scan it at, with
       -1 marking a finished operation. *)
    let hps = Array.make width trie.root in
    let levels = Array.make width 0 in
    let lo = ref 0 in
    while !lo < n do
      let w = min width (n - !lo) in
      for i = 0 to w - 1 do
        hps.(i) <- trie.root;
        levels.(i) <- 0
      done;
      let remaining = ref w in
      while !remaining > 0 do
        for i = 0 to w - 1 do
          let level = levels.(i) in
          if level >= 0 then begin
            let key = keys.(!lo + i) in
            match Ops.probe_container trie hps.(i) key level with
            | Ops.P_done r ->
                levels.(i) <- -1;
                results.(!lo + i) <- r;
                decr remaining
            | Ops.P_child (child, level') ->
                prefetch trie child ~tkey:(Char.code key.[level']);
                hps.(i) <- child;
                levels.(i) <- level'
          end
        done
      done;
      lo := !lo + w
    done
  end;
  results
