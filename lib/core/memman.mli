(** Hyperion's custom memory manager (paper Section 3.2).

    The manager acts as middleware between the trie and the system: small
    allocations (up to 2,016 bytes) are grouped by size class into large
    flat segments; larger allocations live on the heap behind extended bins.
    The hierarchy is 64 superbins -> up to 2^14 metabins -> 256 bins ->
    [chunks_per_bin] chunks (paper Figure 9); a chunk holds one trie
    container.  Superbin [i] (1..63) serves chunks of exactly [32*i] bytes;
    superbin 0 manages extended bins.

    Callers address chunks exclusively through 5-byte {!Hp.t} handles, which
    decouples the trie from virtual memory.  All chunk memory is zero
    on allocation (the trie's scan algorithm relies on zeroed tails to
    detect invalid nodes).

    This module is not thread-safe on its own; {!Arena} serializes access. *)

type t

val create : ?chunks_per_bin:int -> ?max_metabins:int -> unit -> t
(** [create ()] is an empty manager.  [chunks_per_bin] defaults to 4096 and
    must be a multiple of 64 in [64, 4096]; [max_metabins] defaults to 2^14
    (the HP field width) and bounds every superbin's growth — when a
    superbin would need more, allocation raises
    [Hyperion_error.Error Arena_saturated] and the manager enters the
    saturated state. *)

(** {1 Failure handling and fault injection}

    All allocating entry points ([alloc], [realloc], [ceb_alloc],
    [ceb_set_slot], [ceb_realloc_slot]) may raise
    [Hyperion_error.Error Arena_saturated] (pool exhaustion, real or
    injected, and runtime [Out_of_memory]) or
    [Hyperion_error.Error (Alloc_failed _)] (injected).  They never mutate
    manager state before such a failure, so a caller observing the error
    holds an unchanged heap.  Frees lift saturation. *)

val set_fault : t -> Fault.t -> unit
(** Install a fault-injection plan ({!Fault.none} disables injection). *)

val fault : t -> Fault.t
(** The currently installed plan. *)

val is_saturated : t -> bool
(** [true] while the manager is in the read-only saturated state: a pool
    was exhausted and nothing has been freed since. *)

val small_max : int
(** Largest request served by a small superbin: 2,016 bytes. *)

val size_class : int -> int
(** [size_class n] is the usable capacity a request of [n] bytes receives:
    the next multiple of 32 up to {!small_max}; beyond that the extended-bin
    rounding (256-byte steps up to 8 KiB, 1 KiB steps up to 16 KiB, 4 KiB
    steps above — the paper's growth-mitigation intervals). *)

(** {1 Plain allocations} *)

val alloc : t -> int -> Hp.t
(** [alloc t n] allocates a chunk with capacity [size_class n], zeroed. *)

val free : t -> Hp.t -> unit
(** Release a chunk (plain or chained; chained frees all slots). *)

val capacity : t -> Hp.t -> int
(** Usable bytes behind a plain HP. *)

val prefetch : t -> Hp.t -> tkey:int -> unit
(** [prefetch t hp ~tkey] issues a software prefetch for the first cache
    line of the chunk behind [hp] — for a chained extended bin, of the
    slot that would serve T-node key [tkey].  Allocation-free and
    side-effect-free; never raises (an HP in an unexpected shape hints
    nothing).  The batched read path calls this one hop ahead of each
    descent ({!Getmany}). *)

val resolve : t -> Hp.t -> Bytes.t * int
(** [resolve t hp] is the backing buffer and the chunk's byte offset within
    it.  The pair is invalidated by any [realloc]/[free] of the same HP. *)

val realloc : t -> Hp.t -> int -> Hp.t
(** [realloc t hp n] grows or shrinks the chunk to capacity [size_class n],
    preserving contents up to the smaller capacity and zeroing any new
    tail.  Returns the (possibly different) HP; extended bins keep their HP
    because only the heap pointer inside the eHP record changes. *)

(** {1 Chained extended bins (paper Figure 11)}

    A chained extended bin (CEB) owns eight consecutive extended-bin chunks
    behind a single HP; slot [i] holds the split container responsible for
    T-node keys [32*i .. 32*(i+1)-1].  Slots may be void. *)

val ceb_alloc : t -> Hp.t
(** Allocate a CEB with all eight slots void. *)

val is_chained : t -> Hp.t -> bool
(** [true] iff the HP designates a CEB head. *)

val ceb_set_slot : t -> Hp.t -> slot:int -> int -> unit
(** [ceb_set_slot t hp ~slot n] gives slot [slot] (0..7) a zeroed heap
    segment of capacity [size_class n].  The slot must be void. *)

val ceb_slot : t -> Hp.t -> slot:int -> (Bytes.t * int * int) option
(** [ceb_slot t hp ~slot] is [Some (buf, off, capacity)] when the slot is
    populated. *)

val ceb_realloc_slot : t -> Hp.t -> slot:int -> int -> unit
(** Resize a populated slot, preserving contents. *)

val ceb_clear_slot : t -> Hp.t -> slot:int -> unit
(** Return a populated slot to the void state. *)

val ceb_resolve_key : t -> Hp.t -> tkey:int -> int
(** [ceb_resolve_key t hp ~tkey] is the slot responsible for T-node key
    [tkey]: the first populated slot at or below [tkey / 32] (paper's
    downward scan).  @raise Invalid_argument if no such slot exists. *)

(** {1 Accounting} *)

type superbin_stats = {
  chunk_size : int;  (** bytes per chunk; 0 for superbin 0 *)
  allocated_chunks : int;
  empty_chunks : int;  (** initialized but free — external fragmentation *)
  allocated_bytes : int;
  empty_bytes : int;
}

val superbin_profile : t -> superbin_stats array
(** 64 entries; entry 0 covers extended bins (allocated bytes = heap
    segment capacities + 16 bytes per eHP chunk).  Drives Figures 14/16. *)

val total_bytes : t -> int
(** Resident bytes of the whole manager: initialized bin segments, metabin
    metadata (the paper's 133,416 bytes per full metabin, scaled to
    [chunks_per_bin]), superbin headers and extended-bin heap segments. *)

val allocated_chunk_count : t -> int
(** Number of currently allocated chunks (paper Fig. 14/16 totals). *)

(** {1 Heap-audit exports}

    Raw views of the allocator's bookkeeping, consumed by the
    [hyperion.analyze] heap sanitizer ({!Heapcheck}).  They perform no
    validation themselves; in particular the iterators re-read every
    occupancy bit ([b_used_recount]) instead of trusting the cached
    [Bitset] counter, so a sanitizer built on them can detect counter
    drift.  Like the rest of the module, these must be called under the
    owning arena's lock. *)

(** Classification of a chunk slot.  Small-superbin chunks are always
    [A_small] (occupancy is carried separately by [a_used]); extended-bin
    chunks report their eHP record state. *)
type audit_kind =
  | A_small
  | A_free
  | A_plain
  | A_chain_head
  | A_chain_member
  | A_reserved

type audit_chunk = {
  a_superbin : int;
  a_metabin : int;
  a_bin : int;
  a_chunk : int;
  a_used : bool;  (** occupancy bit from the bin's bitset *)
  a_kind : audit_kind;
  a_cap : int;  (** usable bytes: chunk size (small) or eHP capacity *)
  a_requested : int;  (** original request behind an eHP; 0 otherwise *)
  a_mem_len : int;  (** length of the eHP heap segment; 0 for small *)
}

type audit_bin = {
  b_superbin : int;
  b_metabin : int;
  b_bin : int;
  b_declared : bool;  (** bin id < the metabin's [initialized] count *)
  b_present : bool;  (** a bin payload actually exists at this slot *)
  b_no_room : bool;  (** the metabin's no-room bit for this bin *)
  b_used_cached : int;  (** the bitset's O(1) cached population *)
  b_used_recount : int;  (** bit-by-bit recount of the same bitset *)
}

type audit_metabin = {
  m_superbin : int;
  m_metabin : int;
  m_present : bool;  (** a metabin exists at this id < metabin_count *)
  m_initialized : int;
  m_no_room_set : int;  (** recounted population of the no-room bitset *)
  m_in_nonfull : bool;  (** listed in the superbin's nonfull list *)
}

val chunks_per_bin : t -> int
(** The [chunks_per_bin] this manager was created with. *)

val metabin_overhead_bytes : t -> int
(** Metadata bytes [total_bytes] charges per metabin. *)

val audit_metabin_count : t -> superbin:int -> int
(** Metabins ever created in the superbin (0 = extended bins). *)

val audit_nonfull : t -> superbin:int -> int list
(** The superbin's nonfull metabin-id list, verbatim. *)

val audit_iter_metabins : t -> (audit_metabin -> unit) -> unit
(** Visit every metabin id below each superbin's [metabin_count],
    including empty slots ([m_present = false]). *)

val audit_iter_bins : t -> (audit_bin -> unit) -> unit
(** Visit all 256 bin slots of every present metabin, including
    undeclared and absent ones. *)

val audit_iter_chunks : t -> (audit_chunk -> unit) -> unit
(** Visit every chunk slot of every present bin, used or free. *)
