(* Layout: output byte 0 = input byte 0; input bytes 1..3 form a 24-bit
   stream spread over output bytes 1..4, six bits per byte, shifted into
   the high bits so the two least significant bits of each are zero (the
   paper's choice, preserving delta-encoding efficiency and uniform
   partial-key distribution); input bytes 4.. are copied unchanged. *)

let encode key =
  let n = String.length key in
  if n < 4 then invalid_arg "Preprocess.encode: keys must be >= 4 bytes";
  let out = Bytes.create (n + 1) in
  Bytes.set out 0 key.[0];
  let stream =
    (Char.code key.[1] lsl 16) lor (Char.code key.[2] lsl 8) lor Char.code key.[3]
  in
  for i = 0 to 3 do
    let six = (stream lsr (18 - (6 * i))) land 0x3f in
    Bytes.set_uint8 out (1 + i) (six lsl 2)
  done;
  Bytes.blit_string key 4 out 5 (n - 4);
  (* SAFETY: [out] is freshly allocated, fully written, and never mutated
     or aliased after this conversion. *)
  Bytes.unsafe_to_string out

let decode key =
  let n = String.length key in
  if n < 5 then invalid_arg "Preprocess.decode: encoded keys are >= 5 bytes";
  let stream = ref 0 in
  for i = 1 to 4 do
    let b = Char.code key.[i] in
    if b land 0b11 <> 0 then
      invalid_arg "Preprocess.decode: low bits of bytes 2-5 must be zero";
    stream := (!stream lsl 6) lor (b lsr 2)
  done;
  let out = Bytes.create (n - 1) in
  Bytes.set out 0 key.[0];
  Bytes.set_uint8 out 1 ((!stream lsr 16) land 0xff);
  Bytes.set_uint8 out 2 ((!stream lsr 8) land 0xff);
  Bytes.set_uint8 out 3 (!stream land 0xff);
  Bytes.blit_string key 5 out 4 (n - 5);
  (* SAFETY: [out] is freshly allocated, fully written, and never mutated
     or aliased after this conversion. *)
  Bytes.unsafe_to_string out
