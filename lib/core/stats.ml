open Types

type t = {
  containers : int;
  split_containers : int;
  embedded_containers : int;
  pc_nodes : int;
  pc_suffix_bytes : int;
  t_nodes : int;
  s_nodes : int;
  delta_encoded : int;
  values : int;
  members_without_value : int;
  jump_successors : int;
  tnode_jump_tables : int;
  container_jt_entries : int;
  saturated_arenas : int;
}

let empty =
  {
    containers = 0;
    split_containers = 0;
    embedded_containers = 0;
    pc_nodes = 0;
    pc_suffix_bytes = 0;
    t_nodes = 0;
    s_nodes = 0;
    delta_encoded = 0;
    values = 0;
    members_without_value = 0;
    jump_successors = 0;
    tnode_jump_tables = 0;
    container_jt_entries = 0;
    saturated_arenas = 0;
  }

let add a b =
  {
    containers = a.containers + b.containers;
    split_containers = a.split_containers + b.split_containers;
    embedded_containers = a.embedded_containers + b.embedded_containers;
    pc_nodes = a.pc_nodes + b.pc_nodes;
    pc_suffix_bytes = a.pc_suffix_bytes + b.pc_suffix_bytes;
    t_nodes = a.t_nodes + b.t_nodes;
    s_nodes = a.s_nodes + b.s_nodes;
    delta_encoded = a.delta_encoded + b.delta_encoded;
    values = a.values + b.values;
    members_without_value = a.members_without_value + b.members_without_value;
    jump_successors = a.jump_successors + b.jump_successors;
    tnode_jump_tables = a.tnode_jump_tables + b.tnode_jump_tables;
    container_jt_entries = a.container_jt_entries + b.container_jt_entries;
    saturated_arenas = a.saturated_arenas + b.saturated_arenas;
  }

type acc = {
  mutable st : t;
}

let count_terminal acc flag =
  match Node.typ_of_flag flag with
  | Node.Leaf_value -> acc.st <- { acc.st with values = acc.st.values + 1 }
  | Node.Leaf_no_value ->
      acc.st <-
        { acc.st with members_without_value = acc.st.members_without_value + 1 }
  | Node.Inner | Node.Invalid -> ()

let rec walk_container trie acc hp =
  if Memman.is_chained trie.mm hp then begin
    acc.st <- { acc.st with split_containers = acc.st.split_containers + 1 };
    for slot = 0 to 7 do
      match Memman.ceb_slot trie.mm hp ~slot with
      | Some (buf, off, _) -> walk_top trie acc buf off
      | None -> ()
    done
  end
  else begin
    let buf, base = Memman.resolve trie.mm hp in
    walk_top trie acc buf base
  end

and walk_top trie acc buf base =
  acc.st <-
    {
      acc.st with
      containers = acc.st.containers + 1;
      container_jt_entries =
        acc.st.container_jt_entries + Layout.jt_count buf base;
    };
  let region = top_region buf base in
  walk_region trie acc buf region.rb region.re

and walk_region trie acc buf rb re =
  let pos = ref rb and prev = ref (-1) in
  while !pos < re do
    let t = Records.parse_t buf !pos ~prev_key:!prev in
    prev := t.Records.t_key;
    acc.st <-
      {
        acc.st with
        t_nodes = acc.st.t_nodes + 1;
        delta_encoded =
          (acc.st.delta_encoded
          + if Node.delta_of_flag t.Records.t_flag <> 0 then 1 else 0);
        jump_successors =
          (acc.st.jump_successors + if t.Records.t_js_pos >= 0 then 1 else 0);
        tnode_jump_tables =
          (acc.st.tnode_jump_tables + if t.Records.t_jt_pos >= 0 then 1 else 0);
      };
    count_terminal acc t.Records.t_flag;
    let limit = Records.next_t_pos buf t ~limit:re in
    let sp = ref t.Records.t_head_end and sprev = ref (-1) in
    while !sp < limit do
      let flag = Bytes.get_uint8 buf !sp in
      if flag = 0 || not (Node.is_snode flag) then sp := limit
      else begin
        let s = Records.parse_s buf !sp ~prev_key:!sprev in
        sprev := s.Records.s_key;
        acc.st <-
          {
            acc.st with
            s_nodes = acc.st.s_nodes + 1;
            delta_encoded =
              (acc.st.delta_encoded
              + if Node.delta_of_flag flag <> 0 then 1 else 0);
          };
        count_terminal acc flag;
        (match Node.child_of_flag flag with
        | Node.No_child -> ()
        | Node.Child_pc ->
            let pc = Records.parse_pc buf s.Records.s_head_end in
            acc.st <-
              {
                acc.st with
                pc_nodes = acc.st.pc_nodes + 1;
                pc_suffix_bytes =
                  acc.st.pc_suffix_bytes + pc.Records.pc_suffix_len;
                values =
                  (acc.st.values
                  + if pc.Records.pc_value_pos >= 0 then 1 else 0);
                members_without_value =
                  (acc.st.members_without_value
                  + if pc.Records.pc_value_pos < 0 then 1 else 0);
              }
        | Node.Child_embedded ->
            acc.st <-
              {
                acc.st with
                embedded_containers = acc.st.embedded_containers + 1;
              };
            let r = emb_region buf s.Records.s_head_end in
            walk_region trie acc buf r.rb r.re
        | Node.Child_hp ->
            walk_container trie acc (Hp.read buf s.Records.s_head_end));
        sp := s.Records.s_end
      end
    done;
    pos := limit
  done

let collect trie =
  let acc = { st = empty } in
  if not (Hp.is_null trie.root) then walk_container trie acc trie.root;
  {
    acc.st with
    saturated_arenas = (if Memman.is_saturated trie.mm then 1 else 0);
  }
