(* Per-container negative-lookup tag: an 8-bit Bloom filter over the
   top-region T-node keys, stored in the header's fifth byte
   (Layout.tag_pos).  A lookup consults the tag before scanning; a clear
   bit proves the probed key byte has no T-node in this container, so the
   miss terminates without touching any record.

   Soundness invariant: the stored tag is a superset of the computed
   one — every present T-key's bit is set, but stale bits (from deletes,
   or from an insert whose splice later rolled back) are allowed.  That
   makes maintenance cheap: inserts OR their bit in, deletes do nothing,
   and only container (re)construction recomputes from scratch. *)

let c_rejected =
  Telemetry.Counter.make "hyperion_tag_rejected_total"
    ~help:"Lookups short-circuited by a container's negative-lookup tag"

let bit t_key = 1 lsl (t_key land 7)
let may_contain tag t_key = tag land bit t_key <> 0

let note_rejected () =
  if Telemetry.enabled () then Telemetry.Counter.incr c_rejected

let add buf base t_key =
  Layout.write_tag buf base (Layout.read_tag buf base lor bit t_key)

(* The exact tag for the container at [base]: the outer T-record walk of
   its top region (same traversal as the validators). *)
let compute buf base =
  let re = base + Layout.content_end buf base in
  let pos = ref (base + Layout.payload_start buf base) in
  let prev = ref (-1) in
  let tag = ref 0 in
  while !pos < re do
    let t = Records.parse_t buf !pos ~prev_key:!prev in
    tag := !tag lor bit t.Records.t_key;
    prev := t.Records.t_key;
    pos := Records.next_t_pos buf t ~limit:re
  done;
  !tag

(* Containers are carved out of recycled chunk memory, so a fresh
   container's tag byte holds arbitrary stale bits until this runs; every
   construction site (new_container, write_slot) must call it. *)
let recompute buf base = Layout.write_tag buf base (compute buf base)
