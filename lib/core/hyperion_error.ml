type t =
  | Arena_saturated
  | Alloc_failed of string
  | Container_overflow
  | Restart_budget_exceeded of int
  | Chunk_corrupt of string
  | Empty_key
  | Key_too_long of int
  | Corrupt_snapshot of string
  | Torn_log of string
  | Version_mismatch of { found : int; expected : int }
  | Io_error of string
  | Degraded of string
  | Overloaded of string
  | Shard_down of string

exception Error of t

let fail e = raise (Error e)

let to_string = function
  | Arena_saturated -> "arena saturated: memory-manager pools exhausted"
  | Alloc_failed site -> Printf.sprintf "allocation failed (%s)" site
  | Container_overflow -> "container exceeds the 19-bit size limit"
  | Restart_budget_exceeded n ->
      Printf.sprintf "operation restart budget (%d) exceeded" n
  | Chunk_corrupt what -> Printf.sprintf "corrupt chunk: %s" what
  | Empty_key -> "empty keys are not supported"
  | Key_too_long n -> Printf.sprintf "key of %d bytes exceeds the 2^20 limit" n
  | Corrupt_snapshot what -> Printf.sprintf "corrupt snapshot: %s" what
  | Torn_log what -> Printf.sprintf "torn write-ahead log: %s" what
  | Version_mismatch { found; expected } ->
      Printf.sprintf "format version mismatch: file has v%d, this build speaks v%d"
        found expected
  | Io_error what -> Printf.sprintf "I/O error: %s" what
  | Degraded why ->
      Printf.sprintf
        "store is degraded (read-only) after a storage failure: %s" why
  | Overloaded what -> Printf.sprintf "shard overloaded: %s" what
  | Shard_down why -> Printf.sprintf "shard worker is down: %s" why

let pp fmt e = Format.pp_print_string fmt (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Hyperion_error.Error: " ^ to_string e)
    | _ -> None)
