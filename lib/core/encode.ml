open Types

let delta_for ~prev_key ~key =
  if prev_key >= 0 && key - prev_key >= 1 && key - prev_key <= 7 then
    key - prev_key
  else 0

let value_string v =
  let b = Bytes.create Node.value_size in
  Records.write_value b 0 v;
  (* SAFETY: [b] is freshly allocated, fully written, and never mutated or
     aliased after this conversion. *)
  Bytes.unsafe_to_string b

let check_typ_value typ value =
  match (typ, value) with
  | Node.Leaf_value, Some _ -> ()
  | (Node.Inner | Node.Leaf_no_value), None -> ()
  | _ -> invalid_arg "Encode: type / value mismatch"

let record ~flag ~delta ~key ~value =
  let b = Buffer.create 12 in
  Buffer.add_char b (Char.chr flag);
  if delta = 0 then Buffer.add_char b (Char.chr key);
  (match value with Some v -> Buffer.add_string b (value_string v) | None -> ());
  Buffer.contents b

let t_record ~prev_key ~key ~typ ~value =
  check_typ_value typ value;
  let delta = delta_for ~prev_key ~key in
  record ~flag:(Node.t_flag ~typ ~delta ~js:false ~jt:false) ~delta ~key ~value

let s_record ~prev_key ~key ~typ ~value ~child =
  check_typ_value typ value;
  let delta = delta_for ~prev_key ~key in
  record ~flag:(Node.s_flag ~typ ~delta ~child) ~delta ~key ~value

let pc_body suffix value =
  let len = String.length suffix in
  let header = Node.pc_header ~len ~has_value:(value <> None) in
  let b = Buffer.create (len + 9) in
  Buffer.add_char b (Char.chr header);
  (match value with Some v -> Buffer.add_string b (value_string v) | None -> ());
  Buffer.add_string b suffix;
  Buffer.contents b

let hp_body hp =
  let b = Bytes.create Hp.byte_size in
  Hp.write b 0 hp;
  (* SAFETY: [b] is freshly allocated, fully written, and never mutated or
     aliased after this conversion. *)
  Bytes.unsafe_to_string b

let head_frag_size flag = if Node.delta_of_flag flag = 0 then 2 else 1

let re_encode_head buf pos ~key ~new_prev =
  let flag = Bytes.get_uint8 buf pos in
  let old_delta = Node.delta_of_flag flag in
  let old_size = if old_delta = 0 then 2 else 1 in
  assert (old_delta = 0 || key >= old_delta);
  let delta = delta_for ~prev_key:new_prev ~key in
  let flag' = Node.with_delta flag delta in
  let frag =
    if delta = 0 then
      let b = Bytes.create 2 in
      Bytes.set_uint8 b 0 flag';
      Bytes.set_uint8 b 1 key;
      (* SAFETY: [b] is freshly allocated, fully written, and never mutated
         or aliased after this conversion. *)
      Bytes.unsafe_to_string b
    else String.make 1 (Char.chr flag')
  in
  (frag, String.length frag - old_size)

(* ---- child encodings for whole suffixes ---- *)

let emb_budget trie = min 255 trie.cfg.embedded_max

(* Child body for suffixes short enough that recursion depth stays small
   (embedding absorbs at most ~260 bytes before a real container is
   required, and each nesting level strips two key bytes).  [dry] computes
   the exact byte layout without allocating real containers (HP bodies are
   5 bytes regardless of their value), so callers can size an insertion
   before committing to it. *)
let rec make_child_short ~dry trie suffix value =
  let len = String.length suffix in
  if len <= trie.cfg.pc_max then (Node.Child_pc, pc_body suffix value)
  else begin
    let content = region_for_gen ~dry trie suffix value in
    if 1 + String.length content <= emb_budget trie then begin
      let b = Buffer.create (1 + String.length content) in
      Buffer.add_char b (Char.chr (1 + String.length content));
      Buffer.add_string b content;
      (Node.Child_embedded, Buffer.contents b)
    end
    else
      let hp = if dry then Hp.null else Splice.new_container trie content in
      (Node.Child_hp, hp_body hp)
  end

and region_for_gen ~dry trie suffix value =
  ignore trie.cfg.delta_encoding (* single-key regions never delta-encode *);
  let len = String.length suffix in
  if len = 0 then invalid_arg "Encode.region_for: empty suffix";
  let k0 = Char.code suffix.[0] in
  if len = 1 then
    let typ = match value with Some _ -> Node.Leaf_value | None -> Node.Leaf_no_value in
    t_record ~prev_key:(-1) ~key:k0 ~typ ~value
  else begin
    let k1 = Char.code suffix.[1] in
    let t = t_record ~prev_key:(-1) ~key:k0 ~typ:Node.Inner ~value:None in
    if len = 2 then
      let typ = match value with Some _ -> Node.Leaf_value | None -> Node.Leaf_no_value in
      t ^ s_record ~prev_key:(-1) ~key:k1 ~typ ~value ~child:Node.No_child
    else begin
      let kind, body =
        make_child_short ~dry trie (String.sub suffix 2 (len - 2)) value
      in
      t
      ^ s_record ~prev_key:(-1) ~key:k1 ~typ:Node.Inner ~value:None ~child:kind
      ^ body
    end
  end

(* Keys beyond this length are wrapped iteratively in real containers to
   bound recursion depth. *)
let long_threshold = 512

let region_for trie suffix value = region_for_gen ~dry:false trie suffix value

let make_child ?(dry = false) trie suffix value =
  let len = String.length suffix in
  if len = 0 then invalid_arg "Encode.make_child: empty suffix";
  if len <= long_threshold then make_child_short ~dry trie suffix value
  else begin
    (* Bottom-up: encode a short tail, then wrap pairs of key bytes in real
       containers front-to-back.  The tail start is even so every wrapper
       level consumes exactly one (T, S) pair. *)
    let tail_start =
      let ts = len - (long_threshold / 2) in
      if ts mod 2 = 0 then ts else ts + 1
    in
    let tail = String.sub suffix tail_start (len - tail_start) in
    let kind = ref Node.Child_hp and body = ref "" in
    let k, b = make_child_short ~dry trie tail value in
    kind := k;
    body := b;
    let i = ref (tail_start - 2) in
    while !i >= 0 do
      let t =
        t_record ~prev_key:(-1) ~key:(Char.code suffix.[!i]) ~typ:Node.Inner
          ~value:None
      in
      let s =
        s_record ~prev_key:(-1)
          ~key:(Char.code suffix.[!i + 1])
          ~typ:Node.Inner ~value:None ~child:!kind
      in
      let content = t ^ s ^ !body in
      if !i = 0 && 1 + String.length content <= emb_budget trie then begin
        kind := Node.Child_embedded;
        body := String.make 1 (Char.chr (1 + String.length content)) ^ content
      end
      else begin
        kind := Node.Child_hp;
        body := hp_body (if dry then Hp.null else Splice.new_container trie content)
      end;
      i := !i - 2
    done;
    (!kind, !body)
  end
