type t = {
  embedded_eject_parent_limit : int;
  embedded_max : int;
  pc_max : int;
  js_threshold : int;
  tnode_jt_threshold : int;
  container_jt_threshold : int;
  split_a : int;
  split_b : int;
  split_min_piece : int;
  chunks_per_bin : int;
  max_metabins : int;
  arenas : int;
  preprocess : bool;
  delta_encoding : bool;
  compress : int;
}

let default =
  {
    embedded_eject_parent_limit = 8 * 1024;
    embedded_max = 256;
    pc_max = 127;
    js_threshold = 2;
    tnode_jt_threshold = 16;
    container_jt_threshold = 8;
    split_a = 16 * 1024;
    split_b = 64 * 1024;
    split_min_piece = 3 * 1024;
    chunks_per_bin = 4096;
    max_metabins = 1 lsl 14;
    arenas = 1;
    preprocess = false;
    delta_encoding = true;
    compress = 0;
  }

let strings = { default with embedded_eject_parent_limit = 16 * 1024 }

(* FNV-1a over the field values in declaration order.  Explicit (rather
   than [Hashtbl.hash]) so the fingerprint is stable across OCaml versions
   and can be embedded in persisted snapshot headers. *)
let fingerprint c =
  let fnv_prime = 0x100000001b3L and basis = 0xcbf29ce484222325L in
  let mix acc n =
    let acc = Int64.logxor acc (Int64.of_int n) in
    Int64.mul acc fnv_prime
  in
  let fp =
    List.fold_left mix basis
      [
        c.embedded_eject_parent_limit;
        c.embedded_max;
        c.pc_max;
        c.js_threshold;
        c.tnode_jt_threshold;
        c.container_jt_threshold;
        c.split_a;
        c.split_b;
        c.split_min_piece;
        c.chunks_per_bin;
        c.max_metabins;
        c.arenas;
        (if c.preprocess then 1 else 0);
        (if c.delta_encoding then 1 else 0);
      ]
  in
  (* [compress] participates only when non-zero so every fingerprint
     persisted before the field existed (implicitly identity) is
     unchanged; mixing 0 through FNV-1a would not be the identity. *)
  if c.compress = 0 then fp else mix fp c.compress

let validate c =
  let check cond msg = if not cond then invalid_arg ("Config: " ^ msg) in
  check (c.embedded_max > 8 && c.embedded_max <= 256)
    "embedded_max must be in (8, 256]";
  check (c.pc_max >= 1 && c.pc_max <= 127) "pc_max must be in [1, 127]";
  check (c.embedded_eject_parent_limit >= 64)
    "embedded_eject_parent_limit must be >= 64";
  check (c.js_threshold >= 1) "js_threshold must be >= 1";
  check (c.tnode_jt_threshold >= 2) "tnode_jt_threshold must be >= 2";
  check
    (c.js_threshold <= c.tnode_jt_threshold)
    "js_threshold must not exceed tnode_jt_threshold (jump successors are \
     added before jump tables)";
  check (c.container_jt_threshold >= 1) "container_jt_threshold must be >= 1";
  check (c.split_a >= 256) "split_a must be >= 256";
  check (c.split_b >= 0) "split_b must be >= 0";
  check (c.split_min_piece >= 0) "split_min_piece must be >= 0";
  check (c.chunks_per_bin >= 64 && c.chunks_per_bin <= 4096)
    "chunks_per_bin must be in [64, 4096]";
  check (c.chunks_per_bin mod 64 = 0) "chunks_per_bin must be a multiple of 64";
  check
    (c.max_metabins >= 1 && c.max_metabins <= 1 lsl 14)
    "max_metabins must be in [1, 2^14]";
  check (c.arenas >= 1 && c.arenas <= 256) "arenas must be in [1, 256]";
  check (c.compress >= 0 && c.compress <= 1)
    "compress must be 0 (identity) or 1 (dict)"
