let small_max = 2016
let ceb_slots = 8
let bins_per_metabin = 256
let max_metabins = 1 lsl 14
let ehp_chunk_bytes = 16 (* paper: extended bins have a size of 16 bytes *)

let round_up n step = (n + step - 1) / step * step

let size_class n =
  if n <= 0 then invalid_arg "Memman.size_class: non-positive request"
  else if n <= small_max then round_up n 32
  else if n <= 8 * 1024 then round_up n 256
  else if n <= 16 * 1024 then round_up n 1024
  else round_up n 4096

(* ---- small superbins (1..63): flat segments of fixed-size chunks ---- *)

type sbin = { seg : Bytes.t; used : Bitset.t }

type 'bin metabin = {
  bins : 'bin option array;
  no_room : Bitset.t;
      (* bit set = bin is uninitialized or full; clear = has a free chunk *)
  mutable initialized : int;
}

type 'bin superbin = {
  mutable metabins : 'bin metabin option array;
  mutable metabin_count : int;
  mutable nonfull : int list; (* sorted metabin ids that can still allocate *)
}

(* ---- superbin 0: extended bins ---- *)

type ekind = Efree | Eplain | Echain_head | Echain_member | Ereserved

type ehp = {
  mutable mem : Bytes.t;
  mutable cap : int;
  mutable requested : int;
  mutable kind : ekind;
}

type ebin = { recs : ehp array; eused : Bitset.t }

type t = {
  cpb : int; (* chunks per bin *)
  max_metabins : int; (* per-superbin growth ceiling *)
  small : sbin superbin array; (* index 0 unused; 1..63 *)
  ext : ebin superbin;
  mutable fault : Fault.t; (* injectable fault plan; Fault.none = off *)
  mutable saturated : bool; (* sticky until a free returns memory *)
}

let new_superbin () = { metabins = Array.make 8 None; metabin_count = 0; nonfull = [] }

let create ?(chunks_per_bin = 4096) ?(max_metabins = max_metabins) () =
  if
    chunks_per_bin < 64 || chunks_per_bin > 4096
    || chunks_per_bin mod 64 <> 0
  then invalid_arg "Memman.create: chunks_per_bin must be a multiple of 64 in [64,4096]";
  if max_metabins < 1 || max_metabins > 1 lsl 14 then
    invalid_arg "Memman.create: max_metabins must be in [1, 2^14]";
  let t =
    {
      cpb = chunks_per_bin;
      max_metabins;
      small = Array.init 64 (fun _ -> new_superbin ());
      ext = new_superbin ();
      fault = Fault.none;
      saturated = false;
    }
  in
  t

let set_fault t plan = t.fault <- plan
let fault t = t.fault
let is_saturated t = t.saturated

(* Saturation is the graceful end state of a near-full arena: allocation
   reports a typed error instead of crashing, reads keep working, and any
   free lifts the state again. *)
let saturate t =
  t.saturated <- true;
  Hyperion_error.fail Hyperion_error.Arena_saturated

(* Consulted on every path that may create chunks or heap segments.  An
   injected [Superbin_exhausted] mimics pool exhaustion without the sticky
   flag, so chaos runs keep exercising the allocator afterwards. *)
let alloc_gate t site =
  if t.saturated then Hyperion_error.fail Hyperion_error.Arena_saturated;
  if Fault.check t.fault Fault.Alloc_fail then
    Hyperion_error.fail (Hyperion_error.Alloc_failed site);
  if Fault.check t.fault Fault.Superbin_exhausted then
    Hyperion_error.fail Hyperion_error.Arena_saturated

(* Real memory pressure from the runtime also degrades to saturation. *)
let guard_oom t f = try f () with Out_of_memory -> saturate t

(* Internal-invariant breaches surface as a typed [Chunk_corrupt] instead of
   [assert false]: callers with a typed-result API report them, and the
   chaos harness can tell a corrupted manager from a crashed process. *)
let corrupt fmt =
  Format.kasprintf
    (fun msg -> Hyperion_error.fail (Hyperion_error.Chunk_corrupt msg))
    ("Memman: " ^^ fmt)

let rec insert_sorted x = function
  | [] -> [ x ]
  | y :: tl as l ->
      if x < y then x :: l else if x = y then l else y :: insert_sorted x tl

let new_metabin () =
  let no_room = Bitset.create bins_per_metabin in
  for i = 0 to bins_per_metabin - 1 do
    Bitset.set no_room i
  done;
  { bins = Array.make bins_per_metabin None; no_room; initialized = 0 }

let grow_metabins sb mb_id =
  let len = Array.length sb.metabins in
  if mb_id >= len then begin
    let bigger = Array.make (max (2 * len) (mb_id + 1)) None in
    Array.blit sb.metabins 0 bigger 0 len;
    sb.metabins <- bigger
  end

(* Fetch (creating on demand) a metabin that can still allocate. *)
let nonfull_metabin t sb =
  match sb.nonfull with
  | mb_id :: _ -> (
      match sb.metabins.(mb_id) with
      | Some mb -> (mb_id, mb)
      | None -> corrupt "nonfull list names missing metabin %d" mb_id)
  | [] ->
      let mb_id = sb.metabin_count in
      if mb_id >= t.max_metabins then saturate t;
      grow_metabins sb mb_id;
      let mb = new_metabin () in
      sb.metabins.(mb_id) <- Some mb;
      sb.metabin_count <- mb_id + 1;
      sb.nonfull <- insert_sorted mb_id sb.nonfull;
      (mb_id, mb)

let metabin_can_allocate mb =
  mb.initialized < bins_per_metabin
  || Bitset.count_set mb.no_room < bins_per_metabin

let after_alloc_bookkeeping sb mb_id mb bin_id bin_full =
  if bin_full then Bitset.set mb.no_room bin_id;
  if not (metabin_can_allocate mb) then
    sb.nonfull <- List.filter (fun id -> id <> mb_id) sb.nonfull

let after_free_bookkeeping sb mb_id mb bin_id =
  Bitset.clear mb.no_room bin_id;
  sb.nonfull <- insert_sorted mb_id sb.nonfull

(* Pick a bin with a free chunk in [mb], initializing a fresh bin when all
   initialized ones are full.  [init] creates the bin payload. *)
let pick_bin mb ~init =
  match Bitset.find_clear mb.no_room with
  | Some bin_id -> (
      match mb.bins.(bin_id) with
      | Some bin -> (bin_id, bin)
      | None -> corrupt "no_room clear for uninitialized bin %d" bin_id)
  | None ->
      if mb.initialized >= bins_per_metabin then
        corrupt "metabin full but listed as nonfull";
      let bin_id = mb.initialized in
      let bin = init () in
      mb.bins.(bin_id) <- Some bin;
      mb.initialized <- mb.initialized + 1;
      Bitset.clear mb.no_room bin_id;
      (bin_id, bin)

(* ---- small-chunk paths ---- *)

let small_chunk_size sb_id = 32 * sb_id

let small_alloc t sb_id =
  let sb = t.small.(sb_id) in
  let chunk_size = small_chunk_size sb_id in
  let mb_id, mb = nonfull_metabin t sb in
  let init () =
    { seg = Bytes.make (t.cpb * chunk_size) '\000'; used = Bitset.create t.cpb }
  in
  let bin_id, bin = pick_bin mb ~init in
  let chunk =
    match Bitset.find_clear bin.used with
    | Some c -> c
    | None -> corrupt "metabin %d bin %d picked but has no free chunk" mb_id bin_id
  in
  Bitset.set bin.used chunk;
  Bytes.fill bin.seg (chunk * chunk_size) chunk_size '\000';
  after_alloc_bookkeeping sb mb_id mb bin_id
    (Bitset.count_set bin.used = t.cpb);
  Hp.make ~superbin:sb_id ~metabin:mb_id ~bin:bin_id ~chunk

let small_bin t hp =
  let sb = t.small.(Hp.superbin hp) in
  match sb.metabins.(Hp.metabin hp) with
  | Some mb -> (
      match mb.bins.(Hp.bin hp) with
      | Some bin -> bin
      | None -> invalid_arg "Memman: dangling HP (bin)")
  | None -> invalid_arg "Memman: dangling HP (metabin)"

let small_free t hp =
  let sb_id = Hp.superbin hp in
  let sb = t.small.(sb_id) in
  let bin = small_bin t hp in
  if not (Bitset.mem bin.used (Hp.chunk hp)) then
    invalid_arg "Memman.free: double free";
  t.saturated <- false;
  Bitset.clear bin.used (Hp.chunk hp);
  match sb.metabins.(Hp.metabin hp) with
  | Some mb -> after_free_bookkeeping sb (Hp.metabin hp) mb (Hp.bin hp)
  | None -> corrupt "free: metabin %d vanished mid-free" (Hp.metabin hp)

(* ---- extended-bin paths ---- *)

let fresh_ehp () = { mem = Bytes.empty; cap = 0; requested = 0; kind = Efree }

let ebin_init t () =
  let recs = Array.init t.cpb (fun _ -> fresh_ehp ()) in
  { recs; eused = Bitset.create t.cpb }

(* Reserve chunk (0,0,0,0) so that the null HP never denotes live memory. *)
let reserve_null bin mb_id bin_id chunk =
  if mb_id = 0 && bin_id = 0 && chunk = 0 then begin
    bin.recs.(0).kind <- Ereserved;
    Bitset.set bin.eused 0;
    true
  end
  else false

let ext_alloc t requested =
  let sb = t.ext in
  let cap = size_class requested in
  let rec attempt () =
    let mb_id, mb = nonfull_metabin t sb in
    let bin_id, bin = pick_bin mb ~init:(ebin_init t) in
    let chunk =
      match Bitset.find_clear bin.eused with
      | Some c -> c
      | None ->
          corrupt "ext metabin %d bin %d picked but has no free chunk" mb_id
            bin_id
    in
    if reserve_null bin mb_id bin_id chunk then begin
      after_alloc_bookkeeping sb mb_id mb bin_id
        (Bitset.count_set bin.eused = t.cpb);
      attempt ()
    end
    else begin
      let r = bin.recs.(chunk) in
      (* allocate before marking: an OOM here must leave the bin intact *)
      let mem = Bytes.make cap '\000' in
      Bitset.set bin.eused chunk;
      r.mem <- mem;
      r.cap <- cap;
      r.requested <- requested;
      r.kind <- Eplain;
      after_alloc_bookkeeping sb mb_id mb bin_id
        (Bitset.count_set bin.eused = t.cpb);
      Hp.make ~superbin:0 ~metabin:mb_id ~bin:bin_id ~chunk
    end
  in
  attempt ()

let ext_bin t hp =
  let sb = t.ext in
  match sb.metabins.(Hp.metabin hp) with
  | Some mb -> (
      match mb.bins.(Hp.bin hp) with
      | Some bin -> bin
      | None -> invalid_arg "Memman: dangling HP (ext bin)")
  | None -> invalid_arg "Memman: dangling HP (ext metabin)"

let ext_rec t hp =
  let bin = ext_bin t hp in
  bin.recs.(Hp.chunk hp)

let reset_ehp r =
  r.mem <- Bytes.empty;
  r.cap <- 0;
  r.requested <- 0;
  r.kind <- Efree

let ext_free_chunk t hp chunk =
  let sb = t.ext in
  let bin = ext_bin t hp in
  if not (Bitset.mem bin.eused chunk) then invalid_arg "Memman.free: double free";
  t.saturated <- false;
  reset_ehp bin.recs.(chunk);
  Bitset.clear bin.eused chunk;
  match sb.metabins.(Hp.metabin hp) with
  | Some mb -> after_free_bookkeeping sb (Hp.metabin hp) mb (Hp.bin hp)
  | None -> corrupt "ext free: metabin %d vanished mid-free" (Hp.metabin hp)

(* ---- public plain API ---- *)

let alloc t n =
  if n <= 0 then invalid_arg "Memman.alloc: non-positive size";
  alloc_gate t "alloc";
  guard_oom t (fun () ->
      if n <= small_max then small_alloc t ((n + 31) / 32) else ext_alloc t n)

let is_chained t hp =
  (not (Hp.is_null hp))
  && Hp.superbin hp = 0
  && (ext_rec t hp).kind = Echain_head

let free t hp =
  if Hp.is_null hp then invalid_arg "Memman.free: null HP";
  if Hp.superbin hp > 0 then small_free t hp
  else
    let r = ext_rec t hp in
    match r.kind with
    | Eplain -> ext_free_chunk t hp (Hp.chunk hp)
    | Echain_head ->
        let head = Hp.chunk hp in
        for i = 0 to ceb_slots - 1 do
          ext_free_chunk t hp (head + i)
        done
    | Efree | Ereserved -> invalid_arg "Memman.free: not allocated"
    | Echain_member -> invalid_arg "Memman.free: HP names a chained member"

let capacity t hp =
  if Hp.is_null hp then invalid_arg "Memman.capacity: null HP";
  if Hp.superbin hp > 0 then small_chunk_size (Hp.superbin hp)
  else
    let r = ext_rec t hp in
    match r.kind with
    | Eplain -> r.cap
    | _ -> invalid_arg "Memman.capacity: not a plain allocation"

let resolve t hp =
  if Hp.is_null hp then invalid_arg "Memman.resolve: null HP";
  let sb_id = Hp.superbin hp in
  if sb_id > 0 then
    let bin = small_bin t hp in
    (bin.seg, Hp.chunk hp * small_chunk_size sb_id)
  else
    let r = ext_rec t hp in
    match r.kind with
    | Eplain -> (r.mem, 0)
    | _ -> invalid_arg "Memman.resolve: not a plain allocation"

(* Best-effort cache-warming hint for the batched read path: locate the
   chunk (or, for a CEB, the slot that would serve [tkey]) and issue a
   software prefetch for its first cache line.  Allocation-free — the
   per-hop cost must stay far below the memory latency it hides — and
   never raises or changes state: an HP in any unexpected shape silently
   hints nothing, and the probe that follows surfaces any real error. *)
let prefetch t hp ~tkey =
  if not (Hp.is_null hp) then
    let sb_id = Hp.superbin hp in
    if sb_id > 0 then (
      match t.small.(sb_id).metabins.(Hp.metabin hp) with
      | Some mb -> (
          match mb.bins.(Hp.bin hp) with
          | Some bin ->
              Telemetry.prefetch bin.seg (Hp.chunk hp * small_chunk_size sb_id)
          | None -> ())
      | None -> ())
    else
      match t.ext.metabins.(Hp.metabin hp) with
      | Some mb -> (
          match mb.bins.(Hp.bin hp) with
          | Some bin -> (
              let head = Hp.chunk hp in
              let r = bin.recs.(head) in
              match r.kind with
              | Eplain -> Telemetry.prefetch r.mem 0
              | Echain_head ->
                  let rec scan slot =
                    if slot >= 0 then
                      let s = bin.recs.(head + slot) in
                      if s.cap > 0 then Telemetry.prefetch s.mem 0
                      else scan (slot - 1)
                  in
                  scan (min 7 (max 0 tkey / 32))
              | Efree | Ereserved | Echain_member -> ())
          | None -> ())
      | None -> ()

let realloc t hp n =
  let new_cap = size_class n in
  if Hp.is_null hp then invalid_arg "Memman.realloc: null HP";
  if Hp.superbin hp > 0 then begin
    let old_cap = small_chunk_size (Hp.superbin hp) in
    if new_cap = old_cap then hp
    else begin
      let old_bin = small_bin t hp in
      let old_off = Hp.chunk hp * old_cap in
      let fresh = alloc t n in
      let buf, off =
        if Hp.superbin fresh > 0 then
          let b = small_bin t fresh in
          (b.seg, Hp.chunk fresh * small_chunk_size (Hp.superbin fresh))
        else ((ext_rec t fresh).mem, 0)
      in
      Bytes.blit old_bin.seg old_off buf off (min old_cap new_cap);
      small_free t hp;
      fresh
    end
  end
  else begin
    let r = ext_rec t hp in
    match r.kind with
    | Eplain ->
        if new_cap = r.cap then begin
          r.requested <- n;
          hp
        end
        else if new_cap <= small_max then begin
          alloc_gate t "realloc";
          let fresh = guard_oom t (fun () -> small_alloc t ((n + 31) / 32)) in
          let bin = small_bin t fresh in
          let off = Hp.chunk fresh * small_chunk_size (Hp.superbin fresh) in
          Bytes.blit r.mem 0 bin.seg off (min r.cap new_cap);
          ext_free_chunk t hp (Hp.chunk hp);
          fresh
        end
        else begin
          alloc_gate t "realloc";
          let mem = guard_oom t (fun () -> Bytes.make new_cap '\000') in
          Bytes.blit r.mem 0 mem 0 (min r.cap new_cap);
          r.mem <- mem;
          r.cap <- new_cap;
          r.requested <- n;
          hp
        end
    | _ -> invalid_arg "Memman.realloc: not a plain allocation"
  end

(* ---- chained extended bins ---- *)

let ceb_alloc t =
  alloc_gate t "ceb_alloc";
  guard_oom t @@ fun () ->
  let sb = t.ext in
  (* Find a bin with a run of 8 consecutive free chunks, initializing a new
     bin when the nonfull ones are too fragmented. *)
  (* The reserved null chunk (0,0,0) is marked used as soon as its bin
     exists, so runs returned here never include it. *)
  let try_metabin mb_id mb =
    let rec try_bins bin_id =
      if bin_id >= mb.initialized then None
      else
        match mb.bins.(bin_id) with
        | None -> None
        | Some bin -> (
            match Bitset.find_clear_run bin.eused ceb_slots with
            | Some head -> Some (mb_id, mb, bin_id, bin, head)
            | None -> try_bins (bin_id + 1))
    in
    try_bins 0
  in
  let rec search ids =
    match ids with
    | mb_id :: rest -> (
        match sb.metabins.(mb_id) with
        | Some mb -> (
            match try_metabin mb_id mb with
            | Some found -> found
            | None -> search rest)
        | None -> search rest)
    | [] ->
        (* No existing bin has 8 consecutive free chunks: initialize a fresh
           bin in a metabin that still has room for one. *)
        let rec with_room ids =
          match ids with
          | mb_id :: rest -> (
              match sb.metabins.(mb_id) with
              | Some mb when mb.initialized < bins_per_metabin -> (mb_id, mb)
              | _ -> with_room rest)
          | [] ->
              let mb_id = sb.metabin_count in
              if mb_id >= t.max_metabins then saturate t;
              grow_metabins sb mb_id;
              let mb = new_metabin () in
              sb.metabins.(mb_id) <- Some mb;
              sb.metabin_count <- mb_id + 1;
              sb.nonfull <- insert_sorted mb_id sb.nonfull;
              (mb_id, mb)
        in
        let mb_id, mb = with_room sb.nonfull in
        let bin_id = mb.initialized in
        let bin = ebin_init t () in
        mb.bins.(bin_id) <- Some bin;
        mb.initialized <- bin_id + 1;
        Bitset.clear mb.no_room bin_id;
        ignore (reserve_null bin mb_id bin_id 0);
        (match Bitset.find_clear_run bin.eused ceb_slots with
        | Some head -> (mb_id, mb, bin_id, bin, head)
        | None ->
            (* a fresh bin has >= 63 free chunks *)
            corrupt "fresh ext bin %d.%d lacks an 8-chunk run" mb_id bin_id)
  in
  let mb_id, mb, bin_id, bin, head = search sb.nonfull in
  for i = 0 to ceb_slots - 1 do
    Bitset.set bin.eused (head + i);
    let r = bin.recs.(head + i) in
    reset_ehp r;
    r.kind <- (if i = 0 then Echain_head else Echain_member)
  done;
  after_alloc_bookkeeping sb mb_id mb bin_id
    (Bitset.count_set bin.eused = t.cpb);
  Hp.make ~superbin:0 ~metabin:mb_id ~bin:bin_id ~chunk:head

let ceb_record t hp ~slot =
  if slot < 0 || slot >= ceb_slots then invalid_arg "Memman: CEB slot out of range";
  let bin = ext_bin t hp in
  let head = Hp.chunk hp in
  if bin.recs.(head).kind <> Echain_head then
    invalid_arg "Memman: HP is not a chained extended bin";
  bin.recs.(head + slot)

let ceb_set_slot t hp ~slot n =
  let r = ceb_record t hp ~slot in
  if r.cap <> 0 then invalid_arg "Memman.ceb_set_slot: slot already populated";
  alloc_gate t "ceb_set_slot";
  let cap = size_class n in
  let mem = guard_oom t (fun () -> Bytes.make cap '\000') in
  r.mem <- mem;
  r.cap <- cap;
  r.requested <- n

let ceb_slot t hp ~slot =
  let r = ceb_record t hp ~slot in
  if r.cap = 0 then None else Some (r.mem, 0, r.cap)

let ceb_realloc_slot t hp ~slot n =
  let r = ceb_record t hp ~slot in
  if r.cap = 0 then invalid_arg "Memman.ceb_realloc_slot: void slot";
  let cap = size_class n in
  if cap <> r.cap then begin
    alloc_gate t "ceb_realloc_slot";
    let mem = guard_oom t (fun () -> Bytes.make cap '\000') in
    Bytes.blit r.mem 0 mem 0 (min r.cap cap);
    r.mem <- mem;
    r.cap <- cap
  end;
  r.requested <- n

let ceb_clear_slot t hp ~slot =
  let r = ceb_record t hp ~slot in
  if r.cap > 0 then t.saturated <- false;
  r.mem <- Bytes.empty;
  r.cap <- 0;
  r.requested <- 0

let ceb_resolve_key t hp ~tkey =
  if tkey < 0 || tkey > 255 then invalid_arg "Memman.ceb_resolve_key: bad key";
  let rec scan slot =
    if slot < 0 then
      invalid_arg "Memman.ceb_resolve_key: no populated slot at or below key"
    else
      let r = ceb_record t hp ~slot in
      if r.cap > 0 then slot else scan (slot - 1)
  in
  scan (tkey / 32)

(* ---- accounting ---- *)

type superbin_stats = {
  chunk_size : int;
  allocated_chunks : int;
  empty_chunks : int;
  allocated_bytes : int;
  empty_bytes : int;
}

let iter_bins sb f =
  for mb_id = 0 to sb.metabin_count - 1 do
    match sb.metabins.(mb_id) with
    | None -> ()
    | Some mb ->
        for bin_id = 0 to mb.initialized - 1 do
          match mb.bins.(bin_id) with None -> () | Some bin -> f bin
        done
  done

let superbin_profile t =
  Array.init 64 (fun sb_id ->
      if sb_id > 0 then begin
        let chunk_size = small_chunk_size sb_id in
        let allocated = ref 0 and empty = ref 0 in
        iter_bins t.small.(sb_id) (fun bin ->
            let used = Bitset.count_set bin.used in
            allocated := !allocated + used;
            empty := !empty + (t.cpb - used));
        {
          chunk_size;
          allocated_chunks = !allocated;
          empty_chunks = !empty;
          allocated_bytes = !allocated * chunk_size;
          empty_bytes = !empty * chunk_size;
        }
      end
      else begin
        let allocated = ref 0 and empty = ref 0 and bytes = ref 0 in
        iter_bins t.ext (fun bin ->
            Array.iteri
              (fun i r ->
                match r.kind with
                | Eplain | Echain_head | Echain_member ->
                    if Bitset.mem bin.eused i then begin
                      incr allocated;
                      bytes := !bytes + r.cap + ehp_chunk_bytes
                    end
                | Ereserved -> ()
                | Efree -> incr empty)
              bin.recs);
        {
          chunk_size = 0;
          allocated_chunks = !allocated;
          empty_chunks = !empty;
          allocated_bytes = !bytes;
          empty_bytes = !empty * ehp_chunk_bytes;
        }
      end)

let metabin_overhead cpb = (bins_per_metabin * ((cpb / 8) + 9)) + 40

let total_bytes t =
  let total = ref (64 * 64) (* superbin headers fit a cache line each *) in
  let mb_overhead = metabin_overhead t.cpb in
  for sb_id = 1 to 63 do
    let sb = t.small.(sb_id) in
    total := !total + (sb.metabin_count * mb_overhead);
    iter_bins sb (fun _ -> total := !total + (t.cpb * small_chunk_size sb_id))
  done;
  total := !total + (t.ext.metabin_count * mb_overhead);
  iter_bins t.ext (fun bin ->
      total := !total + (t.cpb * ehp_chunk_bytes);
      Array.iter (fun r -> total := !total + r.cap) bin.recs);
  !total

let allocated_chunk_count t =
  Array.fold_left
    (fun acc s -> acc + s.allocated_chunks)
    0 (superbin_profile t)

(* ---- heap-audit exports (consumed by hyperion.analyze) ----------------

   Raw, unvalidated views of the allocator's bookkeeping.  The iterators
   deliberately bypass the cached [Bitset.count_set] counters and the
   [iter_bins] initialized-prefix short-cut wherever the sanitizer needs to
   cross-check them: [b_used_recount] re-reads every bit, and bins/metabins
   are reported even when their bookkeeping claims they do not exist. *)

type audit_kind =
  | A_small
  | A_free
  | A_plain
  | A_chain_head
  | A_chain_member
  | A_reserved

type audit_chunk = {
  a_superbin : int;
  a_metabin : int;
  a_bin : int;
  a_chunk : int;
  a_used : bool;
  a_kind : audit_kind;
  a_cap : int;
  a_requested : int;
  a_mem_len : int;
}

type audit_bin = {
  b_superbin : int;
  b_metabin : int;
  b_bin : int;
  b_declared : bool;
  b_present : bool;
  b_no_room : bool;
  b_used_cached : int;
  b_used_recount : int;
}

type audit_metabin = {
  m_superbin : int;
  m_metabin : int;
  m_present : bool;
  m_initialized : int;
  m_no_room_set : int;
  m_in_nonfull : bool;
}

let chunks_per_bin t = t.cpb
let metabin_overhead_bytes t = metabin_overhead t.cpb

let audit_metabin_count t ~superbin =
  if superbin = 0 then t.ext.metabin_count
  else t.small.(superbin).metabin_count

let audit_nonfull t ~superbin =
  if superbin = 0 then t.ext.nonfull else t.small.(superbin).nonfull

let recount_bits bs =
  let n = ref 0 in
  for i = 0 to Bitset.length bs - 1 do
    if Bitset.mem bs i then incr n
  done;
  !n

let audit_iter_metabins_of sb_id sb f =
  for mb_id = 0 to sb.metabin_count - 1 do
    let m_in_nonfull = List.mem mb_id sb.nonfull in
    match sb.metabins.(mb_id) with
    | None ->
        f
          {
            m_superbin = sb_id;
            m_metabin = mb_id;
            m_present = false;
            m_initialized = 0;
            m_no_room_set = 0;
            m_in_nonfull;
          }
    | Some mb ->
        f
          {
            m_superbin = sb_id;
            m_metabin = mb_id;
            m_present = true;
            m_initialized = mb.initialized;
            m_no_room_set = recount_bits mb.no_room;
            m_in_nonfull;
          }
  done

let audit_iter_metabins t f =
  audit_iter_metabins_of 0 t.ext f;
  for sb_id = 1 to 63 do
    audit_iter_metabins_of sb_id t.small.(sb_id) f
  done

let audit_iter_bins_of ~used_of sb_id sb f =
  for mb_id = 0 to sb.metabin_count - 1 do
    match sb.metabins.(mb_id) with
    | None -> ()
    | Some mb ->
        for bin_id = 0 to bins_per_metabin - 1 do
          let b_declared = bin_id < mb.initialized in
          let b_present, b_used_cached, b_used_recount =
            match mb.bins.(bin_id) with
            | None -> (false, 0, 0)
            | Some bin ->
                let u = used_of bin in
                (true, Bitset.count_set u, recount_bits u)
          in
          f
            {
              b_superbin = sb_id;
              b_metabin = mb_id;
              b_bin = bin_id;
              b_declared;
              b_present;
              b_no_room = Bitset.mem mb.no_room bin_id;
              b_used_cached;
              b_used_recount;
            }
        done
  done

let audit_iter_bins t f =
  audit_iter_bins_of ~used_of:(fun b -> b.eused) 0 t.ext f;
  for sb_id = 1 to 63 do
    audit_iter_bins_of ~used_of:(fun b -> b.used) sb_id t.small.(sb_id) f
  done

let audit_iter_chunks t f =
  let ext = t.ext in
  for mb_id = 0 to ext.metabin_count - 1 do
    match ext.metabins.(mb_id) with
    | None -> ()
    | Some mb ->
        for bin_id = 0 to bins_per_metabin - 1 do
          match mb.bins.(bin_id) with
          | None -> ()
          | Some bin ->
              for c = 0 to t.cpb - 1 do
                let r = bin.recs.(c) in
                f
                  {
                    a_superbin = 0;
                    a_metabin = mb_id;
                    a_bin = bin_id;
                    a_chunk = c;
                    a_used = Bitset.mem bin.eused c;
                    a_kind =
                      (match r.kind with
                      | Efree -> A_free
                      | Eplain -> A_plain
                      | Echain_head -> A_chain_head
                      | Echain_member -> A_chain_member
                      | Ereserved -> A_reserved);
                    a_cap = r.cap;
                    a_requested = r.requested;
                    a_mem_len = Bytes.length r.mem;
                  }
              done
        done
  done;
  for sb_id = 1 to 63 do
    let sb = t.small.(sb_id) in
    let csize = small_chunk_size sb_id in
    for mb_id = 0 to sb.metabin_count - 1 do
      match sb.metabins.(mb_id) with
      | None -> ()
      | Some mb ->
          for bin_id = 0 to bins_per_metabin - 1 do
            match mb.bins.(bin_id) with
            | None -> ()
            | Some bin ->
                for c = 0 to t.cpb - 1 do
                  f
                    {
                      a_superbin = sb_id;
                      a_metabin = mb_id;
                      a_bin = bin_id;
                      a_chunk = c;
                      a_used = Bitset.mem bin.used c;
                      a_kind = A_small;
                      a_cap = csize;
                      a_requested = 0;
                      a_mem_len = 0;
                    }
                done
          done
    done
  done
