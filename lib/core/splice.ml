open Types

let round32 n = (n + 31) / 32 * 32

(* A CEB slot the memory manager itself routed us to must resolve; when it
   does not, the chunk metadata is corrupt (seen in practice when WAL replay
   feeds a damaged image).  Report where instead of [Assert_failure]. *)
let corrupt_slot what hp slot =
  Hyperion_error.fail
    (Hyperion_error.Chunk_corrupt
       (Format.asprintf "%s: CEB slot %d unresolvable in container %a" what
          slot Hp.pp hp))

let open_container trie hp ~tkey ~where =
  if Memman.is_chained trie.mm hp then begin
    let slot = Memman.ceb_resolve_key trie.mm hp ~tkey in
    match Memman.ceb_slot trie.mm hp ~slot with
    | Some (buf, off, _) -> { trie; hp; slot; where = W_slot; buf; base = off }
    | None -> corrupt_slot "open_container" hp slot
  end
  else
    let buf, base = Memman.resolve trie.mm hp in
    { trie; hp; slot = -1; where; buf; base }

let refresh cbox =
  if cbox.slot >= 0 then begin
    match Memman.ceb_slot cbox.trie.mm cbox.hp ~slot:cbox.slot with
    | Some (buf, off, _) ->
        cbox.buf <- buf;
        cbox.base <- off
    | None -> corrupt_slot "refresh" cbox.hp cbox.slot
  end
  else begin
    let buf, base = Memman.resolve cbox.trie.mm cbox.hp in
    cbox.buf <- buf;
    cbox.base <- base
  end

let new_container trie content =
  let len = String.length content in
  let size = max 32 (round32 (Layout.header_size + len)) in
  if size > Layout.max_container_size then
    Hyperion_error.fail Hyperion_error.Container_overflow;
  let hp = Memman.alloc trie.mm size in
  let buf, base = Memman.resolve trie.mm hp in
  Layout.write_header buf base ~size
    ~free:(size - Layout.header_size - len)
    ~jump_levels:0 ~split_delay:0;
  Bytes.blit_string content 0 buf (base + Layout.header_size) len;
  (* the recycled chunk's tag byte is stale garbage until this *)
  Tag.recompute buf base;
  hp

let container_size cbox = Layout.read_size cbox.buf cbox.base

(* Re-point the stored HP after a plain-container reallocation moved it. *)
let patch_where cbox new_hp =
  match cbox.where with
  | W_root -> cbox.trie.root <- new_hp
  | W_parent (pbuf, ppos) -> Hp.write pbuf ppos new_hp
  | W_slot ->
      (* slot reallocation keeps the CEB HP, so no patching is ever needed *)
      corrupt_slot "patch_where" cbox.hp cbox.slot

(* Resize the open container to [new_size] total bytes, preserving content
   (including the header, which the caller rewrites afterwards). *)
let resize cbox new_size =
  if new_size > Layout.max_container_size then
    Hyperion_error.fail Hyperion_error.Container_overflow;
  if cbox.slot >= 0 then
    Memman.ceb_realloc_slot cbox.trie.mm cbox.hp ~slot:cbox.slot new_size
  else begin
    let new_hp = Memman.realloc cbox.trie.mm cbox.hp new_size in
    if new_hp <> cbox.hp then begin
      patch_where cbox new_hp;
      cbox.hp <- new_hp
    end
  end;
  refresh cbox

(* Offset-patch rules for a splice replacing [remove] bytes at [at] with a
   fragment whose length differs by [n].  Positions are container-relative
   here. *)

let patch_js_target ~at ~remove ~n ~keep_at target =
  if target < at then target
  else if remove > 0 && target < at + remove then at
  else if target = at && remove = 0 then if keep_at then at else at + n
  else target + n

(* Jump-table targets name a specific record: entries pointing into a
   removed range are invalidated (offset 0), everything at or past the
   splice point shifts. *)
let patch_jt_target ~at ~remove ~n target =
  if target < at then Some target
  else if remove > 0 && target < at + remove then None
  else Some (target + n)

let adjust_record_offsets buf t_pos d =
  let t = Records.parse_t_known buf t_pos ~key:0 in
  if t.Records.t_js_pos >= 0 then
    Records.write_u16 buf t.Records.t_js_pos
      (Records.read_u16 buf t.Records.t_js_pos + d);
  if t.Records.t_jt_pos >= 0 then
    for i = 0 to Node.jt_entries - 1 do
      let key, off = Records.jt_entry buf t.Records.t_jt_pos i in
      if off <> 0 then
        Records.jt_set_entry buf t.Records.t_jt_pos i ~key ~off:(off + d)
    done

(* Patch every stored offset whose span crosses the splice point.  Runs on
   the pre-shift layout (after any reallocation, before the tail moves).

   A T-node's jump successor targets its immediate successor sibling and
   its jump-table entries target its own S-children, so only the last
   T-record starting before the splice point can hold a crossing offset —
   every earlier record's targets lie at or before that record's successor,
   which itself starts before the splice point.  The container jump table
   (patched first) lets us land near that record instead of walking the
   whole container. *)
let patch_offsets cbox ~at_rel ~remove ~n ~keep_at =
  let buf = cbox.buf and base = cbox.base in
  (* Container jump table: offsets are container-relative.  Also remember
     the best pre-patch entry at or before the splice point as a walk
     shortcut. *)
  let cnt = Layout.jt_count buf base in
  let start = ref (Layout.payload_start buf base) in
  for i = 0 to cnt - 1 do
    let key, off = Layout.jt_read buf base i in
    if off <> 0 then begin
      (* strictly before the splice point: the walk must reach the last
         T-record starting before [at_rel] *)
      if off < at_rel && off > !start then start := off;
      match patch_jt_target ~at:at_rel ~remove ~n off with
      | Some off' ->
          if off' <> off then Layout.jt_write buf base i ~key ~off:off'
      | None -> Layout.jt_write buf base i ~key ~off:0
    end
  done;
  (* Find the last T-record starting before the splice point. *)
  let content_end = Layout.content_end buf base in
  let limit_abs = base + min at_rel content_end in
  let region_end_abs = base + content_end in
  let pos = ref (base + !start) and last = ref (-1) in
  while !pos < limit_abs do
    let t = Records.parse_t_known buf !pos ~key:0 in
    last := !pos;
    pos := Records.next_t_pos buf t ~limit:region_end_abs
  done;
  if !last >= 0 then begin
    let t = Records.parse_t_known buf !last ~key:0 in
    if t.Records.t_js_pos >= 0 then begin
      let off = Records.read_u16 buf t.Records.t_js_pos in
      let target_rel = t.Records.t_pos - base + off in
      let target_rel' =
        patch_js_target ~at:at_rel ~remove ~n ~keep_at target_rel
      in
      if target_rel' <> target_rel then
        Records.write_u16 buf t.Records.t_js_pos
          (target_rel' - (t.Records.t_pos - base))
    end;
    if t.Records.t_jt_pos >= 0 then
      for i = 0 to Node.jt_entries - 1 do
        let key, off = Records.jt_entry buf t.Records.t_jt_pos i in
        if off <> 0 then begin
          let target_rel = t.Records.t_pos - base + off in
          match patch_jt_target ~at:at_rel ~remove ~n target_rel with
          | Some tr when tr <> target_rel ->
              Records.jt_set_entry buf t.Records.t_jt_pos i ~key
                ~off:(tr - (t.Records.t_pos - base))
          | Some _ -> ()
          | None -> Records.jt_set_entry buf t.Records.t_jt_pos i ~key ~off:0
        end
      done
  end

let splice cbox ~emb_chain ~at ~remove ~ins ~keep_at =
  let ins_len = String.length ins in
  let n = ins_len - remove in
  let at_rel = at - cbox.base in
  let emb_rel = List.map (fun (_, e) -> e - cbox.base) emb_chain in
  let size = Layout.read_size cbox.buf cbox.base in
  let content = Layout.content_end cbox.buf cbox.base in
  assert (at_rel >= Layout.payload_start cbox.buf cbox.base || remove = 0);
  assert (at_rel + remove <= content);
  let new_content = content + n in
  (* Grow first so the shift happens in the final buffer. *)
  if n > 0 && size - content < n then begin
    let grown = round32 new_content in
    resize cbox grown;
    Layout.set_size cbox.buf cbox.base grown
  end;
  patch_offsets cbox ~at_rel ~remove ~n ~keep_at;
  let buf = cbox.buf and base = cbox.base in
  if n <> 0 then
    Bytes.blit buf (base + at_rel + remove) buf
      (base + at_rel + ins_len)
      (content - at_rel - remove);
  Bytes.blit_string ins 0 buf (base + at_rel) ins_len;
  if n < 0 then
    Bytes.fill buf (base + new_content) (content - new_content) '\000';
  (* Enclosing embedded containers grow/shrink with their contents. *)
  List.iter
    (fun e_rel ->
      let pos = base + e_rel in
      Layout.set_emb_total_size buf pos (Layout.emb_total_size buf pos + n))
    emb_rel;
  (* Header: keep the free tail small; shrink when deletions accumulate. *)
  let cur_size = Layout.read_size buf base in
  let free = cur_size - new_content in
  assert (free >= 0);
  if free > 255 then begin
    let shrunk = round32 new_content in
    (* The shrink may need a fresh smaller chunk.  If the allocator cannot
       provide one (saturation, injected fault), shrink *logically* only:
       the size field drops to [shrunk] inside the oversized chunk (the
       vacated tail is already zeroed), so the container stays consistent
       and the free field stays in its 8-bit range.  No state is lost. *)
    (try resize cbox shrunk with Hyperion_error.Error _ -> ());
    let buf = cbox.buf and base = cbox.base in
    Layout.write_header buf base ~size:shrunk ~free:(shrunk - new_content)
      ~jump_levels:(Layout.read_jump_levels buf base)
      ~split_delay:(Layout.read_split_delay buf base)
  end
  else begin
    Layout.write_header buf base ~size:cur_size ~free
      ~jump_levels:(Layout.read_jump_levels buf base)
      ~split_delay:(Layout.read_split_delay buf base)
  end
