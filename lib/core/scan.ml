open Types

(* Jump-table effectiveness: a "hit" is a consultation that let the scan
   start from a jump target, a "miss" one where a table was present but
   yielded no usable entry, so the scan fell back to the region head.
   Scans with no table to consult (the overwhelmingly common case on
   small nodes) are not counted — they are not consultations, and the
   hit ratio would be meaningless (and the instrumentation cost ~3x
   higher) if they were.  Both container-level (paper Fig. 9) and
   T-node-level tables feed the same family. *)
let c_jt_hit =
  Telemetry.Counter.make "hyperion_jump_table_total"
    ~labels:[ ("result", "hit") ]
    ~help:"Jump-table consultations by outcome"

let c_jt_miss =
  Telemetry.Counter.make "hyperion_jump_table_total"
    ~labels:[ ("result", "miss") ]

(* Innermost-loop instrumentation (~14 firings per put on a 300k-key
   store): the fused mark+incr keeps it to one core lookup per firing. *)
let note_jt hit =
  if hit then Telemetry.mark_incr Telemetry.Path.jt_hit c_jt_hit
  else Telemetry.mark_incr Telemetry.Path.jt_miss c_jt_miss

type t_result =
  | T_found of Records.tnode * int
  | T_insert of {
      t_at : int;
      t_prev_key : int;
      t_succ : Records.tnode option;
    }

type s_result =
  | S_found of Records.snode * int
  | S_insert of {
      s_at : int;
      s_prev_key : int;
      s_succ : Records.snode option;
    }

(* Best container-jump-table entry for [k0]: the populated entry with the
   largest key <= k0 (paper: linear scan of the entries). *)
let cjt_start cbox region k0 =
  if not region.top then None
  else begin
    let buf = cbox.buf and base = cbox.base in
    let cnt = Layout.jt_count buf base in
    let best = ref None in
    for i = 0 to cnt - 1 do
      let key, off = Layout.jt_read buf base i in
      if off <> 0 && key <= k0 then
        match !best with
        | Some (bk, _) when bk >= key -> ()
        | _ -> best := Some (key, base + off)
    done;
    !best
  end

let find_t ?(use_jumps = true) cbox region k0 ~traversed =
  let buf = cbox.buf in
  let start_pos, start_key =
    if not use_jumps || not region.top then (region.rb, -1)
    else
      match cjt_start cbox region k0 with
      | Some (key, pos) when pos < region.re ->
          note_jt true;
          (pos, key)
      | _ ->
          note_jt false;
          (region.rb, -1)
  in
  (* [prev] is the predecessor sibling's key; after a jump the jump target's
     own predecessor is unknown and reported as -1. *)
  let rec go pos prev known =
    if pos >= region.re then
      T_insert { t_at = region.re; t_prev_key = prev; t_succ = None }
    else begin
      let t =
        match known with
        | Some key -> Records.parse_t_known buf pos ~key
        | None -> Records.parse_t buf pos ~prev_key:prev
      in
      incr traversed;
      if t.Records.t_key = k0 then T_found (t, prev)
      else if t.Records.t_key > k0 then
        T_insert { t_at = pos; t_prev_key = prev; t_succ = Some t }
      else
        go (Records.next_t_pos buf t ~limit:region.re) t.Records.t_key None
    end
  in
  go start_pos (-1) (if start_key >= 0 then Some start_key else None)

let t_children_end cbox region t =
  Records.next_t_pos cbox.buf t ~limit:region.re

(* Best T-node jump-table entry for [k1]. *)
let tjt_start cbox t k1 =
  if t.Records.t_jt_pos < 0 then None
  else begin
    let buf = cbox.buf in
    let best = ref None in
    for i = 0 to Node.jt_entries - 1 do
      let key, off = Records.jt_entry buf t.Records.t_jt_pos i in
      if off <> 0 && key <= k1 then
        match !best with
        | Some (bk, _) when bk >= key -> ()
        | _ -> best := Some (key, t.Records.t_pos + off)
    done;
    !best
  end

let find_s ?(use_jumps = true) ?(scanned = ref 0) cbox region t k1 =
  let buf = cbox.buf in
  let s_end = t_children_end cbox region t in
  let start_pos, start_key =
    if not use_jumps || t.Records.t_jt_pos < 0 then (t.Records.t_head_end, -1)
    else
      match tjt_start cbox t k1 with
      | Some (key, pos) when pos < s_end ->
          note_jt true;
          (pos, key)
      | _ ->
          note_jt false;
          (t.Records.t_head_end, -1)
  in
  let rec go pos prev known =
    incr scanned;
    if pos >= s_end then
      S_insert { s_at = s_end; s_prev_key = prev; s_succ = None }
    else begin
      let flag = Bytes.get_uint8 buf pos in
      if flag = 0 || not (Node.is_snode flag) then
        S_insert { s_at = pos; s_prev_key = prev; s_succ = None }
      else
        let s =
          match known with
          | Some key -> Records.parse_s_known buf pos ~key
          | None -> Records.parse_s buf pos ~prev_key:prev
        in
        if s.Records.s_key = k1 then S_found (s, prev)
        else if s.Records.s_key > k1 then
          S_insert { s_at = pos; s_prev_key = prev; s_succ = Some s }
        else go s.Records.s_end s.Records.s_key None
    end
  in
  go start_pos (-1) (if start_key >= 0 then Some start_key else None)

let count_s_children ?(cap = max_int) cbox region t =
  let buf = cbox.buf in
  let s_end = t_children_end cbox region t in
  let rec go pos acc =
    if acc >= cap || pos >= s_end then acc
    else begin
      let flag = Bytes.get_uint8 buf pos in
      if flag = 0 || not (Node.is_snode flag) then acc
      else go (pos + Records.s_record_size buf pos) (acc + 1)
    end
  in
  go t.Records.t_head_end 0
