open Types

let max_key_len = 1 lsl 20

let create cfg =
  Config.validate cfg;
  {
    cfg;
    mm =
      Memman.create ~chunks_per_bin:cfg.chunks_per_bin
        ~max_metabins:cfg.max_metabins ();
    root = Hp.null;
  }

let kb key i = Char.code key.[i]
let typ_for = function Some _ -> Node.Leaf_value | None -> Node.Leaf_no_value

let check_key key =
  let len = String.length key in
  if len = 0 then invalid_arg "Hyperion: empty keys are not supported";
  if len > max_key_len then invalid_arg "Hyperion: key longer than 2^20 bytes"

(* Does the PC node's suffix equal key[from..]? *)
let pc_matches buf pc key from =
  let rest = String.length key - from in
  pc.Records.pc_suffix_len = rest
  &&
  let rec eq i =
    i = rest
    || Bytes.get buf (pc.Records.pc_suffix_pos + i) = key.[from + i] && eq (i + 1)
  in
  eq 0

let terminal_of_flag buf flag value_pos =
  match Node.typ_of_flag flag with
  | Node.Inner -> None
  | Node.Leaf_no_value -> Some None
  | Node.Leaf_value -> Some (Some (Records.read_value buf value_pos))
  | Node.Invalid ->
      Hyperion_error.fail
        (Hyperion_error.Chunk_corrupt
           "terminal_of_flag: invalid node type bits in live record")

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)
(* ------------------------------------------------------------------ *)

(* One container's worth of descent, shared verbatim by the sequential
   [find] and the batched memory-level-parallel path ({!Getmany}): both
   run exactly this code per container, so batched results are
   bit-identical to sequential ones by construction. *)
type container_probe =
  | P_done of int64 option option
  | P_child of Hp.t * int

let rec probe_region cbox region key level =
  let len = String.length key in
  let traversed = ref 0 in
  match Scan.find_t cbox region (kb key level) ~traversed with
  | Scan.T_insert _ -> P_done None
  | Scan.T_found (t, _) -> (
      if level = len - 1 then
        P_done (terminal_of_flag cbox.buf t.Records.t_flag t.Records.t_value_pos)
      else
        match Scan.find_s cbox region t (kb key (level + 1)) with
        | Scan.S_insert _ -> P_done None
        | Scan.S_found (s, _) -> (
            if level + 2 = len then
              P_done
                (terminal_of_flag cbox.buf s.Records.s_flag
                   s.Records.s_value_pos)
            else
              match Node.child_of_flag s.Records.s_flag with
              | Node.No_child -> P_done None
              | Node.Child_pc ->
                  let pc = Records.parse_pc cbox.buf s.Records.s_head_end in
                  P_done
                    (if pc_matches cbox.buf pc key (level + 2) then
                       if pc.Records.pc_value_pos >= 0 then
                         Some
                           (Some
                              (Records.read_value cbox.buf
                                 pc.Records.pc_value_pos))
                       else Some None
                     else None)
              | Node.Child_embedded ->
                  probe_region cbox
                    (emb_region cbox.buf s.Records.s_head_end)
                    key (level + 2)
              | Node.Child_hp ->
                  P_child (Hp.read cbox.buf s.Records.s_head_end, level + 2)))

let probe_container trie hp key level =
  let cbox = Splice.open_container trie hp ~tkey:(kb key level) ~where:W_slot in
  if not (Tag.may_contain (Layout.read_tag cbox.buf cbox.base) (kb key level))
  then begin
    Tag.note_rejected ();
    P_done None
  end
  else probe_region cbox (top_region cbox.buf cbox.base) key level

let rec lookup_container trie hp key level =
  match probe_container trie hp key level with
  | P_done r -> r
  | P_child (child, level') -> lookup_container trie child key level'

let find trie key =
  check_key key;
  if Hp.is_null trie.root then None else lookup_container trie trie.root key 0

(* ------------------------------------------------------------------ *)
(* Embedded-container ejection (paper Fig. 8)                          *)
(* ------------------------------------------------------------------ *)

let emb_budget trie = min 255 trie.cfg.embedded_max

(* Turn the embedded container at [e_pos] (owned by the S-node at [s_pos])
   into a real container referenced by an HP; [enclosing] are the embedded
   containers around it, outermost first. *)
let c_eject =
  Telemetry.Counter.make "hyperion_embedded_eject_total"
    ~help:"Embedded containers ejected to real containers (paper Fig. 8)"

let c_split =
  Telemetry.Counter.make "hyperion_container_split_total"
    ~help:"Vertical container splits performed (paper Fig. 11)"

let eject trie cbox enclosing s_pos e_pos =
  Telemetry.mark Telemetry.Path.embedded_eject;
  if Telemetry.enabled () then Telemetry.Counter.incr c_eject;
  let buf = cbox.buf in
  let size = Layout.emb_total_size buf e_pos in
  let content = Bytes.sub_string buf (e_pos + 1) (size - 1) in
  let hp = Splice.new_container trie content in
  let s_rel = s_pos - cbox.base in
  (* A splice failure aborts before mutating the parent; reclaim the
     freshly ejected container so the failed put leaves no trace. *)
  (try
     Splice.splice cbox ~emb_chain:enclosing ~at:e_pos ~remove:size
       ~ins:(Encode.hp_body hp) ~keep_at:false
   with e ->
     Memman.free trie.mm hp;
     raise e);
  let p = cbox.base + s_rel in
  Bytes.set_uint8 cbox.buf p
    (Node.with_child (Bytes.get_uint8 cbox.buf p) Node.Child_hp)

(* Before growing by [growth] bytes inside [emb_chain]: eject the outermost
   embedded container that would overflow its size budget, then restart. *)
let guard_emb trie cbox emb_chain growth =
  if growth > 0 then begin
    let budget = emb_budget trie in
    let rec check prefix = function
      | [] -> ()
      | (s_pos, e_pos) :: rest ->
          if Layout.emb_total_size cbox.buf e_pos + growth > budget then begin
            eject trie cbox (List.rev prefix) s_pos e_pos;
            raise Restart
          end
          else check ((s_pos, e_pos) :: prefix) rest
    in
    check [] emb_chain
  end

(* ------------------------------------------------------------------ *)
(* Jump-successor and jump-table maintenance (paper Section 3.3)       *)
(* ------------------------------------------------------------------ *)

(* End of the T-node's S-children found by walking record sizes (never via
   the — possibly not yet valid — jump successor). *)
let walk_children_end buf head_end limit =
  let pos = ref head_end in
  let continue = ref true in
  while !continue do
    if !pos >= limit then continue := false
    else
      let flag = Bytes.get_uint8 buf !pos in
      if flag = 0 || not (Node.is_snode flag) then continue := false
      else pos := !pos + Records.s_record_size buf !pos
  done;
  !pos

let add_js cbox t =
  let t_rel = t.Records.t_pos - cbox.base in
  let at = t.Records.t_pos + Encode.head_frag_size t.Records.t_flag in
  Splice.splice cbox ~emb_chain:[] ~at ~remove:0 ~ins:"\000\000" ~keep_at:false;
  let buf = cbox.buf in
  let p = cbox.base + t_rel in
  Bytes.set_uint8 buf p (Node.with_js (Bytes.get_uint8 buf p) true);
  let region = top_region buf cbox.base in
  let t' = Records.parse_t_known buf p ~key:t.Records.t_key in
  let e = walk_children_end buf t'.Records.t_head_end region.re in
  Records.write_u16 buf t'.Records.t_js_pos (e - p)

let collect_children buf t limit =
  let out = ref [] in
  let pos = ref t.Records.t_head_end and prev = ref (-1) in
  let continue = ref true in
  while !continue do
    if !pos >= limit then continue := false
    else
      let flag = Bytes.get_uint8 buf !pos in
      if flag = 0 || not (Node.is_snode flag) then continue := false
      else begin
        let s = Records.parse_s buf !pos ~prev_key:!prev in
        out := (s.Records.s_key, s.Records.s_pos) :: !out;
        prev := s.Records.s_key;
        pos := s.Records.s_end
      end
  done;
  Array.of_list (List.rev !out)

(* Fill the 15 jump-table entries with (up to 15) evenly spaced children. *)
let refill_tjt cbox t =
  let buf = cbox.buf in
  let region = top_region buf cbox.base in
  let limit = Scan.t_children_end cbox region t in
  let children = collect_children buf t limit in
  let n = Array.length children in
  for i = 0 to Node.jt_entries - 1 do
    if n = 0 then Records.jt_set_entry buf t.Records.t_jt_pos i ~key:0 ~off:0
    else begin
      let idx = if n <= Node.jt_entries then i else (i + 1) * n / 16 in
      if idx < n then begin
        let key, pos = children.(idx) in
        Records.jt_set_entry buf t.Records.t_jt_pos i ~key
          ~off:(pos - t.Records.t_pos)
      end
      else Records.jt_set_entry buf t.Records.t_jt_pos i ~key:0 ~off:0
    end
  done

let add_tjt cbox t =
  assert (t.Records.t_js_pos >= 0);
  let t_rel = t.Records.t_pos - cbox.base in
  let at = t.Records.t_js_pos + Node.js_size in
  Splice.splice cbox ~emb_chain:[] ~at ~remove:0
    ~ins:(String.make Node.jt_size '\000')
    ~keep_at:false;
  let buf = cbox.buf in
  let p = cbox.base + t_rel in
  Bytes.set_uint8 buf p (Node.with_jt (Bytes.get_uint8 buf p) true);
  let t' = Records.parse_t_known buf p ~key:t.Records.t_key in
  refill_tjt cbox t'

(* Bring the T-node for [k0] up to date after an insert below it.  All
   checks are capped or demand-driven so a put never pays a full child
   walk: the jump table is refilled only when [stale] reports that the
   last scan had to walk far past its best entry. *)
let rec maintain_t trie cbox k0 ~stale rounds =
  if rounds < 4 then begin
    let region = top_region cbox.buf cbox.base in
    let traversed = ref 0 in
    match Scan.find_t cbox region k0 ~traversed with
    | Scan.T_insert _ -> ()
    | Scan.T_found (t, _) ->
        let cap = trie.cfg.tnode_jt_threshold + 1 in
        let n = Scan.count_s_children ~cap cbox region t in
        if t.Records.t_js_pos < 0 && n >= trie.cfg.js_threshold then begin
          add_js cbox t;
          maintain_t trie cbox k0 ~stale (rounds + 1)
        end
        else if t.Records.t_jt_pos < 0 && n >= trie.cfg.tnode_jt_threshold
        then begin
          add_tjt cbox t;
          maintain_t trie cbox k0 ~stale:false (rounds + 1)
        end
        else if t.Records.t_jt_pos >= 0 && stale then refill_tjt cbox t
  end

let collect_ts cbox =
  let buf = cbox.buf in
  let region = top_region buf cbox.base in
  let out = ref [] in
  let pos = ref region.rb and prev = ref (-1) in
  while !pos < region.re do
    let t = Records.parse_t buf !pos ~prev_key:!prev in
    out := (t.Records.t_key, t.Records.t_pos) :: !out;
    prev := t.Records.t_key;
    pos := Records.next_t_pos buf t ~limit:region.re
  done;
  Array.of_list (List.rev !out)

(* Grow the container jump table by one 7-entry level (paper: once eight
   T-nodes have been traversed) and rebalance all entries. *)
let maintain_cjt cbox =
  let buf = cbox.buf and base = cbox.base in
  let j = Layout.read_jump_levels buf base in
  let ts = collect_ts cbox in
  let count = Array.length ts in
  if count > 0 then begin
    let want = min 7 ((count + 6) / 7) in
    if j < want then begin
      Splice.splice cbox ~emb_chain:[]
        ~at:(base + Layout.payload_start buf base)
        ~remove:0
        ~ins:(String.make (7 * Layout.jt_entry_size) '\000')
        ~keep_at:false;
      Layout.set_jump_levels cbox.buf cbox.base (j + 1)
    end;
    let buf = cbox.buf and base = cbox.base in
    let ts = collect_ts cbox in
    let count = Array.length ts in
    let entries = Layout.jt_count buf base in
    for e = 0 to entries - 1 do
      if count = 0 then Layout.jt_write buf base e ~key:0 ~off:0
      else begin
        let idx = if count <= entries then e else e * count / entries in
        if idx < count then begin
          let key, pos = ts.(idx) in
          Layout.jt_write buf base e ~key ~off:(pos - base)
        end
        else Layout.jt_write buf base e ~key:0 ~off:0
      end
    done
  end

(* ------------------------------------------------------------------ *)
(* Vertical container splits (paper Fig. 11, Eq. 4)                    *)
(* ------------------------------------------------------------------ *)

let should_split trie cbox =
  let buf = cbox.buf and base = cbox.base in
  Layout.read_size buf base
  >= trie.cfg.split_a + (trie.cfg.split_b * Layout.read_split_delay buf base)

let write_slot trie ceb slot content =
  let size = max 32 (Splice.round32 (Layout.header_size + String.length content)) in
  Memman.ceb_set_slot trie.mm ceb ~slot size;
  match Memman.ceb_slot trie.mm ceb ~slot with
  | Some (buf, off, _) ->
      Layout.write_header buf off ~size
        ~free:(size - Layout.header_size - String.length content)
        ~jump_levels:0 ~split_delay:0;
      Bytes.blit_string content 0 buf (off + Layout.header_size)
        (String.length content);
      (* Callers recompute the tag byte once the content is fully
         consistent — a split's right piece still needs its jump offsets
         adjusted, and recycled chunks hold a stale tag until then. *)
      (buf, off)
  | None ->
      Hyperion_error.fail
        (Hyperion_error.Chunk_corrupt
           (Format.asprintf
              "write_slot: CEB slot %d vanished after ceb_set_slot in \
               container %a"
              slot Hp.pp ceb))

let abort_split cbox =
  let d = Layout.read_split_delay cbox.buf cbox.base in
  if d < 3 then Layout.set_split_delay cbox.buf cbox.base (d + 1);
  false

let try_split trie cbox =
  let buf = cbox.buf and base = cbox.base in
  let region = top_region buf base in
  let ts = collect_ts cbox in
  let count = Array.length ts in
  if count < 2 then abort_split cbox
  else begin
    let lo = fst ts.(0) and hi = fst ts.(count - 1) in
    if hi / 32 = lo / 32 then abort_split cbox (* single key range: Eq. (3) *)
    else begin
      (* Candidate cuts at 32-key boundaries, balancing piece sizes. *)
      let payload = region.rb and cend = region.re in
      let best = ref None in
      for b = 1 to 7 do
        let boundary = 32 * b in
        if boundary > lo && boundary <= hi then begin
          (* First T-record with key >= boundary. *)
          let cut = ref (-1) in
          Array.iter
            (fun (k, p) -> if !cut < 0 && k >= boundary then cut := p)
            ts;
          if !cut > payload then begin
            let left = !cut - payload and right = cend - !cut in
            if left >= trie.cfg.split_min_piece && right >= trie.cfg.split_min_piece
            then begin
              let score = abs (left - right) in
              match !best with
              | Some (bs, _, _) when bs <= score -> ()
              | _ -> best := Some (score, boundary, !cut)
            end
          end
        end
      done;
      match !best with
      | None -> abort_split cbox
      | Some (_, boundary, cut) ->
          (* Re-encode the right piece's first record with an explicit key
             (its delta referenced a sibling that stays in the left piece). *)
          let first_right =
            let k = ref 0 in
            Array.iter (fun (key, p) -> if p = cut then k := key) ts;
            !k
          in
          let frag, d =
            Encode.re_encode_head buf cut ~key:first_right ~new_prev:(-1)
          in
          let old_frag = Encode.head_frag_size (Bytes.get_uint8 buf cut) in
          let left_content = Bytes.sub_string buf payload (cut - payload) in
          let right_content =
            frag ^ Bytes.sub_string buf (cut + old_frag) (cend - cut - old_frag)
          in
          let right_slot = boundary / 32 in
          (* Crash consistency: every allocation happens before the old
             state is destroyed.  When the allocator fails mid-split, roll
             back whatever was built and merely delay the split — the
             container keeps absorbing inserts. *)
          match
            if cbox.slot < 0 then begin
              let ceb = Memman.ceb_alloc trie.mm in
              (try
                 let lbuf, loff = write_slot trie ceb 0 left_content in
                 Tag.recompute lbuf loff;
                 let rbuf, roff = write_slot trie ceb right_slot right_content in
                 if d <> 0 then
                   Splice.adjust_record_offsets rbuf (roff + Layout.header_size) d;
                 Tag.recompute rbuf roff
               with e ->
                 Memman.free trie.mm ceb;
                 raise e);
              (match cbox.where with
              | W_root -> trie.root <- ceb
              | W_parent (pbuf, ppos) -> Hp.write pbuf ppos ceb
              | W_slot ->
                  Hyperion_error.fail
                    (Hyperion_error.Chunk_corrupt
                       "split: container under split is already a CEB slot"));
              Memman.free trie.mm cbox.hp
            end
            else begin
              (* Populate the fresh right slot first; only then replace the
                 left slot.  The clear-and-rewrite of the left slot is the
                 one window without a recovery point, so fault injection is
                 paused across it (its only real failure mode is a runtime
                 OOM, which saturates the arena and aborts the process-level
                 invariants anyway). *)
              (try
                 let rbuf, roff =
                   write_slot trie cbox.hp right_slot right_content
                 in
                 if d <> 0 then
                   Splice.adjust_record_offsets rbuf (roff + Layout.header_size) d;
                 Tag.recompute rbuf roff
               with e ->
                 Memman.ceb_clear_slot trie.mm cbox.hp ~slot:right_slot;
                 raise e);
              Fault.with_pause (Memman.fault trie.mm) (fun () ->
                  Memman.ceb_clear_slot trie.mm cbox.hp ~slot:cbox.slot;
                  let lbuf, loff = write_slot trie cbox.hp cbox.slot left_content in
                  Tag.recompute lbuf loff)
            end
          with
          | () -> true
          | exception Hyperion_error.Error _ -> abort_split cbox
    end
  end

(* ------------------------------------------------------------------ *)
(* Insertion                                                           *)
(* ------------------------------------------------------------------ *)

(* Set / update the terminal state of a found T-node for a key ending at
   its byte.  Returns true when a new key came into existence. *)
let set_terminal_t trie cbox emb_chain t value =
  let buf = cbox.buf in
  match (Node.typ_of_flag t.Records.t_flag, value) with
  | Node.Leaf_value, Some v ->
      Records.write_value buf t.Records.t_value_pos v;
      false
  | Node.Leaf_value, None | Node.Leaf_no_value, None -> false
  | Node.Inner, None ->
      Bytes.set_uint8 buf t.Records.t_pos
        (Node.with_typ t.Records.t_flag Node.Leaf_no_value);
      true
  | ((Node.Inner | Node.Leaf_no_value) as ty), Some v ->
      guard_emb trie cbox emb_chain Node.value_size;
      let t_rel = t.Records.t_pos - cbox.base in
      Splice.splice cbox ~emb_chain ~at:t.Records.t_head_end ~remove:0
        ~ins:(Encode.value_string v) ~keep_at:false;
      let p = cbox.base + t_rel in
      Bytes.set_uint8 cbox.buf p
        (Node.with_typ (Bytes.get_uint8 cbox.buf p) Node.Leaf_value);
      ty = Node.Inner
  | Node.Invalid, _ ->
      Hyperion_error.fail
        (Hyperion_error.Chunk_corrupt
           "set_terminal: invalid node type bits in live record")

let set_terminal_s trie cbox emb_chain s value =
  let buf = cbox.buf in
  match (Node.typ_of_flag s.Records.s_flag, value) with
  | Node.Leaf_value, Some v ->
      Records.write_value buf s.Records.s_value_pos v;
      false
  | Node.Leaf_value, None | Node.Leaf_no_value, None -> false
  | Node.Inner, None ->
      Bytes.set_uint8 buf s.Records.s_pos
        (Node.with_typ s.Records.s_flag Node.Leaf_no_value);
      true
  | ((Node.Inner | Node.Leaf_no_value) as ty), Some v ->
      guard_emb trie cbox emb_chain Node.value_size;
      let s_rel = s.Records.s_pos - cbox.base in
      let at =
        s.Records.s_pos + Encode.head_frag_size s.Records.s_flag
        (* the value field sits right after flag/key, before the child *)
      in
      Splice.splice cbox ~emb_chain ~at ~remove:0 ~ins:(Encode.value_string v)
        ~keep_at:false;
      let p = cbox.base + s_rel in
      Bytes.set_uint8 cbox.buf p
        (Node.with_typ (Bytes.get_uint8 cbox.buf p) Node.Leaf_value);
      ty = Node.Inner
  | Node.Invalid, _ ->
      Hyperion_error.fail
        (Hyperion_error.Chunk_corrupt
           "set_terminal: invalid node type bits in live record")

(* Attach a child body (suffix continuation) to an S-node that has none. *)
let attach_child trie cbox emb_chain key value level s =
  let len = String.length key in
  let suffix = String.sub key (level + 2) (len - level - 2) in
  let _, dry = Encode.make_child ~dry:true trie suffix value in
  guard_emb trie cbox emb_chain (String.length dry);
  let kind, body = Encode.make_child trie suffix value in
  let s_rel = s.Records.s_pos - cbox.base in
  Splice.splice cbox ~emb_chain ~at:s.Records.s_end ~remove:0 ~ins:body
    ~keep_at:false;
  let p = cbox.base + s_rel in
  Bytes.set_uint8 cbox.buf p
    (Node.with_child (Bytes.get_uint8 cbox.buf p) kind);
  true

(* The found S-node has a path-compressed child: update it in place when
   the suffix matches, otherwise burst it into an embedded container and
   restart (the paper's recursive PC transformation). *)
let put_pc trie cbox emb_chain key value level s =
  let buf = cbox.buf in
  let pc = Records.parse_pc buf s.Records.s_head_end in
  if pc_matches buf pc key (level + 2) then begin
    match (pc.Records.pc_value_pos >= 0, value) with
    | true, Some v ->
        Records.write_value buf pc.Records.pc_value_pos v;
        false
    | true, None | false, None -> false
    | false, Some v ->
        guard_emb trie cbox emb_chain Node.value_size;
        let pc_rel = pc.Records.pc_pos - cbox.base in
        Splice.splice cbox ~emb_chain
          ~at:(pc.Records.pc_pos + 1)
          ~remove:0 ~ins:(Encode.value_string v) ~keep_at:false;
        let p = cbox.base + pc_rel in
        Bytes.set_uint8 cbox.buf p (Bytes.get_uint8 cbox.buf p lor 0x80);
        false
  end
  else begin
    let old_suffix =
      Bytes.sub_string buf pc.Records.pc_suffix_pos pc.Records.pc_suffix_len
    in
    let old_value =
      if pc.Records.pc_value_pos >= 0 then
        Some (Records.read_value buf pc.Records.pc_value_pos)
      else None
    in
    let content = Encode.region_for trie old_suffix old_value in
    let embeds = 1 + String.length content <= emb_budget trie in
    let body_len = if embeds then 1 + String.length content else Hp.byte_size in
    let pc_size = pc.Records.pc_end - pc.Records.pc_pos in
    guard_emb trie cbox emb_chain (body_len - pc_size);
    let kind, body, undo =
      if embeds then
        ( Node.Child_embedded,
          String.make 1 (Char.chr (1 + String.length content)) ^ content,
          fun () -> () )
      else
        let hp = Splice.new_container trie content in
        (Node.Child_hp, Encode.hp_body hp, fun () -> Memman.free trie.mm hp)
    in
    let s_rel = s.Records.s_pos - cbox.base in
    (try
       Splice.splice cbox ~emb_chain ~at:pc.Records.pc_pos ~remove:pc_size
         ~ins:body ~keep_at:false
     with e ->
       undo ();
       raise e);
    let p = cbox.base + s_rel in
    Bytes.set_uint8 cbox.buf p
      (Node.with_child (Bytes.get_uint8 cbox.buf p) kind);
    raise Restart
  end

(* Insert a fresh S-node (with its whole child chain) under a found T. *)
let insert_s trie cbox emb_chain key value level ~k1 ~at ~prev ~succ =
  let prev = if trie.cfg.delta_encoding then prev else -1 in
  let len = String.length key in
  let slast = level + 2 = len in
  let typ = if slast then typ_for value else Node.Inner in
  let sval = if slast then value else None in
  let head kind = Encode.s_record ~prev_key:prev ~key:k1 ~typ ~value:sval ~child:kind in
  let frag_info =
    match succ with
    | Some s2 ->
        let frag, _ =
          Encode.re_encode_head cbox.buf s2.Records.s_pos ~key:s2.Records.s_key
            ~new_prev:(if trie.cfg.delta_encoding then k1 else -1)
        in
        Some (s2, frag)
    | None -> None
  in
  let dry_body_len =
    if slast then 0
    else
      let _, b =
        Encode.make_child ~dry:true trie
          (String.sub key (level + 2) (len - level - 2))
          value
      in
      String.length b
  in
  let frag_growth =
    match frag_info with
    | Some (s2, frag) ->
        String.length frag - Encode.head_frag_size s2.Records.s_flag
    | None -> 0
  in
  guard_emb trie cbox emb_chain
    (String.length (head Node.No_child) + dry_body_len + frag_growth);
  let kind, body =
    if slast then (Node.No_child, "")
    else
      Encode.make_child trie (String.sub key (level + 2) (len - level - 2)) value
  in
  let at, remove, ins =
    match frag_info with
    | Some (s2, frag) ->
        ( s2.Records.s_pos,
          Encode.head_frag_size s2.Records.s_flag,
          head kind ^ body ^ frag )
    | None -> (at, 0, head kind ^ body)
  in
  Splice.splice cbox ~emb_chain ~at ~remove ~ins ~keep_at:false

(* Insert a fresh T-node record (with S-child chain when the key goes on). *)
let insert_t trie cbox emb_chain key value level ~k0 ~at ~prev ~succ =
  let prev = if trie.cfg.delta_encoding then prev else -1 in
  let len = String.length key in
  let last = level = len - 1 in
  let t_head =
    Encode.t_record ~prev_key:prev ~key:k0
      ~typ:(if last then typ_for value else Node.Inner)
      ~value:(if last then value else None)
  in
  let s_part dry =
    if last then ""
    else begin
      let k1 = kb key (level + 1) in
      let slast = level + 2 = len in
      let kind, body =
        if slast then (Node.No_child, "")
        else
          Encode.make_child ~dry trie
            (String.sub key (level + 2) (len - level - 2))
            value
      in
      Encode.s_record ~prev_key:(-1) ~key:k1
        ~typ:(if slast then typ_for value else Node.Inner)
        ~value:(if slast then value else None)
        ~child:kind
      ^ body
    end
  in
  let frag_info =
    match succ with
    | Some t2 ->
        let frag, d =
          Encode.re_encode_head cbox.buf t2.Records.t_pos ~key:t2.Records.t_key
            ~new_prev:(if trie.cfg.delta_encoding then k0 else -1)
        in
        Some (t2, frag, d)
    | None -> None
  in
  let frag_growth =
    match frag_info with
    | Some (t2, frag, _) ->
        String.length frag - Encode.head_frag_size t2.Records.t_flag
    | None -> 0
  in
  guard_emb trie cbox emb_chain
    (String.length t_head + String.length (s_part true) + frag_growth);
  let body = s_part false in
  let at_rel = at - cbox.base in
  (* keep_at only applies to T-sibling inserts in the top region: inside an
     embedded region the insert sits within some top-level T's S-subtree,
     so top-level jump successors pointing exactly at [at] must shift. *)
  let keep_at = emb_chain = [] in
  (match frag_info with
  | Some (t2, frag, d) ->
      Splice.splice cbox ~emb_chain ~at:t2.Records.t_pos
        ~remove:(Encode.head_frag_size t2.Records.t_flag)
        ~ins:(t_head ^ body ^ frag) ~keep_at;
      if d <> 0 then
        Splice.adjust_record_offsets cbox.buf
          (cbox.base + at_rel + String.length t_head + String.length body)
          d
  | None ->
      Splice.splice cbox ~emb_chain ~at ~remove:0 ~ins:(t_head ^ body)
        ~keep_at)

(* ------------------------------------------------------------------ *)
(* put                                                                 *)
(* ------------------------------------------------------------------ *)

let rec put_container trie key value level hp where =
  if Fault.check (Memman.fault trie.mm) Fault.Chunk_corrupt then
    Hyperion_error.fail
      (Hyperion_error.Chunk_corrupt
         (Printf.sprintf "injected at key level %d" level));
  let cbox = Splice.open_container trie hp ~tkey:(kb key level) ~where in
  if should_split trie cbox && try_split trie cbox then begin
    Telemetry.mark Telemetry.Path.container_split;
    if Telemetry.enabled () then Telemetry.Counter.incr c_split;
    raise Restart
  end;
  put_region trie cbox (top_region cbox.buf cbox.base) [] key value level

and put_region trie cbox region emb_chain key value level =
  let len = String.length key in
  let k0 = kb key level in
  let traversed = ref 0 in
  let scanned = ref 0 in
  let post_insert added =
    (* Jump-structure upkeep is best-effort: its splices abort cleanly
       before mutating on allocation failure, and a container without a
       refreshed jump table is merely slower, not wrong.  The insert that
       just succeeded must not be reported as failed. *)
    (if region.top then
       try
         maintain_t trie cbox k0 ~stale:(!scanned > 24) 0;
         if !traversed >= trie.cfg.container_jt_threshold then
           maintain_cjt cbox
       with Hyperion_error.Error _ -> ());
    added
  in
  match Scan.find_t cbox region k0 ~traversed with
  | Scan.T_insert { t_at; t_prev_key; t_succ } ->
      insert_t trie cbox emb_chain key value level ~k0 ~at:t_at ~prev:t_prev_key
        ~succ:t_succ;
      (* a new top-region T-node must be visible to the negative-lookup
         tag before the put is acknowledged (embedded regions untagged) *)
      if region.top then Tag.add cbox.buf cbox.base k0;
      post_insert true
  | Scan.T_found (t, _) -> (
      if level = len - 1 then begin
        let added = set_terminal_t trie cbox emb_chain t value in
        if added then ignore (post_insert true);
        added
      end
      else
        let k1 = kb key (level + 1) in
        match Scan.find_s ~scanned cbox region t k1 with
        | Scan.S_insert { s_at; s_prev_key; s_succ } ->
            insert_s trie cbox emb_chain key value level ~k1 ~at:s_at
              ~prev:s_prev_key ~succ:s_succ;
            post_insert true
        | Scan.S_found (s, _) -> (
            if level + 2 = len then begin
              let added = set_terminal_s trie cbox emb_chain s value in
              if added then ignore (post_insert true);
              added
            end
            else
              match Node.child_of_flag s.Records.s_flag with
              | Node.No_child ->
                  let added = attach_child trie cbox emb_chain key value level s in
                  post_insert added
              | Node.Child_pc ->
                  let added = put_pc trie cbox emb_chain key value level s in
                  if added then ignore (post_insert true);
                  added
              | Node.Child_embedded ->
                  (* The paper ejects embedded containers once the parent
                     container outgrows its limit; doing it when the path
                     actually touches the embedded child keeps puts free of
                     full-container sweeps. *)
                  if
                    emb_chain = []
                    && Splice.container_size cbox
                       > trie.cfg.embedded_eject_parent_limit
                  then begin
                    eject trie cbox [] s.Records.s_pos s.Records.s_head_end;
                    raise Restart
                  end
                  else
                    put_region trie cbox
                      (emb_region cbox.buf s.Records.s_head_end)
                      (emb_chain @ [ (s.Records.s_pos, s.Records.s_head_end) ])
                      key value (level + 2)
              | Node.Child_hp ->
                  put_container trie key value (level + 2)
                    (Hp.read cbox.buf s.Records.s_head_end)
                    (W_parent (cbox.buf, s.Records.s_head_end))))

let restart_budget = 256

let put_unchecked trie key value =
  if Hp.is_null trie.root then begin
    let content = Encode.region_for trie key value in
    trie.root <- Splice.new_container trie content;
    true
  end
  else begin
    let rec attempt n =
      if n > restart_budget then
        Hyperion_error.fail
          (Hyperion_error.Restart_budget_exceeded restart_budget)
      else if Fault.check (Memman.fault trie.mm) Fault.Restart_storm then
        attempt (n + 1)
      else
        try put_container trie key value 0 trie.root W_root
        with Restart -> attempt (n + 1)
    in
    attempt 0
  end

let put trie key value =
  check_key key;
  put_unchecked trie key value

let key_error key =
  let len = String.length key in
  if len = 0 then Some Hyperion_error.Empty_key
  else if len > max_key_len then Some (Hyperion_error.Key_too_long len)
  else None

let put_checked trie key value =
  match key_error key with
  | Some e -> Error e
  | None -> (
      try Ok (put_unchecked trie key value) with Hyperion_error.Error e -> Error e)

(* ------------------------------------------------------------------ *)
(* delete + cleanup                                                    *)
(* ------------------------------------------------------------------ *)

(* Remove the whole (childless) T-record, re-encoding the next sibling's
   delta against the removed record's predecessor. *)
let remove_record_t cbox region emb_chain t t_prev =
  let buf = cbox.buf in
  let succ_pos = t.Records.t_head_end in
  if succ_pos >= region.re then
    Splice.splice cbox ~emb_chain ~at:t.Records.t_pos
      ~remove:(succ_pos - t.Records.t_pos)
      ~ins:"" ~keep_at:false
  else begin
    let succ = Records.parse_t buf succ_pos ~prev_key:t.Records.t_key in
    let frag, d =
      Encode.re_encode_head buf succ_pos ~key:succ.Records.t_key
        ~new_prev:t_prev
    in
    let t_rel = t.Records.t_pos - cbox.base in
    Splice.splice cbox ~emb_chain ~at:t.Records.t_pos
      ~remove:
        (succ_pos - t.Records.t_pos
        + Encode.head_frag_size succ.Records.t_flag)
      ~ins:frag ~keep_at:false;
    if d <> 0 then Splice.adjust_record_offsets cbox.buf (cbox.base + t_rel) d
  end

let remove_record_s cbox region emb_chain t s s_prev =
  let buf = cbox.buf in
  let children_end = Scan.t_children_end cbox region t in
  let succ_pos = s.Records.s_end in
  if succ_pos >= children_end then
    Splice.splice cbox ~emb_chain ~at:s.Records.s_pos
      ~remove:(succ_pos - s.Records.s_pos)
      ~ins:"" ~keep_at:false
  else begin
    let succ = Records.parse_s buf succ_pos ~prev_key:s.Records.s_key in
    let frag, _ =
      Encode.re_encode_head buf succ_pos ~key:succ.Records.s_key
        ~new_prev:s_prev
    in
    Splice.splice cbox ~emb_chain ~at:s.Records.s_pos
      ~remove:
        (succ_pos - s.Records.s_pos
        + Encode.head_frag_size succ.Records.s_flag)
      ~ins:frag ~keep_at:false
  end

let remove_terminal_t cbox region emb_chain t t_prev =
  match Node.typ_of_flag t.Records.t_flag with
  | Node.Inner | Node.Invalid -> false
  | (Node.Leaf_no_value | Node.Leaf_value) as ty ->
      let has_children = Scan.t_children_end cbox region t > t.Records.t_head_end in
      if has_children then begin
        if ty = Node.Leaf_value then begin
          let t_rel = t.Records.t_pos - cbox.base in
          Splice.splice cbox ~emb_chain ~at:t.Records.t_value_pos
            ~remove:Node.value_size ~ins:"" ~keep_at:false;
          let p = cbox.base + t_rel in
          Bytes.set_uint8 cbox.buf p
            (Node.with_typ (Bytes.get_uint8 cbox.buf p) Node.Inner)
        end
        else
          Bytes.set_uint8 cbox.buf t.Records.t_pos
            (Node.with_typ t.Records.t_flag Node.Inner);
        true
      end
      else begin
        remove_record_t cbox region emb_chain t t_prev;
        true
      end

let remove_terminal_s cbox region emb_chain t s s_prev =
  match Node.typ_of_flag s.Records.s_flag with
  | Node.Inner | Node.Invalid -> false
  | (Node.Leaf_no_value | Node.Leaf_value) as ty ->
      let has_child = Node.child_of_flag s.Records.s_flag <> Node.No_child in
      if has_child then begin
        if ty = Node.Leaf_value then begin
          let s_rel = s.Records.s_pos - cbox.base in
          Splice.splice cbox ~emb_chain ~at:s.Records.s_value_pos
            ~remove:Node.value_size ~ins:"" ~keep_at:false;
          let p = cbox.base + s_rel in
          Bytes.set_uint8 cbox.buf p
            (Node.with_typ (Bytes.get_uint8 cbox.buf p) Node.Inner)
        end
        else
          Bytes.set_uint8 cbox.buf s.Records.s_pos
            (Node.with_typ s.Records.s_flag Node.Inner);
        true
      end
      else begin
        remove_record_s cbox region emb_chain t s s_prev;
        true
      end

let remove_pc cbox emb_chain s pc =
  let s_rel = s.Records.s_pos - cbox.base in
  Splice.splice cbox ~emb_chain ~at:pc.Records.pc_pos
    ~remove:(pc.Records.pc_end - pc.Records.pc_pos)
    ~ins:"" ~keep_at:false;
  let p = cbox.base + s_rel in
  Bytes.set_uint8 cbox.buf p
    (Node.with_child (Bytes.get_uint8 cbox.buf p) Node.No_child);
  true

let rec delete_container trie key level hp where =
  let cbox = Splice.open_container trie hp ~tkey:(kb key level) ~where in
  delete_region trie cbox (top_region cbox.buf cbox.base) [] key level

and delete_region trie cbox region emb_chain key level =
  let len = String.length key in
  let traversed = ref 0 in
  match Scan.find_t ~use_jumps:false cbox region (kb key level) ~traversed with
  | Scan.T_insert _ -> false
  | Scan.T_found (t, t_prev) -> (
      if level = len - 1 then
        remove_terminal_t cbox region emb_chain t t_prev
      else
        match Scan.find_s ~use_jumps:false cbox region t (kb key (level + 1)) with
        | Scan.S_insert _ -> false
        | Scan.S_found (s, s_prev) -> (
            if level + 2 = len then
              remove_terminal_s cbox region emb_chain t s s_prev
            else
              match Node.child_of_flag s.Records.s_flag with
              | Node.No_child -> false
              | Node.Child_pc ->
                  let pc = Records.parse_pc cbox.buf s.Records.s_head_end in
                  if pc_matches cbox.buf pc key (level + 2) then
                    remove_pc cbox emb_chain s pc
                  else false
              | Node.Child_embedded ->
                  delete_region trie cbox
                    (emb_region cbox.buf s.Records.s_head_end)
                    (emb_chain @ [ (s.Records.s_pos, s.Records.s_head_end) ])
                    key (level + 2)
              | Node.Child_hp ->
                  delete_container trie key (level + 2)
                    (Hp.read cbox.buf s.Records.s_head_end)
                    (W_parent (cbox.buf, s.Records.s_head_end))))

(* Is the container behind [hp] devoid of records (all slots, if chained)? *)
let container_empty trie hp =
  if Memman.is_chained trie.mm hp then begin
    let empty = ref true in
    for slot = 0 to 7 do
      match Memman.ceb_slot trie.mm hp ~slot with
      | Some (buf, off, _) ->
          if Layout.content_end buf off > Layout.payload_start buf off then
            empty := false
      | None -> ()
    done;
    !empty
  end
  else
    let buf, base = Memman.resolve trie.mm hp in
    Layout.content_end buf base <= Layout.payload_start buf base

(* One bottom-up cleanup action along the deleted key's path; true when
   something was removed (caller loops until stable). *)
let rec cleanup_container trie key level hp where =
  let cbox = Splice.open_container trie hp ~tkey:(kb key level) ~where in
  cleanup_region trie cbox (top_region cbox.buf cbox.base) [] key level

and cleanup_region trie cbox region emb_chain key level =
  let len = String.length key in
  if level >= len - 1 then false
  else begin
    let traversed = ref 0 in
    match Scan.find_t ~use_jumps:false cbox region (kb key level) ~traversed with
    | Scan.T_insert _ -> false
    | Scan.T_found (t, t_prev) -> (
        match Scan.find_s ~use_jumps:false cbox region t (kb key (level + 1)) with
        | Scan.S_insert _ ->
            (* No S-children left and no terminal value: dead inner T. *)
            if
              Node.typ_of_flag t.Records.t_flag = Node.Inner
              && Scan.t_children_end cbox region t = t.Records.t_head_end
            then begin
              remove_record_t cbox region emb_chain t t_prev;
              true
            end
            else false
        | Scan.S_found (s, s_prev) -> (
            let dead_s () =
              if
                Node.typ_of_flag s.Records.s_flag = Node.Inner
                && Node.child_of_flag s.Records.s_flag = Node.No_child
              then begin
                remove_record_s cbox region emb_chain t s s_prev;
                true
              end
              else false
            in
            if level + 2 >= len then dead_s ()
            else
              match Node.child_of_flag s.Records.s_flag with
              | Node.No_child -> dead_s ()
              | Node.Child_pc -> false
              | Node.Child_embedded ->
                  let r = emb_region cbox.buf s.Records.s_head_end in
                  if
                    cleanup_region trie cbox r
                      (emb_chain @ [ (s.Records.s_pos, s.Records.s_head_end) ])
                      key (level + 2)
                  then true
                  else if r.re <= r.rb then begin
                    (* Empty embedded container: splice it out. *)
                    let s_rel = s.Records.s_pos - cbox.base in
                    Splice.splice cbox ~emb_chain ~at:s.Records.s_head_end
                      ~remove:(Layout.emb_total_size cbox.buf s.Records.s_head_end)
                      ~ins:"" ~keep_at:false;
                    let p = cbox.base + s_rel in
                    Bytes.set_uint8 cbox.buf p
                      (Node.with_child (Bytes.get_uint8 cbox.buf p)
                         Node.No_child);
                    true
                  end
                  else false
              | Node.Child_hp ->
                  let child = Hp.read cbox.buf s.Records.s_head_end in
                  if
                    cleanup_container trie key (level + 2) child
                      (W_parent (cbox.buf, s.Records.s_head_end))
                  then true
                  else if container_empty trie child then begin
                    Memman.free trie.mm child;
                    let s_rel = s.Records.s_pos - cbox.base in
                    Splice.splice cbox ~emb_chain ~at:s.Records.s_head_end
                      ~remove:Hp.byte_size ~ins:"" ~keep_at:false;
                    let p = cbox.base + s_rel in
                    Bytes.set_uint8 cbox.buf p
                      (Node.with_child (Bytes.get_uint8 cbox.buf p)
                         Node.No_child);
                    true
                  end
                  else false))
  end

let delete trie key =
  check_key key;
  if Hp.is_null trie.root then false
  else begin
    let removed = delete_container trie key 0 trie.root W_root in
    if removed then begin
      while
        (not (Hp.is_null trie.root))
        && cleanup_container trie key 0 trie.root W_root
      do
        ()
      done;
      if (not (Hp.is_null trie.root)) && container_empty trie trie.root then begin
        Memman.free trie.mm trie.root;
        trie.root <- Hp.null
      end
    end;
    removed
  end
