(** Trie operations: point queries, order-preserving insertion, deletion,
    and the structural maintenance around them — embedded-container
    ejection (paper Fig. 8), path-compression bursts, jump-successor /
    jump-table upkeep (Section 3.3) and vertical container splits
    (Fig. 11, Eq. 4).

    A [trie] is single-threaded here; {!Store} adds arena locking. *)

val create : Config.t -> Types.trie
(** A fresh empty trie with its own memory manager. *)

type container_probe =
  | P_done of int64 option option
  | P_child of Hp.t * int
      (** child container HP and the key level the descent continues at *)

(** One container's worth of point-query descent.  [probe_container t hp
    key level] opens the container behind [hp], consults its
    negative-lookup tag byte, and scans until the key either resolves
    ([P_done], with the same [int64 option option] convention as {!find})
    or exits through an HP child ([P_child]).  Embedded containers are
    descended inline — a probe step is exactly one heap chunk.

    {!find} is a loop over this function; the batched memory-level-parallel
    path ({!Getmany.find_many}) interleaves many such loops, prefetching
    each [P_child] target before resuming other operations.  Both paths
    run the identical per-container code, which is what makes batched
    results bit-identical to sequential ones.

    The key must be non-empty and [level < String.length key]; callers are
    expected to have validated it (as {!find} does). *)
val probe_container : Types.trie -> Hp.t -> string -> int -> container_probe

val find : Types.trie -> string -> int64 option option
(** [find t key] is [None] when absent, [Some None] when the key is stored
    without a value (type-10 terminal), [Some (Some v)] when it maps to
    [v].  @raise Invalid_argument on the empty key. *)

val put : Types.trie -> string -> int64 option -> bool
(** [put t key value] inserts or updates; [value = None] stores the key
    alone (set semantics).  Returns [true] when the key was not present
    before.  @raise Invalid_argument on the empty key.
    @raise Hyperion_error.Error on allocation failure, arena saturation or
    an exceeded restart budget; the trie is left exactly as it was before
    the call (failed splices roll back). *)

val put_checked :
  Types.trie -> string -> int64 option -> (bool, Hyperion_error.t) result
(** [put_checked] is [put] with every failure — including key-validation
    errors ([Empty_key], [Key_too_long]) — routed through the typed result
    channel instead of exceptions. *)

val key_error : string -> Hyperion_error.t option
(** The typed validation error for a key, if any. *)

val delete : Types.trie -> string -> bool
(** Remove a key (valued or not); [true] iff it was present.  Vacated
    records are spliced out, empty containers freed, and the path cleaned
    up bottom-up. *)
