let header_size = 5
let max_container_size = (1 lsl 19) - 1
let jt_entry_size = 4
let emb_header_size = 1

(* Header word, little-endian: size bits 0-18, free bits 19-26, J bits
   27-29, S bits 30-31.  Byte 4 is the container's negative-lookup tag —
   an 8-bit Bloom filter over the top-region T-node keys (bit
   [t_key mod 8]) consulted before any scan.  The word codec below never
   touches it, so header rewrites preserve the tag. *)

let read_word buf base =
  Bytes.get_uint8 buf base
  lor (Bytes.get_uint8 buf (base + 1) lsl 8)
  lor (Bytes.get_uint8 buf (base + 2) lsl 16)
  lor (Bytes.get_uint8 buf (base + 3) lsl 24)

let write_word buf base w =
  Bytes.set_uint8 buf base (w land 0xff);
  Bytes.set_uint8 buf (base + 1) ((w lsr 8) land 0xff);
  Bytes.set_uint8 buf (base + 2) ((w lsr 16) land 0xff);
  Bytes.set_uint8 buf (base + 3) ((w lsr 24) land 0xff)

let read_size buf base = read_word buf base land max_container_size
let read_free buf base = (read_word buf base lsr 19) land 0xff
let read_jump_levels buf base = (read_word buf base lsr 27) land 0b111
let read_split_delay buf base = (read_word buf base lsr 30) land 0b11

let write_header buf base ~size ~free ~jump_levels ~split_delay =
  if size < 0 || size > max_container_size then
    invalid_arg "Layout: container size out of 19-bit range";
  if free < 0 || free > 255 then invalid_arg "Layout: free out of 8-bit range";
  if jump_levels < 0 || jump_levels > 7 then invalid_arg "Layout: J out of range";
  if split_delay < 0 || split_delay > 3 then invalid_arg "Layout: S out of range";
  write_word buf base
    (size lor (free lsl 19) lor (jump_levels lsl 27) lor (split_delay lsl 30))

let set_size buf base size =
  write_header buf base ~size ~free:(read_free buf base)
    ~jump_levels:(read_jump_levels buf base)
    ~split_delay:(read_split_delay buf base)

let set_free buf base free =
  write_header buf base ~size:(read_size buf base) ~free
    ~jump_levels:(read_jump_levels buf base)
    ~split_delay:(read_split_delay buf base)

let set_jump_levels buf base jump_levels =
  write_header buf base ~size:(read_size buf base)
    ~free:(read_free buf base) ~jump_levels
    ~split_delay:(read_split_delay buf base)

let set_split_delay buf base split_delay =
  write_header buf base ~size:(read_size buf base)
    ~free:(read_free buf base)
    ~jump_levels:(read_jump_levels buf base)
    ~split_delay

let tag_pos = 4

let read_tag buf base = Bytes.get_uint8 buf (base + tag_pos)
let write_tag buf base v = Bytes.set_uint8 buf (base + tag_pos) (v land 0xff)

let jt_count buf base = 7 * read_jump_levels buf base
let jt_area_size buf base = jt_entry_size * jt_count buf base
let payload_start buf base = header_size + jt_area_size buf base
let content_end buf base = read_size buf base - read_free buf base

let jt_read buf base i =
  let p = base + header_size + (i * jt_entry_size) in
  let key = Bytes.get_uint8 buf p in
  let off =
    Bytes.get_uint8 buf (p + 1)
    lor (Bytes.get_uint8 buf (p + 2) lsl 8)
    lor (Bytes.get_uint8 buf (p + 3) lsl 16)
  in
  (key, off)

let jt_write buf base i ~key ~off =
  if off < 0 || off > 0xffffff then invalid_arg "Layout.jt_write: offset too large";
  let p = base + header_size + (i * jt_entry_size) in
  Bytes.set_uint8 buf p key;
  Bytes.set_uint8 buf (p + 1) (off land 0xff);
  Bytes.set_uint8 buf (p + 2) ((off lsr 8) land 0xff);
  Bytes.set_uint8 buf (p + 3) ((off lsr 16) land 0xff)

let emb_total_size buf pos = Bytes.get_uint8 buf pos

let set_emb_total_size buf pos size =
  if size < 1 || size > 255 then
    invalid_arg "Layout: embedded container size out of [1,255]";
  Bytes.set_uint8 buf pos size
