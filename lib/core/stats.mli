(** Structural statistics of a Hyperion trie, gathered by a full walk.
    These drive the paper's memory-characteristics analyses: delta-encoding
    savings, embedded-container counts, path-compression savings
    (Section 4.3) and — through {!Memman.superbin_profile} — the per-
    superbin allocation distributions of Figures 14 and 16. *)

type t = {
  containers : int;  (** real (top-level) containers, split slots included *)
  split_containers : int;  (** chained extended bins in use *)
  embedded_containers : int;
  pc_nodes : int;
  pc_suffix_bytes : int;  (** path-compressed key bytes *)
  t_nodes : int;
  s_nodes : int;
  delta_encoded : int;  (** records whose key byte is delta-encoded *)
  values : int;
  members_without_value : int;
  jump_successors : int;
  tnode_jump_tables : int;
  container_jt_entries : int;
  saturated_arenas : int;
      (** memory managers currently in the read-only saturated state (pool
          exhausted, nothing freed since).  {!Store.stats} reports this per
          arena; {!collect} reports the single trie's manager as 0/1. *)
}

val empty : t
val add : t -> t -> t

val collect : Types.trie -> t
(** Walk the whole trie. *)
