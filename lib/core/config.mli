(** Tunables of the Hyperion trie and its memory manager.

    Defaults follow the paper's evaluation setup (Section 4.1); tests shrink
    thresholds to force rare code paths (embedded-container ejection, path
    compression bursts, container splits) on tiny inputs. *)

type t = {
  embedded_eject_parent_limit : int;
      (** Eject embedded containers once the enclosing top-level container
          grows beyond this many bytes.  Paper: 8 KiB for integer keys,
          16 KiB for variable-length strings. *)
  embedded_max : int;
      (** Hard size cap of one embedded container in bytes; ejected as soon
          as it would exceed this.  Paper: 256 (the S-node size limit). *)
  pc_max : int;
      (** Maximum suffix length storable in a path-compressed node.
          Paper: 127 (7-bit size field). *)
  js_threshold : int;
      (** Append a jump-successor offset to a T-node once it has at least
          this many S-node children.  Paper default: 2. *)
  tnode_jt_threshold : int;
      (** Build a T-node jump table once the T-node has at least this many
          S-node children (the table references 15 of them). *)
  container_jt_threshold : int;
      (** Grow/rebalance the container jump table once a scan has traversed
          this many T-nodes.  Paper: 8. *)
  split_a : int;  (** Additive split constant a of Eq. (4).  Paper: 16 KiB. *)
  split_b : int;
      (** Split-delay multiplier b of Eq. (4).  Paper: 64 KiB. *)
  split_min_piece : int;
      (** Abort a split if either candidate would be smaller than this.
          Paper: 3 KiB. *)
  chunks_per_bin : int;
      (** Chunks per memory-manager bin.  Paper: 4096 (12 HP bits). *)
  max_metabins : int;
      (** Metabins a superbin may grow to before it reports saturation.
          Paper: 2^14 (14 HP bits), the default; tests shrink it to force
          arena exhaustion on tiny inputs. *)
  arenas : int;
      (** Number of separately locked arenas in [1, 256].  1 = single trie,
          no per-key routing. *)
  preprocess : bool;
      (** Enable the key pre-processing of Section 3.4 (requires all keys
          to be at least 4 bytes long). *)
  delta_encoding : bool;
      (** Delta-encode sibling key bytes (Section 3.3).  Default true;
          disabled only by the ablation benchmarks. *)
  compress : int;
      (** Order-preserving key-encoder scheme id this store's keys were
          encoded with {e before} reaching the trie: 0 = identity
          (default), 1 = trained dictionary ({!Compress}).  The store
          itself never encodes or decodes — front doors (shard, persist,
          CLI) do — but the id is part of the config contract and of
          persisted fingerprints so a snapshot can never be reopened
          under the wrong encoder.  Scheme 1 additionally mixes the
          dictionary hash into persisted fingerprints (see
          {!Compress.mix_fingerprint}). *)
}

val default : t
(** Integer-key defaults: 8 KiB ejection limit, paper constants, 1 arena,
    no pre-processing. *)

val strings : t
(** String-key defaults: like {!default} with a 16 KiB ejection limit (the
    paper's setting "to better utilize path compression"). *)

val validate : t -> unit
(** @raise Invalid_argument if a field is out of its documented domain. *)

val fingerprint : t -> int64
(** A stable 64-bit hash of every tunable (FNV-1a over the field values).
    Embedded in persisted snapshot and WAL headers so that a durability
    directory is never silently reopened under a different configuration
    (see {!Persist} and DESIGN.md section 8). *)
