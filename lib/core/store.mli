(** Hyperion key-value store: the public API.

    A store owns one or more tries (256 when arenas are enabled, paper
    Section 3.2) with one memory manager and one lock per arena.  Keys are
    arbitrary non-empty byte strings in binary-comparable form (see
    {!Kvcommon.Key_codec}); values are 64-bit words.  Keys can also be
    stored without a value (type-10 terminals, set semantics).

    When [config.preprocess] is on, keys are transparently transformed with
    {!Preprocess} on the way in and restored on the way out. *)

type t

val name : string

val create : ?config:Config.t -> unit -> t
val create_default : unit -> t
(** [create_default ()] is [create ()] — the {!Kv_intf} creation hook. *)

val config : t -> Config.t

val put : t -> string -> int64 -> unit
val add : t -> string -> unit
(** Store the key without a value. *)

val get : t -> string -> int64 option
val mem : t -> string -> bool
val delete : t -> string -> bool

(** {1 Batched reads}

    The memory-level-parallel read path: up to [width] (default 32)
    descents per arena are software-pipelined, each operation's next
    container prefetched while the others advance, and per-container
    negative-lookup tags cut probe misses short.  Results are
    bit-identical to the equivalent sequential loop — both paths share
    the per-container probe code, and each routed group runs under its
    arena lock, so a batch linearizes against concurrent mutators at
    per-arena granularity exactly like a sequential loop would. *)

val get_many : ?width:int -> t -> string array -> int64 option array
(** [get_many t keys] is observably [Array.map (get t) keys],
    positionally (duplicates included).  Keys are validated up front, so
    an invalid key raises before any trie is touched. *)

val mem_many : ?width:int -> t -> string array -> bool array
(** [mem_many t keys] is observably [Array.map (mem t) keys]. *)

(** {1 Typed-result mutation API}

    [put]/[add]/[delete] raise [Hyperion_error.Error] when the store cannot
    complete a mutation (arena saturation, allocation failure, injected
    fault); these variants surface the same failures as values instead.  A
    failed mutation leaves the store exactly as it was: splices roll back
    before any byte moves, and reads keep working on a saturated arena. *)

val put_result : t -> string -> int64 -> (unit, Hyperion_error.t) result
val add_result : t -> string -> (unit, Hyperion_error.t) result
val delete_result : t -> string -> (bool, Hyperion_error.t) result

val put_opt_result : t -> string -> int64 option -> (unit, Hyperion_error.t) result
(** [put_opt_result t key v] is [put_result] when [v = Some _] and
    [add_result] when [v = None] — the shape {!iter} hands out, so snapshot
    load and WAL replay can reinsert any binding (valued or type-10)
    uniformly. *)

(** {1 Fault injection and saturation} *)

val set_fault_plan : t -> Fault.t -> unit
(** Install a fault-injection plan on every arena's memory manager
    ({!Fault.none} disables injection).  The plan object is shared, so a
    single operation budget spans all arenas. *)

val fault_plan : t -> Fault.t
(** The currently installed plan (of the first arena). *)

val saturated_arenas : t -> int
(** Arenas currently read-only because their memory pool is exhausted.
    Saturation is sticky until a delete frees memory in that arena. *)

val range : t -> ?start:string -> (string -> int64 option -> bool) -> unit
(** Ordered callback iteration from [start] (paper's range queries). *)

val length : t -> int
(** Number of stored keys.  Safe under concurrent mutators: the per-trie
    counters are [Atomic.t], so the sum never contains torn values (it may
    lag in-flight mutations by design). *)

val memory_usage : t -> int
(** Exact resident bytes of all memory managers (initialized bin segments,
    metabin metadata, extended-bin heap segments).  Takes each arena's lock
    while reading its manager, so it is safe under concurrent mutators. *)

val stats : t -> Stats.t
(** Full structural walk.  Each trie is walked under its arena lock, so
    calling this while other threads mutate the store yields a well-formed
    (per-arena-consistent) snapshot instead of parsing mid-splice bytes. *)

val superbin_profile : t -> Memman.superbin_stats array
(** Aggregated over all arenas; drives Figures 14 and 16. *)

val allocated_chunks : t -> int

(**/**)

val internal_tries : t -> Types.trie array
(** For {!Validate} and white-box tests only. *)

(** {1 Convenience iteration} *)

val iter : t -> (string -> int64 option -> unit) -> unit
(** Visit every binding in ascending key order. *)

val fold : t -> init:'a -> f:('a -> string -> int64 option -> 'a) -> 'a
(** Left fold over all bindings in ascending key order. *)

val prefix_iter : t -> prefix:string -> (string -> int64 option -> bool) -> unit
(** [prefix_iter t ~prefix f] invokes [f] for every stored key beginning
    with [prefix], in order, until [f] returns [false].  A common trie
    idiom built on {!range}; an empty prefix visits everything. *)
