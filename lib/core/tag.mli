(** Per-container negative-lookup tags (Umbra-style pointer tagging
    adapted to Hyperion's HP-addressed containers).

    Each top-level (or CEB-slot) container stores an 8-bit Bloom filter
    over its top-region T-node keys in the header's fifth byte: bit
    [t_key mod 8] is set for every T-node present.  Lookups consult the
    tag before scanning; a clear bit is a proof of absence and the probe
    terminates early.

    {b Soundness:} the stored tag is maintained as a {e superset} of the
    exact tag — inserts OR their bit in ({!add}), deletes leave stale
    bits (sound: extra bits only cost a scan), and container
    construction recomputes from scratch ({!recompute}, mandatory
    because recycled chunk memory holds arbitrary stale tag bytes).  A
    tag rejection therefore never occurs for a present key; the heap
    sanitizer audits [stored ⊇ computed]. *)

val bit : int -> int
(** [bit t_key] is the tag bit for a T-node key: [1 lsl (t_key mod 8)]. *)

val may_contain : int -> int -> bool
(** [may_contain tag t_key]: false proves no T-node with [t_key] exists
    in the tagged container's top region. *)

val note_rejected : unit -> unit
(** Count one tag short-circuit (telemetry-gated). *)

val add : Bytes.t -> int -> int -> unit
(** [add buf base t_key] ORs [t_key]'s bit into the stored tag. *)

val compute : Bytes.t -> int -> int
(** The exact tag of the container at [base]: union of {!bit} over its
    top-region T-nodes. *)

val recompute : Bytes.t -> int -> unit
(** Store {!compute}'s result — required at every container
    construction site before the container becomes reachable. *)
