type site =
  | Alloc_fail
  | Superbin_exhausted
  | Chunk_corrupt
  | Restart_storm
  | Io_write_eio
  | Io_write_enospc
  | Io_short_write
  | Io_fsync
  | Io_open
  | Io_read
  | Io_rename

let site_name = function
  | Alloc_fail -> "alloc-fail"
  | Superbin_exhausted -> "superbin-exhausted"
  | Chunk_corrupt -> "chunk-corrupt"
  | Restart_storm -> "restart-storm"
  | Io_write_eio -> "io-write-eio"
  | Io_write_enospc -> "io-write-enospc"
  | Io_short_write -> "io-short-write"
  | Io_fsync -> "io-fsync"
  | Io_open -> "io-open"
  | Io_read -> "io-read"
  | Io_rename -> "io-rename"

let mem_sites = [ Alloc_fail; Superbin_exhausted; Chunk_corrupt; Restart_storm ]

let io_sites =
  [
    Io_write_eio;
    Io_write_enospc;
    Io_short_write;
    Io_fsync;
    Io_open;
    Io_read;
    Io_rename;
  ]

let all_sites = mem_sites @ io_sites

let site_index = function
  | Alloc_fail -> 0
  | Superbin_exhausted -> 1
  | Chunk_corrupt -> 2
  | Restart_storm -> 3
  | Io_write_eio -> 4
  | Io_write_enospc -> 5
  | Io_short_write -> 6
  | Io_fsync -> 7
  | Io_open -> 8
  | Io_read -> 9
  | Io_rename -> 10

let n_sites = 11

type mode =
  | Disabled
  | At of (site * int) list
  | Seeded of { per_mille : int; sites : site list }
  | Always of site list

type t = {
  mode : mode;
  counts : int array;  (* consultations per site *)
  states : int64 array;  (* per-site splitmix64 streams *)
  mutable fired : (site * int) list;  (* newest first *)
  mutable paused : int;
  seed : int64;
}

(* splitmix64: the standard seed expander; each [next] both advances the
   per-site state and returns a well-mixed 64-bit draw. *)
let splitmix_next states i =
  let ( +% ) = Int64.add and ( *% ) = Int64.mul in
  let ( ^^ ) = Int64.logxor in
  let z = states.(i) +% 0x9E3779B97F4A7C15L in
  states.(i) <- z;
  let z = (z ^^ Int64.shift_right_logical z 30) *% 0xBF58476D1CE4E5B9L in
  let z = (z ^^ Int64.shift_right_logical z 27) *% 0x94D049BB133111EBL in
  z ^^ Int64.shift_right_logical z 31

let make ?(seed = 0L) mode =
  let states =
    Array.init n_sites (fun i ->
        Int64.logxor seed (Int64.mul (Int64.of_int (i + 1)) 0xD6E8FEB86659FD93L))
  in
  { mode; counts = Array.make n_sites 0; states; fired = []; paused = 0; seed }

let none = make Disabled

let fire_at schedule =
  List.iter
    (fun (_, n) ->
      if n < 1 then invalid_arg "Fault.fire_at: consultation index must be >= 1")
    schedule;
  make (At schedule)

let seeded ~seed ~per_mille ~sites =
  if per_mille < 0 || per_mille > 1000 then
    invalid_arg "Fault.seeded: per_mille must be in [0, 1000]";
  make ~seed (Seeded { per_mille; sites })

let always sites = make (Always sites)

let decide t site n =
  match t.mode with
  | Disabled -> false
  | At schedule ->
      List.exists (fun (s, at) -> s = site && at = n) schedule
  | Always sites -> List.mem site sites
  | Seeded { per_mille; sites } ->
      List.mem site sites
      &&
      let draw = splitmix_next t.states (site_index site) in
      let bucket = Int64.to_int (Int64.unsigned_rem draw 1000L) in
      bucket < per_mille

let check t site =
  if t.mode = Disabled || t.paused > 0 then false
  else begin
    let i = site_index site in
    t.counts.(i) <- t.counts.(i) + 1;
    let n = t.counts.(i) in
    let fire = decide t site n in
    if fire then t.fired <- (site, n) :: t.fired;
    fire
  end

let with_pause t f =
  t.paused <- t.paused + 1;
  Fun.protect ~finally:(fun () -> t.paused <- t.paused - 1) f

let consultations t site = t.counts.(site_index site)
let fired t = List.rev t.fired
let fired_count t = List.length t.fired

let describe t =
  let mode =
    match t.mode with
    | Disabled -> "disabled"
    | At schedule ->
        "at["
        ^ String.concat ","
            (List.map (fun (s, n) -> Printf.sprintf "%s@%d" (site_name s) n) schedule)
        ^ "]"
    | Always sites ->
        "always[" ^ String.concat "," (List.map site_name sites) ^ "]"
    | Seeded { per_mille; sites } ->
        Printf.sprintf "seeded[seed=%Ld,p=%d/1000,%s]" t.seed per_mille
          (String.concat "," (List.map site_name sites))
  in
  let hist =
    match fired t with
    | [] -> "fired:none"
    | l ->
        "fired:"
        ^ String.concat ","
            (List.map (fun (s, n) -> Printf.sprintf "%s@%d" (site_name s) n) l)
  in
  mode ^ " " ^ hist
