(** Deterministic, seed-driven fault injection.

    A {!t} is a *plan*: a pure function of its construction parameters and
    of the sequence of {!check} consultations made against it.  Subsystems
    that can fail (the memory manager, the mutation path) consult the plan
    at each fault site; the plan answers "inject a fault now" or "proceed".
    Because the decision depends only on the seed and the per-site
    consultation count, any failing run can be replayed exactly from its
    seed.

    Plans are intentionally dependency-free: this library knows nothing
    about Hyperion.  The store maps a fired site to its own typed error. *)

type site =
  | Alloc_fail  (** a single chunk/heap allocation request fails *)
  | Superbin_exhausted  (** the allocator reports an exhausted pool *)
  | Chunk_corrupt  (** a container chunk reads back corrupt *)
  | Restart_storm  (** an in-flight operation is forced to restart *)
  | Io_write_eio  (** a [write] to a durability file fails with [EIO] *)
  | Io_write_enospc  (** a [write] fails with [ENOSPC] *)
  | Io_short_write  (** a [write] transfers only part of its buffer *)
  | Io_fsync  (** an [fsync] fails (never retried — see {!Persist.Io}) *)
  | Io_open  (** an [openfile] fails *)
  | Io_read  (** a [read] fails *)
  | Io_rename  (** a [rename] (snapshot publish) fails *)

val site_name : site -> string
val all_sites : site list

val mem_sites : site list
(** The in-memory store's sites (allocator, chunk, restart). *)

val io_sites : site list
(** The durability layer's syscall sites, consulted by {!Persist.Io}. *)

type t

val none : t
(** The disabled plan: never fires, never counts.  Safe to share. *)

val fire_at : (site * int) list -> t
(** [fire_at [(s, n); ...]] fires site [s] on its [n]-th consultation
    (1-based).  A site may appear several times with different indices. *)

val seeded : seed:int64 -> per_mille:int -> sites:site list -> t
(** A pseudo-random plan: every consultation of a listed site fires with
    probability [per_mille]/1000, drawn from a per-site splitmix64 stream
    derived from [seed].  Deterministic for a deterministic consultation
    order.  @raise Invalid_argument if [per_mille] is outside [0, 1000]. *)

val always : site list -> t
(** Fire on every consultation of the listed sites. *)

val check : t -> site -> bool
(** [check t s] consults the plan at site [s]: increments the site's
    consultation counter and returns [true] when the plan injects a fault
    here.  Returns [false] without counting on {!none} and inside
    {!with_pause}. *)

val with_pause : t -> (unit -> 'a) -> 'a
(** Run a critical section with injection suppressed (consultations return
    [false] and are not counted).  Used around multi-step mutations that
    have no recovery point, e.g. rewriting a split slot after clearing it. *)

val consultations : t -> site -> int
(** How many times [site] has been consulted (pauses excluded). *)

val fired : t -> (site * int) list
(** Injection history, oldest first: each entry is the site and the
    consultation index (1-based) at which it fired. *)

val fired_count : t -> int

val describe : t -> string
(** One-line summary of the plan and its firing history, for replay logs. *)
