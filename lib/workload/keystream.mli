(** Seeded key-popularity stream: Zipf-ranked synthetic n-gram keys.

    One reusable implementation of the "skewed key popularity" wiring that
    both the bench corpus ({!Ngram}) and the network load generator
    ({!Net.Loadgen}) need: a deterministic universe of [n] distinct
    n-gram-shaped keys (built from the shared English letter-frequency
    vocabulary model) plus a Zipf sampler over their {e ranks}, so rank 0
    is drawn most often — the access pattern of a popularity-skewed cache
    or serving workload.

    Construction and sampling are reproducible from the seed.  A [t] is
    immutable after {!create} except for the internal sampling generator
    behind {!next}; concurrent samplers must use {!sample} with one
    {!Mt19937_64.t} per thread. *)

type t

val create :
  ?seed:int64 ->
  ?vocab_size:int ->
  ?min_words:int ->
  ?max_words:int ->
  ?s:float ->
  n:int ->
  unit ->
  t
(** [create ~n ()] builds [n] distinct keys and a Zipf rank sampler.
    Defaults: [seed = 20190301L], [vocab_size = 8192], [min_words = 2],
    [max_words = 5], [s = 0.99] (the YCSB-style skew exponent; the corpus
    vocabulary itself always uses the paper's 1.07).
    @raise Invalid_argument when [n < 1], the word bounds are inconsistent,
    or [s] is negative. *)

val size : t -> int
(** Number of distinct keys ([n]). *)

val rank_key : t -> int -> string
(** [rank_key t r] is the key at popularity rank [r] ([0] = hottest).
    @raise Invalid_argument when [r] is out of range. *)

val keys : t -> string array
(** A fresh copy of all keys, rank order. *)

val sample : t -> Mt19937_64.t -> string
(** Draw a key with Zipf popularity using the caller's generator —
    the thread-safe sampling path (a [t] is never mutated by it). *)

val sample_rank : t -> Mt19937_64.t -> int
(** The rank underneath {!sample}. *)

val next : t -> string
(** {!sample} with the stream's internal generator (single-threaded
    convenience). *)

(** {1 Deterministic key sampling} *)

val reservoir : ?seed:int64 -> k:int -> string Seq.t -> string array
(** [reservoir ~k seq] draws a uniform [k]-element sample of the stream
    in one pass (Vitter's Algorithm R), deterministically in [seed]
    (default [20190301L]).  Streams shorter than [k] are returned whole.
    Shared by dictionary training ({!Compress.train} callers) and the
    bench arms so both see the same sample.
    @raise Invalid_argument when [k < 1]. *)

val training_sample : ?seed:int64 -> ?k:int -> t -> string array
(** {!reservoir} over this stream's key universe ([k] defaults to
    4096) — the sample a compression dictionary is trained on. *)

(** {1 Corpus-construction internals}

    The letter-frequency vocabulary model shared with {!Ngram}, exposed so
    the corpus generator and this stream build keys from one
    implementation instead of two copies of the Zipf wiring. *)

val build_vocabulary : Mt19937_64.t -> int -> string array
(** [build_vocabulary rng size] draws [size] distinct words (2–10 letters,
    English letter frequencies). *)

val add_key :
  Buffer.t ->
  Mt19937_64.t ->
  vocab:string array ->
  zipf:Zipf.t ->
  min_words:int ->
  max_words:int ->
  unit
(** Append one n-gram key — Zipf-sampled vocabulary words joined by
    spaces, a tab, and a 4-digit year — to the buffer (cleared first). *)
