(* Synthetic Google-Books-style n-gram corpus.  The letter-frequency
   vocabulary model and the key construction live in {!Keystream} (shared
   with the network load generator); this module adds the value encoding
   and the (key, value) pair stream.  The draw order below is unchanged
   from the pre-Keystream implementation, so seeded corpora are
   byte-identical across the refactor. *)

let generate ?(seed = 20190301L) ?(vocab_size = 8192) ?(min_words = 2)
    ?(max_words = 5) ~n () =
  if n < 0 then invalid_arg "Ngram.generate: n must be non-negative";
  if min_words < 1 || max_words < min_words then
    invalid_arg "Ngram.generate: need 1 <= min_words <= max_words";
  let rng = Mt19937_64.create seed in
  let vocab = Keystream.build_vocabulary rng vocab_size in
  let zipf = Zipf.create ~n:vocab_size ~s:1.07 in
  let buf = Buffer.create 64 in
  let make_key () =
    Keystream.add_key buf rng ~vocab ~zipf ~min_words ~max_words;
    Buffer.contents buf
  in
  let make_value () =
    (* Book count (20 bits) and total occurrences (44 bits), as in the
       corpus where both counts are encoded into the stored value. *)
    let books = Int64.of_int (1 + Mt19937_64.next_below rng 1000) in
    let occurrences = Int64.of_int (1 + Mt19937_64.next_below rng 1000000) in
    Int64.logor (Int64.shift_left books 44) occurrences
  in
  let seen = Hashtbl.create (2 * n) in
  let out = Array.make (max n 1) ("", 0L) in
  let filled = ref 0 in
  while !filled < n do
    let k = make_key () in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      out.(!filled) <- (k, make_value ());
      incr filled
    end
  done;
  if n = 0 then [||] else out

let average_key_length pairs =
  if Array.length pairs = 0 then 0.0
  else
    let total =
      Array.fold_left (fun acc (k, _) -> acc + String.length k) 0 pairs
    in
    float_of_int total /. float_of_int (Array.length pairs)
