(* English letter frequencies (per mille), used to draw word characters so
   that byte distributions are skewed like natural text.  Moved here from
   ngram.ml so the corpus generator and the popularity stream share one
   vocabulary model. *)
let letter_weights =
  [| ('e', 127); ('t', 91); ('a', 82); ('o', 75); ('i', 70); ('n', 67);
     ('s', 63); ('h', 61); ('r', 60); ('d', 43); ('l', 40); ('c', 28);
     ('u', 28); ('m', 24); ('w', 24); ('f', 22); ('g', 20); ('y', 20);
     ('p', 19); ('b', 15); ('v', 10); ('k', 8); ('j', 2); ('x', 2);
     ('q', 1); ('z', 1) |]

let letter_cdf =
  let total = Array.fold_left (fun acc (_, w) -> acc + w) 0 letter_weights in
  let acc = ref 0 in
  Array.map
    (fun (c, w) ->
      acc := !acc + w;
      (c, float_of_int !acc /. float_of_int total))
    letter_weights

let sample_letter rng =
  let u = Mt19937_64.next_float rng in
  let rec find i =
    let c, cum = letter_cdf.(i) in
    if u <= cum || i = Array.length letter_cdf - 1 then c else find (i + 1)
  in
  find 0

let random_word rng =
  let len = 2 + Mt19937_64.next_below rng 9 in
  String.init len (fun _ -> sample_letter rng)

let build_vocabulary rng size =
  let seen = Hashtbl.create (2 * size) in
  let words = Array.make size "" in
  let filled = ref 0 in
  while !filled < size do
    let w = random_word rng in
    if not (Hashtbl.mem seen w) then begin
      Hashtbl.add seen w ();
      words.(!filled) <- w;
      incr filled
    end
  done;
  words

let add_key buf rng ~vocab ~zipf ~min_words ~max_words =
  Buffer.clear buf;
  let words = min_words + Mt19937_64.next_below rng (max_words - min_words + 1) in
  for w = 0 to words - 1 do
    if w > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf vocab.(Zipf.sample zipf rng)
  done;
  Buffer.add_char buf '\t';
  Buffer.add_string buf (string_of_int (1800 + Mt19937_64.next_below rng 209))

(* ---- the popularity stream ------------------------------------------- *)

type t = {
  keys : string array;  (* rank order: keys.(0) is the hottest *)
  rank_zipf : Zipf.t;  (* popularity over ranks *)
  rng : Mt19937_64.t;  (* internal sampler for [next] *)
}

let create ?(seed = 20190301L) ?(vocab_size = 8192) ?(min_words = 2)
    ?(max_words = 5) ?(s = 0.99) ~n () =
  if n < 1 then invalid_arg "Keystream.create: n must be positive";
  if min_words < 1 || max_words < min_words then
    invalid_arg "Keystream.create: need 1 <= min_words <= max_words";
  if s < 0.0 then invalid_arg "Keystream.create: s must be non-negative";
  let rng = Mt19937_64.create seed in
  let vocab = build_vocabulary rng vocab_size in
  (* the corpus vocabulary skew is the paper's 1.07, independent of the
     rank-popularity exponent [s] *)
  let vocab_zipf = Zipf.create ~n:vocab_size ~s:1.07 in
  let buf = Buffer.create 64 in
  let seen = Hashtbl.create (2 * n) in
  let keys = Array.make n "" in
  let filled = ref 0 in
  while !filled < n do
    add_key buf rng ~vocab ~zipf:vocab_zipf ~min_words ~max_words;
    let k = Buffer.contents buf in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      keys.(!filled) <- k;
      incr filled
    end
  done;
  { keys; rank_zipf = Zipf.create ~n ~s; rng }

let size t = Array.length t.keys

let rank_key t r =
  if r < 0 || r >= Array.length t.keys then
    invalid_arg "Keystream.rank_key: rank out of range";
  t.keys.(r)

let keys t = Array.copy t.keys
let sample_rank t rng = Zipf.sample t.rank_zipf rng
let sample t rng = t.keys.(sample_rank t rng)
let next t = sample t t.rng

(* ---- deterministic key sampling --------------------------------------- *)

(* Vitter's Algorithm R: one pass, O(k) memory, every element of the
   stream kept with probability k/n.  Seeded so that dictionary training
   (Compress.train) and the bench arms draw the same sample. *)
let reservoir ?(seed = 20190301L) ~k seq =
  if k < 1 then invalid_arg "Keystream.reservoir: k must be positive";
  let rng = Mt19937_64.create seed in
  let res = Array.make k "" in
  let n = ref 0 in
  Seq.iter
    (fun x ->
      if !n < k then res.(!n) <- x
      else begin
        let j = Mt19937_64.next_below rng (!n + 1) in
        if j < k then res.(j) <- x
      end;
      incr n)
    seq;
  if !n >= k then res else Array.sub res 0 !n

let training_sample ?seed ?(k = 4096) t =
  reservoir ?seed ~k (Array.to_seq t.keys)
