let of_u64 x =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 x;
  (* SAFETY: [b] is freshly allocated, fully written, and never mutated or
     aliased after this conversion. *)
  Bytes.unsafe_to_string b

let to_u64 s =
  if String.length s <> 8 then invalid_arg "Key_codec.to_u64: need 8 bytes";
  String.get_int64_be s 0

let of_i64 x = of_u64 (Int64.logxor x Int64.min_int)
let to_i64 s = Int64.logxor (to_u64 s) Int64.min_int

let of_u32 x =
  let b = Bytes.create 4 in
  Bytes.set_int32_be b 0 x;
  (* SAFETY: [b] is freshly allocated, fully written, and never mutated or
     aliased after this conversion. *)
  Bytes.unsafe_to_string b

let to_u32 s =
  if String.length s <> 4 then invalid_arg "Key_codec.to_u32: need 4 bytes";
  String.get_int32_be s 0

let reverse_bytes s =
  let n = String.length s in
  String.init n (fun i -> s.[n - 1 - i])

let compare_binary = String.compare
