(** Racecheck — typedtree lock-discipline and domain-safety analyzer.

    Runs over the [-bin-annot] [.cmt] files the normal [dune build]
    emits (compiler-libs.common, no new dependency), falling back to
    re-typechecking standalone sources for fixture tests.  Rule ids:

    - [racecheck-guarded]: a non-[Atomic.t] mutable record field in the
      concurrent scope lacks a [@guarded_by lock] annotation (and a
      justified [unguarded] allow entry); a read/write of a guarded
      field outside a [Mutex.lock]/[Mutex.protect]/lock-wrapper region
      of its lock; a call to a [@@requires_lock "tok"] function without
      the lock held; a malformed annotation payload.
    - [racecheck-escape]: mutable state (fields, arrays, [Bytes.t])
      captured by a closure literal passed to [Domain.spawn] /
      [Thread.create] and written with no lock held.
    - [racecheck-blocking]: a blocking call (transitive callgraph
      closure over [Unix.*], [Condition.wait], [Thread.join]/[delay],
      [Domain.join]) while holding a lock declared [nonblocking] in the
      allow-list.  [Condition.wait c m] with [m] the only such lock
      held is the sanctioned exception.
    - [racecheck-order]: a cycle in the lock-order graph built from
      nested acquisitions, or an acquisition edge not covered by the
      sanctioned [lockorder] hierarchy.
    - [racecheck-unavailable]: a unit in scope has no [.cmt] (run
      [dune build] first) or a fixture fails to typecheck.

    Lock and field tokens are normalized paths such as [Store.t.locks]
    or [Persist.t.lock]: compilation-unit name (dune wrapper manglings
    stripped), then module/type/field path.  Annotations:

    - [mutable f : ty [@guarded_by lock]] — field [f] is protected by
      the mutex field [lock] of the same record (or, with a string
      payload, by the named token: ["Persist.t.lock"]).
    - [let f ... = ... [@@requires_lock "tok"]] — body assumes the lock
      is held; call sites are checked.
    - [let with_x t f = ... [@@lock_wrapper "tok"]] — calling it
      acquires the token around its last literal-lambda argument. *)

val run :
  ?allow:Lint.allow -> root:string -> string list -> Lint.violation list
(** Analyze every built unit whose source lives under the given paths
    (relative to [root]), using the [.cmt] files under
    [root/_build/default/lib].  Sources in scope with no [.cmt] each
    yield one [racecheck-unavailable] violation.  The concurrent scope
    (where undeclared mutable fields are violations) is the dune
    closure of [hyperion_shard] and [hyperion_net]. *)

val available : root:string -> bool
(** Whether a [_build/default/lib] tree exists to analyze at all. *)

val check_source :
  ?allow:Lint.allow -> file:string -> string -> Lint.violation list
(** Analyze one standalone compilation unit given as source text, by
    re-typechecking it against the installed stdlib (plus the unix and
    threads cmis when present).  The unit is treated as concurrent.
    Used by fixture tests and seeded-violation CI proofs. *)
