(* Racecheck — typedtree lock-discipline and domain-safety analyzer
   (ISSUE 10 tentpole).

   Works on the [-bin-annot] [.cmt] files the normal dune build already
   emits (compiler-libs.common, no new dependency), falling back to
   re-typechecking standalone sources for fixture tests.  Four rule
   families, all reported with the shared [Lint.violation] shape:

   - [racecheck-guarded]   every non-[Atomic.t] mutable record field in
     the concurrent scope (the dune closure of [hyperion_shard] and
     [hyperion_net]) carries a [@guarded_by lock] annotation or a
     justified [unguarded] allow entry; every read/write of a guarded
     field must be lexically inside a [Mutex.lock]/[Mutex.protect]/
     lock-wrapper region of that lock.  [@@requires_lock "tok"] marks a
     function whose body assumes the lock; its callers must hold it.
     [@@lock_wrapper "tok"] marks a with_lock-style combinator: the last
     literal-lambda argument is analyzed with the token held.
   - [racecheck-escape]    non-[Atomic.t] mutable state ([mutable]
     fields, arrays, [Bytes.t]) captured by a closure literal passed to
     [Domain.spawn]/[Thread.create] and written without a lock held.
   - [racecheck-blocking]  no blocking call (transitive callgraph
     closure over [Unix.*], [Condition.wait], [Thread.join]/[delay],
     [Domain.join]) while holding a lock declared [nonblocking] in
     lint.allow (arena mutexes, mailbox mutexes).  Waiting on a condvar
     of the held lock itself is the one sanctioned shape.
   - [racecheck-order]     the lock-order graph built from lexically
     nested acquisitions (and acquire-closures of calls made under a
     lock) must be acyclic, and every edge must be covered by the
     sanctioned [lockorder] hierarchy in lint.allow.

   A unit that cannot be analyzed (missing [.cmt]) yields a single
   [racecheck-unavailable] violation so CI cannot silently skip the
   pass.

   Token identity: locks and fields are named by normalized paths such
   as [Store.t.locks] or [Persist.t.lock] — the compilation-unit name
   (wrapped-library manglings like [Hyperion__Store] and library
   wrapper prefixes like [Hyperion.] are stripped) followed by the
   module path, type and field inside the unit.  The same spelling is
   used by annotations, allow entries and diagnostics. *)

module SS = Set.Make (String)
module SM = Map.Make (String)

type violation = Lint.violation = {
  v_file : string;
  v_line : int;
  v_rule : string;
  v_msg : string;
}

(* ---- attribute helpers ----------------------------------------------- *)

let attr_named name (attrs : Parsetree.attributes) =
  List.find_opt (fun (a : Parsetree.attribute) -> a.attr_name.txt = name) attrs

let string_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let ident_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_ident { txt = Longident.Lident s; _ }; _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

(* ---- path normalization ---------------------------------------------- *)

(* "Hyperion__Store" -> Some "Store"; "Persist__" -> Some ""; plain -> None *)
let dunder_suffix s =
  let n = String.length s in
  let rec last i = if i < 0 then None else
      if i + 1 < n && s.[i] = '_' && s.[i + 1] = '_' then Some (i + 2)
      else last (i - 1)
  in
  match last (n - 2) with
  | Some j -> Some (String.sub s j (n - j))
  | None -> None

let map_component s = match dunder_suffix s with Some s' -> s' | None -> s

type unit_ctx = {
  u_name : string;  (* capitalized compilation-unit name, e.g. "Store" *)
  u_file : string;  (* repo-relative source path *)
  u_concurrent : bool;
  (* module aliases ([module Sh = Hyperion_shard]) and canonical names of
     unit-toplevel (and nested-module-toplevel) values, modules, types,
     keyed by [Ident.unique_name]. *)
  u_aliases : (string, string) Hashtbl.t;
  u_topnames : (string, string) Hashtbl.t;
}

(* Library wrapper modules (generated alias-only modules such as
   [Hyperion]): a path head to strip when a longer path follows.
   [Stdlib] behaves the same way ([Stdlib.Array.get]). *)
let norm_path ctx wrappers p =
  let rec flat p acc =
    match p with
    | Path.Pident id -> (Some id, acc)
    | Path.Pdot (p, s) -> flat p (s :: acc)
    | Path.Papply (p, _) -> flat p acc
    | Path.Pextra_ty (p, _) -> flat p acc
  in
  let head, rest = flat p [] in
  let rest = List.map map_component rest in
  let comps =
    match head with
    | None -> rest
    | Some id -> (
        let raw = Ident.name id in
        let name = map_component raw in
        if name = "" then rest (* generated "Lib__" alias module *)
        else if Ident.persistent id || Ident.global id then
          if (name = "Stdlib" || SS.mem name wrappers) && rest <> [] then rest
          else name :: rest
        else
          let key = Ident.unique_name id in
          match Hashtbl.find_opt ctx.u_aliases key with
          | Some target -> String.split_on_char '.' target @ rest
          | None -> (
              match Hashtbl.find_opt ctx.u_topnames key with
              | Some canon -> String.split_on_char '.' canon @ rest
              | None -> ctx.u_name :: name :: rest))
  in
  String.concat "." comps

let type_token ctx wrappers (ty : Types.type_expr) =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some (norm_path ctx wrappers p)
  | _ -> None

(* Guard token of a field at a use site, from the label description the
   typechecker resolved (works cross-module via the cmi). *)
let guarded_of_label ctx wrappers (lbl : Types.label_description) =
  match attr_named "guarded_by" lbl.lbl_attributes with
  | None -> None
  | Some a -> (
      match string_payload a with
      | Some s -> Some s
      | None -> (
          match ident_payload a with
          | Some f -> (
              match type_token ctx wrappers lbl.lbl_res with
              | Some t -> Some (t ^ "." ^ f)
              | None -> Some f)
          | None -> Some "<bad guarded_by payload>"))

(* ---- global analysis state ------------------------------------------- *)

type fn_sum = {
  mutable fs_calls : SS.t;
  mutable fs_acquires : SS.t;
  mutable fs_blocking : bool;
}

type gstate = {
  allow : Lint.allow;
  wrappers : SS.t;  (* library wrapper module names *)
  g_requires : (string, string) Hashtbl.t;  (* fn -> token *)
  g_wrapfns : (string, string) Hashtbl.t;  (* fn -> token *)
  sums : (string, fn_sum) Hashtbl.t;
  mutable blocking_closure : SS.t;
  mutable acquire_closure : SS.t SM.t;
  nonblocking : SS.t;
  (* (outer, inner, file, line), lexical and closure-derived *)
  mutable edges : (string * string * string * int) list;
  mutable viol : violation list;
}

let report g file line rule fmt =
  Printf.ksprintf
    (fun msg ->
      g.viol <- { v_file = file; v_line = line; v_rule = rule; v_msg = msg } :: g.viol)
    fmt

let line_of (loc : Location.t) = loc.loc_start.pos_lnum

let sum_for g fn =
  match Hashtbl.find_opt g.sums fn with
  | Some s -> s
  | None ->
      let s = { fs_calls = SS.empty; fs_acquires = SS.empty; fs_blocking = false } in
      Hashtbl.add g.sums fn s;
      s

(* Direct blocking calls: the roots of the blocking-effect closure.
   Monotonic-clock reads are excluded — they are syscalls but not
   latency cliffs, and the telemetry spans sit inside arena sections. *)
let nonblocking_syscalls =
  SS.of_list [ "Unix.gettimeofday"; "Unix.getpid"; "Unix.time" ]

let blocking_name n =
  if SS.mem n nonblocking_syscalls then false
  else
    let head = match String.index_opt n '.' with
      | Some i -> String.sub n 0 i
      | None -> n
    in
    head = "Unix" || head = "UnixLabels"
    || n = "Condition.wait" || n = "Thread.delay" || n = "Thread.join"
    || n = "Thread.yield" || n = "Domain.join"

let spawn_name n = n = "Domain.spawn" || n = "Thread.create"

(* Array/bytes mutation primitives and the 0-based index (among the
   supplied arguments) of the mutated value, for the escape analysis.
   [a.(i) <- v] and [b.[i] <- c] desugar to these.  Writes only: a read
   of a captured array slot is benign when every writer is checked. *)
let mutating_target_index = function
  | "Array.set" | "Array.unsafe_set" | "Array.fill" | "Bytes.set"
  | "Bytes.unsafe_set" | "Bytes.fill" | "Bytes.set_uint8"
  | "Bytes.set_uint16_le" | "Bytes.set_int32_le" | "Bytes.set_int64_le" ->
      Some 0
  | "Array.blit" | "Bytes.blit" | "Bytes.unsafe_blit" | "Bytes.blit_string"
  | "String.blit" ->
      Some 2
  | _ -> None

(* ---- per-expression environment -------------------------------------- *)

type env = {
  held : (string * int) list;  (* token, acquisition line; innermost first *)
  bound : SS.t;  (* unique_names of locally bound idents in this toplevel fn *)
  spawn_outer : SS.t option;  (* Some outer-bound set inside a spawn thunk *)
  aliases : string SM.t;  (* local ident unique_name -> lock token *)
  fn : string;  (* canonical name of the enclosing toplevel binding *)
}

type mode = Collect | Check

let held_has env tok = List.exists (fun (t, _) -> t = tok) env.held
let add_held env tok line = { env with held = (tok, line) :: env.held }
let drop_held env tok =
  { env with held = List.filter (fun (t, _) -> t <> tok) env.held }

let bind_idents env ids =
  {
    env with
    bound = List.fold_left (fun s id -> SS.add (Ident.unique_name id) s) env.bound ids;
  }

let captured env id =
  match env.spawn_outer with
  | None -> false
  | Some outer -> SS.mem (Ident.unique_name id) outer

(* intersection of held sets after a branch join *)
let join_held envs base =
  match envs with
  | [] -> base
  | e0 :: rest ->
      let keep (t, _) = List.for_all (fun e -> held_has e t) rest in
      { base with held = List.filter keep e0.held }

(* ---- the walker ------------------------------------------------------- *)

let rec walk g u mode env (e : Typedtree.expression) : env =
  let loc = line_of e.exp_loc in
  match e.exp_desc with
  | Texp_sequence (a, b) ->
      let env1 = walk g u mode env a in
      walk g u mode env1 b
  | Texp_let (_, vbs, body) ->
      let env' =
        List.fold_left
          (fun env (vb : Typedtree.value_binding) ->
            let _ = walk g u mode env vb.vb_expr in
            let env = bind_idents env (Typedtree.pat_bound_idents vb.vb_pat) in
            match (vb.vb_pat.pat_desc, lock_token g u env vb.vb_expr) with
            | Tpat_var (id, _), Some tok
              when is_mutex_type g u vb.vb_expr.exp_type ->
                { env with aliases = SM.add (Ident.unique_name id) tok env.aliases }
            | _ -> env)
          env vbs
      in
      walk g u mode env' body
  | Texp_function { cases; _ } ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          let env_c = bind_idents env (Typedtree.pat_bound_idents c.c_lhs) in
          (match c.c_guard with Some gd -> ignore (walk g u mode env_c gd) | None -> ());
          ignore (walk g u mode env_c c.c_rhs))
        cases;
      env
  | Texp_match (scrut, cases, _) ->
      let env1 = walk g u mode env scrut in
      let finals =
        List.map
          (fun (c : Typedtree.computation Typedtree.case) ->
            let env_c = bind_idents env1 (Typedtree.pat_bound_idents c.c_lhs) in
            (match c.c_guard with Some gd -> ignore (walk g u mode env_c gd) | None -> ());
            walk g u mode env_c c.c_rhs)
          cases
      in
      join_held finals env1
  | Texp_try (b, cases) ->
      let envb = walk g u mode env b in
      let finals =
        List.map
          (fun (c : Typedtree.value Typedtree.case) ->
            let env_c = bind_idents env (Typedtree.pat_bound_idents c.c_lhs) in
            walk g u mode env_c c.c_rhs)
          cases
      in
      join_held (envb :: finals) env
  | Texp_ifthenelse (c, a, b) ->
      let env1 = walk g u mode env c in
      let ea = walk g u mode env1 a in
      let eb = match b with Some b -> walk g u mode env1 b | None -> env1 in
      join_held [ ea; eb ] env1
  | Texp_while (c, body) ->
      let env1 = walk g u mode env c in
      ignore (walk g u mode env1 body);
      env
  | Texp_for (id, _, lo, hi, _, body) ->
      let env1 = walk g u mode env lo in
      let env2 = walk g u mode env1 hi in
      ignore (walk g u mode (bind_idents env2 [ id ]) body);
      env
  | Texp_field (b, _, lbl) ->
      check_access g u mode env ~write:false b lbl loc;
      walk g u mode env b
  | Texp_setfield (b, _, lbl, v) ->
      check_access g u mode env ~write:true b lbl loc;
      let env1 = walk g u mode env b in
      walk g u mode env1 v
  | Texp_apply (fn, args) -> walk_apply g u mode env e fn args loc
  | _ ->
      iter_children g u mode env e;
      env

and iter_children g u mode env e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ ce -> ignore (walk g u mode env ce));
    }
  in
  Tast_iterator.default_iterator.expr it e

and is_mutex_type g u ty =
  match type_token u g.wrappers ty with Some "Mutex.t" -> true | _ -> false

(* Resolve the lock token an expression denotes: a mutex-typed field
   ([t.lock], [mb.mm]), a local alias ([let lock = t.locks.(i)]), an
   element of a mutex-array field, a unit-toplevel or global mutex. *)
and lock_token g u env (e : Typedtree.expression) : string option =
  match e.exp_desc with
  | Texp_field (_, _, lbl) -> (
      match type_token u g.wrappers lbl.lbl_res with
      | Some t -> Some (t ^ "." ^ lbl.lbl_name)
      | None -> None)
  | Texp_ident (Path.Pident id, _, _) -> (
      let key = Ident.unique_name id in
      match SM.find_opt key env.aliases with
      | Some tok -> Some tok
      | None -> Hashtbl.find_opt u.u_topnames key)
  | Texp_ident (p, _, _) -> Some (norm_path u g.wrappers p)
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when (match norm_path u g.wrappers p with
         | "Array.get" | "Array.unsafe_get" -> true
         | _ -> false) -> (
      match args with
      | (_, Some a) :: _ -> lock_token g u env a
      | _ -> None)
  | _ -> None

and callee_name g u p = norm_path u g.wrappers p

(* an acquisition of [tok] at [line] while [env.held] — record order edges *)
and note_acquire g u env tok line =
  List.iter (fun (h, _) -> g.edges <- (h, tok, u.u_file, line) :: g.edges) env.held;
  if SS.mem tok g.nonblocking then
    Lint.mark_used g.allow [ "nonblocking"; tok ]

and blocking_check g u env callee line =
  let nb = List.filter (fun (t, _) -> SS.mem t g.nonblocking) env.held in
  if nb <> [] then
    let is_blocking =
      blocking_name callee || SS.mem callee g.blocking_closure
    in
    if is_blocking
       && not (Lint.allowed g.allow [ "blocking"; u.u_file; callee ])
    then
      let t, al = List.hd nb in
      report g u.u_file line "racecheck-blocking"
        "blocking call %s while holding nonblocking-class lock %s (acquired \
         line %d)"
        callee t al

and walk_apply g u mode env _e fn args loc =
  let named =
    match fn.exp_desc with
    | Texp_ident (p, _, _) -> Some (callee_name g u p)
    | _ ->
        ignore (walk g u mode env fn);
        None
  in
  let walk_args ?(skip = []) env =
    List.iter
      (fun (_, arg) ->
        match arg with
        | Some (a : Typedtree.expression) when not (List.memq a skip) ->
            ignore (walk g u mode env a)
        | _ -> ())
      args
  in
  let first_arg () =
    match List.filter_map (fun (_, a) -> a) args with a :: _ -> Some a | [] -> None
  in
  match named with
  | None ->
      walk_args env;
      env
  | Some "Mutex.lock" -> (
      match first_arg () with
      | Some a -> (
          ignore (walk g u mode env a);
          match lock_token g u env a with
          | Some tok ->
              (match mode with
              | Collect ->
                  (sum_for g env.fn).fs_acquires <-
                    SS.add tok (sum_for g env.fn).fs_acquires
              | Check ->
                  if held_has env tok then
                    report g u.u_file loc "racecheck-order"
                      "lock %s acquired while already held (self-deadlock)" tok
                  else note_acquire g u env tok loc);
              add_held env tok loc
          | None -> env)
      | None -> env)
  | Some "Mutex.unlock" -> (
      match first_arg () with
      | Some a -> (
          ignore (walk g u mode env a);
          match lock_token g u env a with
          | Some tok -> drop_held env tok
          | None -> env)
      | None -> env)
  | Some "Condition.wait" ->
      (* Condition.wait c m releases m while waiting: sanctioned iff m is
         the only nonblocking-class lock held. *)
      (if mode = Check then
         let m_tok =
           match args with
           | [ _; (_, Some m) ] -> lock_token g u env m
           | _ -> None
         in
         let nb = List.filter (fun (t, _) -> SS.mem t g.nonblocking) env.held in
         match nb with
         | [] -> ()
         | [ (t, _) ] when Some t = m_tok -> ()
         | (t, al) :: _ ->
             if not (Lint.allowed g.allow [ "blocking"; u.u_file; "Condition.wait" ])
             then
               report g u.u_file loc "racecheck-blocking"
                 "Condition.wait while holding nonblocking-class lock %s \
                  (acquired line %d) that is not the wait mutex"
                 t al);
      if mode = Collect then (sum_for g env.fn).fs_blocking <- true;
      walk_args env;
      env
  | Some callee when spawn_name callee ->
      (* literal thunks run on a fresh domain/thread: empty lock context,
         captured locals become shared state *)
      let thunks =
        List.filter_map
          (fun (_, a) ->
            match a with
            | Some ({ Typedtree.exp_desc = Texp_function _; _ } as a) -> Some a
            | _ -> None)
          args
      in
      List.iter
        (fun th ->
          let spawn_env =
            {
              env with
              held = [];
              spawn_outer = Some env.bound;
              fn = (match mode with Collect -> "<spawned>" | Check -> env.fn);
            }
          in
          ignore (walk g u mode spawn_env th))
        thunks;
      walk_args ~skip:thunks env;
      env
  | Some callee ->
      let wrapper_tok =
        match Hashtbl.find_opt g.g_wrapfns callee with
        | Some t -> Some t
        | None -> if callee = "Mutex.protect" then
            (match first_arg () with
             | Some a -> lock_token g u env a
             | None -> None)
          else None
      in
      (match mode with
      | Collect ->
          let s = sum_for g env.fn in
          s.fs_calls <- SS.add callee s.fs_calls;
          if blocking_name callee then s.fs_blocking <- true;
          (match wrapper_tok with
          | Some t -> s.fs_acquires <- SS.add t s.fs_acquires
          | None -> ())
      | Check -> (
          (match Hashtbl.find_opt g.g_requires callee with
          | Some tok when not (held_has env tok) ->
              report g u.u_file loc "racecheck-guarded"
                "call to %s requires lock %s to be held" callee tok
          | _ -> ());
          blocking_check g u env callee loc;
          (* array/bytes writes on spawn-captured roots with no lock *)
          (match mutating_target_index callee with
          | Some idx when env.spawn_outer <> None && env.held = [] -> (
              let present = List.filter_map (fun (_, a) -> a) args in
              match List.nth_opt present idx with
              | Some target -> (
                  match root_ident target with
                  | Some id when captured env id ->
                      if
                        not
                          (Lint.allowed g.allow
                             [ "escape"; u.u_file; Ident.name id ])
                      then
                        report g u.u_file loc "racecheck-escape"
                          "%s on %s captured by a Domain.spawn/Thread.create \
                           closure with no lock held"
                          callee (Ident.name id)
                  | _ -> ())
              | None -> ())
          | _ -> ());
          (* acquisitions the callee performs, for the order graph *)
          (match SM.find_opt callee g.acquire_closure with
          | Some toks ->
              SS.iter
                (fun t ->
                  if not (held_has env t) then note_acquire g u env t loc)
                toks
          | None -> ());
          match wrapper_tok with
          | Some t -> note_acquire g u env t loc
          | None -> ()));
      (* a lock wrapper runs its last literal lambda under the token *)
      (match wrapper_tok with
      | Some tok -> (
          let lambdas =
            List.filter_map
              (fun (_, a) ->
                match a with
                | Some ({ Typedtree.exp_desc = Texp_function _; _ } as a) ->
                    Some a
                | _ -> None)
              args
          in
          match List.rev lambdas with
          | last :: _ ->
              let held_env = add_held env tok loc in
              ignore (walk g u mode held_env last);
              walk_args ~skip:[ last ] env
          | [] -> walk_args env)
      | None -> walk_args env);
      env

(* guarded-by discipline at a field read/write; escape analysis for
   spawn-captured mutable state *)
and check_access g u mode env ~write (base : Typedtree.expression)
    (lbl : Types.label_description) line =
  if mode = Check then begin
    let tytok = type_token u g.wrappers lbl.lbl_res in
    let key =
      match tytok with
      | Some t -> t ^ "." ^ lbl.lbl_name
      | None -> lbl.lbl_name
    in
    match guarded_of_label u g.wrappers lbl with
    | Some tok ->
        if not (held_has env tok) then
          if (not write)
             && Lint.allowed g.allow [ "racy-read"; u.u_file; key ]
          then ()
          else
            report g u.u_file line "racecheck-guarded"
              "%s of field %s guarded by %s outside its lock region"
              (if write then "write" else "read")
              key tok
    | None ->
        if lbl.lbl_mut = Mutable && write && env.spawn_outer <> None
           && env.held = []
        then
          match root_ident base with
          | Some id when captured env id ->
              if not (Lint.allowed g.allow [ "escape"; u.u_file; Ident.name id ])
                 && not (Lint.allowed g.allow [ "unguarded"; u.u_file; key ])
              then
                report g u.u_file line "racecheck-escape"
                  "write to mutable field %s of %s captured by a \
                   Domain.spawn/Thread.create closure with no lock held"
                  key (Ident.name id)
          | _ -> ()
  end

and root_ident (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some id
  | Texp_field (b, _, _) -> root_ident b
  | Texp_apply ({ exp_desc = Texp_ident _; _ }, args) -> (
      match List.filter_map (fun (_, a) -> a) args with
      | a :: _ -> root_ident a
      | [] -> None)
  | _ -> None

(* ---- structure walking ------------------------------------------------ *)

let vb_name (vb : Typedtree.value_binding) =
  match vb.vb_pat.pat_desc with
  | Tpat_var (id, _) -> Some id
  | _ -> None

let canon u stack name = String.concat "." (u.u_name :: List.rev_append stack [ name ])

(* Pass 0: attributes, declarations, canonical name tables. *)
let scan_unit g u (str : Typedtree.structure) =
  let rec scan_items stack items =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                match vb_name vb with
                | None -> ()
                | Some id ->
                    let cname = canon u stack (Ident.name id) in
                    Hashtbl.replace u.u_topnames (Ident.unique_name id) cname;
                    (match attr_named "requires_lock" vb.vb_attributes with
                    | Some a -> (
                        match string_payload a with
                        | Some tok -> Hashtbl.replace g.g_requires cname tok
                        | None ->
                            report g u.u_file (line_of vb.vb_loc)
                              "racecheck-guarded"
                              "requires_lock on %s needs a string literal \
                               lock token"
                              cname)
                    | None -> ());
                    (match attr_named "lock_wrapper" vb.vb_attributes with
                    | Some a -> (
                        match string_payload a with
                        | Some tok -> Hashtbl.replace g.g_wrapfns cname tok
                        | None ->
                            report g u.u_file (line_of vb.vb_loc)
                              "racecheck-guarded"
                              "lock_wrapper on %s needs a string literal \
                               lock token"
                              cname)
                    | None -> ()))
              vbs
        | Tstr_module mb -> scan_module stack mb
        | Tstr_recmodule mbs -> List.iter (scan_module stack) mbs
        | Tstr_type (_, decls) ->
            List.iter
              (fun (d : Typedtree.type_declaration) ->
                let tname = canon u stack d.typ_name.txt in
                Hashtbl.replace u.u_topnames (Ident.unique_name d.typ_id) tname;
                scan_type_decl stack tname d)
              decls
        | _ -> ())
      items
  and scan_module stack (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    (match mb.mb_id with
    | Some id ->
        Hashtbl.replace u.u_topnames (Ident.unique_name id) (canon u stack name)
    | None -> ());
    let rec expr stack (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> scan_items stack s.str_items
      | Tmod_constraint (me, _, _, _) -> expr stack me
      | Tmod_ident (p, _) -> (
          match mb.mb_id with
          | Some id ->
              Hashtbl.replace u.u_aliases (Ident.unique_name id)
                (norm_path u g.wrappers p)
          | None -> ())
      | _ -> ()
    in
    expr (name :: stack) mb.mb_expr
  and scan_type_decl _stack tname (d : Typedtree.type_declaration) =
    let atomic (ct : Typedtree.core_type) =
      (* record label types come wrapped in Ttyp_poly, even monomorphic *)
      let rec unwrap (ct : Typedtree.core_type) =
        match ct.ctyp_desc with
        | Ttyp_poly (_, inner) -> unwrap inner
        | d -> d
      in
      match unwrap ct with
      | Ttyp_constr (p, _, _) -> norm_path u g.wrappers p = "Atomic.t"
      | _ -> false
    in
    let labels prefix lds =
      List.iter
        (fun (ld : Typedtree.label_declaration) ->
          if ld.ld_mutable = Mutable && not (atomic ld.ld_type) then begin
            let key = tname ^ "." ^ prefix ^ ld.ld_name.txt in
            match attr_named "guarded_by" ld.ld_attributes with
            | Some _ -> ()
            | None ->
                if u.u_concurrent
                   && not (Lint.allowed g.allow [ "unguarded"; u.u_file; key ])
                then
                  report g u.u_file (line_of ld.ld_loc) "racecheck-guarded"
                    "mutable field %s is not Atomic.t, has no [@guarded_by] \
                     annotation and no justified 'unguarded' allow entry"
                    key
          end)
        lds
    in
    match d.typ_kind with
    | Ttype_record lds -> labels "" lds
    | Ttype_variant cds ->
        List.iter
          (fun (cd : Typedtree.constructor_declaration) ->
            match cd.cd_args with
            | Cstr_record lds -> labels (cd.cd_name.txt ^ ".") lds
            | Cstr_tuple _ -> ())
          cds
    | _ -> ()
  in
  scan_items [] str.str_items

(* Pass 1 (Collect) / pass 2 (Check): walk every toplevel binding body. *)
let walk_unit g u mode (str : Typedtree.structure) =
  let rec items stack is =
    List.iter
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun (vb : Typedtree.value_binding) ->
                let fn =
                  match vb_name vb with
                  | Some id -> canon u stack (Ident.name id)
                  | None -> canon u stack "_"
                in
                let requires =
                  match Hashtbl.find_opt g.g_requires fn with
                  | Some tok -> [ (tok, line_of vb.vb_loc) ]
                  | None -> []
                in
                let env =
                  {
                    held = requires;
                    bound = SS.empty;
                    spawn_outer = None;
                    aliases = SM.empty;
                    fn;
                  }
                in
                ignore (walk g u mode env vb.vb_expr))
              vbs
        | Tstr_module mb -> module_ stack mb
        | Tstr_recmodule mbs -> List.iter (module_ stack) mbs
        | Tstr_eval (e, _) ->
            let env =
              { held = []; bound = SS.empty; spawn_outer = None;
                aliases = SM.empty; fn = canon u stack "_" }
            in
            ignore (walk g u mode env e)
        | _ -> ())
      is
  and module_ stack (mb : Typedtree.module_binding) =
    let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
    let rec expr (me : Typedtree.module_expr) =
      match me.mod_desc with
      | Tmod_structure s -> items (name :: stack) s.str_items
      | Tmod_constraint (me, _, _, _) -> expr me
      | _ -> ()
    in
    expr mb.mb_expr
  in
  items [] str.str_items

(* ---- closures --------------------------------------------------------- *)

let compute_closures g =
  (* blocking: fixpoint over the call graph *)
  let blocking = Hashtbl.create 64 in
  Hashtbl.iter (fun fn s -> if s.fs_blocking then Hashtbl.replace blocking fn ()) g.sums;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun fn s ->
        if not (Hashtbl.mem blocking fn)
           && SS.exists (fun c -> Hashtbl.mem blocking c || blocking_name c) s.fs_calls
        then begin
          Hashtbl.replace blocking fn ();
          changed := true
        end)
      g.sums
  done;
  g.blocking_closure <-
    Hashtbl.fold (fun fn () acc -> SS.add fn acc) blocking SS.empty;
  (* acquires: fixpoint union *)
  let acq = Hashtbl.create 64 in
  Hashtbl.iter (fun fn s -> Hashtbl.replace acq fn s.fs_acquires) g.sums;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun fn s ->
        let cur = try Hashtbl.find acq fn with Not_found -> SS.empty in
        let next =
          SS.fold
            (fun c acc ->
              match Hashtbl.find_opt acq c with
              | Some ts -> SS.union ts acc
              | None -> acc)
            s.fs_calls cur
        in
        if not (SS.equal cur next) then begin
          Hashtbl.replace acq fn next;
          changed := true
        end)
      g.sums
  done;
  g.acquire_closure <-
    Hashtbl.fold (fun fn ts acc -> SM.add fn ts acc) acq SM.empty

(* ---- lock-order graph -------------------------------------------------- *)

let check_order g =
  (* dedupe observed edges, keeping the first (file, line) witness *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun (a, b, f, l) ->
      if not (Hashtbl.mem seen (a, b)) then Hashtbl.add seen (a, b) (f, l))
    (List.rev g.edges);
  let edges = Hashtbl.fold (fun (a, b) (f, l) acc -> (a, b, f, l) :: acc) seen [] in
  let nodes =
    List.fold_left (fun s (a, b, _, _) -> SS.add a (SS.add b s)) SS.empty edges
  in
  (* SCC by repeated DFS reachability (graphs here are tiny) *)
  let succ a =
    List.filter_map (fun (x, y, _, _) -> if x = a then Some y else None) edges
  in
  let reaches a b =
    let visited = Hashtbl.create 16 in
    let rec go n =
      n = b
      || (not (Hashtbl.mem visited n))
         && begin
              Hashtbl.add visited n ();
              List.exists go (succ n)
            end
    in
    List.exists go (succ a)
  in
  let cyclic_edges =
    List.filter (fun (a, b, _, _) -> a = b || reaches b a) edges
  in
  List.iter
    (fun (a, b, f, l) ->
      report g f l "racecheck-order"
        "lock-order cycle: acquiring %s while holding %s closes a cycle in \
         the acquisition graph"
        b a)
    cyclic_edges;
  (* sanctioned-hierarchy coverage for the acyclic remainder *)
  let sanctioned = Lint.directives g.allow "lockorder" in
  let sedges =
    List.filter_map
      (function [ a; b ] -> Some (a, b) | _ -> None)
      sanctioned
  in
  let ssucc a = List.filter_map (fun (x, y) -> if x = a then Some y else None) sedges in
  (* sanctioned path a -> b; returns the edges used so they can be marked *)
  let spath a b =
    let rec bfs frontier visited parents =
      match frontier with
      | [] -> None
      | n :: rest ->
          if n = b then Some parents
          else
            let nexts =
              List.filter (fun m -> not (List.mem m visited)) (ssucc n)
            in
            let parents =
              List.fold_left (fun ps m -> (m, n) :: ps) parents nexts
            in
            bfs (rest @ nexts) (nexts @ visited) parents
    in
    match bfs [ a ] [ a ] [] with
    | None -> None
    | Some parents ->
        let rec collect n acc =
          if n = a then acc
          else
            match List.assoc_opt n parents with
            | Some p -> collect p ((p, n) :: acc)
            | None -> acc
        in
        Some (collect b [])
  in
  List.iter
    (fun (a, b, f, l) ->
      if not (List.exists (fun (x, y, _, _) -> x = a && y = b) cyclic_edges)
      then
        match spath a b with
        | Some used ->
            List.iter
              (fun (x, y) -> Lint.mark_used g.allow [ "lockorder"; x; y ])
              used
        | None ->
            report g f l "racecheck-order"
              "undeclared lock-order edge: %s acquired while holding %s — \
               extend the sanctioned hierarchy ('lockorder %s %s' in \
               lint.allow) deliberately or fix the nesting"
              b a a b)
    edges;
  (* the sanctioned hierarchy itself must be a DAG *)
  let s_succ a = ssucc a in
  let s_reaches a b =
    let visited = Hashtbl.create 16 in
    let rec go n =
      n = b
      || (not (Hashtbl.mem visited n))
         && begin
              Hashtbl.add visited n ();
              List.exists go (s_succ n)
            end
    in
    List.exists go (s_succ a)
  in
  List.iter
    (fun (a, b) ->
      if a = b || s_reaches b a then
        report g (Lint.allow_file g.allow) 1 "racecheck-order"
          "sanctioned hierarchy is cyclic at lockorder %s %s" a b)
    sedges;
  ignore nodes

(* ---- unit assembly ----------------------------------------------------- *)

type unit_src = {
  s_name : string;
  s_file : string;
  s_concurrent : bool;
  s_str : Typedtree.structure;
}

let analyze ?(allow = Lint.empty_allow) ~wrappers units =
  let g =
    {
      allow;
      wrappers;
      g_requires = Hashtbl.create 32;
      g_wrapfns = Hashtbl.create 32;
      sums = Hashtbl.create 256;
      blocking_closure = SS.empty;
      acquire_closure = SM.empty;
      nonblocking =
        List.fold_left
          (fun s d -> match d with [ t ] -> SS.add t s | _ -> s)
          SS.empty
          (Lint.directives allow "nonblocking");
      edges = [];
      viol = [];
    }
  in
  let mk u =
    {
      u_name = u.s_name;
      u_file = u.s_file;
      u_concurrent = u.s_concurrent;
      u_aliases = Hashtbl.create 16;
      u_topnames = Hashtbl.create 64;
    }
  in
  let ctxs = List.map (fun u -> (mk u, u.s_str)) units in
  List.iter (fun (ctx, str) -> scan_unit g ctx str) ctxs;
  List.iter (fun (ctx, str) -> walk_unit g ctx Collect str) ctxs;
  compute_closures g;
  List.iter (fun (ctx, str) -> walk_unit g ctx Check str) ctxs;
  check_order g;
  List.sort
    (fun a b ->
      match compare a.v_file b.v_file with
      | 0 -> compare a.v_line b.v_line
      | c -> c)
    g.viol

(* ---- cmt loading ------------------------------------------------------- *)

let unit_name_of_modname m =
  (* "Hyperion__Store" -> "Store"; "Persist" -> "Persist" *)
  map_component m

let rec collect_cmts acc dir =
  match Sys.readdir dir with
  | entries ->
      Array.fold_left
        (fun acc e ->
          let p = Filename.concat dir e in
          if Sys.is_directory p then collect_cmts acc p
          else if Filename.check_suffix e ".cmt" then p :: acc
          else acc)
        acc entries
  | exception Sys_error _ -> acc

(* Library wrapper modules: a dune library whose directory has no
   <libname>.ml main module gets a generated alias wrapper. *)
let wrapper_set root =
  List.fold_left
    (fun s (dir, name, _) ->
      if Sys.file_exists (Filename.concat dir (name ^ ".ml")) then s
      else SS.add (String.capitalize_ascii name) s)
    SS.empty
    (Lint.dune_libraries root)

let load_units ~root ~concurrent_dirs paths =
  let build = Filename.concat root "_build/default/lib" in
  let cmts = collect_cmts [] build in
  let in_scope rel =
    List.exists (fun p -> Lint.in_dir p rel || p = rel) paths
  in
  (* An unreadable cmt (truncated file, version skew) is not fatal: its
     source, if in scope, surfaces as racecheck-unavailable below. *)
  let read_cmt path =
    match Cmt_format.read_cmt path with
    | cmt -> Ok cmt
    | exception e -> Error (Printexc.to_string e)
  in
  let units, covered =
    List.fold_left
      (fun (units, covered) cmt ->
        match read_cmt cmt with
        | Ok {
            Cmt_format.cmt_annots = Cmt_format.Implementation str;
            cmt_sourcefile = Some src;
            cmt_modname;
            _;
          }
          when Filename.check_suffix src ".ml" && in_scope src
               && Sys.file_exists (Filename.concat root src)
               && not (SS.mem src covered) ->
            let name = unit_name_of_modname cmt_modname in
            if name = "" then (units, covered)
            else
              let dir = Filename.dirname src in
              let u =
                {
                  s_name = name;
                  s_file = src;
                  s_concurrent = List.mem dir concurrent_dirs;
                  s_str = str;
                }
              in
              (u :: units, SS.add src covered)
        | Ok _ | Error _ -> (units, covered))
      ([], SS.empty) cmts
  in
  (List.rev units, covered)

let run ?(allow = Lint.empty_allow) ~root paths =
  (* dune dirs come back root-prefixed; cmt source paths are root-relative
     (also with an absolute [root], e.g. when the CLI walks up to find the
     tree), so strip before comparing *)
  let concurrent_dirs =
    List.map
      (Lint.strip_root ~root)
      (Lint.reachable_dirs root ~roots:[ "hyperion_shard"; "hyperion_net" ])
  in
  let units, covered = load_units ~root ~concurrent_dirs paths in
  let missing =
    List.concat_map
      (fun p ->
        List.rev (Lint.collect_ml [] (Filename.concat root p)))
      paths
    |> List.filter_map (fun abs ->
           let rel = Lint.strip_root ~root abs in
           if SS.mem rel covered then None
           else
             Some
               {
                 v_file = rel;
                 v_line = 1;
                 v_rule = "racecheck-unavailable";
                 v_msg =
                   "no .cmt for this unit under _build/default — run 'dune \
                    build' before linting";
               })
  in
  let wrappers = wrapper_set root in
  missing @ analyze ~allow ~wrappers units

let available ~root =
  Sys.file_exists (Filename.concat root "_build/default/lib")

(* ---- re-typechecking fallback (fixtures) ------------------------------- *)

let compiler_initialized = ref false

let init_compiler () =
  if not !compiler_initialized then begin
    compiler_initialized := true;
    Compmisc.init_path ();
    let stdlib = Config.standard_library in
    List.iter
      (fun sub ->
        let d = Filename.concat stdlib sub in
        if Sys.file_exists d then Load_path.add_dir d)
      [ "unix"; "threads" ]
  end

let unit_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let check_source ?(allow = Lint.empty_allow) ~file text =
  init_compiler ();
  let uname = unit_of_file file in
  Env.set_unit_name uname;
  match
    let lexbuf = Lexing.from_string text in
    Lexing.set_filename lexbuf file;
    let past = Parse.implementation lexbuf in
    let tstr, _, _, _, _ = Typemod.type_structure (Compmisc.initial_env ()) past in
    tstr
  with
  | tstr ->
      analyze ~allow ~wrappers:SS.empty
        [ { s_name = uname; s_file = file; s_concurrent = true; s_str = tstr } ]
  | exception e ->
      let msg =
        match Location.error_of_exn e with
        | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
        | _ -> Printexc.to_string e
      in
      [
        {
          v_file = file;
          v_line = 1;
          v_rule = "racecheck-unavailable";
          v_msg = "cannot typecheck: " ^ String.trim msg;
        };
      ]
