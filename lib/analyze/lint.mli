(** Project-specific source lint, built on the compiler's own parser
    (compiler-libs.common).  The allow-list, violation shape and JSON
    output are shared with the typedtree Racecheck pass (see
    {!Racecheck} in the [hyperion.racecheck] library).

    Rules (see DESIGN.md sections 11 and 16 for the full table):
    - [assert-false]: no [assert false] in strict modules (lib/core,
      lib/persist, lib/shard) — raise a typed [Hyperion_error] instead.
    - [obj-magic]: no [Obj.magic], anywhere.
    - [unsafe]: no [Array.unsafe_*] / [Bytes.unsafe_*] outside
      allow-listed modules, and only under a [(* SAFETY: ... *)] proof
      comment within the enclosing top-level binding.
    - [catch-all]: no exception handler that can silently swallow a
      [Hyperion_error.Error] — a wildcard pattern, or a bound exception
      variable the handler never consults.
    - [stale-allow]: a [lint.allow] entry no rule consulted (reported by
      {!stale} once every pass has run). *)

type violation = {
  v_file : string;
  v_line : int;
  v_rule : string;
  v_msg : string;
}

val to_string : violation -> string
(** [file:line rule message] — the format the CI job greps. *)

val sort_violations : violation list -> violation list
(** Stable report order: by file, then line, then rule. *)

val to_json : violation list -> string
(** Machine-readable output:
    [{"tool":"hyperion-lint","version":1,"count":N,"violations":[...]}] *)

(** {1 Allow-list}

    One directive per line; ['#'] starts a comment.
    {v
    unsafe <path.ml>                   # module may use unsafe_* under SAFETY
    unguarded <path.ml> <type.field>   # mutable field exempt from guarded-by
    racy-read <path.ml> <type.field>   # unlocked READS of guarded field ok
    escape <path.ml> <ident>           # spawn-captured mutable root exempt
    blocking <path.ml> <callee>        # blocking call under a lock sanctioned
    nonblocking <lock-token>           # lock is latency-critical
    lockorder <outer> <inner>          # sanctioned acquisition-order edge
    v}

    Every entry records its source line and whether any rule consulted
    it, so {!stale} can report dead exemptions. *)

type allow

val empty_allow : allow
val allow_file : allow -> string
val parse_allow : file:string -> string -> (allow, string) result
val load_allow : string -> (allow, string) result

val allowed : allow -> string list -> bool
(** [allowed a ["unguarded"; file; key]] — exact directive match; a hit
    marks the entry used. *)

val mark_used : allow -> string list -> unit
(** Mark matching entries used without consulting the result. *)

val directives : allow -> string -> string list list
(** All entries for one keyword, arguments only, in file order. *)

val stale : allow -> violation list
(** One [stale-allow] violation (at the allow file's own [file:line]) per
    entry that no rule consulted.  Only meaningful after a full-scope run
    of both the parsetree lint and Racecheck. *)

(** {1 Checking} *)

val check_source :
  ?allow:allow -> ?strict:bool -> file:string -> string -> violation list
(** Lint one compilation unit given as source text.  [strict] enables the
    assert-false rule; [file] is the repo-relative path used in messages
    and allow-list lookups.  Unparsable sources yield a single [parse]
    violation. *)

val dune_libraries : string -> (string * string * string list) list
(** [(dir, name, deps)] for every library stanza under [root]/lib. *)

val reachable_dirs : string -> roots:string list -> string list
(** Directories of every library in the dune dependency closure of the
    given root libraries, computed from the dune files under [root]/lib. *)

val shard_reachable_dirs : string -> string list
(** [reachable_dirs root ~roots:["hyperion_shard"]]. *)

(** {1 Path helpers} (shared with Racecheck) *)

val normalize : string -> string
val in_dir : string -> string -> bool
val strip_root : root:string -> string -> string
val collect_ml : string list -> string -> string list

val run : ?allow:allow -> root:string -> string list -> violation list
(** Lint every [.ml] under the given paths (relative to [root]), deriving
    each file's [strict] setting from its location. *)
