(** Project-specific source lint, built on the compiler's own parser
    (compiler-libs.common).

    Rules (see DESIGN.md section 11 for the full table):
    - [assert-false]: no [assert false] in strict modules (lib/core,
      lib/persist, lib/shard) — raise a typed [Hyperion_error] instead.
    - [obj-magic]: no [Obj.magic], anywhere.
    - [unsafe]: no [Array.unsafe_*] / [Bytes.unsafe_*] outside
      allow-listed modules, and only under a [(* SAFETY: ... *)] proof
      comment within the enclosing top-level binding.
    - [catch-all]: no exception handler that can silently swallow a
      [Hyperion_error.Error] — a wildcard pattern, or a bound exception
      variable the handler never consults.
    - [mutable-field]: no non-[Atomic.t] [mutable] record field in files
      reachable from [hyperion_shard]'s dune dependency closure, unless
      allow-listed. *)

type violation = {
  v_file : string;
  v_line : int;
  v_rule : string;
  v_msg : string;
}

val to_string : violation -> string
(** [file:line rule message] — the format the CI job greps. *)

(** {1 Allow-list}

    One directive per line; ['#'] starts a comment.
    {v
    unsafe <path.ml>                 # module may use unsafe_* under SAFETY
    mutable <path.ml> <type.field>   # field exempt from the mutable rule
    v} *)

type allow = {
  unsafe_modules : string list;
  mutable_fields : (string * string) list;
}

val empty_allow : allow
val parse_allow : file:string -> string -> (allow, string) result
val load_allow : string -> (allow, string) result

(** {1 Checking} *)

val check_source :
  ?allow:allow ->
  ?strict:bool ->
  ?reachable:bool ->
  file:string ->
  string ->
  violation list
(** Lint one compilation unit given as source text.  [strict] enables the
    assert-false rule, [reachable] the mutable-field rule; [file] is the
    repo-relative path used in messages and allow-list lookups.  Unparsable
    sources yield a single [parse] violation. *)

val shard_reachable_dirs : string -> string list
(** Directories of every library in [hyperion_shard]'s dune dependency
    closure, computed from the dune files under [root]/lib. *)

val run : ?allow:allow -> root:string -> string list -> violation list
(** Lint every [.ml] under the given paths (relative to [root]), deriving
    each file's [strict]/[reachable] setting from its location. *)
