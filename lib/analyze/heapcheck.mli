(** Heap sanitizer: a mark-and-sweep audit of the Hyperion memory manager.

    Where [Validate.check_store] walks the trie's record structure, this
    module audits the allocator underneath it.  A sweep snapshots every
    chunk/bin/metabin through the raw [Memman.audit_*] exports (bypassing
    the cached occupancy counters), then a mark phase re-walks the
    container graph from the trie roots counting live HP references per
    chunk.  The audit proves, per arena:

    - every allocated chunk is referenced by exactly one live HP (leak
      and double-reference detection);
    - free chunks are disjoint from the live graph, and freed
      extended-bin records are fully reset;
    - chained extended bins are well-formed 8-chunk runs;
    - per-bin occupancy counters match a bit-by-bit recount, and the
      no-room bits and nonfull metabin lists (strictly ascending, hence
      acyclic) agree with swept reality;
    - [Memman.total_bytes], [Memman.superbin_profile] and [Stats]
      container counts reconcile with independently recomputed totals.

    The audit is read-only but parses live container bytes: the store
    must be quiesced (no concurrent mutator on any arena) while it runs,
    exactly like [Validate.check_store].  Cost is linear in resident
    chunks plus live containers; see DESIGN.md section 11. *)

type problem = {
  p_rule : string;  (** short rule id: ["leak"], ["double-ref"], ... *)
  p_detail : string;  (** human-readable detail with bin/HP coordinates *)
}

type report = {
  problems : problem list;  (** empty iff the heap is sound *)
  chunks_allocated : int;  (** allocated chunks found by the sweep *)
  containers_walked : int;  (** top-level containers visited by the mark *)
  cebs_walked : int;  (** chained extended bins visited by the mark *)
  bytes_resident : int;  (** independently recomputed resident bytes *)
}

val ok : report -> bool
val first_problem : report -> string option

val audit_store :
  ?extra_roots:Hyperion.Hp.t list -> Hyperion.Store.t -> report
(** Audit every arena of the store, grouping tries that share a memory
    manager so each arena is swept once with all its roots marked.
    [extra_roots] is a test-only injection hook: the HPs are marked as
    additional roots of the {e first} arena, letting tests fabricate a
    double reference without corrupting a real container. *)

val audit_trie : ?extra_roots:Hyperion.Hp.t list -> Hyperion.Types.trie -> report
(** Audit a single trie's arena (white-box entry for tests).  Only
    meaningful when no other trie shares the manager. *)

val pp_problem : Format.formatter -> problem -> unit
val pp_report : Format.formatter -> report -> unit
