(* Project-specific source lint (ISSUE 5 tentpole, prong 1).

   Parses every [.ml] file with the compiler's own front end
   (compiler-libs.common — ships with the OCaml toolchain, no new
   dependency) and enforces the rules the engine's byte-level invariants
   depend on:

   - [assert-false]   no [assert false] in lib/core, lib/persist or
                      lib/shard: internal invariant breaches must surface
                      through the typed [Hyperion_error] channel.
   - [obj-magic]      no [Obj.magic], anywhere.
   - [unsafe]         no [Array.unsafe_*] / [Bytes.unsafe_*] outside
                      modules named in the allow-list, and even there only
                      under a [(* SAFETY: ... *)] proof comment attached to
                      the enclosing top-level binding.
   - [catch-all]      no [try ... with _ ->] (or a bound-but-ignored
                      exception variable) that can silently swallow a
                      [Hyperion_error.Error].  Handlers that consult the
                      exception ([with e -> cleanup; raise e]) pass.
   - [mutable-field]  no [mutable] record field in files whose library is
                      reachable from [hyperion_shard]'s dune dependency
                      closure, unless the field is an [Atomic.t] or named
                      in the allow-list (single-writer fields with an
                      external synchronization argument).

   Violations print [file:line rule message]; the driver exits non-zero
   when any are found. *)

type violation = {
  v_file : string;
  v_line : int;
  v_rule : string;
  v_msg : string;
}

let to_string v = Printf.sprintf "%s:%d %s %s" v.v_file v.v_line v.v_rule v.v_msg

(* ---- allow-list ------------------------------------------------------ *)

type allow = {
  unsafe_modules : string list;  (* repo-relative .ml paths *)
  mutable_fields : (string * string) list;  (* path, "type.field" *)
}

let empty_allow = { unsafe_modules = []; mutable_fields = [] }

(* Format, one directive per line ('#' starts a comment):
     unsafe <path.ml>
     mutable <path.ml> <type.field>   (or <type.Constructor.field>) *)
let parse_allow ~file text =
  let lines = String.split_on_char '\n' text in
  let acc = ref empty_allow in
  let err = ref None in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | [ "unsafe"; path ] ->
          acc := { !acc with unsafe_modules = path :: !acc.unsafe_modules }
      | [ "mutable"; path; field ] ->
          acc :=
            { !acc with mutable_fields = (path, field) :: !acc.mutable_fields }
      | _ ->
          if !err = None then
            err := Some (Printf.sprintf "%s:%d: unrecognized directive" file (i + 1)))
    lines;
  match !err with Some e -> Error e | None -> Ok !acc

let load_allow path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse_allow ~file:path text
  | exception Sys_error m -> Error m

(* ---- SAFETY proof comments ------------------------------------------- *)

(* Line numbers (1-based) of every "(* SAFETY" comment opener.  A raw text
   scan is deliberate: comments do not survive into the parsetree. *)
let safety_lines text =
  let lines = ref [] in
  let line = ref 1 in
  let n = String.length text in
  for i = 0 to n - 1 do
    if text.[i] = '\n' then incr line
    else if
      text.[i] = '('
      && i + 8 < n
      && String.sub text i 9 = "(* SAFETY"
    then lines := !line :: !lines
  done;
  List.rev !lines

(* ---- the AST pass ---------------------------------------------------- *)

type ctx = {
  file : string;  (* repo-relative path used in messages and allow-list *)
  strict : bool;  (* assert-false banned *)
  reachable : bool;  (* mutable-field rule applies *)
  allow : allow;
  safety : int list;
  mutable items : (int * int) list;  (* enclosing structure-item line spans *)
  mutable found : violation list;
}

let report ctx line rule fmt =
  Printf.ksprintf
    (fun msg ->
      ctx.found <-
        { v_file = ctx.file; v_line = line; v_rule = rule; v_msg = msg }
        :: ctx.found)
    fmt

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let end_line_of (loc : Location.t) = loc.loc_end.pos_lnum

let is_false_construct (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> true
  | _ -> false

(* Does [expr] mention the variable [name]?  Used to tell a logging/rethrow
   handler ([with e -> ...; raise e]) from one that drops the exception. *)
let uses_var name expr =
  let found = ref false in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } when n = name ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter expr;
  !found

let check_handler_cases ctx (cases : Parsetree.case list) =
  List.iter
    (fun (c : Parsetree.case) ->
      match c.pc_lhs.ppat_desc with
      | Ppat_any ->
          report ctx (line_of c.pc_lhs.ppat_loc) "catch-all"
            "wildcard exception handler can swallow Hyperion_error; match \
             specific exceptions or consult the value"
      | Ppat_var { txt = name; _ } ->
          let used =
            uses_var name c.pc_rhs
            || match c.pc_guard with Some g -> uses_var name g | None -> false
          in
          if not used then
            report ctx (line_of c.pc_lhs.ppat_loc) "catch-all"
              "handler binds the exception as %s but never consults it, \
               silently swallowing Hyperion_error"
              name
      | _ -> ())
    cases

let check_expr ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_assert inner when ctx.strict && is_false_construct inner ->
      report ctx (line_of e.pexp_loc) "assert-false"
        "assert false in a strict module; raise a typed Hyperion_error \
         instead"
  | Pexp_ident { txt; loc } -> (
      match Longident.flatten txt with
      | [ "Obj"; "magic" ] ->
          report ctx (line_of loc) "obj-magic" "Obj.magic defeats the type system"
      | [ m; f ]
        when (m = "Array" || m = "Bytes")
             && String.length f > 7
             && String.sub f 0 7 = "unsafe_" -> (
          let use_line = line_of loc in
          if not (List.mem ctx.file ctx.allow.unsafe_modules) then
            report ctx use_line "unsafe"
              "%s.%s outside an allow-listed module" m f
          else
            match ctx.items with
            | (item_start, _) :: _
              when List.exists
                     (fun l -> l >= item_start && l <= use_line)
                     ctx.safety ->
                ()
            | _ ->
                report ctx use_line "unsafe"
                  "%s.%s without a (* SAFETY: ... *) proof comment on the \
                   enclosing binding"
                  m f)
      | _ -> ())
  | Pexp_try (_, cases) -> check_handler_cases ctx cases
  | Pexp_match (_, cases) ->
      (* [match ... with exception _ -> ...] is a handler too. *)
      List.iter
        (fun (c : Parsetree.case) ->
          match c.pc_lhs.ppat_desc with
          | Ppat_exception p -> check_handler_cases ctx [ { c with pc_lhs = p } ]
          | _ -> ())
        cases
  | _ -> ()

let is_atomic_t (ty : Parsetree.core_type) =
  match ty.ptyp_desc with
  | Ptyp_constr ({ txt; _ }, _) -> (
      match Longident.flatten txt with
      | [ "Atomic"; "t" ] -> true
      | _ -> false)
  | _ -> false

let check_labels ctx ~tyname ~prefix (labels : Parsetree.label_declaration list)
    =
  List.iter
    (fun (l : Parsetree.label_declaration) ->
      if l.pld_mutable = Mutable && not (is_atomic_t l.pld_type) then begin
        let field = prefix ^ l.pld_name.txt in
        let key = tyname ^ "." ^ field in
        if not (List.mem (ctx.file, key) ctx.allow.mutable_fields) then
          report ctx
            (line_of l.pld_loc)
            "mutable-field"
            "mutable field %s in shard-reachable type %s is not Atomic.t and \
             not allow-listed"
            field tyname
      end)
    labels

let check_type_decl ctx (d : Parsetree.type_declaration) =
  if ctx.reachable then
    let tyname = d.ptype_name.txt in
    match d.ptype_kind with
    | Ptype_record labels -> check_labels ctx ~tyname ~prefix:"" labels
    | Ptype_variant constrs ->
        List.iter
          (fun (c : Parsetree.constructor_declaration) ->
            match c.pcd_args with
            | Pcstr_record labels ->
                check_labels ctx ~tyname ~prefix:(c.pcd_name.txt ^ ".") labels
            | Pcstr_tuple _ -> ())
          constrs
    | _ -> ()

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  {
    super with
    Ast_iterator.structure_item =
      (fun self item ->
        ctx.items <-
          (line_of item.Parsetree.pstr_loc, end_line_of item.Parsetree.pstr_loc)
          :: ctx.items;
        super.structure_item self item;
        ctx.items <- List.tl ctx.items);
    expr =
      (fun self e ->
        check_expr ctx e;
        super.expr self e);
    type_declaration =
      (fun self d ->
        check_type_decl ctx d;
        super.type_declaration self d);
  }

let check_source ?(allow = empty_allow) ?(strict = false) ?(reachable = false)
    ~file text =
  let ctx =
    {
      file;
      strict;
      reachable;
      allow;
      safety = safety_lines text;
      items = [];
      found = [];
    }
  in
  (match
     let lexbuf = Lexing.from_string text in
     Lexing.set_filename lexbuf file;
     Parse.implementation lexbuf
   with
  | ast ->
      let iter = make_iterator ctx in
      iter.structure iter ast
  | exception e ->
      let line =
        match e with
        | Syntaxerr.Error err ->
            line_of (Syntaxerr.location_of_error err)
        | _ -> 1
      in
      report ctx line "parse" "%s" (Printexc.to_string e));
  List.sort
    (fun a b ->
      match compare a.v_file b.v_file with
      | 0 -> compare a.v_line b.v_line
      | c -> c)
    ctx.found

(* ---- dune dependency graph (shard reachability) ---------------------- *)

(* Minimal s-expression reader: enough for dune files (atoms, lists,
   ';' line comments, double-quoted strings). *)
type sexp = Atom of string | List of sexp list

let parse_sexps text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        while !pos < n && text.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';') | None -> stop := true
      | Some _ -> advance ()
    done;
    Atom (String.sub text start (!pos - start))
  in
  let quoted () =
    advance ();
    let b = Buffer.create 16 in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some '"' | None ->
          advance ();
          stop := true
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char b c;
              advance ()
          | None -> ())
      | Some c ->
          Buffer.add_char b c;
          advance ()
    done;
    Atom (Buffer.contents b)
  in
  let rec sexp () =
    skip_ws ();
    match peek () with
    | Some '(' ->
        advance ();
        let items = ref [] in
        let stop = ref false in
        while not !stop do
          skip_ws ();
          match peek () with
          | Some ')' | None ->
              advance ();
              stop := true
          | Some _ -> items := sexp () :: !items
        done;
        List (List.rev !items)
    | Some '"' -> quoted ()
    | _ -> atom ()
  in
  let out = ref [] in
  skip_ws ();
  while !pos < n do
    out := sexp () :: !out;
    skip_ws ()
  done;
  List.rev !out

(* [(dir, name, deps)] for every library stanza in dune files under
   [root]/lib (skipping _build). *)
let dune_libraries root =
  let libs = ref [] in
  let rec scan dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            if entry = "_build" || entry = ".git" then ()
            else if Sys.is_directory path then scan path
            else if entry = "dune" then
              match In_channel.with_open_bin path In_channel.input_all with
              | text ->
                  List.iter
                    (function
                      | List (Atom "library" :: fields) ->
                          let name = ref None and deps = ref [] in
                          List.iter
                            (function
                              | List [ Atom "name"; Atom n ] -> name := Some n
                              | List (Atom "libraries" :: ds) ->
                                  List.iter
                                    (function
                                      | Atom d -> deps := d :: !deps
                                      | List _ -> ())
                                    ds
                              | _ -> ())
                            fields;
                          (match !name with
                          | Some n -> libs := (dir, n, !deps) :: !libs
                          | None -> ())
                      | _ -> ())
                    (parse_sexps text)
              | exception Sys_error _ -> ())
          entries
    | exception Sys_error _ -> ()
  in
  scan (Filename.concat root "lib");
  !libs

(* Directories of every library in [hyperion_shard]'s dune dependency
   closure — the scope of the mutable-field rule. *)
let shard_reachable_dirs root =
  let libs = dune_libraries root in
  let visited = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      List.iter
        (fun (_, n, deps) -> if n = name then List.iter visit deps)
        libs
    end
  in
  visit "hyperion_shard";
  List.filter_map
    (fun (dir, n, _) -> if Hashtbl.mem visited n then Some dir else None)
    libs

(* ---- driver ---------------------------------------------------------- *)

let strict_dirs = [ "lib/core"; "lib/persist"; "lib/shard" ]

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let in_dir dir path =
  let dir = if dir = "" || dir.[String.length dir - 1] = '/' then dir else dir ^ "/" in
  String.length path > String.length dir
  && String.sub path 0 (String.length dir) = dir

let rec collect_ml acc path =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect_ml acc (Filename.concat path entry))
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let run ?(allow = empty_allow) ~root paths =
  let reachable_dirs =
    List.map normalize (shard_reachable_dirs root)
  in
  let files =
    List.concat_map
      (fun p -> List.rev (collect_ml [] (Filename.concat root p)))
      paths
  in
  let strip_root p =
    let p = normalize p in
    let prefix = normalize root ^ "/" in
    if normalize root = "." then p
    else if in_dir (normalize root) p then
      String.sub p (String.length prefix) (String.length p - String.length prefix)
    else p
  in
  List.concat_map
    (fun path ->
      let rel = strip_root path in
      match In_channel.with_open_bin path In_channel.input_all with
      | text ->
          check_source ~allow
            ~strict:(List.exists (fun d -> in_dir d rel) strict_dirs)
            ~reachable:(List.exists (fun d -> in_dir d rel) reachable_dirs)
            ~file:rel text
      | exception Sys_error m ->
          [ { v_file = rel; v_line = 1; v_rule = "io"; v_msg = m } ])
    files
