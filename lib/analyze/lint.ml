(* Project-specific source lint (ISSUE 5 tentpole, prong 1; allow-list
   and reporting shared with the Racecheck typedtree pass, ISSUE 10).

   Parses every [.ml] file with the compiler's own front end
   (compiler-libs.common — ships with the OCaml toolchain, no new
   dependency) and enforces the rules the engine's byte-level invariants
   depend on:

   - [assert-false]   no [assert false] in lib/core, lib/persist or
                      lib/shard: internal invariant breaches must surface
                      through the typed [Hyperion_error] channel.
   - [obj-magic]      no [Obj.magic], anywhere.
   - [unsafe]         no [Array.unsafe_*] / [Bytes.unsafe_*] outside
                      modules named in the allow-list, and even there only
                      under a [(* SAFETY: ... *)] proof comment attached to
                      the enclosing top-level binding.
   - [catch-all]      no [try ... with _ ->] (or a bound-but-ignored
                      exception variable) that can silently swallow a
                      [Hyperion_error.Error].  Handlers that consult the
                      exception ([with e -> cleanup; raise e]) pass.

   The PR 5 [mutable-field] keyword heuristic is gone: lock-discipline for
   mutable state is now enforced by the typedtree Racecheck pass (see
   racecheck.ml), which understands [@guarded_by] annotations instead of
   blanket-banning the keyword.

   Violations print [file:line rule message]; the driver exits non-zero
   when any are found.  [--json] output is available via [to_json]. *)

type violation = {
  v_file : string;
  v_line : int;
  v_rule : string;
  v_msg : string;
}

let to_string v = Printf.sprintf "%s:%d %s %s" v.v_file v.v_line v.v_rule v.v_msg

let sort_violations vs =
  List.sort
    (fun a b ->
      match compare a.v_file b.v_file with
      | 0 -> (
          match compare a.v_line b.v_line with
          | 0 -> compare a.v_rule b.v_rule
          | c -> c)
      | c -> c)
    vs

(* ---- JSON output ------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json vs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"tool\":\"hyperion-lint\",\"version\":1,\"count\":%d,\"violations\":["
       (List.length vs));
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"rule\":\"%s\",\"message\":\"%s\"}"
           (json_escape v.v_file) v.v_line (json_escape v.v_rule)
           (json_escape v.v_msg)))
    vs;
  Buffer.add_string b "]}";
  Buffer.contents b

(* ---- allow-list ------------------------------------------------------ *)

(* One directive per line ('#' starts a comment); every entry records its
   line so stale entries can be reported, and whether any rule consulted
   it, so [stale] can flag dead exemptions:

     unsafe <path.ml>                   module may use unsafe_* under SAFETY
     unguarded <path.ml> <type.field>   mutable field exempt from guarded-by
     racy-read <path.ml> <type.field>   unlocked READS of a guarded field ok
     escape <path.ml> <ident>           spawn-captured root exempt
     blocking <path.ml> <callee>        blocking call under a lock sanctioned
     nonblocking <lock-token>           lock is latency-critical: no blocking
     lockorder <outer> <inner>          sanctioned acquisition-order edge *)

type entry = { e_line : int; e_key : string list; mutable e_used : bool }
type allow = { a_file : string; a_entries : entry list }

let empty_allow = { a_file = "lint.allow"; a_entries = [] }
let allow_file a = a.a_file

let directive_arity = function
  | "unsafe" | "nonblocking" -> Some 1
  | "unguarded" | "racy-read" | "escape" | "blocking" | "lockorder" -> Some 2
  | _ -> None

let parse_allow ~file text =
  let lines = String.split_on_char '\n' text in
  let acc = ref [] in
  let err = ref None in
  List.iteri
    (fun i line ->
      let line =
        match String.index_opt line '#' with
        | Some j -> String.sub line 0 j
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | kw :: args -> (
          match directive_arity kw with
          | Some n when List.length args = n ->
              acc := { e_line = i + 1; e_key = words; e_used = false } :: !acc
          | Some n ->
              if !err = None then
                err :=
                  Some
                    (Printf.sprintf "%s:%d: '%s' takes %d argument%s" file
                       (i + 1) kw n
                       (if n = 1 then "" else "s"))
          | None ->
              if !err = None then
                err :=
                  Some
                    (Printf.sprintf "%s:%d: unrecognized directive '%s'" file
                       (i + 1) kw)))
    lines;
  match !err with
  | Some e -> Error e
  | None -> Ok { a_file = file; a_entries = List.rev !acc }

let load_allow path =
  match In_channel.with_open_bin path In_channel.input_all with
  | text -> parse_allow ~file:path text
  | exception Sys_error m -> Error m

(* Exact-match lookup; a hit marks the entry used. *)
let allowed a key =
  let hit = ref false in
  List.iter
    (fun e ->
      if e.e_key = key then begin
        e.e_used <- true;
        hit := true
      end)
    a.a_entries;
  !hit

let mark_used a key =
  List.iter (fun e -> if e.e_key = key then e.e_used <- true) a.a_entries

(* All entries for one keyword, arguments only — order preserved. *)
let directives a kw =
  List.filter_map
    (fun e -> match e.e_key with k :: args when k = kw -> Some args | _ -> None)
    a.a_entries

let stale a =
  List.filter_map
    (fun e ->
      if e.e_used then None
      else
        Some
          {
            v_file = a.a_file;
            v_line = e.e_line;
            v_rule = "stale-allow";
            v_msg =
              Printf.sprintf
                "allow entry '%s' no longer matches any use; delete it or fix \
                 the reference"
                (String.concat " " e.e_key);
          })
    a.a_entries

(* ---- SAFETY proof comments ------------------------------------------- *)

(* Line numbers (1-based) of every "(* SAFETY" comment opener.  A raw text
   scan is deliberate: comments do not survive into the parsetree. *)
let safety_lines text =
  let lines = ref [] in
  let line = ref 1 in
  let n = String.length text in
  for i = 0 to n - 1 do
    if text.[i] = '\n' then incr line
    else if
      text.[i] = '('
      && i + 8 < n
      && String.sub text i 9 = "(* SAFETY"
    then lines := !line :: !lines
  done;
  List.rev !lines

(* ---- the AST pass ---------------------------------------------------- *)

type ctx = {
  file : string;  (* repo-relative path used in messages and allow-list *)
  strict : bool;  (* assert-false banned *)
  allow : allow;
  safety : int list;
  mutable items : (int * int) list;  (* enclosing structure-item line spans *)
  mutable found : violation list;
}

let report ctx line rule fmt =
  Printf.ksprintf
    (fun msg ->
      ctx.found <-
        { v_file = ctx.file; v_line = line; v_rule = rule; v_msg = msg }
        :: ctx.found)
    fmt

let line_of (loc : Location.t) = loc.loc_start.pos_lnum
let end_line_of (loc : Location.t) = loc.loc_end.pos_lnum

let is_false_construct (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) -> true
  | _ -> false

(* Does [expr] mention the variable [name]?  Used to tell a logging/rethrow
   handler ([with e -> ...; raise e]) from one that drops the exception. *)
let uses_var name expr =
  let found = ref false in
  let iter =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.Parsetree.pexp_desc with
          | Pexp_ident { txt = Longident.Lident n; _ } when n = name ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  iter.expr iter expr;
  !found

let check_handler_cases ctx (cases : Parsetree.case list) =
  List.iter
    (fun (c : Parsetree.case) ->
      match c.pc_lhs.ppat_desc with
      | Ppat_any ->
          report ctx (line_of c.pc_lhs.ppat_loc) "catch-all"
            "wildcard exception handler can swallow Hyperion_error; match \
             specific exceptions or consult the value"
      | Ppat_var { txt = name; _ } ->
          let used =
            uses_var name c.pc_rhs
            || match c.pc_guard with Some g -> uses_var name g | None -> false
          in
          if not used then
            report ctx (line_of c.pc_lhs.ppat_loc) "catch-all"
              "handler binds the exception as %s but never consults it, \
               silently swallowing Hyperion_error"
              name
      | _ -> ())
    cases

let check_expr ctx (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_assert inner when ctx.strict && is_false_construct inner ->
      report ctx (line_of e.pexp_loc) "assert-false"
        "assert false in a strict module; raise a typed Hyperion_error \
         instead"
  | Pexp_ident { txt; loc } -> (
      match Longident.flatten txt with
      | [ "Obj"; "magic" ] ->
          report ctx (line_of loc) "obj-magic" "Obj.magic defeats the type system"
      | [ m; f ]
        when (m = "Array" || m = "Bytes")
             && String.length f > 7
             && String.sub f 0 7 = "unsafe_" -> (
          let use_line = line_of loc in
          if not (allowed ctx.allow [ "unsafe"; ctx.file ]) then
            report ctx use_line "unsafe"
              "%s.%s outside an allow-listed module" m f
          else
            match ctx.items with
            | (item_start, _) :: _
              when List.exists
                     (fun l -> l >= item_start && l <= use_line)
                     ctx.safety ->
                ()
            | _ ->
                report ctx use_line "unsafe"
                  "%s.%s without a (* SAFETY: ... *) proof comment on the \
                   enclosing binding"
                  m f)
      | _ -> ())
  | Pexp_try (_, cases) -> check_handler_cases ctx cases
  | Pexp_match (_, cases) ->
      (* [match ... with exception _ -> ...] is a handler too. *)
      List.iter
        (fun (c : Parsetree.case) ->
          match c.pc_lhs.ppat_desc with
          | Ppat_exception p -> check_handler_cases ctx [ { c with pc_lhs = p } ]
          | _ -> ())
        cases
  | _ -> ()

let make_iterator ctx =
  let super = Ast_iterator.default_iterator in
  {
    super with
    Ast_iterator.structure_item =
      (fun self item ->
        ctx.items <-
          (line_of item.Parsetree.pstr_loc, end_line_of item.Parsetree.pstr_loc)
          :: ctx.items;
        super.structure_item self item;
        ctx.items <- List.tl ctx.items);
    expr =
      (fun self e ->
        check_expr ctx e;
        super.expr self e);
  }

let check_source ?(allow = empty_allow) ?(strict = false) ~file text =
  let ctx =
    { file; strict; allow; safety = safety_lines text; items = []; found = [] }
  in
  (match
     let lexbuf = Lexing.from_string text in
     Lexing.set_filename lexbuf file;
     Parse.implementation lexbuf
   with
  | ast ->
      let iter = make_iterator ctx in
      iter.structure iter ast
  | exception e ->
      let line =
        match e with
        | Syntaxerr.Error err ->
            line_of (Syntaxerr.location_of_error err)
        | _ -> 1
      in
      report ctx line "parse" "%s" (Printexc.to_string e));
  sort_violations ctx.found

(* ---- dune dependency graph (library reachability) -------------------- *)

(* Minimal s-expression reader: enough for dune files (atoms, lists,
   ';' line comments, double-quoted strings). *)
type sexp = Atom of string | List of sexp list

let parse_sexps text =
  let n = String.length text in
  let pos = ref 0 in
  let peek () = if !pos < n then Some text.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some ';' ->
        while !pos < n && text.[!pos] <> '\n' do
          advance ()
        done;
        skip_ws ()
    | _ -> ()
  in
  let atom () =
    let start = !pos in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | ';') | None -> stop := true
      | Some _ -> advance ()
    done;
    Atom (String.sub text start (!pos - start))
  in
  let quoted () =
    advance ();
    let b = Buffer.create 16 in
    let stop = ref false in
    while not !stop do
      match peek () with
      | Some '"' | None ->
          advance ();
          stop := true
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some c ->
              Buffer.add_char b c;
              advance ()
          | None -> ())
      | Some c ->
          Buffer.add_char b c;
          advance ()
    done;
    Atom (Buffer.contents b)
  in
  let rec sexp () =
    skip_ws ();
    match peek () with
    | Some '(' ->
        advance ();
        let items = ref [] in
        let stop = ref false in
        while not !stop do
          skip_ws ();
          match peek () with
          | Some ')' | None ->
              advance ();
              stop := true
          | Some _ -> items := sexp () :: !items
        done;
        List (List.rev !items)
    | Some '"' -> quoted ()
    | _ -> atom ()
  in
  let out = ref [] in
  skip_ws ();
  while !pos < n do
    out := sexp () :: !out;
    skip_ws ()
  done;
  List.rev !out

(* [(dir, name, deps)] for every library stanza in dune files under
   [root]/lib (skipping _build). *)
let dune_libraries root =
  let libs = ref [] in
  let rec scan dir =
    match Sys.readdir dir with
    | entries ->
        Array.sort compare entries;
        Array.iter
          (fun entry ->
            let path = Filename.concat dir entry in
            if entry = "_build" || entry = ".git" then ()
            else if Sys.is_directory path then scan path
            else if entry = "dune" then
              match In_channel.with_open_bin path In_channel.input_all with
              | text ->
                  List.iter
                    (function
                      | List (Atom "library" :: fields) ->
                          let name = ref None and deps = ref [] in
                          List.iter
                            (function
                              | List [ Atom "name"; Atom n ] -> name := Some n
                              | List (Atom "libraries" :: ds) ->
                                  List.iter
                                    (function
                                      | Atom d -> deps := d :: !deps
                                      | List _ -> ())
                                    ds
                              | _ -> ())
                            fields;
                          (match !name with
                          | Some n -> libs := (dir, n, !deps) :: !libs
                          | None -> ())
                      | _ -> ())
                    (parse_sexps text)
              | exception Sys_error _ -> ())
          entries
    | exception Sys_error _ -> ()
  in
  scan (Filename.concat root "lib");
  !libs

(* Directories of every library in the dune dependency closure of the
   given root libraries. *)
let reachable_dirs root ~roots =
  let libs = dune_libraries root in
  let visited = Hashtbl.create 16 in
  let rec visit name =
    if not (Hashtbl.mem visited name) then begin
      Hashtbl.add visited name ();
      List.iter
        (fun (_, n, deps) -> if n = name then List.iter visit deps)
        libs
    end
  in
  List.iter visit roots;
  List.filter_map
    (fun (dir, n, _) -> if Hashtbl.mem visited n then Some dir else None)
    libs

let shard_reachable_dirs root = reachable_dirs root ~roots:[ "hyperion_shard" ]

(* ---- driver ---------------------------------------------------------- *)

let strict_dirs = [ "lib/core"; "lib/persist"; "lib/shard" ]

let normalize path =
  if String.length path > 2 && String.sub path 0 2 = "./" then
    String.sub path 2 (String.length path - 2)
  else path

let in_dir dir path =
  let dir = if dir = "" || dir.[String.length dir - 1] = '/' then dir else dir ^ "/" in
  String.length path > String.length dir
  && String.sub path 0 (String.length dir) = dir

let rec collect_ml acc path =
  if Sys.is_directory path then
    let entries = Sys.readdir path in
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        if entry = "_build" || entry = ".git" then acc
        else collect_ml acc (Filename.concat path entry))
      acc entries
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let strip_root ~root p =
  let p = normalize p in
  let prefix = normalize root ^ "/" in
  if normalize root = "." then p
  else if in_dir (normalize root) p then
    String.sub p (String.length prefix) (String.length p - String.length prefix)
  else p

let run ?(allow = empty_allow) ~root paths =
  let files =
    List.concat_map
      (fun p -> List.rev (collect_ml [] (Filename.concat root p)))
      paths
  in
  List.concat_map
    (fun path ->
      let rel = strip_root ~root path in
      match In_channel.with_open_bin path In_channel.input_all with
      | text ->
          check_source ~allow
            ~strict:(List.exists (fun d -> in_dir d rel) strict_dirs)
            ~file:rel text
      | exception Sys_error m ->
          [ { v_file = rel; v_line = 1; v_rule = "io"; v_msg = m } ])
    files
