(* Mark-and-sweep audit of the Hyperion memory manager (ISSUE 5 tentpole).

   [Validate.check_store] walks the *trie* and proves structural record
   invariants; this module audits the *allocator* underneath it.  The sweep
   phase snapshots every chunk slot of every bin through the raw
   [Memman.audit_*] iterators (which bypass the cached occupancy counters),
   and the mark phase re-walks the container graph from the trie roots,
   counting how many live HPs reference each chunk.  Comparing the two
   proves:

   - every allocated chunk is referenced by exactly one live HP
     (leaks and double references);
   - free chunks are disjoint from the live graph and extended-bin
     records really are reset ([Efree], no retained heap segment);
   - chained extended bins are well-formed 8-chunk runs;
   - per-bin occupancy counters match a bit-by-bit recount;
   - the nonfull metabin lists are strictly ascending (hence acyclic),
     in range, and exactly cover the metabins that can still allocate;
   - [total_bytes] / [superbin_profile] / [Stats] byte and container
     accounting reconcile with swept reality.

   The audit only reads; it must run with the store quiesced (no
   concurrent mutator on any arena), like [Validate.check_store]. *)

module M = Hyperion.Memman
module Hp = Hyperion.Hp
module R = Hyperion.Records
module Node = Hyperion.Node
module T = Hyperion.Types
module S = Hyperion.Stats
module E = Hyperion.Hyperion_error

type problem = { p_rule : string; p_detail : string }

type report = {
  problems : problem list;
  chunks_allocated : int;
  containers_walked : int;
  cebs_walked : int;
  bytes_resident : int;
}

let ok r = r.problems = []

let first_problem r =
  match r.problems with
  | [] -> None
  | p :: _ -> Some (p.p_rule ^ ": " ^ p.p_detail)

let pp_problem ppf p = Format.fprintf ppf "%s: %s" p.p_rule p.p_detail

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf
      "heapcheck OK: %d allocated chunks, %d containers (%d split), %d \
       resident bytes"
      r.chunks_allocated r.containers_walked r.cebs_walked r.bytes_resident
  else begin
    Format.fprintf ppf "heapcheck FAILED (%d problems):"
      (List.length r.problems);
    List.iter (fun p -> Format.fprintf ppf "@\n  %a" pp_problem p) r.problems
  end

(* Upper bound on containers walked from one manager's roots; a corrupt
   record chain that stops making progress trips this instead of hanging
   the audit (mirrors Validate's guard). *)
let max_containers = 10_000_000

exception Walk_overflow

type entry = { info : M.audit_chunk; mutable refs : int }

type st = {
  mm : M.t;
  tbl : (Hp.t, entry) Hashtbl.t;
  mutable problems : problem list; (* accumulated in reverse *)
  mutable containers : int;
  mutable cebs : int;
}

let probf st p_rule fmt =
  Printf.ksprintf
    (fun p_detail -> st.problems <- { p_rule; p_detail } :: st.problems)
    fmt

let coords (c : M.audit_chunk) =
  Printf.sprintf "%d.%d.%d.%d" c.M.a_superbin c.M.a_metabin c.M.a_bin
    c.M.a_chunk

let hp_coords hp =
  Printf.sprintf "%d.%d.%d.%d" (Hp.superbin hp) (Hp.metabin hp) (Hp.bin hp)
    (Hp.chunk hp)

let kind_name = function
  | M.A_small -> "small"
  | M.A_free -> "free"
  | M.A_plain -> "plain"
  | M.A_chain_head -> "chain-head"
  | M.A_chain_member -> "chain-member"
  | M.A_reserved -> "reserved"

(* ---- mark phase: re-walk the container graph from the roots ---------- *)

let rec walk_top st buf base =
  st.containers <- st.containers + 1;
  if st.containers > max_containers then raise Walk_overflow;
  let region = T.top_region buf base in
  let computed = walk_region st buf region.T.rb region.T.re in
  (* Negative-lookup tag soundness: the stored tag byte must be a
     superset of the bits of the T-keys actually present in the top
     region (deletes may leave stale extra bits — that only costs a
     scan; a missing bit would make a present key unfindable). *)
  let stored = Hyperion.Layout.read_tag buf base in
  if stored land computed <> computed then
    probf st "tag"
      "container tag 0x%02x is missing bits 0x%02x of present T-keys"
      stored (computed land lnot stored)

and walk_region st buf rb re =
  let pos = ref rb and prev = ref (-1) in
  let tag = ref 0 in
  while !pos < re do
    let t = R.parse_t buf !pos ~prev_key:!prev in
    prev := t.R.t_key;
    tag := !tag lor Hyperion.Tag.bit t.R.t_key;
    let limit = R.next_t_pos buf t ~limit:re in
    if limit <= !pos then raise Walk_overflow;
    let sp = ref t.R.t_head_end and sprev = ref (-1) in
    while !sp < limit do
      let flag = Bytes.get_uint8 buf !sp in
      if flag = 0 || not (Node.is_snode flag) then sp := limit
      else begin
        let s = R.parse_s buf !sp ~prev_key:!sprev in
        sprev := s.R.s_key;
        (match Node.child_of_flag flag with
        | Node.No_child | Node.Child_pc -> ()
        | Node.Child_embedded ->
            (* Embedded regions are untagged; their T-keys do not feed
               the enclosing container's tag byte. *)
            let r = T.emb_region buf s.R.s_head_end in
            ignore (walk_region st buf r.T.rb r.T.re : int)
        | Node.Child_hp -> mark st (Hp.read buf s.R.s_head_end));
        if s.R.s_end <= !sp then raise Walk_overflow;
        sp := s.R.s_end
      end
    done;
    pos := limit
  done;
  !tag

and mark st hp =
  if Hp.is_null hp then probf st "bad-ref" "null HP stored as a child pointer"
  else
    match Hashtbl.find_opt st.tbl hp with
    | None -> probf st "dangling" "HP %s names no existing chunk" (hp_coords hp)
    | Some e ->
        e.refs <- e.refs + 1;
        (* Recurse only on the first visit: a double reference (or an
           induced cycle) is recorded via [refs] without re-walking. *)
        if e.refs = 1 then
          if not e.info.M.a_used then
            probf st "bad-ref" "HP %s references a free chunk" (hp_coords hp)
          else begin
            match e.info.M.a_kind with
            | M.A_small | M.A_plain ->
                let buf, base = M.resolve st.mm hp in
                walk_top st buf base
            | M.A_chain_head ->
                st.cebs <- st.cebs + 1;
                for slot = 0 to 7 do
                  match M.ceb_slot st.mm hp ~slot with
                  | Some (buf, off, _) -> walk_top st buf off
                  | None -> ()
                done
            | (M.A_free | M.A_chain_member | M.A_reserved) as k ->
                probf st "bad-ref" "HP %s references a %s chunk" (hp_coords hp)
                  (kind_name k)
          end

let mark_root st hp =
  if not (Hp.is_null hp) then
    match mark st hp with
    | () -> ()
    | exception Walk_overflow ->
        probf st "walk"
          "container graph from root %s exceeds %d containers (cycle?)"
          (hp_coords hp) max_containers
    | exception Invalid_argument m ->
        probf st "walk" "walk from root %s aborted: %s" (hp_coords hp) m
    | exception E.Error e ->
        probf st "walk" "walk from root %s aborted: %s" (hp_coords hp)
          (E.to_string e)

(* ---- the audit over one memory manager ------------------------------- *)

let audit_mm ?(roots = []) ~tries mm =
  let cpb = M.chunks_per_bin mm in
  let st =
    {
      mm;
      tbl = Hashtbl.create 4096;
      problems = [];
      containers = 0;
      cebs = 0;
    }
  in
  (* Sweep: snapshot every chunk slot and accumulate independent byte and
     chunk totals for the accounting reconciliation below. *)
  let sweep_alloc = Array.make 64 0 in
  let sweep_ext_bytes = ref 0 in
  let ext_cap_bytes = ref 0 in
  M.audit_iter_chunks mm (fun c ->
      let key =
        Hp.make ~superbin:c.M.a_superbin ~metabin:c.M.a_metabin ~bin:c.M.a_bin
          ~chunk:c.M.a_chunk
      in
      Hashtbl.replace st.tbl key { info = c; refs = 0 };
      if c.M.a_superbin = 0 then begin
        ext_cap_bytes := !ext_cap_bytes + c.M.a_cap;
        match c.M.a_kind with
        | (M.A_plain | M.A_chain_head | M.A_chain_member) when c.M.a_used ->
            sweep_alloc.(0) <- sweep_alloc.(0) + 1;
            sweep_ext_bytes := !sweep_ext_bytes + c.M.a_cap + 16
        | _ -> ()
      end
      else if c.M.a_used then
        sweep_alloc.(c.M.a_superbin) <- sweep_alloc.(c.M.a_superbin) + 1);
  (* Bin bookkeeping: cached occupancy counter vs recount, no-room bits,
     declared/present agreement; accumulate segment bytes while here. *)
  let bin_bytes = ref 0 in
  M.audit_iter_bins mm (fun b ->
      let where =
        Printf.sprintf "superbin %d metabin %d bin %d" b.M.b_superbin
          b.M.b_metabin b.M.b_bin
      in
      if b.M.b_declared <> b.M.b_present then
        probf st "bin" "%s: declared=%b but present=%b" where b.M.b_declared
          b.M.b_present;
      if b.M.b_present then begin
        bin_bytes :=
          !bin_bytes
          + cpb * (if b.M.b_superbin = 0 then 16 else 32 * b.M.b_superbin);
        if b.M.b_used_cached <> b.M.b_used_recount then
          probf st "counter"
            "%s: cached occupancy %d but %d chunks actually marked used" where
            b.M.b_used_cached b.M.b_used_recount;
        let full = b.M.b_used_recount = cpb in
        if b.M.b_declared && b.M.b_no_room <> full then
          probf st "no-room" "%s: no_room=%b but bin is %s" where b.M.b_no_room
            (if full then "full" else "not full")
      end
      else if not b.M.b_no_room then
        probf st "no-room" "%s: no_room clear for uninitialized bin" where);
  (* Metabin slots and the nonfull lists. *)
  let mb_total = ref 0 in
  M.audit_iter_metabins mm (fun m ->
      incr mb_total;
      let where =
        Printf.sprintf "superbin %d metabin %d" m.M.m_superbin m.M.m_metabin
      in
      if not m.M.m_present then
        probf st "metabin" "%s: empty slot below metabin_count" where
      else begin
        let can_allocate =
          m.M.m_initialized < 256 || m.M.m_no_room_set < 256
        in
        if can_allocate && not m.M.m_in_nonfull then
          probf st "nonfull" "%s can still allocate but is not listed" where;
        if (not can_allocate) && m.M.m_in_nonfull then
          probf st "nonfull" "%s is full but still listed" where
      end);
  for sb = 0 to 63 do
    let count = M.audit_metabin_count mm ~superbin:sb in
    let rec check_sorted prev = function
      | [] -> ()
      | id :: tl ->
          if id <= prev then
            probf st "nonfull"
              "superbin %d: nonfull list not strictly ascending at %d \
               (duplicate or cycle)"
              sb id;
          if id < 0 || id >= count then
            probf st "nonfull" "superbin %d: nonfull id %d out of range" sb id;
          check_sorted id tl
    in
    check_sorted (-1) (M.audit_nonfull mm ~superbin:sb)
  done;
  (* Extended-bin record state machine + CEB run structure. *)
  let find_ext mb bin chunk =
    Hashtbl.find_opt st.tbl (Hp.make ~superbin:0 ~metabin:mb ~bin ~chunk)
  in
  let ceb_census = Hashtbl.create 64 in
  let census mb bin heads members =
    let h, m =
      match Hashtbl.find_opt ceb_census (mb, bin) with
      | Some (h, m) -> (h, m)
      | None -> (0, 0)
    in
    Hashtbl.replace ceb_census (mb, bin) (h + heads, m + members)
  in
  Hashtbl.iter
    (fun _ e ->
      let c = e.info in
      if c.M.a_superbin = 0 then
        if not c.M.a_used then begin
          if c.M.a_kind <> M.A_free then
            probf st "ext-state" "chunk %s: free slot has %s record"
              (coords c) (kind_name c.M.a_kind);
          if c.M.a_cap <> 0 || c.M.a_requested <> 0 || c.M.a_mem_len <> 0 then
            probf st "ext-state"
              "chunk %s: free slot retains a heap segment (cap %d, mem %d)"
              (coords c) c.M.a_cap c.M.a_mem_len
        end
        else begin
          match c.M.a_kind with
          | M.A_small -> () (* unreachable: superbin 0 *)
          | M.A_free ->
              probf st "ext-state" "chunk %s: used slot has a free record"
                (coords c)
          | M.A_reserved ->
              if c.M.a_metabin <> 0 || c.M.a_bin <> 0 || c.M.a_chunk <> 0 then
                probf st "ext-state"
                  "chunk %s: reserved record outside the null chunk" (coords c)
          | M.A_plain ->
              if
                c.M.a_cap <= 0 || c.M.a_mem_len <> c.M.a_cap
                || c.M.a_requested <= 0
                || M.size_class c.M.a_requested <> c.M.a_cap
              then
                probf st "ext-state"
                  "chunk %s: plain record bookkeeping broken (cap %d, mem \
                   %d, requested %d)"
                  (coords c) c.M.a_cap c.M.a_mem_len c.M.a_requested
          | M.A_chain_head | M.A_chain_member ->
              census c.M.a_metabin c.M.a_bin
                (if c.M.a_kind = M.A_chain_head then 1 else 0)
                (if c.M.a_kind = M.A_chain_member then 1 else 0);
              if c.M.a_cap = 0 then begin
                if c.M.a_mem_len <> 0 || c.M.a_requested <> 0 then
                  probf st "ext-state"
                    "chunk %s: void CEB slot retains a segment" (coords c)
              end
              else if
                c.M.a_mem_len <> c.M.a_cap || c.M.a_requested <= 0
                || M.size_class c.M.a_requested <> c.M.a_cap
              then
                probf st "ext-state"
                  "chunk %s: CEB slot bookkeeping broken (cap %d, mem %d, \
                   requested %d)"
                  (coords c) c.M.a_cap c.M.a_mem_len c.M.a_requested;
              if c.M.a_kind = M.A_chain_head then
                if c.M.a_chunk + 7 >= cpb then
                  probf st "ceb" "head %s: 8-chunk run exceeds the bin"
                    (coords c)
                else
                  for i = 1 to 7 do
                    match find_ext c.M.a_metabin c.M.a_bin (c.M.a_chunk + i) with
                    | Some m
                      when m.info.M.a_used
                           && m.info.M.a_kind = M.A_chain_member ->
                        ()
                    | _ ->
                        probf st "ceb" "head %s: member %d missing or invalid"
                          (coords c) i
                  done
        end)
    st.tbl;
  Hashtbl.iter
    (fun (mb, bin) (heads, members) ->
      if members <> 7 * heads then
        probf st "ceb"
          "ext metabin %d bin %d: %d chain members for %d heads (want 7 per \
           head)"
          mb bin members heads)
    ceb_census;
  (* Mark from every root. *)
  List.iter (mark_root st) roots;
  (* Exactly-one-live-HP: leaks and double references. *)
  Hashtbl.iter
    (fun _ e ->
      let c = e.info in
      if e.refs > 1 then
        probf st "double-ref" "chunk %s (%s) is referenced by %d live HPs"
          (coords c) (kind_name c.M.a_kind) e.refs;
      if c.M.a_used && e.refs = 0 then
        match c.M.a_kind with
        | M.A_small | M.A_plain | M.A_chain_head ->
            probf st "leak"
              "allocated chunk %s (%s, cap %d) is unreachable from any root"
              (coords c) (kind_name c.M.a_kind) c.M.a_cap
        | M.A_chain_member | M.A_reserved | M.A_free -> ())
    st.tbl;
  (* Accounting reconciliation: the manager's own summaries vs the sweep. *)
  let profile = M.superbin_profile mm in
  Array.iteri
    (fun sb p ->
      if p.M.allocated_chunks <> sweep_alloc.(sb) then
        probf st "accounting"
          "superbin %d: profile reports %d allocated chunks, sweep found %d"
          sb p.M.allocated_chunks sweep_alloc.(sb))
    profile;
  if profile.(0).M.allocated_bytes <> !sweep_ext_bytes then
    probf st "accounting"
      "superbin 0: profile reports %d allocated bytes, sweep found %d"
      profile.(0).M.allocated_bytes !sweep_ext_bytes;
  let recomputed_bytes =
    (64 * 64)
    + (!mb_total * M.metabin_overhead_bytes mm)
    + !bin_bytes + !ext_cap_bytes
  in
  let reported_bytes = M.total_bytes mm in
  if recomputed_bytes <> reported_bytes then
    probf st "accounting"
      "total_bytes reports %d but the sweep recomputes %d resident bytes"
      reported_bytes recomputed_bytes;
  (* Stats cross-check: an independent traversal implementation must agree
     on container counts.  Skipped when the walk already failed (the
     counters are meaningless then). *)
  let walk_failed =
    List.exists (fun p -> p.p_rule = "walk" || p.p_rule = "dangling")
      st.problems
  in
  if not walk_failed then begin
    let stats =
      List.fold_left
        (fun acc trie ->
          match S.collect trie with
          | s -> S.add acc s
          | exception e ->
              probf st "stats" "Stats.collect failed: %s"
                (Printexc.to_string e);
              acc)
        S.empty tries
    in
    if stats.S.containers <> st.containers then
      probf st "stats" "Stats reports %d containers, mark walk visited %d"
        stats.S.containers st.containers;
    if stats.S.split_containers <> st.cebs then
      probf st "stats"
        "Stats reports %d split containers, mark walk visited %d CEBs"
        stats.S.split_containers st.cebs
  end;
  {
    problems = List.rev st.problems;
    chunks_allocated = Array.fold_left ( + ) 0 sweep_alloc;
    containers_walked = st.containers;
    cebs_walked = st.cebs;
    bytes_resident = recomputed_bytes;
  }

(* ---- public entry points --------------------------------------------- *)

let merge (a : report) (b : report) =
  {
    problems = a.problems @ b.problems;
    chunks_allocated = a.chunks_allocated + b.chunks_allocated;
    containers_walked = a.containers_walked + b.containers_walked;
    cebs_walked = a.cebs_walked + b.cebs_walked;
    bytes_resident = a.bytes_resident + b.bytes_resident;
  }

let audit_trie ?(extra_roots = []) (trie : T.trie) =
  audit_mm ~roots:(trie.T.root :: extra_roots) ~tries:[ trie ] trie.T.mm

let audit_store ?(extra_roots = []) store =
  let tries = Array.to_list (Hyperion.Store.internal_tries store) in
  (* Tries share managers when arenas < 256: group them by physical
     manager so each arena is swept once, with all its roots marked. *)
  let groups : (M.t * T.trie list ref) list ref = ref [] in
  List.iter
    (fun tr ->
      match List.find_opt (fun (mm, _) -> mm == tr.T.mm) !groups with
      | Some (_, l) -> l := tr :: !l
      | None -> groups := !groups @ [ (tr.T.mm, ref [ tr ]) ])
    tries;
  let reports =
    List.mapi
      (fun i (mm, l) ->
        let tries = List.rev !l in
        let roots = List.map (fun tr -> tr.T.root) tries in
        (* The test-only injection hook targets the first arena. *)
        let roots = if i = 0 then roots @ extra_roots else roots in
        audit_mm ~roots ~tries mm)
      !groups
  in
  match reports with
  | [] ->
      {
        problems = [];
        chunks_allocated = 0;
        containers_walked = 0;
        cebs_walked = 0;
        bytes_resident = 0;
      }
  | r :: rest -> List.fold_left merge r rest
