(* Order-preserving single-byte dictionary coder (HOPE-style).

   Symbol space: 257 symbols in a fixed total order — symbol 0 is a
   virtual end-of-string terminator (it must sort below every real byte
   so that a strict prefix key still sorts first), symbol [b + 1] is byte
   value [b].  A trained dictionary assigns every symbol a prefix-free
   bit code from one *alphabetic* code tree: symbol order equals code
   order as left-aligned bit strings, which is exactly what makes
   byte-wise [compare] on encodings agree with [compare] on keys.

   Encoding a key = concatenating its bytes' codes, the terminator code,
   and 0–7 zero padding bits to reach a byte boundary.  Decoding walks
   the code tree bit by bit until the terminator, then verifies the
   padding, so [decode (encode k) = Ok k] exactly. *)

let n_symbols = 257
let max_code_bits = 32
let scheme_dict = 1

type dict = {
  lens : int array;  (* 257 code lengths, bits, in [1, max_code_bits] *)
  codes : int array;  (* code values, low [lens.(i)] bits *)
  tree : int array;  (* decode tree: see [build_tree] *)
  hash : int64;  (* FNV-1a of [dict_to_string] *)
}

type t = Identity | Dict of dict

let id = function Identity -> 0 | Dict _ -> scheme_dict
let name = function Identity -> "identity" | Dict _ -> "dict"
let hash = function Identity -> 0L | Dict d -> d.hash
let dict_hash d = d.hash

let tag = function
  | Identity -> 0
  | Dict d -> 1 lor ((Int64.to_int d.hash land 0xffff) lsl 4)

let equal a b =
  match (a, b) with
  | Identity, Identity -> true
  | Dict a, Dict b -> a.hash = b.hash && a.lens = b.lens
  | _ -> false

(* The same FNV-1a step as Hyperion.Config.fingerprint, duplicated here so
   this library stays dependency-free (the constants are part of the
   persisted-format contract either way). *)
let fnv_prime = 0x100000001b3L
let fnv_basis = 0xcbf29ce484222325L
let fnv_mix acc n = Int64.mul (Int64.logxor acc n) fnv_prime

let mix_fingerprint fp = function
  | Identity -> fp
  | Dict d -> fnv_mix (fnv_mix fp (Int64.of_int scheme_dict)) d.hash

(* ---- code construction ---------------------------------------------- *)

(* Decode tree over the canonical codes.  [tree.(2 * node + bit)] is 0
   when unset (unreachable in a Kraft-complete code; treated as corrupt
   input by [decode]), a positive internal-node index, or [-sym - 1] for
   a leaf.  Node 0 is the root; a full binary tree with 257 leaves has
   256 internal nodes, so 2 * 257 slots suffice. *)
let build_tree lens codes =
  let tree = Array.make (2 * n_symbols) 0 in
  let next = ref 1 in
  for sym = 0 to n_symbols - 1 do
    let len = lens.(sym) and code = codes.(sym) in
    let node = ref 0 in
    for j = len - 1 downto 1 do
      let slot = (2 * !node) + ((code lsr j) land 1) in
      match tree.(slot) with
      | 0 ->
          if !next >= n_symbols then failwith "code tree overflow";
          tree.(slot) <- !next;
          node := !next;
          incr next
      | v when v > 0 -> node := v
      | _ -> failwith "code is not prefix-free"
    done;
    let slot = (2 * !node) + (code land 1) in
    if tree.(slot) <> 0 then failwith "code is not prefix-free";
    tree.(slot) <- -sym - 1
  done;
  tree

(* Alphabetic canonical codes from the length sequence: consecutive
   leaves of a full binary tree in left-to-right order satisfy
   c_{i+1} = (c_i + 1) shifted to leaf i+1's depth. *)
let codes_of_lens lens =
  let codes = Array.make n_symbols 0 in
  for i = 1 to n_symbols - 1 do
    let bump = codes.(i - 1) + 1 in
    let dl = lens.(i) - lens.(i - 1) in
    codes.(i) <- (if dl >= 0 then bump lsl dl else bump asr -dl)
  done;
  codes

let serialize lens =
  let b = Bytes.create (1 + n_symbols) in
  Bytes.set_uint8 b 0 scheme_dict;
  for i = 0 to n_symbols - 1 do
    Bytes.set_uint8 b (1 + i) lens.(i)
  done;
  Bytes.to_string b

let hash_of_blob blob =
  let h = ref fnv_basis in
  String.iter (fun c -> h := fnv_mix !h (Int64.of_int (Char.code c))) blob;
  !h

(* Full validation: anything that passes here is a correct alphabetic
   prefix-free code (used by both [train] output and untrusted
   [dict_of_string] input). *)
let dict_of_lens lens =
  let ( let* ) = Result.bind in
  let* () =
    if Array.length lens <> n_symbols then Error "wrong symbol count"
    else if Array.exists (fun l -> l < 1 || l > max_code_bits) lens then
      Error "code length out of range"
    else Ok ()
  in
  let maxl = Array.fold_left max 0 lens in
  let kraft = Array.fold_left (fun acc l -> acc + (1 lsl (maxl - l))) 0 lens in
  let* () =
    if kraft <> 1 lsl maxl then Error "lengths are not Kraft-complete"
    else Ok ()
  in
  let codes = codes_of_lens lens in
  let fits = ref true and monotone = ref true in
  for i = 0 to n_symbols - 1 do
    if codes.(i) lsr lens.(i) <> 0 then fits := false;
    if
      i > 0
      && codes.(i) lsl (maxl - lens.(i)) <= codes.(i - 1) lsl (maxl - lens.(i - 1))
    then monotone := false
  done;
  let* () = if !fits then Ok () else Error "code overflows its length" in
  let* () = if !monotone then Ok () else Error "codes are not ordered" in
  match build_tree lens codes with
  | tree -> Ok { lens; codes; tree; hash = hash_of_blob (serialize lens) }
  | exception Failure why -> Error why

let dict_to_string d = serialize d.lens

let dict_of_string s =
  if String.length s <> 1 + n_symbols then
    Error "dictionary blob must be 258 bytes"
  else if Char.code s.[0] <> scheme_dict then
    Error (Printf.sprintf "unknown scheme byte %d" (Char.code s.[0]))
  else dict_of_lens (Array.init n_symbols (fun i -> Char.code s.[1 + i]))

let of_id ?dict = function
  | 0 -> Ok Identity
  | 1 -> (
      match dict with
      | Some d -> Ok (Dict d)
      | None -> Error "scheme 1 (dict) needs a trained dictionary")
  | n -> Error (Printf.sprintf "unknown encoder id %d" n)

(* ---- training ------------------------------------------------------- *)

(* Recursive weight-balanced split: at each node cut the symbol range
   where the left/right weight difference is smallest.  Depth is
   O(log(total / min_weight)); with +1 smoothing that stays well under
   [max_code_bits] for any realistic sample, and the halving loop makes
   the cap unconditional (all-equal weights give depth 9). *)
let lens_of_weights w =
  let lens = Array.make n_symbols 0 in
  let p = Array.make (n_symbols + 1) 0 in
  for i = 0 to n_symbols - 1 do
    p.(i + 1) <- p.(i) + w.(i)
  done;
  let split lo hi =
    let total = p.(lo) + p.(hi) in
    (* smallest m in [lo+1, hi-1] with 2 * p.(m) >= total *)
    let rec bs a b =
      if a >= b then a
      else
        let mid = (a + b) / 2 in
        if 2 * p.(mid) >= total then bs a mid else bs (mid + 1) b
    in
    let m = bs (lo + 1) (hi - 1) in
    if m > lo + 1 && abs ((2 * p.(m - 1)) - total) <= abs ((2 * p.(m)) - total)
    then m - 1
    else m
  in
  let rec assign lo hi depth =
    if hi - lo = 1 then lens.(lo) <- depth
    else begin
      let m = split lo hi in
      assign lo m (depth + 1);
      assign m hi (depth + 1)
    end
  in
  assign 0 n_symbols 0;
  lens

let train seq =
  let freq = Array.make n_symbols 0 in
  Seq.iter
    (fun key ->
      freq.(0) <- freq.(0) + 1;
      String.iter
        (fun c ->
          let s = Char.code c + 1 in
          freq.(s) <- freq.(s) + 1)
        key)
    seq;
  let rec attempt w =
    let lens = lens_of_weights w in
    if Array.fold_left max 0 lens <= max_code_bits then lens
    else attempt (Array.map (fun x -> if x > 1 then x / 2 else 1) w)
  in
  let lens = attempt (Array.map (fun f -> f + 1) freq) in
  match dict_of_lens lens with
  | Ok d -> d
  | Error why -> failwith ("Compress.train: internal error: " ^ why)

(* ---- encode / decode ------------------------------------------------ *)

let encode_dict d s =
  (* SAFETY: every [String.unsafe_get s i] below has [0 <= i < length s]
     by its loop bound; every [Array.unsafe_get] indexes [lens]/[codes]
     (length 257) with [Char.code _ + 1] in [1, 256] or the constant 0;
     [Bytes.unsafe_set out pos] stays in bounds because [out] is sized
     from the exact bit count summed in the first pass, and each stored
     byte is masked to 8 bits before [Char.unsafe_chr]. *)
  let lens = d.lens and codes = d.codes in
  let n = String.length s in
  let bits = ref lens.(0) in
  for i = 0 to n - 1 do
    bits :=
      !bits + Array.unsafe_get lens (Char.code (String.unsafe_get s i) + 1)
  done;
  let out = Bytes.create ((!bits + 7) lsr 3) in
  let acc = ref 0 and nacc = ref 0 and pos = ref 0 in
  (* [acc] never exceeds 7 + max_code_bits = 39 significant bits *)
  let put sym =
    acc := (!acc lsl Array.unsafe_get lens sym) lor Array.unsafe_get codes sym;
    nacc := !nacc + Array.unsafe_get lens sym;
    while !nacc >= 8 do
      nacc := !nacc - 8;
      Bytes.unsafe_set out !pos (Char.unsafe_chr ((!acc lsr !nacc) land 0xff));
      incr pos
    done;
    acc := !acc land ((1 lsl !nacc) - 1)
  in
  for i = 0 to n - 1 do
    put (Char.code (String.unsafe_get s i) + 1)
  done;
  put 0;
  if !nacc > 0 then
    Bytes.unsafe_set out !pos (Char.unsafe_chr ((!acc lsl (8 - !nacc)) land 0xff));
  Bytes.unsafe_to_string out

let encode t s = match t with Identity -> s | Dict d -> encode_dict d s

let encoded_length t s =
  match t with
  | Identity -> String.length s
  | Dict d ->
      let bits = ref d.lens.(0) in
      String.iter (fun c -> bits := !bits + d.lens.(Char.code c + 1)) s;
      (!bits + 7) lsr 3

let first_byte t s =
  match t with
  | Identity ->
      if s = "" then invalid_arg "Compress.first_byte: empty identity key"
      else Char.code s.[0]
  | Dict d ->
      let n = String.length s in
      let acc = ref 0 and nacc = ref 0 and i = ref 0 in
      while !nacc < 8 && !i <= n do
        let sym = if !i < n then Char.code s.[!i] + 1 else 0 in
        acc := (!acc lsl d.lens.(sym)) lor d.codes.(sym);
        nacc := !nacc + d.lens.(sym);
        incr i
      done;
      if !nacc >= 8 then (!acc lsr (!nacc - 8)) land 0xff
      else (!acc lsl (8 - !nacc)) land 0xff

let decode_dict d s =
  let total = 8 * String.length s in
  let tree = d.tree in
  let buf = Buffer.create (1 + (2 * String.length s)) in
  let pos = ref 0 in
  let bit p = (Char.code s.[p lsr 3] lsr (7 - (p land 7))) land 1 in
  let rec symbol node =
    if !pos >= total then Error "truncated code"
    else begin
      let b = bit !pos in
      incr pos;
      match tree.((2 * node) + b) with
      | 0 -> Error "invalid code path"
      | v when v > 0 -> symbol v
      | v -> Ok (-v - 1)
    end
  in
  let rec loop () =
    match symbol 0 with
    | Error _ as e -> e
    | Ok 0 ->
        (* terminator: only sub-byte zero padding may remain *)
        if total - !pos >= 8 then Error "bytes after terminator"
        else begin
          let ok = ref true in
          while !pos < total do
            if bit !pos <> 0 then ok := false;
            incr pos
          done;
          if !ok then Ok (Buffer.contents buf) else Error "nonzero padding"
        end
    | Ok sym ->
        Buffer.add_char buf (Char.chr (sym - 1));
        loop ()
  in
  loop ()

let decode t s = match t with Identity -> Ok s | Dict d -> decode_dict d s
