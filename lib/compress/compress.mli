(** Order-preserving key compression (HOPE-style, arXiv 2003.02391).

    A pluggable encoder stage that sits {e above} the trie: keys are
    encoded once at the front door (shard / CLI / persist), every layer
    below — Store descent, WAL records, snapshot records, shard routing —
    operates on encoded bytes, and keys are decoded again on the way out
    ([iter]/[fold]/range exposure).

    Two schemes:
    - {b identity} (id 0): the no-op encoder; [encode]/[decode] return the
      key unchanged.
    - {b dict} (id 1): a trained single-byte code dictionary.  Each of the
      256 byte values plus one virtual end-of-string terminator gets a
      prefix-free variable-length bit code from a weight-balanced
      {e alphabetic} (order-preserving) code tree built over sampled key
      frequencies; a key's code is the concatenation of its bytes' codes,
      the terminator code, and up to 7 zero padding bits.

    {2 Order-preservation contract}

    For every encoder [e] and all keys [a], [b]:
    [compare (encode e a) (encode e b)] has the same sign as
    [compare a b], and [decode e (encode e a) = Ok a].

    For the dict scheme this holds because (1) the code is alphabetic:
    symbol order equals code order as left-aligned bit strings, so the
    first differing byte of two keys yields a 0-versus-1 bit at the same
    position of their encodings; (2) the terminator sorts below every
    byte value, so a strict prefix still sorts first; and (3) the code is
    prefix-free and padding is sub-byte zeros, so decoding is exact.  The
    property is machine-checked by qcheck in [test/test_compress.ml]. *)

type dict
(** A trained single-byte code dictionary (immutable). *)

type t = Identity | Dict of dict

val id : t -> int
(** Scheme id: 0 = identity, 1 = dict.  This is the value carried in
    {!Hyperion.Config.t}[.compress] and in snapshot header flags. *)

val name : t -> string
(** ["identity"] or ["dict"]. *)

val equal : t -> t -> bool
(** Same scheme {e and} (for dict) the same dictionary bytes. *)

val hash : t -> int64
(** FNV-1a of the serialized dictionary; [0L] for identity.  Mixed into
    persisted fingerprints so a load under the wrong dictionary fails
    loudly instead of serving garbled keys. *)

val tag : t -> int
(** A small non-negative int identifying the encoder for
    [Version_mismatch { found; expected }] payloads: 0 for identity,
    [1 lor (hash excerpt lsl 4)] for a dict — so two different
    dictionaries almost surely get different tags. *)

val mix_fingerprint : int64 -> t -> int64
(** [mix_fingerprint fp e] folds the encoder identity into a config
    fingerprint.  Identity leaves [fp] unchanged (pre-compression
    snapshots and WALs keep their historical fingerprints); a dict mixes
    the scheme id and dictionary hash with the same FNV-1a step as
    {!Hyperion.Config.fingerprint}. *)

(** {1 Training} *)

val train : string Seq.t -> dict
(** Build a dictionary from a key sample.  Byte frequencies are counted
    (plus one occurrence of the terminator per key), smoothed by +1 so
    every byte value stays encodable, and turned into an alphabetic code
    by recursive weight-balanced splitting.  Code lengths are capped at
    {!max_code_bits} (weights are halved and the tree rebuilt in the rare
    case the cap is exceeded).  Deterministic in the sample sequence. *)

val max_code_bits : int
(** Upper bound on one symbol's code length (32). *)

(** {1 Encoding} *)

val encode : t -> string -> string
(** [encode e key] is the key as stored below the front door.  Identity
    returns [key] itself (no copy).  Worst-case dict expansion is
    [max_code_bits / 8] times; typical trained-corpus output is 30–50%
    {e shorter}. *)

val decode : t -> string -> (string, string) result
(** Exact inverse of {!encode} on its image.  [Error why] when the bytes
    are not a valid encoding (truncated code, bytes after the terminator,
    nonzero padding) — on store contents that can only mean the wrong
    dictionary or corruption. *)

val first_byte : t -> string -> int
(** [first_byte e key = Char.code (encode e key).[0]] without building
    the full encoding — the shard router's path.  (Every encoding is
    non-empty: even [""] encodes to the terminator code padded to one
    byte.) *)

val encoded_length : t -> string -> int
(** [String.length (encode e key)] without building the encoding. *)

(** {1 Dictionary serialization} *)

val dict_to_string : dict -> string
(** 258 bytes: one scheme byte (0x01) followed by the 257 code lengths
    (terminator first, then byte values in order).  Code values are not
    stored: an alphabetic code is uniquely reconstructible from its
    length sequence. *)

val dict_of_string : string -> (dict, string) result
(** Parse and fully validate ({!dict_to_string} round-trips): length
    bounds, Kraft completeness, canonical code reconstruction,
    prefix-freeness.  [Error why] on anything else. *)

val dict_hash : dict -> int64
(** {!hash} of [Dict d]. *)

val of_id : ?dict:dict -> int -> (t, string) result
(** Resolve a {!Hyperion.Config.t}[.compress] scheme id to an encoder:
    [0] is [Identity]; [1] requires [?dict]. *)
