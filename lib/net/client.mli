(** Blocking binary-protocol client over one TCP connection.

    The minimal counterpart to {!Server}: encode with {!Frame}, write,
    read, decode.  Two usage styles:

    - {!request} — one synchronous round trip (tests, tooling).  It
      assigns its own ids and keeps reading until the matching response
      arrives (stashing any out-of-order responses for later {!recv}s).
    - {!send} / {!recv} — explicit pipelining for the load generator:
      queue many requests, then collect responses in whatever order the
      server finishes them, correlating by id.

    Not thread-safe; one client per thread. *)

type t

val connect : ?host:string -> port:int -> unit -> (t, string) result
(** TCP connect (default host ["127.0.0.1"]); [TCP_NODELAY] is set so
    pipelined small frames are not Nagle-delayed. *)

val close : t -> unit
(** Idempotent. *)

val send : t -> id:int -> Frame.request -> (unit, string) result
(** Encode and write one request frame.  [Error] means the connection
    is dead (peer closed or I/O error). *)

val poll : t -> float -> bool
(** [poll t timeout_s]: wait up to [timeout_s] seconds for response bytes
    (buffered or readable on the socket).  [true] means a {!recv} will
    (very likely) not block — the load generator uses this to observe
    responses near their arrival time instead of when its pipeline window
    fills. *)

val recv : t -> (int * Frame.response, string) result
(** Block for the next response frame, in server completion order.
    [Error] on EOF, I/O failure or a corrupt frame. *)

val request : t -> Frame.request -> (Frame.response, string) result
(** One synchronous round trip with an auto-assigned id. *)
