(** Open-loop load generator for the hyperion.net server.

    Drives a running server (binary protocol or memcached-text) from
    [connections] client threads, each following an {e open-loop} arrival
    schedule at [target_qps / connections] requests per second: send
    times are scheduled ahead of time (exponential inter-arrivals for
    {!Poisson}, fixed for {!Uniform}) and the schedule {e never skips}.
    When the server falls behind, the bounded pipelining window ([depth]
    outstanding requests per connection) makes the sender wait — but each
    request's latency is still measured from its {e scheduled} send time,
    so queueing delay the server caused is charged to the server.  This
    is the standard defence against coordinated omission: a closed-loop
    harness that only timestamps actual sends silently excuses every
    stall it was blocked by.

    Keys are drawn Zipf-popularity-skewed from a {!Workload.Keystream}
    (rank 0 hottest), reads and writes mixed by [read_fraction], all
    reproducible from [seed].  Latencies accumulate into per-connection
    {!Telemetry.Hist} histograms merged at the end — no shared cells on
    the measurement path. *)

type protocol = Binary | Memcached

type arrival = Poisson | Uniform

type config = {
  host : string;
  port : int;
  protocol : protocol;
  connections : int;  (** client threads, each with its own socket *)
  depth : int;  (** max outstanding requests per connection *)
  target_qps : float;  (** aggregate, split evenly across connections *)
  duration_s : float;
  arrival : arrival;
  read_fraction : float;  (** in [0, 1]: Get (binary) / get (memcached) *)
  n_keys : int;  (** keystream universe when none is supplied *)
  seed : int64;
}

val default_config : config
(** localhost binary, 4 connections, depth 16, 20k QPS, 2 s, Poisson,
    90% reads, 10k keys, seed 20190301. *)

type summary = {
  s_protocol : protocol;
  s_target_qps : float;
  s_achieved_qps : float;  (** completed / elapsed *)
  s_sent : int;
  s_completed : int;
  s_errors : int;
      (** error responses + transport/decode failures; a clean run
          reports [0] *)
  s_elapsed_s : float;
  s_hist : Telemetry.Hist.t;
      (** scheduled-send-to-response latency, all connections merged *)
}

val memcached_key : string -> string
(** The key transform applied in {!Memcached} mode: n-gram keys contain
    spaces and a tab, which the whitespace-delimited text protocol cannot
    carry, so they are mapped to ['_'].  Loopback harnesses preloading
    the store must apply the same transform. *)

val validate : config -> string option
(** [Some reason] when the config is out of bounds (callers that need to
    distinguish bad arguments from connection failures check first;
    {!run} also checks). *)

val run : ?keystream:Workload.Keystream.t -> config -> (summary, string) result
(** Execute one run.  [Error] only for setup failures (bad config, cannot
    connect); per-request failures are counted in [s_errors].  Supplying
    [keystream] skips corpus construction and overrides [n_keys]. *)

val latency_of_summary : metric:string -> summary -> Bench_util.Json_out.latency
(** The merged histogram as a BENCH-file latency record (p50/p90/p99/p999
    within the histogram's 3.125% bucket error, exact mean). *)
