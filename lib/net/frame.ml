(* Binary frame codec for hyperion.net — see frame.mli and DESIGN.md §13.

   Layout: [len:u32le | id:u32le | tag:u8 | payload], [len] counting
   everything after itself.  Requests carry an opcode tag; responses carry
   a kind tag (< 16 success, >= 16 an error code shifted by 16).  The
   module is pure: encoders append to buffers, the decoder consumes
   arbitrarily-split chunks. *)

let max_frame_len = 1 lsl 24
let max_key_len = 1 lsl 20
let max_batch_ops = 1 lsl 16

type batch_op =
  | Bput of string * int64
  | Badd of string
  | Bdel of string

type request =
  | Put of string * int64
  | Add of string
  | Get of string
  | Mem of string
  | Delete of string
  | Batch of batch_op array
  | Stats
  | Health

let opcode = function
  | Put _ -> 1
  | Add _ -> 2
  | Get _ -> 3
  | Mem _ -> 4
  | Delete _ -> 5
  | Batch _ -> 6
  | Stats -> 7
  | Health -> 8

type err_code =
  | E_arena_saturated
  | E_alloc_failed
  | E_container_overflow
  | E_restart_budget
  | E_chunk_corrupt
  | E_empty_key
  | E_key_too_long
  | E_corrupt_snapshot
  | E_torn_log
  | E_version_mismatch
  | E_io
  | E_degraded
  | E_overloaded
  | E_shard_down
  | E_bad_request
  | E_too_large
  | E_internal

let err_code_int = function
  | E_arena_saturated -> 1
  | E_alloc_failed -> 2
  | E_container_overflow -> 3
  | E_restart_budget -> 4
  | E_chunk_corrupt -> 5
  | E_empty_key -> 6
  | E_key_too_long -> 7
  | E_corrupt_snapshot -> 8
  | E_torn_log -> 9
  | E_version_mismatch -> 10
  | E_io -> 11
  | E_degraded -> 12
  | E_overloaded -> 13
  | E_shard_down -> 14
  | E_bad_request -> 100
  | E_too_large -> 101
  | E_internal -> 102

let err_code_of_int = function
  | 1 -> Some E_arena_saturated
  | 2 -> Some E_alloc_failed
  | 3 -> Some E_container_overflow
  | 4 -> Some E_restart_budget
  | 5 -> Some E_chunk_corrupt
  | 6 -> Some E_empty_key
  | 7 -> Some E_key_too_long
  | 8 -> Some E_corrupt_snapshot
  | 9 -> Some E_torn_log
  | 10 -> Some E_version_mismatch
  | 11 -> Some E_io
  | 12 -> Some E_degraded
  | 13 -> Some E_overloaded
  | 14 -> Some E_shard_down
  | 100 -> Some E_bad_request
  | 101 -> Some E_too_large
  | 102 -> Some E_internal
  | _ -> None

let err_of_hyperion (e : Hyperion.Hyperion_error.t) =
  match e with
  | Arena_saturated -> E_arena_saturated
  | Alloc_failed _ -> E_alloc_failed
  | Container_overflow -> E_container_overflow
  | Restart_budget_exceeded _ -> E_restart_budget
  | Chunk_corrupt _ -> E_chunk_corrupt
  | Empty_key -> E_empty_key
  | Key_too_long _ -> E_key_too_long
  | Corrupt_snapshot _ -> E_corrupt_snapshot
  | Torn_log _ -> E_torn_log
  | Version_mismatch _ -> E_version_mismatch
  | Io_error _ -> E_io
  | Degraded _ -> E_degraded
  | Overloaded _ -> E_overloaded
  | Shard_down _ -> E_shard_down

type shard_health = {
  sh_shard : int;
  sh_alive : bool;
  sh_degraded : bool;
  sh_backlog : int;
}

type stats = {
  st_keys : int64;
  st_resident_bytes : int64;
  st_shards : int;
  st_saturated_arenas : int;
}

type response =
  | Ack
  | Value of int64 option
  | Found of bool
  | Applied of int
  | Stats_r of stats
  | Health_r of shard_health array
  | Err of err_code * string

(* ---- low-level writers ----------------------------------------------- *)

let add_u32 b v = Buffer.add_int32_le b (Int32.of_int v)
let add_i64 b v = Buffer.add_int64_le b v
let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_lstring b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

(* Frame shell: payload is built in a scratch buffer so [len] is known. *)
let add_frame b ~id ~tag payload =
  add_u32 b (5 + String.length payload);
  add_u32 b (id land 0xffffffff);
  add_u8 b tag;
  Buffer.add_string b payload

let with_payload f =
  let b = Buffer.create 64 in
  f b;
  Buffer.contents b

(* ---- encoding -------------------------------------------------------- *)

let encode_request b ~id req =
  let payload =
    with_payload (fun p ->
        match req with
        | Put (k, v) ->
            add_lstring p k;
            add_i64 p v
        | Add k | Get k | Mem k | Delete k -> add_lstring p k
        | Batch ops ->
            add_u32 p (Array.length ops);
            Array.iter
              (fun op ->
                match op with
                | Bput (k, v) ->
                    add_u8 p 1;
                    add_lstring p k;
                    add_i64 p v
                | Badd k ->
                    add_u8 p 2;
                    add_lstring p k
                | Bdel k ->
                    add_u8 p 3;
                    add_lstring p k)
              ops
        | Stats | Health -> ())
  in
  add_frame b ~id ~tag:(opcode req) payload

let response_tag = function
  | Ack -> 0
  | Value _ -> 1
  | Found _ -> 2
  | Applied _ -> 3
  | Stats_r _ -> 4
  | Health_r _ -> 5
  | Err (c, _) -> 16 + err_code_int c

let encode_response b ~id resp =
  let payload =
    with_payload (fun p ->
        match resp with
        | Ack -> ()
        | Value None -> add_u8 p 0
        | Value (Some v) ->
            add_u8 p 1;
            add_i64 p v
        | Found x -> add_u8 p (if x then 1 else 0)
        | Applied n -> add_u32 p n
        | Stats_r s ->
            add_i64 p s.st_keys;
            add_i64 p s.st_resident_bytes;
            add_u32 p s.st_shards;
            add_u32 p s.st_saturated_arenas
        | Health_r hs ->
            add_u32 p (Array.length hs);
            Array.iter
              (fun h ->
                add_u32 p h.sh_shard;
                add_u8 p (if h.sh_alive then 1 else 0);
                add_u8 p (if h.sh_degraded then 1 else 0);
                add_u32 p h.sh_backlog)
              hs
        | Err (_, msg) -> Buffer.add_string p msg)
  in
  add_frame b ~id ~tag:(response_tag resp) payload

(* ---- streaming decoder ----------------------------------------------- *)

type decoded =
  | Frame of int * int * string
  | Need_more
  | Corrupt of string

module Decoder = struct
  type t = {
    mutable buf : Bytes.t;
    mutable start : int;  (* first unconsumed byte *)
    mutable len : int;  (* bytes buffered from [start] *)
    mutable poison : string option;
  }

  let create () =
    { buf = Bytes.create 4096; start = 0; len = 0; poison = None }

  let buffered t = t.len

  let ensure_room t extra =
    let need = t.len + extra in
    if t.start + need > Bytes.length t.buf then begin
      if need <= Bytes.length t.buf then begin
        (* compact in place *)
        Bytes.blit t.buf t.start t.buf 0 t.len;
        t.start <- 0
      end
      else begin
        let cap = ref (Bytes.length t.buf * 2) in
        while !cap < need do
          cap := !cap * 2
        done;
        let nb = Bytes.create !cap in
        Bytes.blit t.buf t.start nb 0 t.len;
        t.buf <- nb;
        t.start <- 0
      end
    end

  let feed t src off len =
    if len < 0 || off < 0 || off + len > Bytes.length src then
      invalid_arg "Frame.Decoder.feed";
    ensure_room t len;
    Bytes.blit src off t.buf (t.start + t.len) len;
    t.len <- t.len + len

  let feed_string t s = feed t (Bytes.of_string s) 0 (String.length s)

  let u32_at t off =
    Int32.to_int (Bytes.get_int32_le t.buf (t.start + off)) land 0xffffffff

  let next t =
    match t.poison with
    | Some msg -> Corrupt msg
    | None ->
        if t.len < 4 then Need_more
        else begin
          let flen = u32_at t 0 in
          if flen < 5 then begin
            let msg = Printf.sprintf "frame length %d below minimum 5" flen in
            t.poison <- Some msg;
            Corrupt msg
          end
          else if flen > max_frame_len then begin
            let msg =
              Printf.sprintf "frame length %d exceeds limit %d" flen
                max_frame_len
            in
            t.poison <- Some msg;
            Corrupt msg
          end
          else if t.len < 4 + flen then Need_more
          else begin
            let id = u32_at t 4 in
            let tag = Char.code (Bytes.get t.buf (t.start + 8)) in
            let payload = Bytes.sub_string t.buf (t.start + 9) (flen - 5) in
            t.start <- t.start + 4 + flen;
            t.len <- t.len - (4 + flen);
            if t.len = 0 then t.start <- 0;
            Frame (id, tag, payload)
          end
        end
end

(* ---- payload parsing ------------------------------------------------- *)

exception Short

type cursor = { s : string; mutable pos : int }

let need c n = if c.pos + n > String.length c.s then raise Short

let r_u8 c =
  need c 1;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let r_u32 c =
  need c 4;
  let v = Int32.to_int (String.get_int32_le c.s c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  v

let r_i64 c =
  need c 8;
  let v = String.get_int64_le c.s c.pos in
  c.pos <- c.pos + 8;
  v

let r_key c =
  let klen = r_u32 c in
  if klen > max_key_len then
    failwith (Printf.sprintf "key length %d exceeds limit %d" klen max_key_len);
  need c klen;
  let k = String.sub c.s c.pos klen in
  c.pos <- c.pos + klen;
  k

let finish c v =
  if c.pos <> String.length c.s then Error "trailing bytes in payload"
  else Ok v

let parse_request ~tag payload =
  let c = { s = payload; pos = 0 } in
  match
    match tag with
    | 1 ->
        let k = r_key c in
        let v = r_i64 c in
        finish c (Put (k, v))
    | 2 -> finish c (Add (r_key c))
    | 3 -> finish c (Get (r_key c))
    | 4 -> finish c (Mem (r_key c))
    | 5 -> finish c (Delete (r_key c))
    | 6 ->
        let n = r_u32 c in
        if n > max_batch_ops then
          failwith
            (Printf.sprintf "batch of %d ops exceeds limit %d" n max_batch_ops)
        else begin
          (* explicit loop: the cursor must advance in index order, which
             Array.init does not guarantee *)
          let ops = Array.make n (Badd "") in
          for i = 0 to n - 1 do
            ops.(i) <-
              (match r_u8 c with
              | 1 ->
                  let k = r_key c in
                  let v = r_i64 c in
                  Bput (k, v)
              | 2 -> Badd (r_key c)
              | 3 -> Bdel (r_key c)
              | op -> failwith (Printf.sprintf "unknown batch op %d" op))
          done;
          finish c (Batch ops)
        end
    | 7 -> finish c Stats
    | 8 -> finish c Health
    | _ -> Error (Printf.sprintf "unknown opcode %d" tag)
  with
  | r -> r
  | exception Short -> Error "truncated payload"
  | exception Failure msg -> Error msg

let parse_response ~tag payload =
  let c = { s = payload; pos = 0 } in
  match
    match tag with
    | 0 -> finish c Ack
    | 1 -> (
        match r_u8 c with
        | 0 -> finish c (Value None)
        | 1 -> finish c (Value (Some (r_i64 c)))
        | m -> Error (Printf.sprintf "bad value marker %d" m))
    | 2 -> (
        match r_u8 c with
        | 0 -> finish c (Found false)
        | 1 -> finish c (Found true)
        | m -> Error (Printf.sprintf "bad bool marker %d" m))
    | 3 -> finish c (Applied (r_u32 c))
    | 4 ->
        let keys = r_i64 c in
        let bytes = r_i64 c in
        let shards = r_u32 c in
        let saturated = r_u32 c in
        finish c
          (Stats_r
             {
               st_keys = keys;
               st_resident_bytes = bytes;
               st_shards = shards;
               st_saturated_arenas = saturated;
             })
    | 5 ->
        let n = r_u32 c in
        if n > 4096 then failwith "implausible shard count"
        else begin
          let hs =
            Array.make n
              { sh_shard = 0; sh_alive = false; sh_degraded = false;
                sh_backlog = 0 }
          in
          for i = 0 to n - 1 do
            let shard = r_u32 c in
            let alive = r_u8 c = 1 in
            let degraded = r_u8 c = 1 in
            let backlog = r_u32 c in
            hs.(i) <-
              {
                sh_shard = shard;
                sh_alive = alive;
                sh_degraded = degraded;
                sh_backlog = backlog;
              }
          done;
          finish c (Health_r hs)
        end
    | t when t >= 16 -> (
        match err_code_of_int (t - 16) with
        | Some code -> Ok (Err (code, payload))
        | None -> Error (Printf.sprintf "unknown error tag %d" t))
    | t -> Error (Printf.sprintf "unknown response tag %d" t)
  with
  | r -> r
  | exception Short -> Error "truncated payload"
  | exception Failure msg -> Error msg
