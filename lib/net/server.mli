(** hyperion.net — the TCP serving front-end over {!Hyperion_shard}.

    One acceptor thread per listening socket; each accepted connection
    gets a {e reader} thread (frame parsing + lock-free [Get]/[Mem]
    served inline), a small pool of {e op worker} threads (blocking
    mutations, [Batch], [Stats], [Health] — each op rides the shard
    mailboxes and completes an ivar ack), and a {e writer} thread
    draining a response queue.  Responses therefore leave in completion
    order, not arrival order: pipelined clients correlate by request id
    (see {!Frame}).  Typed store failures ({!Hyperion.Hyperion_error.t},
    including [Degraded]/[Shard_down]/[Overloaded]) map to protocol
    error codes; a malformed frame is answered [E_bad_request] without
    closing the connection, while an unrecoverable framing error
    (oversized length prefix) closes it.

    An optional second listener speaks a memcached-text subset
    ([get]/[set]/[delete]/[stats]/[version]/[quit]) so off-the-shelf
    clients can talk to the store: values are decimal 64-bit integers
    (an empty data block stores a valueless member), responses are
    in-order as that protocol requires.

    Telemetry (when enabled): [hyperion_net_connections] /
    [hyperion_net_inflight] gauges, [hyperion_net_requests_total]
    counters per op, [hyperion_net_protocol_errors_total], and
    [hyperion_net_server_latency_ns{op=...}] histograms measured from
    frame decode to response enqueue. *)

type t

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** binary listener; [0] picks an ephemeral port *)
  memcached_port : int option;
      (** when set, also serve the memcached-text subset there
          ([Some 0] = ephemeral) *)
  workers_per_conn : int;  (** op worker threads per connection (default 4) *)
  max_connections : int;  (** accepted connections beyond this are closed *)
}

val default_config : config

val start : ?config:config -> Hyperion_shard.t -> (t, string) result
(** Bind, listen and spawn the acceptor(s).  The server borrows the store:
    {!stop} does not close it. *)

val port : t -> int
(** The bound binary port (resolves an ephemeral request). *)

val memcached_port : t -> int option

val connections : t -> int
(** Currently-open connections across both listeners. *)

val stop : t -> unit
(** Close the listeners and every connection, then join all threads.
    In-flight operations finish (their responses are discarded if the
    peer is already gone).  Idempotent. *)
